// Fit a real SNAP edge-list file (e.g. com-dblp.ungraph.txt from
// https://snap.stanford.edu/data/) and print the detected overlapping
// communities in original vertex ids.
//
//   ./fit_snap --graph com-dblp.ungraph.txt --communities 512 \
//       --iterations 100000
#include <cstdio>

#include "core/parallel_sampler.h"
#include "core/report.h"
#include "graph/heldout.h"
#include "graph/snap_loader.h"
#include "util/cli.h"
#include "util/units.h"

using namespace scd;

int main(int argc, char** argv) {
  std::string path;
  std::uint64_t communities = 256;
  std::int64_t iterations = 50000;
  std::uint64_t threads = 4;
  std::uint64_t seed = 1;
  std::string out;
  ArgParser parser("fit_snap", "overlapping communities in a SNAP graph");
  parser.add_string("graph", &path, "SNAP edge-list file (required)")
      .add_uint("communities", &communities, "inferred K")
      .add_int("iterations", &iterations, "SG-MCMC iterations")
      .add_uint("threads", &threads, "worker threads")
      .add_string("out", &out, "community list output file (optional)")
      .add_uint("seed", &seed, "root seed");
  if (!parser.parse(argc, argv)) return 0;
  if (path.empty()) {
    std::fprintf(stderr, "error: --graph is required\n%s",
                 parser.usage().c_str());
    return 1;
  }

  std::printf("loading %s...\n", path.c_str());
  const graph::SnapLoadResult loaded = graph::load_snap_file(path);
  std::printf("loaded: %u vertices, %s edges\n",
              loaded.graph.num_vertices(),
              format_count(loaded.graph.num_edges()).c_str());

  rng::Xoshiro256 split_rng(seed);
  const graph::HeldOutSplit split(
      split_rng, loaded.graph,
      std::min<std::size_t>(2000, loaded.graph.num_edges() / 100));

  core::Hyper hyper;
  hyper.num_communities = static_cast<std::uint32_t>(communities);
  hyper.delta = core::suggested_delta(loaded.graph.density());
  core::SamplerOptions options;
  options.neighbor_mode = core::NeighborMode::kLinkAware;
  options.num_neighbors = 16;
  options.eval_interval =
      std::max<std::uint64_t>(1, static_cast<std::uint64_t>(iterations) / 10);
  options.step.a = 0.01;
  options.step.b = 4096;
  options.seed = seed;

  core::ParallelSampler sampler(split.training(), &split, hyper, options,
                                static_cast<unsigned>(threads));
  sampler.run(static_cast<std::uint64_t>(iterations));
  for (const core::HistoryPoint& p : sampler.history()) {
    std::printf("  iter %7llu  %-9s perplexity %.3f\n",
                static_cast<unsigned long long>(p.iteration),
                format_duration(p.seconds).c_str(), p.perplexity);
  }

  const core::CommunityReport report = core::extract_communities(
      sampler.pi(),
      core::default_membership_threshold(hyper.num_communities));
  std::size_t non_empty = 0;
  for (const auto& c : report.communities) {
    if (!c.empty()) ++non_empty;
  }
  std::printf("detected %zu communities (%llu overlapping vertices)\n",
              non_empty,
              static_cast<unsigned long long>(report.overlapping_vertices));

  if (!out.empty()) {
    std::FILE* f = std::fopen(out.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot write %s\n", out.c_str());
      return 1;
    }
    // One line per community, original SNAP vertex ids.
    for (const auto& c : report.communities) {
      if (c.empty()) continue;
      for (std::size_t i = 0; i < c.size(); ++i) {
        std::fprintf(f, "%s%llu", i ? "\t" : "",
                     static_cast<unsigned long long>(
                         loaded.original_ids[c[i]]));
      }
      std::fputc('\n', f);
    }
    std::fclose(f);
    std::printf("communities written to %s\n", out.c_str());
  }
  return 0;
}
