// Distributed-run walkthrough: execute the full master/worker algorithm
// on the virtual-time cluster (real inference, modeled time), print the
// per-stage breakdown, and contrast pipelined vs non-pipelined execution
// — a miniature of the paper's Section IV on your laptop.
//
//   ./cluster_sim [--workers 8] [--iterations 6000] [--communities 32]
//               [--seed 5] [--pi-codec fp32|fp16|int8|sparse-topr|...]
//               [--sparse-eps 0.01]
//               [--fault-plan chaos.json] [--trace-out trace.json]
#include <cstdio>
#include <memory>
#include <string>

#include "core/distributed_sampler.h"
#include "fault/fault_plan.h"
#include "quant/row_codec.h"
#include "graph/generator.h"
#include "graph/heldout.h"
#include "sim/cluster.h"
#include "trace/chrome_trace.h"
#include "trace/critical_path.h"
#include "trace/recorder.h"
#include "util/cli.h"
#include "util/table.h"
#include "util/units.h"

using namespace scd;
using sim::Phase;

int main(int argc, char** argv) {
  std::uint64_t workers = 8;
  std::int64_t iterations = 6000;
  std::uint64_t communities = 32;
  std::uint64_t vertices = 1000;
  std::uint64_t seed = 5;
  std::string pi_codec = "fp32";
  double sparse_eps = quant::kDefaultSparseEps;
  std::string fault_plan_path;
  std::string trace_out;
  ArgParser parser("cluster_sim",
                   "distributed sampler on the virtual cluster");
  parser.add_uint("workers", &workers, "simulated worker nodes")
      .add_int("iterations", &iterations, "iterations to run")
      .add_uint("communities", &communities, "inferred K")
      .add_uint("vertices", &vertices, "graph size")
      .add_uint("seed", &seed, "root seed (same seed => same run)")
      .add_string("pi-codec", &pi_codec,
                  "pi row codec in the DKV and on the wire:"
                  " fp32 (exact), fp16, int8, sparse-topr,"
                  " sparse-topr-fp16, or sparse-topr-int8")
      .add_double("sparse-eps", &sparse_eps,
                  "sparse codecs: top-R mass tolerance per row")
      .add_string("fault-plan", &fault_plan_path,
                  "JSON fault schedule to inject (see src/fault)")
      .add_string("trace-out", &trace_out,
                  "trace the pipelined run; write Chrome trace_event"
                  " JSON here (optional)");
  if (!parser.parse(argc, argv)) return 0;

  fault::FaultPlan fault_plan;
  const bool chaos = !fault_plan_path.empty();
  if (chaos) {
    fault_plan = fault::FaultPlan::from_file(fault_plan_path);
    fault_plan.validate(static_cast<unsigned>(workers) + 1);
  }

  rng::Xoshiro256 gen_rng(11);
  const graph::PlantedConfig config = graph::planted_config_for_degree(
      static_cast<graph::Vertex>(vertices),
      static_cast<std::uint32_t>(communities), 20.0);
  const graph::GeneratedGraph g = graph::generate_planted(gen_rng, config);
  rng::Xoshiro256 split_rng(12);
  const graph::HeldOutSplit split(split_rng, g.graph,
                                  g.graph.num_edges() / 20);

  core::Hyper hyper;
  hyper.num_communities = static_cast<std::uint32_t>(communities);
  hyper.delta = core::suggested_delta(g.graph.density());

  // The recorder traces only the pipelined run (the headline mode);
  // tracing never perturbs modeled time, so the comparison stands.
  std::unique_ptr<trace::TraceRecorder> recorder;
  if (!trace_out.empty()) {
    recorder = std::make_unique<trace::TraceRecorder>(
        static_cast<unsigned>(workers) + 1);
  }

  auto run_mode = [&](bool pipeline) {
    sim::SimCluster::Config cluster_config;
    cluster_config.num_ranks = static_cast<unsigned>(workers) + 1;
    sim::SimCluster cluster(cluster_config);
    core::DistributedOptions options;
    options.base.neighbor_mode = core::NeighborMode::kLinkAware;
    options.base.num_neighbors = 16;
    options.base.eval_interval =
        static_cast<std::uint64_t>(iterations) / 4;
    options.base.step.a = 0.03;
    options.base.step.b = 4096;
    options.base.seed = seed;
    options.pipeline = pipeline;
    options.pi_codec = quant::codec_from_name(pi_codec);
    options.sparse_eps = static_cast<float>(sparse_eps);
    if (chaos) options.fault_plan = &fault_plan;
    if (pipeline) options.trace = recorder.get();
    core::DistributedSampler sampler(cluster, split.training(), &split,
                                     hyper, options);
    return sampler.run(static_cast<std::uint64_t>(iterations));
  };

  std::printf("running %lld iterations on %llu workers + master"
              " (virtual DAS5 cluster)...\n",
              static_cast<long long>(iterations),
              static_cast<unsigned long long>(workers));
  const core::DistributedResult pipelined = run_mode(true);
  const core::DistributedResult serial = run_mode(false);

  Table breakdown({"stage", "pipelined_ms_iter", "single_buffer_ms_iter"});
  auto add = [&](const char* name, Phase p) {
    const double iters = static_cast<double>(iterations);
    breakdown.add_row(
        {std::string(name),
         pipelined.critical_path.get(p) / iters * 1e3,
         serial.critical_path.get(p) / iters * 1e3});
  };
  add("draw minibatch (master)", Phase::kDrawMinibatch);
  add("deploy wait (worker)", Phase::kDeployMinibatch);
  add("sample neighbors", Phase::kSampleNeighbors);
  add("load pi (DKV)", Phase::kLoadPi);
  add("update phi", Phase::kUpdatePhi);
  add("update pi", Phase::kUpdatePi);
  add("update beta/theta", Phase::kUpdateBetaTheta);
  add("perplexity", Phase::kPerplexity);
  add("barrier wait", Phase::kBarrierWait);
  std::printf("\n%s", breakdown.to_ascii().c_str());

  std::printf("\nvirtual time: %s pipelined vs %s single-buffered"
              " (%.1f%% saved)\n",
              format_duration(pipelined.virtual_seconds).c_str(),
              format_duration(serial.virtual_seconds).c_str(),
              100.0 * (serial.virtual_seconds - pipelined.virtual_seconds) /
                  serial.virtual_seconds);
  if (chaos) {
    auto fault_summary = [](const char* mode,
                            const core::DistributedResult& r) {
      std::printf("%s: %zu crashed rank(s)", mode, r.crashed_ranks.size());
      for (unsigned rank : r.crashed_ranks) std::printf(" %u", rank);
      std::printf(", %llu iteration(s) redone after recovery\n",
                  static_cast<unsigned long long>(r.redone_iterations));
    };
    fault_summary("pipelined", pipelined);
    fault_summary("single-buffered", serial);
    // Crash times are virtual-time triggers, and the two modes run on
    // different virtual clocks — their faulted trajectories may differ.
    std::printf("perplexity trace (pipelined run):\n");
  } else {
    std::printf("perplexity trace (identical in both modes — pipelining"
                " changes time, not numbers):\n");
  }
  for (const core::HistoryPoint& p : pipelined.history) {
    std::printf("  iter %5llu  virtual %-10s perplexity %.3f\n",
                static_cast<unsigned long long>(p.iteration),
                format_duration(p.seconds).c_str(), p.perplexity);
  }

  if (recorder != nullptr) {
    trace::write_chrome_trace(*recorder, trace_out);
    std::printf("\ntrace of the pipelined run written to %s (%zu spans;"
                " load in Perfetto or chrome://tracing)\n",
                trace_out.c_str(), recorder->total_spans());
    const trace::CriticalPathReport report =
        trace::analyze_critical_path(*recorder);
    std::printf("critical path: %s over %zu step(s)\n",
                format_duration(report.total_s).c_str(),
                report.steps.size());
    std::printf("%s", report.table().to_ascii().c_str());
  }
  return 0;
}
