// Social-network scenario: detect overlapping circles in a
// Youtube-like sharing network (the com-Youtube stand-in), then inspect
// the result the way an analyst would — community size distribution,
// strongest communities, and the most "multi-community" members.
//
//   ./social_network [--iterations 20000]
#include <algorithm>
#include <cstdio>

#include "core/parallel_sampler.h"
#include "core/report.h"
#include "graph/datasets.h"
#include "graph/heldout.h"
#include "util/cli.h"
#include "util/units.h"

using namespace scd;

int main(int argc, char** argv) {
  std::int64_t iterations = 20000;
  std::uint64_t threads = 4;
  std::uint64_t communities = 64;
  std::uint64_t vertices = 3000;
  ArgParser parser("social_network",
                   "overlapping circles in a sharing network");
  parser.add_int("iterations", &iterations, "SG-MCMC iterations")
      .add_uint("threads", &threads, "worker threads")
      .add_uint("communities", &communities, "inferred K")
      .add_uint("vertices", &vertices, "network size");
  if (!parser.parse(argc, argv)) return 0;

  // A Youtube-flavoured network: sparse, light overlap.
  rng::Xoshiro256 gen_rng(77);
  const graph::PlantedConfig config = graph::planted_config_for_degree(
      static_cast<graph::Vertex>(vertices),
      static_cast<std::uint32_t>(communities), 5.3, 0.15, 0.0);
  const graph::GeneratedGraph net = graph::generate_planted(gen_rng, config);
  std::printf("network: %u members, %s relationships\n",
              net.graph.num_vertices(),
              format_count(net.graph.num_edges()).c_str());

  rng::Xoshiro256 split_rng(78);
  const graph::HeldOutSplit split(split_rng, net.graph,
                                  net.graph.num_edges() / 20);

  core::Hyper hyper;
  hyper.num_communities = static_cast<std::uint32_t>(communities);
  hyper.delta = core::suggested_delta(net.graph.density());
  core::SamplerOptions options;
  options.neighbor_mode = core::NeighborMode::kLinkAware;
  options.num_neighbors = 16;
  options.minibatch.nonlink_partitions = 8;
  options.eval_interval = static_cast<std::uint64_t>(iterations) / 8;
  options.step.a = 0.01;
  options.step.b = 4096;
  options.seed = 7;

  core::ParallelSampler sampler(split.training(), &split, hyper, options,
                                static_cast<unsigned>(threads));
  std::printf("training %lld iterations...\n",
              static_cast<long long>(iterations));
  sampler.run(static_cast<std::uint64_t>(iterations));
  for (const core::HistoryPoint& p : sampler.history()) {
    std::printf("  iter %6llu  perplexity %.3f\n",
                static_cast<unsigned long long>(p.iteration),
                p.perplexity);
  }

  const core::CommunityReport report = core::extract_communities(
      sampler.pi(),
      core::default_membership_threshold(hyper.num_communities));

  // Size distribution.
  std::vector<std::size_t> sizes;
  for (const auto& c : report.communities) {
    if (!c.empty()) sizes.push_back(c.size());
  }
  std::sort(sizes.rbegin(), sizes.rend());
  std::printf("\n%zu detected circles; largest: ", sizes.size());
  for (std::size_t i = 0; i < std::min<std::size_t>(8, sizes.size()); ++i) {
    std::printf("%zu ", sizes[i]);
  }

  // Strongest communities by inferred link strength.
  std::vector<std::uint32_t> by_strength(hyper.num_communities);
  for (std::uint32_t k = 0; k < hyper.num_communities; ++k) {
    by_strength[k] = k;
  }
  std::sort(by_strength.begin(), by_strength.end(),
            [&](std::uint32_t x, std::uint32_t y) {
              return sampler.global().beta(x) > sampler.global().beta(y);
            });
  std::printf("\nstrongest circles (beta): ");
  for (int i = 0; i < 5; ++i) {
    const std::uint32_t k = by_strength[static_cast<std::size_t>(i)];
    std::printf("#%u=%.2f(%zu members) ", k, double(sampler.global().beta(k)),
                report.communities[k].size());
  }

  std::printf("\nmembers in 2+ circles: %llu of %u\n",
              static_cast<unsigned long long>(report.overlapping_vertices),
              net.graph.num_vertices());
  return 0;
}
