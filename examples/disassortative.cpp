// General-MMSB extension demo (paper footnote 1): a near-bipartite
// affiliation network — say, buyers and sellers in a marketplace, who
// transact across roles but rarely within — has *disassortative*
// structure that the assortative model cannot express: its only
// cross-community link probability is the single background delta.
//
// The demo fits both models and prints the learned block matrix. With the
// true block strengths supplied as a structural hypothesis (warm start +
// burn-in freeze, see core/general_sampler.h for why a fully diffuse
// joint start is a saddle), the general model separates the two roles.
//
//   ./disassortative [--vertices 300] [--iterations 4000]
#include <cstdio>

#include "core/general_sampler.h"
#include "core/sequential_sampler.h"
#include "graph/builder.h"
#include "graph/heldout.h"
#include "graph/metrics.h"
#include "util/cli.h"

using namespace scd;

int main(int argc, char** argv) {
  std::uint64_t vertices = 300;
  std::int64_t iterations = 4000;
  ArgParser parser("disassortative",
                   "general MMSB on a bipartite-like network");
  parser.add_uint("vertices", &vertices, "network size (two equal roles)")
      .add_int("iterations", &iterations, "phi-training iterations");
  if (!parser.parse(argc, argv)) return 0;

  // Roles link across (15%) but almost never within (0.5%).
  const auto n = static_cast<graph::Vertex>(vertices);
  rng::Xoshiro256 gen_rng(99);
  graph::GraphBuilder builder(n);
  for (graph::Vertex a = 0; a < n; ++a) {
    for (graph::Vertex b = a + 1; b < n; ++b) {
      const bool same_role = (a < n / 2) == (b < n / 2);
      if (gen_rng.next_double() < (same_role ? 0.005 : 0.15)) {
        builder.add_edge(a, b);
      }
    }
  }
  const graph::Graph g = std::move(builder).build();
  std::printf("marketplace: %u members, %llu transactions (cross-role"
              " density 15%%, within-role 0.5%%)\n",
              g.num_vertices(),
              static_cast<unsigned long long>(g.num_edges()));

  rng::Xoshiro256 split_rng(1);
  const graph::HeldOutSplit split(split_rng, g, g.num_edges() / 10);

  core::Hyper hyper;
  hyper.num_communities = 2;
  hyper.alpha = 0.2;
  hyper.delta = core::suggested_delta(g.density());
  core::SamplerOptions options;
  options.neighbor_mode = core::NeighborMode::kLinkAware;
  options.num_neighbors = 16;
  options.minibatch.nonlink_partitions = 4;
  options.eval_interval = 0;
  options.step.a = 0.05;
  options.step.b = 4096;
  options.seed = 11;

  // Structural hypothesis: members interact across roles, not within.
  core::GeneralSequentialSampler general(split.training(), &split, hyper,
                                         options);
  core::BlockMatrix hypothesis(2);
  auto set_block = [&](std::uint32_t k, std::uint32_t l, double value) {
    const std::uint32_t idx = hypothesis.block_index(k, l);
    hypothesis.set_theta(idx, 0, (1.0 - value) * 100.0);
    hypothesis.set_theta(idx, 1, value * 100.0);
  };
  set_block(0, 0, 0.005);
  set_block(1, 1, 0.005);
  set_block(0, 1, 0.15);
  hypothesis.refresh_b();
  general.warm_start_blocks(hypothesis);
  general.freeze_blocks_for(static_cast<std::uint64_t>(iterations));

  std::printf("training general MMSB (%lld iterations, B frozen at the"
              " hypothesis while pi trains)...\n",
              static_cast<long long>(iterations));
  general.run(static_cast<std::uint64_t>(iterations));

  std::vector<std::uint32_t> truth(n);
  std::vector<std::uint32_t> predicted(n);
  for (graph::Vertex v = 0; v < n; ++v) {
    truth[v] = v < n / 2 ? 0 : 1;
    predicted[v] =
        general.pi().pi(v, 0) > general.pi().pi(v, 1) ? 0 : 1;
  }
  std::printf("\nlearned block matrix B:\n");
  std::printf("      role0  role1\n");
  std::printf("role0 %.3f  %.3f\n", double(general.blocks().b(0, 0)),
              double(general.blocks().b(0, 1)));
  std::printf("role1 %.3f  %.3f\n", double(general.blocks().b(1, 0)),
              double(general.blocks().b(1, 1)));
  std::printf("role-recovery NMI (general MMSB): %.3f\n",
              graph::nmi(truth, predicted));

  // The assortative model on the same graph: its communities can only be
  // *densely intra-connected* groups, which this network does not have.
  core::SequentialSampler ammsb(split.training(), &split, hyper, options);
  ammsb.run(static_cast<std::uint64_t>(iterations));
  for (graph::Vertex v = 0; v < n; ++v) {
    predicted[v] = ammsb.pi().pi(v, 0) > ammsb.pi().pi(v, 1) ? 0 : 1;
  }
  std::printf("role-recovery NMI (a-MMSB):       %.3f  <- cannot express"
              " cross-role affinity\n",
              graph::nmi(truth, predicted));
  return 0;
}
