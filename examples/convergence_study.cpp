// Convergence study: track held-out perplexity over a long run on a
// configurable planted graph and write the curve to CSV for plotting.
//
//   ./convergence_study --vertices 2000 --communities 64 --degree 17 \
//       --iterations 50000 --out curve.csv
#include <cstdio>

#include "core/sequential_sampler.h"
#include "graph/generator.h"
#include "graph/heldout.h"
#include "util/cli.h"
#include "util/table.h"

using namespace scd;

int main(int argc, char** argv) {
  std::uint64_t vertices = 2000;
  std::uint64_t communities = 64;
  double degree = 17.0;
  std::int64_t iterations = 50000;
  std::int64_t eval_every = 2000;
  double step_a = 0.01;
  std::string out;
  std::uint64_t seed = 2016;
  ArgParser parser("convergence_study", "perplexity-vs-iteration curves");
  parser.add_uint("vertices", &vertices, "graph size N")
      .add_uint("communities", &communities, "planted and inferred K")
      .add_double("degree", &degree, "average degree")
      .add_int("iterations", &iterations, "total iterations")
      .add_int("eval-every", &eval_every, "evaluation interval")
      .add_double("step-a", &step_a, "step size a")
      .add_string("out", &out, "CSV output path (optional)")
      .add_uint("seed", &seed, "root seed");
  if (!parser.parse(argc, argv)) return 0;

  rng::Xoshiro256 gen_rng(seed);
  const graph::PlantedConfig config = graph::planted_config_for_degree(
      static_cast<graph::Vertex>(vertices),
      static_cast<std::uint32_t>(communities), degree);
  const graph::GeneratedGraph g = graph::generate_planted(gen_rng, config);
  rng::Xoshiro256 split_rng(seed + 1);
  const graph::HeldOutSplit split(
      split_rng, g.graph,
      std::min<std::size_t>(1000, g.graph.num_edges() / 10));

  core::Hyper hyper;
  hyper.num_communities = static_cast<std::uint32_t>(communities);
  hyper.delta = core::suggested_delta(g.graph.density());
  core::SamplerOptions options;
  options.neighbor_mode = core::NeighborMode::kLinkAware;
  options.num_neighbors = 16;
  options.minibatch.nonlink_partitions = 8;
  options.eval_interval = static_cast<std::uint64_t>(eval_every);
  options.step.a = step_a;
  options.step.b = 4096;
  options.seed = seed;

  core::SequentialSampler sampler(split.training(), &split, hyper,
                                  options);
  const double initial = sampler.evaluate_perplexity();
  std::printf("N=%llu K=%llu deg=%.1f: initial perplexity %.3f\n",
              static_cast<unsigned long long>(vertices),
              static_cast<unsigned long long>(communities), degree,
              initial);
  sampler.run(static_cast<std::uint64_t>(iterations));

  Table curve({"iteration", "wall_seconds", "perplexity"});
  curve.add_row({std::int64_t(0), 0.0, initial});
  for (const core::HistoryPoint& p : sampler.history()) {
    std::printf("  iter %6llu  perplexity %.3f\n",
                static_cast<unsigned long long>(p.iteration),
                p.perplexity);
    curve.add_row({static_cast<std::int64_t>(p.iteration), p.seconds,
                   p.perplexity});
  }
  if (!out.empty()) {
    curve.write_csv(out);
    std::printf("curve written to %s\n", out.c_str());
  }
  return 0;
}
