// Quickstart: generate a small graph with planted overlapping
// communities, fit the a-MMSB model with the multithreaded sampler, and
// score the recovered communities against the planted truth.
//
//   ./quickstart [--vertices 400] [--communities 8] [--iterations 4000]
#include <cstdio>

#include "core/parallel_sampler.h"
#include "core/report.h"
#include "graph/generator.h"
#include "graph/heldout.h"
#include "graph/metrics.h"
#include "util/cli.h"
#include "util/units.h"

using namespace scd;

int main(int argc, char** argv) {
  std::uint64_t vertices = 400;
  std::uint64_t communities = 8;
  std::int64_t iterations = 4000;
  std::uint64_t threads = 4;
  std::uint64_t seed = 42;
  ArgParser parser("quickstart",
                   "fit a-MMSB on a planted-community graph");
  parser.add_uint("vertices", &vertices, "graph size N")
      .add_uint("communities", &communities, "planted and inferred K")
      .add_int("iterations", &iterations, "SG-MCMC iterations")
      .add_uint("threads", &threads, "worker threads")
      .add_uint("seed", &seed, "root seed");
  if (!parser.parse(argc, argv)) return 0;

  // 1. A graph with known overlapping community structure.
  rng::Xoshiro256 gen_rng(seed);
  graph::PlantedConfig config;
  config.num_vertices = static_cast<graph::Vertex>(vertices);
  config.num_communities = static_cast<std::uint32_t>(communities);
  config.beta_lo = 0.25;
  config.beta_hi = 0.4;
  config.delta = 8.0 / static_cast<double>(vertices);
  const graph::GeneratedGraph generated =
      graph::generate_planted(gen_rng, config);
  std::printf("graph: %u vertices, %s edges, %zu planted communities\n",
              generated.graph.num_vertices(),
              format_count(generated.graph.num_edges()).c_str(),
              generated.truth.communities.size());

  // 2. Hold out edges for evaluation; train on the rest.
  rng::Xoshiro256 split_rng(seed + 1);
  const graph::HeldOutSplit split(split_rng, generated.graph,
                                  generated.graph.num_edges() / 10);

  core::Hyper hyper;
  hyper.num_communities = static_cast<std::uint32_t>(communities);
  hyper.delta = core::suggested_delta(generated.graph.density());
  core::SamplerOptions options;
  options.neighbor_mode = core::NeighborMode::kLinkAware;
  options.num_neighbors = 24;
  options.eval_interval = 500;
  options.step.a = 0.05;
  options.seed = seed;

  core::ParallelSampler sampler(split.training(), &split, hyper, options,
                                static_cast<unsigned>(threads));
  const double initial = sampler.evaluate_perplexity();
  std::printf("initial held-out perplexity: %.3f\n", initial);

  // 3. Train.
  sampler.run(static_cast<std::uint64_t>(iterations));
  for (const core::HistoryPoint& p : sampler.history()) {
    std::printf("  iter %6llu  %-10s perplexity %.3f\n",
                static_cast<unsigned long long>(p.iteration),
                format_duration(p.seconds).c_str(), p.perplexity);
  }

  // 4. Extract and score communities.
  const core::CommunityReport report = core::extract_communities(
      sampler.pi(), core::default_membership_threshold(
                        hyper.num_communities));
  std::vector<std::uint32_t> truth_labels(generated.graph.num_vertices());
  for (graph::Vertex v = 0; v < generated.graph.num_vertices(); ++v) {
    truth_labels[v] = generated.truth.memberships[v].front();
  }
  std::printf("\nrecovered %zu non-empty communities, %llu vertices with"
              " overlapping membership\n",
              std::count_if(report.communities.begin(),
                            report.communities.end(),
                            [](const auto& c) { return !c.empty(); }),
              static_cast<unsigned long long>(report.overlapping_vertices));
  std::printf("dominant-label NMI vs planted truth: %.3f\n",
              graph::nmi(truth_labels, report.dominant));
  std::printf("best-match F1 vs planted cover:      %.3f\n",
              graph::best_match_f1(generated.truth.communities,
                                   report.communities));
  return 0;
}
