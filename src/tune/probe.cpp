#include "tune/probe.h"

#include "core/distributed_sampler.h"
#include "core/hyper.h"
#include "sim/cluster.h"
#include "trace/critical_path.h"
#include "trace/recorder.h"
#include "util/error.h"

namespace scd::tune {

void TuneWorkload::validate() const {
  SCD_REQUIRE(num_vertices >= 2, "tune workload: need >= 2 vertices");
  SCD_REQUIRE(avg_degree > 0.0, "tune workload: avg_degree must be > 0");
  SCD_REQUIRE(num_communities >= 1, "tune workload: need >= 1 community");
  SCD_REQUIRE(num_neighbors >= 1, "tune workload: need >= 1 neighbor");
  SCD_REQUIRE(probe_iterations >= 1, "tune workload: need >= 1 iteration");
  SCD_REQUIRE(sat_vertices > 0.0, "tune workload: sat_vertices must be > 0");
  network.validate();
  compute.validate();
}

double progress(double minibatch_vertices, double sat_vertices) {
  return minibatch_vertices / (minibatch_vertices + sat_vertices);
}

ProbeResult run_probe(const TuneWorkload& workload,
                      const TuneConfig& config) {
  workload.validate();
  SCD_REQUIRE(config.workers >= 1, "probe: need >= 1 worker");

  sim::SimCluster::Config cc;
  cc.num_ranks = config.workers + 1;
  cc.network = workload.network;
  cc.compute = workload.compute;
  cc.compute.threads_per_node = config.threads_per_node;
  sim::SimCluster cluster(cc);

  core::Hyper hyper;
  hyper.num_communities = workload.num_communities;

  core::PhantomWorkload phantom;
  phantom.num_vertices = workload.num_vertices;
  phantom.avg_degree = workload.avg_degree;
  phantom.minibatch_vertices = config.minibatch_vertices;
  phantom.minibatch_pairs = config.minibatch_vertices / 2;
  phantom.heldout_pairs = 0;  // probes never evaluate perplexity

  trace::TraceRecorder recorder(cc.num_ranks);
  core::DistributedOptions options;
  options.base.num_neighbors = workload.num_neighbors;
  options.base.eval_interval = 0;
  options.base.seed = workload.seed;
  options.base.minibatch.alias_anchor = config.alias_draw;
  options.pipeline = config.pipeline;
  options.dkv_cache_rows = config.dkv_cache_rows;
  options.pi_codec = config.pi_codec;
  if (config.sparse_eps > 0.0) {
    // Sparsity > 0 lifts the dense value codec to its sparse variant.
    options.pi_codec = quant::sparse_codec_for(config.pi_codec);
    options.sparse_eps = static_cast<float>(config.sparse_eps);
  }
  options.trace = &recorder;

  core::DistributedSampler sampler(cluster, phantom, hyper, options);
  const core::DistributedResult run = sampler.run(workload.probe_iterations);
  const trace::CriticalPathReport path =
      trace::analyze_critical_path(recorder);

  ProbeResult r;
  r.config = config;
  r.virtual_s = run.virtual_seconds;
  r.per_iteration_s = run.avg_iteration_seconds;
  r.objective =
      r.per_iteration_s /
      progress(static_cast<double>(config.minibatch_vertices),
               workload.sat_vertices);
  r.on_path_s = path.on_path_s;

  // The kUpdatePhi span wraps the whole pi-load/compute pipeline (the
  // two overlap under double buffering, so no span can separate them);
  // PhaseStats still books the un-overlapped load and compute totals, so
  // their ratio splits the on-path share.
  const double load = run.critical_path.get(sim::Phase::kLoadPi);
  const double comp = run.critical_path.get(sim::Phase::kUpdatePhi);
  const double phi_on_path = r.on_path(trace::Stage::kUpdatePhi) +
                             r.on_path(trace::Stage::kLoadPi);
  const double load_frac = load + comp > 0.0 ? load / (load + comp) : 0.0;
  r.phi_load_s = phi_on_path * load_frac;
  r.phi_compute_s = phi_on_path - r.phi_load_s;

  const double total = r.virtual_s > 0.0 ? r.virtual_s : 1.0;
  r.comm_share = (r.on_path(trace::Stage::kDeployMinibatch) +
                  r.on_path(trace::Stage::kNetwork) +
                  r.on_path(trace::Stage::kCollective) +
                  r.on_path(trace::Stage::kBarrierWait) + r.phi_load_s) /
                 total;
  // update_beta's embedded pair-row loads are classified as compute here:
  // the kUpdateBetaTheta span does not separate them, and the pruner
  // only needs the coarse compute-vs-comm split to pick directions.
  r.compute_share = (r.on_path(trace::Stage::kDrawMinibatch) +
                     r.on_path(trace::Stage::kSampleNeighbors) +
                     r.phi_compute_s +
                     r.on_path(trace::Stage::kUpdatePi) +
                     r.on_path(trace::Stage::kUpdateBetaTheta) +
                     r.on_path(trace::Stage::kPerplexity)) /
                    total;

  const auto& metrics = recorder.metrics();
  const double hits = static_cast<double>(
      metrics.counter_total(trace::Metric::kDkvHits));
  const double misses = static_cast<double>(
      metrics.counter_total(trace::Metric::kDkvMisses));
  r.dkv_hit_rate = hits + misses > 0.0 ? hits / (hits + misses) : 0.0;
  r.metrics_json = metrics.to_json();
  return r;
}

}  // namespace scd::tune
