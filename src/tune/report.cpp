#include "tune/report.h"

#include <cstdio>
#include <set>
#include <sstream>
#include <string>
#include <tuple>

namespace scd::tune {

namespace {

std::string num(double v) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  return buf;
}

std::string quoted(const std::string& s) { return "\"" + s + "\""; }

void append_config(std::ostringstream& os, const TuneConfig& c) {
  os << "{\"key\": " << quoted(c.key()) << ", \"workers\": " << c.workers
     << ", \"threads_per_node\": " << c.threads_per_node
     << ", \"pipeline\": " << (c.pipeline ? 1 : 0)
     << ", \"minibatch_vertices\": " << c.minibatch_vertices
     << ", \"dkv_cache_rows\": " << c.dkv_cache_rows
     << ", \"alias_draw\": " << (c.alias_draw ? 1 : 0)
     << ", \"pi_codec\": " << quoted(quant::codec_name(c.pi_codec))
     << ", \"sparse_eps\": " << num(c.sparse_eps) << "}";
}

void append_probe(std::ostringstream& os, const ProbeResult& p,
                  const std::string& indent) {
  os << indent << "{\n";
  os << indent << "  \"config\": ";
  append_config(os, p.config);
  os << ",\n";
  os << indent << "  \"virtual_s\": " << num(p.virtual_s) << ",\n";
  os << indent << "  \"per_iteration_s\": " << num(p.per_iteration_s)
     << ",\n";
  os << indent << "  \"objective\": " << num(p.objective) << ",\n";
  os << indent << "  \"critical_path\": {";
  for (std::size_t s = 0; s < trace::kNumStages; ++s) {
    if (s) os << ", ";
    os << quoted(trace::stage_name(static_cast<trace::Stage>(s))) << ": "
       << num(p.on_path_s[s]);
  }
  os << "},\n";
  os << indent << "  \"phi_load_s\": " << num(p.phi_load_s) << ",\n";
  os << indent << "  \"phi_compute_s\": " << num(p.phi_compute_s) << ",\n";
  os << indent << "  \"comm_share\": " << num(p.comm_share) << ",\n";
  os << indent << "  \"compute_share\": " << num(p.compute_share) << ",\n";
  os << indent << "  \"dkv_hit_rate\": " << num(p.dkv_hit_rate) << ",\n";
  // metrics_json is already serialized JSON (a MetricsRegistry table
  // array); embed it verbatim.
  os << indent << "  \"metrics\": " << p.metrics_json << "\n";
  os << indent << "}";
}

std::string pct(double share) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.1f%%", share * 100.0);
  return buf;
}

std::string ms(double seconds) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.3f ms", seconds * 1e3);
  return buf;
}

}  // namespace

std::string tuning_log_json(const TuneResult& result) {
  std::ostringstream os;
  os << "{\n";
  os << "  \"grid_size\": " << result.grid_size << ",\n";
  os << "  \"probes_run\": " << result.probes.size() << ",\n";
  os << "  \"probe_fraction\": " << num(result.probe_fraction()) << ",\n";
  os << "  \"rounds\": " << result.rounds << ",\n";
  os << "  \"best\":\n";
  append_probe(os, result.best, "  ");
  os << ",\n  \"probes\": [\n";
  for (std::size_t i = 0; i < result.probes.size(); ++i) {
    append_probe(os, result.probes[i], "    ");
    os << (i + 1 < result.probes.size() ? ",\n" : "\n");
  }
  os << "  ],\n";
  os << "  \"prunes\": [\n";
  for (std::size_t i = 0; i < result.prunes.size(); ++i) {
    const PruneRecord& r = result.prunes[i];
    os << "    {\"round\": " << r.round << ", \"dim\": "
       << quoted(dim_name(r.decision.dim)) << ", \"direction\": "
       << quoted(r.decision.upward ? "up" : "down") << ", \"rule\": "
       << quoted(r.decision.rule) << ", \"share_name\": "
       << quoted(r.decision.cited_share_name) << ", \"share\": "
       << num(r.decision.cited_share) << ", \"threshold\": "
       << num(r.decision.threshold) << ", \"why\": "
       << quoted(r.decision.why) << "}"
       << (i + 1 < result.prunes.size() ? ",\n" : "\n");
  }
  os << "  ]\n";
  os << "}\n";
  return os.str();
}

std::string why_report(const TuneResult& result) {
  std::ostringstream os;
  os << "scd tune: searched " << result.probes.size() << "/"
     << result.grid_size << " configurations (" <<
      pct(result.probe_fraction()) << " of the grid) in " << result.rounds
     << " round(s)\n\n";

  const ProbeResult& start = result.probes.front();
  const ProbeResult& best = result.best;
  os << "start  " << start.config.key() << "  objective "
     << ms(start.objective) << "/iteration\n";
  os << "best   " << best.config.key() << "  objective "
     << ms(best.objective) << "/iteration";
  if (best.objective > 0.0) {
    os << "  (" << pct(start.objective / best.objective - 1.0)
       << " faster than start)";
  }
  os << "\n\n";

  os << "where the best configuration spends its critical path:\n";
  for (std::size_t s = 0; s < trace::kNumStages; ++s) {
    const auto stage = static_cast<trace::Stage>(s);
    if (best.on_path_s[s] <= 0.0) continue;
    os << "  " << trace::stage_name(stage) << ": "
       << ms(best.on_path_s[s]) << " (" << pct(best.share(stage)) << ")\n";
  }
  os << "  comm share " << pct(best.comm_share) << ", compute share "
     << pct(best.compute_share);
  if (best.config.dkv_cache_rows > 0) {
    os << ", dkv hit rate " << pct(best.dkv_hit_rate);
  }
  os << "\n\n";

  if (result.prunes.empty()) {
    os << "pruned directions: none — every direction stayed live\n";
    return os.str();
  }
  os << "pruned directions (each cites the share that justified it):\n";
  // A rule refiring in later rounds adds no information; keep the first
  // occurrence of each (dimension, direction, rule).
  std::set<std::tuple<Dim, bool, std::string>> seen;
  for (const PruneRecord& r : result.prunes) {
    if (!seen.emplace(r.decision.dim, r.decision.upward, r.decision.rule)
             .second) {
      continue;
    }
    os << "  [round " << r.round << "] " << dim_name(r.decision.dim)
       << (r.decision.upward ? " up" : " down") << " — " << r.decision.rule
       << ": " << r.decision.why << " [" << r.decision.cited_share_name
       << " = " << pct(r.decision.cited_share) << ", threshold "
       << pct(r.decision.threshold) << "]\n";
  }
  return os.str();
}

}  // namespace scd::tune
