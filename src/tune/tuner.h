// The search loop: deterministic greedy coordinate descent over the
// grid, with attribution-based pruning cutting candidate directions
// before they are probed.
//
// Each round starts by asking the pruner what the current best probe's
// critical path rules out, then sweeps the dimensions in enum order,
// probing every unpruned candidate along one dimension while the others
// stay fixed, and moving to the best point found. Probes are memoized
// by grid index, so revisits are free; the loop ends when a full round
// makes no move (or after max_rounds). Everything — sweep order,
// tie-breaks (lowest index wins), probe costs — is deterministic, so
// tune() is bit-stable for a fixed workload and space.
#pragma once

#include <cstdint>
#include <vector>

#include "tune/probe.h"
#include "tune/pruner.h"
#include "tune/search_space.h"

namespace scd::tune {

/// A pruning decision stamped with the round whose best-probe
/// attribution produced it.
struct PruneRecord {
  std::uint64_t round = 0;
  PruneDecision decision;
};

struct TuneResult {
  SearchSpace space;
  /// The winning probe (lowest objective seen).
  ProbeResult best;
  ConfigIndex best_index{};
  /// Every distinct probe executed, in execution order. probes.front()
  /// is the starting configuration (index all-zeros), so
  /// probes.front().objective / best.objective is the tuned speedup.
  std::vector<ProbeResult> probes;
  /// Every pruning decision taken, in order.
  std::vector<PruneRecord> prunes;
  std::uint64_t grid_size = 0;
  std::uint64_t rounds = 0;

  double probe_fraction() const {
    return grid_size > 0
               ? static_cast<double>(probes.size()) /
                     static_cast<double>(grid_size)
               : 0.0;
  }
};

struct TuneOptions {
  PruneRules rules{};
  /// Hard stop on coordinate-descent rounds; convergence (a moveless
  /// round) usually ends the search in 2-3.
  std::uint64_t max_rounds = 8;
};

/// Search `space` for the configuration minimizing ProbeResult::objective
/// on `workload`, starting from index all-zeros (by convention the
/// default / mis-configured corner of the grid).
TuneResult tune(const TuneWorkload& workload, const SearchSpace& space,
                const TuneOptions& options = {});

}  // namespace scd::tune
