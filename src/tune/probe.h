// One autotuner probe: a short, deterministic cost-only run of the
// distributed sampler at a candidate configuration, with the trace
// recorder installed so the probe comes back *attributed* — per-stage
// critical-path buckets and the metrics snapshot, not just a scalar
// time. The pruner reasons over those shares; the report writer prints
// them.
//
// Probes are seeded and virtual-time only: the same (workload, config)
// always produces bit-identical ProbeResults, which makes `scd tune`
// output byte-stable (the acceptance test diffs two full runs).
#pragma once

#include <array>
#include <cstdint>
#include <string>

#include "sim/compute_model.h"
#include "sim/network_model.h"
#include "trace/stage.h"
#include "tune/search_space.h"

namespace scd::tune {

/// The fixed (non-tuned) problem a tuning session optimizes for.
struct TuneWorkload {
  std::uint64_t num_vertices = 1'000'000;
  double avg_degree = 32.0;
  std::uint32_t num_communities = 1024;
  std::uint32_t num_neighbors = 32;
  /// Iterations per probe. Small: a probe is meant to cost milliseconds
  /// of real time; the steady-state per-iteration cost converges after
  /// the first pipelined iteration.
  std::uint64_t probe_iterations = 6;
  std::uint64_t seed = 1;
  /// Statistical saturation scale for the objective (below). Half of the
  /// per-iteration progress credit is reached at M = sat_vertices.
  double sat_vertices = 8192.0;
  sim::NetworkModel network{};
  sim::ComputeModel compute{};

  void validate() const;
};

/// Diminishing-returns credit for a minibatch of M vertices: M/(M+sat),
/// in (0, 1). Crude stand-in for the statistical efficiency of a bigger
/// minibatch (SG-MCMC mixing improves sublinearly in M); it exists so
/// "biggest M always wins" is not baked into the objective. Replace with
/// a measured mixing curve if one is ever calibrated.
double progress(double minibatch_vertices, double sat_vertices);

/// Everything one probe learned about one configuration.
struct ProbeResult {
  TuneConfig config{};
  /// Total virtual seconds of the probe run (all iterations).
  double virtual_s = 0.0;
  double per_iteration_s = 0.0;
  /// What the tuner minimizes: per-iteration virtual seconds divided by
  /// the progress() credit of the configured minibatch size.
  double objective = 0.0;
  /// Critical-path seconds per stage; sums to virtual_s.
  std::array<double, trace::kNumStages> on_path_s{};
  /// The kUpdatePhi span covers the overlapped load+compute pipeline;
  /// these split its on-path share by the PhaseStats load/compute ratio.
  double phi_load_s = 0.0;
  double phi_compute_s = 0.0;
  /// Fraction of virtual_s the chain spent moving or waiting on data
  /// (deploy, network, collectives, barriers, pi loads) vs computing.
  /// The two need not sum to 1: setup/untracked time belongs to neither.
  double comm_share = 0.0;
  double compute_share = 0.0;
  /// Modeled DKV cache hit rate, hits/(hits+misses); 0 when no cache.
  double dkv_hit_rate = 0.0;
  /// MetricsRegistry::to_json() snapshot of the probe.
  std::string metrics_json;

  double on_path(trace::Stage s) const {
    return on_path_s[static_cast<std::size_t>(s)];
  }
  /// Stage's share of total virtual time, in [0, 1].
  double share(trace::Stage s) const {
    return virtual_s > 0.0 ? on_path(s) / virtual_s : 0.0;
  }
};

/// Run one probe. Deterministic; safe to call from anywhere (builds its
/// own cluster and recorder).
ProbeResult run_probe(const TuneWorkload& workload, const TuneConfig& config);

}  // namespace scd::tune
