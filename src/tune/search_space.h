// The autotuner's configuration grid.
//
// Eight dimensions, each a small ordered value list; a concrete
// configuration is one index per dimension (ConfigIndex). The grid is
// the cartesian product — typically a few hundred points — and the
// tuner's whole job is to probe a small fraction of it. DKV shards are
// not a separate dimension: the store shards pi one-to-one over workers
// (dkv/sim_rdma_dkv.h), so kWorkers *is* the shard count.
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "quant/row_codec.h"

namespace scd::tune {

/// Grid dimensions, in the order the tuner sweeps them.
enum class Dim : std::size_t {
  kWorkers = 0,         // worker ranks == DKV shards
  kThreadsPerNode,      // ComputeModel::threads_per_node
  kPipeline,            // DistributedOptions::pipeline (0/1)
  kMinibatchVertices,   // PhantomWorkload::minibatch_vertices (M)
  kDkvCacheRows,        // DistributedOptions::dkv_cache_rows
  kAliasDraw,           // MinibatchSampler::Options::alias_anchor (0/1)
  kPiCodec,             // DistributedOptions::pi_codec (quant::RowCodec)
  kSparsity,            // sparse top-R eps in basis points (0 = dense)
  kCount
};

constexpr std::size_t kNumDims = static_cast<std::size_t>(Dim::kCount);

const char* dim_name(Dim d);

/// One grid point: an index into each dimension's value list.
using ConfigIndex = std::array<std::size_t, kNumDims>;

/// A materialized grid point — the knobs a probe actually runs with.
struct TuneConfig {
  unsigned workers = 4;
  unsigned threads_per_node = 16;
  bool pipeline = true;
  std::uint32_t minibatch_vertices = 4096;
  std::uint64_t dkv_cache_rows = 0;
  bool alias_draw = false;
  quant::RowCodec pi_codec = quant::RowCodec::kFloat32;
  /// Sparse top-R mass tolerance; 0 keeps `pi_codec` dense, > 0 lifts it
  /// to the matching sparse codec (quant::sparse_codec_for) with this
  /// eps. Stored in the grid as basis points (kSparsity / 10000).
  double sparse_eps = 0.0;

  /// Compact human/JSON label, e.g.
  /// "w8 t16 pipe=1 M4096 cache=0 alias=0 codec=fp32 seps=0".
  std::string key() const;
};

struct SearchSpace {
  /// values[d] is dimension d's ordered candidate list (ascending for
  /// the numeric dimensions; {0, 1} for the boolean ones). All values
  /// are stored as uint64 and narrowed by materialize().
  std::array<std::vector<std::uint64_t>, kNumDims> values;

  const std::vector<std::uint64_t>& dim(Dim d) const {
    return values[static_cast<std::size_t>(d)];
  }
  std::vector<std::uint64_t>& dim(Dim d) {
    return values[static_cast<std::size_t>(d)];
  }

  /// Product of the dimension sizes.
  std::uint64_t grid_size() const;

  TuneConfig materialize(const ConfigIndex& index) const;

  /// Every dimension non-empty, booleans restricted to {0, 1}, workers
  /// and threads >= 1. Throws util::Error otherwise.
  void validate() const;

  /// The stock grid `scd tune` searches: workers {4, 8, 16, 32},
  /// threads {4, 8, 16}, pipeline {off, on}, M {2048..16384}, cache
  /// {none, N/64, N/4}, alias {off, on}, pi codec {fp32, fp16, int8},
  /// sparsity {dense, eps 0.01, eps 0.05} — 5184 points.
  static SearchSpace default_space(std::uint64_t num_vertices);
};

}  // namespace scd::tune
