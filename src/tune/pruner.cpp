#include "tune/pruner.h"

#include <cstdio>

namespace scd::tune {

namespace {

std::string pct(double share) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.1f%%", share * 100.0);
  return buf;
}

PruneDecision make(Dim dim, bool upward, const char* rule,
                   const char* share_name, double share, double threshold,
                   std::string why) {
  PruneDecision d;
  d.dim = dim;
  d.upward = upward;
  d.rule = rule;
  d.cited_share_name = share_name;
  d.cited_share = share;
  d.threshold = threshold;
  d.why = std::move(why);
  return d;
}

}  // namespace

std::vector<PruneDecision> prune_directions(const ProbeResult& probe,
                                            const PruneRules& rules) {
  std::vector<PruneDecision> out;
  const double total = probe.virtual_s > 0.0 ? probe.virtual_s : 1.0;

  // 1. Synchronization dominates: every extra worker adds collective
  // fan-in and barrier skew, so larger cluster sizes cannot win.
  const double sync_share = probe.share(trace::Stage::kCollective) +
                            probe.share(trace::Stage::kBarrierWait) +
                            probe.share(trace::Stage::kNetwork);
  if (sync_share >= rules.sync_bound) {
    out.push_back(make(
        Dim::kWorkers, true, "sync-bound-workers-up", "sync_share",
        sync_share, rules.sync_bound,
        "collectives+barriers+network hold " + pct(sync_share) +
            " of the critical path (>= " + pct(rules.sync_bound) +
            "): more workers only deepen synchronization — not trying"
            " larger cluster sizes"));
  }

  // 2. Per-worker stages dominate: the path runs through work that
  // shrinks ~1/W, so fewer workers cannot win.
  const double worker_share = (probe.phi_load_s + probe.phi_compute_s) / total +
                              probe.share(trace::Stage::kSampleNeighbors) +
                              probe.share(trace::Stage::kUpdatePi) +
                              probe.share(trace::Stage::kUpdateBetaTheta);
  if (worker_share >= rules.worker_bound) {
    out.push_back(make(
        Dim::kWorkers, false, "worker-bound-workers-down", "worker_share",
        worker_share, rules.worker_bound,
        "per-worker stages hold " + pct(worker_share) +
            " of the critical path (>= " + pct(rules.worker_bound) +
            "): that work shrinks with cluster size — not trying fewer"
            " workers"));
  }

  // 3. Compute-bound: kernels own the path, so weaker nodes cannot win.
  if (probe.compute_share >= rules.compute_bound) {
    out.push_back(make(
        Dim::kThreadsPerNode, false, "compute-bound-threads-down",
        "compute_share", probe.compute_share, rules.compute_bound,
        "compute stages hold " + pct(probe.compute_share) +
            " of the critical path (>= " + pct(rules.compute_bound) +
            "): kernels scale with threads — not trying fewer"
            " threads/node"));
  }

  // 4. Communication-bound: kernels are nowhere on the path, so faster
  // nodes cannot win either.
  if (probe.compute_share <= rules.comm_bound) {
    out.push_back(make(
        Dim::kThreadsPerNode, true, "comm-bound-threads-up",
        "compute_share", probe.compute_share, rules.comm_bound,
        "compute stages hold only " + pct(probe.compute_share) +
            " of the critical path (<= " + pct(rules.comm_bound) +
            "): kernels are not the bottleneck — not trying more"
            " threads/node"));
  }

  // 5. Pipelining hides draw/deploy/pi-loads behind compute; if those
  // are already negligible there is nothing to hide.
  const double hideable = probe.share(trace::Stage::kDrawMinibatch) +
                          probe.share(trace::Stage::kDeployMinibatch) +
                          probe.phi_load_s / total;
  if (!probe.config.pipeline && hideable <= rules.hideable_floor) {
    out.push_back(make(
        Dim::kPipeline, true, "nothing-to-hide-pipeline-on",
        "hideable_share", hideable, rules.hideable_floor,
        "draw+deploy+pi-load hold only " + pct(hideable) +
            " of the critical path (<= " + pct(rules.hideable_floor) +
            "): pipelining has nothing to hide — not trying it"));
  }

  // 6. The cache already serves ~every remote read; more rows buy
  // nothing.
  if (probe.config.dkv_cache_rows > 0 &&
      probe.dkv_hit_rate >= rules.cache_saturated) {
    out.push_back(make(
        Dim::kDkvCacheRows, true, "cache-saturated-cache-up",
        "dkv_hit_rate", probe.dkv_hit_rate, rules.cache_saturated,
        "DKV cache hit rate is " + pct(probe.dkv_hit_rate) + " (>= " +
            pct(rules.cache_saturated) +
            "): remote reads are already served locally — not trying"
            " larger caches"));
  }

  // 7. Remote pi loads are off the path; caching them cannot shorten it.
  const double loads_share =
      probe.share(trace::Stage::kNetwork) + probe.phi_load_s / total;
  if (loads_share <= rules.loads_floor) {
    out.push_back(make(
        Dim::kDkvCacheRows, true, "loads-off-path-cache-up", "loads_share",
        loads_share, rules.loads_floor,
        "network+pi-load hold only " + pct(loads_share) +
            " of the critical path (<= " + pct(rules.loads_floor) +
            "): cached reads cannot shorten it — not trying larger"
            " caches"));
  }

  // 8. The master's draw is off the path; the alias-vs-rejection choice
  // is cost-irrelevant, so freeze the dimension (both directions).
  const double draw_share = probe.share(trace::Stage::kDrawMinibatch);
  if (draw_share <= rules.draw_floor) {
    const std::string why =
        "minibatch draw holds only " + pct(draw_share) +
        " of the critical path (<= " + pct(rules.draw_floor) +
        "): the anchor-draw method cannot matter — freezing alias_draw";
    out.push_back(make(Dim::kAliasDraw, true, "draw-off-path-alias",
                       "draw_share", draw_share, rules.draw_floor, why));
    out.push_back(make(Dim::kAliasDraw, false, "draw-off-path-alias",
                       "draw_share", draw_share, rules.draw_floor, why));
  }

  return out;
}

}  // namespace scd::tune
