// Report writers for a finished tuning session.
//
// Two outputs, per the design contract:
//  * tuning_log_json — the machine-readable log: every probe with its
//    config, virtual time, per-stage critical-path buckets, and metrics
//    snapshot, plus every pruning decision. Doubles use the %.17g idiom
//    of util/table.h so the log round-trips exactly; two runs with the
//    same seed produce byte-identical files (tested).
//  * why_report — the human-readable explanation: what was searched,
//    what won, where its time goes, and — for every pruned direction —
//    the critical-path share that justified cutting it.
#pragma once

#include <string>

#include "tune/tuner.h"

namespace scd::tune {

std::string tuning_log_json(const TuneResult& result);

std::string why_report(const TuneResult& result);

}  // namespace scd::tune
