// Attribution-based pruning: turn a probe's critical-path shares into
// "never move dimension D in direction X" decisions.
//
// This is where observability becomes the search heuristic. Each rule
// reads a named share out of the ProbeResult (a critical-path stage
// share, the comm/compute split, or the DKV hit rate), compares it to a
// threshold, and — when it fires — rules out every candidate on one
// side of the current point along one dimension. Every decision records
// the share it cited, so the "why" report can trace each pruned
// direction back to the attribution that justified it (an acceptance
// criterion, not a nicety).
#pragma once

#include <string>
#include <vector>

#include "tune/probe.h"
#include "tune/search_space.h"

namespace scd::tune {

/// One pruned direction: along `dim`, candidates above (upward) or
/// below (!upward) the current index are ruled out.
struct PruneDecision {
  Dim dim{};
  bool upward = true;
  /// Stable rule identifier, e.g. "sync-bound-workers-up".
  std::string rule;
  /// The share the rule read, e.g. "sync_share" or "dkv_hit_rate".
  std::string cited_share_name;
  double cited_share = 0.0;
  double threshold = 0.0;
  /// Human sentence: what was measured, against what threshold, and
  /// what it rules out.
  std::string why;
};

/// Thresholds, exposed for tests; the defaults are deliberately
/// conservative — a rule should only fire when the attribution is
/// unambiguous, because a wrong prune costs optimality while a missing
/// prune only costs probes.
struct PruneRules {
  double sync_bound = 0.60;       // collective+barrier+network share
  double worker_bound = 0.50;     // per-worker stage share
  double compute_bound = 0.60;    // compute_share
  double comm_bound = 0.10;       // compute_share floor
  double hideable_floor = 0.05;   // draw+deploy+load share
  double cache_saturated = 0.95;  // dkv_hit_rate
  double loads_floor = 0.05;      // network+phi_load share
  double draw_floor = 0.02;       // draw share
};

/// Evaluate every rule against `probe`; decisions come back in fixed
/// rule order (deterministic, like everything else in the tuner).
std::vector<PruneDecision> prune_directions(const ProbeResult& probe,
                                            const PruneRules& rules = {});

}  // namespace scd::tune
