#include "tune/search_space.h"

#include <algorithm>
#include <cstdio>

#include "util/error.h"

namespace scd::tune {

const char* dim_name(Dim d) {
  switch (d) {
    case Dim::kWorkers: return "workers";
    case Dim::kThreadsPerNode: return "threads_per_node";
    case Dim::kPipeline: return "pipeline";
    case Dim::kMinibatchVertices: return "minibatch_vertices";
    case Dim::kDkvCacheRows: return "dkv_cache_rows";
    case Dim::kAliasDraw: return "alias_draw";
    case Dim::kPiCodec: return "pi_codec";
    case Dim::kSparsity: return "sparsity";
    case Dim::kCount: break;
  }
  return "?";
}

std::string TuneConfig::key() const {
  return "w" + std::to_string(workers) + " t" +
         std::to_string(threads_per_node) +
         " pipe=" + std::to_string(pipeline ? 1 : 0) + " M" +
         std::to_string(minibatch_vertices) +
         " cache=" + std::to_string(dkv_cache_rows) +
         " alias=" + std::to_string(alias_draw ? 1 : 0) +
         " codec=" + quant::codec_name(pi_codec) + " seps=" + [this] {
           char buf[32];
           std::snprintf(buf, sizeof buf, "%g", sparse_eps);
           return std::string(buf);
         }();
}

std::uint64_t SearchSpace::grid_size() const {
  std::uint64_t n = 1;
  for (const auto& v : values) n *= v.size();
  return n;
}

TuneConfig SearchSpace::materialize(const ConfigIndex& index) const {
  for (std::size_t d = 0; d < kNumDims; ++d) {
    SCD_REQUIRE(index[d] < values[d].size(), "config index out of range");
  }
  TuneConfig c;
  c.workers = static_cast<unsigned>(dim(Dim::kWorkers)[index[0]]);
  c.threads_per_node =
      static_cast<unsigned>(dim(Dim::kThreadsPerNode)[index[1]]);
  c.pipeline = dim(Dim::kPipeline)[index[2]] != 0;
  c.minibatch_vertices =
      static_cast<std::uint32_t>(dim(Dim::kMinibatchVertices)[index[3]]);
  c.dkv_cache_rows = dim(Dim::kDkvCacheRows)[index[4]];
  c.alias_draw = dim(Dim::kAliasDraw)[index[5]] != 0;
  c.pi_codec = static_cast<quant::RowCodec>(dim(Dim::kPiCodec)[index[6]]);
  c.sparse_eps =
      static_cast<double>(dim(Dim::kSparsity)[index[7]]) / 10000.0;
  return c;
}

void SearchSpace::validate() const {
  for (std::size_t d = 0; d < kNumDims; ++d) {
    SCD_REQUIRE(!values[d].empty(),
                std::string("search space: empty dimension ") +
                    dim_name(static_cast<Dim>(d)));
  }
  for (const Dim b : {Dim::kPipeline, Dim::kAliasDraw}) {
    for (const std::uint64_t v : dim(b)) {
      SCD_REQUIRE(v <= 1, std::string("search space: ") + dim_name(b) +
                              " values must be 0/1");
    }
  }
  for (const Dim d : {Dim::kWorkers, Dim::kThreadsPerNode,
                      Dim::kMinibatchVertices}) {
    for (const std::uint64_t v : dim(d)) {
      SCD_REQUIRE(v >= 1, std::string("search space: ") + dim_name(d) +
                              " values must be >= 1");
    }
  }
  for (const std::uint64_t v : dim(Dim::kPiCodec)) {
    SCD_REQUIRE(v < quant::kNumCodecs,
                "search space: pi_codec values must be quant::RowCodec"
                " enumerators");
    SCD_REQUIRE(!quant::is_sparse(static_cast<quant::RowCodec>(v)),
                "search space: pi_codec lists dense value codecs; "
                "sparsity > 0 lifts them to the sparse variant");
  }
  for (const std::uint64_t v : dim(Dim::kSparsity)) {
    SCD_REQUIRE(v < 10000,
                "search space: sparsity values are eps basis points in "
                "[0, 10000)");
  }
}

SearchSpace SearchSpace::default_space(std::uint64_t num_vertices) {
  SearchSpace s;
  s.dim(Dim::kWorkers) = {4, 8, 16, 32};
  s.dim(Dim::kThreadsPerNode) = {4, 8, 16};
  s.dim(Dim::kPipeline) = {0, 1};
  s.dim(Dim::kMinibatchVertices) = {2048, 4096, 8192, 16384};
  // Cache candidates scale with the problem; dedup in case N is tiny
  // enough for the tiers to collide.
  std::vector<std::uint64_t> cache = {0, num_vertices / 64,
                                      num_vertices / 4};
  std::sort(cache.begin(), cache.end());
  cache.erase(std::unique(cache.begin(), cache.end()), cache.end());
  s.dim(Dim::kDkvCacheRows) = cache;
  s.dim(Dim::kAliasDraw) = {0, 1};
  s.dim(Dim::kPiCodec) = {
      static_cast<std::uint64_t>(quant::RowCodec::kFloat32),
      static_cast<std::uint64_t>(quant::RowCodec::kFp16),
      static_cast<std::uint64_t>(quant::RowCodec::kInt8)};
  // Sparse top-R eps in basis points: dense, tight (0.01), loose (0.05).
  s.dim(Dim::kSparsity) = {0, 100, 500};
  s.validate();
  return s;
}

}  // namespace scd::tune
