#include "tune/tuner.h"

#include <map>

namespace scd::tune {

namespace {

/// Is candidate index `j` along `dim` ruled out relative to the current
/// index `cur_j` by any of this round's decisions?
bool is_pruned(const std::vector<PruneDecision>& decisions, Dim dim,
               std::size_t j, std::size_t cur_j) {
  for (const PruneDecision& d : decisions) {
    if (d.dim != dim) continue;
    if (d.upward ? j > cur_j : j < cur_j) return true;
  }
  return false;
}

}  // namespace

TuneResult tune(const TuneWorkload& workload, const SearchSpace& space,
                const TuneOptions& options) {
  space.validate();
  workload.validate();

  TuneResult result;
  result.space = space;
  result.grid_size = space.grid_size();

  // Memoized probe execution: one run per distinct grid index, ever.
  std::map<ConfigIndex, std::size_t> memo;
  std::vector<ConfigIndex> probe_indices;
  auto probe_pos = [&](const ConfigIndex& index) -> std::size_t {
    auto it = memo.find(index);
    if (it == memo.end()) {
      result.probes.push_back(run_probe(workload, space.materialize(index)));
      probe_indices.push_back(index);
      it = memo.emplace(index, result.probes.size() - 1).first;
    }
    return it->second;
  };

  // Start at the all-zeros corner — by convention the grid lists the
  // incumbent/default value first in every dimension.
  ConfigIndex cur{};
  std::size_t cur_pos = probe_pos(cur);

  for (std::uint64_t round = 1; round <= options.max_rounds; ++round) {
    result.rounds = round;
    // One attribution read per round, taken at the round's starting
    // point; its decisions prune candidates for every sweep below.
    const std::vector<PruneDecision> decisions =
        prune_directions(result.probes[cur_pos], options.rules);
    for (const PruneDecision& d : decisions) {
      result.prunes.push_back(PruneRecord{round, d});
    }

    bool moved = false;
    for (std::size_t di = 0; di < kNumDims; ++di) {
      const Dim dim = static_cast<Dim>(di);
      const std::size_t n = space.dim(dim).size();
      if (n <= 1) continue;
      std::size_t best_j = cur[di];
      double best_objective = result.probes[cur_pos].objective;
      for (std::size_t j = 0; j < n; ++j) {
        if (j == cur[di] || is_pruned(decisions, dim, j, cur[di])) continue;
        ConfigIndex candidate = cur;
        candidate[di] = j;
        const std::size_t pos = probe_pos(candidate);
        // Strict improvement only: ties keep the lower index (probed
        // first), so sweeps are order-independent of float noise.
        if (result.probes[pos].objective < best_objective) {
          best_objective = result.probes[pos].objective;
          best_j = j;
        }
      }
      if (best_j != cur[di]) {
        cur[di] = best_j;
        cur_pos = probe_pos(cur);
        moved = true;
      }
    }
    if (!moved) break;
  }

  // The descent endpoint is the minimum of everything probed, but take
  // the argmin explicitly so the invariant cannot silently rot.
  std::size_t best_pos = 0;
  for (std::size_t i = 1; i < result.probes.size(); ++i) {
    if (result.probes[i].objective < result.probes[best_pos].objective) {
      best_pos = i;
    }
  }
  result.best = result.probes[best_pos];
  result.best_index = probe_indices[best_pos];
  return result;
}

}  // namespace scd::tune
