// Runtime replay of a FaultPlan: the concrete sim::FaultHooks.
//
// All probabilistic decisions (drop/duplicate draws) hash the plan seed
// with the link identity and a per-link message sequence number, so they
// depend only on the message's position in the sender's program order —
// never on real-thread scheduling. Window checks (stragglers, stalls,
// link windows, crashes) compare against virtual clocks, which are
// themselves deterministic. The net effect: one (plan, workload, seed)
// triple always produces the same faulted trajectory.
#pragma once

#include <cstdint>
#include <vector>

#include "fault/fault_plan.h"
#include "sim/fault_hooks.h"

namespace scd::fault {

class FaultInjector final : public sim::FaultHooks {
 public:
  /// Validates the plan against the cluster size (throws on violation).
  FaultInjector(const FaultPlan& plan, unsigned num_ranks);

  sim::SendFaults on_send(unsigned from, unsigned to, double now) override;
  double compute_factor(unsigned rank, double now) const override;
  double shard_stall_s(unsigned shard, double now) const override;
  double retry_backoff_s() const override { return plan_.retry_backoff_s; }

  /// Virtual time at which `rank` fail-stops; +inf when the plan never
  /// kills it at a time trigger (iteration-triggered crashes keep +inf —
  /// they fire through the 4-argument crashed() below).
  double crash_time(unsigned rank) const { return crash_time_[rank]; }
  bool crashed(unsigned rank, double now) const {
    return now >= crash_time_[rank];
  }

  /// Full crash query for the FT worker's protocol points: a time
  /// trigger that has come due, or an iteration trigger matching this
  /// exact (iteration, point). `now` is in the backend's own time
  /// coordinate; iteration triggers never consult it, which is what
  /// makes crash plans replay identically across backends.
  bool crashed(unsigned rank, double now, std::uint64_t iteration,
               CrashPoint point) const {
    if (crashed(rank, now)) return true;
    for (const CrashEvent& c : plan_.crashes) {
      if (c.rank == rank && c.iteration_triggered() &&
          c.at_iteration == iteration && c.at_point == point) {
        return true;
      }
    }
    return false;
  }
  double heartbeat_timeout_s() const { return plan_.heartbeat_timeout_s; }
  const FaultPlan& plan() const { return plan_; }

 private:
  FaultPlan plan_;
  unsigned num_ranks_;
  std::vector<double> crash_time_;       // per rank, +inf = immortal
  std::vector<std::uint64_t> link_seq_;  // per (from, to) send counter
};

}  // namespace scd::fault
