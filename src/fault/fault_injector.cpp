#include "fault/fault_injector.h"

#include <algorithm>
#include <limits>

#include "util/error.h"

namespace scd::fault {

namespace {

/// splitmix64 — the standard 64-bit finalizing mixer; enough entropy for
/// per-message fault draws and fully reproducible.
std::uint64_t mix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

/// Uniform double in [0, 1) from (seed, link, seq, salt).
double hash01(std::uint64_t seed, std::uint64_t link, std::uint64_t seq,
              std::uint64_t salt) {
  const std::uint64_t h =
      mix64(mix64(mix64(seed ^ 0x66617565755f6c74ull) + link) + seq * 2 +
            salt);
  return static_cast<double>(h >> 11) * 0x1.0p-53;
}

}  // namespace

FaultInjector::FaultInjector(const FaultPlan& plan, unsigned num_ranks)
    : plan_(plan), num_ranks_(num_ranks) {
  SCD_REQUIRE(num_ranks >= 1, "injector needs at least one rank");
  plan_.validate(num_ranks);
  crash_time_.assign(num_ranks, std::numeric_limits<double>::infinity());
  for (const CrashEvent& c : plan_.crashes) {
    if (c.iteration_triggered()) continue;  // fires at a protocol point
    crash_time_[c.rank] = std::min(crash_time_[c.rank], c.time_s);
  }
  link_seq_.assign(std::size_t{num_ranks} * num_ranks, 0);
}

sim::SendFaults FaultInjector::on_send(unsigned from, unsigned to,
                                       double now) {
  sim::SendFaults out;
  SCD_ASSERT(from < num_ranks_ && to < num_ranks_, "rank out of range");
  const std::uint64_t link = std::uint64_t{from} * num_ranks_ + to;
  const std::uint64_t seq = link_seq_[link]++;
  for (const LinkFault& lf : plan_.links) {
    if (lf.from != from || lf.to != to) continue;
    if (now < lf.start_s || now >= lf.end_s) continue;
    if (lf.drop_prob > 0.0) {
      // Draw the geometric run of lost transmissions, one hash per
      // attempt; capped so a pathological plan cannot livelock a send.
      unsigned attempt = 0;
      while (attempt < 16 &&
             hash01(plan_.seed, link, seq, 2 * attempt) < lf.drop_prob) {
        ++attempt;
      }
      out.dropped_attempts = attempt;
    }
    if (lf.dup_prob > 0.0 &&
        hash01(plan_.seed, link, seq, 101) < lf.dup_prob) {
      out.duplicates = 1;
    }
    out.extra_delay_s = lf.delay_s;
    break;  // first matching window governs this link
  }
  return out;
}

double FaultInjector::compute_factor(unsigned rank, double now) const {
  double factor = 1.0;
  for (const StragglerWindow& s : plan_.stragglers) {
    if (s.rank == rank && now >= s.start_s && now < s.end_s) {
      factor *= s.slowdown;
    }
  }
  return factor;
}

double FaultInjector::shard_stall_s(unsigned shard, double now) const {
  double stall = 0.0;
  for (const ShardStall& s : plan_.dkv_stalls) {
    if (s.shard == shard && now >= s.start_s && now < s.end_s) {
      stall += s.stall_s;
    }
  }
  return stall;
}

}  // namespace scd::fault
