// Declarative, seeded fault schedules for the virtual-time cluster.
//
// A FaultPlan is the complete description of everything that goes wrong
// in a chaos run: which ranks crash and when (virtual time), which links
// drop/duplicate/delay messages inside which windows, which ranks slow
// down (stragglers), and which DKV shards stall. Together with its seed
// it fully determines every injected fault — two runs with the same plan
// and the same workload produce bit-identical faulted trajectories,
// which is what makes failures debuggable in the simulator when they
// never would be on a real fabric.
//
// Plans are built programmatically or parsed from a small JSON file
// (see from_json for the schema); the CLI's --fault-plan flag feeds the
// latter. An empty plan is valid and injects nothing — it is how the
// fault-tolerant protocol itself is benchmarked against the legacy
// collectives path.
#pragma once

#include <cstdint>
#include <limits>
#include <string>
#include <string_view>
#include <vector>

namespace scd::fault {

/// Protocol points at which an iteration-triggered crash can fire (the
/// FT worker loop polls its fate exactly at these four seams). Crashes
/// anchored to a (iteration, point) pair instead of a virtual time are
/// what makes fault runs reproducible across execution backends — the
/// process backend has no virtual clock to reach.
enum class CrashPoint : unsigned {
  kAfterPhi = 0,     // phi pipeline done, before the heartbeat
  kAfterPi = 1,      // pi written back, before the heartbeat
  kBeforeRatios = 2, // theta grads computed, before sending ratios
  kBeforeEval = 3,   // perplexity partials computed, before sending them
};
inline constexpr unsigned kNumCrashPoints = 4;

/// `rank` fail-stops either the first time its virtual clock reaches
/// `time_s` (sim backend only), or — when `at_iteration` is set — at
/// protocol point `at_point` of iteration `at_iteration` on any backend.
/// Rank 0 (the master) is not allowed to crash.
struct CrashEvent {
  static constexpr std::uint64_t kNoIteration = ~std::uint64_t{0};

  unsigned rank = 0;
  double time_s = 0.0;
  std::uint64_t at_iteration = kNoIteration;
  CrashPoint at_point = CrashPoint::kAfterPhi;

  bool iteration_triggered() const { return at_iteration != kNoIteration; }
};

/// Transient lossy window on the directed link `from` -> `to`.
struct LinkFault {
  unsigned from = 0;
  unsigned to = 0;
  double start_s = 0.0;
  double end_s = std::numeric_limits<double>::infinity();
  /// Per-transmission loss probability (retried with backoff until a
  /// transmission survives, so must be < 1).
  double drop_prob = 0.0;
  /// Probability the surviving transmission is sent twice (delivered
  /// once; the duplicate only costs wire time).
  double dup_prob = 0.0;
  /// Extra in-flight delay on every delivery inside the window.
  double delay_s = 0.0;
};

/// `rank`'s compute charges are multiplied by `slowdown` inside the
/// window (OS jitter, co-tenant interference, thermal throttling).
struct StragglerWindow {
  unsigned rank = 0;
  double start_s = 0.0;
  double end_s = std::numeric_limits<double>::infinity();
  double slowdown = 1.0;
};

/// Every coalesced DKV message to `shard` pays an extra `stall_s` inside
/// the window (a busy or paging shard server).
struct ShardStall {
  unsigned shard = 0;
  double start_s = 0.0;
  double end_s = std::numeric_limits<double>::infinity();
  double stall_s = 0.0;
};

struct FaultPlan {
  /// Seeds every probabilistic decision (drop/duplicate draws).
  std::uint64_t seed = 0;
  /// The master declares a worker dead when its heartbeat is this far
  /// overdue (virtual seconds).
  double heartbeat_timeout_s = 0.25;
  /// Base retry backoff of a dropped transmission; attempt i waits
  /// base * 2^i before the re-post.
  double retry_backoff_s = 50e-6;

  std::vector<CrashEvent> crashes;
  std::vector<LinkFault> links;
  std::vector<StragglerWindow> stragglers;
  std::vector<ShardStall> dkv_stalls;

  /// True when the plan injects nothing at all.
  bool empty() const {
    return crashes.empty() && links.empty() && stragglers.empty() &&
           dkv_stalls.empty();
  }

  /// Structural checks against a concrete cluster: ranks in range, the
  /// master never crashes, probabilities and windows sane. Throws
  /// scd::UsageError on violation.
  void validate(unsigned num_ranks) const;

  /// Parse from the JSON schema below. Unknown keys are an error (typos
  /// must not silently produce a fault-free run). Throws scd::DataError
  /// on malformed input.
  ///
  ///   {
  ///     "seed": 7, "heartbeat_timeout_s": 0.25, "retry_backoff_s": 5e-5,
  ///     "crashes":    [{"rank": 2, "time_s": 0.5},
  ///                    {"rank": 1, "at_iteration": 3, "at_point": 0}],
  ///     "links":      [{"from": 1, "to": 0, "start_s": 0.0, "end_s": 1.0,
  ///                     "drop_prob": 0.1, "dup_prob": 0.05,
  ///                     "delay_s": 1e-3}],
  ///     "stragglers": [{"rank": 1, "start_s": 0.2, "end_s": 0.4,
  ///                     "slowdown": 3.0}],
  ///     "dkv_stalls": [{"shard": 0, "start_s": 0.1, "end_s": 0.3,
  ///                     "stall_s": 2e-3}]
  ///   }
  static FaultPlan from_json(std::string_view text);
  static FaultPlan from_file(const std::string& path);
};

}  // namespace scd::fault
