#include "fault/fault_plan.h"

#include <cctype>
#include <cmath>
#include <cstdlib>
#include <fstream>
#include <sstream>

#include "util/error.h"

namespace scd::fault {

namespace {

// Minimal recursive-descent parser for the subset of JSON a fault plan
// uses: objects, arrays, and numbers (with exponents); the literals
// true/false/null are rejected since no plan field accepts them. No
// string escapes beyond \" and \\ — plan files hold identifiers, not
// prose. Hand-rolled so the container image needs no JSON dependency.
class JsonCursor {
 public:
  explicit JsonCursor(std::string_view text) : text_(text) {}

  void skip_ws() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  char peek() {
    skip_ws();
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) {
      fail(std::string("expected '") + c + "', got '" + text_[pos_] + "'");
    }
    ++pos_;
  }

  bool consume(char c) {
    if (pos_ < text_.size() && peek() == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (pos_ < text_.size() && text_[pos_] != '"') {
      char c = text_[pos_++];
      if (c == '\\') {
        if (pos_ >= text_.size()) fail("unterminated escape");
        c = text_[pos_++];
        if (c != '"' && c != '\\') fail("unsupported string escape");
      }
      out.push_back(c);
    }
    if (pos_ >= text_.size()) fail("unterminated string");
    ++pos_;  // closing quote
    return out;
  }

  double parse_number() {
    skip_ws();
    const std::size_t start = pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '-' || text_[pos_] == '+' || text_[pos_] == '.' ||
            text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
    }
    if (pos_ == start) fail("expected a number");
    const std::string token(text_.substr(start, pos_ - start));
    char* end = nullptr;
    const double value = std::strtod(token.c_str(), &end);
    if (end != token.c_str() + token.size()) {
      fail("malformed number '" + token + "'");
    }
    return value;
  }

  /// Skip any value (used for the literals true/false/null, which no
  /// plan field accepts — reaching one is a schema error upstream).
  void fail_on_literal() {
    const char c = peek();
    if (c == 't' || c == 'f' || c == 'n') {
      fail("boolean/null not valid in a fault plan");
    }
  }

  [[noreturn]] void fail(const std::string& msg) const {
    throw DataError("fault plan JSON (offset " + std::to_string(pos_) +
                    "): " + msg);
  }

  bool at_end() {
    skip_ws();
    return pos_ >= text_.size();
  }

 private:
  std::string_view text_;
  std::size_t pos_ = 0;
};

/// Parse one {"key": number, ...} object, dispatching each field through
/// `field(key, value)` which returns false for unknown keys.
template <typename FieldFn>
void parse_flat_object(JsonCursor& cur, const char* what, FieldFn&& field) {
  cur.expect('{');
  if (cur.consume('}')) return;
  while (true) {
    const std::string key = cur.parse_string();
    cur.expect(':');
    cur.fail_on_literal();
    const double value = cur.parse_number();
    if (!field(key, value)) {
      cur.fail(std::string("unknown ") + what + " field '" + key + "'");
    }
    if (cur.consume('}')) return;
    cur.expect(',');
  }
}

template <typename ItemFn>
void parse_array(JsonCursor& cur, ItemFn&& item) {
  cur.expect('[');
  if (cur.consume(']')) return;
  while (true) {
    item(cur);
    if (cur.consume(']')) return;
    cur.expect(',');
  }
}

unsigned as_index(JsonCursor& cur, const char* what, double value) {
  if (value < 0.0 || value != std::floor(value)) {
    cur.fail(std::string(what) + " must be a non-negative integer");
  }
  return static_cast<unsigned>(value);
}

}  // namespace

void FaultPlan::validate(unsigned num_ranks) const {
  SCD_REQUIRE(heartbeat_timeout_s > 0.0,
              "heartbeat_timeout_s must be positive");
  SCD_REQUIRE(retry_backoff_s >= 0.0, "retry_backoff_s must be >= 0");
  for (const CrashEvent& c : crashes) {
    SCD_REQUIRE(c.rank >= 1, "the master (rank 0) cannot crash");
    SCD_REQUIRE(c.rank < num_ranks, "crash rank out of range");
    if (c.iteration_triggered()) {
      SCD_REQUIRE(c.time_s == 0.0,
                  "a crash is triggered by time_s OR at_iteration, not both");
      SCD_REQUIRE(static_cast<unsigned>(c.at_point) < kNumCrashPoints,
                  "crash at_point out of range");
    } else {
      SCD_REQUIRE(c.time_s > 0.0, "crash time must be positive");
    }
  }
  for (const LinkFault& l : links) {
    SCD_REQUIRE(l.from < num_ranks && l.to < num_ranks,
                "link fault rank out of range");
    SCD_REQUIRE(l.from != l.to, "link fault needs two distinct ranks");
    SCD_REQUIRE(l.drop_prob >= 0.0 && l.drop_prob < 1.0,
                "drop_prob must be in [0, 1)");
    SCD_REQUIRE(l.dup_prob >= 0.0 && l.dup_prob <= 1.0,
                "dup_prob must be in [0, 1]");
    SCD_REQUIRE(l.delay_s >= 0.0, "link delay must be >= 0");
    SCD_REQUIRE(l.start_s < l.end_s, "link fault window is empty");
  }
  for (const StragglerWindow& s : stragglers) {
    SCD_REQUIRE(s.rank < num_ranks, "straggler rank out of range");
    SCD_REQUIRE(s.slowdown >= 1.0, "straggler slowdown must be >= 1");
    SCD_REQUIRE(s.start_s < s.end_s, "straggler window is empty");
  }
  for (const ShardStall& s : dkv_stalls) {
    SCD_REQUIRE(s.shard + 1 < num_ranks, "stalled shard out of range");
    SCD_REQUIRE(s.stall_s >= 0.0, "shard stall must be >= 0");
    SCD_REQUIRE(s.start_s < s.end_s, "shard stall window is empty");
  }
}

FaultPlan FaultPlan::from_json(std::string_view text) {
  FaultPlan plan;
  JsonCursor cur(text);
  cur.expect('{');
  if (!cur.consume('}')) {
    while (true) {
      const std::string key = cur.parse_string();
      cur.expect(':');
      if (key == "seed") {
        plan.seed = static_cast<std::uint64_t>(cur.parse_number());
      } else if (key == "heartbeat_timeout_s") {
        plan.heartbeat_timeout_s = cur.parse_number();
      } else if (key == "retry_backoff_s") {
        plan.retry_backoff_s = cur.parse_number();
      } else if (key == "crashes") {
        parse_array(cur, [&](JsonCursor& c) {
          CrashEvent e;
          parse_flat_object(c, "crash", [&](const std::string& f, double v) {
            if (f == "rank") e.rank = as_index(c, "rank", v);
            else if (f == "time_s") e.time_s = v;
            else if (f == "at_iteration")
              e.at_iteration = as_index(c, "at_iteration", v);
            else if (f == "at_point")
              e.at_point = static_cast<CrashPoint>(as_index(c, "at_point", v));
            else return false;
            return true;
          });
          plan.crashes.push_back(e);
        });
      } else if (key == "links") {
        parse_array(cur, [&](JsonCursor& c) {
          LinkFault e;
          parse_flat_object(c, "link", [&](const std::string& f, double v) {
            if (f == "from") e.from = as_index(c, "from", v);
            else if (f == "to") e.to = as_index(c, "to", v);
            else if (f == "start_s") e.start_s = v;
            else if (f == "end_s") e.end_s = v;
            else if (f == "drop_prob") e.drop_prob = v;
            else if (f == "dup_prob") e.dup_prob = v;
            else if (f == "delay_s") e.delay_s = v;
            else return false;
            return true;
          });
          plan.links.push_back(e);
        });
      } else if (key == "stragglers") {
        parse_array(cur, [&](JsonCursor& c) {
          StragglerWindow e;
          parse_flat_object(c, "straggler",
                            [&](const std::string& f, double v) {
            if (f == "rank") e.rank = as_index(c, "rank", v);
            else if (f == "start_s") e.start_s = v;
            else if (f == "end_s") e.end_s = v;
            else if (f == "slowdown") e.slowdown = v;
            else return false;
            return true;
          });
          plan.stragglers.push_back(e);
        });
      } else if (key == "dkv_stalls") {
        parse_array(cur, [&](JsonCursor& c) {
          ShardStall e;
          parse_flat_object(c, "dkv_stall",
                            [&](const std::string& f, double v) {
            if (f == "shard") e.shard = as_index(c, "shard", v);
            else if (f == "start_s") e.start_s = v;
            else if (f == "end_s") e.end_s = v;
            else if (f == "stall_s") e.stall_s = v;
            else return false;
            return true;
          });
          plan.dkv_stalls.push_back(e);
        });
      } else {
        cur.fail("unknown fault plan field '" + key + "'");
      }
      if (cur.consume('}')) break;
      cur.expect(',');
    }
  }
  if (!cur.at_end()) cur.fail("trailing content after the plan object");
  return plan;
}

FaultPlan FaultPlan::from_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw DataError("cannot open fault plan '" + path + "'");
  std::ostringstream text;
  text << in.rdbuf();
  return from_json(text.str());
}

}  // namespace scd::fault
