#include "graph/snap_loader.h"

#include <charconv>
#include <fstream>

#include "graph/builder.h"
#include "util/error.h"

namespace scd::graph {

namespace {

// Parse one unsigned integer starting at *pos; advances *pos past it.
std::uint64_t parse_uint(const std::string& line, std::size_t* pos,
                         std::size_t line_no) {
  const char* begin = line.data() + *pos;
  const char* end = line.data() + line.size();
  std::uint64_t value = 0;
  const auto [ptr, ec] = std::from_chars(begin, end, value);
  if (ec != std::errc{} || ptr == begin) {
    throw DataError("SNAP parse error at line " + std::to_string(line_no) +
                    ": expected integer in '" + line + "'");
  }
  *pos = static_cast<std::size_t>(ptr - line.data());
  return value;
}

}  // namespace

SnapLoadResult load_snap_stream(std::istream& in) {
  std::unordered_map<std::uint64_t, Vertex> remap;
  std::vector<std::uint64_t> original_ids;
  std::vector<std::pair<Vertex, Vertex>> edges;

  auto dense_id = [&](std::uint64_t raw) -> Vertex {
    auto [it, inserted] =
        remap.try_emplace(raw, static_cast<Vertex>(original_ids.size()));
    if (inserted) original_ids.push_back(raw);
    return it->second;
  };

  std::string line;
  std::size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    // Trim trailing carriage return from CRLF files.
    if (!line.empty() && line.back() == '\r') line.pop_back();
    std::size_t pos = line.find_first_not_of(" \t");
    if (pos == std::string::npos) continue;           // blank
    if (line[pos] == '#' || line[pos] == '%') continue;  // comment
    const std::uint64_t u_raw = parse_uint(line, &pos, line_no);
    pos = line.find_first_not_of(" \t", pos);
    if (pos == std::string::npos) {
      throw DataError("SNAP parse error at line " + std::to_string(line_no) +
                      ": missing second endpoint");
    }
    const std::uint64_t v_raw = parse_uint(line, &pos, line_no);
    if (u_raw == v_raw) continue;  // SNAP files contain occasional loops
    // Sequence the id assignments: emplace_back's argument evaluation
    // order is unspecified, and first-seen-order ids are part of the API.
    const Vertex u = dense_id(u_raw);
    const Vertex v = dense_id(v_raw);
    edges.emplace_back(u, v);
  }

  GraphBuilder builder(static_cast<Vertex>(original_ids.size()));
  for (const auto& [u, v] : edges) builder.add_edge(u, v);
  return SnapLoadResult{std::move(builder).build(), std::move(original_ids)};
}

SnapLoadResult load_snap_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw DataError("cannot open graph file '" + path + "'");
  return load_snap_stream(in);
}

}  // namespace scd::graph
