#include "graph/edge_set.h"

#include <algorithm>
#include <bit>

#include "util/error.h"

namespace scd::graph {

EdgeSet::EdgeSet(std::size_t expected_edges) {
  // Keep load factor under 0.7.
  std::size_t cap = std::bit_ceil(std::max<std::size_t>(
      16, expected_edges + expected_edges / 2));
  slots_.assign(cap, kEmpty);
  mask_ = cap - 1;
}

void EdgeSet::reset(std::size_t expected_edges) {
  const std::size_t cap = std::bit_ceil(std::max<std::size_t>(
      16, expected_edges + expected_edges / 2));
  if (cap > slots_.size()) {
    slots_.assign(cap, kEmpty);
    mask_ = cap - 1;
  } else {
    std::fill(slots_.begin(), slots_.end(), kEmpty);
  }
  size_ = 0;
}

std::size_t EdgeSet::probe(std::uint64_t code) const {
  std::size_t i = hash_code(code) & mask_;
  while (slots_[i] != kEmpty && slots_[i] != code) {
    i = (i + 1) & mask_;
  }
  return i;
}

void EdgeSet::grow() {
  std::vector<std::uint64_t> old = std::move(slots_);
  slots_.assign(old.size() * 2, kEmpty);
  mask_ = slots_.size() - 1;
  for (std::uint64_t code : old) {
    if (code != kEmpty) slots_[probe(code)] = code;
  }
}

bool EdgeSet::insert(Vertex u, Vertex v) {
  SCD_REQUIRE(u != v, "self-loop edges are not allowed");
  const std::uint64_t code = encode_edge(u, v);
  std::size_t i = probe(code);
  if (slots_[i] == code) return false;
  slots_[i] = code;
  ++size_;
  if (size_ * 10 >= slots_.size() * 7) grow();
  return true;
}

bool EdgeSet::contains(Vertex u, Vertex v) const {
  if (u == v) return false;
  return slots_[probe(encode_edge(u, v))] != kEmpty;
}

}  // namespace scd::graph
