#include "graph/minibatch.h"

#include <algorithm>

#include "random/sampling.h"
#include "util/error.h"

namespace scd::graph {

namespace {

void finalize_vertices(Minibatch& mb) {
  mb.vertices.clear();
  mb.vertices.reserve(mb.pairs.size() * 2);
  for (const MinibatchPair& p : mb.pairs) {
    mb.vertices.push_back(p.a);
    mb.vertices.push_back(p.b);
  }
  std::sort(mb.vertices.begin(), mb.vertices.end());
  mb.vertices.erase(std::unique(mb.vertices.begin(), mb.vertices.end()),
                    mb.vertices.end());
}

}  // namespace

MinibatchSampler::MinibatchSampler(const Graph& training,
                                   const HeldOutSplit* heldout,
                                   Options options)
    : graph_(training), heldout_(heldout), options_(options) {
  SCD_REQUIRE(training.num_vertices() >= 2, "graph too small");
  if (options_.strategy == MinibatchStrategy::kRandomPair) {
    SCD_REQUIRE(options_.num_pairs >= 1, "minibatch needs >= 1 pair");
  } else {
    SCD_REQUIRE(options_.nonlink_partitions >= 1,
                "need >= 1 non-link partition");
    if (options_.alias_anchor) {
      anchor_alias_ = rng::AliasTable::uniform(training.num_vertices());
    }
  }
}

std::size_t MinibatchSampler::max_pairs_bound() const {
  if (options_.strategy == MinibatchStrategy::kRandomPair) {
    return options_.num_pairs;
  }
  const std::uint64_t n = graph_.num_vertices();
  const std::uint64_t m = options_.nonlink_partitions;
  // Non-link stratum wants ceil(num_nonlinks / m) <= ceil((n - 1) / m);
  // link stratum is bounded by the maximum degree.
  const std::uint64_t nonlink_want = (n - 1 + m - 1) / m;
  return static_cast<std::size_t>(
      std::max<std::uint64_t>(graph_.max_degree(), nonlink_want));
}

std::size_t MinibatchSampler::max_vertices_bound() const {
  return 2 * max_pairs_bound();
}

Minibatch MinibatchSampler::draw(rng::Xoshiro256& rng) const {
  Minibatch mb;
  MinibatchScratch scratch;
  draw_into(rng, mb, scratch);
  return mb;
}

void MinibatchSampler::draw_into(rng::Xoshiro256& rng, Minibatch& mb,
                                 MinibatchScratch& scratch) const {
  mb.pairs.clear();
  mb.vertices.clear();
  mb.scale = 1.0;
  if (options_.strategy == MinibatchStrategy::kRandomPair) {
    draw_random_pair_into(rng, mb, scratch);
  } else {
    draw_stratified_node_into(rng, mb, scratch);
  }
}

void MinibatchSampler::draw_random_pair_into(rng::Xoshiro256& rng,
                                             Minibatch& mb,
                                             MinibatchScratch& scratch) const {
  const Vertex n = graph_.num_vertices();
  mb.pairs.reserve(options_.num_pairs);
  EdgeSet& chosen = scratch.chosen;
  chosen.reset(options_.num_pairs);
  while (mb.pairs.size() < options_.num_pairs) {
    const auto [a64, b64] = rng::sample_distinct_pair(rng, n);
    const auto a = static_cast<Vertex>(a64);
    const auto b = static_cast<Vertex>(b64);
    if (excluded(a, b) || chosen.contains(a, b)) continue;
    chosen.insert(a, b);
    mb.pairs.push_back({a, b, graph_.has_edge(a, b)});
  }
  // Population is all pairs minus reserved held-out pairs.
  const double population =
      static_cast<double>(graph_.num_pairs()) -
      (heldout_ ? static_cast<double>(heldout_->pairs().size()) : 0.0);
  mb.scale = population / static_cast<double>(mb.pairs.size());
  finalize_vertices(mb);
}

void MinibatchSampler::draw_stratified_node_into(
    rng::Xoshiro256& rng, Minibatch& mb, MinibatchScratch& scratch) const {
  const Vertex n = graph_.num_vertices();
  const double nd = static_cast<double>(n);
  // Equal-weight alias anchor samples the same uniform distribution but
  // consumes (next_below, next_double) instead of just next_below, so
  // the two paths are distribution-equivalent, not stream-equivalent.
  const auto a = static_cast<Vertex>(
      options_.alias_anchor ? anchor_alias_.sample(rng) : rng.next_below(n));

  if (rng.next_double() < 0.5) {
    // Link stratum: all training links of a. h = N.
    const auto nbrs = graph_.neighbors(a);
    mb.pairs.reserve(nbrs.size());
    for (Vertex b : nbrs) mb.pairs.push_back({a, b, true});
    mb.scale = nd;
  } else {
    // Non-link stratum: a ~1/m sample of a's non-link pairs. h = N * m.
    const std::size_t m = options_.nonlink_partitions;
    const std::uint64_t num_nonlinks =
        static_cast<std::uint64_t>(n) - 1 - graph_.degree(a);
    if (num_nonlinks == 0) {
      // a is connected to everyone (complete-graph corner): the stratum
      // is empty and contributes nothing this iteration.
      mb.scale = 0.0;
      return;
    }
    const std::size_t want = static_cast<std::size_t>(
        std::max<std::uint64_t>(1, (num_nonlinks + m - 1) / m));
    mb.pairs.reserve(want);
    EdgeSet& chosen = scratch.chosen;
    chosen.reset(want);
    // Rejection against links / held-out / duplicates; acceptance is high
    // because the graph is sparse.
    std::size_t attempts = 0;
    const std::size_t max_attempts = 64 * want + 1024;
    while (mb.pairs.size() < want && attempts++ < max_attempts) {
      auto b = static_cast<Vertex>(rng.next_below(n - 1));
      if (b >= a) ++b;
      if (graph_.has_edge(a, b) || excluded(a, b) || chosen.contains(a, b)) {
        continue;
      }
      chosen.insert(a, b);
      mb.pairs.push_back({a, b, false});
    }
    SCD_ASSERT(!mb.pairs.empty(), "non-link stratum came up empty");
    // Scale by the true inverse inclusion fraction rather than the nominal
    // m: keeps the estimator unbiased when `want` was clipped.
    mb.scale = nd * static_cast<double>(num_nonlinks) /
               static_cast<double>(mb.pairs.size());
  }
  finalize_vertices(mb);
}

namespace {

/// Shared body of the link-aware neighbor draw; fills `set` using
/// `chosen` for dedup.
void link_aware_into(rng::Xoshiro256& rng, Vertex num_vertices, Vertex a,
                     std::span<const Vertex> adj_a, std::size_t count,
                     NeighborSet& set, EdgeSet& chosen) {
  const std::uint64_t num_nonlinks =
      static_cast<std::uint64_t>(num_vertices) - 1 - adj_a.size();
  // A near-complete vertex may have fewer non-links than requested;
  // clamp rather than fail (the scale below stays exact).
  count = std::min<std::size_t>(count, num_nonlinks);
  set.samples.clear();
  set.exact_prefix = adj_a.size();
  set.samples.reserve(adj_a.size() + count);
  for (Vertex b : adj_a) set.samples.push_back({b, true});
  // Rejection against self, links, and duplicates: acceptance is high on
  // sparse graphs, and count <= num_nonlinks guarantees termination.
  chosen.reset(count);
  while (set.samples.size() < set.exact_prefix + count) {
    auto b = static_cast<Vertex>(rng.next_below(num_vertices - 1));
    if (b >= a) ++b;
    if (std::binary_search(adj_a.begin(), adj_a.end(), b) ||
        chosen.contains(a, b)) {
      continue;
    }
    chosen.insert(a, b);
    set.samples.push_back({b, false});
  }
  set.sampled_scale = count > 0 ? static_cast<double>(num_nonlinks) /
                                      static_cast<double>(count)
                                : 0.0;
}

}  // namespace

NeighborSet sample_neighbors_link_aware(rng::Xoshiro256& rng,
                                        Vertex num_vertices, Vertex a,
                                        std::span<const Vertex> adj_a,
                                        std::size_t count) {
  NeighborSet set;
  EdgeSet chosen(count);
  link_aware_into(rng, num_vertices, a, adj_a, count, set, chosen);
  return set;
}

void draw_neighbor_set_into(rng::Xoshiro256& rng, NeighborMode mode,
                            Vertex num_vertices, Vertex a,
                            std::span<const Vertex> adj_a, std::size_t count,
                            NeighborSet& set, NeighborScratch& scratch) {
  if (mode == NeighborMode::kLinkAware) {
    link_aware_into(rng, num_vertices, a, adj_a, count, set, scratch.chosen);
    return;
  }
  SCD_REQUIRE(count <= num_vertices - 1,
              "neighbor sample larger than V \\ {a}");
  rng::sample_without_replacement_excluding_into(rng, num_vertices, count, a,
                                                 scratch.raw);
  set.samples.clear();
  set.samples.reserve(count);
  for (std::uint64_t b64 : scratch.raw) {
    const auto b = static_cast<Vertex>(b64);
    const bool link = std::binary_search(adj_a.begin(), adj_a.end(), b);
    set.samples.push_back({b, link});
  }
  set.exact_prefix = 0;
  set.sampled_scale =
      static_cast<double>(num_vertices) / static_cast<double>(count);
}

NeighborSet draw_neighbor_set(rng::Xoshiro256& rng, NeighborMode mode,
                              Vertex num_vertices, Vertex a,
                              std::span<const Vertex> adj_a,
                              std::size_t count) {
  NeighborSet set;
  NeighborScratch scratch;
  draw_neighbor_set_into(rng, mode, num_vertices, a, adj_a, count, set,
                         scratch);
  return set;
}

std::vector<NeighborSample> sample_neighbors(rng::Xoshiro256& rng,
                                             Vertex num_vertices, Vertex a,
                                             std::span<const Vertex> adj_a,
                                             std::size_t count) {
  SCD_REQUIRE(count <= num_vertices - 1,
              "neighbor sample larger than V \\ {a}");
  const auto raw = rng::sample_without_replacement_excluding(
      rng, num_vertices, count, a);
  std::vector<NeighborSample> out;
  out.reserve(count);
  for (std::uint64_t b64 : raw) {
    const auto b = static_cast<Vertex>(b64);
    const bool link = std::binary_search(adj_a.begin(), adj_a.end(), b);
    out.push_back({b, link});
  }
  return out;
}

}  // namespace scd::graph
