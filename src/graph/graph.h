// Immutable undirected graph in CSR (compressed sparse row) form.
//
// The training set E of the paper. Adjacency lists are sorted, so edge
// membership (the y_ab lookup in the phi/theta gradients) is O(log deg).
// The structure is deliberately read-only: the samplers never mutate the
// graph, and immutability lets the simulated ranks share one copy safely.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "graph/types.h"

namespace scd::graph {

class Graph {
 public:
  Graph() = default;

  /// Takes CSR arrays directly; see GraphBuilder for the usual path.
  /// offsets.size() == num_vertices + 1; adjacency sorted per vertex.
  Graph(std::vector<std::uint64_t> offsets, std::vector<Vertex> adjacency);

  Vertex num_vertices() const {
    return offsets_.empty() ? 0 : static_cast<Vertex>(offsets_.size() - 1);
  }

  /// Number of undirected edges |E|.
  std::uint64_t num_edges() const { return adjacency_.size() / 2; }

  /// Number of vertex pairs |V|(|V|-1)/2 — the paper's E (all pairs).
  std::uint64_t num_pairs() const {
    const std::uint64_t n = num_vertices();
    return n * (n - 1) / 2;
  }

  std::uint64_t degree(Vertex v) const {
    return offsets_[v + 1] - offsets_[v];
  }

  std::span<const Vertex> neighbors(Vertex v) const {
    return {adjacency_.data() + offsets_[v],
            adjacency_.data() + offsets_[v + 1]};
  }

  /// y_ab: true iff {u, v} is a link. O(log deg(u)).
  bool has_edge(Vertex u, Vertex v) const;

  double density() const {
    const double p = static_cast<double>(num_pairs());
    return p > 0 ? static_cast<double>(num_edges()) / p : 0.0;
  }

  std::uint64_t max_degree() const;

  /// Serialized adjacency bytes of one vertex — what the master ships to a
  /// worker when scattering the minibatch-touched subset of E.
  std::uint64_t adjacency_bytes(Vertex v) const {
    return degree(v) * sizeof(Vertex);
  }

 private:
  std::vector<std::uint64_t> offsets_;
  std::vector<Vertex> adjacency_;
};

}  // namespace scd::graph
