#include "graph/datasets.h"

#include <algorithm>
#include <cctype>

#include "util/error.h"

namespace scd::graph {

const std::vector<DatasetSpec>& standard_datasets() {
  // paper_* columns transcribed from Table II; paper_cluster_nodes and
  // paper_communities from the Figure 6 discussion (Section IV-F).
  // Stand-in sizes: 1/1000 vertex scale for the three multi-million-vertex
  // graphs, 1/100 for the rest; average degree preserved.
  // sim_communities keeps planted community sizes in the 15-60 range so
  // the intra-community link density (and hence detectability) matches
  // the character of real SNAP ground truth; sparse graphs get reduced
  // overlap so per-community degree stays informative.
  static const std::vector<DatasetSpec> kSpecs = {
      {"com-LiveJournal", 3997962, 34681189, 287512, 65, 12288,
       /*sim_vertices=*/3998, /*sim_avg_degree=*/17.35, /*sim_k=*/160,
       /*overlap2=*/0.3, /*overlap3=*/0.1,
       {/*vertices=*/2000, /*communities=*/64, /*iterations=*/40000,
        /*step_a=*/0.02, /*nonlink_partitions=*/8}},
      {"com-Friendster", 65608366, 1806067135, 957154, 65, 12288,
       /*sim_vertices=*/65608, /*sim_avg_degree=*/55.06, /*sim_k=*/512,
       /*overlap2=*/0.3, /*overlap3=*/0.1,
       {/*vertices=*/2000, /*communities=*/64, /*iterations=*/30000,
        /*step_a=*/0.02, /*nonlink_partitions=*/16}},
      {"com-Orkut", 3072441, 117185083, 6288363, 65, 12288,
       /*sim_vertices=*/3072, /*sim_avg_degree=*/76.28, /*sim_k=*/80,
       /*overlap2=*/0.3, /*overlap3=*/0.1,
       {/*vertices=*/1536, /*communities=*/48, /*iterations=*/30000,
        /*step_a=*/0.02, /*nonlink_partitions=*/16}},
      {"com-Youtube", 1134890, 2987624, 8385, 14, 8385,
       /*sim_vertices=*/11349, /*sim_avg_degree=*/5.27, /*sim_k=*/512,
       /*overlap2=*/0.15, /*overlap3=*/0.0,
       {/*vertices=*/1500, /*communities=*/96, /*iterations=*/60000,
        /*step_a=*/0.01, /*nonlink_partitions=*/8}},
      {"com-DBLP", 317080, 1049866, 13477, 24, 13477,
       /*sim_vertices=*/3171, /*sim_avg_degree=*/6.62, /*sim_k=*/256,
       /*overlap2=*/0.15, /*overlap3=*/0.0,
       {/*vertices=*/1500, /*communities=*/96, /*iterations=*/60000,
        /*step_a=*/0.01, /*nonlink_partitions=*/8}},
      {"com-Amazon", 334863, 925872, 75149, 24, 75149,
       /*sim_vertices=*/3349, /*sim_avg_degree=*/5.53, /*sim_k=*/256,
       /*overlap2=*/0.15, /*overlap3=*/0.0,
       {/*vertices=*/1500, /*communities=*/96, /*iterations=*/60000,
        /*step_a=*/0.01, /*nonlink_partitions=*/8}},
  };
  return kSpecs;
}

const DatasetSpec& dataset_by_name(const std::string& name) {
  auto lower = [](std::string s) {
    std::transform(s.begin(), s.end(), s.begin(),
                   [](unsigned char c) { return std::tolower(c); });
    return s;
  };
  const std::string want = lower(name);
  for (const DatasetSpec& spec : standard_datasets()) {
    if (lower(spec.name) == want) return spec;
  }
  throw UsageError("unknown dataset '" + name +
                   "'; see graph::standard_datasets()");
}

GeneratedGraph generate_standin(rng::Xoshiro256& rng,
                                const DatasetSpec& spec) {
  const PlantedConfig config = planted_config_for_degree(
      spec.sim_vertices, spec.sim_communities, spec.sim_avg_degree,
      spec.sim_overlap2, spec.sim_overlap3);
  return generate_planted(rng, config);
}

PlantedConfig convergence_config(const DatasetSpec& spec) {
  return planted_config_for_degree(spec.conv.vertices,
                                   spec.conv.communities,
                                   spec.sim_avg_degree, spec.sim_overlap2,
                                   spec.sim_overlap3);
}

}  // namespace scd::graph
