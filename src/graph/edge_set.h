// Open-addressing hash set of undirected edges.
//
// Used wherever O(1) membership on edges is needed independently of a
// built Graph: generator de-duplication, held-out bookkeeping, and the
// minibatch sampler's "is this candidate pair a link?" test. Linear
// probing over a power-of-two table of 64-bit canonical edge codes; the
// sentinel 0 is reserved, which is safe because edge (0, 0) is a
// self-loop and self-loops are rejected everywhere.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/types.h"

namespace scd::graph {

class EdgeSet {
 public:
  explicit EdgeSet(std::size_t expected_edges = 16);

  /// Insert; returns true when newly added. Self-loops are a usage error.
  bool insert(Vertex u, Vertex v);

  /// Clear the set for reuse, keeping (and if needed extending) capacity
  /// for `expected_edges`. After the first call with the steady-state
  /// size, subsequent resets never allocate.
  void reset(std::size_t expected_edges);

  bool contains(Vertex u, Vertex v) const;

  std::size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  /// Visit every edge (order unspecified).
  template <typename Fn>
  void for_each(Fn&& fn) const {
    for (std::uint64_t code : slots_) {
      if (code != kEmpty) {
        const Edge e = decode_edge(code);
        fn(e.a, e.b);
      }
    }
  }

 private:
  static constexpr std::uint64_t kEmpty = 0;

  static std::size_t hash_code(std::uint64_t code) {
    code ^= code >> 33;
    code *= 0xff51afd7ed558ccdULL;
    code ^= code >> 33;
    return static_cast<std::size_t>(code);
  }

  void grow();
  std::size_t probe(std::uint64_t code) const;

  std::vector<std::uint64_t> slots_;
  std::size_t size_ = 0;
  std::size_t mask_ = 0;
};

}  // namespace scd::graph
