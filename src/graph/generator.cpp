#include "graph/generator.h"

#include <algorithm>
#include <cmath>

#include "graph/builder.h"
#include "graph/edge_set.h"
#include "random/distributions.h"
#include "random/sampling.h"
#include "util/error.h"

namespace scd::graph {

namespace {

/// Map linear index t in [0, m(m-1)/2) to the t-th pair (i, j), i < j, in
/// lexicographic order over m items.
std::pair<std::uint64_t, std::uint64_t> pair_from_index(std::uint64_t t,
                                                        std::uint64_t m) {
  // offset(i) = i*(m-1) - i*(i-1)/2 is the first index of row i; invert
  // with the quadratic formula, then fix up any floating-point slop.
  const double md = static_cast<double>(m);
  const double td = static_cast<double>(t);
  double id =
      std::floor((2.0 * md - 1.0 -
                  std::sqrt((2.0 * md - 1.0) * (2.0 * md - 1.0) - 8.0 * td)) /
                 2.0);
  auto offset = [m](std::uint64_t i) {
    return i * (m - 1) - i * (i - 1) / 2;
  };
  auto i = static_cast<std::uint64_t>(std::max(0.0, id));
  while (i + 1 < m && offset(i + 1) <= t) ++i;
  while (i > 0 && offset(i) > t) --i;
  const std::uint64_t j = i + 1 + (t - offset(i));
  return {i, j};
}

/// Visit each pair index of an Erdos-Renyi draw over `num_pairs` pairs
/// with probability p, via geometric skipping: O(expected edges).
template <typename Fn>
void sample_bernoulli_pairs(rng::Xoshiro256& rng, std::uint64_t num_pairs,
                            double p, Fn&& fn) {
  if (p <= 0.0 || num_pairs == 0) return;
  if (p >= 1.0) {
    for (std::uint64_t t = 0; t < num_pairs; ++t) fn(t);
    return;
  }
  const double log1mp = std::log1p(-p);
  double cursor = -1.0;
  for (;;) {
    double u = rng.next_double();
    while (u == 0.0) u = rng.next_double();
    cursor += 1.0 + std::floor(std::log(u) / log1mp);
    if (cursor >= static_cast<double>(num_pairs)) return;
    fn(static_cast<std::uint64_t>(cursor));
  }
}

}  // namespace

GeneratedGraph generate_ammsb_exact(rng::Xoshiro256& rng,
                                    const AmmsbExactConfig& config,
                                    double membership_threshold) {
  const Vertex n = config.num_vertices;
  const std::uint32_t k = config.num_communities;
  SCD_REQUIRE(n >= 2 && k >= 1, "need >= 2 vertices and >= 1 community");
  SCD_REQUIRE(config.delta >= 0.0 && config.delta <= 1.0,
              "delta must be a probability");

  GroundTruth truth;
  truth.delta = config.delta;
  truth.beta.resize(k);
  for (double& b : truth.beta) {
    b = rng::sample_beta(rng, config.eta0, config.eta1);
  }

  std::vector<double> pi(static_cast<std::size_t>(n) * k);
  for (Vertex v = 0; v < n; ++v) {
    rng::sample_dirichlet(rng, config.alpha,
                          std::span<double>(pi.data() + std::size_t{v} * k, k));
  }

  GraphBuilder builder(n);
  for (Vertex a = 0; a < n; ++a) {
    const std::span<const double> pi_a(pi.data() + std::size_t{a} * k, k);
    for (Vertex b = a + 1; b < n; ++b) {
      const std::span<const double> pi_b(pi.data() + std::size_t{b} * k, k);
      const std::size_t za = rng::sample_categorical(rng, pi_a);
      const std::size_t zb = rng::sample_categorical(rng, pi_b);
      const double r = (za == zb) ? truth.beta[za] : config.delta;
      if (rng.next_double() < r) builder.add_edge(a, b);
    }
  }

  truth.communities.resize(k);
  truth.memberships.resize(n);
  for (Vertex v = 0; v < n; ++v) {
    for (std::uint32_t c = 0; c < k; ++c) {
      if (pi[std::size_t{v} * k + c] >= membership_threshold) {
        truth.communities[c].push_back(v);
        truth.memberships[v].push_back(c);
      }
    }
  }
  return GeneratedGraph{std::move(builder).build(), std::move(truth)};
}

GeneratedGraph generate_planted(rng::Xoshiro256& rng,
                                const PlantedConfig& config) {
  const Vertex n = config.num_vertices;
  const std::uint32_t k = config.num_communities;
  SCD_REQUIRE(n >= 2 && k >= 1, "need >= 2 vertices and >= 1 community");
  SCD_REQUIRE(config.p_two_memberships + config.p_three_memberships <= 1.0,
              "membership probabilities exceed 1");
  SCD_REQUIRE(config.beta_lo > 0.0 && config.beta_hi <= 1.0 &&
                  config.beta_lo <= config.beta_hi,
              "invalid beta range");

  GroundTruth truth;
  truth.delta = config.delta;
  truth.beta.resize(k);
  for (double& b : truth.beta) {
    b = config.beta_lo + (config.beta_hi - config.beta_lo) * rng.next_double();
  }

  truth.communities.resize(k);
  truth.memberships.resize(n);
  for (Vertex v = 0; v < n; ++v) {
    const double u = rng.next_double();
    std::size_t count = 1;
    if (u < config.p_three_memberships) {
      count = 3;
    } else if (u < config.p_three_memberships + config.p_two_memberships) {
      count = 2;
    }
    count = std::min<std::size_t>(count, k);
    auto chosen = rng::sample_without_replacement(rng, k, count);
    std::sort(chosen.begin(), chosen.end());
    for (std::uint64_t c : chosen) {
      truth.memberships[v].push_back(static_cast<std::uint32_t>(c));
      truth.communities[static_cast<std::size_t>(c)].push_back(v);
    }
  }
  for (auto& members : truth.communities) {
    std::sort(members.begin(), members.end());
  }

  EdgeSet edges(static_cast<std::size_t>(n) * 8);
  // Intra-community Erdos-Renyi links.
  for (std::uint32_t c = 0; c < k; ++c) {
    const auto& members = truth.communities[c];
    const std::uint64_t m = members.size();
    if (m < 2) continue;
    sample_bernoulli_pairs(
        rng, m * (m - 1) / 2, truth.beta[c], [&](std::uint64_t t) {
          const auto [i, j] = pair_from_index(t, m);
          edges.insert(members[static_cast<std::size_t>(i)],
                       members[static_cast<std::size_t>(j)]);
        });
  }
  // Background links over all pairs.
  const std::uint64_t all_pairs =
      static_cast<std::uint64_t>(n) * (n - 1) / 2;
  sample_bernoulli_pairs(rng, all_pairs, config.delta, [&](std::uint64_t t) {
    const auto [i, j] = pair_from_index(t, n);
    edges.insert(static_cast<Vertex>(i), static_cast<Vertex>(j));
  });

  GraphBuilder builder(n);
  edges.for_each([&](Vertex u, Vertex v) { builder.add_edge(u, v); });
  return GeneratedGraph{std::move(builder).build(), std::move(truth)};
}

PlantedConfig planted_config_for_degree(Vertex num_vertices,
                                        std::uint32_t num_communities,
                                        double target_avg_degree,
                                        double overlap2, double overlap3) {
  SCD_REQUIRE(target_avg_degree > 0.0, "target degree must be positive");
  PlantedConfig config;
  config.num_vertices = num_vertices;
  config.num_communities = num_communities;
  config.p_two_memberships = overlap2;
  config.p_three_memberships = overlap3;

  const double mean_memberships = 1.0 + overlap2 + 2.0 * overlap3;
  const double mean_size = static_cast<double>(num_vertices) *
                           mean_memberships /
                           static_cast<double>(num_communities);
  // Split the degree budget: 90% structure, 10% background noise.
  config.delta = std::min(
      0.5, 0.1 * target_avg_degree / static_cast<double>(num_vertices));
  const double structural_degree = 0.9 * target_avg_degree;
  // Per-vertex structural degree ≈ mean_memberships * (mean_size-1) * beta.
  double beta_mean =
      structural_degree / (mean_memberships * std::max(1.0, mean_size - 1.0));
  beta_mean = std::clamp(beta_mean, 1e-4, 0.8);
  config.beta_lo = std::max(1e-4, 0.75 * beta_mean);
  config.beta_hi = std::min(1.0, 1.25 * beta_mean);
  return config;
}

}  // namespace scd::graph
