// Incremental construction of a Graph from an edge stream.
#pragma once

#include <vector>

#include "graph/graph.h"
#include "graph/types.h"

namespace scd::graph {

/// Accumulates undirected edges (self-loops rejected, duplicates merged)
/// and emits a CSR Graph. Vertices are 0..max_vertex_id unless an explicit
/// vertex count is given.
class GraphBuilder {
 public:
  GraphBuilder() = default;

  /// Pre-declare the vertex count (ids >= count are an error).
  explicit GraphBuilder(Vertex num_vertices)
      : num_vertices_(num_vertices), fixed_n_(true) {}

  void add_edge(Vertex u, Vertex v);

  std::size_t num_edges_added() const { return edges_.size(); }

  /// Sort + dedup + CSR. The builder is consumed.
  Graph build() &&;

 private:
  std::vector<std::uint64_t> edges_;  // canonical codes, unsorted
  Vertex num_vertices_ = 0;
  bool fixed_n_ = false;
};

}  // namespace scd::graph
