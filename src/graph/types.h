// Fundamental graph types shared across the library.
#pragma once

#include <cstdint>
#include <functional>

namespace scd::graph {

/// Vertex id. Dense, 0-based. 32 bits covers the paper's largest graph
/// (com-Friendster, 65.6M vertices) with room to spare.
using Vertex = std::uint32_t;

/// An undirected edge in canonical (min, max) order.
struct Edge {
  Vertex a = 0;
  Vertex b = 0;

  constexpr Edge() = default;
  constexpr Edge(Vertex u, Vertex v) : a(u < v ? u : v), b(u < v ? v : u) {}

  friend bool operator==(const Edge&, const Edge&) = default;
  friend auto operator<=>(const Edge&, const Edge&) = default;
};

/// Canonical 64-bit encoding of an undirected edge (a in high bits).
constexpr std::uint64_t encode_edge(Vertex u, Vertex v) {
  const Vertex lo = u < v ? u : v;
  const Vertex hi = u < v ? v : u;
  return (static_cast<std::uint64_t>(lo) << 32) | hi;
}

constexpr Edge decode_edge(std::uint64_t code) {
  return Edge(static_cast<Vertex>(code >> 32),
              static_cast<Vertex>(code & 0xffffffffULL));
}

}  // namespace scd::graph

template <>
struct std::hash<scd::graph::Edge> {
  std::size_t operator()(const scd::graph::Edge& e) const noexcept {
    // Fibonacci mix of the canonical encoding.
    const std::uint64_t x = scd::graph::encode_edge(e.a, e.b);
    return static_cast<std::size_t>(x * 0x9e3779b97f4a7c15ULL);
  }
};
