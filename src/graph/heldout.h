// Held-out split: the paper removes a subset E_h of edges from training
// and tracks perplexity on it (Eqn 7). E_h holds links and non-links in
// equal numbers so perplexity is sensitive to both error directions.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/edge_set.h"
#include "graph/graph.h"
#include "random/xoshiro.h"

namespace scd::graph {

struct HeldOutPair {
  Vertex a = 0;
  Vertex b = 0;
  bool link = false;  // y_ab in the full graph
};

class HeldOutSplit {
 public:
  /// Sample `num_pairs/2` links (removed from the training graph) and
  /// `num_pairs/2` non-links. Throws if the graph has too few edges.
  HeldOutSplit(rng::Xoshiro256& rng, const Graph& full,
               std::size_t num_pairs);

  const Graph& training() const { return training_; }
  const std::vector<HeldOutPair>& pairs() const { return pairs_; }

  /// True iff {u, v} is reserved for evaluation; minibatch samplers use
  /// this to keep held-out pairs out of the gradient estimates.
  bool is_held_out(Vertex u, Vertex v) const {
    return reserved_.contains(u, v);
  }

 private:
  Graph training_;
  std::vector<HeldOutPair> pairs_;
  EdgeSet reserved_;
};

}  // namespace scd::graph
