#include "graph/graph.h"

#include <algorithm>

#include "util/error.h"

namespace scd::graph {

Graph::Graph(std::vector<std::uint64_t> offsets,
             std::vector<Vertex> adjacency)
    : offsets_(std::move(offsets)), adjacency_(std::move(adjacency)) {
  SCD_REQUIRE(!offsets_.empty(), "CSR offsets must have at least one entry");
  SCD_REQUIRE(offsets_.front() == 0 && offsets_.back() == adjacency_.size(),
              "CSR offsets do not cover the adjacency array");
  for (std::size_t v = 0; v + 1 < offsets_.size(); ++v) {
    SCD_REQUIRE(offsets_[v] <= offsets_[v + 1], "CSR offsets not monotone");
    SCD_REQUIRE(std::is_sorted(adjacency_.begin() +
                                   static_cast<std::ptrdiff_t>(offsets_[v]),
                               adjacency_.begin() +
                                   static_cast<std::ptrdiff_t>(offsets_[v + 1])),
                "adjacency list not sorted");
  }
}

bool Graph::has_edge(Vertex u, Vertex v) const {
  if (u == v) return false;
  // Search the shorter list.
  if (degree(u) > degree(v)) std::swap(u, v);
  const auto nbrs = neighbors(u);
  return std::binary_search(nbrs.begin(), nbrs.end(), v);
}

std::uint64_t Graph::max_degree() const {
  std::uint64_t best = 0;
  for (Vertex v = 0; v < num_vertices(); ++v) {
    best = std::max(best, degree(v));
  }
  return best;
}

}  // namespace scd::graph
