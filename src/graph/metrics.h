// Community-recovery quality metrics.
//
// The paper evaluates convergence via held-out perplexity only; because
// our synthetic stand-ins carry planted ground truth, we can additionally
// score how well the inferred memberships recover it:
//
//  * best-match F1 (Yang & Leskovec 2013): average of the best F1 match of
//    every ground-truth community against the detected cover and vice
//    versa. Handles overlapping covers naturally.
//  * NMI over dominant labels: classic normalized mutual information on
//    the per-vertex argmax community. A coarse but familiar cross-check.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "graph/types.h"

namespace scd::graph {

using Cover = std::vector<std::vector<Vertex>>;  // communities -> members

/// F1 of two member sets (treated as unordered sets; inputs sorted).
double set_f1(const std::vector<Vertex>& x, const std::vector<Vertex>& y);

/// Symmetric average best-match F1 between two covers. 1.0 = identical.
/// Empty communities are ignored; two empty covers score 0.
double best_match_f1(const Cover& truth, const Cover& detected);

/// NMI of two hard label assignments (labels in [0, num_labels)).
/// Returns a value in [0, 1]; 1 = identical partitions up to renaming.
double nmi(const std::vector<std::uint32_t>& labels_a,
           const std::vector<std::uint32_t>& labels_b);

/// Parse a cover file: one community per line, whitespace-separated
/// vertex ids (the format of SNAP ground-truth files and of the scd
/// CLI's --communities-out / --truth-out). Members are sorted; blank
/// lines and '#' comments are skipped. Throws scd::DataError on
/// malformed content.
Cover load_cover_stream(std::istream& in);
Cover load_cover_file(const std::string& path);

}  // namespace scd::graph
