#include "graph/builder.h"

#include <algorithm>

#include "util/error.h"

namespace scd::graph {

void GraphBuilder::add_edge(Vertex u, Vertex v) {
  SCD_REQUIRE(u != v, "self-loop rejected");
  if (fixed_n_) {
    SCD_REQUIRE(u < num_vertices_ && v < num_vertices_,
                "vertex id exceeds declared vertex count");
  } else {
    num_vertices_ = std::max(num_vertices_, std::max(u, v) + 1);
  }
  edges_.push_back(encode_edge(u, v));
}

Graph GraphBuilder::build() && {
  std::sort(edges_.begin(), edges_.end());
  edges_.erase(std::unique(edges_.begin(), edges_.end()), edges_.end());

  const std::size_t n = num_vertices_;
  std::vector<std::uint64_t> offsets(n + 1, 0);
  // Count directed degrees.
  for (std::uint64_t code : edges_) {
    const Edge e = decode_edge(code);
    ++offsets[e.a + 1];
    ++offsets[e.b + 1];
  }
  for (std::size_t v = 0; v < n; ++v) offsets[v + 1] += offsets[v];

  std::vector<Vertex> adjacency(edges_.size() * 2);
  std::vector<std::uint64_t> cursor(offsets.begin(), offsets.end() - 1);
  for (std::uint64_t code : edges_) {
    const Edge e = decode_edge(code);
    adjacency[cursor[e.a]++] = e.b;
    adjacency[cursor[e.b]++] = e.a;
  }
  // Edges were globally sorted by (a, b); per-vertex lists for 'a' come
  // out sorted, but lists for the 'b' side need a per-vertex sort.
  for (std::size_t v = 0; v < n; ++v) {
    std::sort(adjacency.begin() + static_cast<std::ptrdiff_t>(offsets[v]),
              adjacency.begin() + static_cast<std::ptrdiff_t>(offsets[v + 1]));
  }
  edges_.clear();
  return Graph(std::move(offsets), std::move(adjacency));
}

}  // namespace scd::graph
