#include "graph/heldout.h"

#include <algorithm>

#include "graph/builder.h"
#include "random/sampling.h"
#include "util/error.h"

namespace scd::graph {

HeldOutSplit::HeldOutSplit(rng::Xoshiro256& rng, const Graph& full,
                           std::size_t num_pairs)
    : reserved_(num_pairs) {
  const Vertex n = full.num_vertices();
  const std::size_t want_links = num_pairs / 2;
  const std::size_t want_nonlinks = num_pairs - want_links;
  SCD_REQUIRE(want_links < full.num_edges(),
              "held-out set would consume the whole edge set");
  SCD_REQUIRE(num_pairs < full.num_pairs() - full.num_edges(),
              "held-out set larger than available non-links");

  // Materialize the edge list once for uniform link sampling.
  std::vector<std::uint64_t> edge_codes;
  edge_codes.reserve(full.num_edges());
  for (Vertex v = 0; v < n; ++v) {
    for (Vertex w : full.neighbors(v)) {
      if (v < w) edge_codes.push_back(encode_edge(v, w));
    }
  }

  pairs_.reserve(num_pairs);
  const auto picked = rng::sample_without_replacement(
      rng, edge_codes.size(), want_links);
  for (std::uint64_t idx : picked) {
    const Edge e = decode_edge(edge_codes[static_cast<std::size_t>(idx)]);
    pairs_.push_back({e.a, e.b, true});
    reserved_.insert(e.a, e.b);
  }

  // Non-links by rejection; sparse graphs accept almost always.
  std::size_t found = 0;
  while (found < want_nonlinks) {
    const auto [a64, b64] = rng::sample_distinct_pair(rng, n);
    const auto a = static_cast<Vertex>(a64);
    const auto b = static_cast<Vertex>(b64);
    if (full.has_edge(a, b) || reserved_.contains(a, b)) continue;
    pairs_.push_back({a, b, false});
    reserved_.insert(a, b);
    ++found;
  }

  // Training graph: every edge except held-out links.
  GraphBuilder builder(n);
  for (std::uint64_t code : edge_codes) {
    const Edge e = decode_edge(code);
    if (!reserved_.contains(e.a, e.b)) builder.add_edge(e.a, e.b);
  }
  training_ = std::move(builder).build();
}

}  // namespace scd::graph
