// Minibatch construction for the SG-MCMC sampler.
//
// Two strategies from the underlying algorithm paper [16]:
//
//  * kRandomPair — E_n is a uniform sample of vertex pairs from E (all
//    pairs), h(E_n) = |pairs| / |E_n|. Simple, higher-variance.
//
//  * kStratifiedRandomNode — pick a vertex a uniformly. With probability
//    1/2 the minibatch is all of a's *link* edges with h = N; otherwise it
//    is a 1/m sample of a's non-link pairs with h = N*m. This estimator is
//    unbiased for the full-graph gradient sum (see tests) and gives far
//    lower variance on sparse graphs — it is the strategy behind the
//    paper's headline runs.
//
// Held-out pairs are excluded from minibatches (they would leak the test
// set into training). Neighbor sampling (V_n, Eqn 5) is uniform over
// V \ {a}; held-out exclusion is deliberately skipped there because a
// worker in the distributed design only owns the adjacency of its
// minibatch vertices — matching the paper's data distribution — and the
// induced bias is O(|E_h| / N^2).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "graph/graph.h"
#include "graph/heldout.h"
#include "random/alias_table.h"
#include "random/xoshiro.h"

namespace scd::graph {

struct MinibatchPair {
  Vertex a = 0;
  Vertex b = 0;
  bool link = false;
};

struct Minibatch {
  std::vector<MinibatchPair> pairs;
  /// h(E_n): multiplier scaling the minibatch gradient sum to the full
  /// graph (Eqn 3).
  double scale = 1.0;
  /// Unique vertices of the minibatch, sorted — the set Algorithm 1
  /// iterates for the phi updates; M = vertices.size().
  std::vector<Vertex> vertices;
};

enum class MinibatchStrategy { kRandomPair, kStratifiedRandomNode };

/// Reusable scratch for MinibatchSampler::draw_into: the dedup set used
/// while drawing. Construct once, pass to every draw; no steady-state
/// allocation after the first few draws warm its capacity.
struct MinibatchScratch {
  EdgeSet chosen{16};
};

class MinibatchSampler {
 public:
  struct Options {
    MinibatchStrategy strategy = MinibatchStrategy::kStratifiedRandomNode;
    /// kRandomPair: number of pairs per minibatch.
    std::size_t num_pairs = 32;
    /// kStratifiedRandomNode: number of non-link partitions m.
    std::size_t nonlink_partitions = 16;
    /// kStratifiedRandomNode: draw the anchor vertex through a prebuilt
    /// equal-weight alias table instead of rng.next_below. Equal weights
    /// make the alias draw *exactly* uniform (prob[i] == 1.0, alias[i]
    /// == i — see random/alias_table.h), so the sampled distribution is
    /// identical; the point is the different constant-time cost profile
    /// (table lookup + coin vs. Lemire rejection), which the simulator
    /// models as ComputeModel::draw_cost_per_vertex_alias_s and the
    /// autotuner searches as a dimension (src/tune/search_space.h).
    bool alias_anchor = false;
  };

  /// `heldout` may be null (no exclusions). The graph must be the
  /// *training* graph.
  MinibatchSampler(const Graph& training, const HeldOutSplit* heldout,
                   Options options);

  Minibatch draw(rng::Xoshiro256& rng) const;

  /// Allocation-free draw: refills `mb` (clearing previous contents,
  /// reusing vector/EdgeSet capacity) using `scratch` for dedup state.
  /// Identical output and rng consumption to draw().
  void draw_into(rng::Xoshiro256& rng, Minibatch& mb,
                 MinibatchScratch& scratch) const;

  /// Upper bound on pairs a draw can produce — for reserving Minibatch
  /// capacity up front so draw_into never reallocates. Stratified-node
  /// minibatches are bounded by max(max_degree, ceil((N-1)/m)).
  std::size_t max_pairs_bound() const;

  /// Capacity bound for Minibatch::vertices: finalization stages both
  /// endpoints of every pair before dedup, so 2 * max_pairs_bound().
  std::size_t max_vertices_bound() const;

  const Options& options() const { return options_; }

 private:
  void draw_random_pair_into(rng::Xoshiro256& rng, Minibatch& mb,
                             MinibatchScratch& scratch) const;
  void draw_stratified_node_into(rng::Xoshiro256& rng, Minibatch& mb,
                                 MinibatchScratch& scratch) const;
  bool excluded(Vertex a, Vertex b) const {
    return heldout_ != nullptr && heldout_->is_held_out(a, b);
  }

  const Graph& graph_;
  const HeldOutSplit* heldout_;
  Options options_;
  /// Equal-weight anchor table, built once iff options_.alias_anchor and
  /// the strategy draws anchors. Empty otherwise.
  rng::AliasTable anchor_alias_{rng::AliasTable::uniform(1)};
};

/// One sampled neighbor b for a minibatch vertex a, with the training-set
/// link indicator y_ab.
struct NeighborSample {
  Vertex b = 0;
  bool link = false;
};

/// Draw `count` distinct neighbors for `a` uniformly from V \ {a}.
/// `adj_a` is a's sorted training adjacency (the only graph data a
/// distributed worker owns for a).
std::vector<NeighborSample> sample_neighbors(rng::Xoshiro256& rng,
                                             Vertex num_vertices, Vertex a,
                                             std::span<const Vertex> adj_a,
                                             std::size_t count);

/// How the neighbor set V_n of Eqn 5 is formed. kUniform is Eqn 5
/// verbatim (|V_n| nodes uniform from V \ {a}, whole sum scaled N/|V_n|);
/// kLinkAware takes all of a's links exactly plus a scaled uniform
/// non-link sample — also unbiased, with the link term's variance
/// removed, which sparse graphs need in practice (see core/options.h).
enum class NeighborMode { kUniform, kLinkAware };

/// A drawn neighbor set with its gradient weighting: the full-graph
/// neighbor sum is estimated by
///   sum_{i < exact_prefix} g_i + sampled_scale * sum_{i >= exact_prefix} g_i.
struct NeighborSet {
  std::vector<NeighborSample> samples;
  std::size_t exact_prefix = 0;
  double sampled_scale = 1.0;
};

/// Link-aware neighbor set: all links of a (exact prefix) followed by
/// `count` distinct uniform non-links with scale (N-1-deg)/count.
NeighborSet sample_neighbors_link_aware(rng::Xoshiro256& rng,
                                        Vertex num_vertices, Vertex a,
                                        std::span<const Vertex> adj_a,
                                        std::size_t count);

/// Mode dispatch: kUniform wraps sample_neighbors with exact_prefix = 0
/// and sampled_scale = N/count.
NeighborSet draw_neighbor_set(rng::Xoshiro256& rng, NeighborMode mode,
                              Vertex num_vertices, Vertex a,
                              std::span<const Vertex> adj_a,
                              std::size_t count);

/// Reusable per-thread scratch for draw_neighbor_set_into.
struct NeighborScratch {
  /// Raw Floyd draws for the uniform mode.
  std::vector<std::uint64_t> raw;
  /// Dedup set for the link-aware rejection loop.
  EdgeSet chosen{16};
};

/// Allocation-free form of draw_neighbor_set: refills `set` reusing its
/// capacity. Identical output and rng consumption. Reserve
/// set.samples.capacity() >= max_degree + count once to make subsequent
/// calls allocation-free.
void draw_neighbor_set_into(rng::Xoshiro256& rng, NeighborMode mode,
                            Vertex num_vertices, Vertex a,
                            std::span<const Vertex> adj_a, std::size_t count,
                            NeighborSet& set, NeighborScratch& scratch);

}  // namespace scd::graph
