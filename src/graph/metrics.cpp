#include "graph/metrics.h"

#include <algorithm>
#include <cmath>
#include <charconv>
#include <fstream>
#include <map>
#include <sstream>

#include "util/error.h"

namespace scd::graph {

double set_f1(const std::vector<Vertex>& x, const std::vector<Vertex>& y) {
  if (x.empty() || y.empty()) return 0.0;
  SCD_ASSERT(std::is_sorted(x.begin(), x.end()) &&
                 std::is_sorted(y.begin(), y.end()),
             "set_f1 inputs must be sorted");
  std::size_t inter = 0;
  auto ix = x.begin();
  auto iy = y.begin();
  while (ix != x.end() && iy != y.end()) {
    if (*ix < *iy) {
      ++ix;
    } else if (*iy < *ix) {
      ++iy;
    } else {
      ++inter;
      ++ix;
      ++iy;
    }
  }
  if (inter == 0) return 0.0;
  const double precision = static_cast<double>(inter) / static_cast<double>(y.size());
  const double recall = static_cast<double>(inter) / static_cast<double>(x.size());
  return 2.0 * precision * recall / (precision + recall);
}

namespace {
double directed_best_f1(const Cover& from, const Cover& to) {
  double total = 0.0;
  std::size_t counted = 0;
  for (const auto& c : from) {
    if (c.empty()) continue;
    double best = 0.0;
    for (const auto& d : to) {
      if (d.empty()) continue;
      best = std::max(best, set_f1(c, d));
    }
    total += best;
    ++counted;
  }
  return counted > 0 ? total / static_cast<double>(counted) : 0.0;
}
}  // namespace

double best_match_f1(const Cover& truth, const Cover& detected) {
  return 0.5 * (directed_best_f1(truth, detected) +
                directed_best_f1(detected, truth));
}

double nmi(const std::vector<std::uint32_t>& labels_a,
           const std::vector<std::uint32_t>& labels_b) {
  SCD_REQUIRE(labels_a.size() == labels_b.size(),
              "label vectors differ in length");
  const auto n = static_cast<double>(labels_a.size());
  if (labels_a.empty()) return 0.0;

  std::map<std::uint32_t, double> count_a;
  std::map<std::uint32_t, double> count_b;
  std::map<std::pair<std::uint32_t, std::uint32_t>, double> joint;
  for (std::size_t i = 0; i < labels_a.size(); ++i) {
    count_a[labels_a[i]] += 1.0;
    count_b[labels_b[i]] += 1.0;
    joint[{labels_a[i], labels_b[i]}] += 1.0;
  }

  auto entropy = [n](const std::map<std::uint32_t, double>& counts) {
    double h = 0.0;
    for (const auto& [label, c] : counts) {
      const double p = c / n;
      h -= p * std::log(p);
    }
    return h;
  };
  const double ha = entropy(count_a);
  const double hb = entropy(count_b);

  double mi = 0.0;
  for (const auto& [ab, c] : joint) {
    const double pab = c / n;
    const double pa = count_a.at(ab.first) / n;
    const double pb = count_b.at(ab.second) / n;
    mi += pab * std::log(pab / (pa * pb));
  }

  if (ha <= 0.0 && hb <= 0.0) return 1.0;  // both trivial partitions
  const double denom = 0.5 * (ha + hb);
  return denom > 0.0 ? std::max(0.0, mi / denom) : 0.0;
}

Cover load_cover_stream(std::istream& in) {
  Cover cover;
  std::string line;
  std::size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    if (!line.empty() && line.back() == '\r') line.pop_back();
    const std::size_t first = line.find_first_not_of(" \t");
    if (first == std::string::npos || line[first] == '#') continue;
    std::vector<Vertex> members;
    const char* cursor = line.data() + first;
    const char* end = line.data() + line.size();
    while (cursor < end) {
      while (cursor < end && (*cursor == ' ' || *cursor == '\t')) ++cursor;
      if (cursor == end) break;
      Vertex value = 0;
      const auto [next, ec] = std::from_chars(cursor, end, value);
      if (ec != std::errc{} || next == cursor) {
        throw scd::DataError("cover parse error at line " +
                             std::to_string(line_no));
      }
      members.push_back(value);
      cursor = next;
    }
    std::sort(members.begin(), members.end());
    members.erase(std::unique(members.begin(), members.end()),
                  members.end());
    cover.push_back(std::move(members));
  }
  return cover;
}

Cover load_cover_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw scd::DataError("cannot open cover file '" + path + "'");
  return load_cover_stream(in);
}

}  // namespace scd::graph
