// Scaled-down stand-ins for the SNAP datasets of Table II.
//
// The original graphs (up to 1.8B edges) cannot be bundled or regenerated
// here, so each dataset gets a synthetic stand-in from the planted-overlap
// generator at ~1/1000 (large sets) or ~1/100 (small sets) vertex scale
// with the original average degree preserved. The paper's per-dataset
// experiment configuration (node count, community count K) is recorded
// next to the scaled configuration actually used by the benches, so
// EXPERIMENTS.md can report both sides.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "graph/generator.h"
#include "random/xoshiro.h"

namespace scd::graph {

struct DatasetSpec {
  std::string name;  // e.g. "com-Friendster"

  // Table II, as published.
  std::uint64_t paper_vertices = 0;
  std::uint64_t paper_edges = 0;
  std::uint64_t paper_ground_truth_communities = 0;

  // Figure 6 configuration, as published.
  std::uint32_t paper_cluster_nodes = 0;
  std::uint32_t paper_communities = 0;  // K used in the convergence run

  // Stand-in configuration. sim_communities is chosen so the planted
  // communities are small and internally dense (size ~15-60, strength
  // ~0.2-0.8) like real SNAP ground-truth communities — scaling N down
  // while keeping K would dilute the intra-community density below the
  // detectability threshold.
  Vertex sim_vertices = 0;
  double sim_avg_degree = 0.0;
  std::uint32_t sim_communities = 0;  // planted + inferred K
  double sim_overlap2 = 0.3;  // probability of 2 memberships
  double sim_overlap3 = 0.1;  // probability of 3 memberships

  /// Convergence-study scale (Fig 6). SG-MCMC needs ~10^3 updates per
  /// vertex to mix from a diffuse start — the paper's runs take hours on
  /// 65 nodes — so the Fig 6 reproduction uses a further-reduced graph
  /// whose full trajectory fits in seconds-to-minutes on one core, with
  /// the step size and minibatch partitioning tuned per density.
  struct ConvergenceConfig {
    Vertex vertices = 0;
    std::uint32_t communities = 0;
    std::uint64_t iterations = 0;
    double step_a = 0.02;
    std::size_t nonlink_partitions = 8;
  };
  ConvergenceConfig conv;
};

/// The planted-overlap generator config at convergence scale.
PlantedConfig convergence_config(const DatasetSpec& spec);

/// The six datasets of Table II, in paper order.
const std::vector<DatasetSpec>& standard_datasets();

/// Look up by (case-insensitive) name; throws scd::UsageError if unknown.
const DatasetSpec& dataset_by_name(const std::string& name);

/// Generate the stand-in graph for a spec.
GeneratedGraph generate_standin(rng::Xoshiro256& rng,
                                const DatasetSpec& spec);

}  // namespace scd::graph
