// Loader for SNAP edge-list text files (the format of the datasets in
// Table II: '#'-prefixed comment lines, then one "u<TAB>v" edge per line).
//
// Vertex ids in SNAP files are sparse; the loader remaps them to a dense
// 0..N-1 range and can report the mapping for users who need to translate
// detected communities back to original ids.
#pragma once

#include <cstdint>
#include <istream>
#include <string>
#include <unordered_map>
#include <vector>

#include "graph/graph.h"

namespace scd::graph {

struct SnapLoadResult {
  Graph graph;
  /// dense id -> original SNAP id
  std::vector<std::uint64_t> original_ids;
};

/// Parse from a stream (testable without touching the filesystem).
SnapLoadResult load_snap_stream(std::istream& in);

/// Parse from a file path; throws scd::DataError on malformed content or
/// missing file.
SnapLoadResult load_snap_file(const std::string& path);

}  // namespace scd::graph
