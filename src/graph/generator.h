// Synthetic graph generators with planted overlapping communities.
//
// Two generators are provided:
//
//  * generate_ammsb_exact — the literal a-MMSB generative process from
//    Section II-A of the paper (Beta/Dirichlet priors, per-pair community
//    draws). O(N^2): reserved for small graphs, where it gives test data
//    that is *exactly* from the model the sampler infers.
//
//  * generate_planted — a scalable planted-overlap generator: communities
//    get explicit member lists, intra-community links are Erdos-Renyi with
//    per-community strength beta_k, and a sparse delta-rate background is
//    layered over all pairs. O(E) via geometric skipping. This is the
//    stand-in for the SNAP datasets (Table II), with the bonus that ground
//    truth is known so recovery can be scored.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/graph.h"
#include "random/xoshiro.h"

namespace scd::graph {

/// Known ground truth of a generated graph.
struct GroundTruth {
  /// communities[k] = sorted member vertices of community k.
  std::vector<std::vector<Vertex>> communities;
  /// memberships[v] = communities vertex v belongs to (sorted).
  std::vector<std::vector<std::uint32_t>> memberships;
  /// True intra-community link strength per community.
  std::vector<double> beta;
  /// True background (inter-community) link probability.
  double delta = 0.0;
};

struct GeneratedGraph {
  Graph graph;
  GroundTruth truth;
};

/// Parameters of the exact a-MMSB process.
struct AmmsbExactConfig {
  Vertex num_vertices = 100;
  std::uint32_t num_communities = 4;
  double alpha = 0.05;   // Dirichlet concentration for pi
  double eta0 = 5.0;     // Beta(eta0, eta1) prior for community strength
  double eta1 = 1.0;
  double delta = 0.01;   // inter-community link probability
};

/// Run the generative process of Section II-A. GroundTruth communities are
/// derived by thresholding the sampled pi at `membership_threshold`.
GeneratedGraph generate_ammsb_exact(rng::Xoshiro256& rng,
                                    const AmmsbExactConfig& config,
                                    double membership_threshold = 0.25);

/// Parameters of the scalable planted-overlap generator.
struct PlantedConfig {
  Vertex num_vertices = 1000;
  std::uint32_t num_communities = 10;
  /// Probability that a vertex holds 2 (and 3) memberships; the remainder
  /// holds exactly 1. Every vertex belongs to at least one community.
  double p_two_memberships = 0.3;
  double p_three_memberships = 0.1;
  /// Intra-community link probability range: beta_k ~ U[beta_lo, beta_hi].
  double beta_lo = 0.1;
  double beta_hi = 0.3;
  /// Background link probability across all pairs.
  double delta = 1e-4;
};

GeneratedGraph generate_planted(rng::Xoshiro256& rng,
                                const PlantedConfig& config);

/// Solve for the PlantedConfig that yields approximately the requested
/// average degree, given the community layout parameters. Used by the
/// dataset stand-ins to match SNAP densities.
PlantedConfig planted_config_for_degree(Vertex num_vertices,
                                        std::uint32_t num_communities,
                                        double target_avg_degree,
                                        double overlap2 = 0.3,
                                        double overlap3 = 0.1);

}  // namespace scd::graph
