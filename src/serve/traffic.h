// Synthetic heavy-traffic driver and scripted queries for the serving
// layer.
//
// run_traffic spins worker threads that fire a seeded, Zipf-skewed query
// stream at a QueryEngine (real social traffic concentrates on popular
// nodes, so uniform sampling would flatter the cache behavior), measures
// per-query wall latency, and optionally refreshes the model snapshot
// mid-load: a refresher thread round-trips the current checkpoint through
// core::checkpoint_to_bytes / checkpoint_from_bytes — the same transport
// the fault-tolerant trainer uses for rollback snapshots — rebuilds the
// index, and publishes it while queries keep flowing.
//
// Everything result-shaped is deterministic: each worker owns a derived
// RNG stream, so the set of queries issued (and the per-worker result
// checksum) depends only on (seed, thread count, ops), never on timing.
// With an exact refresh codec the rebuilt index is bit-identical, so the
// checksum is refresh-invariant too — the serve bench asserts both.
// Timing numbers (qps, percentiles) are the only wall-clock outputs.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "quant/row_codec.h"
#include "serve/query_engine.h"

namespace scd::serve {

enum class QueryKind : std::uint8_t { kTop = 0, kLink = 1, kMembers = 2 };

/// One line of a query script: `top <u> <k>`, `link <u> <v>` or
/// `members <c> <k>` (blank lines and `#` comments skipped).
struct ScriptedQuery {
  QueryKind kind = QueryKind::kTop;
  std::uint32_t a = 0;
  std::uint32_t b = 0;
};

/// Parse a query script; throws scd::DataError naming the bad line.
std::vector<ScriptedQuery> parse_query_script(std::istream& in);
std::vector<ScriptedQuery> load_query_script(const std::string& path);

struct TrafficOptions {
  std::uint64_t ops = 100'000;  ///< total queries across all workers
  unsigned threads = 4;         ///< query worker threads
  /// Zipf exponent of node popularity (0 = uniform). Both endpoints of
  /// link queries and the subject of top queries are popularity-skewed;
  /// community ids are uniform.
  double zipf_s = 0.99;
  /// Query mix (normalized internally; all-zero is an error).
  double mix_top = 0.70;
  double mix_link = 0.25;
  double mix_members = 0.05;
  std::uint32_t top_k = 8;      ///< k of top-community queries
  std::uint32_t members_k = 16; ///< k of member queries
  std::uint64_t seed = 1;
  /// Snapshot refreshes to publish while the load runs, spread evenly
  /// over op progress (0 = read-only load). Every refresh completes even
  /// if the workers finish first, so the count is deterministic.
  unsigned refreshes = 0;
  /// Codec of the checkpoint round-trip a refresh performs. kFloat32
  /// reproduces the index exactly (checksum-invariant); lossy codecs
  /// exercise the quantized snapshot wire format.
  quant::RowCodec refresh_codec = quant::RowCodec::kFloat32;
  float sparse_eps = quant::kDefaultSparseEps;
  /// Threads of the private pool a refresh builds its index on.
  unsigned refresh_build_threads = 2;
};

struct TrafficReport {
  std::uint64_t ops = 0;
  std::uint64_t ops_top = 0;
  std::uint64_t ops_link = 0;
  std::uint64_t ops_members = 0;
  double wall_s = 0.0;
  double qps = 0.0;
  // Per-query wall latency percentiles (microseconds) over all workers.
  double p50_us = 0.0;
  double p95_us = 0.0;
  double p99_us = 0.0;
  double max_us = 0.0;
  /// Order-fixed sum of per-worker result digests; identical across runs
  /// with the same seed/threads/ops against the same model.
  double checksum = 0.0;
  std::uint64_t refreshes = 0;      ///< snapshot publishes completed
  std::uint64_t acquire_retries = 0;  ///< reader/publish races (bounded)
  std::uint64_t reader_stalls = 0;  ///< acquires past the stall threshold
  std::uint64_t start_epoch = 0;
  std::uint64_t end_epoch = 0;
};

/// Drive `options.ops` queries at the snapshot store and return the
/// report. `snapshots` must hold a published index.
TrafficReport run_traffic(ServingSnapshots& snapshots,
                          const TrafficOptions& options);

/// Zipf(s) sampler over [0, n): rank r drawn with probability
/// proportional to 1/(r+1)^s via a precomputed CDF + binary search.
/// Deterministic per engine stream; s = 0 degenerates to uniform.
class ZipfSampler {
 public:
  ZipfSampler(std::uint32_t n, double s);
  std::uint32_t operator()(rng::Xoshiro256& rng) const;

 private:
  std::vector<double> cdf_;
};

}  // namespace scd::serve
