// Membership-query API over lock-free snapshots of a ServingIndex.
//
// Every query acquires the current snapshot through the
// threading::SnapshotManager guard, answers against that immutable index,
// and releases it — so a concurrent model refresh (publish of a freshly
// built index) never blocks a query and never tears one: a query sees
// entirely the old snapshot or entirely the new one.
//
// link_probability routes through the same dispatched pair-likelihood
// kernel (core::fast_pair_likelihood) on the same dense [pi | phi_sum]
// rows and LikelihoodTerms training used, so a served probability is
// bit-identical to the training-side perplexity term for the same
// checkpoint (asserted by tests/serve/query_engine_test.cpp).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "serve/serving_index.h"
#include "threading/snapshot.h"

namespace scd::serve {

/// The snapshot store the serving layer publishes into and queries from.
using ServingSnapshots = threading::SnapshotManager<ServingIndex>;

class QueryEngine {
 public:
  /// The engine reads whatever snapshot `snapshots` currently holds; the
  /// manager must outlive the engine. Queries throw scd::Error until the
  /// first snapshot is published.
  explicit QueryEngine(ServingSnapshots& snapshots)
      : snapshots_(snapshots) {}

  /// Top-k communities of `u`, weight-descending, written into `out`
  /// (clamped to out.size()); returns the count written. k <= top_r is
  /// served from the index in O(k); deeper asks fall back to an exact
  /// O(K log k) selection over the dense pi row, so any k up to K is
  /// answerable. Allocation-free when k <= top_r.
  std::uint32_t top_communities(std::uint32_t u, std::span<TopEntry> out)
      const;
  std::vector<TopEntry> top_communities(std::uint32_t u,
                                        std::uint32_t k) const;

  /// Model probability of edge (u, v) existing — Z_uv^(1) of the pair
  /// kernel. O(K).
  double link_probability(std::uint32_t u, std::uint32_t v) const;

  /// Z_uv^(y): the y = link/non-link stratified form the training-side
  /// perplexity evaluator averages. link_probability is y = true.
  double pair_likelihood(std::uint32_t u, std::uint32_t v, bool link) const;

  /// Top-k members of community `c`, weight-descending, into `out`
  /// (clamped); returns the count written (may be short: only members
  /// above the index's membership threshold are listed). O(k),
  /// allocation-free.
  std::uint32_t community_members(std::uint32_t c, std::span<MemberEntry> out)
      const;
  std::vector<MemberEntry> community_members(std::uint32_t c,
                                             std::uint32_t k) const;

  /// Snapshot generation the next query will see.
  std::uint64_t epoch() const { return snapshots_.epoch(); }

 private:
  ServingSnapshots::Ref current() const;

  ServingSnapshots& snapshots_;
};

}  // namespace scd::serve
