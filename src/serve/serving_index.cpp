#include "serve/serving_index.h"

#include <algorithm>
#include <utility>

#include "core/report.h"
#include "util/error.h"

namespace scd::serve {

namespace {

/// Weight-descending, index-ascending — the one ordering every list in
/// the index uses, so results are unique and thread-count independent.
inline bool ranks_before(float weight_a, std::uint32_t id_a, float weight_b,
                         std::uint32_t id_b) {
  if (weight_a != weight_b) return weight_a > weight_b;
  return id_a < id_b;
}

}  // namespace

ServingIndex::ServingIndex(core::Checkpoint checkpoint,
                           const ServingIndexOptions& options,
                           threading::ThreadPool& pool)
    : checkpoint_(std::move(checkpoint)),
      n_(checkpoint_.pi.num_vertices()),
      k_(checkpoint_.pi.num_communities()) {
  SCD_REQUIRE(options.top_r >= 1, "serving index needs top_r >= 1");
  top_r_ = std::min(options.top_r, k_);
  threshold_ = options.membership_threshold >= 0.0
                   ? options.membership_threshold
                   : core::default_membership_threshold(k_);
  terms_.refresh(checkpoint_.global.beta_all(), checkpoint_.hyper.delta);
  build(pool);
}

void ServingIndex::build(threading::ThreadPool& pool) {
  top_.resize(std::size_t{n_} * top_r_);

  // Stage 1 — per-node top-R selection, embarrassingly parallel over
  // vertices. Each thread ranks candidate communities in a private
  // scratch; output slots are disjoint, so the result is identical at
  // any thread count.
  pool.parallel_for(0, n_, [&](unsigned, std::uint64_t lo,
                               std::uint64_t hi) {
    std::vector<std::uint32_t> order(k_);
    for (std::uint64_t v = lo; v < hi; ++v) {
      const std::span<const float> row = checkpoint_.pi.row(
          static_cast<std::uint32_t>(v));
      for (std::uint32_t c = 0; c < k_; ++c) order[c] = c;
      std::partial_sort(order.begin(), order.begin() + top_r_, order.end(),
                        [&](std::uint32_t a, std::uint32_t b) {
                          return ranks_before(row[a], a, row[b], b);
                        });
      TopEntry* slot = top_.data() + v * top_r_;
      for (std::uint32_t r = 0; r < top_r_; ++r) {
        slot[r] = TopEntry{order[r], row[order[r]]};
      }
    }
  });

  // Stage 2 — size the inverted lists: count, per community, the
  // vertices whose top window clears the membership threshold. Threads
  // count into private arrays which are reduced in thread order.
  const unsigned threads = pool.num_threads();
  std::vector<std::vector<std::size_t>> counts(
      threads, std::vector<std::size_t>(k_, 0));
  const float threshold = static_cast<float>(threshold_);
  pool.parallel_for(0, n_, [&](unsigned t, std::uint64_t lo,
                               std::uint64_t hi) {
    std::vector<std::size_t>& mine = counts[t];
    for (std::uint64_t v = lo; v < hi; ++v) {
      const TopEntry* slot = top_.data() + v * top_r_;
      for (std::uint32_t r = 0; r < top_r_ && slot[r].weight >= threshold;
           ++r) {
        ++mine[slot[r].community];
      }
    }
  });
  member_offsets_.assign(std::size_t{k_} + 1, 0);
  for (std::uint32_t c = 0; c < k_; ++c) {
    std::size_t total = 0;
    for (unsigned t = 0; t < threads; ++t) total += counts[t][c];
    member_offsets_[c + 1] = member_offsets_[c] + total;
  }
  members_.resize(member_offsets_[k_]);

  // Stage 3 — scatter in vertex order (sequential: the per-community
  // cursors make parallel scatter order-dependent; this pass is a cheap
  // O(N * R) sweep next to stage 1's O(N * K log R)).
  std::vector<std::size_t> cursor(member_offsets_.begin(),
                                  member_offsets_.end() - 1);
  for (std::uint32_t v = 0; v < n_; ++v) {
    const TopEntry* slot = top_.data() + std::size_t{v} * top_r_;
    for (std::uint32_t r = 0; r < top_r_ && slot[r].weight >= threshold;
         ++r) {
      members_[cursor[slot[r].community]++] =
          MemberEntry{v, slot[r].weight};
    }
  }

  // Stage 4 — rank each community's members, parallel over communities.
  // Sorting a deterministic input with a strict total order keeps the
  // output thread-count independent.
  pool.parallel_for(0, k_, [&](unsigned, std::uint64_t lo,
                               std::uint64_t hi) {
    for (std::uint64_t c = lo; c < hi; ++c) {
      auto begin = members_.begin() +
                   static_cast<std::ptrdiff_t>(member_offsets_[c]);
      auto end = members_.begin() +
                 static_cast<std::ptrdiff_t>(member_offsets_[c + 1]);
      std::sort(begin, end, [](const MemberEntry& a, const MemberEntry& b) {
        return ranks_before(a.weight, a.vertex, b.weight, b.vertex);
      });
    }
  });
}

std::size_t ServingIndex::index_bytes() const {
  return top_.size() * sizeof(TopEntry) +
         members_.size() * sizeof(MemberEntry) +
         member_offsets_.size() * sizeof(std::size_t) +
         std::size_t{n_} * (k_ + 1) * sizeof(float) +  // dense rows
         std::size_t{k_} * (2 * sizeof(double) + sizeof(float));  // theta+beta
}

std::unique_ptr<const ServingIndex> build_serving_index(
    core::Checkpoint checkpoint, const ServingIndexOptions& options,
    threading::ThreadPool& pool) {
  return std::make_unique<const ServingIndex>(std::move(checkpoint),
                                              options, pool);
}

}  // namespace scd::serve
