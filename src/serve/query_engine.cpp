#include "serve/query_engine.h"

#include <algorithm>

#include "core/kernels_simd.h"
#include "util/error.h"

namespace scd::serve {

namespace {

inline bool ranks_before(float weight_a, std::uint32_t id_a, float weight_b,
                         std::uint32_t id_b) {
  if (weight_a != weight_b) return weight_a > weight_b;
  return id_a < id_b;
}

}  // namespace

ServingSnapshots::Ref QueryEngine::current() const {
  ServingSnapshots::Ref ref = snapshots_.acquire();
  if (!ref) throw Error("no serving snapshot published yet");
  return ref;
}

std::uint32_t QueryEngine::top_communities(std::uint32_t u,
                                           std::span<TopEntry> out) const {
  const ServingSnapshots::Ref index = current();
  SCD_REQUIRE(u < index->num_vertices(), "vertex out of range");
  const auto k = static_cast<std::uint32_t>(
      std::min<std::size_t>(out.size(), index->num_communities()));
  if (k <= index->top_r()) {
    const std::span<const TopEntry> list = index->top_list(u);
    std::copy_n(list.begin(), k, out.begin());
    return k;
  }
  // Exact fallback: rank the full dense row. The scratch is thread-local
  // so deep queries stay allocation-free after warm-up (the index path
  // above allocates nothing at all).
  static thread_local std::vector<std::uint32_t> order;
  const std::span<const float> row = index->pi_row(u);
  const std::uint32_t num_k = index->num_communities();
  order.resize(num_k);
  for (std::uint32_t c = 0; c < num_k; ++c) order[c] = c;
  std::partial_sort(order.begin(), order.begin() + k, order.end(),
                    [&](std::uint32_t a, std::uint32_t b) {
                      return ranks_before(row[a], a, row[b], b);
                    });
  for (std::uint32_t r = 0; r < k; ++r) {
    out[r] = TopEntry{order[r], row[order[r]]};
  }
  return k;
}

std::vector<TopEntry> QueryEngine::top_communities(std::uint32_t u,
                                                   std::uint32_t k) const {
  std::vector<TopEntry> result(k);
  result.resize(top_communities(u, result));
  return result;
}

double QueryEngine::pair_likelihood(std::uint32_t u, std::uint32_t v,
                                    bool link) const {
  const ServingSnapshots::Ref index = current();
  SCD_REQUIRE(u < index->num_vertices() && v < index->num_vertices(),
              "vertex out of range");
  return core::fast_pair_likelihood(index->pi_row(u), index->pi_row(v),
                                    index->terms(), link);
}

double QueryEngine::link_probability(std::uint32_t u, std::uint32_t v) const {
  return pair_likelihood(u, v, /*link=*/true);
}

std::uint32_t QueryEngine::community_members(std::uint32_t c,
                                             std::span<MemberEntry> out)
    const {
  const ServingSnapshots::Ref index = current();
  SCD_REQUIRE(c < index->num_communities(), "community out of range");
  const std::span<const MemberEntry> list = index->members(c);
  const auto k = static_cast<std::uint32_t>(
      std::min(out.size(), list.size()));
  std::copy_n(list.begin(), k, out.begin());
  return k;
}

std::vector<MemberEntry> QueryEngine::community_members(
    std::uint32_t c, std::uint32_t k) const {
  std::vector<MemberEntry> result(k);
  result.resize(community_members(c, result));
  return result;
}

}  // namespace scd::serve
