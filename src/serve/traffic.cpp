#include "serve/traffic.h"

#include <algorithm>
#include <array>
#include <atomic>
#include <chrono>
#include <cmath>
#include <fstream>
#include <sstream>
#include <thread>

#include "core/checkpoint.h"
#include "core/state.h"
#include "util/error.h"

namespace scd::serve {

namespace {

/// Stream label for core::derive_rng — disjoint from the training labels
/// in core::rng_label, so a serving load never replays training noise.
constexpr std::uint64_t kTrafficLabel = 101;

/// Ops between flushes of a worker's progress into the shared counter
/// the refresher watches; keeps the hot loop free of shared-cacheline
/// traffic without delaying refresh triggers meaningfully.
constexpr std::uint64_t kProgressBatch = 256;

double percentile(std::vector<std::uint64_t>& ns, double q) {
  if (ns.empty()) return 0.0;
  const auto rank = static_cast<std::size_t>(
      q * static_cast<double>(ns.size() - 1));
  std::nth_element(ns.begin(), ns.begin() + static_cast<std::ptrdiff_t>(rank),
                   ns.end());
  return static_cast<double>(ns[rank]) * 1e-3;  // ns -> us
}

}  // namespace

std::vector<ScriptedQuery> parse_query_script(std::istream& in) {
  std::vector<ScriptedQuery> queries;
  std::string line;
  std::size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    const auto first = line.find_first_not_of(" \t");
    if (first == std::string::npos || line[first] == '#') continue;
    std::istringstream fields(line);
    std::string op;
    long long a = -1;
    long long b = -1;
    fields >> op >> a >> b;
    ScriptedQuery q;
    if (op == "top") {
      q.kind = QueryKind::kTop;
    } else if (op == "link") {
      q.kind = QueryKind::kLink;
    } else if (op == "members") {
      q.kind = QueryKind::kMembers;
    } else {
      throw DataError("query script line " + std::to_string(line_no) +
                      ": unknown op '" + op +
                      "' (expected top, link or members)");
    }
    if (fields.fail() || a < 0 || b < 0) {
      throw DataError("query script line " + std::to_string(line_no) +
                      ": expected two non-negative integers after '" + op +
                      "'");
    }
    q.a = static_cast<std::uint32_t>(a);
    q.b = static_cast<std::uint32_t>(b);
    queries.push_back(q);
  }
  return queries;
}

std::vector<ScriptedQuery> load_query_script(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw DataError("cannot open query script '" + path + "'");
  return parse_query_script(in);
}

ZipfSampler::ZipfSampler(std::uint32_t n, double s) {
  SCD_REQUIRE(n >= 1, "Zipf sampler needs a non-empty domain");
  SCD_REQUIRE(s >= 0.0, "Zipf exponent must be >= 0");
  cdf_.resize(n);
  double total = 0.0;
  for (std::uint32_t r = 0; r < n; ++r) {
    total += std::pow(static_cast<double>(r) + 1.0, -s);
    cdf_[r] = total;
  }
  for (double& c : cdf_) c /= total;
  cdf_.back() = 1.0;
}

std::uint32_t ZipfSampler::operator()(rng::Xoshiro256& rng) const {
  const double x = rng.next_double();
  const auto it = std::upper_bound(cdf_.begin(), cdf_.end(), x);
  return static_cast<std::uint32_t>(
      std::min<std::ptrdiff_t>(it - cdf_.begin(),
                               static_cast<std::ptrdiff_t>(cdf_.size()) - 1));
}

TrafficReport run_traffic(ServingSnapshots& snapshots,
                          const TrafficOptions& options) {
  SCD_REQUIRE(options.ops >= 1, "traffic needs at least one op");
  SCD_REQUIRE(options.threads >= 1, "traffic needs at least one worker");
  const double mix_total =
      options.mix_top + options.mix_link + options.mix_members;
  SCD_REQUIRE(options.mix_top >= 0.0 && options.mix_link >= 0.0 &&
                  options.mix_members >= 0.0 && mix_total > 0.0,
              "query mix must be non-negative and not all zero");

  QueryEngine engine(snapshots);
  std::uint32_t num_vertices = 0;
  std::uint32_t num_communities = 0;
  {
    const ServingSnapshots::Ref index = snapshots.acquire();
    SCD_REQUIRE(static_cast<bool>(index),
                "run_traffic needs a published snapshot");
    num_vertices = index->num_vertices();
    num_communities = index->num_communities();
  }

  const ZipfSampler zipf(num_vertices, options.zipf_s);
  const double t_top = options.mix_top / mix_total;
  const double t_link = t_top + options.mix_link / mix_total;

  TrafficReport report;
  report.start_epoch = snapshots.epoch();
  const std::uint64_t retries_before = snapshots.acquire_retries();
  const std::uint64_t stalls_before = snapshots.stalled_acquires();

  const unsigned threads = options.threads;
  std::vector<std::vector<std::uint64_t>> latencies(threads);
  std::vector<double> digests(threads, 0.0);
  std::vector<std::array<std::uint64_t, 3>> kind_counts(
      threads, std::array<std::uint64_t, 3>{0, 0, 0});
  std::atomic<std::uint64_t> progress{0};

  // Mid-load refresher: at each op-progress milestone, round-trip the
  // live checkpoint through the snapshot byte transport, rebuild the
  // index on a private pool, and publish. Readers are never blocked; the
  // old index is retired once the last in-flight query drops its guard.
  std::atomic<std::uint64_t> refreshes_done{0};
  std::thread refresher;
  if (options.refreshes > 0) {
    refresher = std::thread([&] {
      threading::ThreadPool build_pool(options.refresh_build_threads);
      for (unsigned i = 1; i <= options.refreshes; ++i) {
        const std::uint64_t target =
            options.ops * i / (options.refreshes + 1);
        while (progress.load(std::memory_order_relaxed) < target) {
          std::this_thread::yield();
        }
        std::string bytes;
        ServingIndexOptions rebuild;
        {
          const ServingSnapshots::Ref index = snapshots.acquire();
          bytes = core::checkpoint_to_bytes(index->checkpoint(),
                                            options.refresh_codec,
                                            options.sparse_eps);
          rebuild.top_r = index->top_r();
          rebuild.membership_threshold = index->membership_threshold();
        }
        snapshots.publish(build_serving_index(
            core::checkpoint_from_bytes(bytes), rebuild, build_pool));
        refreshes_done.fetch_add(1);
      }
    });
  }

  threading::ThreadPool pool(threads);
  const auto wall_begin = std::chrono::steady_clock::now();
  pool.parallel_for(0, options.ops, [&](unsigned t, std::uint64_t lo,
                                        std::uint64_t hi) {
    rng::Xoshiro256 rng = core::derive_rng(options.seed, kTrafficLabel, t);
    std::vector<std::uint64_t>& lat = latencies[t];
    lat.reserve(hi - lo);
    std::vector<TopEntry> top_out(options.top_k);
    std::vector<MemberEntry> member_out(options.members_k);
    double digest = 0.0;
    std::uint64_t unflushed = 0;
    for (std::uint64_t op = lo; op < hi; ++op) {
      const double pick = rng.next_double();
      const auto begin = std::chrono::steady_clock::now();
      if (pick < t_top) {
        const std::uint32_t u = zipf(rng);
        const std::uint32_t got = engine.top_communities(u, top_out);
        for (std::uint32_t r = 0; r < got; ++r) {
          digest += (top_out[r].community + 1.0) *
                    static_cast<double>(top_out[r].weight);
        }
        ++kind_counts[t][0];
      } else if (pick < t_link) {
        const std::uint32_t u = zipf(rng);
        const std::uint32_t v = zipf(rng);
        digest += engine.link_probability(u, v);
        ++kind_counts[t][1];
      } else {
        const std::uint32_t c =
            static_cast<std::uint32_t>(rng.next_below(num_communities));
        const std::uint32_t got = engine.community_members(c, member_out);
        for (std::uint32_t r = 0; r < got; ++r) {
          digest += (member_out[r].vertex + 1.0) *
                    static_cast<double>(member_out[r].weight);
        }
        ++kind_counts[t][2];
      }
      const auto end = std::chrono::steady_clock::now();
      lat.push_back(static_cast<std::uint64_t>(
          std::chrono::duration_cast<std::chrono::nanoseconds>(end - begin)
              .count()));
      if (++unflushed == kProgressBatch) {
        progress.fetch_add(unflushed, std::memory_order_relaxed);
        unflushed = 0;
      }
    }
    progress.fetch_add(unflushed, std::memory_order_relaxed);
    digests[t] = digest;
  });
  const auto wall_end = std::chrono::steady_clock::now();
  if (refresher.joinable()) refresher.join();

  report.ops = options.ops;
  for (unsigned t = 0; t < threads; ++t) {
    report.ops_top += kind_counts[t][0];
    report.ops_link += kind_counts[t][1];
    report.ops_members += kind_counts[t][2];
    report.checksum += digests[t];
  }
  report.wall_s =
      std::chrono::duration<double>(wall_end - wall_begin).count();
  report.qps = report.wall_s > 0.0
                   ? static_cast<double>(report.ops) / report.wall_s
                   : 0.0;

  std::vector<std::uint64_t> all;
  all.reserve(options.ops);
  for (auto& lat : latencies) {
    all.insert(all.end(), lat.begin(), lat.end());
  }
  report.p50_us = percentile(all, 0.50);
  report.p95_us = percentile(all, 0.95);
  report.p99_us = percentile(all, 0.99);
  report.max_us = all.empty()
                      ? 0.0
                      : static_cast<double>(
                            *std::max_element(all.begin(), all.end())) * 1e-3;
  report.refreshes = refreshes_done.load();
  report.acquire_retries = snapshots.acquire_retries() - retries_before;
  report.reader_stalls = snapshots.stalled_acquires() - stalls_before;
  report.end_epoch = snapshots.epoch();
  return report;
}

}  // namespace scd::serve
