// Read-optimized serving index over a fitted pi/beta snapshot.
//
// Training produces a checkpoint; serving answers membership queries
// against it under heavy traffic. The query mix the ROADMAP names ("top
// communities for user u", "link probability u-v", "members of community
// k") wants two access paths the training layout does not provide:
//   * per-node top-R community lists — top_communities(u, k) in O(k)
//     instead of an O(K) scan plus an O(K log K) sort per query;
//   * per-community inverted member lists — community_members(c, k) in
//     O(k) instead of an O(N * K) sweep.
// The index is post-processed from any checkpoint (v1-v3; lossy/sparse
// rows were already decoded to dense floats by the loader through
// quant::decode_row) and also keeps the dense pi rows themselves: exact
// queries (link probability, top lists deeper than R) fall back to the
// full row, and the pair kernel runs on the same [pi | phi_sum] layout
// training used, so served probabilities are bit-identical to the
// training-side perplexity terms.
//
// A ServingIndex is immutable after construction — that is what makes the
// lock-free snapshot swap (threading/snapshot.h) sound. Model refreshes
// build a new index from checkpoint bytes and publish it; in-flight
// queries keep reading the old one until they drop their guard.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "core/checkpoint.h"
#include "core/grads.h"
#include "threading/thread_pool.h"

namespace scd::serve {

struct ServingIndexOptions {
  /// Per-node top list capacity R (clamped to K). Queries for k <= R are
  /// served from the index; deeper ones fall back to the dense row.
  std::uint32_t top_r = 32;
  /// Minimum pi for a vertex to appear in a community's inverted member
  /// list. Negative = auto: core::default_membership_threshold(K), the
  /// same heuristic the offline community report uses.
  double membership_threshold = -1.0;
};

/// One entry of a per-node top list: community id + its pi weight.
struct TopEntry {
  std::uint32_t community = 0;
  float weight = 0.0f;
};

/// One entry of a per-community inverted list: vertex id + its pi weight.
struct MemberEntry {
  std::uint32_t vertex = 0;
  float weight = 0.0f;
};

class ServingIndex {
 public:
  /// Post-process `checkpoint` (taken by value; the pi matrix moves into
  /// the index as the exact-query fallback) into the two serving access
  /// paths. The build parallelizes over `pool` and is deterministic: the
  /// same checkpoint yields byte-identical lists at any thread count.
  ServingIndex(core::Checkpoint checkpoint,
               const ServingIndexOptions& options,
               threading::ThreadPool& pool);

  // --- shape & provenance ------------------------------------------------
  std::uint32_t num_vertices() const { return n_; }
  std::uint32_t num_communities() const { return k_; }
  std::uint32_t top_r() const { return top_r_; }
  double membership_threshold() const { return threshold_; }
  /// Iteration the source checkpoint was taken at.
  std::uint64_t iteration() const { return checkpoint_.iteration; }
  /// Total entries across all inverted member lists.
  std::uint64_t inverted_entries() const { return members_.size(); }
  /// Approximate resident bytes of the index structures (top lists,
  /// inverted lists, dense rows).
  std::size_t index_bytes() const;

  // --- query access paths -----------------------------------------------
  /// Top-R communities of `u`, weight-descending (community-ascending
  /// tie-break).
  std::span<const TopEntry> top_list(std::uint32_t u) const {
    return {top_.data() + std::size_t{u} * top_r_, top_r_};
  }

  /// Members of community `c` with pi >= membership_threshold, weight-
  /// descending (vertex-ascending tie-break).
  std::span<const MemberEntry> members(std::uint32_t c) const {
    return {members_.data() + member_offsets_[c],
            member_offsets_[c + 1] - member_offsets_[c]};
  }

  /// Dense [pi | phi_sum] row of `u` — the exact fallback path and the
  /// input to the pair-likelihood kernel.
  std::span<const float> pi_row(std::uint32_t u) const {
    return checkpoint_.pi.row(u);
  }

  /// Likelihood terms refreshed from the checkpoint's beta and delta —
  /// exactly what the training-side evaluator uses against this state.
  const core::LikelihoodTerms& terms() const { return terms_; }

  /// The source checkpoint (pi/theta/hyper); a refresh round-trips it
  /// through core::checkpoint_to_bytes / checkpoint_from_bytes.
  const core::Checkpoint& checkpoint() const { return checkpoint_; }

 private:
  void build(threading::ThreadPool& pool);

  core::Checkpoint checkpoint_;
  std::uint32_t n_ = 0;
  std::uint32_t k_ = 0;
  std::uint32_t top_r_ = 0;
  double threshold_ = 0.0;
  core::LikelihoodTerms terms_;

  std::vector<TopEntry> top_;  // n_ * top_r_, flat
  // Inverted lists in CSR form: members_[member_offsets_[c] ..
  // member_offsets_[c+1]) are community c's members.
  std::vector<MemberEntry> members_;
  std::vector<std::size_t> member_offsets_;  // k_ + 1
};

/// Convenience: build an index snapshot ready for SnapshotManager.
std::unique_ptr<const ServingIndex> build_serving_index(
    core::Checkpoint checkpoint, const ServingIndexOptions& options,
    threading::ThreadPool& pool);

}  // namespace scd::serve
