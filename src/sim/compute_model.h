// Analytic compute model (backend-neutral type lives in comm/compute_model.h).
#pragma once

#include "comm/compute_model.h"

namespace scd::sim {

using comm::ComputeModel;
using comm::das5_node;
using comm::hpc_cloud_node;
using comm::seed_scalar_node;

}  // namespace scd::sim
