// MPI-style transport for the virtual-time cluster — the simulated
// implementation of the backend-neutral comm::Transport seam.
//
// Rank code runs on real threads; this class provides point-to-point
// messages and the collectives the algorithm needs (barrier, reduce-sum,
// broadcast) with two effects per operation: real data movement between
// rank address spaces, and virtual-clock synchronization per the
// NetworkModel.
//
// Timing semantics:
//  * send: the sender's NIC serializes its outgoing transfers (a scatter
//    of B bytes to C peers costs the root ~B/bandwidth total, like a real
//    eager-protocol deploy). Posting costs the sender one request
//    overhead; the payload arrives at
//        max(sender_clock, nic_free) + bytes/bw + latency.
//  * recv: blocks (really) until the message exists, then advances the
//    receiver's clock to the arrival time.
//  * collectives: every rank must call them in the same order with the
//    same operation type; completion time is
//        max(entry clocks) + tree_depth * per-hop + skew,
//    charged to all participants.
//
// The transport never drops or reorders messages with equal
// (from, to, tag); the algorithm's stage structure guarantees matching.
//
// Steady-state allocation: payload buffers are pooled
// (acquire_buffer/send_bytes/recv_bytes/recycle_buffer move one buffer
// sender -> mailbox -> receiver -> pool), mailboxes are head-indexed
// rings that keep their capacity, and collective slots are recycled with
// their rank-indexed contribution buffers. After warm-up the messaging
// hot path performs no heap allocation — a requirement of the
// zero-allocation distributed iteration test.
#pragma once

#include <algorithm>
#include <condition_variable>
#include <cstring>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <span>
#include <vector>

#include "comm/transport.h"
#include "sim/clock.h"
#include "sim/fault_hooks.h"
#include "sim/network_model.h"
#include "trace/recorder.h"
#include "util/error.h"

namespace scd::sim {

/// Sim-era spelling; the type lives with the seam in comm/transport.h.
using TransportError = comm::TransportError;

class SimTransport final : public comm::Transport {
 public:
  /// `clocks` must outlive the transport and have one entry per rank.
  SimTransport(unsigned num_ranks, const NetworkModel& net,
               std::vector<SimClock>& clocks);

  unsigned num_ranks() const override { return num_ranks_; }
  const NetworkModel& network() const { return net_; }

  /// Point-to-point primitives (typed/zero-copy/phantom conveniences are
  /// inherited from comm::Transport and layer on these).
  void send_raw(unsigned from, unsigned to, int tag,
                std::vector<std::byte> payload,
                std::uint64_t logical_bytes) override;
  std::vector<std::byte> recv_raw(unsigned self, unsigned from,
                                  int tag) override;

  /// Failure-aware receive: like recv_bytes, but when `from` has been
  /// marked dead and no matching message remains it returns std::nullopt
  /// instead of blocking forever — the master's heartbeat-timeout
  /// primitive. Deterministic because ranks die only at virtual-time
  /// points fixed by the fault plan, after finishing all earlier sends.
  std::optional<std::vector<std::byte>> recv_bytes_or_dead(
      unsigned self, unsigned from, int tag) override;

  /// Take an empty buffer from the pool (capacity from earlier traffic).
  std::vector<std::byte> acquire_buffer() override;
  /// Return a consumed payload's storage to the pool.
  void recycle_buffer(std::vector<std::byte>&& buffer) override;
  /// Pre-warm the pool with `count` buffers of `capacity_bytes` each so
  /// even the first iterations allocate nothing on the messaging path.
  void reserve_buffers(std::size_t count, std::size_t capacity_bytes) override;

  /// Pre-warm the collective slot pool: `slots` recycled slots whose
  /// rank-indexed contribution buffers can hold `reduce_len` doubles and
  /// whose broadcast staging holds `bcast_bytes`. Without this, the slot
  /// pool grows lazily to its high-water mark, and thread scheduling can
  /// first reach that mark arbitrarily late in a run.
  void reserve_collectives(std::size_t slots, std::size_t reduce_len,
                           std::size_t bcast_bytes) override;

  /// Pre-warm one point-to-point mailbox ring to `depth` queued messages
  /// (the map node plus the ring's backing storage).
  void reserve_mailbox(unsigned from, unsigned to, int tag,
                       std::size_t depth) override;

  /// Collectives run on a *channel*: a group of `participants` ranks that
  /// all call the same operation in the same order. participants == 0
  /// means every rank of the cluster. Distinct channels may be in flight
  /// concurrently (the algorithm uses a worker-only barrier channel while
  /// the master is busy elsewhere); within a channel, ordering must match
  /// across its members — violations are detected and throw.
  ///
  /// barrier: rendezvous; clocks advance to max entry + barrier cost.
  void barrier(unsigned self, unsigned channel = 0,
               unsigned participants = 0) override;

  /// Element-wise sum across the channel's ranks; on return `inout` holds
  /// the total at the root and is unchanged elsewhere. Contributions are
  /// combined in rank order (deterministic regardless of arrival order).
  void reduce_sum(unsigned self, unsigned root, std::span<double> inout,
                  unsigned channel = 0, unsigned participants = 0) override;

  /// Root's bytes are copied to every participating rank.
  void broadcast(unsigned self, unsigned root, std::span<std::byte> data,
                 unsigned channel = 0, unsigned participants = 0) override;
  using comm::Transport::broadcast;  // the typed span<T> overload

  double clock_now(unsigned rank) const { return clocks_[rank].now(); }
  SimClock& clock(unsigned rank) { return clocks_[rank]; }

  /// Wake every blocked rank with an error — called when any rank's code
  /// throws, so a failure surfaces instead of deadlocking the cluster.
  void abort_all() override;

  /// Install (or clear, with nullptr) the fault-injection hooks. With no
  /// hooks the messaging path is the unmodified happy path behind a
  /// single null check. on_send is invoked under the transport lock, in
  /// the sender's program order.
  void install_fault_hooks(FaultHooks* hooks) { fault_ = hooks; }

  /// Install (or clear, with nullptr) a trace recorder. Sends count
  /// bytes/messages on the sender's lane; receives record the message
  /// edge (post time -> arrival) on the receiver's lane; collectives
  /// record finish, the gating rank, and its entry time on every
  /// participant's lane. The recorder only samples clocks — modeled
  /// times are identical with or without it.
  void install_trace(trace::TraceRecorder* recorder) { trace_ = recorder; }
  trace::TraceRecorder* trace_recorder() const { return trace_; }

  /// Declare `rank` fail-stopped: wakes its waiting receivers. Messages
  /// it sent before dying stay deliverable; once drained, blocking
  /// receives from it throw TransportError and recv_bytes_or_dead
  /// returns std::nullopt.
  void mark_rank_dead(unsigned rank) override;
  bool rank_dead(unsigned rank) const override;

 private:
  struct Message {
    double arrival_s = 0.0;
    double sent_s = 0.0;  // sender's clock at post, for trace edges
    std::uint64_t logical_bytes = 0;
    std::vector<std::byte> payload;
  };

  /// FIFO that reuses its storage: pops advance a head index, and the
  /// backing vector resets (keeping capacity) when it drains or compacts
  /// in place when a push would otherwise grow past consumed slots — the
  /// pipelined sampler keeps a deploy permanently in flight, so the queue
  /// may never be empty at push time. Unlike a deque, the steady
  /// push/pop cycle never reallocates.
  struct MessageQueue {
    std::vector<Message> items;
    std::size_t head = 0;

    bool empty() const { return head == items.size(); }
    void push(Message&& msg) {
      if (empty()) {
        items.clear();
        head = 0;
      } else if (head > 0 && items.size() == items.capacity()) {
        std::move(items.begin() + static_cast<std::ptrdiff_t>(head),
                  items.end(), items.begin());
        items.resize(items.size() - head);
        head = 0;
      }
      items.push_back(std::move(msg));
    }
    Message pop() {
      Message msg = std::move(items[head]);
      ++head;
      if (empty()) {
        items.clear();
        head = 0;
      }
      return msg;
    }
  };

  enum class CollOp { kBarrier, kReduce, kBroadcast };

  static constexpr unsigned kNoGatingRank = ~0u;

  struct CollSlot {
    CollOp op{};
    unsigned root = 0;
    unsigned participants = 0;
    std::uint64_t payload_bytes = 0;
    unsigned arrived = 0;
    unsigned departed = 0;
    double max_entry = 0.0;
    unsigned gating_rank = kNoGatingRank;  // last-in rank (ties: lowest)
    bool complete = false;
    double finish = 0.0;
    /// Reduce contributions indexed by rank (has_input marks presence),
    /// summed in rank order at completion so the result is arrival-order
    /// independent. Buffers keep their capacity across recycled uses.
    std::vector<std::vector<double>> reduce_inputs;
    std::vector<std::uint8_t> has_input;
    std::vector<double> reduce_acc;
    std::vector<std::byte> bcast_data;
  };

  static std::uint64_t mailbox_key(unsigned from, unsigned to, int tag) {
    // Field widths: from gets bits [40, 64), to gets [16, 40), tag gets
    // [0, 16). Overflow would silently alias two mailboxes and corrupt
    // matching, so fail loudly instead.
    SCD_ASSERT(from < (1u << 24) && to < (1u << 24),
               "mailbox rank exceeds 24-bit field");
    SCD_ASSERT(tag >= 0 && tag < (1 << 16), "mailbox tag exceeds 16 bits");
    return (static_cast<std::uint64_t>(from) << 40) |
           (static_cast<std::uint64_t>(to) << 16) |
           static_cast<std::uint64_t>(static_cast<std::uint16_t>(tag));
  }

  /// Shared collective rendezvous. Reduce ranks contribute and (at the
  /// root) collect through `reduce_inout`; broadcast ranks publish (root)
  /// or receive (others) through `bcast_inout`. The slot is recycled to
  /// the free pool by the last rank to depart.
  void run_collective(unsigned self, unsigned channel, unsigned participants,
                      CollOp op, unsigned root, std::span<double> reduce_inout,
                      std::span<std::byte> bcast_inout);

  unsigned num_ranks_;
  NetworkModel net_;
  std::vector<SimClock>& clocks_;

  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::map<std::uint64_t, MessageQueue> mailboxes_;
  std::vector<double> nic_free_s_;  // per-rank outbound NIC availability
  std::vector<std::shared_ptr<CollSlot>> open_collectives_;  // by channel
  std::vector<std::shared_ptr<CollSlot>> free_slots_;
  std::vector<std::vector<std::byte>> buffer_pool_;
  std::vector<std::uint8_t> dead_;  // per-rank fail-stop flags
  FaultHooks* fault_ = nullptr;
  trace::TraceRecorder* trace_ = nullptr;
  bool aborted_ = false;
};

}  // namespace scd::sim
