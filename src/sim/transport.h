// MPI-style transport for the virtual-time cluster.
//
// Rank code runs on real threads; this class provides point-to-point
// messages and the collectives the algorithm needs (barrier, reduce-sum,
// broadcast) with two effects per operation: real data movement between
// rank address spaces, and virtual-clock synchronization per the
// NetworkModel.
//
// Timing semantics:
//  * send: the sender's NIC serializes its outgoing transfers (a scatter
//    of B bytes to C peers costs the root ~B/bandwidth total, like a real
//    eager-protocol deploy). Posting costs the sender one request
//    overhead; the payload arrives at
//        max(sender_clock, nic_free) + bytes/bw + latency.
//  * recv: blocks (really) until the message exists, then advances the
//    receiver's clock to the arrival time.
//  * collectives: every rank must call them in the same order with the
//    same operation type; completion time is
//        max(entry clocks) + tree_depth * per-hop + skew,
//    charged to all participants.
//
// The transport never drops or reorders messages with equal
// (from, to, tag); the algorithm's stage structure guarantees matching.
#pragma once

#include <condition_variable>
#include <cstring>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <span>
#include <vector>

#include "sim/clock.h"
#include "sim/network_model.h"
#include "util/error.h"

namespace scd::sim {

class SimTransport {
 public:
  /// `clocks` must outlive the transport and have one entry per rank.
  SimTransport(unsigned num_ranks, const NetworkModel& net,
               std::vector<SimClock>& clocks);

  unsigned num_ranks() const { return num_ranks_; }
  const NetworkModel& network() const { return net_; }

  /// Typed point-to-point send. T must be trivially copyable.
  template <typename T>
  void send(unsigned from, unsigned to, int tag, std::span<const T> data) {
    static_assert(std::is_trivially_copyable_v<T>);
    std::vector<std::byte> bytes(data.size_bytes());
    if (!data.empty()) {
      std::memcpy(bytes.data(), data.data(), data.size_bytes());
    }
    send_raw(from, to, tag, std::move(bytes), data.size_bytes());
  }

  /// Cost-only send: moves no data, charges time for `logical_bytes`.
  void send_phantom(unsigned from, unsigned to, int tag,
                    std::uint64_t logical_bytes) {
    send_raw(from, to, tag, {}, logical_bytes);
  }

  /// Typed receive; blocks until the matching send arrives.
  template <typename T>
  std::vector<T> recv(unsigned self, unsigned from, int tag) {
    static_assert(std::is_trivially_copyable_v<T>);
    std::vector<std::byte> bytes = recv_raw(self, from, tag);
    SCD_ASSERT(bytes.size() % sizeof(T) == 0, "payload size mismatch");
    std::vector<T> out(bytes.size() / sizeof(T));
    if (!out.empty()) std::memcpy(out.data(), bytes.data(), bytes.size());
    return out;
  }

  /// Receive a phantom (or typed) message, discarding any payload.
  void recv_discard(unsigned self, unsigned from, int tag) {
    recv_raw(self, from, tag);
  }

  /// Collectives run on a *channel*: a group of `participants` ranks that
  /// all call the same operation in the same order. participants == 0
  /// means every rank of the cluster. Distinct channels may be in flight
  /// concurrently (the algorithm uses a worker-only barrier channel while
  /// the master is busy elsewhere); within a channel, ordering must match
  /// across its members — violations are detected and throw.
  ///
  /// barrier: rendezvous; clocks advance to max entry + barrier cost.
  void barrier(unsigned self, unsigned channel = 0,
               unsigned participants = 0);

  /// Element-wise sum across the channel's ranks; on return `inout` holds
  /// the total at the root and is unchanged elsewhere. Contributions are
  /// combined in rank order (deterministic regardless of arrival order).
  void reduce_sum(unsigned self, unsigned root, std::span<double> inout,
                  unsigned channel = 0, unsigned participants = 0);

  /// Root's bytes are copied to every participating rank.
  void broadcast(unsigned self, unsigned root, std::span<std::byte> data,
                 unsigned channel = 0, unsigned participants = 0);

  template <typename T>
  void broadcast(unsigned self, unsigned root, std::span<T> data,
                 unsigned channel = 0, unsigned participants = 0) {
    static_assert(std::is_trivially_copyable_v<T>);
    broadcast(self, root,
              std::span<std::byte>(reinterpret_cast<std::byte*>(data.data()),
                                   data.size_bytes()),
              channel, participants);
  }

  double clock_now(unsigned rank) const { return clocks_[rank].now(); }
  SimClock& clock(unsigned rank) { return clocks_[rank]; }

  /// Wake every blocked rank with an error — called when any rank's code
  /// throws, so a failure surfaces instead of deadlocking the cluster.
  void abort_all();

 private:
  struct Message {
    double arrival_s = 0.0;
    std::vector<std::byte> payload;
  };

  enum class CollOp { kBarrier, kReduce, kBroadcast };

  struct CollSlot {
    CollOp op{};
    unsigned root = 0;
    unsigned participants = 0;
    std::uint64_t payload_bytes = 0;
    unsigned arrived = 0;
    double max_entry = 0.0;
    bool complete = false;
    double finish = 0.0;
    /// Reduce contributions keyed by rank, summed in rank order at
    /// completion so the result is arrival-order independent.
    std::map<unsigned, std::vector<double>> reduce_inputs;
    std::vector<double> reduce_acc;
    std::vector<std::byte> bcast_data;
  };

  static std::uint64_t channel_key(unsigned from, unsigned to, int tag) {
    return (static_cast<std::uint64_t>(from) << 40) |
           (static_cast<std::uint64_t>(to) << 16) |
           static_cast<std::uint64_t>(static_cast<std::uint16_t>(tag));
  }

  void send_raw(unsigned from, unsigned to, int tag,
                std::vector<std::byte> payload, std::uint64_t logical_bytes);
  std::vector<std::byte> recv_raw(unsigned self, unsigned from, int tag);

  /// Shared collective rendezvous; returns the slot after completion.
  std::shared_ptr<CollSlot> run_collective(
      unsigned self, unsigned channel, unsigned participants, CollOp op,
      unsigned root, std::uint64_t payload_bytes,
      const std::function<void(CollSlot&)>& contribute);

  unsigned num_ranks_;
  NetworkModel net_;
  std::vector<SimClock>& clocks_;

  std::mutex mu_;
  std::condition_variable cv_;
  std::map<std::uint64_t, std::deque<Message>> mailboxes_;
  std::vector<double> nic_free_s_;  // per-rank outbound NIC availability
  std::map<unsigned, std::shared_ptr<CollSlot>> open_collectives_;
  bool aborted_ = false;
};

}  // namespace scd::sim
