#include "sim/cluster.h"

#include <algorithm>
#include <exception>
#include <mutex>
#include <thread>

#include "dkv/sim_rdma_dkv.h"
#include "util/error.h"

namespace scd::sim {

RankContext::RankContext(unsigned rank, SimCluster& cluster)
    : rank_(rank), cluster_(cluster) {}

unsigned RankContext::num_ranks() const { return cluster_.num_ranks(); }
SimTransport& RankContext::transport() { return cluster_.transport(); }
SimClock& RankContext::clock() { return cluster_.clock(rank_); }
const NetworkModel& RankContext::network() const {
  return cluster_.network();
}
const ComputeModel& RankContext::compute() const {
  return cluster_.compute_model();
}
PhaseStats& RankContext::stats() { return cluster_.stats(rank_); }

double RankContext::now() const { return cluster_.clock(rank_).now(); }
void RankContext::advance(double seconds) { clock().advance(seconds); }
void RankContext::advance_to(double t) { clock().advance_to(t); }

void RankContext::book(Phase p, double seconds) { stats().add(p, seconds); }

void RankContext::charge(Phase p, double seconds) {
  // Straggler windows from an installed fault plan dilate this rank's
  // compute; the factor is 1 (and the branch never taken) otherwise.
  if (const FaultHooks* hooks = cluster_.fault_hooks()) {
    seconds *= hooks->compute_factor(rank_, clock().now());
  }
  clock().advance(seconds);
  stats().add(p, seconds);
}

void RankContext::timed_barrier(unsigned channel, unsigned participants) {
  const double before = clock().now();
  transport().barrier(rank_, channel, participants);
  stats().add(Phase::kBarrierWait, clock().now() - before);
}

SimCluster::SimCluster(const Config& config) : config_(config) {
  SCD_REQUIRE(config.num_ranks >= 1, "cluster needs at least one rank");
  config_.network.validate();
  config_.compute.validate();
  clocks_.resize(config.num_ranks);
  stats_.resize(config.num_ranks);
  transport_ = std::make_unique<SimTransport>(config.num_ranks,
                                              config_.network, clocks_);
}

void SimCluster::run(const std::function<void(RankContext&)>& fn) {
  if (config_.num_ranks == 1) {
    RankContext ctx(0, *this);
    fn(ctx);
    return;
  }
  std::mutex error_mu;
  std::exception_ptr first_error;
  std::vector<std::thread> threads;
  threads.reserve(config_.num_ranks);
  for (unsigned r = 0; r < config_.num_ranks; ++r) {
    threads.emplace_back([this, r, &fn, &error_mu, &first_error] {
      try {
        RankContext ctx(r, *this);
        fn(ctx);
      } catch (...) {
        {
          std::lock_guard<std::mutex> lock(error_mu);
          if (!first_error) first_error = std::current_exception();
        }
        // Unblock peers stuck in recv/collectives so the run terminates.
        transport_->abort_all();
      }
    });
  }
  for (std::thread& t : threads) t.join();
  if (first_error) std::rethrow_exception(first_error);
}

void SimCluster::run(const std::function<void(comm::Context&)>& fn) {
  run(std::function<void(RankContext&)>(
      [&fn](RankContext& ctx) { fn(ctx); }));
}

std::unique_ptr<dkv::ShardedDkv> SimCluster::make_store(
    const comm::StoreConfig& config) {
  SCD_REQUIRE(config_.num_ranks >= 2,
              "a sharded store needs at least one worker rank");
  return std::make_unique<dkv::SimRdmaDkv>(
      config.num_rows, config.row_width, config_.num_ranks - 1,
      config_.network, config_.compute, config.phantom, config.codec,
      config.sparse_eps, config.sparse_modeled_nnz);
}

double SimCluster::max_clock() const {
  double best = 0.0;
  for (const SimClock& c : clocks_) best = std::max(best, c.now());
  return best;
}

PhaseStats SimCluster::max_stats() const {
  PhaseStats out;
  for (const PhaseStats& s : stats_) out.max_with(s);
  return out;
}

void SimCluster::reset() {
  for (SimClock& c : clocks_) c.reset();
  for (PhaseStats& s : stats_) s.clear();
  // Transport NIC state is timing-only; rebuild for a clean slate.
  transport_ = std::make_unique<SimTransport>(config_.num_ranks,
                                              config_.network, clocks_);
  transport_->install_fault_hooks(fault_);
  transport_->install_trace(trace_);
}

void SimCluster::install_fault_hooks(FaultHooks* hooks) {
  fault_ = hooks;
  transport_->install_fault_hooks(hooks);
}

void SimCluster::install_trace(trace::TraceRecorder* recorder) {
  SCD_REQUIRE(recorder == nullptr ||
                  recorder->num_lanes() >= config_.num_ranks,
              "trace recorder needs a lane per rank");
  trace_ = recorder;
  transport_->install_trace(recorder);
}

}  // namespace scd::sim
