// Virtual-time folding of the double-buffered load/compute pipeline.
//
// update_phi processes its pi working set in chunks. Single-buffered, a
// chunk costs load + compute back to back. Double-buffered, the load of
// chunk c+1 overlaps the compute of chunk c (the paper's Section III-D),
// so the critical path is
//     load(0) + sum_{c=1..C-1} max(load(c), compute(c-1)) + compute(C-1).
// This accumulator folds per-chunk costs into both totals so the sampler
// can charge whichever mode is configured and report the split.
#pragma once

#include "util/error.h"

namespace scd::sim {

class PipelineCost {
 public:
  void add_chunk(double load_s, double compute_s) {
    SCD_ASSERT(load_s >= 0.0 && compute_s >= 0.0, "negative chunk cost");
    serial_total_ += load_s + compute_s;
    load_total_ += load_s;
    compute_total_ += compute_s;
    if (first_chunk_) {
      pipelined_total_ = load_s;  // fill the pipe
      first_chunk_ = false;
    } else {
      pipelined_total_ += std::max(load_s, prev_compute_);
    }
    prev_compute_ = compute_s;
  }

  /// Call after the last chunk: drains the in-flight compute.
  double pipelined_total() const {
    return first_chunk_ ? 0.0 : pipelined_total_ + prev_compute_;
  }

  double serial_total() const { return serial_total_; }
  double load_total() const { return load_total_; }
  double compute_total() const { return compute_total_; }

  double total(bool pipelined) const {
    return pipelined ? pipelined_total() : serial_total();
  }

 private:
  bool first_chunk_ = true;
  double prev_compute_ = 0.0;
  double pipelined_total_ = 0.0;
  double serial_total_ = 0.0;
  double load_total_ = 0.0;
  double compute_total_ = 0.0;
};

}  // namespace scd::sim
