// SPMD runner for the virtual-time cluster — the simulated
// implementation of the backend-neutral comm::Cluster/Context seam.
//
// SimCluster owns the clocks, transport, and per-rank phase statistics,
// and executes a rank function on one real thread per simulated node.
// Computation inside the rank function is real; RankContext::charge_* is
// how the function reports what that computation *would have cost* on the
// modeled node, in modeled-kernel terms.
#pragma once

#include <functional>
#include <vector>

#include "comm/cluster.h"
#include "comm/context.h"
#include "sim/clock.h"
#include "sim/compute_model.h"
#include "sim/fault_hooks.h"
#include "sim/network_model.h"
#include "sim/phase_stats.h"
#include "sim/trace_span.h"
#include "sim/transport.h"

namespace scd::sim {

class SimCluster;

/// Handed to each rank's function; the sole interface rank code needs.
class RankContext final : public comm::Context {
 public:
  RankContext(unsigned rank, SimCluster& cluster);

  unsigned rank() const override { return rank_; }
  unsigned num_ranks() const override;
  bool simulated() const override { return true; }

  SimTransport& transport() override;
  SimClock& clock();
  const NetworkModel& network() const override;
  const ComputeModel& compute() const override;
  PhaseStats& stats() override;

  double now() const override;
  void advance(double seconds) override;
  void advance_to(double t) override;

  /// Book already-elapsed virtual time without advancing the clock (the
  /// clock moved through the transport or an explicit advance).
  void book(Phase p, double seconds) override;

  /// Advance this rank's clock by `seconds` and book it to phase `p`.
  void charge(Phase p, double seconds) override;

  /// Enter a barrier, separately booking productive arrival vs idle wait.
  void timed_barrier(unsigned channel = 0, unsigned participants = 0) override;

  /// The cluster's trace recorder, or nullptr when tracing is off.
  trace::TraceRecorder* trace() const override;

  /// Open an RAII span on this rank's lane; a no-op scope when tracing
  /// is off. Defined after SimCluster below.
  TraceSpan trace_span(trace::Stage s, std::uint64_t iteration = 0) override;
  using comm::Context::trace_span;  // the Phase overload

 private:
  unsigned rank_;
  SimCluster& cluster_;
};

class SimCluster final : public comm::Cluster {
 public:
  struct Config {
    unsigned num_ranks = 1;
    NetworkModel network{};
    ComputeModel compute{};
  };

  explicit SimCluster(const Config& config);

  unsigned num_ranks() const override { return config_.num_ranks; }
  bool simulated() const override { return true; }
  const Config& config() const { return config_; }

  /// Run `fn` as rank 0..num_ranks-1, each on its own thread. Blocks until
  /// all complete; rethrows the first exception after aborting the rest.
  void run(const std::function<void(RankContext&)>& fn);
  void run(const std::function<void(comm::Context&)>& fn) override;

  /// Largest clock across ranks — the wall-clock of the simulated run.
  double max_clock() const override;

  const PhaseStats& stats(unsigned rank) const override {
    return stats_[rank];
  }
  PhaseStats& stats(unsigned rank) { return stats_[rank]; }

  /// Critical-path view: per-phase max over ranks.
  PhaseStats max_stats() const override;

  /// Reset clocks and stats for a fresh measurement on the same cluster.
  void reset();

  SimTransport& transport() override { return *transport_; }
  SimClock& clock(unsigned rank) { return clocks_[rank]; }
  const std::vector<SimClock>& clocks() const { return clocks_; }
  const std::vector<SimClock>* rank_clocks() const override {
    return &clocks_;
  }
  const NetworkModel& network() const override { return config_.network; }
  const ComputeModel& compute_model() const override {
    return config_.compute;
  }

  /// Build a SimRdmaDkv priced by this cluster's models.
  std::unique_ptr<dkv::ShardedDkv> make_store(
      const comm::StoreConfig& config) override;

  /// Install (or clear, with nullptr) fault-injection hooks on the
  /// cluster and its transport. Survives reset(). The hooks must outlive
  /// the installation; pass nullptr before destroying them.
  void install_fault_hooks(FaultHooks* hooks) override;
  FaultHooks* fault_hooks() const { return fault_; }

  /// Install (or clear, with nullptr) a trace recorder on the cluster
  /// and its transport. Survives reset(). The recorder must outlive the
  /// installation and have at least num_ranks() lanes.
  void install_trace(trace::TraceRecorder* recorder) override;
  trace::TraceRecorder* trace_recorder() const { return trace_; }

 private:
  Config config_;
  std::vector<SimClock> clocks_;
  std::vector<PhaseStats> stats_;
  std::unique_ptr<SimTransport> transport_;
  FaultHooks* fault_ = nullptr;
  trace::TraceRecorder* trace_ = nullptr;
};

inline trace::TraceRecorder* RankContext::trace() const {
  return cluster_.trace_recorder();
}

inline TraceSpan RankContext::trace_span(trace::Stage s,
                                         std::uint64_t iteration) {
  return TraceSpan(cluster_.trace_recorder(), rank_, s,
                   cluster_.clock(rank_), iteration);
}

}  // namespace scd::sim
