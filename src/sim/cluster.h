// SPMD runner for the virtual-time cluster.
//
// SimCluster owns the clocks, transport, and per-rank phase statistics,
// and executes a rank function on one real thread per simulated node.
// Computation inside the rank function is real; RankContext::charge_* is
// how the function reports what that computation *would have cost* on the
// modeled node, in modeled-kernel terms.
#pragma once

#include <functional>
#include <vector>

#include "sim/clock.h"
#include "sim/compute_model.h"
#include "sim/fault_hooks.h"
#include "sim/network_model.h"
#include "sim/phase_stats.h"
#include "sim/trace_span.h"
#include "sim/transport.h"

namespace scd::sim {

class SimCluster;

/// Handed to each rank's function; the sole interface rank code needs.
class RankContext {
 public:
  RankContext(unsigned rank, SimCluster& cluster);

  unsigned rank() const { return rank_; }
  unsigned num_ranks() const;
  bool is_master() const { return rank_ == 0; }

  SimTransport& transport();
  SimClock& clock();
  const NetworkModel& network() const;
  const ComputeModel& compute() const;
  PhaseStats& stats();

  /// Advance this rank's clock by `seconds` and book it to phase `p`.
  void charge(Phase p, double seconds);

  /// Charge a threaded kernel of `units` iterations at `cycles_per_unit`.
  void charge_kernel(Phase p, double units, double cycles_per_unit);

  /// Charge a serial (single-thread) section.
  void charge_serial(Phase p, double units, double cycles_per_unit);

  /// Enter a barrier, separately booking productive arrival vs idle wait.
  void timed_barrier(unsigned channel = 0, unsigned participants = 0);

  /// The cluster's trace recorder, or nullptr when tracing is off.
  trace::TraceRecorder* trace() const;

  /// Open an RAII span on this rank's lane; a no-op scope when tracing
  /// is off. Defined after SimCluster below.
  TraceSpan trace_span(Phase p, std::uint64_t iteration = 0);
  TraceSpan trace_span(trace::Stage s, std::uint64_t iteration = 0);

 private:
  unsigned rank_;
  SimCluster& cluster_;
};

class SimCluster {
 public:
  struct Config {
    unsigned num_ranks = 1;
    NetworkModel network{};
    ComputeModel compute{};
  };

  explicit SimCluster(const Config& config);

  unsigned num_ranks() const { return config_.num_ranks; }
  const Config& config() const { return config_; }

  /// Run `fn` as rank 0..num_ranks-1, each on its own thread. Blocks until
  /// all complete; rethrows the first exception after aborting the rest.
  void run(const std::function<void(RankContext&)>& fn);

  /// Largest clock across ranks — the wall-clock of the simulated run.
  double max_clock() const;

  const PhaseStats& stats(unsigned rank) const { return stats_[rank]; }
  PhaseStats& stats(unsigned rank) { return stats_[rank]; }

  /// Critical-path view: per-phase max over ranks.
  PhaseStats max_stats() const;

  /// Reset clocks and stats for a fresh measurement on the same cluster.
  void reset();

  SimTransport& transport() { return *transport_; }
  SimClock& clock(unsigned rank) { return clocks_[rank]; }
  const std::vector<SimClock>& clocks() const { return clocks_; }
  const NetworkModel& network() const { return config_.network; }
  const ComputeModel& compute_model() const { return config_.compute; }

  /// Install (or clear, with nullptr) fault-injection hooks on the
  /// cluster and its transport. Survives reset(). The hooks must outlive
  /// the installation; pass nullptr before destroying them.
  void install_fault_hooks(FaultHooks* hooks);
  FaultHooks* fault_hooks() const { return fault_; }

  /// Install (or clear, with nullptr) a trace recorder on the cluster
  /// and its transport. Survives reset(). The recorder must outlive the
  /// installation and have at least num_ranks() lanes.
  void install_trace(trace::TraceRecorder* recorder);
  trace::TraceRecorder* trace_recorder() const { return trace_; }

 private:
  Config config_;
  std::vector<SimClock> clocks_;
  std::vector<PhaseStats> stats_;
  std::unique_ptr<SimTransport> transport_;
  FaultHooks* fault_ = nullptr;
  trace::TraceRecorder* trace_ = nullptr;
};

inline trace::TraceRecorder* RankContext::trace() const {
  return cluster_.trace_recorder();
}

inline TraceSpan RankContext::trace_span(Phase p, std::uint64_t iteration) {
  return trace_span(to_stage(p), iteration);
}

inline TraceSpan RankContext::trace_span(trace::Stage s,
                                         std::uint64_t iteration) {
  return TraceSpan(cluster_.trace_recorder(), rank_, s,
                   cluster_.clock(rank_), iteration);
}

}  // namespace scd::sim
