// Per-rank virtual clock (backend-neutral type lives in comm/clock.h).
//
// The cluster simulator executes the distributed algorithm's computation
// for real but accounts *time* through these clocks: compute sections
// advance a rank's clock by modeled durations, and communication events
// synchronize clocks (a receive completes no earlier than the send's
// completion). All simulated durations are in seconds.
#pragma once

#include "comm/clock.h"

namespace scd::sim {

using SimClock = comm::VirtualClock;

}  // namespace scd::sim
