// Per-rank virtual clock.
//
// The cluster simulator executes the distributed algorithm's computation
// for real but accounts *time* through these clocks: compute sections
// advance a rank's clock by modeled durations, and communication events
// synchronize clocks (a receive completes no earlier than the send's
// completion). All simulated durations are in seconds.
#pragma once

#include "util/error.h"

namespace scd::sim {

class SimClock {
 public:
  double now() const { return now_s_; }

  void advance(double seconds) {
    SCD_ASSERT(seconds >= 0.0, "time cannot move backwards");
    now_s_ += seconds;
  }

  /// Jump forward to `t` if it is in the future (e.g. message arrival).
  void advance_to(double t) {
    if (t > now_s_) now_s_ = t;
  }

  void reset() { now_s_ = 0.0; }

 private:
  double now_s_ = 0.0;
};

}  // namespace scd::sim
