// Per-rank accounting of time by algorithm stage (backend-neutral types
// live in comm/phase_stats.h; this header keeps the sim-era spellings
// `sim::Phase` / `sim::PhaseStats` valid everywhere).
#pragma once

#include "comm/phase_stats.h"

namespace scd::sim {

using comm::kNumPhases;
using comm::Phase;
using comm::phase_name;
using comm::PhaseStats;

}  // namespace scd::sim
