// Analytic network model (backend-neutral type lives in comm/network_model.h).
#pragma once

#include "comm/network_model.h"

namespace scd::sim {

using comm::NetworkModel;
using comm::qperf_transfer_time;

}  // namespace scd::sim
