#include "sim/transport.h"

#include <algorithm>
#include <functional>

namespace scd::sim {

SimTransport::SimTransport(unsigned num_ranks, const NetworkModel& net,
                           std::vector<SimClock>& clocks)
    : num_ranks_(num_ranks), net_(net), clocks_(clocks) {
  SCD_REQUIRE(num_ranks >= 1, "transport needs at least one rank");
  SCD_REQUIRE(clocks.size() >= num_ranks, "one clock per rank required");
  net_.validate();
  nic_free_s_.assign(num_ranks, 0.0);
}

void SimTransport::send_raw(unsigned from, unsigned to, int tag,
                            std::vector<std::byte> payload,
                            std::uint64_t logical_bytes) {
  SCD_REQUIRE(from < num_ranks_ && to < num_ranks_, "rank out of range");
  const double wire_s =
      static_cast<double>(logical_bytes) / net_.bandwidth_Bps;
  double arrival;
  {
    std::lock_guard<std::mutex> lock(mu_);
    // Posting costs the sender a request overhead; the wire transfer
    // occupies the sender's NIC, serializing back-to-back sends.
    clocks_[from].advance(net_.dkv_request_overhead_s);
    const double start = std::max(clocks_[from].now(), nic_free_s_[from]);
    nic_free_s_[from] = start + wire_s;
    arrival = start + wire_s + net_.latency_s;
    mailboxes_[channel_key(from, to, tag)].push_back(
        Message{arrival, std::move(payload)});
  }
  cv_.notify_all();
}

std::vector<std::byte> SimTransport::recv_raw(unsigned self, unsigned from,
                                              int tag) {
  SCD_REQUIRE(self < num_ranks_ && from < num_ranks_, "rank out of range");
  std::unique_lock<std::mutex> lock(mu_);
  auto& queue = mailboxes_[channel_key(from, self, tag)];
  cv_.wait(lock, [&] { return aborted_ || !queue.empty(); });
  if (aborted_) throw Error("transport aborted while receiving");
  Message msg = std::move(queue.front());
  queue.pop_front();
  clocks_[self].advance_to(msg.arrival_s);
  return std::move(msg.payload);
}

std::shared_ptr<SimTransport::CollSlot> SimTransport::run_collective(
    unsigned self, unsigned channel, unsigned participants, CollOp op,
    unsigned root, std::uint64_t payload_bytes,
    const std::function<void(CollSlot&)>& contribute) {
  SCD_REQUIRE(self < num_ranks_ && root < num_ranks_, "rank out of range");
  if (participants == 0) participants = num_ranks_;
  std::unique_lock<std::mutex> lock(mu_);
  std::shared_ptr<CollSlot>& current = open_collectives_[channel];
  if (!current) {
    auto slot = std::make_shared<CollSlot>();
    slot->op = op;
    slot->root = root;
    slot->participants = participants;
    slot->payload_bytes = payload_bytes;
    current = slot;
  }
  std::shared_ptr<CollSlot> slot = current;
  SCD_REQUIRE(slot->op == op && slot->root == root &&
                  slot->participants == participants &&
                  slot->payload_bytes == payload_bytes,
              "mismatched collective: ranks disagree on op/root/size");
  slot->max_entry = std::max(slot->max_entry, clocks_[self].now());
  contribute(*slot);
  if (++slot->arrived == participants) {
    slot->finish =
        slot->max_entry + net_.collective_time(participants, payload_bytes);
    if (slot->op == CollOp::kReduce) {
      // Deterministic rank-order fold, independent of arrival order.
      for (const auto& [rank, contribution] : slot->reduce_inputs) {
        if (slot->reduce_acc.empty()) {
          slot->reduce_acc.assign(contribution.size(), 0.0);
        }
        for (std::size_t i = 0; i < contribution.size(); ++i) {
          slot->reduce_acc[i] += contribution[i];
        }
      }
    }
    slot->complete = true;
    current.reset();  // next collective on this channel opens fresh
    cv_.notify_all();
  } else {
    cv_.wait(lock, [&] { return aborted_ || slot->complete; });
    if (aborted_ && !slot->complete) {
      throw Error("transport aborted during collective");
    }
  }
  clocks_[self].advance_to(slot->finish);
  return slot;
}

void SimTransport::abort_all() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    aborted_ = true;
  }
  cv_.notify_all();
}

void SimTransport::barrier(unsigned self, unsigned channel,
                           unsigned participants) {
  run_collective(self, channel, participants, CollOp::kBarrier, 0, 0,
                 [](CollSlot&) {});
}

void SimTransport::reduce_sum(unsigned self, unsigned root,
                              std::span<double> inout, unsigned channel,
                              unsigned participants) {
  auto slot = run_collective(
      self, channel, participants, CollOp::kReduce, root,
      inout.size_bytes(), [&](CollSlot& s) {
        SCD_REQUIRE(s.reduce_inputs.find(self) == s.reduce_inputs.end(),
                    "rank joined the same reduce twice");
        s.reduce_inputs.emplace(
            self, std::vector<double>(inout.begin(), inout.end()));
      });
  if (self == slot->root) {
    SCD_REQUIRE(slot->reduce_acc.size() == inout.size(),
                "reduce length mismatch across ranks");
    std::copy(slot->reduce_acc.begin(), slot->reduce_acc.end(),
              inout.begin());
  }
}

void SimTransport::broadcast(unsigned self, unsigned root,
                             std::span<std::byte> data, unsigned channel,
                             unsigned participants) {
  auto slot = run_collective(
      self, channel, participants, CollOp::kBroadcast, root,
      data.size_bytes(), [&](CollSlot& s) {
        if (self == root) {
          s.bcast_data.assign(data.begin(), data.end());
        }
      });
  if (self != root && !data.empty()) {
    SCD_REQUIRE(slot->bcast_data.size() == data.size(),
                "broadcast length mismatch across ranks");
    std::copy(slot->bcast_data.begin(), slot->bcast_data.end(),
              data.begin());
  }
}

}  // namespace scd::sim
