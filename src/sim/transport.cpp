#include "sim/transport.h"

#include <algorithm>

namespace scd::sim {

SimTransport::SimTransport(unsigned num_ranks, const NetworkModel& net,
                           std::vector<SimClock>& clocks)
    : num_ranks_(num_ranks), net_(net), clocks_(clocks) {
  SCD_REQUIRE(num_ranks >= 1, "transport needs at least one rank");
  SCD_REQUIRE(clocks.size() >= num_ranks, "one clock per rank required");
  net_.validate();
  nic_free_s_.assign(num_ranks, 0.0);
  dead_.assign(num_ranks, 0);
}

std::vector<std::byte> SimTransport::acquire_buffer() {
  std::lock_guard<std::mutex> lock(mu_);
  if (buffer_pool_.empty()) return {};
  std::vector<std::byte> buffer = std::move(buffer_pool_.back());
  buffer_pool_.pop_back();
  buffer.clear();
  return buffer;
}

void SimTransport::recycle_buffer(std::vector<std::byte>&& buffer) {
  if (buffer.capacity() == 0) return;  // nothing worth pooling
  std::lock_guard<std::mutex> lock(mu_);
  buffer_pool_.push_back(std::move(buffer));
}

void SimTransport::reserve_buffers(std::size_t count,
                                   std::size_t capacity_bytes) {
  std::lock_guard<std::mutex> lock(mu_);
  buffer_pool_.reserve(buffer_pool_.size() + count);
  for (std::size_t i = 0; i < count; ++i) {
    std::vector<std::byte> buffer;
    buffer.reserve(capacity_bytes);
    buffer_pool_.push_back(std::move(buffer));
  }
}

void SimTransport::reserve_collectives(std::size_t slots,
                                       std::size_t reduce_len,
                                       std::size_t bcast_bytes) {
  std::lock_guard<std::mutex> lock(mu_);
  free_slots_.reserve(free_slots_.size() + slots);
  for (std::size_t i = 0; i < slots; ++i) {
    auto slot = std::make_shared<CollSlot>();
    slot->reduce_inputs.resize(num_ranks_);
    for (std::vector<double>& input : slot->reduce_inputs) {
      input.reserve(reduce_len);
    }
    slot->has_input.assign(num_ranks_, 0);
    slot->reduce_acc.reserve(reduce_len);
    slot->bcast_data.reserve(bcast_bytes);
    free_slots_.push_back(std::move(slot));
  }
}

void SimTransport::reserve_mailbox(unsigned from, unsigned to, int tag,
                                   std::size_t depth) {
  SCD_REQUIRE(from < num_ranks_ && to < num_ranks_, "rank out of range");
  std::lock_guard<std::mutex> lock(mu_);
  mailboxes_[mailbox_key(from, to, tag)].items.reserve(depth);
}

void SimTransport::send_raw(unsigned from, unsigned to, int tag,
                            std::vector<std::byte> payload,
                            std::uint64_t logical_bytes) {
  SCD_REQUIRE(from < num_ranks_ && to < num_ranks_, "rank out of range");
  const double wire_s =
      static_cast<double>(logical_bytes) / net_.bandwidth_Bps;
  {
    std::lock_guard<std::mutex> lock(mu_);
    // Posting costs the sender a request overhead; the wire transfer
    // occupies the sender's NIC, serializing back-to-back sends.
    clocks_[from].advance(net_.dkv_request_overhead_s);
    double extra_delay_s = 0.0;
    if (fault_ != nullptr) {
      const SendFaults faults =
          fault_->on_send(from, to, clocks_[from].now());
      // Each lost transmission occupies the NIC for the full payload,
      // then the sender waits out an exponential-backoff timeout and
      // re-posts. Delivery always happens eventually — the plan caps
      // drop_prob below 1 — so protocols above see delay, not loss.
      for (unsigned a = 0; a < faults.dropped_attempts; ++a) {
        const double start =
            std::max(clocks_[from].now(), nic_free_s_[from]);
        nic_free_s_[from] = start + wire_s;
        clocks_[from].advance_to(start + wire_s);
        clocks_[from].advance(fault_->retry_backoff_s() *
                              static_cast<double>(1u << std::min(a, 10u)));
        clocks_[from].advance(net_.dkv_request_overhead_s);
      }
      // A duplicated transmission pays the wire twice but is delivered
      // once (receiver-side sequence numbers drop the copy).
      for (unsigned d = 0; d < faults.duplicates; ++d) {
        const double start =
            std::max(clocks_[from].now(), nic_free_s_[from]);
        nic_free_s_[from] = start + wire_s;
      }
      extra_delay_s = faults.extra_delay_s;
    }
    const double start = std::max(clocks_[from].now(), nic_free_s_[from]);
    nic_free_s_[from] = start + wire_s;
    const double arrival = start + wire_s + net_.latency_s + extra_delay_s;
    const double sent = clocks_[from].now();
    if (trace_ != nullptr) {
      trace::MetricsRegistry& metrics = trace_->metrics();
      metrics.count(trace::Metric::kMessagesSent, from);
      metrics.count(trace::Metric::kBytesSent, from, logical_bytes);
      metrics.observe(trace_->message_bytes_histogram(), from,
                      static_cast<double>(logical_bytes));
    }
    mailboxes_[mailbox_key(from, to, tag)].push(
        Message{arrival, sent, logical_bytes, std::move(payload)});
  }
  cv_.notify_all();
}

std::vector<std::byte> SimTransport::recv_raw(unsigned self, unsigned from,
                                              int tag) {
  SCD_REQUIRE(self < num_ranks_ && from < num_ranks_, "rank out of range");
  std::unique_lock<std::mutex> lock(mu_);
  auto& queue = mailboxes_[mailbox_key(from, self, tag)];
  cv_.wait(lock,
           [&] { return aborted_ || !queue.empty() || dead_[from] != 0; });
  if (aborted_) throw Error("transport aborted while receiving");
  if (queue.empty()) {
    // Only reachable when `from` fail-stopped with nothing in flight.
    throw TransportError("receive from dead rank " + std::to_string(from));
  }
  Message msg = queue.pop();
  const double wait_from = clocks_[self].now();
  clocks_[self].advance_to(msg.arrival_s);
  if (trace_ != nullptr) {
    trace_->record_recv(self, from, msg.sent_s, msg.arrival_s, wait_from,
                        msg.logical_bytes);
    trace::MetricsRegistry& metrics = trace_->metrics();
    metrics.count(trace::Metric::kMessagesReceived, self);
    metrics.count(trace::Metric::kBytesReceived, self, msg.logical_bytes);
  }
  return std::move(msg.payload);
}

std::optional<std::vector<std::byte>> SimTransport::recv_bytes_or_dead(
    unsigned self, unsigned from, int tag) {
  SCD_REQUIRE(self < num_ranks_ && from < num_ranks_, "rank out of range");
  std::unique_lock<std::mutex> lock(mu_);
  auto& queue = mailboxes_[mailbox_key(from, self, tag)];
  cv_.wait(lock,
           [&] { return aborted_ || !queue.empty() || dead_[from] != 0; });
  if (aborted_) throw Error("transport aborted while receiving");
  if (queue.empty()) return std::nullopt;  // dead, fully drained
  Message msg = queue.pop();
  const double wait_from = clocks_[self].now();
  clocks_[self].advance_to(msg.arrival_s);
  if (trace_ != nullptr) {
    trace_->record_recv(self, from, msg.sent_s, msg.arrival_s, wait_from,
                        msg.logical_bytes);
    trace::MetricsRegistry& metrics = trace_->metrics();
    metrics.count(trace::Metric::kMessagesReceived, self);
    metrics.count(trace::Metric::kBytesReceived, self, msg.logical_bytes);
  }
  return std::move(msg.payload);
}

void SimTransport::mark_rank_dead(unsigned rank) {
  SCD_REQUIRE(rank < num_ranks_, "rank out of range");
  {
    std::lock_guard<std::mutex> lock(mu_);
    dead_[rank] = 1;
  }
  cv_.notify_all();
}

bool SimTransport::rank_dead(unsigned rank) const {
  SCD_REQUIRE(rank < num_ranks_, "rank out of range");
  std::lock_guard<std::mutex> lock(mu_);
  return dead_[rank] != 0;
}

void SimTransport::run_collective(unsigned self, unsigned channel,
                                  unsigned participants, CollOp op,
                                  unsigned root,
                                  std::span<double> reduce_inout,
                                  std::span<std::byte> bcast_inout) {
  SCD_REQUIRE(self < num_ranks_ && root < num_ranks_, "rank out of range");
  if (participants == 0) participants = num_ranks_;
  const std::uint64_t payload_bytes = op == CollOp::kReduce
                                          ? reduce_inout.size_bytes()
                                          : bcast_inout.size_bytes();
  std::unique_lock<std::mutex> lock(mu_);
  if (channel >= open_collectives_.size()) {
    open_collectives_.resize(channel + 1);
  }
  if (!open_collectives_[channel]) {
    std::shared_ptr<CollSlot> fresh;
    if (!free_slots_.empty()) {
      fresh = std::move(free_slots_.back());
      free_slots_.pop_back();
    } else {
      fresh = std::make_shared<CollSlot>();
    }
    fresh->op = op;
    fresh->root = root;
    fresh->participants = participants;
    fresh->payload_bytes = payload_bytes;
    open_collectives_[channel] = std::move(fresh);
  }
  std::shared_ptr<CollSlot> slot = open_collectives_[channel];
  SCD_REQUIRE(slot->op == op && slot->root == root &&
                  slot->participants == participants &&
                  slot->payload_bytes == payload_bytes,
              "mismatched collective: ranks disagree on op/root/size");
  const double entry = clocks_[self].now();
  // Track the last rank in (ties broken toward the lowest rank so the
  // record is independent of thread arrival order) — the trace's
  // collective edge points at it.
  if (entry > slot->max_entry ||
      (entry == slot->max_entry && self < slot->gating_rank)) {
    slot->max_entry = entry;
    slot->gating_rank = self;
  }
  if (op == CollOp::kReduce) {
    if (slot->reduce_inputs.size() < num_ranks_) {
      slot->reduce_inputs.resize(num_ranks_);
      slot->has_input.assign(num_ranks_, 0);
    }
    SCD_REQUIRE(!slot->has_input[self], "rank joined the same reduce twice");
    slot->has_input[self] = 1;
    slot->reduce_inputs[self].assign(reduce_inout.begin(),
                                     reduce_inout.end());
  } else if (op == CollOp::kBroadcast && self == root) {
    slot->bcast_data.assign(bcast_inout.begin(), bcast_inout.end());
  }
  if (++slot->arrived == participants) {
    slot->finish =
        slot->max_entry + net_.collective_time(participants, payload_bytes);
    if (slot->op == CollOp::kReduce) {
      // Deterministic rank-order fold, independent of arrival order.
      slot->reduce_acc.assign(reduce_inout.size(), 0.0);
      for (unsigned rank = 0; rank < num_ranks_; ++rank) {
        if (!slot->has_input[rank]) continue;
        const std::vector<double>& contribution = slot->reduce_inputs[rank];
        SCD_REQUIRE(contribution.size() == reduce_inout.size(),
                    "reduce length mismatch across ranks");
        for (std::size_t i = 0; i < contribution.size(); ++i) {
          slot->reduce_acc[i] += contribution[i];
        }
      }
    }
    slot->complete = true;
    open_collectives_[channel].reset();  // next one opens fresh
    cv_.notify_all();
  } else {
    cv_.wait(lock, [&] { return aborted_ || slot->complete; });
    if (aborted_ && !slot->complete) {
      throw Error("transport aborted during collective");
    }
  }
  clocks_[self].advance_to(slot->finish);
  // Collect results before departing — the last rank out recycles the
  // slot, after which its buffers may be reused by another collective.
  if (op == CollOp::kReduce && self == root) {
    SCD_REQUIRE(slot->reduce_acc.size() == reduce_inout.size(),
                "reduce length mismatch across ranks");
    std::copy(slot->reduce_acc.begin(), slot->reduce_acc.end(),
              reduce_inout.begin());
  }
  if (op == CollOp::kBroadcast && self != root && !bcast_inout.empty()) {
    SCD_REQUIRE(slot->bcast_data.size() == bcast_inout.size(),
                "broadcast length mismatch across ranks");
    std::copy(slot->bcast_data.begin(), slot->bcast_data.end(),
              bcast_inout.begin());
  }
  if (trace_ != nullptr) {
    trace_->record_collective(self, slot->finish, entry, slot->max_entry,
                              slot->gating_rank, payload_bytes);
    trace_->metrics().count(trace::Metric::kCollectives, self);
  }
  if (++slot->departed == slot->participants) {
    slot->arrived = 0;
    slot->departed = 0;
    slot->max_entry = 0.0;
    slot->gating_rank = kNoGatingRank;
    slot->complete = false;
    slot->finish = 0.0;
    slot->bcast_data.clear();
    std::fill(slot->has_input.begin(), slot->has_input.end(),
              static_cast<std::uint8_t>(0));
    free_slots_.push_back(std::move(slot));
  }
}

void SimTransport::abort_all() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    aborted_ = true;
  }
  cv_.notify_all();
}

void SimTransport::barrier(unsigned self, unsigned channel,
                           unsigned participants) {
  run_collective(self, channel, participants, CollOp::kBarrier, 0, {}, {});
}

void SimTransport::reduce_sum(unsigned self, unsigned root,
                              std::span<double> inout, unsigned channel,
                              unsigned participants) {
  run_collective(self, channel, participants, CollOp::kReduce, root, inout,
                 {});
}

void SimTransport::broadcast(unsigned self, unsigned root,
                             std::span<std::byte> data, unsigned channel,
                             unsigned participants) {
  run_collective(self, channel, participants, CollOp::kBroadcast, root, {},
                 data);
}

}  // namespace scd::sim
