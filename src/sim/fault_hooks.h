// Fault-injection seam (backend-neutral types live in comm/fault_hooks.h).
//
// Kept as aliases so the sim-era spelling `sim::FaultHooks` stays valid
// everywhere the simulator, the DKV cost hooks, and the fault injector
// already use it.
#pragma once

#include "comm/fault_hooks.h"

namespace scd::sim {

using comm::FaultHooks;
using comm::SendFaults;

}  // namespace scd::sim
