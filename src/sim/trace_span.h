// Phase/Stage bridge and the RAII trace span (backend-neutral types live
// in comm/trace_span.h).
#pragma once

#include "comm/trace_span.h"

namespace scd::sim {

using comm::to_stage;
using comm::TraceSpan;

}  // namespace scd::sim
