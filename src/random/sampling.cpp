#include "random/sampling.h"

#include <algorithm>
#include <utility>

#include "util/error.h"

namespace scd::rng {

void sample_without_replacement_into(Xoshiro256& rng, std::uint64_t n,
                                     std::size_t k,
                                     std::vector<std::uint64_t>& out) {
  SCD_REQUIRE(k <= n, "cannot sample " + std::to_string(k) +
                          " distinct values from " + std::to_string(n));
  out.clear();
  out.reserve(k);
  // Floyd: for j = n-k .. n-1, draw t in [0, j]; take t unless already
  // chosen, in which case take j. The set of chosen values is exactly the
  // contents of `out`, so membership is a linear scan of out — O(k) per
  // collision, and collisions are rare for minibatch-sized k. `j` itself
  // is always new: every previously chosen value is <= some earlier j' <
  // j. This draws the same rng stream and emits the same sequence as a
  // hash-set implementation would.
  for (std::uint64_t j = n - k; j < n; ++j) {
    const std::uint64_t t = rng.next_below(j + 1);
    const bool taken = std::find(out.begin(), out.end(), t) != out.end();
    out.push_back(taken ? j : t);
  }
}

std::vector<std::uint64_t> sample_without_replacement(Xoshiro256& rng,
                                                      std::uint64_t n,
                                                      std::size_t k) {
  std::vector<std::uint64_t> out;
  sample_without_replacement_into(rng, n, k, out);
  return out;
}

void sample_without_replacement_excluding_into(
    Xoshiro256& rng, std::uint64_t n, std::size_t k, std::uint64_t skip,
    std::vector<std::uint64_t>& out) {
  SCD_REQUIRE(skip < n, "excluded value out of range");
  // Sample from [0, n-1) and remap values >= skip upward by one.
  sample_without_replacement_into(rng, n - 1, k, out);
  for (std::uint64_t& v : out) {
    if (v >= skip) ++v;
  }
}

std::vector<std::uint64_t> sample_without_replacement_excluding(
    Xoshiro256& rng, std::uint64_t n, std::size_t k, std::uint64_t skip) {
  std::vector<std::uint64_t> out;
  sample_without_replacement_excluding_into(rng, n, k, skip, out);
  return out;
}

std::pair<std::uint64_t, std::uint64_t> sample_distinct_pair(Xoshiro256& rng,
                                                             std::uint64_t n) {
  SCD_REQUIRE(n >= 2, "need at least two vertices for a pair");
  const std::uint64_t a = rng.next_below(n);
  std::uint64_t b = rng.next_below(n - 1);
  if (b >= a) ++b;
  return a < b ? std::make_pair(a, b) : std::make_pair(b, a);
}

}  // namespace scd::rng
