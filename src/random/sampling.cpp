#include "random/sampling.h"

#include <unordered_set>
#include <utility>

#include "util/error.h"

namespace scd::rng {

std::vector<std::uint64_t> sample_without_replacement(Xoshiro256& rng,
                                                      std::uint64_t n,
                                                      std::size_t k) {
  SCD_REQUIRE(k <= n, "cannot sample " + std::to_string(k) +
                          " distinct values from " + std::to_string(n));
  std::vector<std::uint64_t> out;
  out.reserve(k);
  std::unordered_set<std::uint64_t> seen;
  seen.reserve(k * 2);
  // Floyd: for j = n-k .. n-1, draw t in [0, j]; insert t unless already
  // present, in which case insert j.
  for (std::uint64_t j = n - k; j < n; ++j) {
    const std::uint64_t t = rng.next_below(j + 1);
    if (seen.insert(t).second) {
      out.push_back(t);
    } else {
      seen.insert(j);
      out.push_back(j);
    }
  }
  return out;
}

std::vector<std::uint64_t> sample_without_replacement_excluding(
    Xoshiro256& rng, std::uint64_t n, std::size_t k, std::uint64_t skip) {
  SCD_REQUIRE(skip < n, "excluded value out of range");
  // Sample from [0, n-1) and remap values >= skip upward by one.
  std::vector<std::uint64_t> out = sample_without_replacement(rng, n - 1, k);
  for (std::uint64_t& v : out) {
    if (v >= skip) ++v;
  }
  return out;
}

std::pair<std::uint64_t, std::uint64_t> sample_distinct_pair(Xoshiro256& rng,
                                                             std::uint64_t n) {
  SCD_REQUIRE(n >= 2, "need at least two vertices for a pair");
  const std::uint64_t a = rng.next_below(n);
  std::uint64_t b = rng.next_below(n - 1);
  if (b >= a) ++b;
  return a < b ? std::make_pair(a, b) : std::make_pair(b, a);
}

}  // namespace scd::rng
