// Combinatorial sampling utilities for minibatch construction:
// without-replacement subsets (Floyd's algorithm), shuffles, and uniform
// draws of vertex pairs.
#pragma once

#include <cstdint>
#include <vector>

#include "random/xoshiro.h"

namespace scd::rng {

/// Sample `k` distinct integers uniformly from [0, n) using Robert Floyd's
/// algorithm: O(k) expected time, no O(n) scratch. Result is NOT sorted and
/// its order is not uniform over permutations (callers that need a uniform
/// order should shuffle).
std::vector<std::uint64_t> sample_without_replacement(Xoshiro256& rng,
                                                      std::uint64_t n,
                                                      std::size_t k);

/// Like sample_without_replacement but excluding a single value `skip`
/// (used when drawing neighbor candidates for a vertex: b != a).
std::vector<std::uint64_t> sample_without_replacement_excluding(
    Xoshiro256& rng, std::uint64_t n, std::size_t k, std::uint64_t skip);

/// Allocation-free form: clears `out` and appends the k draws, reusing
/// its capacity. Produces byte-identical output to
/// sample_without_replacement for the same rng state — duplicate
/// detection scans `out` itself (k is minibatch-sized, and the scan is
/// only reached on the rare collision), replacing the per-call hash set.
void sample_without_replacement_into(Xoshiro256& rng, std::uint64_t n,
                                     std::size_t k,
                                     std::vector<std::uint64_t>& out);

/// Allocation-free form of sample_without_replacement_excluding; same
/// output guarantee.
void sample_without_replacement_excluding_into(
    Xoshiro256& rng, std::uint64_t n, std::size_t k, std::uint64_t skip,
    std::vector<std::uint64_t>& out);

/// Fisher–Yates shuffle.
template <typename T>
void shuffle(Xoshiro256& rng, std::vector<T>& items) {
  for (std::size_t i = items.size(); i > 1; --i) {
    const std::size_t j =
        static_cast<std::size_t>(rng.next_below(static_cast<std::uint64_t>(i)));
    using std::swap;
    swap(items[i - 1], items[j]);
  }
}

/// Uniform unordered pair (a, b), a != b, from [0, n). Returned with
/// a < b so pair identity is canonical.
std::pair<std::uint64_t, std::uint64_t> sample_distinct_pair(Xoshiro256& rng,
                                                             std::uint64_t n);

}  // namespace scd::rng
