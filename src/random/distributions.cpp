#include "random/distributions.h"

#include <cmath>
#include <limits>

#include "util/error.h"

namespace scd::rng {

double sample_standard_normal(Xoshiro256& rng) {
  // Marsaglia polar: rejection from the unit disc. ~1.27 uniforms/normal;
  // we discard the second variate to keep the sampler stateless, which
  // matters for reproducibility across refactorings.
  for (;;) {
    const double u = 2.0 * rng.next_double() - 1.0;
    const double v = 2.0 * rng.next_double() - 1.0;
    const double s = u * u + v * v;
    if (s > 0.0 && s < 1.0) {
      return u * std::sqrt(-2.0 * std::log(s) / s);
    }
  }
}

double sample_gamma(Xoshiro256& rng, double shape) {
  SCD_REQUIRE(shape > 0.0, "gamma shape must be positive");
  if (shape < 1.0) {
    // Boost: X ~ Gamma(shape+1), then X * U^(1/shape) ~ Gamma(shape).
    // For tiny shapes U^(1/shape) underflows; floor at the smallest
    // normal double so callers can rely on strict positivity.
    const double x = sample_gamma(rng, shape + 1.0);
    double u = rng.next_double();
    while (u == 0.0) u = rng.next_double();
    return std::max(x * std::pow(u, 1.0 / shape),
                    std::numeric_limits<double>::min());
  }
  // Marsaglia & Tsang (2000).
  const double d = shape - 1.0 / 3.0;
  const double c = 1.0 / std::sqrt(9.0 * d);
  for (;;) {
    double x;
    double v;
    do {
      x = sample_standard_normal(rng);
      v = 1.0 + c * x;
    } while (v <= 0.0);
    v = v * v * v;
    const double u = rng.next_double();
    const double x2 = x * x;
    if (u < 1.0 - 0.0331 * x2 * x2) return d * v;
    if (u > 0.0 &&
        std::log(u) < 0.5 * x2 + d * (1.0 - v + std::log(v))) {
      return d * v;
    }
  }
}

double sample_beta(Xoshiro256& rng, double a, double b) {
  SCD_REQUIRE(a > 0.0 && b > 0.0, "beta parameters must be positive");
  const double x = sample_gamma(rng, a);
  const double y = sample_gamma(rng, b);
  const double s = x + y;
  return s > 0.0 ? x / s : 0.5;
}

double sample_exponential(Xoshiro256& rng, double rate) {
  SCD_REQUIRE(rate > 0.0, "exponential rate must be positive");
  double u = rng.next_double();
  while (u == 0.0) u = rng.next_double();
  return -std::log(u) / rate;
}

void sample_dirichlet(Xoshiro256& rng, double alpha, std::span<double> out) {
  SCD_REQUIRE(!out.empty(), "dirichlet needs dimension >= 1");
  double sum = 0.0;
  for (double& x : out) {
    x = sample_gamma(rng, alpha);
    sum += x;
  }
  if (sum <= 0.0) {
    // All-zero draw is possible for tiny alpha in float terms; fall back
    // to uniform rather than produce NaNs downstream.
    const double uniform = 1.0 / static_cast<double>(out.size());
    for (double& x : out) x = uniform;
    return;
  }
  for (double& x : out) x /= sum;
}

void sample_dirichlet(Xoshiro256& rng, std::span<const double> alpha,
                      std::span<double> out) {
  SCD_REQUIRE(alpha.size() == out.size(), "dirichlet dimension mismatch");
  double sum = 0.0;
  for (std::size_t i = 0; i < out.size(); ++i) {
    out[i] = sample_gamma(rng, alpha[i]);
    sum += out[i];
  }
  if (sum <= 0.0) {
    const double uniform = 1.0 / static_cast<double>(out.size());
    for (double& x : out) x = uniform;
    return;
  }
  for (double& x : out) x /= sum;
}

std::size_t sample_categorical(Xoshiro256& rng,
                               std::span<const double> probs) {
  SCD_REQUIRE(!probs.empty(), "categorical needs at least one category");
  const double u = rng.next_double();
  double acc = 0.0;
  for (std::size_t i = 0; i < probs.size(); ++i) {
    acc += probs[i];
    if (u < acc) return i;
  }
  return probs.size() - 1;  // numeric slack: acc may end below 1.0
}

}  // namespace scd::rng
