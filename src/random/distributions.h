// Continuous distributions needed by SGRLD for a-MMSB:
//   Normal   — the Langevin noise xi_t ~ N(0, eps_t)
//   Gamma    — expanded-mean initialisation phi ~ Gamma(alpha, 1),
//              theta ~ Gamma(eta, 1)
//   Beta     — community-strength prior beta_k ~ Beta(eta) in the
//              generative model
//   Dirichlet — node memberships pi_a ~ Dirichlet(alpha) when *generating*
//              synthetic graphs
//
// All samplers take the engine by reference so callers control streams.
#pragma once

#include <span>

#include "random/xoshiro.h"

namespace scd::rng {

/// Standard normal via Marsaglia polar method (exact, no tables).
double sample_standard_normal(Xoshiro256& rng);

/// N(mean, stddev^2).
inline double sample_normal(Xoshiro256& rng, double mean, double stddev) {
  return mean + stddev * sample_standard_normal(rng);
}

/// Gamma(shape, scale=1) via Marsaglia–Tsang squeeze; shape < 1 handled
/// with the boost trick. shape must be > 0.
double sample_gamma(Xoshiro256& rng, double shape);

/// Gamma(shape, scale).
inline double sample_gamma(Xoshiro256& rng, double shape, double scale) {
  return scale * sample_gamma(rng, shape);
}

/// Beta(a, b) via two gammas.
double sample_beta(Xoshiro256& rng, double a, double b);

/// Exponential(rate).
double sample_exponential(Xoshiro256& rng, double rate);

/// Symmetric Dirichlet(alpha) of dimension out.size(), written into `out`.
void sample_dirichlet(Xoshiro256& rng, double alpha, std::span<double> out);

/// General Dirichlet(alpha[i]).
void sample_dirichlet(Xoshiro256& rng, std::span<const double> alpha,
                      std::span<double> out);

/// Draw an index in [0, probs.size()) from the given (normalised)
/// categorical distribution. Linear scan; fine for the K ranges used here.
std::size_t sample_categorical(Xoshiro256& rng,
                               std::span<const double> probs);

}  // namespace scd::rng
