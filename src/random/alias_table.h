#pragma once
// Vose's alias method: O(1) sampling from a fixed discrete distribution
// after an O(n) deterministic build. The minibatch sampler uses it as an
// alternative anchor-draw path (graph::MinibatchSampler::Options::
// alias_anchor); the autotuner searches over that choice because the two
// paths have different constant-time cost profiles even when the sampled
// distribution is identical.
//
// Construction is fully deterministic: the small/large worklists are
// plain vectors filled in index order, so the same weights always yield
// the same (prob, alias) tables on every platform.

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "random/xoshiro.h"
#include "util/error.h"

namespace scd::rng {

class AliasTable {
 public:
  /// Builds the table from non-negative weights (not necessarily
  /// normalised). Throws scd::UsageError on an empty span or a
  /// zero/negative total weight.
  explicit AliasTable(std::span<const double> weights) {
    SCD_REQUIRE(!weights.empty(), "AliasTable: empty weight vector");
    double sum = 0.0;
    for (const double w : weights) {
      SCD_REQUIRE(w >= 0.0, "AliasTable: negative weight");
      sum += w;
    }
    SCD_REQUIRE(sum > 0.0, "AliasTable: zero total weight");

    const std::size_t n = weights.size();
    prob_.resize(n);
    alias_.resize(n);
    // Scale so the average bucket holds exactly 1.0 of probability mass.
    // With equal weights every scaled entry is exactly w*n/(w*n) == 1.0
    // in IEEE arithmetic, so prob_[i] == 1.0 and alias_[i] == i: the
    // sample() coin always stays on the rolled index and the draw is
    // exactly uniform (the equivalence test relies on this).
    std::vector<double> scaled(n);
    for (std::size_t i = 0; i < n; ++i) {
      scaled[i] = weights[i] * static_cast<double>(n) / sum;
    }
    std::vector<std::uint32_t> small;
    std::vector<std::uint32_t> large;
    small.reserve(n);
    large.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
      (scaled[i] < 1.0 ? small : large).push_back(
          static_cast<std::uint32_t>(i));
    }
    while (!small.empty() && !large.empty()) {
      const std::uint32_t s = small.back();
      const std::uint32_t l = large.back();
      small.pop_back();
      large.pop_back();
      prob_[s] = scaled[s];
      alias_[s] = l;
      scaled[l] = (scaled[l] + scaled[s]) - 1.0;
      (scaled[l] < 1.0 ? small : large).push_back(l);
    }
    // Leftovers are within rounding of 1.0; pin them so the coin never
    // dereferences an unset alias.
    for (const std::uint32_t i : large) {
      prob_[i] = 1.0;
      alias_[i] = i;
    }
    for (const std::uint32_t i : small) {
      prob_[i] = 1.0;
      alias_[i] = i;
    }
  }

  /// Equal-weight table over [0, n): sample() is exactly uniform.
  static AliasTable uniform(std::size_t n) {
    std::vector<double> w(n, 1.0);
    return AliasTable(std::span<const double>(w));
  }

  /// Draws one index. Consumes exactly one next_below() and one
  /// next_double() from the stream regardless of the outcome, so callers
  /// interleaving other draws stay reproducible.
  std::uint64_t sample(Xoshiro256& rng) const {
    const std::uint64_t i = rng.next_below(prob_.size());
    return rng.next_double() < prob_[i] ? i : alias_[i];
  }

  std::size_t size() const { return prob_.size(); }
  double prob(std::size_t i) const { return prob_[i]; }
  std::uint32_t alias(std::size_t i) const { return alias_[i]; }

 private:
  std::vector<double> prob_;
  std::vector<std::uint32_t> alias_;
};

}  // namespace scd::rng
