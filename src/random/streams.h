// Deterministic stream splitting for parallel and distributed sampling.
//
// The reproducibility contract: a run is fully determined by (seed,
// num_ranks, threads_per_rank, iteration schedule). Rank r derives its
// engine with r long-jumps from the root; thread t within a rank applies t
// jumps on top. Streams are disjoint for any realistic draw count
// (each jump advances 2^128 steps).
#pragma once

#include <cstdint>

#include "random/xoshiro.h"

namespace scd::rng {

/// Factory for the per-rank / per-thread engines of one experiment.
class StreamFactory {
 public:
  explicit StreamFactory(std::uint64_t seed) : root_(seed) {}

  /// Engine for a whole rank (or the single-process master).
  Xoshiro256 rank_stream(std::uint64_t rank) const {
    Xoshiro256 e = root_;
    for (std::uint64_t i = 0; i <= rank; ++i) e.long_jump();
    return e;
  }

  /// Engine for thread `thread` inside rank `rank`.
  Xoshiro256 thread_stream(std::uint64_t rank, std::uint64_t thread) const {
    Xoshiro256 e = rank_stream(rank);
    for (std::uint64_t i = 0; i <= thread; ++i) e.jump();
    return e;
  }

  /// A labelled auxiliary stream (e.g. "graph-generation", "held-out
  /// split") decorrelated from all rank streams by hashing the label into
  /// the seed path.
  Xoshiro256 named_stream(std::uint64_t label) const {
    std::uint64_t s = label;
    Xoshiro256 e = root_;
    e.long_jump();
    // Mix the label into fresh state so different labels diverge
    // immediately rather than after a jump boundary.
    const std::uint64_t mixed = splitmix64(s) ^ e();
    return Xoshiro256(mixed);
  }

 private:
  Xoshiro256 root_;
};

}  // namespace scd::rng
