// xoshiro256++ pseudo-random engine (Blackman & Vigna, 2019) with
// SplitMix64 seeding and the standard jump()/long_jump() functions for
// carving independent parallel streams.
//
// We implement our own engine rather than use std::mt19937_64 because the
// samplers need (a) cheap, reproducible stream splitting across simulated
// ranks and worker threads, and (b) a small state that lives comfortably in
// per-thread storage. Satisfies std::uniform_random_bit_generator.
#pragma once

#include <array>
#include <cstdint>

namespace scd::rng {

/// SplitMix64: used to expand a 64-bit seed into engine state.
/// Also a decent standalone mixer for hashing.
constexpr std::uint64_t splitmix64(std::uint64_t& state) {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

class Xoshiro256 {
 public:
  using result_type = std::uint64_t;

  /// Seeds all 256 bits of state from a 64-bit seed via SplitMix64.
  explicit constexpr Xoshiro256(std::uint64_t seed = 0x853c49e6748fea9bULL) {
    std::uint64_t sm = seed;
    for (auto& word : s_) word = splitmix64(sm);
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~std::uint64_t{0}; }

  constexpr result_type operator()() {
    const std::uint64_t result = rotl(s_[0] + s_[3], 23) + s_[0];
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
  }

  /// Advance 2^128 steps: yields a disjoint stream for another consumer.
  constexpr void jump() { apply_jump(kJump); }

  /// Advance 2^192 steps: partitions the period between coarse domains
  /// (e.g. ranks use long_jump, threads within a rank use jump).
  constexpr void long_jump() { apply_jump(kLongJump); }

  /// A new engine jumped `n` times past this one; does not disturb *this.
  constexpr Xoshiro256 split(std::uint64_t n) const {
    Xoshiro256 child = *this;
    for (std::uint64_t i = 0; i <= n; ++i) child.jump();
    return child;
  }

  /// Uniform double in [0, 1) with 53 bits of randomness.
  constexpr double next_double() {
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
  }

  /// Uniform float in [0, 1).
  constexpr float next_float() {
    return static_cast<float>((*this)() >> 40) * 0x1.0p-24f;
  }

  /// Uniform integer in [0, bound) without modulo bias (Lemire's method).
  constexpr std::uint64_t next_below(std::uint64_t bound) {
    // Multiply-shift with rejection on the low word.
    std::uint64_t x = (*this)();
    __uint128_t m = static_cast<__uint128_t>(x) * bound;
    auto lo = static_cast<std::uint64_t>(m);
    if (lo < bound) {
      const std::uint64_t threshold = (0 - bound) % bound;
      while (lo < threshold) {
        x = (*this)();
        m = static_cast<__uint128_t>(x) * bound;
        lo = static_cast<std::uint64_t>(m);
      }
    }
    return static_cast<std::uint64_t>(m >> 64);
  }

  constexpr bool operator==(const Xoshiro256& other) const {
    return s_ == other.s_;
  }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  static constexpr std::array<std::uint64_t, 4> kJump = {
      0x180ec6d33cfd0abaULL, 0xd5a61266f0c9392cULL, 0xa9582618e03fc9aaULL,
      0x39abdc4529b1661cULL};
  static constexpr std::array<std::uint64_t, 4> kLongJump = {
      0x76e15d3efefdcbbfULL, 0xc5004e441c522fb3ULL, 0x77710069854ee241ULL,
      0x39109bb02acbe635ULL};

  constexpr void apply_jump(const std::array<std::uint64_t, 4>& table) {
    std::array<std::uint64_t, 4> acc = {0, 0, 0, 0};
    for (std::uint64_t word : table) {
      for (int b = 0; b < 64; ++b) {
        if (word & (std::uint64_t{1} << b)) {
          for (int i = 0; i < 4; ++i) acc[static_cast<std::size_t>(i)] ^= s_[static_cast<std::size_t>(i)];
        }
        (*this)();
      }
    }
    s_ = acc;
  }

  std::array<std::uint64_t, 4> s_{};
};

}  // namespace scd::rng
