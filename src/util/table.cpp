#include "util/table.h"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <sstream>

#include "util/error.h"

namespace scd {

Table::Table(std::vector<std::string> headers)
    : headers_(std::move(headers)) {
  SCD_REQUIRE(!headers_.empty(), "table needs at least one column");
}

void Table::set_precision(int digits) {
  SCD_REQUIRE(digits >= 0 && digits <= 17, "precision out of range");
  precision_ = digits;
}

void Table::add_row(std::vector<Cell> row) {
  SCD_REQUIRE(row.size() == headers_.size(),
              "row has " + std::to_string(row.size()) + " cells, table has " +
                  std::to_string(headers_.size()) + " columns");
  rows_.push_back(std::move(row));
}

std::string Table::render_cell(const Cell& cell) const {
  if (const auto* s = std::get_if<std::string>(&cell)) return *s;
  if (const auto* i = std::get_if<std::int64_t>(&cell))
    return std::to_string(*i);
  const double d = std::get<double>(cell);
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*g", precision_, d);
  return buf;
}

std::string Table::to_ascii() const {
  std::vector<std::vector<std::string>> rendered;
  rendered.reserve(rows_.size());
  std::vector<std::size_t> width(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c)
    width[c] = headers_[c].size();
  for (const auto& row : rows_) {
    std::vector<std::string> r;
    r.reserve(row.size());
    for (std::size_t c = 0; c < row.size(); ++c) {
      r.push_back(render_cell(row[c]));
      width[c] = std::max(width[c], r.back().size());
    }
    rendered.push_back(std::move(r));
  }
  std::ostringstream os;
  auto emit = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      os << (c == 0 ? "| " : " | ");
      os << cells[c];
      os << std::string(width[c] - cells[c].size(), ' ');
    }
    os << " |\n";
  };
  emit(headers_);
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    os << (c == 0 ? "|-" : "-|-") << std::string(width[c], '-');
  }
  os << "-|\n";
  for (const auto& row : rendered) emit(row);
  return os.str();
}

std::string Table::to_csv() const {
  std::ostringstream os;
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    if (c) os << ',';
    os << headers_[c];
  }
  os << '\n';
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c) os << ',';
      os << render_cell(row[c]);
    }
    os << '\n';
  }
  return os.str();
}

std::string Table::to_json() const {
  auto json_cell = [](const Cell& cell) -> std::string {
    if (const auto* s = std::get_if<std::string>(&cell))
      return "\"" + *s + "\"";
    if (const auto* i = std::get_if<std::int64_t>(&cell))
      return std::to_string(*i);
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.17g", std::get<double>(cell));
    return buf;
  };
  std::ostringstream os;
  os << "[";
  for (std::size_t r = 0; r < rows_.size(); ++r) {
    os << (r == 0 ? "\n" : ",\n");
    os << "    {";
    for (std::size_t c = 0; c < headers_.size(); ++c) {
      if (c) os << ", ";
      os << "\"" << headers_[c] << "\": " << json_cell(rows_[r][c]);
    }
    os << "}";
  }
  os << "\n  ]";
  return os.str();
}

void Table::write_csv(const std::string& path) const {
  std::ofstream out(path);
  if (!out) throw Error("cannot open '" + path + "' for writing");
  out << to_csv();
  if (!out) throw Error("short write to '" + path + "'");
}

}  // namespace scd
