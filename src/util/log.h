// Minimal leveled logger.
//
// Logging in the hot path is forbidden by convention; the samplers log only
// at iteration-report granularity. The logger is a process-wide singleton
// guarded by a mutex, which is fine at that rate.
//
// The initial threshold comes from the SCD_LOG_LEVEL environment variable
// (debug | info | warn | error | off, case-insensitive), defaulting to
// info; set_level overrides it at any time.
#pragma once

#include <mutex>
#include <optional>
#include <sstream>
#include <string>
#include <string_view>

namespace scd {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

/// Parse a level name ("debug", "WARN", ...); nullopt if unrecognized.
std::optional<LogLevel> parse_log_level(std::string_view name);

/// Process-wide logger. Thread safe.
class Logger {
 public:
  static Logger& instance();

  void set_level(LogLevel level) { level_ = level; }
  LogLevel level() const { return level_; }

  /// Emit one line at `level`; no-op when below the configured threshold.
  void write(LogLevel level, const std::string& message);

 private:
  Logger();  // reads SCD_LOG_LEVEL
  LogLevel level_ = LogLevel::kInfo;
  std::mutex mu_;
};

namespace detail {
/// Stream-style collector that emits on destruction.
class LogLine {
 public:
  explicit LogLine(LogLevel level) : level_(level) {}
  ~LogLine() { Logger::instance().write(level_, os_.str()); }
  LogLine(const LogLine&) = delete;
  LogLine& operator=(const LogLine&) = delete;

  template <typename T>
  LogLine& operator<<(const T& value) {
    os_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream os_;
};
}  // namespace detail

}  // namespace scd

#define SCD_LOG_DEBUG() ::scd::detail::LogLine(::scd::LogLevel::kDebug)
#define SCD_LOG_INFO() ::scd::detail::LogLine(::scd::LogLevel::kInfo)
#define SCD_LOG_WARN() ::scd::detail::LogLine(::scd::LogLevel::kWarn)
#define SCD_LOG_ERROR() ::scd::detail::LogLine(::scd::LogLevel::kError)
