// ASCII-table and CSV emitters used by the benchmark harnesses to print
// paper-style tables (e.g. Table III) and figure series (e.g. Fig. 1-6).
#pragma once

#include <iosfwd>
#include <string>
#include <variant>
#include <vector>

namespace scd {

/// A table cell: string, integer or floating point (printed with
/// column-specific precision).
using Cell = std::variant<std::string, std::int64_t, double>;

/// Collects rows and renders either an aligned ASCII table or CSV.
/// Intended for modest result tables, not bulk data.
class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  /// Number of significant digits used for double cells (default 4).
  void set_precision(int digits);

  void add_row(std::vector<Cell> row);

  std::size_t num_rows() const { return rows_.size(); }
  const std::vector<std::string>& headers() const { return headers_; }

  /// Render with column alignment and a header separator.
  std::string to_ascii() const;

  /// Render as RFC-4180-ish CSV (no quoting of commas; callers keep cell
  /// text comma-free by convention).
  std::string to_csv() const;

  /// Write CSV to `path`; throws scd::Error on I/O failure.
  void write_csv(const std::string& path) const;

  /// Render as a JSON array of row objects keyed by header. Doubles are
  /// printed with 17 significant digits (independent of set_precision) so
  /// a committed baseline round-trips exactly — tools/check_bench.py
  /// diffs these files numerically.
  std::string to_json() const;

 private:
  std::string render_cell(const Cell& cell) const;

  std::vector<std::string> headers_;
  std::vector<std::vector<Cell>> rows_;
  int precision_ = 4;
};

}  // namespace scd
