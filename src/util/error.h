// Error handling primitives shared by all scd modules.
//
// The library throws `scd::Error` for unrecoverable misuse (bad arguments,
// corrupt input files, protocol violations in the simulated transport).
// Internal invariants use SCD_ASSERT which compiles to a cheap check in all
// build types: this is a research library where silent corruption is far
// more expensive than a branch.
#pragma once

#include <stdexcept>
#include <string>

namespace scd {

/// Base exception for all errors raised by the scd library.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

/// Raised when input data (graph files, configs) is malformed.
class DataError : public Error {
 public:
  explicit DataError(const std::string& what) : Error(what) {}
};

/// Raised when an API is used outside its contract.
class UsageError : public Error {
 public:
  explicit UsageError(const std::string& what) : Error(what) {}
};

namespace detail {
[[noreturn]] void fail_check(const char* kind, const char* expr,
                             const char* file, int line,
                             const std::string& msg);
}  // namespace detail

}  // namespace scd

/// Validate a user-facing precondition; throws scd::UsageError on failure.
#define SCD_REQUIRE(cond, msg)                                        \
  do {                                                                \
    if (!(cond)) {                                                    \
      ::scd::detail::fail_check("precondition", #cond, __FILE__,      \
                                __LINE__, (msg));                     \
    }                                                                 \
  } while (0)

/// Internal invariant; enabled in every build type.
#define SCD_ASSERT(cond, msg)                                         \
  do {                                                                \
    if (!(cond)) {                                                    \
      ::scd::detail::fail_check("invariant", #cond, __FILE__,         \
                                __LINE__, (msg));                     \
    }                                                                 \
  } while (0)
