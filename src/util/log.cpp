#include "util/log.h"

#include <cctype>
#include <chrono>
#include <cstdio>
#include <cstdlib>

namespace scd {

std::optional<LogLevel> parse_log_level(std::string_view name) {
  std::string lower(name);
  for (char& c : lower) {
    c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  }
  if (lower == "debug") return LogLevel::kDebug;
  if (lower == "info") return LogLevel::kInfo;
  if (lower == "warn" || lower == "warning") return LogLevel::kWarn;
  if (lower == "error") return LogLevel::kError;
  if (lower == "off" || lower == "none") return LogLevel::kOff;
  return std::nullopt;
}

Logger::Logger() {
  if (const char* env = std::getenv("SCD_LOG_LEVEL")) {
    if (const auto level = parse_log_level(env)) {
      level_ = *level;
    } else {
      // level_ is still kInfo, so this warning is visible.
      write(LogLevel::kWarn,
            std::string("ignoring unrecognized SCD_LOG_LEVEL '") + env +
                "' (expected debug|info|warn|error|off)");
    }
  }
}

Logger& Logger::instance() {
  static Logger logger;
  return logger;
}

namespace {
const char* level_tag(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO ";
    case LogLevel::kWarn:
      return "WARN ";
    case LogLevel::kError:
      return "ERROR";
    default:
      return "?????";
  }
}
}  // namespace

void Logger::write(LogLevel level, const std::string& message) {
  if (static_cast<int>(level) < static_cast<int>(level_)) return;
  using clock = std::chrono::steady_clock;
  static const clock::time_point start = clock::now();
  const double elapsed =
      std::chrono::duration<double>(clock::now() - start).count();
  std::lock_guard<std::mutex> lock(mu_);
  std::fprintf(stderr, "[%9.3f] %s %s\n", elapsed, level_tag(level),
               message.c_str());
}

}  // namespace scd
