#include "util/log.h"

#include <chrono>
#include <cstdio>

namespace scd {

Logger& Logger::instance() {
  static Logger logger;
  return logger;
}

namespace {
const char* level_tag(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO ";
    case LogLevel::kWarn:
      return "WARN ";
    case LogLevel::kError:
      return "ERROR";
    default:
      return "?????";
  }
}
}  // namespace

void Logger::write(LogLevel level, const std::string& message) {
  if (static_cast<int>(level) < static_cast<int>(level_)) return;
  using clock = std::chrono::steady_clock;
  static const clock::time_point start = clock::now();
  const double elapsed =
      std::chrono::duration<double>(clock::now() - start).count();
  std::lock_guard<std::mutex> lock(mu_);
  std::fprintf(stderr, "[%9.3f] %s %s\n", elapsed, level_tag(level),
               message.c_str());
}

}  // namespace scd
