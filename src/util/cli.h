// Tiny declarative command-line parser used by examples and benches.
//
// Supports `--name value`, `--name=value` and boolean `--flag` options.
// Unknown options are an error so typos never silently fall back to
// defaults — a classic source of bogus benchmark configurations.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <vector>

namespace scd {

class ArgParser {
 public:
  /// `program` and `description` feed the generated --help text.
  ArgParser(std::string program, std::string description);

  ArgParser& add_flag(const std::string& name, bool* target,
                      const std::string& help);
  ArgParser& add_int(const std::string& name, std::int64_t* target,
                     const std::string& help);
  ArgParser& add_uint(const std::string& name, std::uint64_t* target,
                      const std::string& help);
  ArgParser& add_double(const std::string& name, double* target,
                        const std::string& help);
  ArgParser& add_string(const std::string& name, std::string* target,
                        const std::string& help);

  /// Parse argv. Returns false (after printing usage) when --help was
  /// given; throws scd::UsageError on malformed input.
  bool parse(int argc, const char* const* argv);

  std::string usage() const;

 private:
  struct Option {
    std::string name;
    std::string help;
    std::string default_repr;
    bool is_flag = false;
    std::function<void(const std::string&)> apply;
  };

  Option& add_option(const std::string& name, const std::string& help,
                     std::string default_repr, bool is_flag,
                     std::function<void(const std::string&)> apply);

  std::string program_;
  std::string description_;
  std::vector<Option> options_;
  std::map<std::string, std::size_t> index_;
};

}  // namespace scd
