// Human-readable formatting of byte counts, durations and rates, used by
// benchmark harnesses and log output.
#pragma once

#include <cstdint>
#include <string>

namespace scd {

/// "1.50 KiB", "3.20 GiB", ...
std::string format_bytes(std::uint64_t bytes);

/// "12.3 us", "4.56 ms", "1.23 s", ...
std::string format_duration(double seconds);

/// "5.43 GB/s" (decimal units, matching network-equipment convention).
std::string format_bandwidth(double bytes_per_second);

/// "1,806,067,135" with thousands separators.
std::string format_count(std::uint64_t n);

}  // namespace scd
