#include "util/cli.h"

#include <cstdio>
#include <sstream>
#include <stdexcept>

#include "util/error.h"

namespace scd {

ArgParser::ArgParser(std::string program, std::string description)
    : program_(std::move(program)), description_(std::move(description)) {}

ArgParser::Option& ArgParser::add_option(
    const std::string& name, const std::string& help,
    std::string default_repr, bool is_flag,
    std::function<void(const std::string&)> apply) {
  SCD_REQUIRE(index_.find(name) == index_.end(),
              "duplicate option --" + name);
  Option opt;
  opt.name = name;
  opt.help = help;
  opt.default_repr = std::move(default_repr);
  opt.is_flag = is_flag;
  opt.apply = std::move(apply);
  index_[name] = options_.size();
  options_.push_back(std::move(opt));
  return options_.back();
}

ArgParser& ArgParser::add_flag(const std::string& name, bool* target,
                               const std::string& help) {
  add_option(name, help, *target ? "true" : "false", /*is_flag=*/true,
             [target](const std::string& v) {
               if (v.empty() || v == "true" || v == "1") {
                 *target = true;
               } else if (v == "false" || v == "0") {
                 *target = false;
               } else {
                 throw UsageError("flag takes true/false, got '" + v + "'");
               }
             });
  return *this;
}

namespace {
template <typename T, typename Conv>
std::function<void(const std::string&)> numeric_apply(const char* type_name,
                                                      T* target, Conv conv) {
  return [type_name, target, conv](const std::string& v) {
    try {
      std::size_t pos = 0;
      *target = conv(v, &pos);
      if (pos != v.size()) throw std::invalid_argument("trailing chars");
    } catch (const std::exception&) {
      throw UsageError(std::string("expected ") + type_name + ", got '" + v +
                       "'");
    }
  };
}
}  // namespace

ArgParser& ArgParser::add_int(const std::string& name, std::int64_t* target,
                              const std::string& help) {
  add_option(name, help, std::to_string(*target), false,
             numeric_apply("integer", target,
                           [](const std::string& s, std::size_t* pos) {
                             return std::stoll(s, pos);
                           }));
  return *this;
}

ArgParser& ArgParser::add_uint(const std::string& name, std::uint64_t* target,
                               const std::string& help) {
  add_option(name, help, std::to_string(*target), false,
             numeric_apply("unsigned integer", target,
                           [](const std::string& s, std::size_t* pos) {
                             if (!s.empty() && s[0] == '-')
                               throw std::invalid_argument("negative");
                             return std::stoull(s, pos);
                           }));
  return *this;
}

ArgParser& ArgParser::add_double(const std::string& name, double* target,
                                 const std::string& help) {
  add_option(name, help, std::to_string(*target), false,
             numeric_apply("number", target,
                           [](const std::string& s, std::size_t* pos) {
                             return std::stod(s, pos);
                           }));
  return *this;
}

ArgParser& ArgParser::add_string(const std::string& name, std::string* target,
                                 const std::string& help) {
  add_option(name, help, *target, false,
             [target](const std::string& v) { *target = v; });
  return *this;
}

bool ArgParser::parse(int argc, const char* const* argv) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      std::fputs(usage().c_str(), stdout);
      return false;
    }
    SCD_REQUIRE(arg.size() > 2 && arg.compare(0, 2, "--") == 0,
                "unexpected argument '" + arg + "'; options use --name");
    std::string name = arg.substr(2);
    std::string value;
    bool has_value = false;
    if (auto eq = name.find('='); eq != std::string::npos) {
      value = name.substr(eq + 1);
      name = name.substr(0, eq);
      has_value = true;
    }
    auto it = index_.find(name);
    SCD_REQUIRE(it != index_.end(), "unknown option --" + name);
    const Option& opt = options_[it->second];
    if (!opt.is_flag && !has_value) {
      SCD_REQUIRE(i + 1 < argc, "option --" + name + " needs a value");
      value = argv[++i];
    }
    try {
      opt.apply(value);
    } catch (const UsageError& e) {
      throw UsageError("--" + name + ": " + e.what());
    }
  }
  return true;
}

std::string ArgParser::usage() const {
  std::ostringstream os;
  os << program_ << " — " << description_ << "\n\nOptions:\n";
  for (const Option& opt : options_) {
    os << "  --" << opt.name;
    if (!opt.is_flag) os << " <value>";
    os << "\n      " << opt.help << " (default: " << opt.default_repr
       << ")\n";
  }
  return os.str();
}

}  // namespace scd
