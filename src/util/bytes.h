// Minimal byte-buffer serialization for transport payloads.
//
// Only trivially-copyable scalars and spans thereof; byte order is the
// host's (the simulated cluster shares one process, and the real target
// cluster is homogeneous x86, as MPI deployments typically are).
#pragma once

#include <cstdint>
#include <cstring>
#include <span>
#include <vector>

#include "util/error.h"

namespace scd {

class ByteWriter {
 public:
  ByteWriter() : buffer_(&owned_) {}

  /// Serialize into `external` (cleared first, capacity kept) instead of
  /// an internal buffer — lets callers reuse one payload buffer across
  /// messages. `external` must outlive the writer; take() is then a move
  /// out of it.
  explicit ByteWriter(std::vector<std::byte>& external) : buffer_(&external) {
    external.clear();
  }

  template <typename T>
  void put(const T& value) {
    static_assert(std::is_trivially_copyable_v<T>);
    const std::size_t offset = buffer_->size();
    buffer_->resize(offset + sizeof(T));
    std::memcpy(buffer_->data() + offset, &value, sizeof(T));
  }

  template <typename T>
  void put_span(std::span<const T> values) {
    static_assert(std::is_trivially_copyable_v<T>);
    put<std::uint64_t>(values.size());
    const std::size_t offset = buffer_->size();
    buffer_->resize(offset + values.size_bytes());
    if (!values.empty()) {
      std::memcpy(buffer_->data() + offset, values.data(),
                  values.size_bytes());
    }
  }

  std::span<const std::byte> bytes() const { return *buffer_; }
  std::vector<std::byte> take() { return std::move(*buffer_); }
  std::size_t size() const { return buffer_->size(); }

 private:
  std::vector<std::byte> owned_;
  std::vector<std::byte>* buffer_;
};

class ByteReader {
 public:
  explicit ByteReader(std::span<const std::byte> bytes) : bytes_(bytes) {}

  template <typename T>
  T get() {
    static_assert(std::is_trivially_copyable_v<T>);
    SCD_REQUIRE(pos_ + sizeof(T) <= bytes_.size(),
                "byte buffer underrun");
    T value;
    std::memcpy(&value, bytes_.data() + pos_, sizeof(T));
    pos_ += sizeof(T);
    return value;
  }

  template <typename T>
  std::vector<T> get_vector() {
    static_assert(std::is_trivially_copyable_v<T>);
    const auto count = get<std::uint64_t>();
    SCD_REQUIRE(pos_ + count * sizeof(T) <= bytes_.size(),
                "byte buffer underrun");
    std::vector<T> values(count);
    if (count > 0) {
      std::memcpy(values.data(), bytes_.data() + pos_, count * sizeof(T));
    }
    pos_ += count * sizeof(T);
    return values;
  }

  /// get_vector into a reused buffer: after warm-up (capacity >= count)
  /// this allocates nothing.
  template <typename T>
  void get_into(std::vector<T>& out) {
    static_assert(std::is_trivially_copyable_v<T>);
    const auto count = get<std::uint64_t>();
    SCD_REQUIRE(pos_ + count * sizeof(T) <= bytes_.size(),
                "byte buffer underrun");
    out.resize(count);
    if (count > 0) {
      std::memcpy(out.data(), bytes_.data() + pos_, count * sizeof(T));
    }
    pos_ += count * sizeof(T);
  }

  bool exhausted() const { return pos_ == bytes_.size(); }

 private:
  std::span<const std::byte> bytes_;
  std::size_t pos_ = 0;
};

}  // namespace scd
