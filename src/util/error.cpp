#include "util/error.h"

#include <sstream>

namespace scd::detail {

void fail_check(const char* kind, const char* expr, const char* file,
                int line, const std::string& msg) {
  std::ostringstream os;
  os << "scd " << kind << " violated: (" << expr << ") at " << file << ':'
     << line;
  if (!msg.empty()) os << " — " << msg;
  throw UsageError(os.str());
}

}  // namespace scd::detail
