#include "util/units.h"

#include <cstdio>

namespace scd {

namespace {
std::string scaled(double value, const char* const* units, int count,
                   double base) {
  int u = 0;
  while (value >= base && u + 1 < count) {
    value /= base;
    ++u;
  }
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.2f %s", value, units[u]);
  return buf;
}
}  // namespace

std::string format_bytes(std::uint64_t bytes) {
  static const char* const kUnits[] = {"B", "KiB", "MiB", "GiB", "TiB"};
  return scaled(static_cast<double>(bytes), kUnits, 5, 1024.0);
}

std::string format_duration(double seconds) {
  char buf[64];
  if (seconds < 1e-6) {
    std::snprintf(buf, sizeof(buf), "%.1f ns", seconds * 1e9);
  } else if (seconds < 1e-3) {
    std::snprintf(buf, sizeof(buf), "%.2f us", seconds * 1e6);
  } else if (seconds < 1.0) {
    std::snprintf(buf, sizeof(buf), "%.2f ms", seconds * 1e3);
  } else if (seconds < 120.0) {
    std::snprintf(buf, sizeof(buf), "%.2f s", seconds);
  } else if (seconds < 7200.0) {
    std::snprintf(buf, sizeof(buf), "%.1f min", seconds / 60.0);
  } else {
    std::snprintf(buf, sizeof(buf), "%.2f h", seconds / 3600.0);
  }
  return buf;
}

std::string format_bandwidth(double bytes_per_second) {
  static const char* const kUnits[] = {"B/s", "KB/s", "MB/s", "GB/s", "TB/s"};
  return scaled(bytes_per_second, kUnits, 5, 1000.0);
}

std::string format_count(std::uint64_t n) {
  std::string digits = std::to_string(n);
  std::string out;
  out.reserve(digits.size() + digits.size() / 3);
  int pos = 0;
  for (auto it = digits.rbegin(); it != digits.rend(); ++it, ++pos) {
    if (pos > 0 && pos % 3 == 0) out.push_back(',');
    out.push_back(*it);
  }
  return {out.rbegin(), out.rend()};
}

}  // namespace scd
