// Per-rank virtual clock: the time coordinate of the simulated backend.
//
// Lives in comm (not sim) because the backend seam is written against it:
// trace spans are templated over a clock type, and the simulated backend
// hands these clocks to the transport and the DKV cost hooks. Wall-clock
// backends simply do not instantiate any.
#pragma once

#include "util/error.h"

namespace scd::comm {

class VirtualClock {
 public:
  double now() const { return now_s_; }

  void advance(double seconds) {
    SCD_ASSERT(seconds >= 0.0, "time cannot move backwards");
    now_s_ += seconds;
  }

  /// Jump forward to `t` if it is in the future (e.g. message arrival).
  void advance_to(double t) {
    if (t > now_s_) now_s_ = t;
  }

  void reset() { now_s_ = 0.0; }

 private:
  double now_s_ = 0.0;
};

}  // namespace scd::comm
