// Analytic model of the FDR InfiniBand fabric of the DAS5 cluster.
//
// Every parameter is documented with its calibration source. The model is
// intentionally simple — latency + bandwidth + per-request overhead, with
// two efficiency de-raters — because the paper's evaluation depends on the
// *relative* cost structure (network vs compute, small vs large payloads,
// few vs many nodes), not on cycle accuracy.
#pragma once

#include <cstdint>

#include "util/error.h"

namespace scd::comm {

struct NetworkModel {
  /// One-way small-message latency. FDR IB RDMA read latency is ~1.7 us
  /// (qperf on DAS5-class hardware).
  double latency_s = 1.7e-6;

  /// Peak payload bandwidth of one 56 Gb/s FDR port after encoding
  /// overhead: ~6.8 GB/s, matching the qperf envelope in Fig. 5.
  double bandwidth_Bps = 6.8e9;

  /// Per-request software overhead of the DKV store (request descriptor
  /// setup, completion polling). Explains why the DKV curve in Fig. 5
  /// trails qperf below 4 KB and converges to it for large payloads.
  double dkv_request_overhead_s = 0.4e-6;

  /// Efficiency de-rater for reads whose values are spread over a memory
  /// area exceeding the last-level cache — the paper's explanation for the
  /// DKV dip at the largest payload size in Fig. 5.
  double spread_efficiency = 0.85;
  /// Working-set size beyond which spread_efficiency applies.
  std::uint64_t spread_threshold_bytes = 20u << 20;  // ~L3 of the E5-2630v3

  /// Additional de-rating under all-to-all load: when every node of a
  /// C-node cluster issues random-row reads simultaneously (update_phi),
  /// per-NIC efficiency drops due to switch contention and bidirectional
  /// traffic. congestion_factor below maps C to the multiplier.
  double congestion_strength = 2.0;

  /// Skew absorbed by every collective operation (OS jitter, stragglers).
  /// Deterministic surrogate for the variance a real cluster shows; the
  /// paper attributes most of update_beta_theta's cost to exactly this.
  double collective_skew_s = 3.0e-3;

  /// Point-to-point transfer time for `bytes` payload (single flow).
  double transfer_time(std::uint64_t bytes) const {
    return latency_s + static_cast<double>(bytes) / bandwidth_Bps;
  }

  /// Effective bandwidth multiplier when `cluster_size` nodes all fetch
  /// scattered rows at once. 1.0 for a single node (no network at all).
  double congestion_factor(unsigned cluster_size) const {
    if (cluster_size <= 1) return 1.0;
    const double remote_fraction =
        static_cast<double>(cluster_size - 1) /
        static_cast<double>(cluster_size);
    return 1.0 / (1.0 + congestion_strength * remote_fraction);
  }

  /// Cost of a batched one-sided DKV read/write: `requests` descriptors
  /// moving `bytes` total, touching `working_set_bytes` of remote memory,
  /// issued while `cluster_size` nodes do the same.
  double dkv_batch_time(std::uint64_t requests, std::uint64_t bytes,
                        std::uint64_t working_set_bytes,
                        unsigned cluster_size) const {
    if (requests == 0 || bytes == 0) return 0.0;
    double bw = bandwidth_Bps * congestion_factor(cluster_size);
    if (working_set_bytes > spread_threshold_bytes) bw *= spread_efficiency;
    return latency_s +
           static_cast<double>(requests) * dkv_request_overhead_s +
           static_cast<double>(bytes) / bw;
  }

  /// Cost of a coalesced batched DKV read/write: the requester groups the
  /// rows of a batch by owner shard and issues ONE message per contacted
  /// shard, so `latency_s` is paid once and `dkv_request_overhead_s` once
  /// per shard instead of once per row (Section III-B batches requests per
  /// destination exactly this way). Bandwidth/congestion/spread terms are
  /// unchanged — coalescing amortizes per-request software overhead, it
  /// does not create wire capacity.
  double dkv_coalesced_time(std::uint64_t shards_contacted,
                            std::uint64_t bytes,
                            std::uint64_t working_set_bytes,
                            unsigned cluster_size) const {
    return dkv_batch_time(shards_contacted, bytes, working_set_bytes,
                          cluster_size);
  }

  /// Tree depth of collectives over `cluster_size` ranks.
  static unsigned tree_depth(unsigned cluster_size) {
    unsigned depth = 0;
    for (unsigned span = 1; span < cluster_size; span <<= 1) ++depth;
    return depth;
  }

  /// Completion time increment of a tree collective moving `bytes` per
  /// hop (0 for a pure barrier).
  double collective_time(unsigned cluster_size, std::uint64_t bytes) const {
    if (cluster_size <= 1) return 0.0;
    const double per_hop = transfer_time(bytes);
    return tree_depth(cluster_size) * per_hop + collective_skew_s;
  }

  void validate() const {
    SCD_REQUIRE(latency_s >= 0 && bandwidth_Bps > 0 &&
                    dkv_request_overhead_s >= 0,
                "invalid network model");
    SCD_REQUIRE(spread_efficiency > 0 && spread_efficiency <= 1.0,
                "spread_efficiency must be in (0, 1]");
  }
};

/// The lossless-fabric envelope that qperf measures: latency + line rate,
/// no software overhead. Fig. 5's baseline curve.
inline double qperf_transfer_time(const NetworkModel& net,
                                  std::uint64_t bytes) {
  return net.latency_s + static_cast<double>(bytes) / net.bandwidth_Bps;
}

}  // namespace scd::comm
