// Backend-neutral transport seam.
//
// The distributed sampler's four loops (legacy/FT master/worker) are
// written against this interface: MPI-style tagged point-to-point
// messages plus the three collectives the algorithm needs (barrier,
// reduce-sum, broadcast) and the failure-aware receive the FT master's
// heartbeat machinery is built on. Two implementations exist:
//
//  * sim::SimTransport — threads in one address space, virtual-time cost
//    accounting per the NetworkModel (src/sim/transport.h);
//  * proc::ProcTransport — forked processes over Unix-domain sockets,
//    wall-clock time (src/proc/proc_transport.h).
//
// Contract shared by all backends (the sampler depends on it):
//  * messages with equal (from, to, tag) are never dropped or reordered;
//  * reduce_sum combines contributions in rank order, so the result is
//    bitwise independent of arrival order;
//  * collectives on one channel are called by all its participants in
//    the same program order; participants == 0 means every rank, and a
//    non-zero count P names the *last* P ranks (the worker channel);
//  * after mark_rank_dead(r), messages r sent before dying remain
//    deliverable; once drained, blocking receives from r throw
//    TransportError and recv_bytes_or_dead returns std::nullopt.
#pragma once

#include <cstdint>
#include <cstring>
#include <optional>
#include <span>
#include <string>
#include <type_traits>
#include <vector>

#include "util/error.h"

namespace scd::comm {

/// Typed failure of a transport operation — e.g. a blocking receive
/// whose peer fail-stopped (sim fault injection) or whose process died
/// (proc backend). Distinct from the generic abort Error so recovery
/// code can catch exactly communication faults.
class TransportError : public Error {
 public:
  explicit TransportError(const std::string& what) : Error(what) {}
};

class Transport {
 public:
  virtual ~Transport() = default;

  virtual unsigned num_ranks() const = 0;

  // -- Point-to-point primitives (backend-specific) -----------------------

  /// Post `payload` from `from` to `to` under `tag`. `logical_bytes` is
  /// the modeled wire size — it differs from payload.size() only for
  /// cost-only (phantom) traffic on the simulated backend.
  virtual void send_raw(unsigned from, unsigned to, int tag,
                        std::vector<std::byte> payload,
                        std::uint64_t logical_bytes) = 0;

  /// Blocks until the matching send arrives, returns its payload.
  virtual std::vector<std::byte> recv_raw(unsigned self, unsigned from,
                                          int tag) = 0;

  /// Failure-aware receive: like recv_raw, but when `from` has been
  /// detected dead and no matching message remains it returns
  /// std::nullopt instead of blocking forever — the master's
  /// heartbeat-timeout primitive.
  virtual std::optional<std::vector<std::byte>> recv_bytes_or_dead(
      unsigned self, unsigned from, int tag) = 0;

  // -- Buffer pool --------------------------------------------------------

  /// Take an empty buffer from the pool (capacity from earlier traffic).
  virtual std::vector<std::byte> acquire_buffer() = 0;
  /// Return a consumed payload's storage to the pool.
  virtual void recycle_buffer(std::vector<std::byte>&& buffer) = 0;

  /// Pre-warm hints; backends that do not pool (or pool differently) may
  /// ignore them.
  virtual void reserve_buffers(std::size_t /*count*/,
                               std::size_t /*capacity_bytes*/) {}
  virtual void reserve_collectives(std::size_t /*slots*/,
                                   std::size_t /*reduce_len*/,
                                   std::size_t /*bcast_bytes*/) {}
  virtual void reserve_mailbox(unsigned /*from*/, unsigned /*to*/,
                               int /*tag*/, std::size_t /*depth*/) {}

  // -- Collectives --------------------------------------------------------

  virtual void barrier(unsigned self, unsigned channel = 0,
                       unsigned participants = 0) = 0;

  /// Element-wise sum across the channel's ranks; on return `inout` holds
  /// the total at the root and is unchanged elsewhere. Contributions are
  /// combined in rank order (deterministic regardless of arrival order).
  virtual void reduce_sum(unsigned self, unsigned root,
                          std::span<double> inout, unsigned channel = 0,
                          unsigned participants = 0) = 0;

  /// Root's bytes are copied to every participating rank.
  virtual void broadcast(unsigned self, unsigned root,
                         std::span<std::byte> data, unsigned channel = 0,
                         unsigned participants = 0) = 0;

  // -- Failure surface ----------------------------------------------------

  /// Wake every blocked rank with an error — called when any rank's code
  /// throws, so a failure surfaces instead of deadlocking the cluster.
  virtual void abort_all() = 0;

  /// Declare `rank` fail-stopped (sim: by the fault plan; proc: a rank
  /// announcing its own scripted death before closing its sockets).
  virtual void mark_rank_dead(unsigned rank) = 0;
  virtual bool rank_dead(unsigned rank) const = 0;

  // -- Conveniences layered on the primitives -----------------------------

  /// Typed point-to-point send. T must be trivially copyable.
  template <typename T>
  void send(unsigned from, unsigned to, int tag, std::span<const T> data) {
    static_assert(std::is_trivially_copyable_v<T>);
    std::vector<std::byte> bytes = acquire_buffer();
    bytes.resize(data.size_bytes());
    if (!data.empty()) {
      std::memcpy(bytes.data(), data.data(), data.size_bytes());
    }
    send_raw(from, to, tag, std::move(bytes), data.size_bytes());
  }

  /// Zero-copy send of an already-serialized payload, typically one
  /// obtained from acquire_buffer(). The receiver gets the exact bytes
  /// via recv_bytes and should recycle_buffer() them when done.
  void send_bytes(unsigned from, unsigned to, int tag,
                  std::vector<std::byte>&& payload) {
    const std::uint64_t bytes = payload.size();
    send_raw(from, to, tag, std::move(payload), bytes);
  }

  /// Cost-only send: moves no data, charges time for `logical_bytes`.
  void send_phantom(unsigned from, unsigned to, int tag,
                    std::uint64_t logical_bytes) {
    send_raw(from, to, tag, {}, logical_bytes);
  }

  /// Typed receive; blocks until the matching send arrives.
  template <typename T>
  std::vector<T> recv(unsigned self, unsigned from, int tag) {
    static_assert(std::is_trivially_copyable_v<T>);
    std::vector<std::byte> bytes = recv_raw(self, from, tag);
    SCD_ASSERT(bytes.size() % sizeof(T) == 0, "payload size mismatch");
    std::vector<T> out(bytes.size() / sizeof(T));
    if (!out.empty()) std::memcpy(out.data(), bytes.data(), bytes.size());
    recycle_buffer(std::move(bytes));
    return out;
  }

  std::vector<std::byte> recv_bytes(unsigned self, unsigned from, int tag) {
    return recv_raw(self, from, tag);
  }

  /// Receive a phantom (or typed) message, discarding any payload.
  void recv_discard(unsigned self, unsigned from, int tag) {
    recycle_buffer(recv_raw(self, from, tag));
  }

  template <typename T>
  void broadcast(unsigned self, unsigned root, std::span<T> data,
                 unsigned channel = 0, unsigned participants = 0) {
    static_assert(std::is_trivially_copyable_v<T>);
    broadcast(self, root,
              std::span<std::byte>(reinterpret_cast<std::byte*>(data.data()),
                                   data.size_bytes()),
              channel, participants);
  }
};

}  // namespace scd::comm
