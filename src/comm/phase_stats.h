// Per-rank accounting of virtual time by algorithm stage.
//
// The stage taxonomy mirrors Table III of the paper so the benchmark
// harness can print the same breakdown: draw/deploy mini-batch, the
// update_phi sub-stages (neighbor sampling, load pi, compute phi),
// update_pi, update beta/theta, perplexity, and time spent waiting at
// barriers/collectives.
#pragma once

#include <array>
#include <cstddef>

#include "util/error.h"

namespace scd::comm {

enum class Phase : std::size_t {
  kDrawMinibatch = 0,   // master: sampling E_n and gathering adjacency
  kDeployMinibatch,     // scatter transfer + worker wait for its share
  kSampleNeighbors,     // worker: drawing V_n per minibatch vertex
  kLoadPi,              // worker: DKV reads of pi rows
  kUpdatePhi,           // worker: Eqns 5-6 compute
  kUpdatePi,            // worker: normalisation + DKV writeback
  kUpdateBetaTheta,     // grads, reduce, master update, bcast
  kPerplexity,          // held-out evaluation
  kBarrierWait,         // idle time at barriers beyond own arrival
  kCount
};

constexpr std::size_t kNumPhases = static_cast<std::size_t>(Phase::kCount);

const char* phase_name(Phase p);

class PhaseStats {
 public:
  void add(Phase p, double seconds) {
    SCD_ASSERT(seconds >= -1e-12, "negative phase duration");
    totals_[static_cast<std::size_t>(p)] += seconds;
  }

  double get(Phase p) const { return totals_[static_cast<std::size_t>(p)]; }

  double total() const {
    double t = 0.0;
    for (double x : totals_) t += x;
    return t;
  }

  void clear() { totals_.fill(0.0); }

  PhaseStats& operator+=(const PhaseStats& other) {
    for (std::size_t i = 0; i < kNumPhases; ++i) {
      totals_[i] += other.totals_[i];
    }
    return *this;
  }

  /// Element-wise maximum — the cluster-wide critical-path view.
  void max_with(const PhaseStats& other) {
    for (std::size_t i = 0; i < kNumPhases; ++i) {
      if (other.totals_[i] > totals_[i]) totals_[i] = other.totals_[i];
    }
  }

  void scale(double factor) {
    for (double& x : totals_) x *= factor;
  }

 private:
  std::array<double, kNumPhases> totals_{};
};

}  // namespace scd::comm
