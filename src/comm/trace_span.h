// Bridge between the simulator's Phase taxonomy and the trace
// subsystem: Phase maps index-for-index onto the leading trace::Stage
// entries, and TraceSpan is the RAII span scope instantiated over the
// virtual clock.
#pragma once

#include "comm/clock.h"
#include "comm/phase_stats.h"
#include "trace/recorder.h"

namespace scd::comm {

using TraceSpan = trace::ScopedSpan<VirtualClock>;

constexpr trace::Stage to_stage(Phase p) {
  return static_cast<trace::Stage>(static_cast<std::size_t>(p));
}

#define SCD_PHASE_MATCHES(name)                              \
  static_assert(static_cast<std::size_t>(Phase::name) ==     \
                    static_cast<std::size_t>(trace::Stage::name), \
                "Phase/Stage enums diverged: " #name)
SCD_PHASE_MATCHES(kDrawMinibatch);
SCD_PHASE_MATCHES(kDeployMinibatch);
SCD_PHASE_MATCHES(kSampleNeighbors);
SCD_PHASE_MATCHES(kLoadPi);
SCD_PHASE_MATCHES(kUpdatePhi);
SCD_PHASE_MATCHES(kUpdatePi);
SCD_PHASE_MATCHES(kUpdateBetaTheta);
SCD_PHASE_MATCHES(kPerplexity);
SCD_PHASE_MATCHES(kBarrierWait);
#undef SCD_PHASE_MATCHES
static_assert(kNumPhases <= trace::kNumStages,
              "every Phase needs a Stage mirror");

}  // namespace scd::comm
