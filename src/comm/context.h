// Backend-neutral per-rank execution context.
//
// The sampler loops see one rank's world through this interface: its
// transport, its clock, and its phase accounting. The seam is designed
// so the *same* loop body yields two different accounting regimes:
//
//  * simulated backend (sim::RankContext): now() reads the rank's
//    virtual clock; charge(p, modeled) advances the clock by the modeled
//    duration (times any straggler factor) and books it to phase p;
//    book(p, s) books an explicitly computed duration (e.g. collective
//    wait = clock-after minus clock-before).
//
//  * wall-clock backend (proc::ProcContext): now() is real elapsed
//    seconds; charge(p, modeled) IGNORES the modeled value and books the
//    wall time since the previous booking point — the loop's modeled
//    charges double as attribution markers; book(p, s) books the given
//    measured duration; advance()/advance_to() are no-ops because wall
//    time advances itself.
//
// Either way stats() ends up with a per-phase breakdown in the backend's
// native time coordinate, which is exactly what bench_proc compares.
#pragma once

#include <cstdint>

#include "comm/compute_model.h"
#include "comm/network_model.h"
#include "comm/phase_stats.h"
#include "comm/trace_span.h"
#include "comm/transport.h"

namespace scd::comm {

class Context {
 public:
  virtual ~Context() = default;

  virtual unsigned rank() const = 0;
  virtual unsigned num_ranks() const = 0;
  bool is_master() const { return rank() == 0; }

  /// True on virtual-time backends (costs are modeled, not measured).
  virtual bool simulated() const = 0;

  virtual Transport& transport() = 0;
  virtual const NetworkModel& network() const = 0;
  virtual const ComputeModel& compute() const = 0;
  virtual PhaseStats& stats() = 0;

  /// The rank's time coordinate: virtual seconds (sim) or wall seconds
  /// since the run started (proc). Monotone within a rank.
  virtual double now() const = 0;
  /// Advance time explicitly (no-op on wall-clock backends).
  virtual void advance(double seconds) = 0;
  virtual void advance_to(double t) = 0;

  /// Book `seconds` of already-elapsed (or modeled-elapsed) time to
  /// phase `p` without advancing the clock.
  virtual void book(Phase p, double seconds) = 0;
  /// Book the time elapsed since `since` (a now() sample) to phase `p`.
  void measured(Phase p, double since) { book(p, now() - since); }

  /// Account one compute/IO section: sim advances the clock by
  /// `modeled_seconds` (x straggler factor) and books it; proc books the
  /// wall time since the previous booking point instead.
  virtual void charge(Phase p, double modeled_seconds) = 0;
  void charge_kernel(Phase p, double units, double cycles_per_unit) {
    charge(p, compute().kernel_time(units, cycles_per_unit));
  }
  void charge_serial(Phase p, double units, double cycles_per_unit) {
    charge(p, compute().serial_time(units, cycles_per_unit));
  }

  /// Barrier on `channel`, booking the wait to Phase::kBarrierWait.
  virtual void timed_barrier(unsigned channel = 0,
                             unsigned participants = 0) = 0;

  /// Trace recorder, or nullptr when tracing is off (always nullptr on
  /// wall-clock backends — spans degrade to no-ops).
  virtual trace::TraceRecorder* trace() const = 0;
  virtual TraceSpan trace_span(trace::Stage stage,
                               std::uint64_t iteration = 0) = 0;
  TraceSpan trace_span(Phase p, std::uint64_t iteration = 0) {
    return trace_span(to_stage(p), iteration);
  }
};

}  // namespace scd::comm
