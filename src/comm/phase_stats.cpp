#include "comm/phase_stats.h"

namespace scd::comm {

const char* phase_name(Phase p) {
  switch (p) {
    case Phase::kDrawMinibatch:
      return "draw_minibatch";
    case Phase::kDeployMinibatch:
      return "deploy_minibatch";
    case Phase::kSampleNeighbors:
      return "sample_neighbors";
    case Phase::kLoadPi:
      return "load_pi";
    case Phase::kUpdatePhi:
      return "update_phi";
    case Phase::kUpdatePi:
      return "update_pi";
    case Phase::kUpdateBetaTheta:
      return "update_beta_theta";
    case Phase::kPerplexity:
      return "perplexity";
    case Phase::kBarrierWait:
      return "barrier_wait";
    case Phase::kCount:
      break;
  }
  return "unknown";
}

}  // namespace scd::comm
