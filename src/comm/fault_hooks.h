// Fault-injection seam of the virtual-time cluster.
//
// The transport, the cluster runner, and the DKV store each consult an
// optional FaultHooks implementation at well-defined points: every
// point-to-point send, every compute charge, and every DKV batch. When
// no hooks are installed (the default) the only cost is one null-pointer
// check per operation and the simulation is bit-identical to a build
// without the seam. The concrete implementation lives in fault/ — this
// header exists so sim/ and dkv/ need not depend on that library.
#pragma once

namespace scd::comm {

/// What the injector decided for one point-to-point send.
struct SendFaults {
  /// Transmissions lost before the one that gets through. Each costs the
  /// sender a full NIC occupancy plus an exponential-backoff timeout.
  unsigned dropped_attempts = 0;
  /// Extra transmissions of the same payload (delivered once — the
  /// receiver's sequence numbers discard copies, but the wire is paid).
  unsigned duplicates = 0;
  /// Additional in-flight delay on the surviving transmission.
  double extra_delay_s = 0.0;
};

class FaultHooks {
 public:
  virtual ~FaultHooks() = default;

  /// Consulted by SimTransport for every p2p send; may mutate injector
  /// state (per-link sequence counters) — the transport calls it under
  /// its lock, in the sender's program order, so decisions replay
  /// deterministically.
  virtual SendFaults on_send(unsigned from, unsigned to, double now) = 0;

  /// Straggler multiplier (>= 1) applied to compute charges on `rank`.
  virtual double compute_factor(unsigned rank, double now) const = 0;

  /// Extra service delay of one coalesced DKV message to `shard` at
  /// virtual time `now` (a stalled shard server).
  virtual double shard_stall_s(unsigned shard, double now) const = 0;

  /// Base timeout before the first retry of a dropped transmission;
  /// attempt i waits base * 2^i.
  virtual double retry_backoff_s() const = 0;
};

}  // namespace scd::comm
