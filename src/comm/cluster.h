// Backend-neutral cluster: the thing that runs one rank function on
// every rank and owns the backend-specific plumbing (transport wiring,
// DKV construction, fault/trace installation).
//
// Implementations: sim::SimCluster (threads + virtual time) and
// proc::ProcCluster (forked processes + wall time). The sampler is
// written against this interface; `scd run --backend=...` picks one.
#pragma once

#include <functional>
#include <memory>
#include <vector>

#include "comm/clock.h"
#include "comm/compute_model.h"
#include "comm/context.h"
#include "comm/fault_hooks.h"
#include "comm/network_model.h"
#include "comm/phase_stats.h"
#include "comm/transport.h"
#include "quant/row_codec.h"

namespace scd::trace {
class TraceRecorder;
}

namespace scd::dkv {
class ShardedDkv;
}

namespace scd::comm {

/// What the sampler needs from a pi-row store, backend-independent. The
/// cluster factory owns the choice of implementation; num_shards is
/// always num_ranks - 1 (the master owns no shard).
struct StoreConfig {
  std::uint64_t num_rows = 0;
  std::uint32_t row_width = 0;
  /// Cost-only mode: no row payloads move (sim only; proc rejects it).
  bool phantom = false;
  quant::RowCodec codec = quant::RowCodec::kFloat32;
  float sparse_eps = quant::kDefaultSparseEps;
  std::uint32_t sparse_modeled_nnz = 0;
};

class Cluster {
 public:
  virtual ~Cluster() = default;

  virtual unsigned num_ranks() const = 0;
  virtual bool simulated() const = 0;

  /// Execute `fn` once per rank (threads in sim, processes in proc) and
  /// return when every rank finished. Throws if any rank threw.
  virtual void run(const std::function<void(Context&)>& fn) = 0;

  /// Completion time of the slowest rank, in the backend's time
  /// coordinate (virtual seconds / wall seconds).
  virtual double max_clock() const = 0;
  virtual const PhaseStats& stats(unsigned rank) const = 0;
  /// Element-wise max across ranks — the critical-path phase view.
  virtual PhaseStats max_stats() const = 0;

  virtual Transport& transport() = 0;
  virtual const NetworkModel& network() const = 0;
  virtual const ComputeModel& compute_model() const = 0;

  /// Build the pi-row store for this backend (SimRdmaDkv / ProcDkv).
  virtual std::unique_ptr<dkv::ShardedDkv> make_store(
      const StoreConfig& config) = 0;

  /// Install (or clear) fault-injection hooks / a trace recorder.
  /// Wall-clock backends reject non-null recorders (tracing samples
  /// virtual clocks) and ignore hooks except for plan bookkeeping.
  virtual void install_fault_hooks(FaultHooks* hooks) = 0;
  virtual void install_trace(trace::TraceRecorder* recorder) = 0;

  /// Per-rank virtual clocks, or nullptr on wall-clock backends (used by
  /// the DKV fault seam, which prices stalls in virtual time).
  virtual const std::vector<VirtualClock>* rank_clocks() const {
    return nullptr;
  }
};

}  // namespace scd::comm
