// Analytic model of one DAS5 compute node (dual 8-core Xeon E5-2630v3,
// 2.4 GHz) and of the algorithm's kernel costs on it.
//
// Kernel constants are expressed in cycles per innermost-loop unit and
// were originally calibrated so that the modeled Table III stage times
// land near the published ones (see bench_phase_breakdown). They are
// deliberately coarse: the evaluation's conclusions rest on ratios, and
// the ratios are set by loop trip counts, which the simulator takes from
// the real algorithm structure.
//
// The defaults now reflect the fused kernels (core/kernels_simd.h): the
// pre-fusion constants were divided by the measured fused-vs-scalar
// cpu-time ratios from BENCH_kernels.json at K = 1024 (pair likelihood
// ~5.2x, phi gradient ~3.6x, theta ratio ~1.8x). seed_scalar_node()
// preserves the pre-fusion calibration for comparisons against the
// scalar baseline.
#pragma once

#include <cstdint>

#include "util/error.h"

namespace scd::comm {

struct ComputeModel {
  /// Core clock of the modeled node.
  double clock_hz = 2.4e9;

  /// Worker threads used per node (the paper uses all 16 cores).
  unsigned threads_per_node = 16;

  /// Parallel efficiency of the OpenMP sections (memory-bound kernels do
  /// not scale perfectly across 16 cores).
  double thread_efficiency = 0.85;

  /// Local memory bandwidth for in-node row loads (vertical-scaling mode
  /// reads pi from RAM instead of the network).
  double mem_bandwidth_Bps = 40e9;

  // -- Kernel constants (cycles per unit) ---------------------------------
  /// update_phi: one (vertex, neighbor, community) unit of Eqns 5-6.
  /// Pre-fusion 28.0; fused gradient kernel measured ~3.6x faster.
  double phi_unit_cycles = 8.0;
  /// update_beta: one (pair, community) unit of Eqns 3-4.
  /// Pre-fusion 25.0; fused theta-ratio kernel measured ~1.8x faster.
  double beta_unit_cycles = 14.0;
  /// update_pi: one (vertex, community) normalisation unit (unchanged by
  /// kernel fusion — it is a plain normalisation sweep).
  double pi_unit_cycles = 6.0;
  /// perplexity: one (held-out pair, community) unit of Eqn 7.
  /// Pre-fusion 14.0; fused pair likelihood measured ~5.2x faster.
  double perplexity_unit_cycles = 2.7;
  /// neighbor sampling: one drawn neighbor (RNG + binary search).
  double neighbor_unit_cycles = 40.0;
  /// master's serial theta/beta refresh, per (community, i) entry.
  double theta_unit_cycles = 60.0;
  /// Master-side minibatch drawing, per minibatch vertex (RNG, hash
  /// probes, adjacency gathering). Calibrated against the 45.6 ms
  /// draw/deploy row of Table III (M = 16384).
  double draw_cost_per_vertex_s = 2.5e-6;
  /// Same draw, anchored through the prebuilt alias table
  /// (graph::MinibatchSampler::Options::alias_anchor): the Lemire
  /// rejection loop is replaced by one table lookup + coin, shaving the
  /// RNG share of the per-vertex constant. Modeled, not measured — the
  /// autotuner only needs the two paths to differ so the dimension is
  /// live.
  double draw_cost_per_vertex_alias_s = 2.1e-6;
  /// Per-miss bookkeeping of the modeled worker-side DKV row cache
  /// (DistributedOptions::dkv_cache_rows): LRU insert + eviction on the
  /// requester. Charged per missed row, so an always-missing cache is
  /// strictly worse than no cache — the autotuner must be able to lose
  /// by enabling it.
  double dkv_cache_insert_s = 1.5e-7;

  /// Seconds for `units` kernel units on one node using its thread pool.
  double kernel_time(double units, double cycles_per_unit) const {
    const double cycles = units * cycles_per_unit;
    const double effective =
        clock_hz * static_cast<double>(threads_per_node) * thread_efficiency;
    return cycles / effective;
  }

  /// Seconds for a *serial* section (e.g. the master's K-step beta
  /// normalisation).
  double serial_time(double units, double cycles_per_unit) const {
    return units * cycles_per_unit / clock_hz;
  }

  /// Seconds to stream `bytes` from local memory.
  double local_bytes_time(std::uint64_t bytes) const {
    return static_cast<double>(bytes) / mem_bandwidth_Bps;
  }

  void validate() const {
    SCD_REQUIRE(clock_hz > 0 && threads_per_node >= 1, "invalid compute model");
    SCD_REQUIRE(thread_efficiency > 0 && thread_efficiency <= 1.0,
                "thread_efficiency must be in (0, 1]");
  }
};

/// The 40-core, 2.0 GHz E7-4850 HPC Cloud machine of Section IV-D.
inline ComputeModel hpc_cloud_node(unsigned cores = 40) {
  ComputeModel m;
  m.clock_hz = 2.0e9;
  m.threads_per_node = cores;
  // 40-core NUMA box: slightly worse scaling than a 16-core node.
  m.thread_efficiency = 0.75;
  m.mem_bandwidth_Bps = 60e9;
  return m;
}

/// One 16-core DAS5 node (the default model).
inline ComputeModel das5_node(unsigned threads = 16) {
  ComputeModel m;
  m.threads_per_node = threads;
  return m;
}

/// A DAS5 node running the pre-fusion scalar kernels: the original
/// Table III calibration, kept for before/after comparisons against the
/// fused-kernel defaults above.
inline ComputeModel seed_scalar_node(unsigned threads = 16) {
  ComputeModel m;
  m.threads_per_node = threads;
  m.phi_unit_cycles = 28.0;
  m.beta_unit_cycles = 25.0;
  m.perplexity_unit_cycles = 14.0;
  return m;
}

}  // namespace scd::comm
