#include "core/parallel_sampler.h"

#include "core/phi_kernel.h"

#include <chrono>
#include <cmath>

#include "threading/parallel.h"
#include "util/error.h"

namespace scd::core {

namespace {
using steady = std::chrono::steady_clock;
}

ParallelSampler::ParallelSampler(const graph::Graph& training,
                                 const graph::HeldOutSplit* heldout,
                                 const Hyper& hyper,
                                 const SamplerOptions& options,
                                 unsigned num_threads)
    : graph_(training),
      heldout_(heldout),
      hyper_(hyper),
      options_(options),
      pool_(num_threads),
      pi_(training.num_vertices(), hyper.num_communities),
      global_(hyper.num_communities),
      minibatch_(training, heldout, options.minibatch) {
  hyper_.validate();
  options_.validate();
  pi_.init_random(options_.seed, options_.init_shape);
  global_.init_random(options_.seed, hyper_);
  terms_.refresh(global_.beta_all(), hyper_.delta);
  if (heldout_ != nullptr) {
    evaluator_ = std::make_unique<PerplexityEvaluator>(
        std::span<const graph::HeldOutPair>(heldout_->pairs()));
  }
}

void ParallelSampler::one_iteration() {
  const double eps = options_.step.eps(iteration_);
  rng::Xoshiro256 mb_rng =
      derive_rng(options_.seed, rng_label::kMinibatch, iteration_);
  const graph::Minibatch mb = minibatch_.draw(mb_rng);
  const std::uint32_t k = hyper_.num_communities;

  // --- update_phi: data-parallel over minibatch vertices ---------------
  std::vector<float> staged(mb.vertices.size() * pi_.row_width());
  pool_.parallel_for(
      0, mb.vertices.size(),
      [&](unsigned /*thread*/, std::uint64_t lo, std::uint64_t hi) {
        PhiScratch scratch(k);
        for (std::uint64_t vi = lo; vi < hi; ++vi) {
          const graph::Vertex a = mb.vertices[vi];
          rng::Xoshiro256 nbr_rng = derive_rng(
              options_.seed, rng_label::kNeighbors, iteration_, a);
          const graph::NeighborSet set = graph::draw_neighbor_set(
              nbr_rng, options_.neighbor_mode, graph_.num_vertices(), a,
              graph_.neighbors(a), options_.num_neighbors);
          std::span<float> out(staged.data() + vi * pi_.row_width(),
                               pi_.row_width());
          staged_phi_update(
              options_.seed, iteration_, a, pi_.row(a), set,
              [&](std::size_t i) { return pi_.row(set.samples[i].b); },
              terms_, eps, hyper_.normalized_alpha(), out, scratch,
              options_.noise_factor, options_.gradient_form);
        }
      });

  // --- update_pi: parallel commit --------------------------------------
  pool_.parallel_for(
      0, mb.vertices.size(),
      [&](unsigned, std::uint64_t lo, std::uint64_t hi) {
        for (std::uint64_t vi = lo; vi < hi; ++vi) {
          std::span<const float> src(staged.data() + vi * pi_.row_width(),
                                     pi_.row_width());
          std::copy(src.begin(), src.end(),
                    pi_.row(mb.vertices[vi]).begin());
        }
      });

  // --- update_beta/theta: per-thread ratio partials, folded in thread
  // order, then the factored gradient assembly (see grads.h) ------------
  std::vector<std::vector<double>> partials(
      pool_.num_threads(), std::vector<double>(std::size_t{k} * 2, 0.0));
  pool_.parallel_for(
      0, mb.pairs.size(),
      [&](unsigned t, std::uint64_t lo, std::uint64_t hi) {
        std::span<double> link(partials[t].data(), k);
        std::span<double> nonlink(partials[t].data() + k, k);
        for (std::uint64_t i = lo; i < hi; ++i) {
          const graph::MinibatchPair& p = mb.pairs[i];
          accumulate_theta_ratio(pi_.row(p.a), pi_.row(p.b), terms_, p.link,
                                 p.link ? link : nonlink);
        }
      });
  std::vector<double> ratios(std::size_t{k} * 2, 0.0);
  for (const auto& partial : partials) {
    for (std::size_t i = 0; i < ratios.size(); ++i) {
      ratios[i] += partial[i];
    }
  }
  std::vector<double> theta_grad(std::size_t{k} * 2, 0.0);
  theta_grad_from_ratios(std::span<const double>(ratios.data(), k),
                         std::span<const double>(ratios.data() + k, k),
                         global_.theta_flat(), theta_grad);
  for (double& g : theta_grad) g *= mb.scale;
  update_theta(options_.seed, iteration_, global_, theta_grad, eps,
               hyper_.eta0, hyper_.eta1, options_.noise_factor,
               options_.gradient_form);
  terms_.refresh(global_.beta_all(), hyper_.delta);

  ++iteration_;
}

void ParallelSampler::run(std::uint64_t iterations) {
  for (std::uint64_t i = 0; i < iterations; ++i) {
    const steady::time_point start = steady::now();
    one_iteration();
    elapsed_s_ += std::chrono::duration<double>(steady::now() - start).count();
    if (evaluator_ && options_.eval_interval > 0 &&
        iteration_ % options_.eval_interval == 0) {
      evaluate_perplexity();
    }
  }
}

double ParallelSampler::evaluate_perplexity() {
  SCD_REQUIRE(evaluator_ != nullptr,
              "no held-out split was given to the sampler");
  // Parallel per-pair probabilities (disjoint writes), then a serial
  // log-average over the slice (deterministic order).
  pool_.parallel_for(
      0, evaluator_->size(),
      [&](unsigned, std::uint64_t lo, std::uint64_t hi) {
        for (std::uint64_t i = lo; i < hi; ++i) {
          const graph::HeldOutPair& p = evaluator_->slice()[i];
          const double z =
              pair_likelihood(pi_.row(p.a), pi_.row(p.b), terms_, p.link);
          evaluator_->add_sample_prob(i, z);
        }
      });
  evaluator_->finish_sample();
  const double perp = PerplexityEvaluator::perplexity(
      evaluator_->sum_log_avg(), evaluator_->size());
  history_.push_back({iteration_, elapsed_s_, perp});
  return perp;
}


Checkpoint ParallelSampler::checkpoint() const {
  Checkpoint snapshot;
  snapshot.iteration = iteration_;
  snapshot.hyper = hyper_;
  snapshot.pi = pi_;
  snapshot.global = global_;
  return snapshot;
}

void ParallelSampler::restore(const Checkpoint& checkpoint) {
  SCD_REQUIRE(checkpoint.pi.num_vertices() == graph_.num_vertices(),
              "checkpoint is for a different graph size");
  SCD_REQUIRE(checkpoint.hyper.num_communities == hyper_.num_communities,
              "checkpoint is for a different K");
  pi_ = checkpoint.pi;
  global_ = checkpoint.global;
  iteration_ = checkpoint.iteration;
  terms_.refresh(global_.beta_all(), hyper_.delta);
}

}  // namespace scd::core
