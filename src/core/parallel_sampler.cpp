#include "core/parallel_sampler.h"

#include "core/phi_kernel.h"

#include <algorithm>
#include <chrono>
#include <cmath>

#include "threading/parallel.h"
#include "util/error.h"

namespace scd::core {

namespace {
using steady = std::chrono::steady_clock;
}

ParallelSampler::ParallelSampler(const graph::Graph& training,
                                 const graph::HeldOutSplit* heldout,
                                 const Hyper& hyper,
                                 const SamplerOptions& options,
                                 unsigned num_threads)
    : graph_(training),
      heldout_(heldout),
      hyper_(hyper),
      options_(options),
      pool_(num_threads),
      pi_(training.num_vertices(), hyper.num_communities),
      global_(hyper.num_communities),
      minibatch_(training, heldout, options.minibatch),
      ws_(training, minibatch_, hyper.num_communities, pi_.row_width(),
          num_threads, options.num_neighbors, /*blocked_theta=*/true) {
  hyper_.validate();
  options_.validate();
  pi_.init_random(options_.seed, options_.init_shape);
  global_.init_random(options_.seed, hyper_);
  terms_.refresh(global_.beta_all(), hyper_.delta);
  if (heldout_ != nullptr) {
    evaluator_ = std::make_unique<PerplexityEvaluator>(
        std::span<const graph::HeldOutPair>(heldout_->pairs()));
  }
}

double ParallelSampler::trace_now() {
  if (!trace_origin_set_) {
    trace_origin_ = steady::now();
    trace_origin_set_ = true;
  }
  return std::chrono::duration<double>(steady::now() - trace_origin_)
      .count();
}

void ParallelSampler::one_iteration() {
  const double eps = options_.step.eps(iteration_);
  // Wall-clock stage boundaries, recorded on lane 0 when tracing is on.
  double mark = trace_ != nullptr ? trace_now() : 0.0;
  auto record_stage = [&](trace::Stage stage) {
    if (trace_ == nullptr) return;
    const double now = trace_now();
    trace_->record_span(0, stage, mark, now, iteration_);
    mark = now;
  };
  rng::Xoshiro256 mb_rng =
      derive_rng(options_.seed, rng_label::kMinibatch, iteration_);
  minibatch_.draw_into(mb_rng, ws_.mb, ws_.mb_scratch);
  const graph::Minibatch& mb = ws_.mb;
  const std::uint32_t k = hyper_.num_communities;
  record_stage(trace::Stage::kDrawMinibatch);

  // --- update_phi: data-parallel over minibatch vertices ---------------
  ws_.staged.resize(mb.vertices.size() * pi_.row_width());
  pool_.parallel_for(
      0, mb.vertices.size(),
      [&](unsigned thread, std::uint64_t lo, std::uint64_t hi) {
        ThreadSlot& slot = ws_.slots[thread];
        for (std::uint64_t vi = lo; vi < hi; ++vi) {
          const graph::Vertex a = mb.vertices[vi];
          rng::Xoshiro256 nbr_rng = derive_rng(
              options_.seed, rng_label::kNeighbors, iteration_, a);
          graph::draw_neighbor_set_into(
              nbr_rng, options_.neighbor_mode, graph_.num_vertices(), a,
              graph_.neighbors(a), options_.num_neighbors, slot.set,
              slot.nbr);
          const graph::NeighborSet& set = slot.set;
          std::span<float> out(ws_.staged.data() + vi * pi_.row_width(),
                               pi_.row_width());
          staged_phi_update(
              options_.seed, iteration_, a, pi_.row(a), set,
              [&](std::size_t i) { return pi_.row(set.samples[i].b); },
              terms_, eps, hyper_.normalized_alpha(), out, slot.phi,
              options_.noise_factor, options_.gradient_form);
        }
      });
  record_stage(trace::Stage::kUpdatePhi);

  // --- update_pi: parallel commit --------------------------------------
  pool_.parallel_for(
      0, mb.vertices.size(),
      [&](unsigned, std::uint64_t lo, std::uint64_t hi) {
        for (std::uint64_t vi = lo; vi < hi; ++vi) {
          std::span<const float> src(
              ws_.staged.data() + vi * pi_.row_width(), pi_.row_width());
          std::copy(src.begin(), src.end(),
                    pi_.row(mb.vertices[vi]).begin());
        }
      });
  record_stage(trace::Stage::kUpdatePi);

  // --- update_beta/theta: ratio partials over kThetaBlocks fixed blocks
  // of the pair range, folded serially in block order. Block boundaries
  // depend only on the pair count, never on the thread count, so the
  // reduction — and hence the whole trajectory — is bit-identical for any
  // number of threads (see tests/core/zero_alloc_test.cpp). -------------
  std::fill(ws_.theta_partials.begin(), ws_.theta_partials.end(), 0.0);
  const std::size_t num_pairs = mb.pairs.size();
  pool_.parallel_for(
      0, kThetaBlocks,
      [&](unsigned thread, std::uint64_t blo, std::uint64_t bhi) {
        ThreadSlot& slot = ws_.slots[thread];
        for (std::uint64_t b = blo; b < bhi; ++b) {
          const auto [lo, hi] = threading::ThreadPool::chunk_bounds(
              0, num_pairs, static_cast<unsigned>(b), kThetaBlocks);
          double* base = ws_.theta_partials.data() + b * ws_.theta_stride;
          std::span<double> link(base, k);
          std::span<double> nonlink(base + k, k);
          for (std::uint64_t i = lo; i < hi; ++i) {
            const graph::MinibatchPair& p = mb.pairs[i];
            fast_accumulate_theta_ratio(pi_.row(p.a), pi_.row(p.b), terms_,
                                        p.link, p.link ? link : nonlink,
                                        slot.phi.w);
          }
        }
      });
  std::fill(ws_.ratios.begin(), ws_.ratios.end(), 0.0);
  for (std::size_t b = 0; b < kThetaBlocks; ++b) {
    const double* base = ws_.theta_partials.data() + b * ws_.theta_stride;
    for (std::size_t i = 0; i < ws_.ratios.size(); ++i) {
      ws_.ratios[i] += base[i];
    }
  }
  std::fill(ws_.theta_grad.begin(), ws_.theta_grad.end(), 0.0);
  theta_grad_from_ratios(std::span<const double>(ws_.ratios.data(), k),
                         std::span<const double>(ws_.ratios.data() + k, k),
                         global_.theta_flat(), ws_.theta_grad);
  for (double& g : ws_.theta_grad) g *= mb.scale;
  update_theta(options_.seed, iteration_, global_, ws_.theta_grad, eps,
               hyper_.eta0, hyper_.eta1, options_.noise_factor,
               options_.gradient_form);
  terms_.refresh(global_.beta_all(), hyper_.delta);
  record_stage(trace::Stage::kUpdateBetaTheta);

  ++iteration_;
}

void ParallelSampler::run(std::uint64_t iterations) {
  if (evaluator_ && options_.eval_interval > 0) {
    // Keep history appends out of the steady-state allocation profile.
    history_.reserve(history_.size() + iterations / options_.eval_interval +
                     1);
  }
  for (std::uint64_t i = 0; i < iterations; ++i) {
    const steady::time_point start = steady::now();
    one_iteration();
    elapsed_s_ += std::chrono::duration<double>(steady::now() - start).count();
    if (evaluator_ && options_.eval_interval > 0 &&
        iteration_ % options_.eval_interval == 0) {
      evaluate_perplexity();
    }
  }
}

double ParallelSampler::evaluate_perplexity() {
  SCD_REQUIRE(evaluator_ != nullptr,
              "no held-out split was given to the sampler");
  const double eval_begin = trace_ != nullptr ? trace_now() : 0.0;
  // Parallel per-pair probabilities (disjoint writes), then a serial
  // log-average over the slice (deterministic order).
  pool_.parallel_for(
      0, evaluator_->size(),
      [&](unsigned, std::uint64_t lo, std::uint64_t hi) {
        for (std::uint64_t i = lo; i < hi; ++i) {
          const graph::HeldOutPair& p = evaluator_->slice()[i];
          const double z = fast_pair_likelihood(pi_.row(p.a), pi_.row(p.b),
                                                terms_, p.link);
          evaluator_->add_sample_prob(i, z);
        }
      });
  evaluator_->finish_sample();
  const double perp = PerplexityEvaluator::perplexity(
      evaluator_->sum_log_avg(), evaluator_->size());
  if (trace_ != nullptr) {
    trace_->record_span(0, trace::Stage::kPerplexity, eval_begin,
                        trace_now(), iteration_);
  }
  history_.push_back({iteration_, elapsed_s_, perp});
  return perp;
}


Checkpoint ParallelSampler::checkpoint() const {
  Checkpoint snapshot;
  snapshot.iteration = iteration_;
  snapshot.hyper = hyper_;
  snapshot.pi = pi_;
  snapshot.global = global_;
  return snapshot;
}

void ParallelSampler::restore(const Checkpoint& checkpoint) {
  SCD_REQUIRE(checkpoint.pi.num_vertices() == graph_.num_vertices(),
              "checkpoint is for a different graph size");
  SCD_REQUIRE(checkpoint.hyper.num_communities == hyper_.num_communities,
              "checkpoint is for a different K");
  pi_ = checkpoint.pi;
  global_ = checkpoint.global;
  iteration_ = checkpoint.iteration;
  terms_.refresh(global_.beta_all(), hyper_.delta);
}

}  // namespace scd::core
