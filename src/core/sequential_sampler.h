// Algorithm 1: the sequential SG-MCMC sampler for a-MMSB.
//
// This is the reference implementation every parallel/distributed variant
// is validated against. One iteration:
//   1. draw a minibatch E_n (master RNG stream);
//   2. for every vertex a in E_n: draw V_n, accumulate the phi gradient
//      (Eqn 6) against the *current* state, stage the SGRLD update
//      (Eqn 5);
//   3. commit all staged [pi | phi_sum] rows (synchronous minibatch
//      semantics — matching the distributed version, whose update_pi is
//      barrier-separated from update_phi);
//   4. accumulate theta gradients over E_n's pairs with the *updated* pi
//      (the distributed version reads fresh rows after a barrier), apply
//      Eqn 3, refresh beta;
//   5. on eval_interval boundaries, record held-out perplexity (Eqn 7).
#pragma once

#include <memory>
#include <vector>

#include "core/checkpoint.h"
#include "core/grads.h"
#include "core/iteration_workspace.h"
#include "core/options.h"
#include "core/perplexity.h"
#include "core/state.h"
#include "graph/graph.h"
#include "graph/heldout.h"
#include "graph/minibatch.h"

namespace scd::core {

class SequentialSampler {
 public:
  /// `heldout` may be null (no perplexity tracking); both referents must
  /// outlive the sampler.
  SequentialSampler(const graph::Graph& training,
                    const graph::HeldOutSplit* heldout, const Hyper& hyper,
                    const SamplerOptions& options);

  /// Run `iterations` more iterations (cumulative across calls).
  void run(std::uint64_t iterations);

  std::uint64_t iteration() const { return iteration_; }
  const PiMatrix& pi() const { return pi_; }
  const GlobalState& global() const { return global_; }
  const Hyper& hyper() const { return hyper_; }
  const std::vector<HistoryPoint>& history() const { return history_; }

  /// Evaluate perplexity immediately (also appends to history).
  double evaluate_perplexity();

  /// Snapshot the resumable state. Because every random event derives
  /// from (seed, iteration, ...), a sampler restored from a checkpoint
  /// continues the exact trajectory of the uninterrupted run.
  Checkpoint checkpoint() const;

  /// Replace the state with a checkpoint's (graph and options stay).
  /// Throws scd::UsageError when N or K do not match.
  void restore(const Checkpoint& checkpoint);

 private:
  void one_iteration();

  const graph::Graph& graph_;
  const graph::HeldOutSplit* heldout_;
  Hyper hyper_;
  SamplerOptions options_;

  PiMatrix pi_;
  GlobalState global_;
  graph::MinibatchSampler minibatch_;
  LikelihoodTerms terms_;
  std::unique_ptr<PerplexityEvaluator> evaluator_;
  /// Reusable iteration buffers; one_iteration is allocation-free in
  /// steady state (see core/iteration_workspace.h).
  IterationWorkspace ws_;

  std::uint64_t iteration_ = 0;
  double elapsed_s_ = 0.0;
  std::vector<HistoryPoint> history_;
};

}  // namespace scd::core
