// The master -> worker minibatch deploy message of the distributed
// sampler: one worker's slice of the minibatch vertices (with their
// adjacency, the only graph data a worker owns) and of the gradient
// pairs. Serialization is flat ByteWriter/ByteReader packing; the
// _into deserializer and clear()/reserve() let both ends reuse one
// DeployShare's buffers across iterations without allocating.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "graph/graph.h"
#include "util/bytes.h"
#include "util/error.h"

namespace scd::core {

/// One worker's share of the minibatch, as shipped by the master.
struct DeployShare {
  std::uint64_t iteration = 0;
  std::vector<graph::Vertex> vertices;
  std::vector<std::uint32_t> degrees;
  std::vector<graph::Vertex> adjacency;  // concatenated per vertex
  std::vector<graph::Vertex> pair_a;
  std::vector<graph::Vertex> pair_b;
  std::vector<std::uint8_t> pair_y;

  std::span<const graph::Vertex> adj_of(std::size_t vi,
                                        std::size_t offset) const {
    return {adjacency.data() + offset, degrees[vi]};
  }

  /// Empty the share for refilling; every vector keeps its capacity.
  void clear() {
    vertices.clear();
    degrees.clear();
    adjacency.clear();
    pair_a.clear();
    pair_b.clear();
    pair_y.clear();
  }

  void reserve(std::size_t max_vertices, std::size_t max_adjacency,
               std::size_t max_pairs) {
    vertices.reserve(max_vertices);
    degrees.reserve(max_vertices);
    adjacency.reserve(max_adjacency);
    pair_a.reserve(max_pairs);
    pair_b.reserve(max_pairs);
    pair_y.reserve(max_pairs);
  }
};

inline void serialize_share(const DeployShare& share, ByteWriter& w) {
  w.put(share.iteration);
  w.put_span(std::span<const graph::Vertex>(share.vertices));
  w.put_span(std::span<const std::uint32_t>(share.degrees));
  w.put_span(std::span<const graph::Vertex>(share.adjacency));
  w.put_span(std::span<const graph::Vertex>(share.pair_a));
  w.put_span(std::span<const graph::Vertex>(share.pair_b));
  w.put_span(std::span<const std::uint8_t>(share.pair_y));
}

/// Refill `share` from a serialized payload, reusing its capacity.
inline void deserialize_share_into(std::span<const std::byte> bytes,
                                   DeployShare& share) {
  ByteReader r(bytes);
  share.iteration = r.get<std::uint64_t>();
  r.get_into(share.vertices);
  r.get_into(share.degrees);
  r.get_into(share.adjacency);
  r.get_into(share.pair_a);
  r.get_into(share.pair_b);
  r.get_into(share.pair_y);
  SCD_ASSERT(r.exhausted(), "trailing bytes in deploy share");
}

/// Wire size of a phantom worker share with the given counts.
inline std::uint64_t phantom_share_bytes(std::uint64_t vertices,
                                         std::uint64_t adjacency_entries,
                                         std::uint64_t pairs) {
  // iteration + 6 span length headers.
  return 8 + 6 * 8 + vertices * 4 /*ids*/ + vertices * 4 /*degrees*/ +
         adjacency_entries * 4 + pairs * (4 + 4 + 1);
}

}  // namespace scd::core
