// Binary checkpointing of the model state.
//
// Long SG-MCMC runs (the paper's take 3-40 hours) need resumable state.
// A checkpoint captures everything the sampler's trajectory depends on
// besides the graph: pi (with phi sums), theta/beta, the iteration
// counter, and the hyperparameters — with a magic/version header and
// structural validation on load. Format is host-endian (checkpoints are
// machine-local artifacts, like MPI restart dumps).
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>

#include "core/hyper.h"
#include "core/state.h"
#include "quant/row_codec.h"

namespace scd::core {

struct Checkpoint {
  std::uint64_t iteration = 0;
  Hyper hyper;
  PiMatrix pi{1, 1};
  GlobalState global{1};
  /// Codec the checkpoint's pi rows were stored in: kFloat32 for
  /// version-1 files, the on-disk codec tag for version-2/3 files. Rows
  /// are always decoded to floats on load; this records provenance so a
  /// resuming sampler can reject a codec mismatch instead of silently
  /// reinterpreting lossy state (DistributedOptions::resume_from).
  quant::RowCodec pi_codec = quant::RowCodec::kFloat32;
};

/// Serialize to a stream / file. Throws scd::Error on I/O failure.
/// `pi_codec` selects the on-disk pi row encoding: kFloat32 (default)
/// writes the original version-1 format byte-for-byte; fp16/int8 write a
/// version-2 checkpoint with a codec tag and quant/row_codec.h-encoded
/// rows (smaller, lossy within the codec's error bound); the sparse
/// top-R codecs write a version-3 checkpoint whose rows are
/// length-prefixed (uint32 quant::row_bytes, then exactly that many
/// bytes), so on-disk size follows the rows' true sparsity instead of
/// the dense-fallback capacity. `sparse_eps` is the top-R mass tolerance
/// used when (re-)encoding rows for a sparse pi_codec; ignored
/// otherwise. Theta is always stored exact.
void save_checkpoint(std::ostream& out, const Checkpoint& checkpoint,
                     quant::RowCodec pi_codec = quant::RowCodec::kFloat32,
                     float sparse_eps = quant::kDefaultSparseEps);
void save_checkpoint_file(
    const std::string& path, const Checkpoint& checkpoint,
    quant::RowCodec pi_codec = quant::RowCodec::kFloat32,
    float sparse_eps = quant::kDefaultSparseEps);

/// Deserialize (either version; encoded rows are decoded on load).
/// Throws scd::DataError on corrupt or mismatched content.
Checkpoint load_checkpoint(std::istream& in);
Checkpoint load_checkpoint_file(const std::string& path);

/// In-memory round-trip through the same binary format — the
/// fault-tolerant sampler's rollback snapshots, and anything else that
/// wants checkpoint semantics without touching the filesystem.
std::string checkpoint_to_bytes(
    const Checkpoint& checkpoint,
    quant::RowCodec pi_codec = quant::RowCodec::kFloat32,
    float sparse_eps = quant::kDefaultSparseEps);
Checkpoint checkpoint_from_bytes(const std::string& bytes);

}  // namespace scd::core
