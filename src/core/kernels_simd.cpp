// Fused kernel definitions. This translation unit is compiled with
// vectorization-friendly flags (see src/core/CMakeLists.txt) so the lane
// loops below turn into packed SSE/AVX arithmetic regardless of the
// global build type; the scalar reference kernels in grads.cpp keep the
// default flags and serve as the equivalence baseline.
#include "core/kernels_simd.h"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdlib>
#include <cstring>

#include "random/distributions.h"
#include "util/error.h"

// Scratch spans never alias the input rows; telling the compiler so is
// what allows the staged-w loops to vectorize.
#define SCD_RESTRICT __restrict__

namespace scd::core {

namespace {

std::atomic<KernelPath>& path_state() {
  static std::atomic<KernelPath> state = [] {
    const char* env = std::getenv("SCD_KERNELS");
    if (env != nullptr && std::strcmp(env, "scalar") == 0) {
      return KernelPath::kScalar;
    }
    return KernelPath::kFused;
  }();
  return state;
}

inline std::size_t k_of(std::span<const float> row) {
  return row.size() - 1;  // last slot is phi_sum
}

/// Fold the lane accumulators into the double carry.
inline double lane_sum(const float (&lanes)[kFusedLanes]) {
  double s = 0.0;
  for (std::size_t l = 0; l < kFusedLanes; ++l) {
    s += static_cast<double>(lanes[l]);
  }
  return s;
}

}  // namespace

KernelPath kernel_path() {
  return path_state().load(std::memory_order_relaxed);
}

void set_kernel_path(KernelPath path) {
  path_state().store(path, std::memory_order_relaxed);
}

double fused_pair_likelihood(std::span<const float> row_a,
                             std::span<const float> row_b,
                             const LikelihoodTerms& terms, bool y) {
  const std::size_t k = k_of(row_a);
  SCD_ASSERT(k_of(row_b) == k, "row width mismatch");
  const float* SCD_RESTRICT pa = row_a.data();
  const float* SCD_RESTRICT pb = row_b.data();
  const float* SCD_RESTRICT d = terms.btd(y).data();
  const float dtf = static_cast<float>(terms.dt(y));
  double z = 0.0;
  std::size_t i = 0;
  for (; i + kFusedBlock <= k; i += kFusedBlock) {
    float lanes[kFusedLanes] = {0.0f};
    for (std::size_t j = 0; j < kFusedBlock; j += kFusedLanes) {
      for (std::size_t l = 0; l < kFusedLanes; ++l) {
        const std::size_t idx = i + j + l;
        lanes[l] += pa[idx] * (dtf + pb[idx] * d[idx]);
      }
    }
    z += lane_sum(lanes);
  }
  for (; i < k; ++i) {
    z += static_cast<double>(pa[i]) * (dtf + pb[i] * d[i]);
  }
  return std::max(z, kMinZ);
}

double fused_accumulate_phi_grad(std::span<const float> row_a,
                                 std::span<const float> row_b,
                                 const LikelihoodTerms& terms, bool y,
                                 std::span<double> grad,
                                 std::span<float> w_scratch) {
  const std::size_t k = k_of(row_a);
  SCD_ASSERT(grad.size() == k, "gradient size mismatch");
  SCD_ASSERT(w_scratch.size() >= k, "w scratch too small");
  const float* SCD_RESTRICT pa = row_a.data();
  const float* SCD_RESTRICT pb = row_b.data();
  const float* SCD_RESTRICT d = terms.btd(y).data();
  float* SCD_RESTRICT w = w_scratch.data();
  const float dtf = static_cast<float>(terms.dt(y));
  const double phi_sum = row_a[k];
  SCD_ASSERT(phi_sum > 0.0, "phi_sum must be positive");

  // Pass over the inputs: stage w_k and accumulate Z simultaneously.
  double z = 0.0;
  std::size_t i = 0;
  for (; i + kFusedBlock <= k; i += kFusedBlock) {
    float lanes[kFusedLanes] = {0.0f};
    for (std::size_t j = 0; j < kFusedBlock; j += kFusedLanes) {
      for (std::size_t l = 0; l < kFusedLanes; ++l) {
        const std::size_t idx = i + j + l;
        const float wi = dtf + pb[idx] * d[idx];
        w[idx] = wi;
        lanes[l] += pa[idx] * wi;
      }
    }
    z += lane_sum(lanes);
  }
  for (; i < k; ++i) {
    const float wi = dtf + pb[i] * d[i];
    w[i] = wi;
    z += static_cast<double>(pa[i]) * wi;
  }
  z = std::max(z, kMinZ);

  // Gradient from the staged w — touches only the scratch, not the rows.
  const double inv_z = 1.0 / z;
  const double inv_phi_sum = 1.0 / phi_sum;
  double* SCD_RESTRICT g = grad.data();
  for (std::size_t j = 0; j < k; ++j) {
    g[j] += (static_cast<double>(w[j]) * inv_z - 1.0) * inv_phi_sum;
  }
  return z;
}

double fused_accumulate_theta_ratio(std::span<const float> row_a,
                                    std::span<const float> row_b,
                                    const LikelihoodTerms& terms, bool y,
                                    std::span<double> ratio,
                                    std::span<float> f_scratch) {
  const std::size_t k = k_of(row_a);
  SCD_ASSERT(ratio.size() == k, "ratio size mismatch");
  SCD_ASSERT(f_scratch.size() >= k, "f scratch too small");
  const float* SCD_RESTRICT pa = row_a.data();
  const float* SCD_RESTRICT pb = row_b.data();
  const float* SCD_RESTRICT bt = terms.bt(y).data();
  const float* SCD_RESTRICT d = terms.btd(y).data();
  float* SCD_RESTRICT f = f_scratch.data();
  const float dtf = static_cast<float>(terms.dt(y));

  // pa * w = dt * pa + (pa * pb) * (bt - dt), and the ratio numerator is
  // f = (pa * pb) * bt — both come from the one pa * pb product.
  double z = 0.0;
  std::size_t i = 0;
  for (; i + kFusedBlock <= k; i += kFusedBlock) {
    float lanes[kFusedLanes] = {0.0f};
    for (std::size_t j = 0; j < kFusedBlock; j += kFusedLanes) {
      for (std::size_t l = 0; l < kFusedLanes; ++l) {
        const std::size_t idx = i + j + l;
        const float prod = pa[idx] * pb[idx];
        f[idx] = prod * bt[idx];
        lanes[l] += dtf * pa[idx] + prod * d[idx];
      }
    }
    z += lane_sum(lanes);
  }
  for (; i < k; ++i) {
    const float prod = pa[i] * pb[i];
    f[i] = prod * bt[i];
    z += static_cast<double>(dtf * pa[i]) + static_cast<double>(prod * d[i]);
  }
  z = std::max(z, kMinZ);

  const double inv_z = 1.0 / z;
  double* SCD_RESTRICT r = ratio.data();
  for (std::size_t j = 0; j < k; ++j) {
    r[j] += static_cast<double>(f[j]) * inv_z;
  }
  return z;
}

void fused_update_phi_row(std::uint64_t seed, std::uint64_t iteration,
                          std::uint32_t vertex, std::span<float> row,
                          std::span<const double> grad, double scale,
                          double eps, double alpha, double noise_factor,
                          GradientForm form,
                          std::span<double> noise_scratch) {
  const std::size_t k = k_of(row);
  SCD_ASSERT(grad.size() == k, "gradient size mismatch");
  SCD_ASSERT(noise_scratch.size() >= k, "noise scratch too small");

  // Stage the Langevin noise first: the polar-rejection draws are
  // inherently serial, and splitting them out leaves the SGRLD step below
  // as a pure elementwise pass. Same stream, same order as the scalar
  // path, so the drawn values are identical.
  rng::Xoshiro256 noise_rng =
      derive_rng(seed, rng_label::kPhiNoise, iteration, vertex);
  const double noise_scale = noise_factor * std::sqrt(eps);
  double* SCD_RESTRICT noise = noise_scratch.data();
  for (std::size_t i = 0; i < k; ++i) {
    noise[i] = rng::sample_standard_normal(noise_rng) * noise_scale;
  }

  const double phi_sum = row[k];
  const bool precond = form == GradientForm::kPreconditioned;
  const double half_eps = 0.5 * eps;
  float* SCD_RESTRICT r = row.data();
  const double* SCD_RESTRICT g = grad.data();

  // Elementwise SGRLD step; new_sum accumulates in independent double
  // lanes (same values per element as the scalar path — only the sum's
  // association differs).
  double new_sum = 0.0;
  std::size_t i = 0;
  constexpr std::size_t kSumLanes = 4;
  for (; i + kFusedBlock <= k; i += kFusedBlock) {
    double lanes[kSumLanes] = {0.0};
    for (std::size_t j = 0; j < kFusedBlock; j += kSumLanes) {
      for (std::size_t l = 0; l < kSumLanes; ++l) {
        const std::size_t idx = i + j + l;
        const double phi = static_cast<double>(r[idx]) * phi_sum;
        const double gg = precond ? phi * g[idx] : g[idx];
        double updated = phi + half_eps * (alpha - phi + scale * gg) +
                         std::sqrt(phi) * noise[idx];
        updated = std::abs(updated);  // SGRLD reflection at zero
        updated = std::max(updated, kParamFloor);
        r[idx] = static_cast<float>(updated);
        lanes[l] += updated;
      }
    }
    for (std::size_t l = 0; l < kSumLanes; ++l) new_sum += lanes[l];
  }
  for (; i < k; ++i) {
    const double phi = static_cast<double>(r[i]) * phi_sum;
    const double gg = precond ? phi * g[i] : g[i];
    double updated = phi + half_eps * (alpha - phi + scale * gg) +
                     std::sqrt(phi) * noise[i];
    updated = std::abs(updated);
    updated = std::max(updated, kParamFloor);
    r[i] = static_cast<float>(updated);
    new_sum += updated;
  }

  const double inv = 1.0 / new_sum;
  for (std::size_t j = 0; j < k; ++j) {
    r[j] = static_cast<float>(static_cast<double>(r[j]) * inv);
  }
  r[k] = static_cast<float>(new_sum);
}

// --- dequant-fused kernels ---------------------------------------------
// The enc variants are the same lane/block skeletons as above, templated
// over a per-codec element reader so dequantization happens in-register
// inside the loop. The fp32 reader is a raw float load, which makes the
// kFloat32 instantiations replicate the float-span kernels' arithmetic
// operation for operation — same order, same intermediate types — and
// therefore bit-identically.

namespace {

/// Plain little-endian float load: kFloat32 rows and decoded caller
/// rows. Goes through memcpy because a sparse row's value block sits
/// right after the u16 index section, which leaves it only 2-byte
/// aligned when nnz is odd.
struct Fp32Reader {
  const std::byte* p;
  explicit Fp32Reader(const std::byte* row) : p(row) {}
  explicit Fp32Reader(const float* row)
      : p(reinterpret_cast<const std::byte*>(row)) {}
  float operator[](std::size_t i) const {
    float v;
    std::memcpy(&v, p + i * sizeof(v), sizeof(v));
    return v;
  }
};

/// IEEE half load + widen (quant::RowCodec::kFp16 layout).
struct Fp16Reader {
  const std::byte* p;
  explicit Fp16Reader(const std::byte* row) : p(row) {}
  float operator[](std::size_t i) const {
    std::uint16_t h;
    std::memcpy(&h, p + i * sizeof(h), sizeof(h));
    return quant::half_to_float(h);
  }
};

/// Per-row affine dequant (quant::RowCodec::kInt8 layout): one fma per
/// element against the row's scale/offset header.
struct Int8Reader {
  const std::byte* codes;
  float scale;
  float offset;
  explicit Int8Reader(const std::byte* row) {
    quant::Int8Header header;
    std::memcpy(&header, row, quant::kInt8HeaderBytes);
    scale = header.scale;
    offset = header.offset;
    codes = row + quant::kInt8HeaderBytes;
  }
  float operator[](std::size_t i) const {
    return offset +
           scale * static_cast<float>(static_cast<std::uint8_t>(codes[i]));
  }
};

template <typename RowA, typename RowB>
double fused_pair_likelihood_t(RowA pa, RowB pb, std::size_t k,
                               const LikelihoodTerms& terms, bool y) {
  const float* SCD_RESTRICT d = terms.btd(y).data();
  const float dtf = static_cast<float>(terms.dt(y));
  double z = 0.0;
  std::size_t i = 0;
  for (; i + kFusedBlock <= k; i += kFusedBlock) {
    float lanes[kFusedLanes] = {0.0f};
    for (std::size_t j = 0; j < kFusedBlock; j += kFusedLanes) {
      for (std::size_t l = 0; l < kFusedLanes; ++l) {
        const std::size_t idx = i + j + l;
        lanes[l] += pa[idx] * (dtf + pb[idx] * d[idx]);
      }
    }
    z += lane_sum(lanes);
  }
  for (; i < k; ++i) {
    z += static_cast<double>(pa[i]) * (dtf + pb[i] * d[i]);
  }
  return std::max(z, kMinZ);
}

template <typename RowA, typename RowB>
double pair_likelihood_t(RowA ra, RowB rb, std::size_t k,
                         const LikelihoodTerms& terms, bool y) {
  const std::span<const float> bt = terms.bt(y);
  const double dt = terms.dt(y);
  double z = 0.0;
  for (std::size_t i = 0; i < k; ++i) {
    const double pa = ra[i];
    const double pb = rb[i];
    z += pa * (pb * static_cast<double>(bt[i]) + dt * (1.0 - pb));
  }
  return std::max(z, kMinZ);
}

template <typename RowB>
double fused_accumulate_phi_grad_t(const float* SCD_RESTRICT pa,
                                   double phi_sum, RowB pb, std::size_t k,
                                   const LikelihoodTerms& terms, bool y,
                                   std::span<double> grad,
                                   std::span<float> w_scratch) {
  SCD_ASSERT(grad.size() == k, "gradient size mismatch");
  SCD_ASSERT(w_scratch.size() >= k, "w scratch too small");
  const float* SCD_RESTRICT d = terms.btd(y).data();
  float* SCD_RESTRICT w = w_scratch.data();
  const float dtf = static_cast<float>(terms.dt(y));
  SCD_ASSERT(phi_sum > 0.0, "phi_sum must be positive");

  double z = 0.0;
  std::size_t i = 0;
  for (; i + kFusedBlock <= k; i += kFusedBlock) {
    float lanes[kFusedLanes] = {0.0f};
    for (std::size_t j = 0; j < kFusedBlock; j += kFusedLanes) {
      for (std::size_t l = 0; l < kFusedLanes; ++l) {
        const std::size_t idx = i + j + l;
        const float wi = dtf + pb[idx] * d[idx];
        w[idx] = wi;
        lanes[l] += pa[idx] * wi;
      }
    }
    z += lane_sum(lanes);
  }
  for (; i < k; ++i) {
    const float wi = dtf + pb[i] * d[i];
    w[i] = wi;
    z += static_cast<double>(pa[i]) * wi;
  }
  z = std::max(z, kMinZ);

  const double inv_z = 1.0 / z;
  const double inv_phi_sum = 1.0 / phi_sum;
  double* SCD_RESTRICT g = grad.data();
  for (std::size_t j = 0; j < k; ++j) {
    g[j] += (static_cast<double>(w[j]) * inv_z - 1.0) * inv_phi_sum;
  }
  return z;
}

template <typename RowB>
double accumulate_phi_grad_t(std::span<const float> row_a, RowB rb,
                             std::size_t k, const LikelihoodTerms& terms,
                             bool y, std::span<double> grad) {
  SCD_ASSERT(grad.size() == k, "gradient size mismatch");
  const std::span<const float> bt = terms.bt(y);
  const double dt = terms.dt(y);
  const double phi_sum = row_a[k];
  SCD_ASSERT(phi_sum > 0.0, "phi_sum must be positive");

  double z = 0.0;
  for (std::size_t i = 0; i < k; ++i) {
    const double pb = rb[i];
    const double w = pb * static_cast<double>(bt[i]) + dt * (1.0 - pb);
    z += static_cast<double>(row_a[i]) * w;
  }
  z = std::max(z, kMinZ);
  const double inv_z = 1.0 / z;
  const double inv_phi_sum = 1.0 / phi_sum;
  for (std::size_t i = 0; i < k; ++i) {
    const double pb = rb[i];
    const double w = pb * static_cast<double>(bt[i]) + dt * (1.0 - pb);
    grad[i] += (w * inv_z - 1.0) * inv_phi_sum;
  }
  return z;
}

template <typename RowA, typename RowB>
double fused_accumulate_theta_ratio_t(RowA pa, RowB pb, std::size_t k,
                                      const LikelihoodTerms& terms, bool y,
                                      std::span<double> ratio,
                                      std::span<float> f_scratch) {
  SCD_ASSERT(ratio.size() == k, "ratio size mismatch");
  SCD_ASSERT(f_scratch.size() >= k, "f scratch too small");
  const float* SCD_RESTRICT bt = terms.bt(y).data();
  const float* SCD_RESTRICT d = terms.btd(y).data();
  float* SCD_RESTRICT f = f_scratch.data();
  const float dtf = static_cast<float>(terms.dt(y));

  double z = 0.0;
  std::size_t i = 0;
  for (; i + kFusedBlock <= k; i += kFusedBlock) {
    float lanes[kFusedLanes] = {0.0f};
    for (std::size_t j = 0; j < kFusedBlock; j += kFusedLanes) {
      for (std::size_t l = 0; l < kFusedLanes; ++l) {
        const std::size_t idx = i + j + l;
        const float prod = pa[idx] * pb[idx];
        f[idx] = prod * bt[idx];
        lanes[l] += dtf * pa[idx] + prod * d[idx];
      }
    }
    z += lane_sum(lanes);
  }
  for (; i < k; ++i) {
    const float prod = pa[i] * pb[i];
    f[i] = prod * bt[i];
    z += static_cast<double>(dtf * pa[i]) + static_cast<double>(prod * d[i]);
  }
  z = std::max(z, kMinZ);

  const double inv_z = 1.0 / z;
  double* SCD_RESTRICT r = ratio.data();
  for (std::size_t j = 0; j < k; ++j) {
    r[j] += static_cast<double>(f[j]) * inv_z;
  }
  return z;
}

template <typename RowA, typename RowB>
double accumulate_theta_ratio_t(RowA ra, RowB rb, std::size_t k,
                                const LikelihoodTerms& terms, bool y,
                                std::span<double> ratio) {
  SCD_ASSERT(ratio.size() == k, "ratio size mismatch");
  const std::span<const float> bt = terms.bt(y);
  const double z = pair_likelihood_t(ra, rb, k, terms, y);
  const double inv_z = 1.0 / z;
  for (std::size_t i = 0; i < k; ++i) {
    const double f = static_cast<double>(ra[i]) *
                     static_cast<double>(rb[i]) *
                     static_cast<double>(bt[i]);
    ratio[i] += f * inv_z;
  }
  return z;
}

inline void check_encoded(quant::RowCodec codec,
                          std::span<const std::byte> row, std::uint32_t k) {
  SCD_ASSERT(row.size() == quant::encoded_bytes(codec, k + 1),
             "encoded row size mismatch");
}

/// Invoke `fn(reader_a, reader_b)` with the reader type for `codec`.
/// Dense codecs only — the sparse codecs are parsed by the sparse kernel
/// section below, never read through a flat dense reader.
template <typename Fn>
double with_readers(quant::RowCodec codec, std::span<const std::byte> row_a,
                    std::span<const std::byte> row_b, Fn&& fn) {
  switch (codec) {
    case quant::RowCodec::kFloat32:
      return fn(Fp32Reader(row_a.data()), Fp32Reader(row_b.data()));
    case quant::RowCodec::kFp16:
      return fn(Fp16Reader(row_a.data()), Fp16Reader(row_b.data()));
    case quant::RowCodec::kInt8:
      return fn(Int8Reader(row_a.data()), Int8Reader(row_b.data()));
    case quant::RowCodec::kSparseTopR:
    case quant::RowCodec::kSparseTopRFp16:
    case quant::RowCodec::kSparseTopRInt8:
      break;
  }
  SCD_ASSERT(false, "dense reader requested for a sparse codec");
  return 0.0;
}

/// Invoke `fn(reader_b)` with the reader type for `codec` (dense only).
template <typename Fn>
double with_reader(quant::RowCodec codec, std::span<const std::byte> row,
                   Fn&& fn) {
  switch (codec) {
    case quant::RowCodec::kFloat32:
      return fn(Fp32Reader(row.data()));
    case quant::RowCodec::kFp16:
      return fn(Fp16Reader(row.data()));
    case quant::RowCodec::kInt8:
      return fn(Int8Reader(row.data()));
    case quant::RowCodec::kSparseTopR:
    case quant::RowCodec::kSparseTopRFp16:
    case quant::RowCodec::kSparseTopRInt8:
      break;
  }
  SCD_ASSERT(false, "dense reader requested for a sparse codec");
  return 0.0;
}

// --- sparse row parsing and kernels ------------------------------------

/// Parsed header/offsets of one encoded sparse top-R row. In sparse form
/// `payload` is the value block (read through the value codec's reader);
/// for a dense-fallback row it is the value codec's complete dense row.
struct SparseView {
  std::uint32_t k = 0;
  std::uint32_t nnz = 0;
  bool fallback = false;
  bool idx16 = true;
  float eps = 0.0f;
  const std::byte* indices = nullptr;
  const std::byte* payload = nullptr;

  std::uint32_t index(std::uint32_t i) const {
    if (idx16) {
      std::uint16_t v;
      std::memcpy(&v, indices + std::size_t{i} * sizeof(v), sizeof(v));
      return v;
    }
    std::uint32_t v;
    std::memcpy(&v, indices + std::size_t{i} * sizeof(v), sizeof(v));
    return v;
  }
};

SparseView parse_sparse(quant::RowCodec codec,
                        std::span<const std::byte> row, std::uint32_t k) {
  SparseView v;
  v.k = k;
  v.idx16 = quant::sparse_index_bytes(k) == sizeof(std::uint16_t);
  quant::SparseHeader header;
  std::memcpy(&header, row.data(), quant::kSparseHeaderBytes);
  if (header.nnz >= k) {
    v.fallback = true;
    v.nnz = k;
    v.payload = row.data() + quant::kSparseHeaderBytes;
  } else {
    v.nnz = header.nnz;
    v.eps = v.nnz < k
                ? header.residual_mass / static_cast<float>(k - v.nnz)
                : 0.0f;
    v.indices = row.data() + quant::kSparseHeaderBytes;
    v.payload =
        v.indices + std::size_t{v.nnz} * quant::sparse_index_bytes(k);
  }
  (void)codec;
  return v;
}

/// Invoke `fn(values)` with the value-codec reader over a value block or
/// fallback payload.
template <typename Fn>
double with_value_reader(quant::RowCodec value, const std::byte* p,
                         Fn&& fn) {
  switch (value) {
    case quant::RowCodec::kFloat32:
      return fn(Fp32Reader(p));
    case quant::RowCodec::kFp16:
      return fn(Fp16Reader(p));
    case quant::RowCodec::kInt8:
      return fn(Int8Reader(p));
    default:
      break;
  }
  SCD_ASSERT(false, "sparse value codec must be dense");
  return 0.0;
}

template <typename Fn>
double with_two_value_readers(quant::RowCodec value, const std::byte* a,
                              const std::byte* b, Fn&& fn) {
  switch (value) {
    case quant::RowCodec::kFloat32:
      return fn(Fp32Reader(a), Fp32Reader(b));
    case quant::RowCodec::kFp16:
      return fn(Fp16Reader(a), Fp16Reader(b));
    case quant::RowCodec::kInt8:
      return fn(Int8Reader(a), Int8Reader(b));
    default:
      break;
  }
  SCD_ASSERT(false, "sparse value codec must be dense");
  return 0.0;
}

/// Decoded mass (eps*(k-nnz) + sum of kept values) and btd-weighted
/// support sum t = sum_{i in S} (v_i - eps) * d[idx_i] of a sparse-form
/// row. O(nnz).
template <typename VR>
void sparse_mass_t(const SparseView& v, VR values, const float* d,
                   double& mass, double& t) {
  mass = static_cast<double>(v.eps) * (v.k - v.nnz);
  t = 0.0;
  for (std::uint32_t i = 0; i < v.nnz; ++i) {
    const double val = values[i];
    mass += val;
    t += (val - static_cast<double>(v.eps)) *
         static_cast<double>(d[v.index(i)]);
  }
}

/// Z for two sparse-form rows: Z = dt*Ma + eps_a*eps_b*btd_sum +
/// eps_a*Tb + eps_b*Ta + merge-intersect. O(nnz_a + nnz_b).
template <typename VA, typename VB>
double sparse_pair_z(const SparseView& a, VA va, const SparseView& b,
                     VB vb, const LikelihoodTerms& terms, bool y) {
  const float* SCD_RESTRICT d = terms.btd(y).data();
  const double dt = terms.dt(y);
  double ma = 0.0, ta = 0.0, mb = 0.0, tb = 0.0;
  sparse_mass_t(a, va, d, ma, ta);
  sparse_mass_t(b, vb, d, mb, tb);
  double inter = 0.0;
  std::uint32_t i = 0, j = 0;
  while (i < a.nnz && j < b.nnz) {
    const std::uint32_t ia = a.index(i);
    const std::uint32_t ib = b.index(j);
    if (ia < ib) {
      ++i;
    } else if (ib < ia) {
      ++j;
    } else {
      inter += (static_cast<double>(va[i]) - a.eps) *
               (static_cast<double>(vb[j]) - b.eps) *
               static_cast<double>(d[ia]);
      ++i;
      ++j;
    }
  }
  const double z = dt * ma +
                   static_cast<double>(a.eps) *
                       static_cast<double>(b.eps) * terms.btd_sum(y) +
                   static_cast<double>(a.eps) * tb +
                   static_cast<double>(b.eps) * ta + inter;
  return std::max(z, kMinZ);
}

/// Z with a sparse-form `a` and a dense reader `pb` (fallback side).
/// O(K) over the dense side, O(nnz_a) over the support.
template <typename VA, typename RB>
double sparse_dense_pair_z(const SparseView& a, VA va, RB pb,
                           std::uint32_t k, const LikelihoodTerms& terms,
                           bool y) {
  const float* SCD_RESTRICT d = terms.btd(y).data();
  const double dt = terms.dt(y);
  double spb = 0.0;
  for (std::uint32_t j = 0; j < k; ++j) {
    spb += static_cast<double>(pb[j]) * static_cast<double>(d[j]);
  }
  double ma = static_cast<double>(a.eps) * (a.k - a.nnz);
  double s = 0.0;
  for (std::uint32_t i = 0; i < a.nnz; ++i) {
    const std::uint32_t idx = a.index(i);
    const double sa = static_cast<double>(va[i]) - a.eps;
    ma += va[i];
    s += sa * static_cast<double>(pb[idx]) * static_cast<double>(d[idx]);
  }
  return std::max(dt * ma + static_cast<double>(a.eps) * spb + s, kMinZ);
}

/// Z with a dense reader `pa` (fallback side) and a sparse-form `b`.
template <typename RA, typename VB>
double dense_sparse_pair_z(RA pa, const SparseView& b, VB vb,
                           std::uint32_t k, const LikelihoodTerms& terms,
                           bool y) {
  const float* SCD_RESTRICT d = terms.btd(y).data();
  const double dt = terms.dt(y);
  double ma = 0.0, sad = 0.0;
  for (std::uint32_t j = 0; j < k; ++j) {
    const double p = pa[j];
    ma += p;
    sad += p * static_cast<double>(d[j]);
  }
  double s = 0.0;
  for (std::uint32_t i = 0; i < b.nnz; ++i) {
    const std::uint32_t idx = b.index(i);
    s += static_cast<double>(pa[idx]) *
         (static_cast<double>(vb[i]) - b.eps) * static_cast<double>(d[idx]);
  }
  return std::max(dt * ma + static_cast<double>(b.eps) * sad + s, kMinZ);
}

/// Shared sparse pair likelihood; `fused_dense` picks the dense template
/// for fallback x fallback pairs.
double sparse_pair_likelihood_impl(quant::RowCodec codec,
                                   std::span<const std::byte> row_a,
                                   std::span<const std::byte> row_b,
                                   std::uint32_t k,
                                   const LikelihoodTerms& terms, bool y,
                                   bool fused_dense) {
  const quant::RowCodec value = quant::value_codec(codec);
  const SparseView a = parse_sparse(codec, row_a, k);
  const SparseView b = parse_sparse(codec, row_b, k);
  if (a.fallback && b.fallback) {
    return with_two_value_readers(
        value, a.payload, b.payload, [&](auto ra, auto rb) {
          return fused_dense ? fused_pair_likelihood_t(ra, rb, k, terms, y)
                             : pair_likelihood_t(ra, rb, k, terms, y);
        });
  }
  if (a.fallback) {
    return with_two_value_readers(
        value, a.payload, b.payload, [&](auto ra, auto vb) {
          return dense_sparse_pair_z(ra, b, vb, k, terms, y);
        });
  }
  if (b.fallback) {
    return with_two_value_readers(
        value, a.payload, b.payload, [&](auto va, auto rb) {
          return sparse_dense_pair_z(a, va, rb, k, terms, y);
        });
  }
  return with_two_value_readers(
      value, a.payload, b.payload, [&](auto va, auto vb) {
        return sparse_pair_z(a, va, b, vb, terms, y);
      });
}

/// Mixed theta ratio: one dense reader side, one sparse-form side.
/// O(K) over the dense side plus O(nnz) over the support; the per-pair
/// epsilon contribution cannot fold into eps_coef because the dense row
/// varies per community, so it is charged directly.
template <typename RD, typename VS>
double mixed_theta_ratio(RD rd, const SparseView& s, VS vs,
                         std::uint32_t k, const LikelihoodTerms& terms,
                         bool y, bool dense_is_a, std::span<double> ratio) {
  const double z = dense_is_a
                       ? dense_sparse_pair_z(rd, s, vs, k, terms, y)
                       : sparse_dense_pair_z(s, vs, rd, k, terms, y);
  const double inv_z = 1.0 / z;
  const float* SCD_RESTRICT bt = terms.bt(y).data();
  const double eps_coef = static_cast<double>(s.eps) * inv_z;
  double* SCD_RESTRICT r = ratio.data();
  for (std::uint32_t j = 0; j < k; ++j) {
    r[j] += static_cast<double>(rd[j]) * static_cast<double>(bt[j]) *
            eps_coef;
  }
  for (std::uint32_t i = 0; i < s.nnz; ++i) {
    const std::uint32_t idx = s.index(i);
    r[idx] += static_cast<double>(rd[idx]) *
              (static_cast<double>(vs[i]) - s.eps) *
              static_cast<double>(bt[idx]) * inv_z;
  }
  return z;
}

/// Both-sparse theta ratio: support scatters plus the uniform
/// eps_a*eps_b term folded into eps_coef for the epilogue. O(nnz_a+nnz_b).
template <typename VA, typename VB>
double sparse_sparse_theta_ratio(const SparseView& a, VA va,
                                 const SparseView& b, VB vb,
                                 const LikelihoodTerms& terms, bool y,
                                 std::span<double> ratio,
                                 double& eps_coef) {
  const double z = sparse_pair_z(a, va, b, vb, terms, y);
  const double inv_z = 1.0 / z;
  const float* SCD_RESTRICT bt = terms.bt(y).data();
  double* SCD_RESTRICT r = ratio.data();
  const double ea = a.eps;
  const double eb = b.eps;
  for (std::uint32_t i = 0; i < a.nnz; ++i) {
    const std::uint32_t idx = a.index(i);
    r[idx] += eb * (static_cast<double>(va[i]) - ea) *
              static_cast<double>(bt[idx]) * inv_z;
  }
  for (std::uint32_t i = 0; i < b.nnz; ++i) {
    const std::uint32_t idx = b.index(i);
    r[idx] += ea * (static_cast<double>(vb[i]) - eb) *
              static_cast<double>(bt[idx]) * inv_z;
  }
  std::uint32_t i = 0, j = 0;
  while (i < a.nnz && j < b.nnz) {
    const std::uint32_t ia = a.index(i);
    const std::uint32_t ib = b.index(j);
    if (ia < ib) {
      ++i;
    } else if (ib < ia) {
      ++j;
    } else {
      r[ia] += (static_cast<double>(va[i]) - ea) *
               (static_cast<double>(vb[j]) - eb) *
               static_cast<double>(bt[ia]) * inv_z;
      ++i;
      ++j;
    }
  }
  eps_coef += ea * eb * inv_z;
  return z;
}

}  // namespace

// --- sparse kernels ----------------------------------------------------

SparsePhiStage sparse_phi_stage(std::span<const float> row_a,
                                const LikelihoodTerms& terms) {
  const std::size_t k = k_of(row_a);
  const float* SCD_RESTRICT pa = row_a.data();
  const float* SCD_RESTRICT d0 = terms.btd(false).data();
  const float* SCD_RESTRICT d1 = terms.btd(true).data();
  SparsePhiStage stage;
  for (std::size_t j = 0; j < k; ++j) {
    const double p = pa[j];
    stage.mass += p;
    stage.sa[0] += p * static_cast<double>(d0[j]);
    stage.sa[1] += p * static_cast<double>(d1[j]);
  }
  return stage;
}

double sparse_accumulate_phi_grad_enc(quant::RowCodec codec,
                                      std::span<const float> row_a,
                                      const SparsePhiStage& stage,
                                      std::span<const std::byte> row_b,
                                      const LikelihoodTerms& terms, bool y,
                                      std::span<double> grad,
                                      SparsePhiAccum& acc) {
  const std::size_t k = k_of(row_a);
  SCD_ASSERT(grad.size() == k, "gradient size mismatch");
  check_encoded(codec, row_b, static_cast<std::uint32_t>(k));
  const quant::RowCodec value = quant::value_codec(codec);
  const SparseView b =
      parse_sparse(codec, row_b, static_cast<std::uint32_t>(k));
  if (b.fallback) {
    // Dense-fallback neighbor: the full O(K) dense kernel writes the
    // complete gradient directly; nothing lands in the accumulator, so
    // the epilogue stays correct.
    return with_value_reader(value, b.payload, [&](auto rb) {
      return accumulate_phi_grad_t(row_a, rb, k, terms, y, grad);
    });
  }
  const double phi_sum = row_a[k];
  SCD_ASSERT(phi_sum > 0.0, "phi_sum must be positive");
  const float* SCD_RESTRICT pa = row_a.data();
  const float* SCD_RESTRICT d = terms.btd(y).data();
  const double dt = terms.dt(y);
  const double eps_b = b.eps;
  return with_value_reader(value, b.payload, [&](auto vb) {
    double s = 0.0;
    for (std::uint32_t i = 0; i < b.nnz; ++i) {
      const std::uint32_t idx = b.index(i);
      s += static_cast<double>(pa[idx]) *
           (static_cast<double>(vb[i]) - eps_b) * static_cast<double>(d[idx]);
    }
    const double z =
        std::max(dt * stage.mass + eps_b * stage.sa[y ? 1 : 0] + s, kMinZ);
    const double inv_z = 1.0 / z;
    const double coef = inv_z / phi_sum;
    double* SCD_RESTRICT g = grad.data();
    for (std::uint32_t i = 0; i < b.nnz; ++i) {
      const std::uint32_t idx = b.index(i);
      g[idx] += (static_cast<double>(vb[i]) - eps_b) *
                static_cast<double>(d[idx]) * coef;
    }
    acc.c0 += (dt * inv_z - 1.0) / phi_sum;
    acc.ceps[y ? 1 : 0] += eps_b * coef;
    return z;
  });
}

void sparse_phi_epilogue(const SparsePhiAccum& acc,
                         const LikelihoodTerms& terms,
                         std::span<double> grad) {
  const std::size_t k = grad.size();
  const float* SCD_RESTRICT d0 = terms.btd(false).data();
  const float* SCD_RESTRICT d1 = terms.btd(true).data();
  double* SCD_RESTRICT g = grad.data();
  for (std::size_t j = 0; j < k; ++j) {
    g[j] += acc.c0 + acc.ceps[0] * static_cast<double>(d0[j]) +
            acc.ceps[1] * static_cast<double>(d1[j]);
  }
}

double sparse_accumulate_theta_ratio_enc(quant::RowCodec codec,
                                         std::span<const std::byte> row_a,
                                         std::span<const std::byte> row_b,
                                         std::uint32_t k,
                                         const LikelihoodTerms& terms,
                                         bool y, std::span<double> ratio,
                                         double& eps_coef) {
  SCD_ASSERT(ratio.size() == k, "ratio size mismatch");
  check_encoded(codec, row_a, k);
  check_encoded(codec, row_b, k);
  const quant::RowCodec value = quant::value_codec(codec);
  const SparseView a = parse_sparse(codec, row_a, k);
  const SparseView b = parse_sparse(codec, row_b, k);
  if (a.fallback && b.fallback) {
    return with_two_value_readers(
        value, a.payload, b.payload, [&](auto ra, auto rb) {
          return accumulate_theta_ratio_t(ra, rb, k, terms, y, ratio);
        });
  }
  if (a.fallback) {
    return with_two_value_readers(
        value, a.payload, b.payload, [&](auto ra, auto vb) {
          return mixed_theta_ratio(ra, b, vb, k, terms, y,
                                   /*dense_is_a=*/true, ratio);
        });
  }
  if (b.fallback) {
    return with_two_value_readers(
        value, a.payload, b.payload, [&](auto va, auto rb) {
          return mixed_theta_ratio(rb, a, va, k, terms, y,
                                   /*dense_is_a=*/false, ratio);
        });
  }
  return with_two_value_readers(
      value, a.payload, b.payload, [&](auto va, auto vb) {
        return sparse_sparse_theta_ratio(a, va, b, vb, terms, y, ratio,
                                         eps_coef);
      });
}

void sparse_theta_epilogue(double eps_coef_link, double eps_coef_nonlink,
                           const LikelihoodTerms& terms,
                           std::span<double> ratio_link,
                           std::span<double> ratio_nonlink) {
  const std::size_t k = ratio_link.size();
  SCD_ASSERT(ratio_nonlink.size() == k, "ratio size mismatch");
  const float* SCD_RESTRICT btl = terms.bt(true).data();
  const float* SCD_RESTRICT btn = terms.bt(false).data();
  double* SCD_RESTRICT rl = ratio_link.data();
  double* SCD_RESTRICT rn = ratio_nonlink.data();
  for (std::size_t j = 0; j < k; ++j) {
    rl[j] += eps_coef_link * static_cast<double>(btl[j]);
    rn[j] += eps_coef_nonlink * static_cast<double>(btn[j]);
  }
}

namespace {

/// Single-pair theta entry for sparse codecs: accumulate and immediately
/// fold the epsilon term into this y stratum's ratio (the batched path
/// defers the fold to sparse_theta_epilogue instead).
double sparse_theta_single(quant::RowCodec codec,
                           std::span<const std::byte> row_a,
                           std::span<const std::byte> row_b,
                           std::uint32_t k, const LikelihoodTerms& terms,
                           bool y, std::span<double> ratio) {
  double eps_coef = 0.0;
  const double z = sparse_accumulate_theta_ratio_enc(codec, row_a, row_b, k,
                                                     terms, y, ratio,
                                                     eps_coef);
  if (eps_coef != 0.0) {
    const float* SCD_RESTRICT bt = terms.bt(y).data();
    double* SCD_RESTRICT r = ratio.data();
    for (std::uint32_t j = 0; j < k; ++j) {
      r[j] += eps_coef * static_cast<double>(bt[j]);
    }
  }
  return z;
}

/// Single-pair phi entry for sparse codecs: stage + accumulate + an
/// immediate epilogue. Correct O(K) per pair; the batched path in
/// core/phi_kernel.h amortizes stage and epilogue across a vertex's
/// whole neighbor set instead.
double sparse_phi_grad_single(quant::RowCodec codec,
                              std::span<const float> row_a,
                              std::span<const std::byte> row_b,
                              const LikelihoodTerms& terms, bool y,
                              std::span<double> grad) {
  const SparsePhiStage stage = sparse_phi_stage(row_a, terms);
  SparsePhiAccum acc;
  const double z = sparse_accumulate_phi_grad_enc(codec, row_a, stage,
                                                  row_b, terms, y, grad,
                                                  acc);
  sparse_phi_epilogue(acc, terms, grad);
  return z;
}

}  // namespace

double fused_pair_likelihood_enc(quant::RowCodec codec,
                                 std::span<const std::byte> row_a,
                                 std::span<const std::byte> row_b,
                                 std::uint32_t k,
                                 const LikelihoodTerms& terms, bool y) {
  check_encoded(codec, row_a, k);
  check_encoded(codec, row_b, k);
  if (quant::is_sparse(codec)) {
    return sparse_pair_likelihood_impl(codec, row_a, row_b, k, terms, y,
                                       /*fused_dense=*/true);
  }
  return with_readers(codec, row_a, row_b, [&](auto ra, auto rb) {
    return fused_pair_likelihood_t(ra, rb, k, terms, y);
  });
}

double pair_likelihood_enc(quant::RowCodec codec,
                           std::span<const std::byte> row_a,
                           std::span<const std::byte> row_b, std::uint32_t k,
                           const LikelihoodTerms& terms, bool y) {
  check_encoded(codec, row_a, k);
  check_encoded(codec, row_b, k);
  if (quant::is_sparse(codec)) {
    return sparse_pair_likelihood_impl(codec, row_a, row_b, k, terms, y,
                                       /*fused_dense=*/false);
  }
  return with_readers(codec, row_a, row_b, [&](auto ra, auto rb) {
    return pair_likelihood_t(ra, rb, k, terms, y);
  });
}

double fused_accumulate_phi_grad_enc(quant::RowCodec codec,
                                     std::span<const float> row_a,
                                     std::span<const std::byte> row_b,
                                     const LikelihoodTerms& terms, bool y,
                                     std::span<double> grad,
                                     std::span<float> w_scratch) {
  const std::size_t k = k_of(row_a);
  check_encoded(codec, row_b, static_cast<std::uint32_t>(k));
  if (quant::is_sparse(codec)) {
    return sparse_phi_grad_single(codec, row_a, row_b, terms, y, grad);
  }
  return with_reader(codec, row_b, [&](auto rb) {
    return fused_accumulate_phi_grad_t(row_a.data(), row_a[k], rb, k, terms,
                                       y, grad, w_scratch);
  });
}

double accumulate_phi_grad_enc(quant::RowCodec codec,
                               std::span<const float> row_a,
                               std::span<const std::byte> row_b,
                               const LikelihoodTerms& terms, bool y,
                               std::span<double> grad) {
  const std::size_t k = k_of(row_a);
  check_encoded(codec, row_b, static_cast<std::uint32_t>(k));
  if (quant::is_sparse(codec)) {
    return sparse_phi_grad_single(codec, row_a, row_b, terms, y, grad);
  }
  return with_reader(codec, row_b, [&](auto rb) {
    return accumulate_phi_grad_t(row_a, rb, k, terms, y, grad);
  });
}

double fused_accumulate_theta_ratio_enc(quant::RowCodec codec,
                                        std::span<const std::byte> row_a,
                                        std::span<const std::byte> row_b,
                                        std::uint32_t k,
                                        const LikelihoodTerms& terms, bool y,
                                        std::span<double> ratio,
                                        std::span<float> f_scratch) {
  check_encoded(codec, row_a, k);
  check_encoded(codec, row_b, k);
  if (quant::is_sparse(codec)) {
    return sparse_theta_single(codec, row_a, row_b, k, terms, y, ratio);
  }
  return with_readers(codec, row_a, row_b, [&](auto ra, auto rb) {
    return fused_accumulate_theta_ratio_t(ra, rb, k, terms, y, ratio,
                                          f_scratch);
  });
}

double accumulate_theta_ratio_enc(quant::RowCodec codec,
                                  std::span<const std::byte> row_a,
                                  std::span<const std::byte> row_b,
                                  std::uint32_t k,
                                  const LikelihoodTerms& terms, bool y,
                                  std::span<double> ratio) {
  check_encoded(codec, row_a, k);
  check_encoded(codec, row_b, k);
  if (quant::is_sparse(codec)) {
    return sparse_theta_single(codec, row_a, row_b, k, terms, y, ratio);
  }
  return with_readers(codec, row_a, row_b, [&](auto ra, auto rb) {
    return accumulate_theta_ratio_t(ra, rb, k, terms, y, ratio);
  });
}

}  // namespace scd::core
