// Fused kernel definitions. This translation unit is compiled with
// vectorization-friendly flags (see src/core/CMakeLists.txt) so the lane
// loops below turn into packed SSE/AVX arithmetic regardless of the
// global build type; the scalar reference kernels in grads.cpp keep the
// default flags and serve as the equivalence baseline.
#include "core/kernels_simd.h"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdlib>
#include <cstring>

#include "random/distributions.h"
#include "util/error.h"

// Scratch spans never alias the input rows; telling the compiler so is
// what allows the staged-w loops to vectorize.
#define SCD_RESTRICT __restrict__

namespace scd::core {

namespace {

std::atomic<KernelPath>& path_state() {
  static std::atomic<KernelPath> state = [] {
    const char* env = std::getenv("SCD_KERNELS");
    if (env != nullptr && std::strcmp(env, "scalar") == 0) {
      return KernelPath::kScalar;
    }
    return KernelPath::kFused;
  }();
  return state;
}

inline std::size_t k_of(std::span<const float> row) {
  return row.size() - 1;  // last slot is phi_sum
}

/// Fold the lane accumulators into the double carry.
inline double lane_sum(const float (&lanes)[kFusedLanes]) {
  double s = 0.0;
  for (std::size_t l = 0; l < kFusedLanes; ++l) {
    s += static_cast<double>(lanes[l]);
  }
  return s;
}

}  // namespace

KernelPath kernel_path() {
  return path_state().load(std::memory_order_relaxed);
}

void set_kernel_path(KernelPath path) {
  path_state().store(path, std::memory_order_relaxed);
}

double fused_pair_likelihood(std::span<const float> row_a,
                             std::span<const float> row_b,
                             const LikelihoodTerms& terms, bool y) {
  const std::size_t k = k_of(row_a);
  SCD_ASSERT(k_of(row_b) == k, "row width mismatch");
  const float* SCD_RESTRICT pa = row_a.data();
  const float* SCD_RESTRICT pb = row_b.data();
  const float* SCD_RESTRICT d = terms.btd(y).data();
  const float dtf = static_cast<float>(terms.dt(y));
  double z = 0.0;
  std::size_t i = 0;
  for (; i + kFusedBlock <= k; i += kFusedBlock) {
    float lanes[kFusedLanes] = {0.0f};
    for (std::size_t j = 0; j < kFusedBlock; j += kFusedLanes) {
      for (std::size_t l = 0; l < kFusedLanes; ++l) {
        const std::size_t idx = i + j + l;
        lanes[l] += pa[idx] * (dtf + pb[idx] * d[idx]);
      }
    }
    z += lane_sum(lanes);
  }
  for (; i < k; ++i) {
    z += static_cast<double>(pa[i]) * (dtf + pb[i] * d[i]);
  }
  return std::max(z, kMinZ);
}

double fused_accumulate_phi_grad(std::span<const float> row_a,
                                 std::span<const float> row_b,
                                 const LikelihoodTerms& terms, bool y,
                                 std::span<double> grad,
                                 std::span<float> w_scratch) {
  const std::size_t k = k_of(row_a);
  SCD_ASSERT(grad.size() == k, "gradient size mismatch");
  SCD_ASSERT(w_scratch.size() >= k, "w scratch too small");
  const float* SCD_RESTRICT pa = row_a.data();
  const float* SCD_RESTRICT pb = row_b.data();
  const float* SCD_RESTRICT d = terms.btd(y).data();
  float* SCD_RESTRICT w = w_scratch.data();
  const float dtf = static_cast<float>(terms.dt(y));
  const double phi_sum = row_a[k];
  SCD_ASSERT(phi_sum > 0.0, "phi_sum must be positive");

  // Pass over the inputs: stage w_k and accumulate Z simultaneously.
  double z = 0.0;
  std::size_t i = 0;
  for (; i + kFusedBlock <= k; i += kFusedBlock) {
    float lanes[kFusedLanes] = {0.0f};
    for (std::size_t j = 0; j < kFusedBlock; j += kFusedLanes) {
      for (std::size_t l = 0; l < kFusedLanes; ++l) {
        const std::size_t idx = i + j + l;
        const float wi = dtf + pb[idx] * d[idx];
        w[idx] = wi;
        lanes[l] += pa[idx] * wi;
      }
    }
    z += lane_sum(lanes);
  }
  for (; i < k; ++i) {
    const float wi = dtf + pb[i] * d[i];
    w[i] = wi;
    z += static_cast<double>(pa[i]) * wi;
  }
  z = std::max(z, kMinZ);

  // Gradient from the staged w — touches only the scratch, not the rows.
  const double inv_z = 1.0 / z;
  const double inv_phi_sum = 1.0 / phi_sum;
  double* SCD_RESTRICT g = grad.data();
  for (std::size_t j = 0; j < k; ++j) {
    g[j] += (static_cast<double>(w[j]) * inv_z - 1.0) * inv_phi_sum;
  }
  return z;
}

double fused_accumulate_theta_ratio(std::span<const float> row_a,
                                    std::span<const float> row_b,
                                    const LikelihoodTerms& terms, bool y,
                                    std::span<double> ratio,
                                    std::span<float> f_scratch) {
  const std::size_t k = k_of(row_a);
  SCD_ASSERT(ratio.size() == k, "ratio size mismatch");
  SCD_ASSERT(f_scratch.size() >= k, "f scratch too small");
  const float* SCD_RESTRICT pa = row_a.data();
  const float* SCD_RESTRICT pb = row_b.data();
  const float* SCD_RESTRICT bt = terms.bt(y).data();
  const float* SCD_RESTRICT d = terms.btd(y).data();
  float* SCD_RESTRICT f = f_scratch.data();
  const float dtf = static_cast<float>(terms.dt(y));

  // pa * w = dt * pa + (pa * pb) * (bt - dt), and the ratio numerator is
  // f = (pa * pb) * bt — both come from the one pa * pb product.
  double z = 0.0;
  std::size_t i = 0;
  for (; i + kFusedBlock <= k; i += kFusedBlock) {
    float lanes[kFusedLanes] = {0.0f};
    for (std::size_t j = 0; j < kFusedBlock; j += kFusedLanes) {
      for (std::size_t l = 0; l < kFusedLanes; ++l) {
        const std::size_t idx = i + j + l;
        const float prod = pa[idx] * pb[idx];
        f[idx] = prod * bt[idx];
        lanes[l] += dtf * pa[idx] + prod * d[idx];
      }
    }
    z += lane_sum(lanes);
  }
  for (; i < k; ++i) {
    const float prod = pa[i] * pb[i];
    f[i] = prod * bt[i];
    z += static_cast<double>(dtf * pa[i]) + static_cast<double>(prod * d[i]);
  }
  z = std::max(z, kMinZ);

  const double inv_z = 1.0 / z;
  double* SCD_RESTRICT r = ratio.data();
  for (std::size_t j = 0; j < k; ++j) {
    r[j] += static_cast<double>(f[j]) * inv_z;
  }
  return z;
}

void fused_update_phi_row(std::uint64_t seed, std::uint64_t iteration,
                          std::uint32_t vertex, std::span<float> row,
                          std::span<const double> grad, double scale,
                          double eps, double alpha, double noise_factor,
                          GradientForm form,
                          std::span<double> noise_scratch) {
  const std::size_t k = k_of(row);
  SCD_ASSERT(grad.size() == k, "gradient size mismatch");
  SCD_ASSERT(noise_scratch.size() >= k, "noise scratch too small");

  // Stage the Langevin noise first: the polar-rejection draws are
  // inherently serial, and splitting them out leaves the SGRLD step below
  // as a pure elementwise pass. Same stream, same order as the scalar
  // path, so the drawn values are identical.
  rng::Xoshiro256 noise_rng =
      derive_rng(seed, rng_label::kPhiNoise, iteration, vertex);
  const double noise_scale = noise_factor * std::sqrt(eps);
  double* SCD_RESTRICT noise = noise_scratch.data();
  for (std::size_t i = 0; i < k; ++i) {
    noise[i] = rng::sample_standard_normal(noise_rng) * noise_scale;
  }

  const double phi_sum = row[k];
  const bool precond = form == GradientForm::kPreconditioned;
  const double half_eps = 0.5 * eps;
  float* SCD_RESTRICT r = row.data();
  const double* SCD_RESTRICT g = grad.data();

  // Elementwise SGRLD step; new_sum accumulates in independent double
  // lanes (same values per element as the scalar path — only the sum's
  // association differs).
  double new_sum = 0.0;
  std::size_t i = 0;
  constexpr std::size_t kSumLanes = 4;
  for (; i + kFusedBlock <= k; i += kFusedBlock) {
    double lanes[kSumLanes] = {0.0};
    for (std::size_t j = 0; j < kFusedBlock; j += kSumLanes) {
      for (std::size_t l = 0; l < kSumLanes; ++l) {
        const std::size_t idx = i + j + l;
        const double phi = static_cast<double>(r[idx]) * phi_sum;
        const double gg = precond ? phi * g[idx] : g[idx];
        double updated = phi + half_eps * (alpha - phi + scale * gg) +
                         std::sqrt(phi) * noise[idx];
        updated = std::abs(updated);  // SGRLD reflection at zero
        updated = std::max(updated, kParamFloor);
        r[idx] = static_cast<float>(updated);
        lanes[l] += updated;
      }
    }
    for (std::size_t l = 0; l < kSumLanes; ++l) new_sum += lanes[l];
  }
  for (; i < k; ++i) {
    const double phi = static_cast<double>(r[i]) * phi_sum;
    const double gg = precond ? phi * g[i] : g[i];
    double updated = phi + half_eps * (alpha - phi + scale * gg) +
                     std::sqrt(phi) * noise[i];
    updated = std::abs(updated);
    updated = std::max(updated, kParamFloor);
    r[i] = static_cast<float>(updated);
    new_sum += updated;
  }

  const double inv = 1.0 / new_sum;
  for (std::size_t j = 0; j < k; ++j) {
    r[j] = static_cast<float>(static_cast<double>(r[j]) * inv);
  }
  r[k] = static_cast<float>(new_sum);
}

// --- dequant-fused kernels ---------------------------------------------
// The enc variants are the same lane/block skeletons as above, templated
// over a per-codec element reader so dequantization happens in-register
// inside the loop. The fp32 reader is a raw float load, which makes the
// kFloat32 instantiations replicate the float-span kernels' arithmetic
// operation for operation — same order, same intermediate types — and
// therefore bit-identically.

namespace {

/// Raw float load: kFloat32 rows (and decoded caller rows) store plain
/// little-endian floats.
struct Fp32Reader {
  const float* p;
  explicit Fp32Reader(const std::byte* row)
      : p(reinterpret_cast<const float*>(row)) {}
  explicit Fp32Reader(const float* row) : p(row) {}
  float operator[](std::size_t i) const { return p[i]; }
};

/// IEEE half load + widen (quant::RowCodec::kFp16 layout).
struct Fp16Reader {
  const std::byte* p;
  explicit Fp16Reader(const std::byte* row) : p(row) {}
  float operator[](std::size_t i) const {
    std::uint16_t h;
    std::memcpy(&h, p + i * sizeof(h), sizeof(h));
    return quant::half_to_float(h);
  }
};

/// Per-row affine dequant (quant::RowCodec::kInt8 layout): one fma per
/// element against the row's scale/offset header.
struct Int8Reader {
  const std::byte* codes;
  float scale;
  float offset;
  explicit Int8Reader(const std::byte* row) {
    quant::Int8Header header;
    std::memcpy(&header, row, quant::kInt8HeaderBytes);
    scale = header.scale;
    offset = header.offset;
    codes = row + quant::kInt8HeaderBytes;
  }
  float operator[](std::size_t i) const {
    return offset +
           scale * static_cast<float>(static_cast<std::uint8_t>(codes[i]));
  }
};

template <typename RowA, typename RowB>
double fused_pair_likelihood_t(RowA pa, RowB pb, std::size_t k,
                               const LikelihoodTerms& terms, bool y) {
  const float* SCD_RESTRICT d = terms.btd(y).data();
  const float dtf = static_cast<float>(terms.dt(y));
  double z = 0.0;
  std::size_t i = 0;
  for (; i + kFusedBlock <= k; i += kFusedBlock) {
    float lanes[kFusedLanes] = {0.0f};
    for (std::size_t j = 0; j < kFusedBlock; j += kFusedLanes) {
      for (std::size_t l = 0; l < kFusedLanes; ++l) {
        const std::size_t idx = i + j + l;
        lanes[l] += pa[idx] * (dtf + pb[idx] * d[idx]);
      }
    }
    z += lane_sum(lanes);
  }
  for (; i < k; ++i) {
    z += static_cast<double>(pa[i]) * (dtf + pb[i] * d[i]);
  }
  return std::max(z, kMinZ);
}

template <typename RowA, typename RowB>
double pair_likelihood_t(RowA ra, RowB rb, std::size_t k,
                         const LikelihoodTerms& terms, bool y) {
  const std::span<const float> bt = terms.bt(y);
  const double dt = terms.dt(y);
  double z = 0.0;
  for (std::size_t i = 0; i < k; ++i) {
    const double pa = ra[i];
    const double pb = rb[i];
    z += pa * (pb * static_cast<double>(bt[i]) + dt * (1.0 - pb));
  }
  return std::max(z, kMinZ);
}

template <typename RowB>
double fused_accumulate_phi_grad_t(const float* SCD_RESTRICT pa,
                                   double phi_sum, RowB pb, std::size_t k,
                                   const LikelihoodTerms& terms, bool y,
                                   std::span<double> grad,
                                   std::span<float> w_scratch) {
  SCD_ASSERT(grad.size() == k, "gradient size mismatch");
  SCD_ASSERT(w_scratch.size() >= k, "w scratch too small");
  const float* SCD_RESTRICT d = terms.btd(y).data();
  float* SCD_RESTRICT w = w_scratch.data();
  const float dtf = static_cast<float>(terms.dt(y));
  SCD_ASSERT(phi_sum > 0.0, "phi_sum must be positive");

  double z = 0.0;
  std::size_t i = 0;
  for (; i + kFusedBlock <= k; i += kFusedBlock) {
    float lanes[kFusedLanes] = {0.0f};
    for (std::size_t j = 0; j < kFusedBlock; j += kFusedLanes) {
      for (std::size_t l = 0; l < kFusedLanes; ++l) {
        const std::size_t idx = i + j + l;
        const float wi = dtf + pb[idx] * d[idx];
        w[idx] = wi;
        lanes[l] += pa[idx] * wi;
      }
    }
    z += lane_sum(lanes);
  }
  for (; i < k; ++i) {
    const float wi = dtf + pb[i] * d[i];
    w[i] = wi;
    z += static_cast<double>(pa[i]) * wi;
  }
  z = std::max(z, kMinZ);

  const double inv_z = 1.0 / z;
  const double inv_phi_sum = 1.0 / phi_sum;
  double* SCD_RESTRICT g = grad.data();
  for (std::size_t j = 0; j < k; ++j) {
    g[j] += (static_cast<double>(w[j]) * inv_z - 1.0) * inv_phi_sum;
  }
  return z;
}

template <typename RowB>
double accumulate_phi_grad_t(std::span<const float> row_a, RowB rb,
                             std::size_t k, const LikelihoodTerms& terms,
                             bool y, std::span<double> grad) {
  SCD_ASSERT(grad.size() == k, "gradient size mismatch");
  const std::span<const float> bt = terms.bt(y);
  const double dt = terms.dt(y);
  const double phi_sum = row_a[k];
  SCD_ASSERT(phi_sum > 0.0, "phi_sum must be positive");

  double z = 0.0;
  for (std::size_t i = 0; i < k; ++i) {
    const double pb = rb[i];
    const double w = pb * static_cast<double>(bt[i]) + dt * (1.0 - pb);
    z += static_cast<double>(row_a[i]) * w;
  }
  z = std::max(z, kMinZ);
  const double inv_z = 1.0 / z;
  const double inv_phi_sum = 1.0 / phi_sum;
  for (std::size_t i = 0; i < k; ++i) {
    const double pb = rb[i];
    const double w = pb * static_cast<double>(bt[i]) + dt * (1.0 - pb);
    grad[i] += (w * inv_z - 1.0) * inv_phi_sum;
  }
  return z;
}

template <typename RowA, typename RowB>
double fused_accumulate_theta_ratio_t(RowA pa, RowB pb, std::size_t k,
                                      const LikelihoodTerms& terms, bool y,
                                      std::span<double> ratio,
                                      std::span<float> f_scratch) {
  SCD_ASSERT(ratio.size() == k, "ratio size mismatch");
  SCD_ASSERT(f_scratch.size() >= k, "f scratch too small");
  const float* SCD_RESTRICT bt = terms.bt(y).data();
  const float* SCD_RESTRICT d = terms.btd(y).data();
  float* SCD_RESTRICT f = f_scratch.data();
  const float dtf = static_cast<float>(terms.dt(y));

  double z = 0.0;
  std::size_t i = 0;
  for (; i + kFusedBlock <= k; i += kFusedBlock) {
    float lanes[kFusedLanes] = {0.0f};
    for (std::size_t j = 0; j < kFusedBlock; j += kFusedLanes) {
      for (std::size_t l = 0; l < kFusedLanes; ++l) {
        const std::size_t idx = i + j + l;
        const float prod = pa[idx] * pb[idx];
        f[idx] = prod * bt[idx];
        lanes[l] += dtf * pa[idx] + prod * d[idx];
      }
    }
    z += lane_sum(lanes);
  }
  for (; i < k; ++i) {
    const float prod = pa[i] * pb[i];
    f[i] = prod * bt[i];
    z += static_cast<double>(dtf * pa[i]) + static_cast<double>(prod * d[i]);
  }
  z = std::max(z, kMinZ);

  const double inv_z = 1.0 / z;
  double* SCD_RESTRICT r = ratio.data();
  for (std::size_t j = 0; j < k; ++j) {
    r[j] += static_cast<double>(f[j]) * inv_z;
  }
  return z;
}

template <typename RowA, typename RowB>
double accumulate_theta_ratio_t(RowA ra, RowB rb, std::size_t k,
                                const LikelihoodTerms& terms, bool y,
                                std::span<double> ratio) {
  SCD_ASSERT(ratio.size() == k, "ratio size mismatch");
  const std::span<const float> bt = terms.bt(y);
  const double z = pair_likelihood_t(ra, rb, k, terms, y);
  const double inv_z = 1.0 / z;
  for (std::size_t i = 0; i < k; ++i) {
    const double f = static_cast<double>(ra[i]) *
                     static_cast<double>(rb[i]) *
                     static_cast<double>(bt[i]);
    ratio[i] += f * inv_z;
  }
  return z;
}

inline void check_encoded(quant::RowCodec codec,
                          std::span<const std::byte> row, std::uint32_t k) {
  SCD_ASSERT(row.size() == quant::encoded_bytes(codec, k + 1),
             "encoded row size mismatch");
}

/// Invoke `fn(reader_a, reader_b)` with the reader type for `codec`.
template <typename Fn>
double with_readers(quant::RowCodec codec, std::span<const std::byte> row_a,
                    std::span<const std::byte> row_b, Fn&& fn) {
  switch (codec) {
    case quant::RowCodec::kFloat32:
      return fn(Fp32Reader(row_a.data()), Fp32Reader(row_b.data()));
    case quant::RowCodec::kFp16:
      return fn(Fp16Reader(row_a.data()), Fp16Reader(row_b.data()));
    case quant::RowCodec::kInt8:
      return fn(Int8Reader(row_a.data()), Int8Reader(row_b.data()));
  }
  SCD_ASSERT(false, "unknown RowCodec value");
  return 0.0;
}

/// Invoke `fn(reader_b)` with the reader type for `codec`.
template <typename Fn>
double with_reader(quant::RowCodec codec, std::span<const std::byte> row,
                   Fn&& fn) {
  switch (codec) {
    case quant::RowCodec::kFloat32:
      return fn(Fp32Reader(row.data()));
    case quant::RowCodec::kFp16:
      return fn(Fp16Reader(row.data()));
    case quant::RowCodec::kInt8:
      return fn(Int8Reader(row.data()));
  }
  SCD_ASSERT(false, "unknown RowCodec value");
  return 0.0;
}

}  // namespace

double fused_pair_likelihood_enc(quant::RowCodec codec,
                                 std::span<const std::byte> row_a,
                                 std::span<const std::byte> row_b,
                                 std::uint32_t k,
                                 const LikelihoodTerms& terms, bool y) {
  check_encoded(codec, row_a, k);
  check_encoded(codec, row_b, k);
  return with_readers(codec, row_a, row_b, [&](auto ra, auto rb) {
    return fused_pair_likelihood_t(ra, rb, k, terms, y);
  });
}

double pair_likelihood_enc(quant::RowCodec codec,
                           std::span<const std::byte> row_a,
                           std::span<const std::byte> row_b, std::uint32_t k,
                           const LikelihoodTerms& terms, bool y) {
  check_encoded(codec, row_a, k);
  check_encoded(codec, row_b, k);
  return with_readers(codec, row_a, row_b, [&](auto ra, auto rb) {
    return pair_likelihood_t(ra, rb, k, terms, y);
  });
}

double fused_accumulate_phi_grad_enc(quant::RowCodec codec,
                                     std::span<const float> row_a,
                                     std::span<const std::byte> row_b,
                                     const LikelihoodTerms& terms, bool y,
                                     std::span<double> grad,
                                     std::span<float> w_scratch) {
  const std::size_t k = k_of(row_a);
  check_encoded(codec, row_b, static_cast<std::uint32_t>(k));
  return with_reader(codec, row_b, [&](auto rb) {
    return fused_accumulate_phi_grad_t(row_a.data(), row_a[k], rb, k, terms,
                                       y, grad, w_scratch);
  });
}

double accumulate_phi_grad_enc(quant::RowCodec codec,
                               std::span<const float> row_a,
                               std::span<const std::byte> row_b,
                               const LikelihoodTerms& terms, bool y,
                               std::span<double> grad) {
  const std::size_t k = k_of(row_a);
  check_encoded(codec, row_b, static_cast<std::uint32_t>(k));
  return with_reader(codec, row_b, [&](auto rb) {
    return accumulate_phi_grad_t(row_a, rb, k, terms, y, grad);
  });
}

double fused_accumulate_theta_ratio_enc(quant::RowCodec codec,
                                        std::span<const std::byte> row_a,
                                        std::span<const std::byte> row_b,
                                        std::uint32_t k,
                                        const LikelihoodTerms& terms, bool y,
                                        std::span<double> ratio,
                                        std::span<float> f_scratch) {
  check_encoded(codec, row_a, k);
  check_encoded(codec, row_b, k);
  return with_readers(codec, row_a, row_b, [&](auto ra, auto rb) {
    return fused_accumulate_theta_ratio_t(ra, rb, k, terms, y, ratio,
                                          f_scratch);
  });
}

double accumulate_theta_ratio_enc(quant::RowCodec codec,
                                  std::span<const std::byte> row_a,
                                  std::span<const std::byte> row_b,
                                  std::uint32_t k,
                                  const LikelihoodTerms& terms, bool y,
                                  std::span<double> ratio) {
  check_encoded(codec, row_a, k);
  check_encoded(codec, row_b, k);
  return with_readers(codec, row_a, row_b, [&](auto ra, auto rb) {
    return accumulate_theta_ratio_t(ra, rb, k, terms, y, ratio);
  });
}

}  // namespace scd::core
