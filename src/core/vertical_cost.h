// Modeled per-iteration cost of the single-node multithreaded sampler —
// the paper's "vertical scaling" configuration (Section IV-D), where all
// state lives in local RAM and the only parallelism is the node's cores.
//
// Uses the same kernel constants as the distributed simulator
// (sim::ComputeModel), so Fig. 4's horizontal-vs-vertical comparison pits
// two instances of one cost model against each other: the distributed
// side pays network latency/bandwidth for pi, the vertical side pays
// local memory bandwidth, and the distributed side brings C*16 cores to
// the kernels against the vertical side's 16..40.
#pragma once

#include "core/distributed_sampler.h"
#include "core/hyper.h"
#include "sim/compute_model.h"

namespace scd::core {

/// Per-stage seconds of one vertical iteration.
struct VerticalIterationCost {
  double draw_minibatch = 0.0;
  double sample_neighbors = 0.0;
  double load_pi = 0.0;
  double update_phi = 0.0;
  double update_pi = 0.0;
  double update_beta_theta = 0.0;

  double total() const {
    return draw_minibatch + sample_neighbors + load_pi + update_phi +
           update_pi + update_beta_theta;
  }
};

/// Cost of one iteration of the shared-memory sampler on `node` for the
/// workload sizes in `workload` with `num_communities` communities and
/// `num_neighbors` samples per minibatch vertex.
VerticalIterationCost vertical_iteration_cost(
    const sim::ComputeModel& node, const PhantomWorkload& workload,
    std::uint32_t num_communities, std::uint32_t num_neighbors);

}  // namespace scd::core
