#include "core/general_mmsb.h"

#include <algorithm>
#include <cmath>

#include "core/grads.h"
#include "random/distributions.h"
#include "util/error.h"

namespace scd::core {

namespace {
inline std::size_t k_of(std::span<const float> row) {
  return row.size() - 1;
}

/// w_k = sum_l pi_bl Bt_kl for every k; the shared inner product of the
/// likelihood and both gradients. O(K^2).
void fill_w(std::span<const float> row_b,
            const GeneralLikelihoodTerms& terms, const BlockMatrix& blocks,
            bool y, std::span<double> w) {
  const std::uint32_t k = blocks.num_communities();
  for (std::uint32_t i = 0; i < k; ++i) {
    double acc = 0.0;
    for (std::uint32_t l = 0; l < k; ++l) {
      acc += static_cast<double>(row_b[l]) *
             static_cast<double>(terms.bt(y, blocks.block_index(i, l)));
    }
    w[i] = acc;
  }
}
}  // namespace

BlockMatrix::BlockMatrix(std::uint32_t num_communities)
    : k_(num_communities) {
  SCD_REQUIRE(num_communities >= 1, "need at least one community");
  theta_.assign(std::size_t{num_blocks()} * 2, 1.0);
  b_.assign(num_blocks(), 0.5f);
}

void BlockMatrix::init_random(std::uint64_t seed, const Hyper& hyper) {
  rng::Xoshiro256 engine = derive_rng(seed, rng_label::kThetaInit);
  for (std::uint32_t block = 0; block < num_blocks(); ++block) {
    theta_[block * 2 + 0] = rng::sample_gamma(engine, hyper.eta1);
    theta_[block * 2 + 1] = rng::sample_gamma(engine, hyper.eta0);
  }
  refresh_b();
}

void BlockMatrix::init_assortative(std::uint64_t seed, double beta_diag,
                                   double delta_off, double pseudo_count) {
  SCD_REQUIRE(beta_diag > 0.0 && beta_diag < 1.0 && delta_off > 0.0 &&
                  delta_off < 1.0,
              "block strengths must be probabilities in (0, 1)");
  SCD_REQUIRE(pseudo_count > 0.0, "pseudo_count must be positive");
  rng::Xoshiro256 engine = derive_rng(seed, rng_label::kThetaInit);
  for (std::uint32_t k = 0; k < k_; ++k) {
    for (std::uint32_t l = k; l < k_; ++l) {
      const std::uint32_t block = block_index(k, l);
      // Jitter the diagonal so communities are distinguishable from the
      // first iteration.
      const double value =
          k == l ? beta_diag * (0.75 + 0.5 * engine.next_double())
                 : delta_off;
      theta_[block * 2 + 0] = (1.0 - value) * pseudo_count;
      theta_[block * 2 + 1] = value * pseudo_count;
    }
  }
  refresh_b();
}

void BlockMatrix::refresh_b() {
  for (std::uint32_t block = 0; block < num_blocks(); ++block) {
    const double t0 = theta_[block * 2 + 0];
    const double t1 = theta_[block * 2 + 1];
    const double sum = t0 + t1;
    double value = sum > 0.0 ? t1 / sum : 0.5;
    value = std::clamp(value, 1e-6, 1.0 - 1e-6);
    b_[block] = static_cast<float>(value);
  }
}

void GeneralLikelihoodTerms::refresh(const BlockMatrix& blocks) {
  k = blocks.num_communities();
  const std::uint32_t n = blocks.num_blocks();
  bt_link.resize(n);
  bt_nonlink.resize(n);
  const auto b = blocks.b_flat();
  for (std::uint32_t i = 0; i < n; ++i) {
    bt_link[i] = b[i];
    bt_nonlink[i] = 1.0f - b[i];
  }
}

double general_pair_likelihood(std::span<const float> row_a,
                               std::span<const float> row_b,
                               const GeneralLikelihoodTerms& terms,
                               const BlockMatrix& blocks, bool y) {
  const std::size_t k = k_of(row_a);
  SCD_ASSERT(k == blocks.num_communities(), "K mismatch");
  std::vector<double> w(k);
  fill_w(row_b, terms, blocks, y, w);
  double z = 0.0;
  for (std::size_t i = 0; i < k; ++i) {
    z += static_cast<double>(row_a[i]) * w[i];
  }
  return std::max(z, kMinZ);
}

double general_accumulate_phi_grad(std::span<const float> row_a,
                                   std::span<const float> row_b,
                                   const GeneralLikelihoodTerms& terms,
                                   const BlockMatrix& blocks, bool y,
                                   std::span<double> grad) {
  const std::size_t k = k_of(row_a);
  SCD_ASSERT(grad.size() == k, "gradient size mismatch");
  const double phi_sum = row_a[k];
  SCD_ASSERT(phi_sum > 0.0, "phi_sum must be positive");
  std::vector<double> w(k);
  fill_w(row_b, terms, blocks, y, w);
  double z = 0.0;
  for (std::size_t i = 0; i < k; ++i) {
    z += static_cast<double>(row_a[i]) * w[i];
  }
  z = std::max(z, kMinZ);
  const double inv_z = 1.0 / z;
  const double inv_phi_sum = 1.0 / phi_sum;
  for (std::size_t i = 0; i < k; ++i) {
    grad[i] += (w[i] * inv_z - 1.0) * inv_phi_sum;
  }
  return z;
}

double general_accumulate_theta_ratio(std::span<const float> row_a,
                                      std::span<const float> row_b,
                                      const GeneralLikelihoodTerms& terms,
                                      const BlockMatrix& blocks, bool y,
                                      std::span<double> ratio) {
  const auto k = static_cast<std::uint32_t>(k_of(row_a));
  SCD_ASSERT(ratio.size() == blocks.num_blocks(), "ratio size mismatch");
  const double z = general_pair_likelihood(row_a, row_b, terms, blocks, y);
  const double inv_z = 1.0 / z;
  // Both ordered cells (k,l) and (l,k) share one B entry; fold them into
  // the unordered block's ratio.
  for (std::uint32_t i = 0; i < k; ++i) {
    const double pa = row_a[i];
    for (std::uint32_t l = 0; l < k; ++l) {
      const std::uint32_t block = blocks.block_index(i, l);
      const double f = pa * static_cast<double>(row_b[l]) *
                       static_cast<double>(terms.bt(y, block));
      ratio[block] += f * inv_z;
    }
  }
  return z;
}

void general_theta_grad_from_ratios(std::span<const double> ratio_link,
                                    std::span<const double> ratio_nonlink,
                                    const BlockMatrix& blocks,
                                    std::span<double> grad) {
  const std::uint32_t n = blocks.num_blocks();
  SCD_ASSERT(ratio_link.size() == n && ratio_nonlink.size() == n &&
                 grad.size() == std::size_t{n} * 2,
             "theta grad assembly size mismatch");
  for (std::uint32_t block = 0; block < n; ++block) {
    const double t0 = blocks.theta(block, 0);
    const double t1 = blocks.theta(block, 1);
    const double inv_sum = 1.0 / (t0 + t1);
    grad[block * 2 + 1] = ratio_link[block] * (1.0 / t1 - inv_sum) +
                          ratio_nonlink[block] * (-inv_sum);
    grad[block * 2 + 0] = ratio_nonlink[block] * (1.0 / t0 - inv_sum) +
                          ratio_link[block] * (-inv_sum);
  }
}

void general_update_theta(std::uint64_t seed, std::uint64_t iteration,
                          BlockMatrix& blocks, std::span<const double> grad,
                          double eps, double eta0, double eta1,
                          double noise_factor) {
  const std::uint32_t n = blocks.num_blocks();
  SCD_ASSERT(grad.size() == std::size_t{n} * 2, "gradient size mismatch");
  rng::Xoshiro256 noise = derive_rng(seed, rng_label::kThetaNoise, iteration);
  const double noise_scale = noise_factor * std::sqrt(eps);
  for (std::uint32_t block = 0; block < n; ++block) {
    for (unsigned i = 0; i < 2; ++i) {
      const double theta = blocks.theta(block, i);
      const double eta = (i == 1) ? eta0 : eta1;
      const double xi = rng::sample_standard_normal(noise) * noise_scale;
      double updated = theta +
                       0.5 * eps * (eta - theta + grad[block * 2 + i]) +
                       std::sqrt(theta) * xi;
      updated = std::abs(updated);
      updated = std::max(updated, kParamFloor);
      blocks.set_theta(block, i, updated);
    }
  }
  blocks.refresh_b();
}

}  // namespace scd::core
