#include "core/report.h"

#include <algorithm>

namespace scd::core {

double default_membership_threshold(std::uint32_t num_communities) {
  // 1.5x the uniform level, clamped to [0.1, 0.5]: high enough to reject
  // diffuse mass, low enough that genuine dual memberships (pi ~ 0.5
  // each) survive even for small K.
  return std::clamp(1.5 / static_cast<double>(num_communities), 0.1, 0.5);
}

CommunityReport extract_communities(const PiMatrix& pi, double threshold) {
  CommunityReport report;
  const std::uint32_t n = pi.num_vertices();
  const std::uint32_t k = pi.num_communities();
  report.communities.assign(k, {});
  report.dominant.assign(n, 0);
  for (std::uint32_t v = 0; v < n; ++v) {
    float best = -1.0f;
    std::uint32_t best_k = 0;
    std::uint32_t memberships = 0;
    for (std::uint32_t c = 0; c < k; ++c) {
      const float p = pi.pi(v, c);
      if (p > best) {
        best = p;
        best_k = c;
      }
      if (p >= threshold) {
        report.communities[c].push_back(v);
        ++memberships;
      }
    }
    report.dominant[v] = best_k;
    if (memberships >= 2) ++report.overlapping_vertices;
  }
  // Members were appended in increasing v, so each community is sorted.
  return report;
}

}  // namespace scd::core
