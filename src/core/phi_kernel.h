// The per-vertex update_phi kernel shared by the sequential, parallel
// and distributed samplers: accumulate the neighbor-set gradient (with
// the set's exact/sampled weighting) against the current rows, then stage
// the SGRLD update into `out`.
//
// Keeping this in one place is what makes the cross-sampler equivalence
// tests meaningful: every execution mode runs literally the same
// arithmetic for a given (seed, iteration, vertex, neighbor set). The
// arithmetic itself is routed through the fast_* dispatch of
// core/kernels_simd.h, so all samplers pick the same (fused by default)
// kernel path.
#pragma once

#include <algorithm>
#include <span>

#include "core/grads.h"
#include "core/kernels_simd.h"
#include "graph/minibatch.h"

namespace scd::core {

/// Per-thread scratch reused across vertices: the exact/sampled gradient
/// accumulators (2 x K doubles) plus the fused-kernel staging buffers
/// (w_k floats, Langevin noise doubles). Constructed once per
/// sampler/thread and reused every iteration — no steady-state
/// allocation.
struct PhiScratch {
  std::vector<double> exact;
  std::vector<double> sampled;
  /// Staged w_k (phi gradient) or f_ab(k,k) (theta ratio) for the fused
  /// kernels; ignored on the scalar path.
  std::vector<float> w;
  /// Staged Langevin noise for the fused SGRLD row update.
  std::vector<double> noise;
  /// Per-neighbor-set scalar accumulators for the sparse batched phi
  /// path (core/kernels_simd.h); ignored for dense codecs.
  SparsePhiAccum exact_acc;
  SparsePhiAccum sampled_acc;

  explicit PhiScratch(std::uint32_t k)
      : exact(k), sampled(k), w(k), noise(k) {}
};

/// `row_of(i)` must return the [pi | phi_sum] row of set.samples[i].b.
/// `row_a` is the vertex's own current row; `out` receives the staged
/// updated row (same width).
template <typename RowOf>
void staged_phi_update(std::uint64_t seed, std::uint64_t iteration,
                       graph::Vertex a, std::span<const float> row_a,
                       const graph::NeighborSet& set, RowOf&& row_of,
                       const LikelihoodTerms& terms, double eps,
                       double alpha, std::span<float> out,
                       PhiScratch& scratch, double noise_factor = 1.0,
                       GradientForm form = GradientForm::kRawEqn3) {
  std::fill(scratch.exact.begin(), scratch.exact.end(), 0.0);
  std::fill(scratch.sampled.begin(), scratch.sampled.end(), 0.0);
  for (std::size_t i = 0; i < set.samples.size(); ++i) {
    const graph::NeighborSample& nb = set.samples[i];
    std::span<double> target = i < set.exact_prefix
                                   ? std::span<double>(scratch.exact)
                                   : std::span<double>(scratch.sampled);
    fast_accumulate_phi_grad(row_a, row_of(i), terms, nb.link, target,
                             scratch.w);
  }
  for (std::size_t k = 0; k < scratch.exact.size(); ++k) {
    scratch.exact[k] += set.sampled_scale * scratch.sampled[k];
  }
  std::copy(row_a.begin(), row_a.end(), out.begin());
  fast_update_phi_row(seed, iteration, a, out, scratch.exact, /*scale=*/1.0,
                      eps, alpha, noise_factor, form, scratch.noise);
}

/// Encoded-row variant for the distributed sampler: neighbor rows stay in
/// the DKV's wire codec and are dequantized in-register by the enc
/// kernels. The vertex's own row is decoded once (O(K), off the
/// O(K * |set|) accumulation path) straight into `out`, which doubles as
/// the float row_a the gradient needs and the staging slot the SGRLD
/// update writes in place. `row_of(i)` must return the *encoded* row of
/// set.samples[i].b (quant::encoded_bytes(codec, k + 1) bytes). Under
/// quant::RowCodec::kFloat32 this is bit-identical to staged_phi_update.
template <typename EncRowOf>
void staged_phi_update_enc(quant::RowCodec codec, std::uint64_t seed,
                           std::uint64_t iteration, graph::Vertex a,
                           std::span<const std::byte> row_a_enc,
                           const graph::NeighborSet& set, EncRowOf&& row_of,
                           const LikelihoodTerms& terms, double eps,
                           double alpha, std::span<float> out,
                           PhiScratch& scratch, double noise_factor = 1.0,
                           GradientForm form = GradientForm::kRawEqn3) {
  quant::decode_row(codec, row_a_enc, out);
  std::fill(scratch.exact.begin(), scratch.exact.end(), 0.0);
  std::fill(scratch.sampled.begin(), scratch.sampled.end(), 0.0);
  if (quant::is_sparse(codec)) {
    // Batched sparse path: stage the vertex row's mass/btd sums once
    // (O(K)), accumulate each neighbor in O(nnz_b) with the uniform
    // epsilon terms carried as scalars, then fold them into the gradient
    // with a single O(K) epilogue. Dense-fallback neighbors write their
    // full gradient directly inside the accumulate call.
    const SparsePhiStage stage = sparse_phi_stage(out, terms);
    scratch.exact_acc.reset();
    scratch.sampled_acc.reset();
    for (std::size_t i = 0; i < set.samples.size(); ++i) {
      const graph::NeighborSample& nb = set.samples[i];
      const bool exact = i < set.exact_prefix;
      std::span<double> target = exact ? std::span<double>(scratch.exact)
                                       : std::span<double>(scratch.sampled);
      SparsePhiAccum& acc =
          exact ? scratch.exact_acc : scratch.sampled_acc;
      sparse_accumulate_phi_grad_enc(codec, out, stage, row_of(i), terms,
                                     nb.link, target, acc);
    }
    for (std::size_t k = 0; k < scratch.exact.size(); ++k) {
      scratch.exact[k] += set.sampled_scale * scratch.sampled[k];
    }
    scratch.exact_acc.c0 += set.sampled_scale * scratch.sampled_acc.c0;
    scratch.exact_acc.ceps[0] +=
        set.sampled_scale * scratch.sampled_acc.ceps[0];
    scratch.exact_acc.ceps[1] +=
        set.sampled_scale * scratch.sampled_acc.ceps[1];
    sparse_phi_epilogue(scratch.exact_acc, terms, scratch.exact);
    fast_update_phi_row(seed, iteration, a, out, scratch.exact,
                        /*scale=*/1.0, eps, alpha, noise_factor, form,
                        scratch.noise);
    return;
  }
  for (std::size_t i = 0; i < set.samples.size(); ++i) {
    const graph::NeighborSample& nb = set.samples[i];
    std::span<double> target = i < set.exact_prefix
                                   ? std::span<double>(scratch.exact)
                                   : std::span<double>(scratch.sampled);
    fast_accumulate_phi_grad_enc(codec, out, row_of(i), terms, nb.link,
                                 target, scratch.w);
  }
  for (std::size_t k = 0; k < scratch.exact.size(); ++k) {
    scratch.exact[k] += set.sampled_scale * scratch.sampled[k];
  }
  fast_update_phi_row(seed, iteration, a, out, scratch.exact, /*scale=*/1.0,
                      eps, alpha, noise_factor, form, scratch.noise);
}

}  // namespace scd::core
