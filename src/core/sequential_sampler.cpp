#include "core/sequential_sampler.h"

#include "core/phi_kernel.h"

#include <algorithm>
#include <chrono>

#include "util/error.h"

namespace scd::core {

namespace {
using steady = std::chrono::steady_clock;
}

SequentialSampler::SequentialSampler(const graph::Graph& training,
                                     const graph::HeldOutSplit* heldout,
                                     const Hyper& hyper,
                                     const SamplerOptions& options)
    : graph_(training),
      heldout_(heldout),
      hyper_(hyper),
      options_(options),
      pi_(training.num_vertices(), hyper.num_communities),
      global_(hyper.num_communities),
      minibatch_(training, heldout, options.minibatch),
      ws_(training, minibatch_, hyper.num_communities, pi_.row_width(),
          /*num_threads=*/1, options.num_neighbors,
          /*blocked_theta=*/false) {
  hyper_.validate();
  options_.validate();
  pi_.init_random(options_.seed, options_.init_shape);
  global_.init_random(options_.seed, hyper_);
  terms_.refresh(global_.beta_all(), hyper_.delta);
  if (heldout_ != nullptr) {
    evaluator_ = std::make_unique<PerplexityEvaluator>(
        std::span<const graph::HeldOutPair>(heldout_->pairs()));
  }
}

void SequentialSampler::one_iteration() {
  const double eps = options_.step.eps(iteration_);
  // Per-iteration stream: makes checkpoint resume reproduce the
  // uninterrupted trajectory exactly.
  rng::Xoshiro256 mb_rng =
      derive_rng(options_.seed, rng_label::kMinibatch, iteration_);
  minibatch_.draw_into(mb_rng, ws_.mb, ws_.mb_scratch);
  const graph::Minibatch& mb = ws_.mb;
  const std::uint32_t k = hyper_.num_communities;

  // --- update_phi: gradients against the current state, staged ---------
  ws_.staged.resize(mb.vertices.size() * pi_.row_width());
  ThreadSlot& slot = ws_.slots[0];
  for (std::size_t vi = 0; vi < mb.vertices.size(); ++vi) {
    const graph::Vertex a = mb.vertices[vi];
    rng::Xoshiro256 nbr_rng =
        derive_rng(options_.seed, rng_label::kNeighbors, iteration_, a);
    graph::draw_neighbor_set_into(nbr_rng, options_.neighbor_mode,
                                  graph_.num_vertices(), a,
                                  graph_.neighbors(a),
                                  options_.num_neighbors, slot.set, slot.nbr);
    const graph::NeighborSet& set = slot.set;
    std::span<float> out(ws_.staged.data() + vi * pi_.row_width(),
                         pi_.row_width());
    staged_phi_update(
        options_.seed, iteration_, a, pi_.row(a), set,
        [&](std::size_t i) { return pi_.row(set.samples[i].b); }, terms_,
        eps, hyper_.normalized_alpha(), out, slot.phi);
  }

  // --- update_pi: commit ----------------------------------------------
  for (std::size_t vi = 0; vi < mb.vertices.size(); ++vi) {
    std::span<const float> src(ws_.staged.data() + vi * pi_.row_width(),
                               pi_.row_width());
    std::copy(src.begin(), src.end(), pi_.row(mb.vertices[vi]).begin());
  }

  // --- update_beta/theta: gradients on the fresh pi --------------------
  // Accumulated in the factored ratio form so the arithmetic matches the
  // distributed sampler's reduce exactly (see grads.h).
  std::fill(ws_.ratios.begin(), ws_.ratios.end(), 0.0);
  std::span<double> ratio_link(ws_.ratios.data(), k);
  std::span<double> ratio_nonlink(ws_.ratios.data() + k, k);
  for (const graph::MinibatchPair& p : mb.pairs) {
    fast_accumulate_theta_ratio(pi_.row(p.a), pi_.row(p.b), terms_, p.link,
                                p.link ? ratio_link : ratio_nonlink,
                                slot.phi.w);
  }
  std::fill(ws_.theta_grad.begin(), ws_.theta_grad.end(), 0.0);
  theta_grad_from_ratios(ratio_link, ratio_nonlink, global_.theta_flat(),
                         ws_.theta_grad);
  for (double& g : ws_.theta_grad) g *= mb.scale;
  update_theta(options_.seed, iteration_, global_, ws_.theta_grad, eps,
               hyper_.eta0, hyper_.eta1, options_.noise_factor,
               options_.gradient_form);
  terms_.refresh(global_.beta_all(), hyper_.delta);

  ++iteration_;
}

void SequentialSampler::run(std::uint64_t iterations) {
  if (evaluator_ && options_.eval_interval > 0) {
    // Keep history appends out of the steady-state allocation profile.
    history_.reserve(history_.size() + iterations / options_.eval_interval +
                     1);
  }
  for (std::uint64_t i = 0; i < iterations; ++i) {
    const steady::time_point start = steady::now();
    one_iteration();
    elapsed_s_ += std::chrono::duration<double>(steady::now() - start).count();
    if (evaluator_ && options_.eval_interval > 0 &&
        iteration_ % options_.eval_interval == 0) {
      evaluate_perplexity();
    }
  }
}

double SequentialSampler::evaluate_perplexity() {
  SCD_REQUIRE(evaluator_ != nullptr,
              "no held-out split was given to the sampler");
  const double perp = evaluator_->evaluate(
      terms_, [this](graph::Vertex v) { return pi_.row(v); });
  history_.push_back({iteration_, elapsed_s_, perp});
  return perp;
}


Checkpoint SequentialSampler::checkpoint() const {
  Checkpoint snapshot;
  snapshot.iteration = iteration_;
  snapshot.hyper = hyper_;
  snapshot.pi = pi_;
  snapshot.global = global_;
  return snapshot;
}

void SequentialSampler::restore(const Checkpoint& checkpoint) {
  SCD_REQUIRE(checkpoint.pi.num_vertices() == graph_.num_vertices(),
              "checkpoint is for a different graph size");
  SCD_REQUIRE(checkpoint.hyper.num_communities == hyper_.num_communities,
              "checkpoint is for a different K");
  pi_ = checkpoint.pi;
  global_ = checkpoint.global;
  iteration_ = checkpoint.iteration;
  terms_.refresh(global_.beta_all(), hyper_.delta);
}

}  // namespace scd::core
