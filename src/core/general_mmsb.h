// General (non-assortative) MMSB extension.
//
// The paper works on a-MMSB "for simplicity" and notes (footnote 1) that
// the method applies straightforwardly to the general MMSB model, where
// the single strength-per-community beta_k + background delta is replaced
// by a full symmetric block matrix B: a pair (a, b) with community draws
// (z_ab = k, z_ba = l) links with probability B_kl. This module provides
// that extension for the in-process samplers:
//
//   * likelihood  Z_ab^(y) = sum_{k,l} pi_ak pi_bl Bt_kl,   O(K^2)
//   * phi gradient g(phi_ak) = (sum_l pi_bl Bt_kl / Z - 1) / phi_sum_a
//   * B gradient via the expanded-mean theta_{kl,i} per unordered block
//     pair (k <= l), so symmetry of B is structural.
//
// The a-MMSB gradients drop out as the special case B_kk = beta_k,
// B_{k != l} = delta — asserted by tests. The general model can express
// disassortative structure (e.g. bipartite-like graphs) that a-MMSB
// cannot; see GeneralMmsbTest.RecoversDisassortativeStructure.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "core/hyper.h"
#include "core/state.h"

namespace scd::core {

/// Symmetric K x K block-strength state in the expanded-mean
/// parameterization: one (theta0, theta1) pair per unordered (k, l).
class BlockMatrix {
 public:
  explicit BlockMatrix(std::uint32_t num_communities);

  std::uint32_t num_communities() const { return k_; }
  std::uint32_t num_blocks() const { return k_ * (k_ + 1) / 2; }

  /// Flat index of the unordered pair (k, l).
  std::uint32_t block_index(std::uint32_t k, std::uint32_t l) const {
    if (k > l) std::swap(k, l);
    // Row-major upper triangle: offset(k) = k*K - k(k-1)/2.
    return k * k_ - k * (k - 1) / 2 + (l - k);
  }

  double theta(std::uint32_t block, unsigned i) const {
    return theta_[block * 2 + i];
  }
  void set_theta(std::uint32_t block, unsigned i, double value) {
    theta_[block * 2 + i] = value;
  }
  std::span<double> theta_flat() { return theta_; }

  /// B_kl = theta1 / (theta0 + theta1), clamped into (0, 1).
  float b(std::uint32_t k, std::uint32_t l) const {
    return b_[block_index(k, l)];
  }
  std::span<const float> b_flat() const { return b_; }

  /// theta_{kl,i} ~ Gamma(eta_i); deterministic per seed.
  void init_random(std::uint64_t seed, const Hyper& hyper);

  /// Assortative initialization: diagonal blocks start at beta_diag
  /// (jittered per block), off-diagonal blocks at delta_off, both with
  /// `pseudo_count` total pseudo-observations. This reproduces the
  /// structural symmetry-breaking that a-MMSB gets for free from its
  /// fixed small delta — without it, a diffuse start is a saddle where
  /// every block sees the same data (see general_sampler.h). B remains
  /// free to move off-diagonal during training.
  void init_assortative(std::uint64_t seed, double beta_diag,
                        double delta_off, double pseudo_count = 10.0);

  void refresh_b();

 private:
  std::uint32_t k_;
  std::vector<double> theta_;  // blocks x 2
  std::vector<float> b_;       // blocks
};

/// Per-iteration cache of the y-dependent block terms:
/// bt[y=1] = B, bt[y=0] = 1 - B (flat upper-triangle layout).
struct GeneralLikelihoodTerms {
  std::vector<float> bt_link;
  std::vector<float> bt_nonlink;
  std::uint32_t k = 0;

  void refresh(const BlockMatrix& blocks);
  float bt(bool y, std::uint32_t block) const {
    return y ? bt_link[block] : bt_nonlink[block];
  }
};

/// Z_ab^(y): sum over (k, l) of pi_ak pi_bl Bt_kl. O(K^2).
/// Rows use the [pi | phi_sum] layout.
double general_pair_likelihood(std::span<const float> row_a,
                               std::span<const float> row_b,
                               const GeneralLikelihoodTerms& terms,
                               const BlockMatrix& blocks, bool y);

/// Add the phi gradient of log Z into grad; returns Z.
double general_accumulate_phi_grad(std::span<const float> row_a,
                                   std::span<const float> row_b,
                                   const GeneralLikelihoodTerms& terms,
                                   const BlockMatrix& blocks, bool y,
                                   std::span<double> grad);

/// Add the per-block ratio sum_{(k,l) in block} pi_ak pi_bl Bt / Z into
/// `ratio` (one slot per unordered block); returns Z. Feeds
/// general_theta_grad_from_ratios like the a-MMSB factored path.
double general_accumulate_theta_ratio(std::span<const float> row_a,
                                      std::span<const float> row_b,
                                      const GeneralLikelihoodTerms& terms,
                                      const BlockMatrix& blocks, bool y,
                                      std::span<double> ratio);

/// Assemble the blocks x 2 theta gradient from per-stratum ratio sums.
void general_theta_grad_from_ratios(std::span<const double> ratio_link,
                                    std::span<const double> ratio_nonlink,
                                    const BlockMatrix& blocks,
                                    std::span<double> grad);

/// SGRLD update of theta (all blocks); grad must include the h(E_n)
/// scale. Noise stream: (seed, kThetaNoise, iteration). Refreshes B.
void general_update_theta(std::uint64_t seed, std::uint64_t iteration,
                          BlockMatrix& blocks, std::span<const double> grad,
                          double eps, double eta0, double eta1,
                          double noise_factor = 1.0);

}  // namespace scd::core
