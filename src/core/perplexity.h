// Held-out perplexity (Eqn 7).
//
// The estimator averages *probabilities* across the T posterior samples
// collected so far (one per evaluation point), then takes
// exp(-mean log avg-prob). Each evaluator instance owns one slice of E_h
// (a rank's share in the distributed setting; everything in one process
// otherwise) and keeps the running per-pair probability sums between
// evaluations.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "core/grads.h"
#include "core/kernels_simd.h"
#include "graph/heldout.h"

namespace scd::core {

class PerplexityEvaluator {
 public:
  explicit PerplexityEvaluator(std::span<const graph::HeldOutPair> slice);

  std::span<const graph::HeldOutPair> slice() const { return slice_; }
  std::size_t size() const { return slice_.size(); }

  /// Record this sample's probability for pair index i of the slice.
  /// Thread-safe for distinct i.
  void add_sample_prob(std::size_t i, double prob) {
    prob_sums_[i] += prob;
  }

  /// Advance the sample counter after all pairs were recorded.
  void finish_sample() { ++num_samples_; }

  std::uint64_t num_samples() const { return num_samples_; }

  /// sum over the slice of log(average probability). The distributed
  /// reduction sums these (plus counts) across ranks.
  double sum_log_avg() const;

  /// exp(-sum/count): combine after a global reduction.
  static double perplexity(double total_sum_log_avg,
                           std::uint64_t total_pairs);

  /// Convenience for single-process samplers: evaluate this slice with
  /// row access through `row_of(vertex)`, update the running averages and
  /// return the current perplexity of the slice. All per-sample
  /// probability state lives in the preallocated `prob_sums_`, so
  /// evaluation allocates nothing.
  template <typename RowOf>
  double evaluate(const LikelihoodTerms& terms, RowOf&& row_of) {
    for (std::size_t i = 0; i < slice_.size(); ++i) {
      const graph::HeldOutPair& p = slice_[i];
      const double z =
          fast_pair_likelihood(row_of(p.a), row_of(p.b), terms, p.link);
      add_sample_prob(i, z);
    }
    finish_sample();
    return perplexity(sum_log_avg(), slice_.size());
  }

 private:
  std::span<const graph::HeldOutPair> slice_;
  std::vector<double> prob_sums_;
  std::uint64_t num_samples_ = 0;
};

}  // namespace scd::core
