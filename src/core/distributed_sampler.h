// The paper's contribution: the parallel + distributed SG-MCMC sampler,
// executed on a comm::Cluster backend: the virtual-time simulator
// (sim::SimCluster) or real forked processes (proc::ProcCluster).
//
// Topology: rank 0 is the master (owns E, draws and deploys minibatches,
// updates theta/beta); ranks 1..W are workers (own a static shard of the
// pi DKV rows and a slice of E_h). One iteration:
//
//   master                         workers
//   ------------------------------ ---------------------------------------
//   draw E_n (t) [or already done  recv minibatch share + touched E subset
//   during t-1 when pipelined]       (kDeployMinibatch books the wait)
//   scatter shares                 sample V_n per local vertex
//   [pipelined: draw+send t+1 now] update_phi: chunked DKV loads of pi
//                                    rows double-buffered against compute
//                                  ---- worker barrier (phi before pi) ----
//                                  update_pi: write [pi|phi_sum] rows
//                                  ---- worker barrier (pi before beta) ---
//                                  update_beta: load pair rows, accumulate
//                                    theta-ratio partials
//   <------------- reduce_sum(2K ratio doubles) ------------->
//   theta SGRLD step, beta = f(theta)
//   <------------- broadcast(beta) --------------------------->
//   [every eval_interval] perplexity over the E_h slices, reduced.
//
// Execution modes:
//   * Real — full inference on an actual graph; numerically equivalent to
//     SequentialSampler for any worker count (same derive_rng streams).
//   * CostOnly — no state, no graph: a PhantomWorkload supplies the loop
//     trip counts and the run charges exactly the costs the real mode
//     would, enabling paper-scale sweeps (com-Friendster, K = 12288).
#pragma once

#include <functional>
#include <memory>
#include <optional>
#include <vector>

#include "core/grads.h"
#include "core/options.h"
#include "core/perplexity.h"
#include "core/state.h"
#include "comm/cluster.h"
#include "comm/context.h"
#include "dkv/sharded_dkv.h"
#include "graph/graph.h"
#include "graph/heldout.h"
#include "graph/minibatch.h"

namespace scd::fault {
struct FaultPlan;
class FaultInjector;
}  // namespace scd::fault

namespace scd::core {

struct Checkpoint;

/// Loop trip counts for cost-only runs at paper scale.
struct PhantomWorkload {
  std::uint64_t num_vertices = 0;
  double avg_degree = 0.0;
  /// M: vertices per minibatch (each worker gets M / W of them).
  std::uint32_t minibatch_vertices = 0;
  /// |E_n|: pairs per minibatch for update_beta.
  std::uint64_t minibatch_pairs = 0;
  /// |E_h|: held-out pairs per perplexity evaluation (0 disables).
  std::uint64_t heldout_pairs = 0;
};

struct DistributedOptions {
  SamplerOptions base{};
  /// Pipelining (Section III-D): master draws/deploys iteration t+1
  /// during the workers' update_phi of t, and pi loads are
  /// double-buffered against the phi compute. Fig. 3 toggles this.
  bool pipeline = true;
  /// Vertices per pipeline chunk in update_phi.
  std::uint32_t chunk_vertices = 32;
  /// Deduplicate DKV row references within each read stage (chunk loads,
  /// update_beta pair endpoints, perplexity pairs): each distinct row
  /// crosses the wire once per stage. Safe because pi is read-only
  /// between the stage barriers; trajectories are bit-identical either
  /// way (tested). Off reproduces one fetch per reference.
  bool dedup_reads = true;
  /// Called by the master rank at the top of every iteration (tests and
  /// progress reporting; leave empty for none).
  std::function<void(std::uint64_t)> master_iteration_hook;
  /// Fault-tolerant mode: when non-null (even an *empty* plan) the run
  /// uses the master-coordinated FT protocol — per-stage heartbeats with
  /// dead-worker detection, minibatch reassignment over the surviving
  /// ranks, and DKV shard re-homing — driven by this plan's injected
  /// faults. Null keeps the legacy collectives path, bit-identical in
  /// both numbers and virtual time to builds without the fault
  /// subsystem. Real mode only; the plan must outlive run().
  const fault::FaultPlan* fault_plan = nullptr;
  /// FT mode: every this many iterations the master serializes a
  /// core/checkpoint snapshot of pi + theta, and a worker death rolls
  /// the run back to the latest snapshot instead of accepting the dead
  /// worker's lost in-flight pi writes. 0 disables rollback (the default
  /// recovery: redo the interrupted iteration on the survivors).
  std::uint64_t rollback_interval = 0;
  /// Cost-only mode: modeled per-worker LRU cache over remote pi rows,
  /// in rows (0 = no cache). Expected remote rows are served at the
  /// steady-state LRU hit rate (capacity / remote row population,
  /// clamped to 1); hits cost a local memory stream, misses pay the
  /// remote read plus ComputeModel::dkv_cache_insert_s of bookkeeping.
  /// Hit/miss counts land in Metric::kDkvHits/kDkvMisses when tracing.
  /// Real mode ignores this (dkv/cached_dkv.h is the real-mode wrapper);
  /// the knob exists so the autotuner can search cache capacity — and
  /// rediscover the paper's Section IV-C observation that caching buys
  /// nothing once N is far beyond any plausible capacity.
  std::uint64_t dkv_cache_rows = 0;
  /// Row codec for pi rows in the DKV and on the wire (quant/row_codec.h):
  /// kFloat32 (default, bit-identical to the pre-codec path), kFp16, or
  /// kInt8 (per-row scale + offset). Rows are stored and shipped encoded
  /// — get/put costs charge the reduced value_bytes() in both real and
  /// cost-only mode — and the enc kernels dequantize in-register, so a
  /// decoded float row never materializes on the per-neighbor hot path.
  /// Lossy codecs perturb the trajectory; held-out perplexity stays
  /// within tolerance on the generator workloads (tests/quant).
  quant::RowCodec pi_codec = quant::RowCodec::kFloat32;
  /// Sparse pi codecs only: the top-R mass tolerance — each row keeps
  /// its largest entries until the dropped tail holds at most this
  /// fraction of row mass (quant/row_codec.h). Smaller = denser rows,
  /// closer trajectories; larger = fewer bytes and O(nnz) kernel work.
  /// Ignored by dense codecs.
  float sparse_eps = quant::kDefaultSparseEps;
  /// Cost-only mode with a sparse pi codec: assumed nnz per row for the
  /// modeled wire bytes and kernel trip counts (0 = auto: K/16, clamped
  /// to [8, K]). Real mode ignores this — it tracks actual row sparsity.
  std::uint32_t sparse_modeled_nnz = 0;
  /// Real mode: initialize pi and theta/beta from this checkpoint
  /// instead of the seeded expanded-mean draw. The checkpoint's pi_codec
  /// provenance must equal `pi_codec` — resuming lossy state under a
  /// different codec silently changes what the DKV round-trips, so a
  /// mismatch is a hard error naming both codecs. Vertex count and K
  /// must match the run. Must outlive the constructor.
  const Checkpoint* resume_from = nullptr;
  /// When non-null, run() installs this recorder on the cluster,
  /// transport, and DKV store: every clock-advancing region is wrapped
  /// in a virtual-time span on its rank's lane, message/collective edges
  /// are recorded for critical-path analysis, and the typed metrics
  /// (bytes, messages, DKV rows, recoveries) are counted. Recording only
  /// samples the clocks — trajectories and modeled virtual times are
  /// bit-identical to an untraced run. Must outlive run() and have at
  /// least workers + 1 lanes; uninstalled before run() returns.
  trace::TraceRecorder* trace = nullptr;
};

struct DistributedResult {
  std::uint64_t iterations = 0;
  /// max over ranks of final virtual clock.
  double virtual_seconds = 0.0;
  double avg_iteration_seconds = 0.0;
  /// Per-phase time, max over ranks, for the whole run (virtual seconds
  /// on the simulated backend, wall seconds on the process backend).
  comm::PhaseStats critical_path;
  /// Perplexity trace (real mode; seconds are virtual cluster time).
  std::vector<HistoryPoint> history;
  /// FT mode: worker ranks that fail-stopped during the run, in
  /// detection order.
  std::vector<unsigned> crashed_ranks;
  /// FT mode: iterations redone after a crash (restart or rollback).
  std::uint64_t redone_iterations = 0;
};

class DistributedSampler {
 public:
  /// Real mode. `cluster` must have num_ranks = workers + 1 (>= 2).
  /// The graph/heldout referents must outlive the sampler.
  DistributedSampler(comm::Cluster& cluster, const graph::Graph& training,
                     const graph::HeldOutSplit* heldout, const Hyper& hyper,
                     const DistributedOptions& options);

  /// Cost-only mode at the scale described by `workload` (simulated
  /// backend only — there is nothing real to execute).
  DistributedSampler(comm::Cluster& cluster,
                     const PhantomWorkload& workload, const Hyper& hyper,
                     const DistributedOptions& options);

  ~DistributedSampler();

  /// Execute `iterations` iterations. One-shot: a sampler instance runs
  /// once (per-worker evaluator state lives inside the run).
  DistributedResult run(std::uint64_t iterations);

  /// Real mode, after run(): copy all pi rows out of the DKV store.
  PiMatrix snapshot_pi() const;
  const GlobalState& global() const { return global_; }
  const dkv::ShardedDkv& store() const { return *store_; }
  unsigned num_workers() const { return num_workers_; }

 private:
  void master_loop(comm::Context& ctx, std::uint64_t iterations);
  void worker_loop(comm::Context& ctx, std::uint64_t iterations);
  /// Fault-tolerant twins, active when options_.fault_plan is set:
  /// collectives are replaced by master-coordinated heartbeat rounds so
  /// membership can shrink mid-run. See "Fault model & recovery" in
  /// DESIGN.md.
  void ft_master_loop(comm::Context& ctx, std::uint64_t iterations);
  void ft_worker_loop(comm::Context& ctx);
  bool real() const { return graph_ != nullptr; }
  bool eval_due(std::uint64_t t) const {
    const std::uint64_t every = options_.base.eval_interval;
    return every > 0 && (t + 1) % every == 0 && heldout_size_ > 0;
  }

  comm::Cluster& cluster_;
  const graph::Graph* graph_ = nullptr;        // null in cost-only mode
  const graph::HeldOutSplit* heldout_ = nullptr;
  PhantomWorkload phantom_{};
  Hyper hyper_;
  DistributedOptions options_;
  unsigned num_workers_;
  std::uint64_t num_vertices_;
  std::uint64_t heldout_size_;

  std::unique_ptr<dkv::ShardedDkv> store_;
  GlobalState global_;
  std::optional<graph::MinibatchSampler> minibatch_;

  std::unique_ptr<fault::FaultInjector> injector_;  // FT mode only

  bool ran_ = false;
  std::vector<HistoryPoint> history_;  // written by master rank only
  std::vector<unsigned> crashed_ranks_;   // written by master rank only
  std::uint64_t redone_iterations_ = 0;   // written by master rank only
};

}  // namespace scd::core
