#include "core/distributed_sampler.h"

#include "core/phi_kernel.h"

#include <algorithm>
#include <cmath>

#include "sim/pipeline_cost.h"
#include "threading/thread_pool.h"
#include "util/bytes.h"
#include "util/error.h"

namespace scd::core {

namespace {

constexpr int kTagDeploy = 1;
constexpr unsigned kChannelGlobal = 0;   // master + all workers
constexpr unsigned kChannelWorkers = 1;  // workers only (DKV consistency)

using threading::ThreadPool;

/// One worker's share of the minibatch, as shipped by the master.
struct DeployShare {
  std::uint64_t iteration = 0;
  std::vector<graph::Vertex> vertices;
  std::vector<std::uint32_t> degrees;
  std::vector<graph::Vertex> adjacency;  // concatenated per vertex
  std::vector<graph::Vertex> pair_a;
  std::vector<graph::Vertex> pair_b;
  std::vector<std::uint8_t> pair_y;

  std::span<const graph::Vertex> adj_of(std::size_t vi,
                                        std::size_t offset) const {
    return {adjacency.data() + offset, degrees[vi]};
  }
};

std::vector<std::byte> serialize_share(const DeployShare& share) {
  ByteWriter w;
  w.put(share.iteration);
  w.put_span(std::span<const graph::Vertex>(share.vertices));
  w.put_span(std::span<const std::uint32_t>(share.degrees));
  w.put_span(std::span<const graph::Vertex>(share.adjacency));
  w.put_span(std::span<const graph::Vertex>(share.pair_a));
  w.put_span(std::span<const graph::Vertex>(share.pair_b));
  w.put_span(std::span<const std::uint8_t>(share.pair_y));
  return w.take();
}

DeployShare deserialize_share(std::span<const std::byte> bytes) {
  ByteReader r(bytes);
  DeployShare share;
  share.iteration = r.get<std::uint64_t>();
  share.vertices = r.get_vector<graph::Vertex>();
  share.degrees = r.get_vector<std::uint32_t>();
  share.adjacency = r.get_vector<graph::Vertex>();
  share.pair_a = r.get_vector<graph::Vertex>();
  share.pair_b = r.get_vector<graph::Vertex>();
  share.pair_y = r.get_vector<std::uint8_t>();
  SCD_ASSERT(r.exhausted(), "trailing bytes in deploy share");
  return share;
}

/// Wire size of a phantom worker share with the given counts.
std::uint64_t phantom_share_bytes(std::uint64_t vertices,
                                  std::uint64_t adjacency_entries,
                                  std::uint64_t pairs) {
  // iteration + 6 span length headers.
  return 8 + 6 * 8 + vertices * 4 /*ids*/ + vertices * 4 /*degrees*/ +
         adjacency_entries * 4 + pairs * (4 + 4 + 1);
}

}  // namespace

DistributedSampler::DistributedSampler(sim::SimCluster& cluster,
                                       const graph::Graph& training,
                                       const graph::HeldOutSplit* heldout,
                                       const Hyper& hyper,
                                       const DistributedOptions& options)
    : cluster_(cluster),
      graph_(&training),
      heldout_(heldout),
      hyper_(hyper),
      options_(options),
      num_workers_(cluster.num_ranks() - 1),
      num_vertices_(training.num_vertices()),
      heldout_size_(heldout != nullptr ? heldout->pairs().size() : 0),
      global_(hyper.num_communities) {
  SCD_REQUIRE(cluster.num_ranks() >= 2,
              "distributed sampler needs a master and >= 1 worker");
  hyper_.validate();
  options_.base.validate();
  SCD_REQUIRE(options_.chunk_vertices >= 1, "chunk_vertices must be >= 1");

  store_ = std::make_unique<dkv::SimRdmaDkv>(
      num_vertices_, pi_row_width(hyper_.num_communities), num_workers_,
      cluster.network(), cluster.compute_model(), /*phantom=*/false);
  // Deterministic expanded-mean initialisation, identical to the
  // in-process samplers (setup is untimed, as in the paper).
  std::vector<float> row(store_->row_width());
  for (std::uint64_t v = 0; v < num_vertices_; ++v) {
    init_pi_row(options_.base.seed, v, options_.base.init_shape, row);
    store_->init_row(v, row);
  }
  global_.init_random(options_.base.seed, hyper_);
  minibatch_.emplace(training, heldout, options_.base.minibatch);
}

DistributedSampler::DistributedSampler(sim::SimCluster& cluster,
                                       const PhantomWorkload& workload,
                                       const Hyper& hyper,
                                       const DistributedOptions& options)
    : cluster_(cluster),
      phantom_(workload),
      hyper_(hyper),
      options_(options),
      num_workers_(cluster.num_ranks() - 1),
      num_vertices_(workload.num_vertices),
      heldout_size_(workload.heldout_pairs),
      global_(hyper.num_communities) {
  SCD_REQUIRE(cluster.num_ranks() >= 2,
              "distributed sampler needs a master and >= 1 worker");
  SCD_REQUIRE(workload.num_vertices >= 2 &&
                  workload.minibatch_vertices >= 1,
              "phantom workload underspecified");
  hyper_.validate();
  options_.base.validate();
  store_ = std::make_unique<dkv::SimRdmaDkv>(
      num_vertices_, pi_row_width(hyper_.num_communities), num_workers_,
      cluster.network(), cluster.compute_model(), /*phantom=*/true);
}

DistributedResult DistributedSampler::run(std::uint64_t iterations) {
  SCD_REQUIRE(!ran_, "a DistributedSampler instance runs exactly once");
  ran_ = true;
  history_.clear();

  cluster_.run([this, iterations](sim::RankContext& ctx) {
    if (ctx.is_master()) {
      master_loop(ctx, iterations);
    } else {
      worker_loop(ctx, iterations);
    }
  });

  DistributedResult result;
  result.iterations = iterations;
  result.virtual_seconds = cluster_.max_clock();
  result.avg_iteration_seconds =
      iterations > 0 ? result.virtual_seconds /
                           static_cast<double>(iterations)
                     : 0.0;
  result.critical_path = cluster_.max_stats();
  result.history = history_;
  return result;
}

// ---------------------------------------------------------------------
// Master
// ---------------------------------------------------------------------

void DistributedSampler::master_loop(sim::RankContext& ctx,
                                     std::uint64_t iterations) {
  const std::uint32_t k = hyper_.num_communities;
  const unsigned w = num_workers_;
  sim::SimTransport& net = ctx.transport();

  // Initial beta so workers can form likelihood terms.
  std::vector<float> beta_buf(global_.beta_all().begin(),
                              global_.beta_all().end());
  net.broadcast(0, 0, std::span<float>(beta_buf), kChannelGlobal);

  // Draw + scatter one minibatch; returns its h(E_n) scale.
  auto deploy = [&](std::uint64_t t) -> double {
    if (real()) {
      rng::Xoshiro256 mb_rng =
          derive_rng(options_.base.seed, rng_label::kMinibatch, t);
      const graph::Minibatch mb = minibatch_->draw(mb_rng);
      ctx.charge(sim::Phase::kDrawMinibatch,
                 ctx.compute().draw_cost_per_vertex_s *
                     static_cast<double>(mb.vertices.size()));
      for (unsigned wi = 0; wi < w; ++wi) {
        DeployShare share;
        share.iteration = t;
        const auto [vlo, vhi] =
            ThreadPool::chunk_bounds(0, mb.vertices.size(), wi, w);
        for (std::uint64_t i = vlo; i < vhi; ++i) {
          const graph::Vertex a = mb.vertices[i];
          share.vertices.push_back(a);
          const auto adj = graph_->neighbors(a);
          share.degrees.push_back(static_cast<std::uint32_t>(adj.size()));
          share.adjacency.insert(share.adjacency.end(), adj.begin(),
                                 adj.end());
        }
        const auto [plo, phi] =
            ThreadPool::chunk_bounds(0, mb.pairs.size(), wi, w);
        for (std::uint64_t i = plo; i < phi; ++i) {
          share.pair_a.push_back(mb.pairs[i].a);
          share.pair_b.push_back(mb.pairs[i].b);
          share.pair_y.push_back(mb.pairs[i].link ? 1 : 0);
        }
        std::vector<std::byte> payload = serialize_share(share);
        net.send(0, wi + 1, kTagDeploy,
                 std::span<const std::byte>(payload));
      }
      return mb.scale;
    }
    // Cost-only: charge the draw and ship phantom shares of the right
    // size.
    ctx.charge(sim::Phase::kDrawMinibatch,
               ctx.compute().draw_cost_per_vertex_s *
                   static_cast<double>(phantom_.minibatch_vertices));
    for (unsigned wi = 0; wi < w; ++wi) {
      const auto [vlo, vhi] =
          ThreadPool::chunk_bounds(0, phantom_.minibatch_vertices, wi, w);
      const auto [plo, phi] =
          ThreadPool::chunk_bounds(0, phantom_.minibatch_pairs, wi, w);
      const std::uint64_t vertices = vhi - vlo;
      const auto adjacency = static_cast<std::uint64_t>(
          static_cast<double>(vertices) * phantom_.avg_degree);
      net.send_phantom(0, wi + 1, kTagDeploy,
                       phantom_share_bytes(vertices, adjacency, phi - plo));
    }
    return 1.0;
  };

  double scale_current = deploy(0);
  double scale_next = 0.0;

  for (std::uint64_t t = 0; t < iterations; ++t) {
    // Pipelined: prepare iteration t+1 while workers run update_phi of t.
    if (options_.pipeline && t + 1 < iterations) {
      scale_next = deploy(t + 1);
    }

    // update_beta/theta: collect the workers' ratio partials.
    std::vector<double> ratios(std::size_t{k} * 2, 0.0);
    {
      const double before = ctx.clock().now();
      net.reduce_sum(0, 0, ratios, kChannelGlobal);
      ctx.stats().add(sim::Phase::kBarrierWait,
                      ctx.clock().now() - before);
    }
    if (real()) {
      std::vector<double> grad(std::size_t{k} * 2, 0.0);
      theta_grad_from_ratios(std::span<const double>(ratios.data(), k),
                             std::span<const double>(ratios.data() + k, k),
                             global_.theta_flat(), grad);
      for (double& g : grad) g *= scale_current;
      update_theta(options_.base.seed, t, global_, grad,
                   options_.base.step.eps(t), hyper_.eta0, hyper_.eta1,
                   options_.base.noise_factor,
                   options_.base.gradient_form);
      std::copy(global_.beta_all().begin(), global_.beta_all().end(),
                beta_buf.begin());
    } else {
      beta_buf.assign(k, 0.5f);
    }
    ctx.charge_serial(sim::Phase::kUpdateBetaTheta,
                      static_cast<double>(k) * 2.0,
                      ctx.compute().theta_unit_cycles);
    {
      const double before = ctx.clock().now();
      net.broadcast(0, 0, std::span<float>(beta_buf), kChannelGlobal);
      ctx.stats().add(sim::Phase::kUpdateBetaTheta,
                      ctx.clock().now() - before);
    }

    // Non-pipelined: the next draw serializes after this iteration.
    if (!options_.pipeline && t + 1 < iterations) {
      scale_next = deploy(t + 1);
    }

    if (eval_due(t)) {
      std::vector<double> acc = {0.0, 0.0};  // [sum log avg, pair count]
      const double before = ctx.clock().now();
      net.reduce_sum(0, 0, acc, kChannelGlobal);
      ctx.stats().add(sim::Phase::kBarrierWait,
                      ctx.clock().now() - before);
      if (real()) {
        const double perp = PerplexityEvaluator::perplexity(
            acc[0], static_cast<std::uint64_t>(acc[1]));
        history_.push_back({t + 1, ctx.clock().now(), perp});
      }
    }

    scale_current = scale_next;
  }
}

// ---------------------------------------------------------------------
// Worker
// ---------------------------------------------------------------------

void DistributedSampler::worker_loop(sim::RankContext& ctx,
                                     std::uint64_t iterations) {
  const std::uint32_t k = hyper_.num_communities;
  const std::uint32_t width = pi_row_width(k);
  const unsigned w = num_workers_;
  const unsigned wi = ctx.rank() - 1;  // worker index == DKV shard
  const std::uint32_t n_nbr = options_.base.num_neighbors;
  sim::SimTransport& net = ctx.transport();

  // Initial beta.
  std::vector<float> beta_buf(k, 0.0f);
  net.broadcast(ctx.rank(), 0, std::span<float>(beta_buf), kChannelGlobal);
  LikelihoodTerms terms;
  terms.refresh(beta_buf, hyper_.delta);

  // This worker's held-out slice and its persistent running averages.
  std::unique_ptr<PerplexityEvaluator> evaluator;
  if (real() && heldout_ != nullptr && heldout_size_ > 0) {
    const auto [lo, hi] = ThreadPool::chunk_bounds(0, heldout_size_, wi, w);
    evaluator = std::make_unique<PerplexityEvaluator>(
        std::span<const graph::HeldOutPair>(heldout_->pairs().data() + lo,
                                            hi - lo));
  }
  // Phantom slice size for cost charges.
  const auto [ph_lo, ph_hi] =
      ThreadPool::chunk_bounds(0, heldout_size_, wi, w);
  const std::uint64_t phantom_slice = ph_hi - ph_lo;

  for (std::uint64_t t = 0; t < iterations; ++t) {
    // ---- receive this iteration's minibatch share ---------------------
    DeployShare share;
    std::uint64_t n_local;
    std::uint64_t p_local;
    {
      const double before = ctx.clock().now();
      if (real()) {
        const std::vector<std::byte> payload =
            net.recv<std::byte>(ctx.rank(), 0, kTagDeploy);
        share = deserialize_share(payload);
        SCD_ASSERT(share.iteration == t, "deploy out of order");
        n_local = share.vertices.size();
        p_local = share.pair_a.size();
      } else {
        net.recv_discard(ctx.rank(), 0, kTagDeploy);
        const auto [vlo, vhi] =
            ThreadPool::chunk_bounds(0, phantom_.minibatch_vertices, wi, w);
        const auto [plo, phi] =
            ThreadPool::chunk_bounds(0, phantom_.minibatch_pairs, wi, w);
        n_local = vhi - vlo;
        p_local = phi - plo;
      }
      ctx.stats().add(sim::Phase::kDeployMinibatch,
                      ctx.clock().now() - before);
    }

    // ---- sample neighbor sets V_n -------------------------------------
    // In link-aware mode the set additionally holds the vertex's links,
    // which arrived with the deploy share.
    const double phantom_set_size =
        n_nbr + (options_.base.neighbor_mode == NeighborMode::kLinkAware
                     ? phantom_.avg_degree
                     : 0.0);
    std::vector<graph::NeighborSet> neighbor_sets;
    double total_samples = static_cast<double>(n_local) * phantom_set_size;
    if (real()) {
      neighbor_sets.resize(n_local);
      total_samples = 0.0;
      std::size_t adj_offset = 0;
      for (std::size_t vi = 0; vi < n_local; ++vi) {
        const graph::Vertex a = share.vertices[vi];
        rng::Xoshiro256 nbr_rng =
            derive_rng(options_.base.seed, rng_label::kNeighbors, t, a);
        neighbor_sets[vi] = graph::draw_neighbor_set(
            nbr_rng, options_.base.neighbor_mode,
            static_cast<graph::Vertex>(num_vertices_), a,
            share.adj_of(vi, adj_offset), n_nbr);
        adj_offset += share.degrees[vi];
        total_samples +=
            static_cast<double>(neighbor_sets[vi].samples.size());
      }
    }
    ctx.charge_kernel(sim::Phase::kSampleNeighbors, total_samples,
                      ctx.compute().neighbor_unit_cycles);

    // ---- update_phi: chunked loads double-buffered with compute --------
    std::vector<float> staged(n_local * width);
    sim::PipelineCost pipe;
    const std::uint64_t chunk = options_.chunk_vertices;
    std::vector<std::uint64_t> keys;
    std::vector<float> rows;
    PhiScratch scratch(k);
    for (std::uint64_t lo = 0; lo < n_local; lo += chunk) {
      const std::uint64_t hi = std::min<std::uint64_t>(lo + chunk, n_local);
      double load_cost;
      double chunk_samples;
      if (real()) {
        keys.clear();
        chunk_samples = 0.0;
        for (std::uint64_t vi = lo; vi < hi; ++vi) {
          keys.push_back(share.vertices[vi]);
          for (const graph::NeighborSample& nb :
               neighbor_sets[vi].samples) {
            keys.push_back(nb.b);
          }
          chunk_samples +=
              static_cast<double>(neighbor_sets[vi].samples.size());
        }
        rows.resize(keys.size() * width);
        load_cost = store_->get_rows(wi, keys, rows);
        // Compute phi* for the chunk from the freshly loaded rows.
        std::size_t row_idx = 0;
        for (std::uint64_t vi = lo; vi < hi; ++vi) {
          const graph::Vertex a = share.vertices[vi];
          const graph::NeighborSet& set = neighbor_sets[vi];
          std::span<const float> row_a(rows.data() + row_idx * width,
                                       width);
          const std::size_t first_nbr_row = row_idx + 1;
          row_idx += 1 + set.samples.size();
          std::span<float> out(staged.data() + vi * width, width);
          staged_phi_update(
              options_.base.seed, t, a, row_a, set,
              [&](std::size_t i) {
                return std::span<const float>(
                    rows.data() + (first_nbr_row + i) * width, width);
              },
              terms, options_.base.step.eps(t),
              hyper_.normalized_alpha(), out, scratch,
              options_.base.noise_factor, options_.base.gradient_form);
        }
      } else {
        // Expected local/remote split of uniformly random rows.
        chunk_samples =
            static_cast<double>(hi - lo) * phantom_set_size;
        const auto rows_in_chunk = static_cast<std::uint64_t>(
            static_cast<double>(hi - lo) + chunk_samples);
        const std::uint64_t local = rows_in_chunk / w;
        load_cost = store_->read_cost(wi, local, rows_in_chunk - local);
      }
      const double compute_cost = ctx.compute().kernel_time(
          chunk_samples * k, ctx.compute().phi_unit_cycles);
      pipe.add_chunk(load_cost, compute_cost);
    }
    // Stats record the sub-stage views of Table III; the clock advances
    // by the (possibly overlapped) critical path.
    ctx.stats().add(sim::Phase::kLoadPi, pipe.load_total());
    ctx.stats().add(sim::Phase::kUpdatePhi, pipe.compute_total());
    ctx.clock().advance(pipe.total(options_.pipeline));

    // phi must be fully read cluster-wide before anyone writes pi.
    ctx.timed_barrier(kChannelWorkers, w);

    // ---- update_pi: normalize (folded in phi*) + DKV write-back --------
    {
      ctx.charge_kernel(sim::Phase::kUpdatePi,
                        static_cast<double>(n_local) * k,
                        ctx.compute().pi_unit_cycles);
      double write_cost;
      if (real()) {
        keys.assign(share.vertices.begin(), share.vertices.end());
        write_cost = store_->put_rows(wi, keys, staged);
      } else {
        const std::uint64_t local = n_local / w;
        write_cost = store_->write_cost(wi, local, n_local - local);
      }
      ctx.charge(sim::Phase::kUpdatePi, write_cost);
    }

    // pi must be visible cluster-wide before update_beta reads it.
    ctx.timed_barrier(kChannelWorkers, w);

    // ---- update_beta: ratio partials over this worker's pair slice -----
    {
      std::vector<double> ratios(std::size_t{k} * 2, 0.0);
      double load_cost;
      if (real()) {
        keys.clear();
        for (std::uint64_t i = 0; i < p_local; ++i) {
          keys.push_back(share.pair_a[i]);
          keys.push_back(share.pair_b[i]);
        }
        rows.resize(keys.size() * width);
        load_cost = store_->get_rows(wi, keys, rows);
        std::span<double> link(ratios.data(), k);
        std::span<double> nonlink(ratios.data() + k, k);
        for (std::uint64_t i = 0; i < p_local; ++i) {
          std::span<const float> row_a(rows.data() + (2 * i) * width,
                                       width);
          std::span<const float> row_b(rows.data() + (2 * i + 1) * width,
                                       width);
          fast_accumulate_theta_ratio(row_a, row_b, terms,
                                      share.pair_y[i] != 0,
                                      share.pair_y[i] != 0 ? link : nonlink,
                                      scratch.w);
        }
      } else {
        const std::uint64_t row_count = 2 * p_local;
        const std::uint64_t local = row_count / w;
        load_cost = store_->read_cost(wi, local, row_count - local);
      }
      ctx.charge(sim::Phase::kUpdateBetaTheta, load_cost);
      ctx.charge_kernel(sim::Phase::kUpdateBetaTheta,
                        static_cast<double>(p_local) * k,
                        ctx.compute().beta_unit_cycles);

      const double before = ctx.clock().now();
      net.reduce_sum(ctx.rank(), 0, ratios, kChannelGlobal);
      net.broadcast(ctx.rank(), 0, std::span<float>(beta_buf),
                    kChannelGlobal);
      ctx.stats().add(sim::Phase::kUpdateBetaTheta,
                      ctx.clock().now() - before);
      if (real()) terms.refresh(beta_buf, hyper_.delta);
    }

    // ---- perplexity ----------------------------------------------------
    if (eval_due(t)) {
      std::vector<double> acc = {0.0, 0.0};
      if (real() && evaluator) {
        const auto slice = evaluator->slice();
        keys.clear();
        for (const graph::HeldOutPair& p : slice) {
          keys.push_back(p.a);
          keys.push_back(p.b);
        }
        rows.resize(keys.size() * width);
        const double load_cost = store_->get_rows(wi, keys, rows);
        ctx.charge(sim::Phase::kPerplexity, load_cost);
        for (std::size_t i = 0; i < slice.size(); ++i) {
          std::span<const float> row_a(rows.data() + (2 * i) * width,
                                       width);
          std::span<const float> row_b(rows.data() + (2 * i + 1) * width,
                                       width);
          evaluator->add_sample_prob(
              i, fast_pair_likelihood(row_a, row_b, terms, slice[i].link));
        }
        evaluator->finish_sample();
        acc[0] = evaluator->sum_log_avg();
        acc[1] = static_cast<double>(slice.size());
      } else if (!real()) {
        const std::uint64_t row_count = 2 * phantom_slice;
        const std::uint64_t local = row_count / w;
        ctx.charge(sim::Phase::kPerplexity,
                   store_->read_cost(wi, local, row_count - local));
      }
      ctx.charge_kernel(
          sim::Phase::kPerplexity,
          static_cast<double>(real() && evaluator ? evaluator->size()
                                                  : phantom_slice) *
              k,
          ctx.compute().perplexity_unit_cycles);
      net.reduce_sum(ctx.rank(), 0, acc, kChannelGlobal);
    }
  }
}

PiMatrix DistributedSampler::snapshot_pi() const {
  SCD_REQUIRE(real(), "no pi state in cost-only mode");
  PiMatrix pi(static_cast<std::uint32_t>(num_vertices_),
              hyper_.num_communities);
  for (std::uint64_t v = 0; v < num_vertices_; ++v) {
    const auto src = store_->row(v);
    std::copy(src.begin(), src.end(),
              pi.row(static_cast<std::uint32_t>(v)).begin());
  }
  return pi;
}

}  // namespace scd::core
