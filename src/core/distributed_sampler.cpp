#include "core/distributed_sampler.h"

#include "core/phi_kernel.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <type_traits>

#include "core/checkpoint.h"
#include "core/deploy_share.h"
#include "core/distributed_workspace.h"
#include "fault/fault_injector.h"
#include "sim/pipeline_cost.h"
#include "threading/thread_pool.h"
#include "util/bytes.h"
#include "util/error.h"

namespace scd::core {

namespace {

constexpr int kTagDeploy = 1;
constexpr unsigned kChannelGlobal = 0;   // master + all workers
constexpr unsigned kChannelWorkers = 1;  // workers only (DKV consistency)

// Fault-tolerant protocol tags. FT mode replaces the collectives with
// master-coordinated point-to-point rounds (collectives require static
// membership; these survive a shrinking live set).
constexpr int kTagCtrl = 2;       // master -> worker FtCtrl records
constexpr int kTagHeartbeat = 3;  // worker -> master stage-done beacons
constexpr int kTagRatios = 4;     // worker -> master 2K ratio partials
constexpr int kTagBeta = 5;       // master -> worker fresh beta
constexpr int kTagEval = 6;       // worker -> master perplexity partials

enum FtOp : std::uint32_t {
  kFtDeploy = 1,  // new iteration: share follows (and beta, when flagged)
  kFtPiGo,        // all live workers finished update_phi — write pi
  kFtBetaGo,      // all live workers finished update_pi — compute ratios
  kFtBeta,        // theta stepped; beta payload follows
  kFtRestart,     // membership changed — discard stage, await new deploy
  kFtStop,        // run complete
};

/// One master->worker control record. live_count/member_index tell the
/// worker which slice of the minibatch and held-out set is now its own —
/// reassignment after a death is just these two fields changing.
struct FtCtrl {
  std::uint64_t iteration = 0;
  std::uint32_t op = 0;
  std::uint32_t live_count = 0;
  std::uint32_t member_index = 0;
  std::uint32_t eval = 0;           // this iteration ends with an eval round
  std::uint32_t beta_follows = 0;   // a kTagBeta payload precedes the share
};
static_assert(std::is_trivially_copyable_v<FtCtrl>);

using threading::ThreadPool;

/// Expected number of distinct rows in `refs` (approximately) uniform
/// row references over a population of `rows` — what the cost-only mode
/// charges for a deduplicated read stage so it stays in lockstep with
/// the real mode's KeyIndex.
std::uint64_t expected_distinct_rows(double refs, double rows) {
  if (refs <= 0.0 || rows <= 1.0) return 0;
  const double distinct = rows * -std::expm1(refs * std::log1p(-1.0 / rows));
  return static_cast<std::uint64_t>(std::llround(std::max(1.0, distinct)));
}

/// Per-vertex cost of the master's minibatch draw: the alias-anchor path
/// (graph/minibatch.h) trades the Lemire rejection loop for a table
/// lookup, which the compute model prices separately.
double draw_cost_per_vertex(const comm::Context& ctx,
                            const DistributedOptions& options) {
  return options.base.minibatch.alias_anchor
             ? ctx.compute().draw_cost_per_vertex_alias_s
             : ctx.compute().draw_cost_per_vertex_s;
}

}  // namespace

DistributedSampler::DistributedSampler(comm::Cluster& cluster,
                                       const graph::Graph& training,
                                       const graph::HeldOutSplit* heldout,
                                       const Hyper& hyper,
                                       const DistributedOptions& options)
    : cluster_(cluster),
      graph_(&training),
      heldout_(heldout),
      hyper_(hyper),
      options_(options),
      num_workers_(cluster.num_ranks() - 1),
      num_vertices_(training.num_vertices()),
      heldout_size_(heldout != nullptr ? heldout->pairs().size() : 0),
      global_(hyper.num_communities) {
  SCD_REQUIRE(cluster.num_ranks() >= 2,
              "distributed sampler needs a master and >= 1 worker");
  hyper_.validate();
  options_.base.validate();
  SCD_REQUIRE(options_.chunk_vertices >= 1, "chunk_vertices must be >= 1");

  store_ = cluster.make_store(
      {.num_rows = num_vertices_,
       .row_width = pi_row_width(hyper_.num_communities),
       .phantom = false,
       .codec = options_.pi_codec,
       .sparse_eps = options_.sparse_eps,
       .sparse_modeled_nnz = 0});
  if (options_.resume_from != nullptr) {
    // Resuming lossy state under a different codec would silently change
    // what the DKV round-trips — refuse, naming both codecs.
    const Checkpoint& cp = *options_.resume_from;
    SCD_REQUIRE(
        cp.pi_codec == options_.pi_codec,
        std::string("checkpoint pi codec '") + quant::codec_name(cp.pi_codec) +
            "' does not match the run's pi codec '" +
            quant::codec_name(options_.pi_codec) +
            "'; re-encode the checkpoint or match DistributedOptions::"
            "pi_codec to resume");
    SCD_REQUIRE(cp.pi.num_vertices() == num_vertices_ &&
                    cp.hyper.num_communities == hyper_.num_communities,
                "checkpoint shape does not match the run");
    for (std::uint64_t v = 0; v < num_vertices_; ++v) {
      store_->init_row(v, cp.pi.row(static_cast<std::uint32_t>(v)));
    }
    global_ = cp.global;
  } else {
    // Deterministic expanded-mean initialisation, identical to the
    // in-process samplers (setup is untimed, as in the paper).
    std::vector<float> row(store_->row_width());
    for (std::uint64_t v = 0; v < num_vertices_; ++v) {
      init_pi_row(options_.base.seed, v, options_.base.init_shape, row);
      store_->init_row(v, row);
    }
    global_.init_random(options_.base.seed, hyper_);
  }
  minibatch_.emplace(training, heldout, options_.base.minibatch);
}

DistributedSampler::DistributedSampler(comm::Cluster& cluster,
                                       const PhantomWorkload& workload,
                                       const Hyper& hyper,
                                       const DistributedOptions& options)
    : cluster_(cluster),
      phantom_(workload),
      hyper_(hyper),
      options_(options),
      num_workers_(cluster.num_ranks() - 1),
      num_vertices_(workload.num_vertices),
      heldout_size_(workload.heldout_pairs),
      global_(hyper.num_communities) {
  SCD_REQUIRE(cluster.num_ranks() >= 2,
              "distributed sampler needs a master and >= 1 worker");
  SCD_REQUIRE(workload.num_vertices >= 2 &&
                  workload.minibatch_vertices >= 1,
              "phantom workload underspecified");
  hyper_.validate();
  options_.base.validate();
  SCD_REQUIRE(cluster.simulated(),
              "cost-only mode needs the simulated backend");
  store_ = cluster.make_store(
      {.num_rows = num_vertices_,
       .row_width = pi_row_width(hyper_.num_communities),
       .phantom = true,
       .codec = options_.pi_codec,
       .sparse_eps = options_.sparse_eps,
       .sparse_modeled_nnz = options_.sparse_modeled_nnz});
}

DistributedResult DistributedSampler::run(std::uint64_t iterations) {
  SCD_REQUIRE(!ran_, "a DistributedSampler instance runs exactly once");
  ran_ = true;
  if (!cluster_.simulated()) {
    // The wall-clock backend replays only what needs no virtual clock:
    // tracing samples virtual time, and every fault except an
    // (iteration, point)-anchored crash is priced in it.
    SCD_REQUIRE(options_.trace == nullptr,
                "tracing needs the simulated backend");
    if (options_.fault_plan != nullptr) {
      const fault::FaultPlan& plan = *options_.fault_plan;
      SCD_REQUIRE(plan.links.empty() && plan.stragglers.empty() &&
                      plan.dkv_stalls.empty(),
                  "the process backend replays crash-only fault plans");
      for (const fault::CrashEvent& c : plan.crashes) {
        SCD_REQUIRE(c.iteration_triggered(),
                    "process-backend crashes must be iteration-triggered "
                    "(at_iteration/at_point), not virtual-time");
      }
      SCD_REQUIRE(plan.crashes.empty() || options_.rollback_interval > 0,
                  "process-backend crash runs need rollback_interval > 0 "
                  "(redo-in-place would keep the dead worker's partial pi "
                  "writes, which the restart does not replay)");
    }
  }
  history_.clear();
  if (options_.base.eval_interval > 0) {
    history_.reserve(iterations / options_.base.eval_interval + 1);
  }
  if (real()) {
    // Pre-warm the transport's payload pool: with pipelining, up to two
    // deploy shares per worker are in flight while the master serializes
    // a third batch.
    const std::size_t max_vertices = minibatch_->max_vertices_bound();
    const std::size_t share_vertices = max_vertices / num_workers_ + 1;
    const std::size_t share_adjacency = std::min<std::size_t>(
        share_vertices * graph_->max_degree(), 2 * graph_->num_edges());
    const std::size_t share_pairs =
        minibatch_->max_pairs_bound() / num_workers_ + 1;
    cluster_.transport().reserve_buffers(
        2 * num_workers_ + 2,
        phantom_share_bytes(share_vertices, share_adjacency, share_pairs));
  }
  // Pre-warm the collective slot pool and deploy mailboxes past their
  // worst-case in-flight depth: each rank can hold one undeparted slot
  // and each channel one partially-arrived slot, and the pipelined
  // master stays at most a couple of deploys ahead of any worker.
  cluster_.transport().reserve_collectives(
      num_workers_ + 4, 2 * std::size_t{hyper_.num_communities} + 2,
      std::size_t{hyper_.num_communities} * sizeof(float));
  for (unsigned wi = 0; wi < num_workers_; ++wi) {
    cluster_.transport().reserve_mailbox(0, wi + 1, kTagDeploy, 8);
  }

  if (options_.fault_plan != nullptr) {
    SCD_REQUIRE(real(), "fault-tolerant mode needs a real-mode sampler");
    injector_ = std::make_unique<fault::FaultInjector>(*options_.fault_plan,
                                                       cluster_.num_ranks());
    cluster_.install_fault_hooks(injector_.get());
    store_->install_fault(injector_.get(), cluster_.rank_clocks());
  }

  if (options_.trace != nullptr) {
    trace::TraceRecorder& rec = *options_.trace;
    cluster_.install_trace(&rec);  // REQUIREs a lane per rank
    store_->install_trace(&rec);
    rec.set_lane_name(0, "rank 0 (master)");
    for (unsigned wi = 0; wi < num_workers_; ++wi) {
      rec.set_lane_name(wi + 1, "rank " + std::to_string(wi + 1) +
                                    " (worker " + std::to_string(wi) + ")");
    }
    // Worst case per rank-iteration: ~12 spans (workers touch every
    // stage) and ~8 message/collective edges. Reserving up front keeps
    // recording allocation-free for the whole run.
    rec.reserve(iterations * 12 + 16, iterations * 8 + 16);
  }

  cluster_.run([this, iterations](comm::Context& ctx) {
    if (injector_ != nullptr) {
      if (ctx.is_master()) {
        ft_master_loop(ctx, iterations);
      } else {
        ft_worker_loop(ctx);
      }
    } else if (ctx.is_master()) {
      master_loop(ctx, iterations);
    } else {
      worker_loop(ctx, iterations);
    }
  });

  if (injector_ != nullptr) {
    // The injector dies with this sampler; leave no dangling hooks behind.
    cluster_.install_fault_hooks(nullptr);
    store_->install_fault(nullptr, nullptr);
  }
  if (options_.trace != nullptr) {
    cluster_.install_trace(nullptr);
    store_->install_trace(nullptr);
  }

  DistributedResult result;
  result.iterations = iterations;
  result.virtual_seconds = cluster_.max_clock();
  result.avg_iteration_seconds =
      iterations > 0 ? result.virtual_seconds /
                           static_cast<double>(iterations)
                     : 0.0;
  result.critical_path = cluster_.max_stats();
  result.history = history_;
  result.crashed_ranks = crashed_ranks_;
  result.redone_iterations = redone_iterations_;
  return result;
}

DistributedSampler::~DistributedSampler() = default;

// ---------------------------------------------------------------------
// Master
// ---------------------------------------------------------------------

void DistributedSampler::master_loop(comm::Context& ctx,
                                     std::uint64_t iterations) {
  const std::uint32_t k = hyper_.num_communities;
  const unsigned w = num_workers_;
  comm::Transport& net = ctx.transport();

  MasterWorkspace ws(k, w);
  if (real()) ws.reserve_real(*graph_, *minibatch_);

  // Initial beta so workers can form likelihood terms.
  std::vector<float> beta_buf(global_.beta_all().begin(),
                              global_.beta_all().end());
  {
    const auto sp = ctx.trace_span(trace::Stage::kSetup);
    net.broadcast(0, 0, std::span<float>(beta_buf), kChannelGlobal);
  }

  // Draw + scatter one minibatch; returns its h(E_n) scale.
  auto deploy = [&](std::uint64_t t) -> double {
    if (real()) {
      {
        const auto sp = ctx.trace_span(comm::Phase::kDrawMinibatch, t);
        rng::Xoshiro256 mb_rng =
            derive_rng(options_.base.seed, rng_label::kMinibatch, t);
        minibatch_->draw_into(mb_rng, ws.mb, ws.mb_scratch);
        ctx.charge(comm::Phase::kDrawMinibatch,
                   draw_cost_per_vertex(ctx, options_) *
                       static_cast<double>(ws.mb.vertices.size()));
      }
      const graph::Minibatch& mb = ws.mb;
      const auto sp = ctx.trace_span(comm::Phase::kDeployMinibatch, t);
      for (unsigned wi = 0; wi < w; ++wi) {
        DeployShare& share = ws.shares[wi];
        share.clear();
        share.iteration = t;
        const auto [vlo, vhi] =
            ThreadPool::chunk_bounds(0, mb.vertices.size(), wi, w);
        for (std::uint64_t i = vlo; i < vhi; ++i) {
          const graph::Vertex a = mb.vertices[i];
          share.vertices.push_back(a);
          const auto adj = graph_->neighbors(a);
          share.degrees.push_back(static_cast<std::uint32_t>(adj.size()));
          share.adjacency.insert(share.adjacency.end(), adj.begin(),
                                 adj.end());
        }
        const auto [plo, phi] =
            ThreadPool::chunk_bounds(0, mb.pairs.size(), wi, w);
        for (std::uint64_t i = plo; i < phi; ++i) {
          share.pair_a.push_back(mb.pairs[i].a);
          share.pair_b.push_back(mb.pairs[i].b);
          share.pair_y.push_back(mb.pairs[i].link ? 1 : 0);
        }
        // Serialize into a pooled payload buffer; the receiving worker
        // recycles it after deserializing.
        std::vector<std::byte> payload = net.acquire_buffer();
        ByteWriter writer(payload);
        serialize_share(share, writer);
        net.send_bytes(0, wi + 1, kTagDeploy, std::move(payload));
      }
      return mb.scale;
    }
    // Cost-only: charge the draw and ship phantom shares of the right
    // size.
    {
      const auto sp = ctx.trace_span(comm::Phase::kDrawMinibatch, t);
      ctx.charge(comm::Phase::kDrawMinibatch,
                 draw_cost_per_vertex(ctx, options_) *
                     static_cast<double>(phantom_.minibatch_vertices));
    }
    const auto sp = ctx.trace_span(comm::Phase::kDeployMinibatch, t);
    for (unsigned wi = 0; wi < w; ++wi) {
      const auto [vlo, vhi] =
          ThreadPool::chunk_bounds(0, phantom_.minibatch_vertices, wi, w);
      const auto [plo, phi] =
          ThreadPool::chunk_bounds(0, phantom_.minibatch_pairs, wi, w);
      const std::uint64_t vertices = vhi - vlo;
      const auto adjacency = static_cast<std::uint64_t>(
          static_cast<double>(vertices) * phantom_.avg_degree);
      net.send_phantom(0, wi + 1, kTagDeploy,
                       phantom_share_bytes(vertices, adjacency, phi - plo));
    }
    return 1.0;
  };

  double scale_current = deploy(0);
  double scale_next = 0.0;

  for (std::uint64_t t = 0; t < iterations; ++t) {
    if (options_.master_iteration_hook) options_.master_iteration_hook(t);

    // Pipelined: prepare iteration t+1 while workers run update_phi of t.
    if (options_.pipeline && t + 1 < iterations) {
      scale_next = deploy(t + 1);
    }

    // update_beta/theta: collect the workers' ratio partials.
    std::vector<double>& ratios = ws.ratios;
    ratios.assign(std::size_t{k} * 2, 0.0);
    {
      const auto sp = ctx.trace_span(comm::Phase::kBarrierWait, t);
      const double before = ctx.now();
      net.reduce_sum(0, 0, ratios, kChannelGlobal);
      ctx.book(comm::Phase::kBarrierWait,
                      ctx.now() - before);
    }
    if (real()) {
      std::vector<double>& grad = ws.grad;
      grad.assign(std::size_t{k} * 2, 0.0);
      theta_grad_from_ratios(std::span<const double>(ratios.data(), k),
                             std::span<const double>(ratios.data() + k, k),
                             global_.theta_flat(), grad);
      for (double& g : grad) g *= scale_current;
      update_theta(options_.base.seed, t, global_, grad,
                   options_.base.step.eps(t), hyper_.eta0, hyper_.eta1,
                   options_.base.noise_factor,
                   options_.base.gradient_form);
      std::copy(global_.beta_all().begin(), global_.beta_all().end(),
                beta_buf.begin());
    } else {
      beta_buf.assign(k, 0.5f);
    }
    {
      const auto sp = ctx.trace_span(comm::Phase::kUpdateBetaTheta, t);
      ctx.charge_serial(comm::Phase::kUpdateBetaTheta,
                        static_cast<double>(k) * 2.0,
                        ctx.compute().theta_unit_cycles);
      const double before = ctx.now();
      net.broadcast(0, 0, std::span<float>(beta_buf), kChannelGlobal);
      ctx.book(comm::Phase::kUpdateBetaTheta,
                      ctx.now() - before);
    }

    // Non-pipelined: the next draw serializes after this iteration.
    if (!options_.pipeline && t + 1 < iterations) {
      scale_next = deploy(t + 1);
    }

    if (eval_due(t)) {
      std::vector<double>& acc = ws.eval_acc;
      acc.assign(2, 0.0);  // [sum log avg, pair count]
      const auto sp = ctx.trace_span(comm::Phase::kBarrierWait, t);
      const double before = ctx.now();
      net.reduce_sum(0, 0, acc, kChannelGlobal);
      ctx.book(comm::Phase::kBarrierWait,
                      ctx.now() - before);
      if (real()) {
        const double perp = PerplexityEvaluator::perplexity(
            acc[0], static_cast<std::uint64_t>(acc[1]));
        history_.push_back({t + 1, ctx.now(), perp});
      }
    }

    scale_current = scale_next;
  }
}

// ---------------------------------------------------------------------
// Worker
// ---------------------------------------------------------------------

void DistributedSampler::worker_loop(comm::Context& ctx,
                                     std::uint64_t iterations) {
  const std::uint32_t k = hyper_.num_communities;
  const std::uint32_t width = pi_row_width(k);
  const unsigned w = num_workers_;
  const unsigned wi = ctx.rank() - 1;  // worker index == DKV shard
  const std::uint32_t n_nbr = options_.base.num_neighbors;
  const bool dedup = options_.dedup_reads;
  const quant::RowCodec codec = store_->codec();
  const bool sparse = quant::is_sparse(codec);
  const std::size_t vbytes = store_->value_bytes();
  comm::Transport& net = ctx.transport();

  WorkerWorkspace ws(k);
  // Largest neighbor set a vertex can draw (link-aware adds its links).
  const std::size_t set_bound =
      n_nbr + (real() ? graph_->max_degree() : 0);
  if (real()) {
    const std::size_t share_vertices =
        minibatch_->max_vertices_bound() / w + 1;
    const std::size_t share_adjacency = std::min<std::size_t>(
        share_vertices * graph_->max_degree(), 2 * graph_->num_edges());
    const std::size_t share_pairs = minibatch_->max_pairs_bound() / w + 1;
    const auto [eh_lo, eh_hi] =
        ThreadPool::chunk_bounds(0, heldout_size_, wi, w);
    const std::size_t stage_refs_bound = std::max<std::size_t>(
        {std::size_t{options_.chunk_vertices} * (1 + set_bound),
         2 * share_pairs, 2 * (eh_hi - eh_lo)});
    ws.reserve_real(share_vertices, share_adjacency, share_pairs, width,
                    vbytes, set_bound, stage_refs_bound, n_nbr);
  }

  // Deduplicated stage read: fetch each distinct row of ws.keys once
  // (pi is read-only between the stage barriers, so one copy serves
  // every reference); row_of maps a reference index back to its row.
  // Rows stay in the wire codec — the enc kernels dequantize
  // in-register, so nothing is decoded into a float staging area here.
  auto load_stage_rows = [&]() -> double {
    if (dedup) {
      ws.key_index.build(ws.keys);
      const auto unique = ws.key_index.unique_keys();
      ws.rows_enc.resize(unique.size() * vbytes);
      return store_->get_rows_encoded(wi, unique, ws.rows_enc);
    }
    ws.rows_enc.resize(ws.keys.size() * vbytes);
    return store_->get_rows_encoded(wi, ws.keys, ws.rows_enc);
  };
  auto row_of = [&](std::size_t ref) -> std::span<const std::byte> {
    const std::size_t slot = dedup ? ws.key_index.remap()[ref] : ref;
    return {ws.rows_enc.data() + slot * vbytes, vbytes};
  };
  // Modeled worker-side row cache (cost-only): remote rows are served at
  // the steady-state LRU hit rate — capacity over the remote row
  // population this worker can request (every row not on its own shard).
  // Uniform references make that the stationary occupancy of any
  // capacity-bounded cache, so no replacement policy needs simulating.
  const double cache_population =
      static_cast<double>(num_vertices_) -
      static_cast<double>(num_vertices_) / static_cast<double>(w);
  const double cache_hit_rate =
      options_.dkv_cache_rows == 0 || cache_population <= 0.0
          ? 0.0
          : std::min(1.0, static_cast<double>(options_.dkv_cache_rows) /
                              cache_population);
  // Cost-only twin of load_stage_rows for `refs` uniform references.
  auto phantom_read_cost = [&](double refs) -> double {
    const std::uint64_t rows =
        dedup ? expected_distinct_rows(refs, static_cast<double>(
                                                 num_vertices_))
              : static_cast<std::uint64_t>(std::llround(refs));
    const std::uint64_t local = rows / w;
    const std::uint64_t remote = rows - local;
    if (cache_hit_rate == 0.0) return store_->read_cost(wi, local, remote);
    const auto hits = static_cast<std::uint64_t>(
        std::llround(static_cast<double>(remote) * cache_hit_rate));
    const std::uint64_t misses = remote - hits;
    if (trace::TraceRecorder* rec = ctx.trace()) {
      rec->metrics().count(trace::Metric::kDkvHits, ctx.rank(), hits);
      rec->metrics().count(trace::Metric::kDkvMisses, ctx.rank(), misses);
    }
    // Hits stream the cached rows from local memory; misses pay the
    // remote read plus the cache's insert/evict bookkeeping. Rows are
    // cached encoded, so hits stream the modeled wire bytes per row.
    const double cache_s =
        ctx.compute().local_bytes_time(static_cast<std::uint64_t>(
            std::llround(static_cast<double>(hits) *
                         store_->avg_row_wire_bytes()))) +
        static_cast<double>(misses) * ctx.compute().dkv_cache_insert_s;
    return cache_s + store_->read_cost(wi, local, misses);
  };

  // Initial beta.
  std::vector<float> beta_buf(k, 0.0f);
  {
    const auto sp = ctx.trace_span(trace::Stage::kSetup);
    net.broadcast(ctx.rank(), 0, std::span<float>(beta_buf),
                  kChannelGlobal);
  }
  LikelihoodTerms terms;
  terms.refresh(beta_buf, hyper_.delta);

  // This worker's held-out slice and its persistent running averages.
  std::unique_ptr<PerplexityEvaluator> evaluator;
  if (real() && heldout_ != nullptr && heldout_size_ > 0) {
    const auto [lo, hi] = ThreadPool::chunk_bounds(0, heldout_size_, wi, w);
    evaluator = std::make_unique<PerplexityEvaluator>(
        std::span<const graph::HeldOutPair>(heldout_->pairs().data() + lo,
                                            hi - lo));
  }
  // Phantom slice size for cost charges.
  const auto [ph_lo, ph_hi] =
      ThreadPool::chunk_bounds(0, heldout_size_, wi, w);
  const std::uint64_t phantom_slice = ph_hi - ph_lo;

  for (std::uint64_t t = 0; t < iterations; ++t) {
    // ---- receive this iteration's minibatch share ---------------------
    DeployShare& share = ws.share;
    std::uint64_t n_local;
    std::uint64_t p_local;
    {
      const auto sp = ctx.trace_span(comm::Phase::kDeployMinibatch, t);
      const double before = ctx.now();
      if (real()) {
        std::vector<std::byte> payload =
            net.recv_bytes(ctx.rank(), 0, kTagDeploy);
        deserialize_share_into(payload, share);
        net.recycle_buffer(std::move(payload));
        SCD_ASSERT(share.iteration == t, "deploy out of order");
        n_local = share.vertices.size();
        p_local = share.pair_a.size();
      } else {
        net.recv_discard(ctx.rank(), 0, kTagDeploy);
        const auto [vlo, vhi] =
            ThreadPool::chunk_bounds(0, phantom_.minibatch_vertices, wi, w);
        const auto [plo, phi] =
            ThreadPool::chunk_bounds(0, phantom_.minibatch_pairs, wi, w);
        n_local = vhi - vlo;
        p_local = phi - plo;
      }
      ctx.book(comm::Phase::kDeployMinibatch,
                      ctx.now() - before);
    }

    // ---- sample neighbor sets V_n -------------------------------------
    // In link-aware mode the set additionally holds the vertex's links,
    // which arrived with the deploy share.
    const double phantom_set_size =
        n_nbr + (options_.base.neighbor_mode == NeighborMode::kLinkAware
                     ? phantom_.avg_degree
                     : 0.0);
    double total_samples = static_cast<double>(n_local) * phantom_set_size;
    if (real()) {
      ws.ensure_neighbor_sets(n_local, set_bound);
      total_samples = 0.0;
      std::size_t adj_offset = 0;
      for (std::size_t vi = 0; vi < n_local; ++vi) {
        const graph::Vertex a = share.vertices[vi];
        rng::Xoshiro256 nbr_rng =
            derive_rng(options_.base.seed, rng_label::kNeighbors, t, a);
        graph::draw_neighbor_set_into(
            nbr_rng, options_.base.neighbor_mode,
            static_cast<graph::Vertex>(num_vertices_), a,
            share.adj_of(vi, adj_offset), n_nbr, ws.neighbor_sets[vi],
            ws.nbr_scratch);
        adj_offset += share.degrees[vi];
        total_samples +=
            static_cast<double>(ws.neighbor_sets[vi].samples.size());
      }
    }
    {
      const auto sp = ctx.trace_span(comm::Phase::kSampleNeighbors, t);
      ctx.charge_kernel(comm::Phase::kSampleNeighbors, total_samples,
                        ctx.compute().neighbor_unit_cycles);
    }

    // ---- update_phi: chunked loads double-buffered with compute --------
    ws.staged.resize(n_local * width);
    sim::PipelineCost pipe;
    const std::uint64_t chunk = options_.chunk_vertices;
    for (std::uint64_t lo = 0; lo < n_local; lo += chunk) {
      const std::uint64_t hi = std::min<std::uint64_t>(lo + chunk, n_local);
      double load_cost;
      double chunk_samples;
      double load_begin = 0.0;
      double load_end = 0.0;
      if (real()) {
        ws.keys.clear();
        chunk_samples = 0.0;
        for (std::uint64_t vi = lo; vi < hi; ++vi) {
          ws.keys.push_back(share.vertices[vi]);
          for (const graph::NeighborSample& nb :
               ws.neighbor_sets[vi].samples) {
            ws.keys.push_back(nb.b);
          }
          chunk_samples +=
              static_cast<double>(ws.neighbor_sets[vi].samples.size());
        }
        load_begin = ctx.now();
        load_cost = load_stage_rows();
        load_end = ctx.now();
        // Compute phi* for the chunk from the freshly loaded rows. The
        // vertex's own row decodes once into the staging slot; neighbor
        // rows are read straight from the encoded buffer.
        std::size_t ref_idx = 0;
        for (std::uint64_t vi = lo; vi < hi; ++vi) {
          const graph::Vertex a = share.vertices[vi];
          const graph::NeighborSet& set = ws.neighbor_sets[vi];
          std::span<const std::byte> row_a = row_of(ref_idx);
          const std::size_t first_nbr_ref = ref_idx + 1;
          ref_idx += 1 + set.samples.size();
          std::span<float> out(ws.staged.data() + vi * width, width);
          staged_phi_update_enc(
              codec, options_.base.seed, t, a, row_a, set,
              [&](std::size_t i) { return row_of(first_nbr_ref + i); },
              terms, options_.base.step.eps(t),
              hyper_.normalized_alpha(), out, ws.scratch,
              options_.base.noise_factor, options_.base.gradient_form);
        }
      } else {
        // Expected distinct-row count of uniformly random references,
        // split into the expected local/remote mix.
        chunk_samples =
            static_cast<double>(hi - lo) * phantom_set_size;
        load_cost = phantom_read_cost(
            static_cast<double>(hi - lo) + chunk_samples);
      }
      // Sparse rows: each neighbor costs its O(nnz) support loop, and the
      // per-vertex stage + epilogue + re-sparsify cost O(K) once.
      const double phi_units =
          sparse ? chunk_samples * store_->avg_row_nnz() +
                       static_cast<double>(hi - lo) * k
                 : chunk_samples * k;
      double compute_cost = ctx.compute().kernel_time(
          phi_units, ctx.compute().phi_unit_cycles);
      if (!ctx.simulated()) {
        // Wall backend: replace the modeled split with the measured one —
        // DKV wait vs. phi kernel time of this chunk.
        load_cost = load_end - load_begin;
        compute_cost = ctx.now() - load_end;
      }
      pipe.add_chunk(load_cost, compute_cost);
    }
    // Stats record the sub-stage views of Table III; the clock advances
    // by the (possibly overlapped) critical path. One kUpdatePhi span
    // covers the overlapped load+compute pipeline — the kLoadPi
    // sub-stage view lives only in PhaseStats, since the two interleave
    // within the same virtual interval.
    {
      const auto sp = ctx.trace_span(comm::Phase::kUpdatePhi, t);
      ctx.book(comm::Phase::kLoadPi, pipe.load_total());
      ctx.book(comm::Phase::kUpdatePhi, pipe.compute_total());
      ctx.advance(pipe.total(options_.pipeline));
    }

    // phi must be fully read cluster-wide before anyone writes pi.
    {
      const auto sp = ctx.trace_span(comm::Phase::kBarrierWait, t);
      ctx.timed_barrier(kChannelWorkers, w);
    }

    // ---- update_pi: normalize (folded in phi*) + DKV write-back --------
    {
      const auto sp = ctx.trace_span(comm::Phase::kUpdatePi, t);
      ctx.charge_kernel(comm::Phase::kUpdatePi,
                        static_cast<double>(n_local) * k,
                        ctx.compute().pi_unit_cycles);
      double write_cost;
      if (real()) {
        // Minibatch vertices are already unique — no dedup needed.
        ws.keys.assign(share.vertices.begin(), share.vertices.end());
        write_cost = store_->put_rows(wi, ws.keys, ws.staged);
      } else {
        const std::uint64_t local = n_local / w;
        write_cost = store_->write_cost(wi, local, n_local - local);
      }
      ctx.charge(comm::Phase::kUpdatePi, write_cost);
    }

    // pi must be visible cluster-wide before update_beta reads it.
    {
      const auto sp = ctx.trace_span(comm::Phase::kBarrierWait, t);
      ctx.timed_barrier(kChannelWorkers, w);
    }

    // ---- update_beta: ratio partials over this worker's pair slice -----
    {
      const auto sp = ctx.trace_span(comm::Phase::kUpdateBetaTheta, t);
      std::vector<double>& ratios = ws.ratios;
      ratios.assign(std::size_t{k} * 2, 0.0);
      double load_cost;
      if (real()) {
        ws.keys.clear();
        for (std::uint64_t i = 0; i < p_local; ++i) {
          ws.keys.push_back(share.pair_a[i]);
          ws.keys.push_back(share.pair_b[i]);
        }
        load_cost = load_stage_rows();
        std::span<double> link(ratios.data(), k);
        std::span<double> nonlink(ratios.data() + k, k);
        if (sparse) {
          // Support-driven scatters per pair; the dense
          // eps_a*eps_b*bt_j/Z term folds once per stratum.
          double eps_link = 0.0;
          double eps_nonlink = 0.0;
          for (std::uint64_t i = 0; i < p_local; ++i) {
            const bool y = share.pair_y[i] != 0;
            sparse_accumulate_theta_ratio_enc(
                codec, row_of(2 * i), row_of(2 * i + 1), k, terms, y,
                y ? link : nonlink, y ? eps_link : eps_nonlink);
          }
          sparse_theta_epilogue(eps_link, eps_nonlink, terms, link,
                                nonlink);
        } else {
          for (std::uint64_t i = 0; i < p_local; ++i) {
            fast_accumulate_theta_ratio_enc(
                codec, row_of(2 * i), row_of(2 * i + 1), k, terms,
                share.pair_y[i] != 0,
                share.pair_y[i] != 0 ? link : nonlink, ws.scratch.w);
          }
        }
      } else {
        load_cost = phantom_read_cost(static_cast<double>(2 * p_local));
      }
      ctx.charge(comm::Phase::kUpdateBetaTheta, load_cost);
      // Sparse pairs cost their two supports (capped at K: a fallback
      // side degrades to the dense pass) plus the 2K epilogue fold.
      const double beta_units =
          sparse ? static_cast<double>(p_local) *
                           std::min<double>(k, 2.0 * store_->avg_row_nnz()) +
                       2.0 * k
                 : static_cast<double>(p_local) * k;
      ctx.charge_kernel(comm::Phase::kUpdateBetaTheta, beta_units,
                        ctx.compute().beta_unit_cycles);

      const double before = ctx.now();
      net.reduce_sum(ctx.rank(), 0, ratios, kChannelGlobal);
      net.broadcast(ctx.rank(), 0, std::span<float>(beta_buf),
                    kChannelGlobal);
      ctx.book(comm::Phase::kUpdateBetaTheta,
                      ctx.now() - before);
      if (real()) terms.refresh(beta_buf, hyper_.delta);
    }

    // ---- perplexity ----------------------------------------------------
    if (eval_due(t)) {
      const auto sp = ctx.trace_span(comm::Phase::kPerplexity, t);
      std::vector<double>& acc = ws.eval_acc;
      acc.assign(2, 0.0);
      if (real() && evaluator) {
        const auto slice = evaluator->slice();
        ws.keys.clear();
        for (const graph::HeldOutPair& p : slice) {
          ws.keys.push_back(p.a);
          ws.keys.push_back(p.b);
        }
        const double load_cost = load_stage_rows();
        ctx.charge(comm::Phase::kPerplexity, load_cost);
        for (std::size_t i = 0; i < slice.size(); ++i) {
          evaluator->add_sample_prob(
              i, fast_pair_likelihood_enc(codec, row_of(2 * i),
                                          row_of(2 * i + 1), k, terms,
                                          slice[i].link));
        }
        evaluator->finish_sample();
        acc[0] = evaluator->sum_log_avg();
        acc[1] = static_cast<double>(slice.size());
      } else if (!real()) {
        ctx.charge(
            comm::Phase::kPerplexity,
            phantom_read_cost(static_cast<double>(2 * phantom_slice)));
      }
      const double perp_pair_units =
          sparse ? std::min<double>(k, 2.0 * store_->avg_row_nnz())
                 : static_cast<double>(k);
      ctx.charge_kernel(
          comm::Phase::kPerplexity,
          static_cast<double>(real() && evaluator ? evaluator->size()
                                                  : phantom_slice) *
              perp_pair_units,
          ctx.compute().perplexity_unit_cycles);
      net.reduce_sum(ctx.rank(), 0, acc, kChannelGlobal);
    }
  }
}

// ---------------------------------------------------------------------
// Fault-tolerant twins (options_.fault_plan != nullptr)
//
// The collectives of the legacy loops assume static membership, so FT
// mode replaces them with master-coordinated point-to-point rounds: the
// master drives every stage with FtCtrl records, workers answer with
// per-stage heartbeats, and a missing heartbeat (recv_bytes_or_dead) is
// the failure detector. Virtual-time parity with the legacy path is kept
// by charging the collective skew once per replaced collective (4 per
// iteration + 1 per eval). Recovery: the interrupted iteration is redone
// over the survivors (pi writes that landed before the crash are kept —
// SG-MCMC tolerates the perturbation), the dead rank's DKV shard is
// re-homed to the lowest surviving worker, and its minibatch/held-out
// slices are re-sliced by (member_index, live_count). With
// rollback_interval > 0 the master instead restores the last in-memory
// core/checkpoint snapshot. Workers fail-stop only at fixed protocol
// points when their virtual clock passes the plan's crash time, after
// completing all earlier sends — which makes detection, and therefore
// the whole faulted trajectory, deterministic.
// ---------------------------------------------------------------------

void DistributedSampler::ft_master_loop(comm::Context& ctx,
                                        std::uint64_t iterations) {
  const std::uint32_t k = hyper_.num_communities;
  const unsigned w = num_workers_;
  comm::Transport& net = ctx.transport();
  const double skew = ctx.network().collective_skew_s;

  MasterWorkspace ws(k, w);
  ws.reserve_real(*graph_, *minibatch_);

  std::vector<unsigned> live(w);
  for (unsigned wi = 0; wi < w; ++wi) live[wi] = wi + 1;

  std::vector<float> beta_buf(global_.beta_all().begin(),
                              global_.beta_all().end());
  auto send_beta = [&](unsigned rank) {
    net.send<float>(0, rank, kTagBeta, std::span<const float>(beta_buf));
  };
  auto send_ctrl = [&](unsigned rank, const FtCtrl& c) {
    net.send<FtCtrl>(0, rank, kTagCtrl, std::span<const FtCtrl>(&c, 1));
  };
  {
    const auto sp = ctx.trace_span(trace::Stage::kSetup);
    for (unsigned rank : live) send_beta(rank);
  }

  // Rollback snapshots: a full checkpoint serialized to memory. Taking
  // one costs the master a wire-read of every pi row (workers are
  // quiescent — blocked on the next deploy — whenever this runs).
  // Evaluated per snapshot: sparse rows' average wire bytes drift as
  // the model concentrates.
  std::string snap_bytes;
  auto snap_wire_s = [&]() {
    return ctx.network().transfer_time(static_cast<std::uint64_t>(
        std::llround(static_cast<double>(num_vertices_) *
                     store_->avg_row_wire_bytes())));
  };
  auto take_snapshot = [&](std::uint64_t t) {
    const auto sp = ctx.trace_span(comm::Phase::kBarrierWait, t);
    Checkpoint cp;
    cp.iteration = t;
    cp.hyper = hyper_;
    cp.pi = snapshot_pi();
    cp.global = global_;
    // Snapshots store pi in the run's wire codec: the modeled wire charge
    // (snap_wire_s) already prices the per-row actual bytes, and a
    // rollback restore then re-encodes through the same codec —
    // consistent, and exact under fp32.
    snap_bytes = checkpoint_to_bytes(cp, options_.pi_codec,
                                     options_.sparse_eps);
    ctx.charge(comm::Phase::kBarrierWait, snap_wire_s());
  };
  if (options_.rollback_interval > 0) take_snapshot(0);

  // Rank-ordered gather from every live worker; consume(rank, payload)
  // runs per arrival, so reductions fold in rank order (deterministic).
  // Returns true when at least one worker turned out dead instead.
  std::vector<unsigned> dead_now;
  auto gather = [&](int tag, auto&& consume) {
    dead_now.clear();
    const double before = ctx.now();
    for (unsigned rank : live) {
      auto payload = net.recv_bytes_or_dead(0, rank, tag);
      if (!payload.has_value()) {
        dead_now.push_back(rank);
        continue;
      }
      consume(rank, *payload);
      net.recycle_buffer(std::move(*payload));
    }
    ctx.book(comm::Phase::kBarrierWait, ctx.now() - before);
    return !dead_now.empty();
  };

  bool beta_follows = false;  // next deploy must re-ship beta (rollback)

  // Failure detected at iteration `t`: charge the heartbeat timeout,
  // shrink membership, re-home the dead shards, optionally roll back,
  // and tell the survivors to restart. `lost` = the iteration was still
  // in flight (vs. fully applied, eval round aside). Returns the next
  // iteration to run.
  auto handle_death = [&](bool lost, std::uint64_t t) -> std::uint64_t {
    const auto sp = ctx.trace_span(trace::Stage::kRecovery, t);
    const double start = ctx.now();  // wall clocks advance between reads
    double detect = start;
    for (unsigned rank : dead_now) {
      // Iteration-triggered crashes have no crash *time* (+inf): the
      // detection instant is then just the gather's own now().
      const double ct = injector_->crash_time(rank);
      if (std::isfinite(ct)) {
        detect = std::max(detect, ct + injector_->heartbeat_timeout_s());
      }
    }
    ctx.book(comm::Phase::kBarrierWait, detect - start);
    ctx.advance_to(detect);
    for (unsigned rank : dead_now) {
      crashed_ranks_.push_back(rank);
      live.erase(std::find(live.begin(), live.end(), rank));
    }
    SCD_REQUIRE(!live.empty(), "all workers failed; run cannot continue");
    for (unsigned rank : dead_now) {
      const unsigned heir = live.front() - 1;
      ctx.charge(comm::Phase::kBarrierWait, store_->rehome_cost(rank - 1));
      store_->rehome_shard(rank - 1, heir);
    }
    std::uint64_t next = lost ? t : t + 1;
    if (options_.rollback_interval > 0) {
      const Checkpoint cp = checkpoint_from_bytes(snap_bytes);
      for (std::uint64_t v = 0; v < num_vertices_; ++v) {
        store_->init_row(v, cp.pi.row(static_cast<std::uint32_t>(v)));
      }
      global_ = cp.global;
      std::copy(global_.beta_all().begin(), global_.beta_all().end(),
                beta_buf.begin());
      ctx.charge(comm::Phase::kBarrierWait, snap_wire_s());
      beta_follows = true;
      next = cp.iteration;
    }
    redone_iterations_ += (t + 1) - next;
    if (trace::TraceRecorder* rec = ctx.trace()) {
      rec->metrics().count(trace::Metric::kRecoveries, ctx.rank(),
                           dead_now.size());
      rec->metrics().count(trace::Metric::kRedoneIterations, ctx.rank(),
                           (t + 1) - next);
    }
    for (std::size_t li = 0; li < live.size(); ++li) {
      send_ctrl(live[li], {next, kFtRestart,
                           static_cast<std::uint32_t>(live.size()),
                           static_cast<std::uint32_t>(li), 0, 0});
    }
    return next;
  };

  auto beat_check = [&](std::uint64_t t) {
    return [t](unsigned, const std::vector<std::byte>& payload) {
      SCD_ASSERT(payload.size() == sizeof(std::uint64_t),
                 "malformed heartbeat");
      std::uint64_t beat;
      std::memcpy(&beat, payload.data(), sizeof(beat));
      SCD_ASSERT(beat == t, "heartbeat from a stale iteration");
    };
  };

  std::uint64_t t = 0;
  while (t < iterations) {
    if (options_.master_iteration_hook) options_.master_iteration_hook(t);
    const unsigned lw = static_cast<unsigned>(live.size());
    const bool ev = eval_due(t);

    // ---- deploy: ctrl (+ beta after rollback) + minibatch share --------
    {
      const auto sp = ctx.trace_span(comm::Phase::kDrawMinibatch, t);
      rng::Xoshiro256 mb_rng =
          derive_rng(options_.base.seed, rng_label::kMinibatch, t);
      minibatch_->draw_into(mb_rng, ws.mb, ws.mb_scratch);
      ctx.charge(comm::Phase::kDrawMinibatch,
                 draw_cost_per_vertex(ctx, options_) *
                     static_cast<double>(ws.mb.vertices.size()));
    }
    const graph::Minibatch& mb = ws.mb;
    const double scale = mb.scale;
    {
      const auto sp = ctx.trace_span(comm::Phase::kDeployMinibatch, t);
      for (unsigned li = 0; li < lw; ++li) {
        send_ctrl(live[li], {t, kFtDeploy, lw, li, ev ? 1u : 0u,
                             beta_follows ? 1u : 0u});
        if (beta_follows) send_beta(live[li]);
        DeployShare& share = ws.shares[li];
        share.clear();
        share.iteration = t;
        const auto [vlo, vhi] =
            ThreadPool::chunk_bounds(0, mb.vertices.size(), li, lw);
        for (std::uint64_t i = vlo; i < vhi; ++i) {
          const graph::Vertex a = mb.vertices[i];
          share.vertices.push_back(a);
          const auto adj = graph_->neighbors(a);
          share.degrees.push_back(static_cast<std::uint32_t>(adj.size()));
          share.adjacency.insert(share.adjacency.end(), adj.begin(),
                                 adj.end());
        }
        const auto [plo, phi] =
            ThreadPool::chunk_bounds(0, mb.pairs.size(), li, lw);
        for (std::uint64_t i = plo; i < phi; ++i) {
          share.pair_a.push_back(mb.pairs[i].a);
          share.pair_b.push_back(mb.pairs[i].b);
          share.pair_y.push_back(mb.pairs[i].link ? 1 : 0);
        }
        std::vector<std::byte> payload = net.acquire_buffer();
        ByteWriter writer(payload);
        serialize_share(share, writer);
        net.send_bytes(0, live[li], kTagDeploy, std::move(payload));
      }
      beta_follows = false;
    }

    // ---- phi done? -----------------------------------------------------
    bool death;
    {
      const auto sp = ctx.trace_span(comm::Phase::kBarrierWait, t);
      death = gather(kTagHeartbeat, beat_check(t));
      if (!death) {
        ctx.charge(comm::Phase::kBarrierWait, skew);
        for (unsigned rank : live) {
          send_ctrl(rank, {t, kFtPiGo, lw, 0, 0, 0});
        }
      }
    }
    if (death) {
      t = handle_death(/*lost=*/true, t);
      continue;
    }

    // ---- pi done? ------------------------------------------------------
    {
      const auto sp = ctx.trace_span(comm::Phase::kBarrierWait, t);
      death = gather(kTagHeartbeat, beat_check(t));
      if (!death) {
        ctx.charge(comm::Phase::kBarrierWait, skew);
        for (unsigned rank : live) {
          send_ctrl(rank, {t, kFtBetaGo, lw, 0, 0, 0});
        }
      }
    }
    if (death) {
      t = handle_death(/*lost=*/true, t);
      continue;
    }

    // ---- gather ratio partials, step theta -----------------------------
    std::vector<double>& ratios = ws.ratios;
    ratios.assign(std::size_t{k} * 2, 0.0);
    bool ratio_death;
    {
      const auto sp = ctx.trace_span(comm::Phase::kBarrierWait, t);
      ratio_death =
          gather(kTagRatios, [&](unsigned, const std::vector<std::byte>& p) {
            SCD_ASSERT(p.size() == ratios.size() * sizeof(double),
                       "malformed ratio partial");
            for (std::size_t i = 0; i < ratios.size(); ++i) {
              double part;
              std::memcpy(&part, p.data() + i * sizeof(double),
                          sizeof(part));
              ratios[i] += part;
            }
          });
      if (!ratio_death) ctx.charge(comm::Phase::kBarrierWait, skew);
    }
    if (ratio_death) {
      t = handle_death(/*lost=*/true, t);
      continue;
    }
    {
      const auto sp = ctx.trace_span(comm::Phase::kUpdateBetaTheta, t);
      std::vector<double>& grad = ws.grad;
      grad.assign(std::size_t{k} * 2, 0.0);
      theta_grad_from_ratios(std::span<const double>(ratios.data(), k),
                             std::span<const double>(ratios.data() + k, k),
                             global_.theta_flat(), grad);
      for (double& g : grad) g *= scale;
      update_theta(options_.base.seed, t, global_, grad,
                   options_.base.step.eps(t), hyper_.eta0, hyper_.eta1,
                   options_.base.noise_factor, options_.base.gradient_form);
      std::copy(global_.beta_all().begin(), global_.beta_all().end(),
                beta_buf.begin());
      ctx.charge_serial(comm::Phase::kUpdateBetaTheta,
                        static_cast<double>(k) * 2.0,
                        ctx.compute().theta_unit_cycles);
      for (unsigned rank : live) {
        send_ctrl(rank, {t, kFtBeta, lw, 0, 0, 0});
        send_beta(rank);
      }
      ctx.charge(comm::Phase::kUpdateBetaTheta, skew);
    }

    // ---- perplexity over the live ranks' held-out slices ---------------
    if (ev) {
      std::vector<double>& acc = ws.eval_acc;
      acc.assign(2, 0.0);
      bool eval_death;
      {
        const auto sp = ctx.trace_span(comm::Phase::kBarrierWait, t);
        eval_death =
            gather(kTagEval, [&](unsigned, const std::vector<std::byte>& p) {
              SCD_ASSERT(p.size() == 2 * sizeof(double),
                         "malformed eval partial");
              double part[2];
              std::memcpy(part, p.data(), sizeof(part));
              acc[0] += part[0];
              acc[1] += part[1];
            });
        ctx.charge(comm::Phase::kBarrierWait, skew);
      }
      if (acc[1] > 0.0) {
        const double perp = PerplexityEvaluator::perplexity(
            acc[0], static_cast<std::uint64_t>(acc[1]));
        history_.push_back({t + 1, ctx.now(), perp});
      }
      if (eval_death) {
        // Theta/beta/pi for t are fully applied — nothing to redo.
        t = handle_death(/*lost=*/false, t);
        continue;
      }
    }

    ++t;
    if (options_.rollback_interval > 0 && t < iterations &&
        t % options_.rollback_interval == 0) {
      take_snapshot(t);
    }
  }

  {
    const auto sp = ctx.trace_span(comm::Phase::kBarrierWait, iterations);
    for (unsigned rank : live) {
      send_ctrl(rank, {iterations, kFtStop, 0, 0, 0, 0});
    }
  }
}

void DistributedSampler::ft_worker_loop(comm::Context& ctx) {
  const std::uint32_t k = hyper_.num_communities;
  const std::uint32_t width = pi_row_width(k);
  const unsigned w = num_workers_;
  const unsigned wi = ctx.rank() - 1;  // DKV shard (static even in FT)
  const std::uint32_t n_nbr = options_.base.num_neighbors;
  const bool dedup = options_.dedup_reads;
  const quant::RowCodec codec = store_->codec();
  const bool sparse = quant::is_sparse(codec);
  const std::size_t vbytes = store_->value_bytes();
  comm::Transport& net = ctx.transport();

  WorkerWorkspace ws(k);
  const std::size_t set_bound = n_nbr + graph_->max_degree();
  {
    // Reserve for the static-membership slice; a survivor's slice grows
    // after a death and the buffers simply grow with it (FT mode does not
    // promise an allocation-free steady state).
    const std::size_t share_vertices =
        minibatch_->max_vertices_bound() / w + 1;
    const std::size_t share_adjacency = std::min<std::size_t>(
        share_vertices * graph_->max_degree(), 2 * graph_->num_edges());
    const std::size_t share_pairs = minibatch_->max_pairs_bound() / w + 1;
    const std::size_t stage_refs_bound = std::max<std::size_t>(
        {std::size_t{options_.chunk_vertices} * (1 + set_bound),
         2 * share_pairs, 2 * heldout_size_});
    ws.reserve_real(share_vertices, share_adjacency, share_pairs, width,
                    vbytes, set_bound, stage_refs_bound, n_nbr);
  }

  auto load_stage_rows = [&]() -> double {
    if (dedup) {
      ws.key_index.build(ws.keys);
      const auto unique = ws.key_index.unique_keys();
      ws.rows_enc.resize(unique.size() * vbytes);
      return store_->get_rows_encoded(wi, unique, ws.rows_enc);
    }
    ws.rows_enc.resize(ws.keys.size() * vbytes);
    return store_->get_rows_encoded(wi, ws.keys, ws.rows_enc);
  };
  auto row_of = [&](std::size_t ref) -> std::span<const std::byte> {
    const std::size_t slot = dedup ? ws.key_index.remap()[ref] : ref;
    return {ws.rows_enc.data() + slot * vbytes, vbytes};
  };

  std::vector<float> beta_buf(k, 0.0f);
  LikelihoodTerms terms;
  auto recv_beta = [&]() {
    const std::vector<float> fresh = net.recv<float>(ctx.rank(), 0, kTagBeta);
    SCD_ASSERT(fresh.size() == k, "malformed beta payload");
    std::copy(fresh.begin(), fresh.end(), beta_buf.begin());
    terms.refresh(beta_buf, hyper_.delta);
  };
  {
    const auto sp = ctx.trace_span(trace::Stage::kSetup);
    recv_beta();
  }

  auto recv_ctrl = [&](comm::Phase p) -> FtCtrl {
    const auto sp = ctx.trace_span(p);
    const double before = ctx.now();
    const std::vector<FtCtrl> msg =
        net.recv<FtCtrl>(ctx.rank(), 0, kTagCtrl);
    SCD_ASSERT(msg.size() == 1, "malformed ctrl record");
    ctx.book(p, ctx.now() - before);
    return msg[0];
  };
  // Fail-stop point: past the plan's crash time — or exactly at a
  // plan-scheduled (iteration, point) trigger — this rank dies here,
  // after completing every earlier send, before the upcoming one, which
  // is what makes the master's detection order deterministic.
  auto fail_stop = [&](std::uint64_t t, fault::CrashPoint point) -> bool {
    if (!injector_->crashed(ctx.rank(), ctx.now(), t, point)) return false;
    net.mark_rank_dead(ctx.rank());
    return true;
  };
  auto send_beat = [&](std::uint64_t t) {
    const auto sp = ctx.trace_span(comm::Phase::kBarrierWait, t);
    const std::uint64_t beat = t;
    net.send<std::uint64_t>(ctx.rank(), 0, kTagHeartbeat,
                            std::span<const std::uint64_t>(&beat, 1));
  };

  // Held-out slice of the current membership; rebuilt when (live_count,
  // member_index) changes. Running per-pair averages restart then — the
  // pairs moved owner, and their history moved off-cluster with the dead
  // rank (documented approximation in DESIGN.md).
  std::unique_ptr<PerplexityEvaluator> evaluator;
  unsigned eval_live = 0;
  unsigned eval_member = 0;

  for (;;) {
    const FtCtrl c = recv_ctrl(comm::Phase::kDeployMinibatch);
    if (c.op == kFtStop) return;
    if (c.op == kFtRestart) continue;  // stale membership; await deploy
    SCD_ASSERT(c.op == kFtDeploy, "unexpected ctrl op at deploy point");
    const std::uint64_t t = c.iteration;
    const unsigned lw = c.live_count;
    const unsigned li = c.member_index;
    if (c.beta_follows != 0) {
      // Re-shipped beta after a rollback — part of the recovery.
      const auto sp = ctx.trace_span(trace::Stage::kRecovery, t);
      recv_beta();
    }

    // ---- minibatch share ----------------------------------------------
    DeployShare& share = ws.share;
    std::uint64_t n_local;
    std::uint64_t p_local;
    {
      const auto sp = ctx.trace_span(comm::Phase::kDeployMinibatch, t);
      const double before = ctx.now();
      std::vector<std::byte> payload =
          net.recv_bytes(ctx.rank(), 0, kTagDeploy);
      deserialize_share_into(payload, share);
      net.recycle_buffer(std::move(payload));
      SCD_ASSERT(share.iteration == t, "deploy out of order");
      n_local = share.vertices.size();
      p_local = share.pair_a.size();
      ctx.book(comm::Phase::kDeployMinibatch,
                      ctx.now() - before);
    }

    // ---- sample neighbor sets V_n -------------------------------------
    ws.ensure_neighbor_sets(n_local, set_bound);
    double total_samples = 0.0;
    {
      std::size_t adj_offset = 0;
      for (std::size_t vi = 0; vi < n_local; ++vi) {
        const graph::Vertex a = share.vertices[vi];
        rng::Xoshiro256 nbr_rng =
            derive_rng(options_.base.seed, rng_label::kNeighbors, t, a);
        graph::draw_neighbor_set_into(
            nbr_rng, options_.base.neighbor_mode,
            static_cast<graph::Vertex>(num_vertices_), a,
            share.adj_of(vi, adj_offset), n_nbr, ws.neighbor_sets[vi],
            ws.nbr_scratch);
        adj_offset += share.degrees[vi];
        total_samples +=
            static_cast<double>(ws.neighbor_sets[vi].samples.size());
      }
    }
    {
      const auto sp = ctx.trace_span(comm::Phase::kSampleNeighbors, t);
      ctx.charge_kernel(comm::Phase::kSampleNeighbors, total_samples,
                        ctx.compute().neighbor_unit_cycles);
    }

    // ---- update_phi ----------------------------------------------------
    ws.staged.resize(n_local * width);
    sim::PipelineCost pipe;
    const std::uint64_t chunk = options_.chunk_vertices;
    for (std::uint64_t lo = 0; lo < n_local; lo += chunk) {
      const std::uint64_t hi = std::min<std::uint64_t>(lo + chunk, n_local);
      ws.keys.clear();
      double chunk_samples = 0.0;
      for (std::uint64_t vi = lo; vi < hi; ++vi) {
        ws.keys.push_back(share.vertices[vi]);
        for (const graph::NeighborSample& nb :
             ws.neighbor_sets[vi].samples) {
          ws.keys.push_back(nb.b);
        }
        chunk_samples +=
            static_cast<double>(ws.neighbor_sets[vi].samples.size());
      }
      const double load_begin = ctx.now();
      double load_cost = load_stage_rows();
      const double load_end = ctx.now();
      std::size_t ref_idx = 0;
      for (std::uint64_t vi = lo; vi < hi; ++vi) {
        const graph::Vertex a = share.vertices[vi];
        const graph::NeighborSet& set = ws.neighbor_sets[vi];
        std::span<const std::byte> row_a = row_of(ref_idx);
        const std::size_t first_nbr_ref = ref_idx + 1;
        ref_idx += 1 + set.samples.size();
        std::span<float> out(ws.staged.data() + vi * width, width);
        staged_phi_update_enc(
            codec, options_.base.seed, t, a, row_a, set,
            [&](std::size_t i) { return row_of(first_nbr_ref + i); },
            terms, options_.base.step.eps(t), hyper_.normalized_alpha(),
            out, ws.scratch, options_.base.noise_factor,
            options_.base.gradient_form);
      }
      // Sparse rows: each neighbor costs its O(nnz) support loop, and the
      // per-vertex stage + epilogue + re-sparsify cost O(K) once.
      const double phi_units =
          sparse ? chunk_samples * store_->avg_row_nnz() +
                       static_cast<double>(hi - lo) * k
                 : chunk_samples * k;
      double compute_cost = ctx.compute().kernel_time(
          phi_units, ctx.compute().phi_unit_cycles);
      if (!ctx.simulated()) {
        // Wall backend: replace the modeled split with the measured one —
        // DKV wait vs. phi kernel time of this chunk.
        load_cost = load_end - load_begin;
        compute_cost = ctx.now() - load_end;
      }
      pipe.add_chunk(load_cost, compute_cost);
    }
    // The pipeline total bypasses charge(), so the straggler slowdown is
    // applied here explicitly.
    {
      const auto sp = ctx.trace_span(comm::Phase::kUpdatePhi, t);
      const double factor =
          injector_->compute_factor(ctx.rank(), ctx.now());
      ctx.book(comm::Phase::kLoadPi, pipe.load_total() * factor);
      ctx.book(comm::Phase::kUpdatePhi,
                      pipe.compute_total() * factor);
      ctx.advance(pipe.total(options_.pipeline) * factor);
    }

    if (fail_stop(t, fault::CrashPoint::kAfterPhi)) return;
    send_beat(t);
    {
      const FtCtrl go = recv_ctrl(comm::Phase::kBarrierWait);
      if (go.op == kFtRestart) continue;
      SCD_ASSERT(go.op == kFtPiGo && go.iteration == t,
                 "unexpected ctrl op at pi point");
    }

    // ---- update_pi -----------------------------------------------------
    {
      const auto sp = ctx.trace_span(comm::Phase::kUpdatePi, t);
      ctx.charge_kernel(comm::Phase::kUpdatePi,
                        static_cast<double>(n_local) * k,
                        ctx.compute().pi_unit_cycles);
      ws.keys.assign(share.vertices.begin(), share.vertices.end());
      ctx.charge(comm::Phase::kUpdatePi,
                 store_->put_rows(wi, ws.keys, ws.staged));
    }

    if (fail_stop(t, fault::CrashPoint::kAfterPi)) return;
    send_beat(t);
    {
      const FtCtrl go = recv_ctrl(comm::Phase::kBarrierWait);
      if (go.op == kFtRestart) continue;
      SCD_ASSERT(go.op == kFtBetaGo && go.iteration == t,
                 "unexpected ctrl op at beta point");
    }

    // ---- update_beta: ratio partials -----------------------------------
    std::vector<double>& ratios = ws.ratios;
    ratios.assign(std::size_t{k} * 2, 0.0);
    {
      const auto sp = ctx.trace_span(comm::Phase::kUpdateBetaTheta, t);
      ws.keys.clear();
      for (std::uint64_t i = 0; i < p_local; ++i) {
        ws.keys.push_back(share.pair_a[i]);
        ws.keys.push_back(share.pair_b[i]);
      }
      const double load_cost = load_stage_rows();
      std::span<double> link(ratios.data(), k);
      std::span<double> nonlink(ratios.data() + k, k);
      if (sparse) {
        double eps_link = 0.0;
        double eps_nonlink = 0.0;
        for (std::uint64_t i = 0; i < p_local; ++i) {
          const bool y = share.pair_y[i] != 0;
          sparse_accumulate_theta_ratio_enc(
              codec, row_of(2 * i), row_of(2 * i + 1), k, terms, y,
              y ? link : nonlink, y ? eps_link : eps_nonlink);
        }
        sparse_theta_epilogue(eps_link, eps_nonlink, terms, link, nonlink);
      } else {
        for (std::uint64_t i = 0; i < p_local; ++i) {
          fast_accumulate_theta_ratio_enc(
              codec, row_of(2 * i), row_of(2 * i + 1), k, terms,
              share.pair_y[i] != 0,
              share.pair_y[i] != 0 ? link : nonlink, ws.scratch.w);
        }
      }
      ctx.charge(comm::Phase::kUpdateBetaTheta, load_cost);
      // Sparse pairs cost their two supports (capped at K: a fallback
      // side degrades to the dense pass) plus the 2K epilogue fold.
      const double beta_units =
          sparse ? static_cast<double>(p_local) *
                           std::min<double>(k, 2.0 * store_->avg_row_nnz()) +
                       2.0 * k
                 : static_cast<double>(p_local) * k;
      ctx.charge_kernel(comm::Phase::kUpdateBetaTheta, beta_units,
                        ctx.compute().beta_unit_cycles);
    }
    if (fail_stop(t, fault::CrashPoint::kBeforeRatios)) return;
    {
      const auto sp = ctx.trace_span(comm::Phase::kUpdateBetaTheta, t);
      net.send<double>(ctx.rank(), 0, kTagRatios,
                       std::span<const double>(ratios));
    }
    {
      const FtCtrl go = recv_ctrl(comm::Phase::kUpdateBetaTheta);
      if (go.op == kFtRestart) continue;
      SCD_ASSERT(go.op == kFtBeta && go.iteration == t,
                 "unexpected ctrl op at beta receive point");
      const auto sp = ctx.trace_span(comm::Phase::kUpdateBetaTheta, t);
      recv_beta();
    }

    // ---- perplexity ----------------------------------------------------
    if (c.eval != 0 && heldout_ != nullptr && heldout_size_ > 0) {
      const auto sp = ctx.trace_span(comm::Phase::kPerplexity, t);
      if (evaluator == nullptr || eval_live != lw || eval_member != li) {
        const auto [lo, hi] =
            ThreadPool::chunk_bounds(0, heldout_size_, li, lw);
        evaluator = std::make_unique<PerplexityEvaluator>(
            std::span<const graph::HeldOutPair>(
                heldout_->pairs().data() + lo, hi - lo));
        eval_live = lw;
        eval_member = li;
      }
      std::vector<double>& acc = ws.eval_acc;
      acc.assign(2, 0.0);
      const auto slice = evaluator->slice();
      ws.keys.clear();
      for (const graph::HeldOutPair& p : slice) {
        ws.keys.push_back(p.a);
        ws.keys.push_back(p.b);
      }
      ctx.charge(comm::Phase::kPerplexity, load_stage_rows());
      for (std::size_t i = 0; i < slice.size(); ++i) {
        evaluator->add_sample_prob(
            i, fast_pair_likelihood_enc(codec, row_of(2 * i),
                                        row_of(2 * i + 1), k, terms,
                                        slice[i].link));
      }
      evaluator->finish_sample();
      acc[0] = evaluator->sum_log_avg();
      acc[1] = static_cast<double>(slice.size());
      const double perp_pair_units =
          sparse ? std::min<double>(k, 2.0 * store_->avg_row_nnz())
                 : static_cast<double>(k);
      ctx.charge_kernel(comm::Phase::kPerplexity,
                        static_cast<double>(evaluator->size()) *
                            perp_pair_units,
                        ctx.compute().perplexity_unit_cycles);
      if (fail_stop(t, fault::CrashPoint::kBeforeEval)) return;
      net.send<double>(ctx.rank(), 0, kTagEval,
                       std::span<const double>(acc));
    }
  }
}

PiMatrix DistributedSampler::snapshot_pi() const {
  SCD_REQUIRE(real(), "no pi state in cost-only mode");
  PiMatrix pi(static_cast<std::uint32_t>(num_vertices_),
              hyper_.num_communities);
  for (std::uint64_t v = 0; v < num_vertices_; ++v) {
    store_->read_row(v, pi.row(static_cast<std::uint32_t>(v)));
  }
  return pi;
}

}  // namespace scd::core
