// The SG-MCMC kernels: Eqns 3-6 of the paper and the O(K) pair
// likelihood from [16].
//
// Derivation notes (used to avoid dividing by phi_ak ~ 0):
//   With beta-term bt_k = beta_k^y (1-beta_k)^(1-y) and delta-term
//   dt = delta^y (1-delta)^(1-y), define w_k = pi_bk * bt_k + dt*(1-pi_bk).
//   Then the pair likelihood is
//       Z_ab^(y) = sum_k pi_ak * pi_bk * bt_k + dt * (1 - sum_k pi_ak pi_bk)
//                = sum_k pi_ak * w_k,
//   and the phi gradient (Eqn 6), using phi_ak = pi_ak * phi_sum_a,
//       g_ab(phi_ak) = f_ab(k)/(Z phi_ak) - 1/phi_sum_a
//                    = (w_k / Z - 1) / phi_sum_a.
//   The theta gradient (Eqn 4) needs f_ab(k,k)/Z = pi_ak pi_bk bt_k / Z.
//
// Rows use the [pi_0..pi_{K-1} | phi_sum] layout of core/state.h. All
// accumulation is in double; rows are float per the paper.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "core/state.h"

namespace scd::core {

/// Per-iteration cache of the y-dependent beta terms:
/// bt[1][k] = beta_k, bt[0][k] = 1 - beta_k, plus the delta terms.
///
/// refresh() additionally stages btd[y][k] = bt[y][k] - dt[y] once per
/// iteration, which lets the fused kernels (core/kernels_simd.h) form
/// w_k = dt + pi_bk * btd_k with a single fma per community instead of
/// recomputing pi_bk * bt_k + dt * (1 - pi_bk) from scratch, and the
/// scalar btd_sum[y] = sum_k btd[y][k], which the sparse kernels use to
/// fold the uniform epsilon term of a top-R row into Z analytically
/// (eps_a * eps_b * btd_sum instead of a K-loop over dropped entries).
struct LikelihoodTerms {
  std::vector<float> bt_link;      // beta_k
  std::vector<float> bt_nonlink;   // 1 - beta_k
  std::vector<float> btd_link;     // beta_k - delta
  std::vector<float> btd_nonlink;  // (1 - beta_k) - (1 - delta)
  double dt_link = 0.0;            // delta
  double dt_nonlink = 0.0;         // 1 - delta
  double btd_sum_link = 0.0;       // sum_k (beta_k - delta)
  double btd_sum_nonlink = 0.0;    // sum_k ((1-beta_k) - (1-delta))

  void refresh(std::span<const float> beta, double delta);
  std::span<const float> bt(bool y) const {
    return y ? std::span<const float>(bt_link)
             : std::span<const float>(bt_nonlink);
  }
  std::span<const float> btd(bool y) const {
    return y ? std::span<const float>(btd_link)
             : std::span<const float>(btd_nonlink);
  }
  double dt(bool y) const { return y ? dt_link : dt_nonlink; }
  double btd_sum(bool y) const {
    return y ? btd_sum_link : btd_sum_nonlink;
  }
};

/// Smallest probability Z may fall to; guards the divisions and logs in
/// both the scalar kernels (grads.cpp) and the fused ones
/// (kernels_simd.cpp).
inline constexpr double kMinZ = 1e-290;

/// Z_ab^(y): the model probability of observing y on pair (a, b). O(K).
double pair_likelihood(std::span<const float> row_a,
                       std::span<const float> row_b,
                       const LikelihoodTerms& terms, bool y);

/// Add g_ab(phi_ak) for all k into grad (Eqn 6). Returns Z_ab^(y).
double accumulate_phi_grad(std::span<const float> row_a,
                           std::span<const float> row_b,
                           const LikelihoodTerms& terms, bool y,
                           std::span<double> grad);

/// Add g_ab(theta_ki) for all k, i into grad (layout [k*2 + i]; Eqn 4).
/// `theta` is the current K x 2 state. Returns Z_ab^(y).
double accumulate_theta_grad(std::span<const float> row_a,
                             std::span<const float> row_b,
                             const LikelihoodTerms& terms,
                             std::span<const double> theta, bool y,
                             std::span<double> grad);

/// Factored form used by the distributed update_beta (and, for exact
/// numerical agreement, by all samplers): the pair's contribution to
/// g_ab(theta_ki) is ratio_k(a,b,y) * coef_ki(y), where
///   ratio_k = f_ab(k,k)/Z = pi_ak pi_bk bt_k / Z        (pair-dependent)
///   coef_ki = [i == y]/theta_ki - 1/(theta_k0+theta_k1) (theta-only)
/// Workers accumulate ratio sums per y stratum; a 2K-double reduction
/// ships them to the master, which applies the theta coefficients —
/// exactly the "contributions to g_ab(theta)" the paper reduces.
/// Returns Z_ab^(y).
double accumulate_theta_ratio(std::span<const float> row_a,
                              std::span<const float> row_b,
                              const LikelihoodTerms& terms, bool y,
                              std::span<double> ratio);

/// Assemble the K x 2 theta gradient from the per-stratum ratio sums.
void theta_grad_from_ratios(std::span<const double> ratio_link,
                            std::span<const double> ratio_nonlink,
                            std::span<const double> theta,
                            std::span<double> grad);

/// Floor applied to phi and theta after the SGRLD step; keeps the
/// expanded-mean parameters strictly positive so later sqrt/log are safe.
inline constexpr double kParamFloor = 1e-12;

/// Which drift the SGRLD updates use.
///
/// kRawEqn3 is the paper's Eqn 3/5 taken literally: drift
/// eps/2 (prior - theta + scale * g) with g the plain gradient of the
/// log-likelihood. kPreconditioned multiplies the likelihood gradient by
/// the parameter (theta * g / phi * g) — the expanded-mean "count minus
/// expectation" form of Patterson & Teh's SGRLD, whose stationary
/// distribution is the exact conjugate posterior (verified by
/// PosteriorTest: for K = 1 the chain mean matches the closed-form Beta
/// posterior only under kPreconditioned; kRawEqn3 equilibrates theta at
/// O(sqrt(counts)) and biases beta toward 1/2). kRawEqn3 nevertheless
/// recovers community structure effectively and is what the published
/// equations say, so it remains available; see DESIGN.md.
enum class GradientForm { kRawEqn3, kPreconditioned };

/// SGRLD update of one vertex's row (Eqn 5): given the neighbor-summed
/// gradient, apply step eps with prior alpha and minibatch scale
/// (N/|V_n|), then renormalize into [pi | phi_sum]. Noise is drawn from
/// the deterministic stream (seed, kPhiNoise, iteration, vertex).
/// `noise_factor` scales the Langevin noise: 1 = SGRLD sampling (the
/// algorithm of the paper), 0 = deterministic preconditioned SGD toward
/// the MAP — useful for escaping symmetric saddles (general MMSB) and as
/// an optimization-mode ablation.
void update_phi_row(std::uint64_t seed, std::uint64_t iteration,
                    std::uint32_t vertex, std::span<float> row,
                    std::span<const double> grad, double scale, double eps,
                    double alpha, double noise_factor = 1.0,
                    GradientForm form = GradientForm::kRawEqn3);

/// SGRLD update of theta (Eqn 3): grad must already include the h(E_n)
/// scale. Noise stream: (seed, kThetaNoise, iteration). Refreshes beta.
void update_theta(std::uint64_t seed, std::uint64_t iteration,
                  GlobalState& global, std::span<const double> grad,
                  double eps, double eta0, double eta1,
                  double noise_factor = 1.0,
                  GradientForm form = GradientForm::kRawEqn3);

}  // namespace scd::core
