#include "core/perplexity.h"

#include <cmath>

#include "util/error.h"

namespace scd::core {

PerplexityEvaluator::PerplexityEvaluator(
    std::span<const graph::HeldOutPair> slice)
    : slice_(slice), prob_sums_(slice.size(), 0.0) {}

double PerplexityEvaluator::sum_log_avg() const {
  SCD_REQUIRE(num_samples_ > 0, "no samples recorded yet");
  const double inv_t = 1.0 / static_cast<double>(num_samples_);
  double total = 0.0;
  for (double s : prob_sums_) {
    total += std::log(std::max(s * inv_t, 1e-290));
  }
  return total;
}

double PerplexityEvaluator::perplexity(double total_sum_log_avg,
                                       std::uint64_t total_pairs) {
  SCD_REQUIRE(total_pairs > 0, "perplexity over an empty held-out set");
  return std::exp(-total_sum_log_avg / static_cast<double>(total_pairs));
}

}  // namespace scd::core
