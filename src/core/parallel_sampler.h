// Multithreaded shared-memory sampler — the paper's "vertical scaling"
// configuration (Section IV-D): one machine, many cores, all state in
// local RAM.
//
// Parallel structure mirrors the paper's OpenMP annotations:
//   * update_phi: data-parallel over minibatch vertices, static chunks;
//   * update_pi: parallel commit of the staged rows;
//   * update_beta: per-thread partial theta gradients folded in thread
//     order (deterministic), then one serial SGRLD step;
//   * perplexity: parallel over the held-out slice with a two-stage
//     reduction.
// Randomness comes from the derive_rng streams keyed by (iteration,
// vertex), so the trajectory is identical for ANY thread count and
// matches SequentialSampler to floating-point reassociation.
#pragma once

#include <chrono>
#include <memory>
#include <vector>

#include "core/checkpoint.h"
#include "core/grads.h"
#include "core/iteration_workspace.h"
#include "core/options.h"
#include "core/perplexity.h"
#include "core/state.h"
#include "graph/graph.h"
#include "graph/heldout.h"
#include "graph/minibatch.h"
#include "threading/thread_pool.h"
#include "trace/recorder.h"

namespace scd::core {

class ParallelSampler {
 public:
  ParallelSampler(const graph::Graph& training,
                  const graph::HeldOutSplit* heldout, const Hyper& hyper,
                  const SamplerOptions& options, unsigned num_threads);

  void run(std::uint64_t iterations);

  std::uint64_t iteration() const { return iteration_; }
  const PiMatrix& pi() const { return pi_; }
  const GlobalState& global() const { return global_; }
  const std::vector<HistoryPoint>& history() const { return history_; }
  unsigned num_threads() const { return pool_.num_threads(); }

  double evaluate_perplexity();

  /// See SequentialSampler::checkpoint / restore.
  Checkpoint checkpoint() const;
  void restore(const Checkpoint& checkpoint);

  /// Install (or clear, with nullptr) a trace recorder: every stage of
  /// every subsequent iteration records a WALL-CLOCK span on lane 0 —
  /// there is no virtual cluster here, so timestamps are real seconds
  /// since the first recorded span. The recorder must outlive this
  /// installation.
  void set_trace(trace::TraceRecorder* recorder) { trace_ = recorder; }

 private:
  void one_iteration();
  /// Wall-clock seconds since the first call (lazy origin).
  double trace_now();

  const graph::Graph& graph_;
  const graph::HeldOutSplit* heldout_;
  Hyper hyper_;
  SamplerOptions options_;
  threading::ThreadPool pool_;

  PiMatrix pi_;
  GlobalState global_;
  graph::MinibatchSampler minibatch_;
  LikelihoodTerms terms_;
  std::unique_ptr<PerplexityEvaluator> evaluator_;
  /// Reusable iteration buffers; one_iteration is allocation-free in
  /// steady state (see core/iteration_workspace.h).
  IterationWorkspace ws_;

  std::uint64_t iteration_ = 0;
  double elapsed_s_ = 0.0;
  std::vector<HistoryPoint> history_;
  trace::TraceRecorder* trace_ = nullptr;
  std::chrono::steady_clock::time_point trace_origin_{};
  bool trace_origin_set_ = false;
};

}  // namespace scd::core
