#include "core/checkpoint.h"

#include <algorithm>
#include <cstddef>
#include <fstream>
#include <istream>
#include <ostream>
#include <sstream>
#include <vector>

#include "util/error.h"

namespace scd::core {

namespace {

constexpr std::uint64_t kMagic = 0x5343445f434b5031ULL;  // "SCD_CKP1"
// Version 1: raw float pi rows. Version 2: a uint32 codec tag follows the
// vertex count and rows are stored quant-encoded. fp32 checkpoints are
// always written as version 1, so they stay byte-identical to pre-codec
// builds and old readers keep working on them. Version 3 (sparse
// codecs): same tag, but each row is a uint32 length prefix
// (quant::row_bytes of the row) followed by exactly that many bytes —
// the truncated sparse encoding, not the fixed capacity slot.
constexpr std::uint32_t kVersion = 1;
constexpr std::uint32_t kVersionCodec = 2;
constexpr std::uint32_t kVersionSparse = 3;

template <typename T>
void write_pod(std::ostream& out, const T& value) {
  out.write(reinterpret_cast<const char*>(&value), sizeof(T));
}

template <typename T>
T read_pod(std::istream& in) {
  T value{};
  in.read(reinterpret_cast<char*>(&value), sizeof(T));
  if (!in) throw DataError("checkpoint truncated");
  return value;
}

/// Sanity cap on K: a header beyond this is certainly garbage, and
/// rejecting it here keeps a corrupt uint32 from driving a ~2^37-byte
/// PiMatrix allocation (and keeps K + 1 row-width arithmetic safe).
constexpr std::uint32_t kMaxCommunities = 1u << 24;

/// Bytes left in the stream, or -1 when the stream is not seekable.
std::int64_t stream_remaining(std::istream& in) {
  const auto pos = in.tellg();
  if (pos == std::istream::pos_type(-1)) return -1;
  in.seekg(0, std::ios::end);
  const auto end = in.tellg();
  in.seekg(pos);
  if (end == std::istream::pos_type(-1) || end < pos) return -1;
  return static_cast<std::int64_t>(end - pos);
}

/// Reject a header whose promised body cannot fit in the remaining
/// stream BEFORE sizing any allocation from it: a corrupt n or k must
/// produce a clear DataError, not a multi-gigabyte resize or a
/// half-filled matrix. `body_bytes` is a lower bound (exact for v1/v2,
/// conservative for v3's variably sized rows); a checkpoint embedded in
/// a longer stream stays loadable.
void require_body_fits(std::istream& in, std::uint64_t body_bytes) {
  const std::int64_t remaining = stream_remaining(in);
  if (remaining < 0) return;  // non-seekable: per-row checks still apply
  if (static_cast<std::uint64_t>(remaining) < body_bytes) {
    throw DataError("checkpoint truncated or corrupt: header promises " +
                    std::to_string(body_bytes) + " body bytes but only " +
                    std::to_string(remaining) + " remain");
  }
}

}  // namespace

void save_checkpoint(std::ostream& out, const Checkpoint& checkpoint,
                     quant::RowCodec pi_codec, float sparse_eps) {
  checkpoint.hyper.validate();
  const std::uint32_t n = checkpoint.pi.num_vertices();
  const std::uint32_t k = checkpoint.pi.num_communities();
  SCD_REQUIRE(k == checkpoint.hyper.num_communities &&
                  k == checkpoint.global.num_communities(),
              "checkpoint state disagrees on K");
  const bool sparse = quant::is_sparse(pi_codec);
  const bool encoded = pi_codec != quant::RowCodec::kFloat32;
  write_pod(out, kMagic);
  write_pod(out, sparse ? kVersionSparse
                        : (encoded ? kVersionCodec : kVersion));
  write_pod(out, checkpoint.iteration);
  write_pod(out, checkpoint.hyper.num_communities);
  write_pod(out, checkpoint.hyper.alpha);
  write_pod(out, checkpoint.hyper.eta0);
  write_pod(out, checkpoint.hyper.eta1);
  write_pod(out, checkpoint.hyper.delta);
  write_pod(out, n);
  if (sparse) {
    write_pod(out, static_cast<std::uint32_t>(pi_codec));
    const std::uint32_t width = checkpoint.pi.row_width();
    std::vector<std::byte> buf(quant::encoded_bytes(pi_codec, width));
    for (std::uint32_t v = 0; v < n; ++v) {
      quant::encode_row(pi_codec, checkpoint.pi.row(v), buf, sparse_eps);
      const auto rbytes =
          static_cast<std::uint32_t>(quant::row_bytes(pi_codec, width, buf));
      write_pod(out, rbytes);
      out.write(reinterpret_cast<const char*>(buf.data()),
                static_cast<std::streamsize>(rbytes));
    }
  } else if (encoded) {
    write_pod(out, static_cast<std::uint32_t>(pi_codec));
    const std::size_t vbytes =
        quant::encoded_bytes(pi_codec, checkpoint.pi.row_width());
    std::vector<std::byte> buf(vbytes);
    for (std::uint32_t v = 0; v < n; ++v) {
      quant::encode_row(pi_codec, checkpoint.pi.row(v), buf);
      out.write(reinterpret_cast<const char*>(buf.data()),
                static_cast<std::streamsize>(vbytes));
    }
  } else {
    for (std::uint32_t v = 0; v < n; ++v) {
      const auto row = checkpoint.pi.row(v);
      out.write(reinterpret_cast<const char*>(row.data()),
                static_cast<std::streamsize>(row.size_bytes()));
    }
  }
  const auto theta = checkpoint.global.theta_flat();
  out.write(reinterpret_cast<const char*>(theta.data()),
            static_cast<std::streamsize>(theta.size_bytes()));
  if (!out) throw Error("checkpoint write failed");
}

Checkpoint load_checkpoint(std::istream& in) {
  if (read_pod<std::uint64_t>(in) != kMagic) {
    throw DataError("not a scd checkpoint (bad magic)");
  }
  const auto version = read_pod<std::uint32_t>(in);
  if (version != kVersion && version != kVersionCodec &&
      version != kVersionSparse) {
    throw DataError("unsupported checkpoint version " +
                    std::to_string(version));
  }
  Checkpoint checkpoint;
  checkpoint.iteration = read_pod<std::uint64_t>(in);
  checkpoint.hyper.num_communities = read_pod<std::uint32_t>(in);
  checkpoint.hyper.alpha = read_pod<double>(in);
  checkpoint.hyper.eta0 = read_pod<double>(in);
  checkpoint.hyper.eta1 = read_pod<double>(in);
  checkpoint.hyper.delta = read_pod<double>(in);
  try {
    checkpoint.hyper.validate();
  } catch (const Error& e) {
    throw DataError(std::string("corrupt checkpoint hyper: ") + e.what());
  }
  const auto n = read_pod<std::uint32_t>(in);
  const std::uint32_t k = checkpoint.hyper.num_communities;
  if (n == 0) throw DataError("checkpoint has zero vertices");
  if (k > kMaxCommunities) {
    throw DataError("checkpoint K " + std::to_string(k) +
                    " exceeds the sanity cap " +
                    std::to_string(kMaxCommunities));
  }
  const std::uint32_t width = k + 1;  // [pi | phi_sum]
  const std::uint64_t theta_bytes = std::uint64_t{k} * 2 * sizeof(double);

  // Resolve the codec tag (v2/v3) and size-check the promised body
  // against the stream BEFORE allocating n*width floats from header
  // fields that may be garbage.
  quant::RowCodec codec = quant::RowCodec::kFloat32;
  if (version == kVersionCodec || version == kVersionSparse) {
    const auto tag = read_pod<std::uint32_t>(in);
    if (tag >= quant::kNumCodecs) {
      throw DataError("checkpoint has unknown pi codec tag " +
                      std::to_string(tag));
    }
    codec = static_cast<quant::RowCodec>(tag);
    if (version == kVersionSparse && !quant::is_sparse(codec)) {
      throw DataError("version-3 checkpoint carries a dense pi codec tag");
    }
    if (version == kVersionCodec && quant::is_sparse(codec)) {
      throw DataError("version-2 checkpoint carries a sparse pi codec tag");
    }
  }
  if (version == kVersionSparse) {
    // Lower bound: every row carries at least its uint32 length prefix.
    require_body_fits(in,
                      std::uint64_t{n} * sizeof(std::uint32_t) + theta_bytes);
  } else {
    const std::uint64_t row_bytes =
        version == kVersionCodec
            ? quant::encoded_bytes(codec, width)
            : std::uint64_t{width} * sizeof(float);
    require_body_fits(in, std::uint64_t{n} * row_bytes + theta_bytes);
  }

  checkpoint.pi = PiMatrix(n, k);
  checkpoint.pi_codec = codec;
  if (version == kVersionSparse) {
    const std::size_t capacity = quant::encoded_bytes(codec, width);
    // Rows land in a zero-padded capacity slot: decode_row (and the
    // sparse kernels) address the fixed layout, so the suffix beyond the
    // stored bytes must be deterministic.
    std::vector<std::byte> buf(capacity);
    for (std::uint32_t v = 0; v < n; ++v) {
      const auto rbytes = read_pod<std::uint32_t>(in);
      if (rbytes == 0 || rbytes > capacity) {
        throw DataError("checkpoint sparse row length " +
                        std::to_string(rbytes) + " outside (0, " +
                        std::to_string(capacity) + "]");
      }
      std::fill(buf.begin(), buf.end(), std::byte{0});
      in.read(reinterpret_cast<char*>(buf.data()),
              static_cast<std::streamsize>(rbytes));
      if (!in) throw DataError("checkpoint truncated");
      quant::decode_row(codec, buf, checkpoint.pi.row(v));
    }
  } else if (version == kVersionCodec) {
    const std::size_t vbytes = quant::encoded_bytes(codec, width);
    std::vector<std::byte> buf(vbytes);
    for (std::uint32_t v = 0; v < n; ++v) {
      in.read(reinterpret_cast<char*>(buf.data()),
              static_cast<std::streamsize>(vbytes));
      if (!in) throw DataError("checkpoint truncated");
      quant::decode_row(codec, buf, checkpoint.pi.row(v));
    }
  } else {
    for (std::uint32_t v = 0; v < n; ++v) {
      auto row = checkpoint.pi.row(v);
      in.read(reinterpret_cast<char*>(row.data()),
              static_cast<std::streamsize>(row.size_bytes()));
      if (!in) throw DataError("checkpoint truncated");
    }
  }
  checkpoint.global = GlobalState(k);
  auto theta = checkpoint.global.theta_flat();
  in.read(reinterpret_cast<char*>(theta.data()),
          static_cast<std::streamsize>(theta.size_bytes()));
  if (!in) throw DataError("checkpoint truncated");
  checkpoint.global.update_beta_from_theta();
  return checkpoint;
}

void save_checkpoint_file(const std::string& path,
                          const Checkpoint& checkpoint,
                          quant::RowCodec pi_codec, float sparse_eps) {
  std::ofstream out(path, std::ios::binary);
  if (!out) throw Error("cannot open '" + path + "' for writing");
  save_checkpoint(out, checkpoint, pi_codec, sparse_eps);
}

Checkpoint load_checkpoint_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw DataError("cannot open checkpoint '" + path + "'");
  return load_checkpoint(in);
}

std::string checkpoint_to_bytes(const Checkpoint& checkpoint,
                                quant::RowCodec pi_codec, float sparse_eps) {
  std::ostringstream out(std::ios::binary);
  save_checkpoint(out, checkpoint, pi_codec, sparse_eps);
  return std::move(out).str();
}

Checkpoint checkpoint_from_bytes(const std::string& bytes) {
  std::istringstream in(bytes, std::ios::binary);
  return load_checkpoint(in);
}

}  // namespace scd::core
