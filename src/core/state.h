// Model state containers.
//
// Following the paper's memory layout decision (Section III-A), the local
// state per vertex is stored as the K floats of pi plus the single float
// sum(phi) — phi itself is recomputed as phi_ak = pi_ak * phi_sum_a when
// needed, trading a multiply for a 2x memory saving. PiMatrix is the
// in-process version of that layout; the distributed sampler stores the
// same rows in a DKV store.
//
// Global state is theta (K x 2 Gamma-reparameterized strengths, double
// precision — it is tiny and master-owned) and the derived beta.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "core/hyper.h"
#include "random/xoshiro.h"

namespace scd::core {

/// Row width of the pi representation: K pi entries + phi_sum.
inline std::uint32_t pi_row_width(std::uint32_t k) { return k + 1; }

/// Deterministic per-(label, indices) engine derivation: all samplers
/// (sequential / parallel / distributed) draw the same randomness for the
/// same logical event, making their trajectories comparable across any
/// thread or worker count. See tests/core/equivalence_test.cpp.
rng::Xoshiro256 derive_rng(std::uint64_t seed, std::uint64_t label,
                           std::uint64_t x = 0, std::uint64_t y = 0);

/// Well-known labels for derive_rng.
namespace rng_label {
constexpr std::uint64_t kPhiInit = 1;
constexpr std::uint64_t kThetaInit = 2;
constexpr std::uint64_t kNeighbors = 3;
constexpr std::uint64_t kPhiNoise = 4;
constexpr std::uint64_t kThetaNoise = 5;
constexpr std::uint64_t kMinibatch = 6;
constexpr std::uint64_t kGraphGen = 7;
constexpr std::uint64_t kHeldOut = 8;
}  // namespace rng_label

/// Initialize one pi row (pi normalized from phi_ak ~ Gamma(init_shape))
/// into `row` (layout: pi[0..K-1], phi_sum). Deterministic per (seed, a).
void init_pi_row(std::uint64_t seed, std::uint64_t vertex, double init_shape,
                 std::span<float> row);

/// N x (K+1) float matrix of [pi | phi_sum] rows.
class PiMatrix {
 public:
  PiMatrix(std::uint32_t num_vertices, std::uint32_t num_communities);

  /// Gamma(init_shape) expanded-mean initialisation of every row.
  void init_random(std::uint64_t seed, double init_shape = 1.0);

  std::uint32_t num_vertices() const { return n_; }
  std::uint32_t num_communities() const { return k_; }
  std::uint32_t row_width() const { return k_ + 1; }

  std::span<float> row(std::uint32_t v) {
    return {data_.data() + std::size_t{v} * row_width(), row_width()};
  }
  std::span<const float> row(std::uint32_t v) const {
    return {data_.data() + std::size_t{v} * row_width(), row_width()};
  }

  float pi(std::uint32_t v, std::uint32_t k) const {
    return data_[std::size_t{v} * row_width() + k];
  }
  float phi_sum(std::uint32_t v) const {
    return data_[std::size_t{v} * row_width() + k_];
  }

 private:
  std::uint32_t n_;
  std::uint32_t k_;
  std::vector<float> data_;
};

/// Global community-strength state.
class GlobalState {
 public:
  explicit GlobalState(std::uint32_t num_communities);

  /// theta_ki ~ Gamma(eta_i) initialisation; deterministic per seed.
  void init_random(std::uint64_t seed, const Hyper& hyper);

  std::uint32_t num_communities() const { return k_; }

  /// theta[k][i], i = 0 (non-link pseudo-count) or 1 (link pseudo-count).
  double theta(std::uint32_t k, unsigned i) const {
    return theta_[k * 2 + i];
  }
  void set_theta(std::uint32_t k, unsigned i, double value) {
    theta_[k * 2 + i] = value;
  }
  std::span<double> theta_flat() { return theta_; }
  std::span<const double> theta_flat() const { return theta_; }

  /// beta_k = theta_k1 / (theta_k0 + theta_k1), refreshed by
  /// update_beta_from_theta().
  float beta(std::uint32_t k) const { return beta_[k]; }
  std::span<const float> beta_all() const { return beta_; }
  std::span<float> beta_mutable() { return beta_; }

  void update_beta_from_theta();

 private:
  std::uint32_t k_;
  std::vector<double> theta_;  // K x 2
  std::vector<float> beta_;    // K
};

}  // namespace scd::core
