#include "core/state.h"

#include <algorithm>

#include "random/distributions.h"
#include "util/error.h"

namespace scd::core {

rng::Xoshiro256 derive_rng(std::uint64_t seed, std::uint64_t label,
                           std::uint64_t x, std::uint64_t y) {
  // Chain SplitMix64 over the tuple; each stage fully mixes, so distinct
  // tuples give decorrelated engines.
  std::uint64_t s = seed;
  std::uint64_t h = rng::splitmix64(s);
  s ^= label * 0x9e3779b97f4a7c15ULL;
  h ^= rng::splitmix64(s);
  s ^= x * 0xc2b2ae3d27d4eb4fULL;
  h ^= rng::splitmix64(s);
  s ^= y * 0x165667b19e3779f9ULL;
  h ^= rng::splitmix64(s);
  return rng::Xoshiro256(h);
}

void init_pi_row(std::uint64_t seed, std::uint64_t vertex, double init_shape,
                 std::span<float> row) {
  SCD_REQUIRE(row.size() >= 2, "row must hold at least one pi + phi_sum");
  const std::size_t k = row.size() - 1;
  rng::Xoshiro256 engine = derive_rng(seed, rng_label::kPhiInit, vertex);
  double sum = 0.0;
  for (std::size_t i = 0; i < k; ++i) {
    const double phi = rng::sample_gamma(engine, init_shape);
    row[i] = static_cast<float>(phi);
    sum += phi;
  }
  if (sum <= 0.0) {
    const float uniform = 1.0f / static_cast<float>(k);
    for (std::size_t i = 0; i < k; ++i) row[i] = uniform;
    row[k] = 1.0f;
    return;
  }
  for (std::size_t i = 0; i < k; ++i) {
    row[i] = static_cast<float>(static_cast<double>(row[i]) / sum);
  }
  row[k] = static_cast<float>(sum);
}

PiMatrix::PiMatrix(std::uint32_t num_vertices, std::uint32_t num_communities)
    : n_(num_vertices), k_(num_communities) {
  SCD_REQUIRE(num_vertices >= 1 && num_communities >= 1,
              "empty pi matrix");
  data_.assign(std::size_t{n_} * row_width(), 0.0f);
}

void PiMatrix::init_random(std::uint64_t seed, double init_shape) {
  for (std::uint32_t v = 0; v < n_; ++v) {
    init_pi_row(seed, v, init_shape, row(v));
  }
}

GlobalState::GlobalState(std::uint32_t num_communities)
    : k_(num_communities) {
  SCD_REQUIRE(num_communities >= 1, "need at least one community");
  theta_.assign(std::size_t{k_} * 2, 1.0);
  beta_.assign(k_, 0.5f);
}

void GlobalState::init_random(std::uint64_t seed, const Hyper& hyper) {
  rng::Xoshiro256 engine = derive_rng(seed, rng_label::kThetaInit);
  for (std::uint32_t k = 0; k < k_; ++k) {
    theta_[k * 2 + 0] = rng::sample_gamma(engine, hyper.eta1);
    theta_[k * 2 + 1] = rng::sample_gamma(engine, hyper.eta0);
  }
  update_beta_from_theta();
}

void GlobalState::update_beta_from_theta() {
  for (std::uint32_t k = 0; k < k_; ++k) {
    const double t0 = theta_[k * 2 + 0];
    const double t1 = theta_[k * 2 + 1];
    const double sum = t0 + t1;
    double b = sum > 0.0 ? t1 / sum : 0.5;
    // Keep beta inside (0, 1) so log terms in the gradients stay finite.
    // The margin must survive the cast to float (1 - 1e-9 rounds to 1.0f).
    b = std::clamp(b, 1e-6, 1.0 - 1e-6);
    beta_[k] = static_cast<float>(b);
  }
}

}  // namespace scd::core
