// Turning the inferred pi matrix into a community report.
//
// a-MMSB gives each vertex a membership distribution; the conventional
// extraction for evaluation against ground-truth covers is thresholding
// (vertex a belongs to community k when pi_ak >= threshold) plus the
// dominant (argmax) hard assignment.
#pragma once

#include <cstdint>
#include <vector>

#include "core/state.h"
#include "graph/metrics.h"

namespace scd::core {

struct CommunityReport {
  /// Thresholded overlapping cover: communities[k] = sorted members.
  graph::Cover communities;
  /// Hard argmax assignment per vertex.
  std::vector<std::uint32_t> dominant;
  /// Number of vertices with >= 2 memberships at the threshold.
  std::uint64_t overlapping_vertices = 0;
};

/// Extract with a membership threshold. A sensible default is a small
/// multiple of the uniform level 1/K.
CommunityReport extract_communities(const PiMatrix& pi, double threshold);

/// Threshold heuristic: max(0.1, 3/K).
double default_membership_threshold(std::uint32_t num_communities);

}  // namespace scd::core
