// Persistent per-rank buffers for the distributed sampler's steady
// state, mirroring IterationWorkspace for the in-process samplers: the
// master's deploy shares and reduce targets, the workers' neighbor
// sets, staged phi rows, DKV key/row buffers and dedup index. Each loop
// constructs its workspace once, sized to conservative bounds, and the
// iterations then run without heap allocation (verified by
// tests/core/zero_alloc_test.cpp), so modeled times measure the
// algorithm, not the allocator.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "core/deploy_share.h"
#include "core/phi_kernel.h"
#include "dkv/key_index.h"
#include "graph/minibatch.h"

namespace scd::core {

/// Master-side buffers: minibatch draw target + scratch, one reusable
/// DeployShare per worker, and the collective payloads.
struct MasterWorkspace {
  graph::Minibatch mb;
  graph::MinibatchScratch mb_scratch;
  std::vector<DeployShare> shares;  // one per worker
  std::vector<double> ratios;       // [link | nonlink], 2k
  std::vector<double> grad;         // theta gradient, 2k
  std::vector<double> eval_acc;     // [sum log avg, pair count]

  MasterWorkspace(std::uint32_t k, unsigned workers)
      : shares(workers),
        ratios(std::size_t{k} * 2, 0.0),
        grad(std::size_t{k} * 2, 0.0),
        eval_acc(2, 0.0) {}

  /// Real mode: pre-size the minibatch buffers and every worker share to
  /// its slice bound so the deploy path never reallocates.
  void reserve_real(const graph::Graph& graph,
                    const graph::MinibatchSampler& minibatch) {
    const std::size_t max_pairs = minibatch.max_pairs_bound();
    const std::size_t max_vertices = minibatch.max_vertices_bound();
    mb.pairs.reserve(max_pairs);
    mb.vertices.reserve(max_vertices);
    mb_scratch.chosen.reset(max_pairs);
    const std::size_t workers = shares.size();
    const std::size_t share_vertices = max_vertices / workers + 1;
    const std::size_t share_adjacency =
        std::min<std::size_t>(share_vertices * graph.max_degree(),
                              2 * graph.num_edges());
    const std::size_t share_pairs = max_pairs / workers + 1;
    for (DeployShare& share : shares) {
      share.reserve(share_vertices, share_adjacency, share_pairs);
    }
  }
};

/// Worker-side buffers for one rank's stages: deploy share, neighbor
/// sets, staged [pi | phi_sum] rows, DKV key/row buffers with the dedup
/// index, and the kernel scratch.
struct WorkerWorkspace {
  DeployShare share;
  std::vector<graph::NeighborSet> neighbor_sets;
  graph::NeighborScratch nbr_scratch;
  std::vector<float> staged;        // n_local x row_width
  std::vector<std::uint64_t> keys;  // row references of the current stage
  /// Fetched rows (deduped or not), kept in the DKV's wire codec —
  /// value_bytes() per row; the enc kernels dequantize in-register.
  std::vector<std::byte> rows_enc;
  dkv::KeyIndex key_index;
  PhiScratch scratch;
  std::vector<double> ratios;    // [link | nonlink], 2k
  std::vector<double> eval_acc;  // [sum log avg, pair count]

  explicit WorkerWorkspace(std::uint32_t k)
      : scratch(k), ratios(std::size_t{k} * 2, 0.0), eval_acc(2, 0.0) {}

  /// Real mode: pre-size for this worker's slice bounds. `set_bound` is
  /// the largest neighbor set a vertex can draw (max_degree + n for
  /// link-aware sets), `stage_refs_bound` the most row references any
  /// single read stage can issue, `value_bytes` the store's encoded
  /// row size.
  void reserve_real(std::size_t share_vertices, std::size_t share_adjacency,
                    std::size_t share_pairs, std::size_t row_width,
                    std::size_t value_bytes, std::size_t set_bound,
                    std::size_t stage_refs_bound, std::size_t num_neighbors) {
    share.reserve(share_vertices, share_adjacency, share_pairs);
    staged.reserve(share_vertices * row_width);
    keys.reserve(stage_refs_bound);
    rows_enc.reserve(stage_refs_bound * value_bytes);
    key_index.reserve(stage_refs_bound);
    nbr_scratch.raw.reserve(num_neighbors);
    nbr_scratch.chosen.reset(num_neighbors);
    ensure_neighbor_sets(share_vertices, set_bound);
  }

  /// Grow-only: make sure `n` sets exist, each with capacity for
  /// `set_bound` samples, so refilling them draws no allocations.
  void ensure_neighbor_sets(std::size_t n, std::size_t set_bound) {
    const std::size_t old_size = neighbor_sets.size();
    if (n <= old_size) return;
    neighbor_sets.resize(n);
    for (std::size_t i = old_size; i < n; ++i) {
      neighbor_sets[i].samples.reserve(set_bound);
    }
  }
};

}  // namespace scd::core
