// Hyperparameters of the a-MMSB model and the SGRLD step-size schedule.
#pragma once

#include <cmath>
#include <cstdint>

#include "util/error.h"

namespace scd::core {

struct Hyper {
  /// Number of latent communities K.
  std::uint32_t num_communities = 16;

  /// Dirichlet concentration for node memberships pi_a ~ Dirichlet(alpha).
  /// The common default is 1/K; call normalized_alpha() to apply it.
  double alpha = 0.0;  // 0 = auto (1/K)

  /// Beta prior for community strengths: beta_k ~ Beta(eta0, eta1).
  /// eta0 pairs with the link pseudo-count theta_k1, eta1 with theta_k0.
  double eta0 = 1.0;
  double eta1 = 1.0;

  /// Inter-community link probability delta. Must be small relative to
  /// the graph density; see suggested_delta().
  double delta = 1e-7;

  double normalized_alpha() const {
    return alpha > 0.0 ? alpha
                       : 1.0 / static_cast<double>(num_communities);
  }

  void validate() const {
    SCD_REQUIRE(num_communities >= 1, "need at least one community");
    SCD_REQUIRE(alpha >= 0.0, "alpha must be >= 0 (0 = auto)");
    SCD_REQUIRE(eta0 > 0.0 && eta1 > 0.0, "eta must be positive");
    SCD_REQUIRE(delta > 0.0 && delta < 1.0, "delta must be in (0, 1)");
  }
};

/// A delta an order of magnitude below the graph density: non-community
/// links should be rare under the model.
inline double suggested_delta(double graph_density) {
  return std::max(1e-10, 0.1 * graph_density);
}

/// SGRLD step size eps_t = a * (1 + t/b)^(-c). The defaults follow the
/// ranges used for SGRLD on LDA / a-MMSB: c in (0.5, 1] satisfies the
/// Robbins-Monro conditions.
struct StepSchedule {
  double a = 0.01;
  double b = 1024.0;
  double c = 0.55;

  double eps(std::uint64_t t) const {
    return a * std::pow(1.0 + static_cast<double>(t) / b, -c);
  }

  void validate() const {
    SCD_REQUIRE(a > 0.0 && b > 0.0, "step-size a, b must be positive");
    SCD_REQUIRE(c > 0.5 && c <= 1.0,
                "step-size exponent c must be in (0.5, 1]");
  }
};

}  // namespace scd::core
