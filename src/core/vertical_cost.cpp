#include "core/vertical_cost.h"

namespace scd::core {

VerticalIterationCost vertical_iteration_cost(
    const sim::ComputeModel& node, const PhantomWorkload& workload,
    std::uint32_t num_communities, std::uint32_t num_neighbors) {
  VerticalIterationCost cost;
  const double m = workload.minibatch_vertices;
  const double n = num_neighbors;
  const double k = num_communities;
  const double pairs = static_cast<double>(workload.minibatch_pairs);
  const double row_bytes =
      static_cast<double>(pi_row_width(num_communities)) * sizeof(float);

  // Minibatch drawing is the serial master section of the loop.
  cost.draw_minibatch = m * node.draw_cost_per_vertex_s;
  cost.sample_neighbors =
      node.kernel_time(m * n, node.neighbor_unit_cycles);
  // pi rows stream from local RAM instead of the network: the minibatch
  // vertices plus their neighbor sets, and the pair endpoints for beta.
  cost.load_pi = node.local_bytes_time(
      static_cast<std::uint64_t>((m * (n + 1) + 2.0 * pairs) * row_bytes));
  cost.update_phi = node.kernel_time(m * n * k, node.phi_unit_cycles);
  cost.update_pi =
      node.kernel_time(m * k, node.pi_unit_cycles) +
      node.local_bytes_time(static_cast<std::uint64_t>(m * row_bytes));
  cost.update_beta_theta =
      node.kernel_time(pairs * k, node.beta_unit_cycles) +
      node.serial_time(2.0 * k, node.theta_unit_cycles);
  return cost;
}

}  // namespace scd::core
