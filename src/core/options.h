// Options shared by all sampler frontends.
#pragma once

#include <cstdint>

#include "core/grads.h"
#include "core/hyper.h"
#include "graph/minibatch.h"

namespace scd::core {

/// Re-exported for sampler configuration. kUniform is Eqn 5 verbatim;
/// kLinkAware (links exact + scaled non-link sample) is the low-variance
/// construction sparse graphs need in practice — both unbiased, see
/// graph/minibatch.h.
using NeighborMode = graph::NeighborMode;

/// Tunable-knob plumbing: the autotuner (src/tune/search_space.h)
/// searches worker count, threads/node, pipelining, minibatch size, DKV
/// cache rows, and the alias-anchor draw. The first two live on
/// sim::Config, pipelining and the cache on DistributedOptions, and the
/// last two flow through here — minibatch size as the phantom workload's
/// M and the alias draw as minibatch.alias_anchor below.
struct SamplerOptions {
  graph::MinibatchSampler::Options minibatch{};

  /// Neighbor sample size |V_n| per minibatch vertex (Eqn 5); in
  /// kLinkAware mode this is the non-link sample size, on top of the
  /// exact links.
  std::uint32_t num_neighbors = 32;

  NeighborMode neighbor_mode = NeighborMode::kUniform;

  /// Evaluate held-out perplexity every this many iterations (0 = never).
  std::uint64_t eval_interval = 64;

  StepSchedule step{};

  /// Gamma shape of the phi initialisation.
  double init_shape = 1.0;

  /// Langevin noise multiplier: 1 = SGRLD posterior sampling (the
  /// paper's algorithm); 0 = deterministic preconditioned SGD toward the
  /// MAP. Intermediate values anneal. MAP mode is how the general-MMSB
  /// sampler escapes the symmetric saddle of disassortative structure.
  double noise_factor = 1.0;

  /// SGRLD drift form: the paper's literal Eqn 3/5 (default) or the
  /// posterior-exact preconditioned form; see core::GradientForm.
  GradientForm gradient_form = GradientForm::kRawEqn3;

  /// Root seed; every random event derives deterministically from it.
  std::uint64_t seed = 42;

  void validate() const {
    step.validate();
    SCD_REQUIRE(num_neighbors >= 1, "need at least one neighbor sample");
    SCD_REQUIRE(init_shape > 0.0, "init_shape must be positive");
    SCD_REQUIRE(noise_factor >= 0.0, "noise_factor must be >= 0");
  }
};

/// One recorded perplexity measurement.
struct HistoryPoint {
  std::uint64_t iteration = 0;
  /// Seconds: wall clock for in-process samplers, virtual cluster time
  /// for the distributed sampler.
  double seconds = 0.0;
  double perplexity = 0.0;
};

}  // namespace scd::core
