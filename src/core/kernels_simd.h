// Lane-friendly fused variants of the three hot kernels plus the SGRLD
// row update, and the runtime dispatch every sampler routes through.
//
// Why these are faster than the scalar forms in grads.cpp:
//   * fused single pass — the scalar phi gradient walks the row twice and
//     recomputes w_k = pi_bk * bt_k + dt * (1 - pi_bk) in both passes.
//     The fused variant forms w_k = dt + pi_bk * (bt_k - dt) once (the
//     bt_k - dt table is staged by LikelihoodTerms::refresh), stores it
//     in a scratch buffer, and derives both Z and the gradient from that
//     one pass over the inputs.
//   * lane accumulation — Z is summed into kFusedLanes independent float
//     accumulators, which breaks the loop-carried add dependency the
//     scalar double accumulator serializes on and lets the compiler keep
//     the whole block in vector registers.
//   * blocked double carry — every kFusedBlock elements the float lane
//     sums are folded into a running double. All terms of Z are
//     non-negative (no cancellation), so the relative error of the
//     blocked float sum stays within a few float ulps of the scalar
//     double path (~1e-6 relative; see kFusedRelTolerance and
//     tests/core/kernels_simd_test.cpp).
//
// The dispatched fast_* entry points pick the fused path by default; the
// scalar path remains selectable for A/B testing and debugging via
// set_kernel_path() or the SCD_KERNELS=scalar environment variable.
// Every sampler (sequential / parallel / distributed) calls the same
// fast_* functions, so the cross-sampler equivalence tests stay
// meaningful under either path.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>

#include "core/grads.h"
#include "quant/row_codec.h"

namespace scd::core {

/// Independent float accumulators per block (breaks the add chain; maps
/// onto two SSE registers, one AVX register, or half an AVX-512 one).
inline constexpr std::size_t kFusedLanes = 8;

/// Elements accumulated in float lanes between double-carry folds.
inline constexpr std::size_t kFusedBlock = 64;

/// Documented agreement bound between the scalar and fused paths for
/// Z-like positive sums: the fused path stages w_k in float (~1e-7
/// relative per term) and folds blocks of kFusedBlock float partial sums
/// into a double carry, so relative error grows like a few float ulps
/// per block, far below this bound for any realistic K.
inline constexpr double kFusedRelTolerance = 1e-5;

/// Which kernel implementation the fast_* dispatchers use.
enum class KernelPath { kScalar, kFused };

/// Current path: kFused unless overridden by set_kernel_path() or the
/// environment variable SCD_KERNELS=scalar (read once, at first use).
KernelPath kernel_path();
void set_kernel_path(KernelPath path);

// --- fused kernels ------------------------------------------------------
// Signatures mirror the scalar forms in grads.h; the extra scratch spans
// must be at least K wide and are clobbered. All are defined in
// kernels_simd.cpp, which is compiled with vectorization-friendly flags
// independent of the global build type.

/// Z_ab^(y) with a fused single-pass, lane-accumulated sum.
double fused_pair_likelihood(std::span<const float> row_a,
                             std::span<const float> row_b,
                             const LikelihoodTerms& terms, bool y);

/// Phi gradient (Eqn 6): w_k staged into `w_scratch` while Z accumulates,
/// then the gradient is read back from the scratch — one pass over the
/// input rows instead of two. Returns Z.
double fused_accumulate_phi_grad(std::span<const float> row_a,
                                 std::span<const float> row_b,
                                 const LikelihoodTerms& terms, bool y,
                                 std::span<double> grad,
                                 std::span<float> w_scratch);

/// Theta ratio (factored Eqn 4 form): f_ab(k,k) staged into `f_scratch`
/// while Z accumulates from the same products. Returns Z.
double fused_accumulate_theta_ratio(std::span<const float> row_a,
                                    std::span<const float> row_b,
                                    const LikelihoodTerms& terms, bool y,
                                    std::span<double> ratio,
                                    std::span<float> f_scratch);

/// SGRLD row update (Eqn 5): the serial Langevin noise draws are staged
/// into `noise_scratch` first (identical stream and order to the scalar
/// path), then the elementwise update runs as a vectorizable pass with a
/// lane-accumulated new_sum. Per-element row values match the scalar
/// path bit-for-bit; only the new_sum reduction (and hence the final
/// normalization) differs by float-level reassociation.
void fused_update_phi_row(std::uint64_t seed, std::uint64_t iteration,
                          std::uint32_t vertex, std::span<float> row,
                          std::span<const double> grad, double scale,
                          double eps, double alpha, double noise_factor,
                          GradientForm form,
                          std::span<double> noise_scratch);

// --- dequant-fused kernels ---------------------------------------------
// Variants that read codec-encoded rows (quant/row_codec.h layouts)
// directly: every pi entry is dequantized in-register inside the lane
// loop, so a decoded float row never materializes on the
// O(K * |neighbors|) hot path. Under quant::RowCodec::kFloat32 the
// reader is a raw float load and the arithmetic is bit-identical to the
// float-span kernels above. `k` is the community count (decoded width
// minus the trailing phi_sum slot); encoded spans must be exactly
// quant::encoded_bytes(codec, k + 1) long. Scalar counterparts replicate
// the grads.cpp reference semantics on the same readers.
//
// The sparse top-R codecs are accepted by every enc entry point below:
// pair likelihood becomes a sorted-index merge-intersect over the two
// supports with the dropped mass folded analytically through
// LikelihoodTerms::btd_sum, and the gradient/ratio kernels fall back to
// a correct O(K)-per-call form (the O(nnz) amortized forms live in the
// sparse kernel section below and need per-vertex/per-stratum batching
// the single-pair signatures cannot express). Dense-fallback rows route
// to the dense reader templates.

/// Z_ab^(y) from two encoded rows.
double fused_pair_likelihood_enc(quant::RowCodec codec,
                                 std::span<const std::byte> row_a,
                                 std::span<const std::byte> row_b,
                                 std::uint32_t k,
                                 const LikelihoodTerms& terms, bool y);
double pair_likelihood_enc(quant::RowCodec codec,
                           std::span<const std::byte> row_a,
                           std::span<const std::byte> row_b, std::uint32_t k,
                           const LikelihoodTerms& terms, bool y);

/// Phi gradient with an encoded neighbor row. `row_a` is the updating
/// vertex's *decoded* row ([pi | phi_sum], k+1 floats) — the caller
/// already holds it in float to stage the SGRLD update, and decoding it
/// once per vertex is off the per-neighbor hot path.
double fused_accumulate_phi_grad_enc(quant::RowCodec codec,
                                     std::span<const float> row_a,
                                     std::span<const std::byte> row_b,
                                     const LikelihoodTerms& terms, bool y,
                                     std::span<double> grad,
                                     std::span<float> w_scratch);
double accumulate_phi_grad_enc(quant::RowCodec codec,
                               std::span<const float> row_a,
                               std::span<const std::byte> row_b,
                               const LikelihoodTerms& terms, bool y,
                               std::span<double> grad);

/// Theta ratio from two encoded rows.
double fused_accumulate_theta_ratio_enc(quant::RowCodec codec,
                                        std::span<const std::byte> row_a,
                                        std::span<const std::byte> row_b,
                                        std::uint32_t k,
                                        const LikelihoodTerms& terms, bool y,
                                        std::span<double> ratio,
                                        std::span<float> f_scratch);
double accumulate_theta_ratio_enc(quant::RowCodec codec,
                                  std::span<const std::byte> row_a,
                                  std::span<const std::byte> row_b,
                                  std::uint32_t k,
                                  const LikelihoodTerms& terms, bool y,
                                  std::span<double> ratio);

// --- sparse kernels -----------------------------------------------------
// O(nnz) kernels for the quant::RowCodec sparse top-R codecs. A sparse
// row decodes to eps on every dropped community (eps = residual_mass /
// (K - nnz)), so each kernel splits into a support-driven part (O(nnz),
// scattered immediately) and a j-independent part that only depends on
// per-pair scalars — the latter is accumulated across a batch and folded
// with one O(K) epilogue, which is what makes the amortized per-neighbor
// cost O(nnz) instead of O(K). One implementation serves both
// KernelPath variants: the merges are serial and accumulate in double,
// so there is no lane parallelism to exploit; only dense-fallback rows
// route through the fused/scalar dense reader templates.

/// Per-vertex staging for the batched sparse phi path: mass = sum_j pi_aj
/// and sa[y] = sum_j pi_aj * btd[y][j], computed once per updating vertex
/// (O(K)) so each neighbor's Z costs only O(nnz_b).
struct SparsePhiStage {
  double mass = 0.0;
  double sa[2] = {0.0, 0.0};
};
SparsePhiStage sparse_phi_stage(std::span<const float> row_a,
                                const LikelihoodTerms& terms);

/// Scalar accumulators of the j-independent phi-gradient terms
/// ((dt/Z - 1)/phi_sum, and eps_b/(Z phi_sum) per stratum) summed over a
/// vertex's neighbor set; folded into the gradient once per vertex by
/// sparse_phi_epilogue (O(K)).
struct SparsePhiAccum {
  double c0 = 0.0;
  double ceps[2] = {0.0, 0.0};
  void reset() { c0 = ceps[0] = ceps[1] = 0.0; }
};

/// One neighbor's phi-gradient contribution against an encoded sparse
/// row: scatters the support-driven O(nnz) terms into `grad` and the
/// j-independent terms into `acc`. `row_a` is the updating vertex's
/// decoded row and `stage` its sparse_phi_stage. Dense-fallback
/// neighbors take a correct O(K) path. Returns Z.
double sparse_accumulate_phi_grad_enc(quant::RowCodec codec,
                                      std::span<const float> row_a,
                                      const SparsePhiStage& stage,
                                      std::span<const std::byte> row_b,
                                      const LikelihoodTerms& terms, bool y,
                                      std::span<double> grad,
                                      SparsePhiAccum& acc);

/// grad_j += c0 + ceps[0]*btd(0)_j + ceps[1]*btd(1)_j.
void sparse_phi_epilogue(const SparsePhiAccum& acc,
                         const LikelihoodTerms& terms,
                         std::span<double> grad);

/// One pair's theta-ratio contribution from two encoded sparse rows:
/// support-driven terms go into `ratio` (O(nnz_a + nnz_b)); the dense
/// eps_a*eps_b*bt_j/Z term is accumulated via `eps_coef` (+= eps_a*eps_b/Z)
/// and folded once per stratum by sparse_theta_epilogue. Pairs with a
/// dense-fallback side take a correct O(K) path (everything into
/// `ratio`, eps_coef untouched). Returns Z.
double sparse_accumulate_theta_ratio_enc(quant::RowCodec codec,
                                         std::span<const std::byte> row_a,
                                         std::span<const std::byte> row_b,
                                         std::uint32_t k,
                                         const LikelihoodTerms& terms,
                                         bool y, std::span<double> ratio,
                                         double& eps_coef);

/// ratio[y]_j += eps_coef[y] * bt(y)_j for both strata — the once-per-
/// stratum fold of the accumulated eps_a*eps_b/Z coefficients.
void sparse_theta_epilogue(double eps_coef_link, double eps_coef_nonlink,
                           const LikelihoodTerms& terms,
                           std::span<double> ratio_link,
                           std::span<double> ratio_nonlink);

// --- dispatched entry points -------------------------------------------
// The samplers call these; scratch spans are only touched on the fused
// path. The kernel_path() load is a relaxed atomic — negligible next to
// the O(K) loop it guards.

inline double fast_pair_likelihood(std::span<const float> row_a,
                                   std::span<const float> row_b,
                                   const LikelihoodTerms& terms, bool y) {
  return kernel_path() == KernelPath::kFused
             ? fused_pair_likelihood(row_a, row_b, terms, y)
             : pair_likelihood(row_a, row_b, terms, y);
}

inline double fast_accumulate_phi_grad(std::span<const float> row_a,
                                       std::span<const float> row_b,
                                       const LikelihoodTerms& terms, bool y,
                                       std::span<double> grad,
                                       std::span<float> w_scratch) {
  return kernel_path() == KernelPath::kFused
             ? fused_accumulate_phi_grad(row_a, row_b, terms, y, grad,
                                         w_scratch)
             : accumulate_phi_grad(row_a, row_b, terms, y, grad);
}

inline double fast_accumulate_theta_ratio(std::span<const float> row_a,
                                          std::span<const float> row_b,
                                          const LikelihoodTerms& terms,
                                          bool y, std::span<double> ratio,
                                          std::span<float> f_scratch) {
  return kernel_path() == KernelPath::kFused
             ? fused_accumulate_theta_ratio(row_a, row_b, terms, y, ratio,
                                            f_scratch)
             : accumulate_theta_ratio(row_a, row_b, terms, y, ratio);
}

inline double fast_pair_likelihood_enc(quant::RowCodec codec,
                                       std::span<const std::byte> row_a,
                                       std::span<const std::byte> row_b,
                                       std::uint32_t k,
                                       const LikelihoodTerms& terms, bool y) {
  return kernel_path() == KernelPath::kFused
             ? fused_pair_likelihood_enc(codec, row_a, row_b, k, terms, y)
             : pair_likelihood_enc(codec, row_a, row_b, k, terms, y);
}

inline double fast_accumulate_phi_grad_enc(quant::RowCodec codec,
                                           std::span<const float> row_a,
                                           std::span<const std::byte> row_b,
                                           const LikelihoodTerms& terms,
                                           bool y, std::span<double> grad,
                                           std::span<float> w_scratch) {
  return kernel_path() == KernelPath::kFused
             ? fused_accumulate_phi_grad_enc(codec, row_a, row_b, terms, y,
                                             grad, w_scratch)
             : accumulate_phi_grad_enc(codec, row_a, row_b, terms, y, grad);
}

inline double fast_accumulate_theta_ratio_enc(
    quant::RowCodec codec, std::span<const std::byte> row_a,
    std::span<const std::byte> row_b, std::uint32_t k,
    const LikelihoodTerms& terms, bool y, std::span<double> ratio,
    std::span<float> f_scratch) {
  return kernel_path() == KernelPath::kFused
             ? fused_accumulate_theta_ratio_enc(codec, row_a, row_b, k,
                                                terms, y, ratio, f_scratch)
             : accumulate_theta_ratio_enc(codec, row_a, row_b, k, terms, y,
                                          ratio);
}

inline void fast_update_phi_row(std::uint64_t seed, std::uint64_t iteration,
                                std::uint32_t vertex, std::span<float> row,
                                std::span<const double> grad, double scale,
                                double eps, double alpha,
                                double noise_factor, GradientForm form,
                                std::span<double> noise_scratch) {
  if (kernel_path() == KernelPath::kFused) {
    fused_update_phi_row(seed, iteration, vertex, row, grad, scale, eps,
                         alpha, noise_factor, form, noise_scratch);
  } else {
    update_phi_row(seed, iteration, vertex, row, grad, scale, eps, alpha,
                   noise_factor, form);
  }
}

}  // namespace scd::core
