#include "core/general_sampler.h"

#include <chrono>

#include "core/grads.h"  // update_phi_row (parameterization is shared)
#include "util/error.h"

namespace scd::core {

namespace {
using steady = std::chrono::steady_clock;
}

GeneralSequentialSampler::GeneralSequentialSampler(
    const graph::Graph& training, const graph::HeldOutSplit* heldout,
    const Hyper& hyper, const SamplerOptions& options)
    : graph_(training),
      heldout_(heldout),
      hyper_(hyper),
      options_(options),
      pi_(training.num_vertices(), hyper.num_communities),
      blocks_(hyper.num_communities),
      minibatch_(training, heldout, options.minibatch) {
  hyper_.validate();
  options_.validate();
  pi_.init_random(options_.seed, options_.init_shape);
  // Assortative default start (see BlockMatrix::init_assortative);
  // warm_start_blocks overrides it for other structural hypotheses.
  blocks_.init_assortative(options_.seed, /*beta_diag=*/0.3, hyper_.delta);
  terms_.refresh(blocks_);
  if (heldout_ != nullptr) {
    evaluator_ = std::make_unique<PerplexityEvaluator>(
        std::span<const graph::HeldOutPair>(heldout_->pairs()));
  }
}

void GeneralSequentialSampler::one_iteration() {
  const double eps = options_.step.eps(iteration_);
  rng::Xoshiro256 mb_rng =
      derive_rng(options_.seed, rng_label::kMinibatch, iteration_);
  const graph::Minibatch mb = minibatch_.draw(mb_rng);
  const std::uint32_t k = hyper_.num_communities;

  // --- update_phi: staged against the current state --------------------
  std::vector<float> staged(mb.vertices.size() * pi_.row_width());
  std::vector<double> g_exact(k);
  std::vector<double> g_sampled(k);
  for (std::size_t vi = 0; vi < mb.vertices.size(); ++vi) {
    const graph::Vertex a = mb.vertices[vi];
    rng::Xoshiro256 nbr_rng =
        derive_rng(options_.seed, rng_label::kNeighbors, iteration_, a);
    const graph::NeighborSet set = graph::draw_neighbor_set(
        nbr_rng, options_.neighbor_mode, graph_.num_vertices(), a,
        graph_.neighbors(a), options_.num_neighbors);
    std::fill(g_exact.begin(), g_exact.end(), 0.0);
    std::fill(g_sampled.begin(), g_sampled.end(), 0.0);
    for (std::size_t i = 0; i < set.samples.size(); ++i) {
      const graph::NeighborSample& nb = set.samples[i];
      general_accumulate_phi_grad(
          pi_.row(a), pi_.row(nb.b), terms_, blocks_, nb.link,
          i < set.exact_prefix ? std::span<double>(g_exact)
                               : std::span<double>(g_sampled));
    }
    for (std::size_t i = 0; i < k; ++i) {
      g_exact[i] += set.sampled_scale * g_sampled[i];
    }
    std::span<float> out(staged.data() + vi * pi_.row_width(),
                         pi_.row_width());
    std::copy(pi_.row(a).begin(), pi_.row(a).end(), out.begin());
    update_phi_row(options_.seed, iteration_, a, out, g_exact,
                   /*scale=*/1.0, eps, hyper_.normalized_alpha(),
                   options_.noise_factor, options_.gradient_form);
  }

  // --- update_pi: commit ------------------------------------------------
  for (std::size_t vi = 0; vi < mb.vertices.size(); ++vi) {
    std::span<const float> src(staged.data() + vi * pi_.row_width(),
                               pi_.row_width());
    std::copy(src.begin(), src.end(), pi_.row(mb.vertices[vi]).begin());
  }

  // --- update B/theta ----------------------------------------------------
  const std::uint32_t blocks = blocks_.num_blocks();
  std::vector<double> ratio_link(blocks, 0.0);
  std::vector<double> ratio_nonlink(blocks, 0.0);
  for (const graph::MinibatchPair& p : mb.pairs) {
    general_accumulate_theta_ratio(
        pi_.row(p.a), pi_.row(p.b), terms_, blocks_, p.link,
        p.link ? std::span<double>(ratio_link)
               : std::span<double>(ratio_nonlink));
  }
  if (iteration_ >= block_freeze_until_) {
    std::vector<double> grad(std::size_t{blocks} * 2, 0.0);
    general_theta_grad_from_ratios(ratio_link, ratio_nonlink, blocks_,
                                   grad);
    for (double& g : grad) g *= mb.scale;
    general_update_theta(options_.seed, iteration_, blocks_, grad, eps,
                         hyper_.eta0, hyper_.eta1, options_.noise_factor);
    terms_.refresh(blocks_);
  }

  ++iteration_;
}

void GeneralSequentialSampler::run(std::uint64_t iterations) {
  for (std::uint64_t i = 0; i < iterations; ++i) {
    const steady::time_point start = steady::now();
    one_iteration();
    elapsed_s_ +=
        std::chrono::duration<double>(steady::now() - start).count();
    if (evaluator_ && options_.eval_interval > 0 &&
        iteration_ % options_.eval_interval == 0) {
      evaluate_perplexity();
    }
  }
}

double GeneralSequentialSampler::evaluate_perplexity() {
  SCD_REQUIRE(evaluator_ != nullptr,
              "no held-out split was given to the sampler");
  const auto slice = evaluator_->slice();
  for (std::size_t i = 0; i < slice.size(); ++i) {
    const graph::HeldOutPair& p = slice[i];
    evaluator_->add_sample_prob(
        i, general_pair_likelihood(pi_.row(p.a), pi_.row(p.b), terms_,
                                   blocks_, p.link));
  }
  evaluator_->finish_sample();
  const double perp = PerplexityEvaluator::perplexity(
      evaluator_->sum_log_avg(), slice.size());
  history_.push_back({iteration_, elapsed_s_, perp});
  return perp;
}

void GeneralSequentialSampler::warm_start_blocks(
    const BlockMatrix& blocks) {
  SCD_REQUIRE(blocks.num_communities() == hyper_.num_communities,
              "warm-start block matrix has the wrong K");
  SCD_REQUIRE(iteration_ == 0, "warm start must precede training");
  blocks_ = blocks;
  terms_.refresh(blocks_);
}

}  // namespace scd::core
