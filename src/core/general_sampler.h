// Sequential SG-MCMC sampler for the general (non-assortative) MMSB.
//
// Mirrors SequentialSampler with the full block matrix B in place of
// (beta, delta). Iteration cost is O(M |V_n| K^2) instead of O(M |V_n| K)
// — the reason the paper sticks to a-MMSB for its large-scale runs —
// so this engine targets moderate K (disassortative structure rarely
// needs thousands of blocks).
#pragma once

#include <memory>
#include <vector>

#include "core/general_mmsb.h"
#include "core/options.h"
#include "core/perplexity.h"
#include "graph/graph.h"
#include "graph/heldout.h"
#include "graph/minibatch.h"

namespace scd::core {

class GeneralSequentialSampler {
 public:
  GeneralSequentialSampler(const graph::Graph& training,
                           const graph::HeldOutSplit* heldout,
                           const Hyper& hyper,
                           const SamplerOptions& options);

  void run(std::uint64_t iterations);

  std::uint64_t iteration() const { return iteration_; }
  const PiMatrix& pi() const { return pi_; }
  const BlockMatrix& blocks() const { return blocks_; }
  const std::vector<HistoryPoint>& history() const { return history_; }

  double evaluate_perplexity();

  /// Replace the block-strength state before training. Joint recovery of
  /// disassortative structure from a fully diffuse start faces a
  /// symmetric saddle (all blocks see the same data while pi is
  /// uniform); warm-starting B with a structural hypothesis — even a
  /// rough one — breaks it. Must be called before run().
  void warm_start_blocks(const BlockMatrix& blocks);

  /// Freeze the block matrix for the first `iterations` iterations (only
  /// pi trains). Combined with warm_start_blocks this is the standard
  /// two-phase schedule for disassortative structure: pi locks onto the
  /// hypothesis before B is allowed to move.
  void freeze_blocks_for(std::uint64_t iterations) {
    block_freeze_until_ = iterations;
  }

 private:
  void one_iteration();

  const graph::Graph& graph_;
  const graph::HeldOutSplit* heldout_;
  Hyper hyper_;
  SamplerOptions options_;

  PiMatrix pi_;
  BlockMatrix blocks_;
  graph::MinibatchSampler minibatch_;
  GeneralLikelihoodTerms terms_;
  std::unique_ptr<PerplexityEvaluator> evaluator_;

  std::uint64_t iteration_ = 0;
  std::uint64_t block_freeze_until_ = 0;
  double elapsed_s_ = 0.0;
  std::vector<HistoryPoint> history_;
};

}  // namespace scd::core
