#include "core/grads.h"

#include <algorithm>
#include <cmath>

#include "random/distributions.h"
#include "util/error.h"

namespace scd::core {

void LikelihoodTerms::refresh(std::span<const float> beta, double delta) {
  const std::size_t k = beta.size();
  bt_link.resize(k);
  bt_nonlink.resize(k);
  btd_link.resize(k);
  btd_nonlink.resize(k);
  dt_link = delta;
  dt_nonlink = 1.0 - delta;
  const float dl = static_cast<float>(dt_link);
  const float dn = static_cast<float>(dt_nonlink);
  btd_sum_link = 0.0;
  btd_sum_nonlink = 0.0;
  for (std::size_t i = 0; i < k; ++i) {
    bt_link[i] = beta[i];
    bt_nonlink[i] = 1.0f - beta[i];
    btd_link[i] = bt_link[i] - dl;
    btd_nonlink[i] = bt_nonlink[i] - dn;
    btd_sum_link += btd_link[i];
    btd_sum_nonlink += btd_nonlink[i];
  }
}

namespace {
inline std::size_t k_of(std::span<const float> row) {
  return row.size() - 1;  // last slot is phi_sum
}
}  // namespace

double pair_likelihood(std::span<const float> row_a,
                       std::span<const float> row_b,
                       const LikelihoodTerms& terms, bool y) {
  const std::size_t k = k_of(row_a);
  SCD_ASSERT(k_of(row_b) == k, "row width mismatch");
  const std::span<const float> bt = terms.bt(y);
  const double dt = terms.dt(y);
  double z = 0.0;
  for (std::size_t i = 0; i < k; ++i) {
    const double pa = row_a[i];
    const double pb = row_b[i];
    z += pa * (pb * static_cast<double>(bt[i]) + dt * (1.0 - pb));
  }
  return std::max(z, kMinZ);
}

double accumulate_phi_grad(std::span<const float> row_a,
                           std::span<const float> row_b,
                           const LikelihoodTerms& terms, bool y,
                           std::span<double> grad) {
  const std::size_t k = k_of(row_a);
  SCD_ASSERT(grad.size() == k, "gradient size mismatch");
  const std::span<const float> bt = terms.bt(y);
  const double dt = terms.dt(y);
  const double phi_sum = row_a[k];
  SCD_ASSERT(phi_sum > 0.0, "phi_sum must be positive");

  // First pass: w_k and Z; second pass: the gradient terms.
  double z = 0.0;
  for (std::size_t i = 0; i < k; ++i) {
    const double pb = row_b[i];
    const double w = pb * static_cast<double>(bt[i]) + dt * (1.0 - pb);
    z += static_cast<double>(row_a[i]) * w;
  }
  z = std::max(z, kMinZ);
  const double inv_z = 1.0 / z;
  const double inv_phi_sum = 1.0 / phi_sum;
  for (std::size_t i = 0; i < k; ++i) {
    const double pb = row_b[i];
    const double w = pb * static_cast<double>(bt[i]) + dt * (1.0 - pb);
    grad[i] += (w * inv_z - 1.0) * inv_phi_sum;
  }
  return z;
}

double accumulate_theta_grad(std::span<const float> row_a,
                             std::span<const float> row_b,
                             const LikelihoodTerms& terms,
                             std::span<const double> theta, bool y,
                             std::span<double> grad) {
  const std::size_t k = k_of(row_a);
  SCD_ASSERT(grad.size() == 2 * k && theta.size() == 2 * k,
             "theta gradient size mismatch");
  const std::span<const float> bt = terms.bt(y);
  const double z = pair_likelihood(row_a, row_b, terms, y);
  const double inv_z = 1.0 / z;
  const unsigned iy = y ? 1u : 0u;
  for (std::size_t i = 0; i < k; ++i) {
    const double f =
        static_cast<double>(row_a[i]) * static_cast<double>(row_b[i]) *
        static_cast<double>(bt[i]);
    const double ratio = f * inv_z;  // f_ab(k,k) / Z
    const double t0 = theta[i * 2 + 0];
    const double t1 = theta[i * 2 + 1];
    const double inv_sum = 1.0 / (t0 + t1);
    // |1 - i - y| selects the 1/theta_ki term for i == y only.
    grad[i * 2 + iy] += ratio * (1.0 / theta[i * 2 + iy] - inv_sum);
    grad[i * 2 + (1 - iy)] += ratio * (-inv_sum);
  }
  return z;
}

double accumulate_theta_ratio(std::span<const float> row_a,
                              std::span<const float> row_b,
                              const LikelihoodTerms& terms, bool y,
                              std::span<double> ratio) {
  const std::size_t k = k_of(row_a);
  SCD_ASSERT(ratio.size() == k, "ratio size mismatch");
  const std::span<const float> bt = terms.bt(y);
  const double z = pair_likelihood(row_a, row_b, terms, y);
  const double inv_z = 1.0 / z;
  for (std::size_t i = 0; i < k; ++i) {
    const double f =
        static_cast<double>(row_a[i]) * static_cast<double>(row_b[i]) *
        static_cast<double>(bt[i]);
    ratio[i] += f * inv_z;
  }
  return z;
}

void theta_grad_from_ratios(std::span<const double> ratio_link,
                            std::span<const double> ratio_nonlink,
                            std::span<const double> theta,
                            std::span<double> grad) {
  const std::size_t k = ratio_link.size();
  SCD_ASSERT(ratio_nonlink.size() == k && theta.size() == 2 * k &&
                 grad.size() == 2 * k,
             "theta grad assembly size mismatch");
  for (std::size_t i = 0; i < k; ++i) {
    const double t0 = theta[i * 2 + 0];
    const double t1 = theta[i * 2 + 1];
    const double inv_sum = 1.0 / (t0 + t1);
    // y = 1 pairs feed the 1/theta term of i = 1; y = 0 pairs of i = 0.
    grad[i * 2 + 1] = ratio_link[i] * (1.0 / t1 - inv_sum) +
                      ratio_nonlink[i] * (-inv_sum);
    grad[i * 2 + 0] = ratio_nonlink[i] * (1.0 / t0 - inv_sum) +
                      ratio_link[i] * (-inv_sum);
  }
}

void update_phi_row(std::uint64_t seed, std::uint64_t iteration,
                    std::uint32_t vertex, std::span<float> row,
                    std::span<const double> grad, double scale, double eps,
                    double alpha, double noise_factor, GradientForm form) {
  const std::size_t k = k_of(row);
  SCD_ASSERT(grad.size() == k, "gradient size mismatch");
  rng::Xoshiro256 noise =
      derive_rng(seed, rng_label::kPhiNoise, iteration, vertex);
  const double noise_scale = noise_factor * std::sqrt(eps);
  const double phi_sum = row[k];
  double new_sum = 0.0;
  // phi_ak = pi_ak * phi_sum; the updated phis are staged in-place as we
  // go (the old pi values are consumed left to right).
  for (std::size_t i = 0; i < k; ++i) {
    const double phi = static_cast<double>(row[i]) * phi_sum;
    const double xi = rng::sample_standard_normal(noise) * noise_scale;
    const double g = form == GradientForm::kPreconditioned
                         ? phi * grad[i]
                         : grad[i];
    double updated = phi + 0.5 * eps * (alpha - phi + scale * g) +
                     std::sqrt(phi) * xi;
    updated = std::abs(updated);  // SGRLD reflection at zero
    updated = std::max(updated, kParamFloor);
    row[i] = static_cast<float>(updated);
    new_sum += updated;
  }
  const double inv = 1.0 / new_sum;
  for (std::size_t i = 0; i < k; ++i) {
    row[i] = static_cast<float>(static_cast<double>(row[i]) * inv);
  }
  row[k] = static_cast<float>(new_sum);
}

void update_theta(std::uint64_t seed, std::uint64_t iteration,
                  GlobalState& global, std::span<const double> grad,
                  double eps, double eta0, double eta1,
                  double noise_factor, GradientForm form) {
  const std::uint32_t k = global.num_communities();
  SCD_ASSERT(grad.size() == std::size_t{k} * 2, "gradient size mismatch");
  rng::Xoshiro256 noise = derive_rng(seed, rng_label::kThetaNoise, iteration);
  const double noise_scale = noise_factor * std::sqrt(eps);
  for (std::uint32_t c = 0; c < k; ++c) {
    for (unsigned i = 0; i < 2; ++i) {
      const double theta = global.theta(c, i);
      // Prior: theta_k1 (link pseudo-count) pairs with eta0, theta_k0
      // with eta1, matching GlobalState::init_random.
      const double eta = (i == 1) ? eta0 : eta1;
      const double xi = rng::sample_standard_normal(noise) * noise_scale;
      const double g = form == GradientForm::kPreconditioned
                           ? theta * grad[c * 2 + i]
                           : grad[c * 2 + i];
      double updated = theta + 0.5 * eps * (eta - theta + g) +
                       std::sqrt(theta) * xi;
      updated = std::abs(updated);
      updated = std::max(updated, kParamFloor);
      global.set_theta(c, i, updated);
    }
  }
  global.update_beta_from_theta();
}

}  // namespace scd::core
