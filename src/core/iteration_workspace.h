// Reusable per-sampler buffers for the steady-state iteration path.
//
// Everything one_iteration touches repeatedly — the minibatch and its
// dedup scratch, the staged phi rows, the theta ratio partials and
// gradient, and the per-thread kernel scratch — lives here, sized to
// conservative upper bounds at construction. After construction the
// samplers' one_iteration performs no heap allocation at all (verified
// by tests/core/zero_alloc_test.cpp with a counting allocator), so the
// iteration cost is pure compute + the paper's parallel structure, with
// no allocator noise in timings.
#pragma once

#include <cstdint>
#include <vector>

#include "core/phi_kernel.h"
#include "graph/graph.h"
#include "graph/minibatch.h"

namespace scd::core {

/// Number of fixed accumulation blocks for the parallel theta-ratio
/// reduction. Block boundaries depend only on the pair count — never on
/// the thread count — and blocks are folded serially in index order, so
/// the theta update (and hence the whole trajectory) is bit-identical
/// for any number of threads.
inline constexpr std::size_t kThetaBlocks = 64;

/// Round a double count up to a whole cache line (64 B = 8 doubles) so
/// adjacent per-block partial slices never false-share.
inline constexpr std::size_t padded_doubles(std::size_t n) {
  return (n + 7) / 8 * 8;
}

/// Per-thread scratch: the phi kernel buffers plus a reusable neighbor
/// set and its draw scratch.
struct ThreadSlot {
  PhiScratch phi;
  graph::NeighborSet set;
  graph::NeighborScratch nbr;

  explicit ThreadSlot(std::uint32_t k) : phi(k) {}
};

struct IterationWorkspace {
  graph::Minibatch mb;
  graph::MinibatchScratch mb_scratch;
  /// Staged [pi | phi_sum] rows, mb.vertices.size() x row_width.
  std::vector<float> staged;
  /// Folded theta ratios: [link | nonlink], each k wide.
  std::vector<double> ratios;
  /// Assembled theta gradient, 2k wide.
  std::vector<double> theta_grad;
  /// kThetaBlocks cache-line-padded partial slices of `theta_stride`
  /// doubles each (layout as `ratios`); empty for sequential use.
  std::vector<double> theta_partials;
  std::size_t theta_stride = 0;
  std::vector<ThreadSlot> slots;

  /// `blocked_theta` reserves the fixed-block partial buffer (parallel
  /// samplers); sequential callers accumulate straight into `ratios`.
  IterationWorkspace(const graph::Graph& graph,
                     const graph::MinibatchSampler& minibatch,
                     std::uint32_t k, std::size_t row_width,
                     unsigned num_threads, std::size_t num_neighbors,
                     bool blocked_theta)
      : ratios(std::size_t{k} * 2, 0.0),
        theta_grad(std::size_t{k} * 2, 0.0) {
    const std::size_t max_pairs = minibatch.max_pairs_bound();
    const std::size_t max_vertices = minibatch.max_vertices_bound();
    mb.pairs.reserve(max_pairs);
    mb.vertices.reserve(max_vertices);
    mb_scratch.chosen.reset(max_pairs);
    staged.reserve(max_vertices * row_width);
    if (blocked_theta) {
      theta_stride = padded_doubles(std::size_t{k} * 2);
      theta_partials.assign(kThetaBlocks * theta_stride, 0.0);
    }
    const std::size_t max_neighbors =
        static_cast<std::size_t>(graph.max_degree()) + num_neighbors;
    slots.reserve(num_threads);
    for (unsigned t = 0; t < num_threads; ++t) {
      ThreadSlot& slot = slots.emplace_back(k);
      slot.set.samples.reserve(max_neighbors);
      slot.nbr.raw.reserve(num_neighbors);
      slot.nbr.chosen.reset(num_neighbors);
    }
  }
};

}  // namespace scd::core
