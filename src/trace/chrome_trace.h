// Chrome trace_event exporter: renders a TraceRecorder as the JSON
// format Perfetto / chrome://tracing load directly. One lane per rank
// (tid = rank), timestamps in virtual microseconds, balanced B/E
// duration events in non-decreasing time order per lane — the contract
// tools/check_trace.py verifies.
#pragma once

#include <string>

#include "trace/recorder.h"

namespace scd::trace {

std::string chrome_trace_json(const TraceRecorder& recorder);

/// Write chrome_trace_json(recorder) to `path`; throws Error on I/O
/// failure.
void write_chrome_trace(const TraceRecorder& recorder,
                        const std::string& path);

}  // namespace scd::trace
