// Stage taxonomy for trace spans.
//
// The first entries mirror sim::Phase one-to-one (same order, same
// indices) so instrumentation can book a span to the same stage it
// charges to PhaseStats; sim/trace_span.h static-asserts the alignment.
// The extra entries cover activity that PhaseStats has no bucket for:
// setup, fault recovery, and the attribution buckets the critical-path
// analyzer uses for cross-rank edges (network, collective) and
// uninstrumented time.
#pragma once

#include <cstddef>

namespace scd::trace {

enum class Stage : std::size_t {
  // -- mirrors sim::Phase ------------------------------------------------
  kDrawMinibatch = 0,  // master: sampling E_n and gathering adjacency
  kDeployMinibatch,    // scatter transfer + worker wait for its share
  kSampleNeighbors,    // worker: drawing V_n per minibatch vertex
  kLoadPi,             // worker: DKV reads of pi rows
  kUpdatePhi,          // worker: Eqns 5-6 compute
  kUpdatePi,           // worker: normalisation + DKV writeback
  kUpdateBetaTheta,    // grads, reduce, master update, bcast
  kPerplexity,         // held-out evaluation
  kBarrierWait,        // idle time at barriers beyond own arrival
  // -- trace-only stages -------------------------------------------------
  kSetup,       // initial state broadcast / workspace priming
  kRecovery,    // fault handling: death detection, re-homing, rollback
  kNetwork,     // critical-path bucket: message in flight
  kCollective,  // critical-path bucket: collective gather/skew cost
  kUntracked,   // critical-path bucket: time outside any span
  kCount
};

constexpr std::size_t kNumStages = static_cast<std::size_t>(Stage::kCount);

const char* stage_name(Stage s);

}  // namespace scd::trace
