#include "trace/metrics.h"

#include <algorithm>
#include <cmath>

#include "util/error.h"

namespace scd::trace {

const char* metric_name(Metric m) {
  switch (m) {
    case Metric::kMessagesSent: return "messages_sent";
    case Metric::kBytesSent: return "bytes_sent";
    case Metric::kMessagesReceived: return "messages_received";
    case Metric::kBytesReceived: return "bytes_received";
    case Metric::kCollectives: return "collectives";
    case Metric::kDkvBatches: return "dkv_batches";
    case Metric::kDkvMessages: return "dkv_messages";
    case Metric::kDkvRowsRead: return "dkv_rows_read";
    case Metric::kDkvRowsWritten: return "dkv_rows_written";
    case Metric::kDkvRemoteRows: return "dkv_remote_rows";
    case Metric::kDkvHits: return "dkv_hits";
    case Metric::kDkvMisses: return "dkv_misses";
    case Metric::kRedoneIterations: return "redone_iterations";
    case Metric::kRecoveries: return "recoveries";
    case Metric::kDkvEvictions: return "dkv_evictions";
    case Metric::kCount: break;
  }
  return "?";
}

MetricsRegistry::MetricsRegistry(unsigned num_ranks)
    : num_ranks_(num_ranks) {
  SCD_REQUIRE(num_ranks >= 1, "metrics registry needs at least one rank");
  for (std::size_t m = 0; m < kNumMetrics; ++m) {
    add_counter(metric_name(static_cast<Metric>(m)));
  }
}

MetricsRegistry::CounterId MetricsRegistry::add_counter(std::string name) {
  const CounterId id = counter_names_.size();
  counter_names_.push_back(std::move(name));
  counter_cells_.resize(counter_names_.size() * num_ranks_, 0);
  return id;
}

MetricsRegistry::GaugeId MetricsRegistry::add_gauge(std::string name) {
  const GaugeId id = gauge_names_.size();
  gauge_names_.push_back(std::move(name));
  gauge_cells_.resize(gauge_names_.size() * num_ranks_, 0.0);
  return id;
}

MetricsRegistry::HistogramId MetricsRegistry::add_histogram(
    std::string name) {
  const HistogramId id = histogram_names_.size();
  histogram_names_.push_back(std::move(name));
  histogram_cells_.resize(
      histogram_names_.size() * num_ranks_ * kHistogramBuckets, 0);
  return id;
}

void MetricsRegistry::observe(HistogramId id, unsigned rank, double value) {
  std::size_t bucket = 0;
  if (value >= 1.0) {
    bucket = static_cast<std::size_t>(std::floor(std::log2(value))) + 1;
    bucket = std::min(bucket, kHistogramBuckets - 1);
  }
  histogram_cells_[(id * num_ranks_ + rank) * kHistogramBuckets + bucket]++;
}

std::uint64_t MetricsRegistry::counter_total(CounterId id) const {
  std::uint64_t total = 0;
  for (unsigned r = 0; r < num_ranks_; ++r) total += counter(id, r);
  return total;
}

std::uint64_t MetricsRegistry::histogram_bucket(HistogramId id,
                                                std::size_t bucket) const {
  std::uint64_t total = 0;
  for (unsigned r = 0; r < num_ranks_; ++r) {
    total +=
        histogram_cells_[(id * num_ranks_ + r) * kHistogramBuckets + bucket];
  }
  return total;
}

std::uint64_t MetricsRegistry::histogram_count(HistogramId id) const {
  std::uint64_t total = 0;
  for (std::size_t b = 0; b < kHistogramBuckets; ++b) {
    total += histogram_bucket(id, b);
  }
  return total;
}

void MetricsRegistry::clear() {
  std::fill(counter_cells_.begin(), counter_cells_.end(), 0);
  std::fill(gauge_cells_.begin(), gauge_cells_.end(), 0.0);
  std::fill(histogram_cells_.begin(), histogram_cells_.end(), 0);
}

Table MetricsRegistry::table() const {
  Table out({"metric", "total", "min_rank", "max_rank"});
  for (CounterId id = 0; id < counter_names_.size(); ++id) {
    std::uint64_t total = 0;
    std::uint64_t lo = counter(id, 0);
    std::uint64_t hi = lo;
    for (unsigned r = 0; r < num_ranks_; ++r) {
      const std::uint64_t v = counter(id, r);
      total += v;
      lo = std::min(lo, v);
      hi = std::max(hi, v);
    }
    if (total == 0) continue;
    out.add_row({counter_names_[id], static_cast<std::int64_t>(total),
                 static_cast<std::int64_t>(lo),
                 static_cast<std::int64_t>(hi)});
  }
  return out;
}

std::string MetricsRegistry::to_json() const { return table().to_json(); }

}  // namespace scd::trace
