#include "trace/recorder.h"

#include <algorithm>
#include <array>

#include "util/error.h"

namespace scd::trace {

const char* stage_name(Stage s) {
  switch (s) {
    case Stage::kDrawMinibatch: return "draw_minibatch";
    case Stage::kDeployMinibatch: return "deploy_minibatch";
    case Stage::kSampleNeighbors: return "sample_neighbors";
    case Stage::kLoadPi: return "load_pi";
    case Stage::kUpdatePhi: return "update_phi";
    case Stage::kUpdatePi: return "update_pi";
    case Stage::kUpdateBetaTheta: return "update_beta_theta";
    case Stage::kPerplexity: return "perplexity";
    case Stage::kBarrierWait: return "barrier_wait";
    case Stage::kSetup: return "setup";
    case Stage::kRecovery: return "recovery";
    case Stage::kNetwork: return "network";
    case Stage::kCollective: return "collective";
    case Stage::kUntracked: return "untracked";
    case Stage::kCount: break;
  }
  return "?";
}

TraceRecorder::TraceRecorder(unsigned num_ranks)
    : num_ranks_(num_ranks), lanes_(num_ranks), metrics_(num_ranks),
      message_bytes_hist_(metrics_.add_histogram("message_bytes")) {
  SCD_REQUIRE(num_ranks >= 1, "trace recorder needs at least one lane");
  lane_names_.resize(num_ranks);
  for (unsigned r = 0; r < num_ranks; ++r) {
    lane_names_[r] = "rank " + std::to_string(r);
  }
}

void TraceRecorder::reserve(std::size_t spans_per_lane,
                            std::size_t events_per_lane) {
  for (Lane& lane : lanes_) {
    lane.spans.reserve(spans_per_lane);
    lane.recvs.reserve(events_per_lane);
    lane.collectives.reserve(events_per_lane);
  }
}

void TraceRecorder::clear() {
  for (Lane& lane : lanes_) {
    lane.spans.clear();
    lane.recvs.clear();
    lane.collectives.clear();
  }
  metrics_.clear();
}

void TraceRecorder::set_lane_name(unsigned lane, std::string name) {
  lane_names_[lane] = std::move(name);
}

std::size_t TraceRecorder::total_spans() const {
  std::size_t total = 0;
  for (const Lane& lane : lanes_) total += lane.spans.size();
  return total;
}

double TraceRecorder::max_time() const {
  double best = 0.0;
  for (const Lane& lane : lanes_) {
    for (const SpanEvent& s : lane.spans) best = std::max(best, s.end_s);
  }
  return best;
}

Table TraceRecorder::summary_table() const {
  struct StageRoll {
    std::uint64_t count = 0;
    double seconds = 0.0;
    double max_lane_s = 0.0;
    unsigned max_lane = 0;
  };
  std::array<StageRoll, kNumStages> rolls{};
  std::array<double, kNumStages> lane_s{};
  for (unsigned lane = 0; lane < num_ranks_; ++lane) {
    lane_s.fill(0.0);
    for (const SpanEvent& s : lanes_[lane].spans) {
      const std::size_t idx = static_cast<std::size_t>(s.stage);
      rolls[idx].count++;
      rolls[idx].seconds += s.end_s - s.begin_s;
      lane_s[idx] += s.end_s - s.begin_s;
    }
    for (std::size_t idx = 0; idx < kNumStages; ++idx) {
      if (lane_s[idx] > rolls[idx].max_lane_s) {
        rolls[idx].max_lane_s = lane_s[idx];
        rolls[idx].max_lane = lane;
      }
    }
  }
  Table out({"stage", "spans", "total_s", "max_rank_s", "max_rank"});
  for (std::size_t idx = 0; idx < kNumStages; ++idx) {
    if (rolls[idx].count == 0) continue;
    out.add_row({std::string(stage_name(static_cast<Stage>(idx))),
                 static_cast<std::int64_t>(rolls[idx].count),
                 rolls[idx].seconds, rolls[idx].max_lane_s,
                 static_cast<std::int64_t>(rolls[idx].max_lane)});
  }
  return out;
}

}  // namespace scd::trace
