#include "trace/chrome_trace.h"

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <fstream>
#include <vector>

#include "util/error.h"

namespace scd::trace {
namespace {

void append_escaped(std::string& out, const std::string& text) {
  for (char c : text) {
    if (c == '"' || c == '\\') {
      out.push_back('\\');
      out.push_back(c);
    } else if (static_cast<unsigned char>(c) >= 0x20) {
      out.push_back(c);
    }
  }
}

void append_event(std::string& out, const char* name, char ph,
                  unsigned tid, double ts_us, std::uint64_t iteration,
                  bool& first) {
  char buf[192];
  if (!first) out.push_back(',');
  first = false;
  if (ph == 'B') {
    std::snprintf(buf, sizeof(buf),
                  "\n{\"name\":\"%s\",\"cat\":\"stage\",\"ph\":\"B\","
                  "\"pid\":0,\"tid\":%u,\"ts\":%.6f,"
                  "\"args\":{\"iteration\":%" PRIu64 "}}",
                  name, tid, ts_us, iteration);
  } else {
    std::snprintf(buf, sizeof(buf),
                  "\n{\"name\":\"%s\",\"ph\":\"E\",\"pid\":0,"
                  "\"tid\":%u,\"ts\":%.6f}",
                  name, tid, ts_us);
  }
  out.append(buf);
}

}  // namespace

std::string chrome_trace_json(const TraceRecorder& recorder) {
  std::string out = "{\"traceEvents\":[";
  bool first = true;
  {
    char buf[96];
    std::snprintf(buf, sizeof(buf),
                  "\n{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":0,"
                  "\"args\":{\"name\":\"scd virtual cluster\"}}");
    out.append(buf);
    first = false;
  }
  for (unsigned lane = 0; lane < recorder.num_lanes(); ++lane) {
    out.push_back(',');
    std::string name_json;
    append_escaped(name_json, recorder.lane_name(lane));
    char buf[128];
    std::snprintf(buf, sizeof(buf),
                  "\n{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":0,"
                  "\"tid\":%u,\"args\":{\"name\":\"",
                  lane);
    out.append(buf);
    out.append(name_json);
    out.append("\"}}");
  }
  std::vector<SpanEvent> sorted;
  std::vector<SpanEvent> open;
  for (unsigned lane = 0; lane < recorder.num_lanes(); ++lane) {
    // Spans are appended at close time, so nested scopes land inner
    // before outer. Re-sort by (begin asc, end desc) and replay through
    // a stack: scopes strictly nest within a lane, so popping every open
    // span that ends at or before the next span's begin yields balanced
    // B/E events in non-decreasing timestamp order.
    sorted.assign(recorder.spans(lane).begin(), recorder.spans(lane).end());
    std::stable_sort(sorted.begin(), sorted.end(),
                     [](const SpanEvent& a, const SpanEvent& b) {
                       if (a.begin_s != b.begin_s) {
                         return a.begin_s < b.begin_s;
                       }
                       return a.end_s > b.end_s;
                     });
    open.clear();
    for (const SpanEvent& span : sorted) {
      while (!open.empty() && open.back().end_s <= span.begin_s) {
        append_event(out, stage_name(open.back().stage), 'E', lane,
                     open.back().end_s * 1e6, 0, first);
        open.pop_back();
      }
      append_event(out, stage_name(span.stage), 'B', lane,
                   span.begin_s * 1e6, span.iteration, first);
      open.push_back(span);
    }
    while (!open.empty()) {
      append_event(out, stage_name(open.back().stage), 'E', lane,
                   open.back().end_s * 1e6, 0, first);
      open.pop_back();
    }
  }
  out.append("\n],\"displayTimeUnit\":\"ms\"}\n");
  return out;
}

void write_chrome_trace(const TraceRecorder& recorder,
                        const std::string& path) {
  std::ofstream out(path, std::ios::binary);
  if (!out) throw Error("cannot open trace output file: " + path);
  const std::string json = chrome_trace_json(recorder);
  out.write(json.data(), static_cast<std::streamsize>(json.size()));
  if (!out) throw Error("failed writing trace output file: " + path);
}

}  // namespace scd::trace
