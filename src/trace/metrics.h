// Typed metrics registry: per-rank counters, gauges, and log2-bucket
// histograms with a fixed set of built-in instrument ids covering the
// quantities the paper's evaluation cares about (bytes moved, messages,
// DKV hits/misses, redone iterations).
//
// Counters and gauges are stored per rank with no sharing, so each rank
// thread updates its own slots without synchronization; totals are read
// after the run. Registration (add_counter/...) is not thread-safe and
// must happen before rank threads start — the built-ins are registered
// by the constructor, so a registry embedded in a TraceRecorder is ready
// to use as soon as the recorder exists. All update paths are
// allocation-free; only registration allocates.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "util/table.h"

namespace scd::trace {

/// Built-in counters, registered (in this order) by every registry.
enum class Metric : std::size_t {
  kMessagesSent = 0,  // point-to-point sends posted
  kBytesSent,         // logical payload bytes of those sends
  kMessagesReceived,  // point-to-point receives completed
  kBytesReceived,     // payload bytes of those receives
  kCollectives,       // barrier/reduce/broadcast operations joined
  kDkvBatches,        // get_rows/put_rows batch operations
  kDkvMessages,       // coalesced shard requests those batches cost
  kDkvRowsRead,       // pi rows fetched (local + remote)
  kDkvRowsWritten,    // pi rows written back
  kDkvRemoteRows,     // rows that crossed the network either way
  kDkvHits,           // CachedDkv rows served from the local cache
  kDkvMisses,         // CachedDkv rows forwarded to the backing store
  kRedoneIterations,  // iterations re-run after fault recovery
  kRecoveries,        // rank-death recovery events handled
  kDkvEvictions,      // cached rows displaced by LRU capacity pressure
  kCount
};

constexpr std::size_t kNumMetrics = static_cast<std::size_t>(Metric::kCount);

const char* metric_name(Metric m);

class MetricsRegistry {
 public:
  using CounterId = std::size_t;
  using GaugeId = std::size_t;
  using HistogramId = std::size_t;

  /// Log2-bucketed value distribution: bucket i counts observations in
  /// [2^(i-1), 2^i), bucket 0 counts values < 1.
  static constexpr std::size_t kHistogramBuckets = 48;

  explicit MetricsRegistry(unsigned num_ranks);

  unsigned num_ranks() const { return num_ranks_; }

  /// Register a custom instrument; returns its id. Ids are stable and
  /// dense; built-in counters occupy ids [0, kNumMetrics).
  CounterId add_counter(std::string name);
  GaugeId add_gauge(std::string name);
  HistogramId add_histogram(std::string name);

  // -- update (callable concurrently from distinct ranks) ----------------
  void count(CounterId id, unsigned rank, std::uint64_t delta = 1) {
    counter_cells_[id * num_ranks_ + rank] += delta;
  }
  void count(Metric m, unsigned rank, std::uint64_t delta = 1) {
    count(static_cast<CounterId>(m), rank, delta);
  }
  void set_gauge(GaugeId id, unsigned rank, double value) {
    gauge_cells_[id * num_ranks_ + rank] = value;
  }
  void observe(HistogramId id, unsigned rank, double value);

  // -- read --------------------------------------------------------------
  std::uint64_t counter(CounterId id, unsigned rank) const {
    return counter_cells_[id * num_ranks_ + rank];
  }
  std::uint64_t counter(Metric m, unsigned rank) const {
    return counter(static_cast<CounterId>(m), rank);
  }
  std::uint64_t counter_total(CounterId id) const;
  std::uint64_t counter_total(Metric m) const {
    return counter_total(static_cast<CounterId>(m));
  }
  double gauge(GaugeId id, unsigned rank) const {
    return gauge_cells_[id * num_ranks_ + rank];
  }
  std::uint64_t histogram_bucket(HistogramId id, std::size_t bucket) const;
  std::uint64_t histogram_count(HistogramId id) const;

  std::size_t num_counters() const { return counter_names_.size(); }
  const std::string& counter_name(CounterId id) const {
    return counter_names_[id];
  }

  /// Reset every cell to zero; instruments stay registered.
  void clear();

  /// Counters with non-zero totals: one row per counter with min, max,
  /// and total across ranks.
  Table table() const;

  /// table() serialized as a JSON array of row objects
  /// ({"metric", "total", "min_rank", "max_rank"}) using util/table.h's
  /// %.17g number idiom — what probes, `scd trace --metrics-out`, and
  /// the tuning log embed instead of stdout-only tables.
  std::string to_json() const;

 private:
  unsigned num_ranks_;
  std::vector<std::string> counter_names_;
  std::vector<std::string> gauge_names_;
  std::vector<std::string> histogram_names_;
  std::vector<std::uint64_t> counter_cells_;    // [counter][rank]
  std::vector<double> gauge_cells_;             // [gauge][rank]
  std::vector<std::uint64_t> histogram_cells_;  // [hist][rank][bucket]
};

}  // namespace scd::trace
