#include "trace/critical_path.h"

#include <algorithm>
#include <cmath>

namespace scd::trace {
namespace {

/// A clock-advancing event on a lane: the lane's clock jumped to
/// `effect_s` because of data that left `from_lane` at `from_s`.
struct Gate {
  double effect_s = 0.0;
  double from_s = 0.0;
  unsigned from_lane = 0;
  Stage bucket = Stage::kNetwork;
};

struct LaneView {
  std::vector<SpanEvent> spans;  // sorted by (begin asc, end desc)
  std::vector<Gate> gates;       // sorted by effect_s
  /// prefix_max_end[i] = max end_s over spans[0..i]. A span whose end
  /// is below its prefix max is wholly covered by an earlier span
  /// (zero-length markers, nested inners that close early); the walk
  /// must skip it or it would book covered time as untracked.
  std::vector<double> prefix_max_end;
};

}  // namespace

Table CriticalPathReport::table() const {
  Table out({"stage", "on_path_s", "share_pct", "max_rank_s", "slack_s"});
  for (std::size_t idx = 0; idx < kNumStages; ++idx) {
    if (on_path_s[idx] <= 0.0 && max_lane_s[idx] <= 0.0) continue;
    const double share =
        total_s > 0.0 ? 100.0 * on_path_s[idx] / total_s : 0.0;
    out.add_row({std::string(stage_name(static_cast<Stage>(idx))),
                 on_path_s[idx], share, max_lane_s[idx],
                 max_lane_s[idx] - on_path_s[idx]});
  }
  return out;
}

CriticalPathReport analyze_critical_path(const TraceRecorder& recorder) {
  CriticalPathReport report;
  const unsigned lanes = recorder.num_lanes();
  std::vector<LaneView> views(lanes);
  double horizon = 0.0;
  unsigned start_lane = 0;
  for (unsigned lane = 0; lane < lanes; ++lane) {
    LaneView& view = views[lane];
    view.spans.assign(recorder.spans(lane).begin(),
                      recorder.spans(lane).end());
    std::stable_sort(view.spans.begin(), view.spans.end(),
                     [](const SpanEvent& a, const SpanEvent& b) {
                       if (a.begin_s != b.begin_s) {
                         return a.begin_s < b.begin_s;
                       }
                       return a.end_s > b.end_s;
                     });
    std::array<double, kNumStages> lane_totals{};
    view.prefix_max_end.resize(view.spans.size());
    double running_max_end = 0.0;
    for (std::size_t i = 0; i < view.spans.size(); ++i) {
      const SpanEvent& s = view.spans[i];
      lane_totals[static_cast<std::size_t>(s.stage)] += s.end_s - s.begin_s;
      running_max_end = std::max(running_max_end, s.end_s);
      view.prefix_max_end[i] = running_max_end;
      if (s.end_s > horizon) {
        horizon = s.end_s;
        start_lane = lane;
      }
    }
    for (std::size_t idx = 0; idx < kNumStages; ++idx) {
      report.max_lane_s[idx] =
          std::max(report.max_lane_s[idx], lane_totals[idx]);
    }
    for (const RecvEvent& r : recorder.recvs(lane)) {
      if (r.arrival_s <= r.wait_from_s) continue;  // message was waiting
      view.gates.push_back(
          Gate{r.arrival_s, r.sent_s, r.from, Stage::kNetwork});
    }
    for (const CollectiveEvent& c : recorder.collectives(lane)) {
      if (c.finish_s <= c.entry_s) continue;
      view.gates.push_back(Gate{c.finish_s, c.max_entry_s, c.gating_rank,
                                Stage::kCollective});
    }
    std::stable_sort(view.gates.begin(), view.gates.end(),
                     [](const Gate& a, const Gate& b) {
                       return a.effect_s < b.effect_s;
                     });
  }
  report.total_s = horizon;
  if (horizon <= 0.0) return report;

  const double eps = 1e-9 * std::max(1.0, horizon);
  auto untracked = [&](unsigned lane, double lo, double hi) {
    if (hi - lo <= eps) return;
    report.on_path_s[static_cast<std::size_t>(Stage::kUntracked)] += hi - lo;
    report.steps.push_back(
        CriticalPathStep{lane, Stage::kUntracked, lo, hi});
  };
  auto on_path = [&](unsigned lane, Stage stage, double lo, double hi) {
    if (hi <= lo) return;
    report.on_path_s[static_cast<std::size_t>(stage)] += hi - lo;
    report.steps.push_back(CriticalPathStep{lane, stage, lo, hi});
  };

  unsigned lane = start_lane;
  double cursor = horizon;
  // Index of the current span in views[lane].spans, or npos when the
  // walk just switched lanes and must locate the covering span first.
  std::ptrdiff_t idx = -1;
  bool locate = true;
  // Every step either strictly reduces `cursor` (lane switches, gap
  // hops) or reduces `idx` on a fixed lane, so the walk terminates; the
  // cap guards against degenerate recorded data (e.g. spans out of
  // order) turning that invariant false.
  std::size_t budget = 4 * recorder.total_spans() + 64;
  while (budget-- > 0) {
    const std::vector<SpanEvent>& spans = views[lane].spans;
    if (locate) {
      // Last span with begin <= cursor (innermost under nesting).
      const auto it = std::upper_bound(
          spans.begin(), spans.end(), cursor + eps,
          [](double t, const SpanEvent& s) { return t < s.begin_s; });
      idx = (it - spans.begin()) - 1;
      locate = false;
    }
    // Skip spans wholly covered by an earlier, longer span — their end
    // sits below the prefix maximum. Zero-length markers and nested
    // inners that close early carry no walkable time, and treating
    // their end as the gap boundary would book covered time as
    // untracked.
    {
      const std::vector<double>& pmax = views[lane].prefix_max_end;
      while (idx >= 0 && spans[static_cast<std::size_t>(idx)].end_s <
                             pmax[static_cast<std::size_t>(idx)]) {
        --idx;
      }
    }
    if (idx < 0) {
      untracked(lane, 0.0, cursor);
      break;
    }
    const SpanEvent& span = spans[static_cast<std::size_t>(idx)];
    if (span.end_s < cursor - eps) {
      // Gap between the covering span and the cursor.
      untracked(lane, span.end_s, cursor);
      cursor = span.end_s;
      continue;
    }
    // Latest gate inside (span.begin, cursor].
    const std::vector<Gate>& gates = views[lane].gates;
    const auto git = std::upper_bound(
        gates.begin(), gates.end(), cursor + eps,
        [](double t, const Gate& g) { return t < g.effect_s; });
    const Gate* gate = nullptr;
    if (git != gates.begin()) {
      const Gate& candidate = *(git - 1);
      if (candidate.effect_s > span.begin_s + eps) gate = &candidate;
    }
    if (gate != nullptr) {
      on_path(lane, span.stage, gate->effect_s, cursor);
      on_path(lane, gate->bucket, gate->from_s, gate->effect_s);
      lane = gate->from_lane;
      cursor = gate->from_s;
      locate = true;
      continue;
    }
    on_path(lane, span.stage, span.begin_s, cursor);
    cursor = span.begin_s;
    // The next iteration normalizes idx past covered spans and books
    // any gap down to the previous span's end via the gap branch.
    --idx;
  }
  return report;
}

}  // namespace scd::trace
