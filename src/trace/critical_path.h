// Critical-path analysis over a recorded trace.
//
// The span DAG: within a lane, consecutive spans are ordered by virtual
// time; across lanes, a RecvEvent whose arrival advanced the receiver's
// clock is an edge from the sender's span at post time, and a
// CollectiveEvent is an edge from the gating (last-in) rank's entry.
// analyze() walks that DAG backwards from the latest span end,
// attributing each on-path interval to its span's stage — or to the
// kNetwork / kCollective buckets while the chain rides a message or a
// collective's gather cost, or kUntracked where no span covers the
// chain. When instrumentation wraps every clock-advancing operation
// (the DistributedSampler does), the buckets tile [0, total_s] exactly
// and total_s equals the run's total virtual time.
//
// Assumes flat lanes: spans on one lane do not overlap. Nested spans do
// not break the walk but their shared interval is attributed to the
// innermost span only.
#pragma once

#include <array>
#include <vector>

#include "trace/recorder.h"

namespace scd::trace {

/// One on-path segment, latest first: the chain occupied lane `lane`
/// from `begin_s` to `end_s` doing `stage` work.
struct CriticalPathStep {
  unsigned lane = 0;
  Stage stage{};
  double begin_s = 0.0;
  double end_s = 0.0;
};

struct CriticalPathReport {
  /// Length of the longest chain == latest span end over all lanes.
  double total_s = 0.0;
  /// Seconds each stage contributes to the chain; sums to total_s.
  std::array<double, kNumStages> on_path_s{};
  /// Per-stage max-over-lanes total span seconds (the stage's heaviest
  /// rank), for slack: max_lane_s - on_path_s is how much of that
  /// rank's stage time the chain does NOT pass through.
  std::array<double, kNumStages> max_lane_s{};
  /// The chain itself, walked backwards (latest segment first).
  std::vector<CriticalPathStep> steps;

  double on_path(Stage s) const {
    return on_path_s[static_cast<std::size_t>(s)];
  }
  double slack(Stage s) const {
    return max_lane_s[static_cast<std::size_t>(s)] - on_path(s);
  }

  /// One row per stage on the path: on-path seconds, share of total,
  /// heaviest rank's seconds, and slack.
  Table table() const;
};

CriticalPathReport analyze_critical_path(const TraceRecorder& recorder);

}  // namespace scd::trace
