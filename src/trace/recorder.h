// Per-rank virtual-time span tracer.
//
// A TraceRecorder holds one lane per simulated rank. Rank code opens
// RAII ScopedSpan scopes keyed by Stage; the span records [t0, t1] in
// virtual seconds when it closes. Alongside spans, lanes collect the
// events the critical-path analyzer needs to stitch a cross-rank DAG:
// message receives (with the sender's post time) and collective
// completions (with the gating rank and its entry time).
//
// Threading contract: lane `r` is written only by rank `r`'s thread —
// the recorder itself takes no locks. Transport instrumentation honors
// this by booking sends to the sender's lane and receives to the
// receiver's lane, each from that rank's own thread (the transport lock
// orders the underlying container accesses for the analyzer's later
// single-threaded read).
//
// Disabled path: every instrumentation site holds a TraceRecorder* that
// is null by default; a ScopedSpan over a null recorder reads no clock
// and writes nothing, so untraced runs execute the identical sequence of
// clock operations — bit-identical virtual times — at the cost of one
// predictable branch per site. Enabled path: reserve() pre-sizes every
// lane so steady-state recording is allocation-free.
//
// The recorder never advances any clock; it only samples them. Tracing
// therefore cannot change modeled time, enabled or not.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "trace/metrics.h"
#include "trace/stage.h"

namespace scd::trace {

/// One closed span on a lane: rank code spent [begin_s, end_s] in
/// `stage`. `iteration` carries the sampler's iteration index (or 0)
/// for exporter labels.
struct SpanEvent {
  Stage stage{};
  double begin_s = 0.0;
  double end_s = 0.0;
  std::uint64_t iteration = 0;
};

/// A completed point-to-point receive on this lane. `sent_s` is the
/// sender's clock when the message was posted; the interval
/// [sent_s, arrival_s] is the message's time in flight (wire + latency
/// + NIC queueing). `wait_from_s` is the receiver's clock before the
/// receive — the receive gated progress only if arrival_s > wait_from_s.
struct RecvEvent {
  unsigned from = 0;
  double sent_s = 0.0;
  double arrival_s = 0.0;
  double wait_from_s = 0.0;
  std::uint64_t bytes = 0;
};

/// A collective this lane departed from. All participants finished at
/// `finish_s`; the last rank in was `gating_rank`, entering at
/// `max_entry_s`. `entry_s` is this lane's own entry time.
struct CollectiveEvent {
  double finish_s = 0.0;
  double entry_s = 0.0;
  double max_entry_s = 0.0;
  unsigned gating_rank = 0;
  std::uint64_t bytes = 0;
};

class TraceRecorder {
 public:
  explicit TraceRecorder(unsigned num_ranks);

  unsigned num_lanes() const { return num_ranks_; }
  MetricsRegistry& metrics() { return metrics_; }
  const MetricsRegistry& metrics() const { return metrics_; }

  /// Built-in histogram of point-to-point message payload sizes.
  MetricsRegistry::HistogramId message_bytes_histogram() const {
    return message_bytes_hist_;
  }

  /// Pre-size every lane so recording allocates nothing until a lane
  /// outgrows the reservation.
  void reserve(std::size_t spans_per_lane, std::size_t events_per_lane);

  /// Drop all recorded data (lane names and reservations survive).
  void clear();

  void set_lane_name(unsigned lane, std::string name);
  const std::string& lane_name(unsigned lane) const {
    return lane_names_[lane];
  }

  void record_span(unsigned lane, Stage stage, double begin_s, double end_s,
                   std::uint64_t iteration = 0) {
    lanes_[lane].spans.push_back(SpanEvent{stage, begin_s, end_s, iteration});
  }
  void record_recv(unsigned lane, unsigned from, double sent_s,
                   double arrival_s, double wait_from_s,
                   std::uint64_t bytes) {
    lanes_[lane].recvs.push_back(
        RecvEvent{from, sent_s, arrival_s, wait_from_s, bytes});
  }
  void record_collective(unsigned lane, double finish_s, double entry_s,
                         double max_entry_s, unsigned gating_rank,
                         std::uint64_t bytes) {
    lanes_[lane].collectives.push_back(
        CollectiveEvent{finish_s, entry_s, max_entry_s, gating_rank, bytes});
  }

  const std::vector<SpanEvent>& spans(unsigned lane) const {
    return lanes_[lane].spans;
  }
  const std::vector<RecvEvent>& recvs(unsigned lane) const {
    return lanes_[lane].recvs;
  }
  const std::vector<CollectiveEvent>& collectives(unsigned lane) const {
    return lanes_[lane].collectives;
  }

  std::size_t total_spans() const;
  /// Latest span end across all lanes — the traced run's horizon.
  double max_time() const;

  /// Per-stage/per-lane rollup: for each stage with any spans, the span
  /// count, summed seconds, and the lane holding the largest per-lane
  /// total (the stage's critical rank).
  Table summary_table() const;

 private:
  struct Lane {
    std::vector<SpanEvent> spans;
    std::vector<RecvEvent> recvs;
    std::vector<CollectiveEvent> collectives;
  };

  unsigned num_ranks_;
  std::vector<Lane> lanes_;
  std::vector<std::string> lane_names_;
  MetricsRegistry metrics_;
  MetricsRegistry::HistogramId message_bytes_hist_;
};

/// RAII span scope. ClockT needs `double now() const` — sim::SimClock
/// fits; the template keeps trace/ independent of sim/. Null recorder:
/// both constructor and destructor reduce to a branch.
template <typename ClockT>
class ScopedSpan {
 public:
  ScopedSpan(TraceRecorder* recorder, unsigned lane, Stage stage,
             const ClockT& clock, std::uint64_t iteration = 0)
      : recorder_(recorder), clock_(&clock), lane_(lane), stage_(stage),
        iteration_(iteration),
        begin_s_(recorder != nullptr ? clock.now() : 0.0) {}

  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

  ~ScopedSpan() {
    if (recorder_ != nullptr) {
      recorder_->record_span(lane_, stage_, begin_s_, clock_->now(),
                             iteration_);
    }
  }

 private:
  TraceRecorder* recorder_;
  const ClockT* clock_;
  unsigned lane_;
  Stage stage_;
  std::uint64_t iteration_;
  double begin_s_;
};

}  // namespace scd::trace
