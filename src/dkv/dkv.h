// Distributed key-value store interface for the pi matrix.
//
// This mirrors the deliberately minimal contract of the paper's custom
// RDMA store (Section III-B):
//   * static layout — rows are created once by init_row, never
//     inserted/deleted afterwards;
//   * fixed-size values — every row is exactly `row_width` floats
//     (pi[0..K-1] followed by sum(phi));
//   * stage-separated access — a stage either reads or writes, with
//     barriers between, and writes within a stage target unique rows, so
//     the store needs no concurrency control;
//   * every get/put of a row is one one-sided RDMA read/write.
//
// get_rows/put_rows return the *modeled* time of the batch on the modeled
// fabric; the caller charges its virtual clock. Data movement itself is
// real (unless the store is a phantom cost-only instance).
#pragma once

#include <cstdint>
#include <span>

namespace scd::dkv {

class DkvStore {
 public:
  virtual ~DkvStore() = default;

  virtual std::uint64_t num_rows() const = 0;
  /// Floats per value; K+1 in the sampler (pi row plus phi row-sum).
  virtual std::uint32_t row_width() const = 0;

  /// Populate a row before the first read. Not timed (setup phase).
  virtual void init_row(std::uint64_t key, std::span<const float> value) = 0;

  /// Batched read: row `keys[i]` lands at out[i*row_width .. ). Returns
  /// modeled seconds for the batch issued by `requester_shard`.
  virtual double get_rows(unsigned requester_shard,
                          std::span<const std::uint64_t> keys,
                          std::span<float> out) = 0;

  /// Batched write, symmetric to get_rows.
  virtual double put_rows(unsigned requester_shard,
                          std::span<const std::uint64_t> keys,
                          std::span<const float> values) = 0;

  /// Pure cost queries — used by the cost-only execution mode, and by the
  /// real mode internally, so both modes charge identical times for
  /// identical row counts.
  virtual double read_cost(unsigned requester_shard, std::uint64_t local_rows,
                           std::uint64_t remote_rows) const = 0;
  virtual double write_cost(unsigned requester_shard,
                            std::uint64_t local_rows,
                            std::uint64_t remote_rows) const = 0;

  /// Keyed cost queries: the exact modeled seconds get_rows/put_rows would
  /// return for this key multiset, without moving data. Backends whose
  /// cost depends on *which* shards the keys hit (request coalescing)
  /// override these; phantom stores answer them identically to real ones,
  /// which is what keeps cost-only and real runs in lockstep. The default
  /// treats every key as local, which is correct for purely local stores.
  virtual double read_cost_keys(unsigned requester_shard,
                                std::span<const std::uint64_t> keys) const {
    return read_cost(requester_shard, keys.size(), 0);
  }
  virtual double write_cost_keys(unsigned requester_shard,
                                 std::span<const std::uint64_t> keys) const {
    return write_cost(requester_shard, keys.size(), 0);
  }
};

}  // namespace scd::dkv
