// Distributed key-value store interface for the pi matrix.
//
// This mirrors the deliberately minimal contract of the paper's custom
// RDMA store (Section III-B):
//   * static layout — rows are created once by init_row, never
//     inserted/deleted afterwards;
//   * fixed-size values — every row decodes to exactly `row_width`
//     floats (pi[0..K-1] followed by sum(phi)), but is *stored and
//     shipped* encoded with the store's RowCodec: value_bytes() bytes
//     per row (quant/row_codec.h documents the per-codec layouts; the
//     default kFloat32 codec is a raw, bit-exact float row);
//   * stage-separated access — a stage either reads or writes, with
//     barriers between, and writes within a stage target unique rows, so
//     the store needs no concurrency control;
//   * every get/put of a row is one one-sided RDMA read/write of
//     value_bytes() bytes — the modeled network and memory costs charge
//     the encoded size, which is the whole point of the lossy codecs.
//
// get_rows/put_rows speak decoded floats at the interface and transcode
// at the boundary; get_rows_encoded/put_rows_encoded move the stored
// bytes verbatim for callers (the distributed sampler) that dequantize
// inside the consuming kernels instead of materializing float rows.
//
// get_rows/put_rows return the *modeled* time of the batch on the modeled
// fabric; the caller charges its virtual clock. Data movement itself is
// real (unless the store is a phantom cost-only instance).
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>

#include "quant/row_codec.h"

namespace scd::dkv {

class DkvStore {
 public:
  virtual ~DkvStore() = default;

  virtual std::uint64_t num_rows() const = 0;
  /// Floats per decoded value; K+1 in the sampler (pi row plus phi
  /// row-sum).
  virtual std::uint32_t row_width() const = 0;

  /// Codec the store keeps rows in (and charges bytes for).
  virtual quant::RowCodec codec() const = 0;
  /// Encoded bytes per stored row slot: quant::encoded_bytes(codec(),
  /// row_width()). For the dense codecs every byte-proportional cost in
  /// the store — network transfers, local memory streams, snapshot
  /// shipping — is priced on this, not on row_width() * sizeof(float).
  /// For the sparse top-R codecs this is the fixed *capacity* of a slot
  /// (dense-fallback worst case, which keeps flat addressing); the costs
  /// charge each row's actual quant::row_bytes() instead, summarized by
  /// avg_row_wire_bytes().
  virtual std::size_t value_bytes() const = 0;

  /// Average bytes one row currently charges on the wire/stream.
  /// Defaults to value_bytes(); sparse-aware backends override with the
  /// tracked (or, for phantom stores, modeled) per-row mean.
  virtual double avg_row_wire_bytes() const {
    return static_cast<double>(value_bytes());
  }

  /// Average kept pi entries per row — K (= row_width() - 1) for dense
  /// codecs; sparse-aware backends report the tracked/modeled nnz. The
  /// sampler's O(nnz) compute charges use this.
  virtual double avg_row_nnz() const {
    return row_width() > 0 ? static_cast<double>(row_width() - 1) : 0.0;
  }

  /// Mass tolerance the store's sparse codecs encode with (ignored by
  /// the dense codecs).
  virtual float sparse_eps() const { return quant::kDefaultSparseEps; }

  /// Populate a row before the first read. Not timed (setup phase).
  virtual void init_row(std::uint64_t key, std::span<const float> value) = 0;

  /// Batched read: row `keys[i]` lands decoded at out[i*row_width .. ).
  /// Returns modeled seconds for the batch issued by `requester_shard`.
  virtual double get_rows(unsigned requester_shard,
                          std::span<const std::uint64_t> keys,
                          std::span<float> out) = 0;

  /// Batched write, symmetric to get_rows (values are encoded on entry).
  virtual double put_rows(unsigned requester_shard,
                          std::span<const std::uint64_t> keys,
                          std::span<const float> values) = 0;

  /// Batched read of the stored bytes: row `keys[i]` lands verbatim at
  /// out[i*value_bytes() .. ). Same modeled time as get_rows for the
  /// same keys — the wire carries encoded rows either way; the float
  /// interface just transcodes at the boundary.
  virtual double get_rows_encoded(unsigned requester_shard,
                                  std::span<const std::uint64_t> keys,
                                  std::span<std::byte> out) = 0;

  /// Batched write of pre-encoded rows, symmetric to get_rows_encoded.
  virtual double put_rows_encoded(unsigned requester_shard,
                                  std::span<const std::uint64_t> keys,
                                  std::span<const std::byte> values) = 0;

  /// Pure cost queries — used by the cost-only execution mode, and by the
  /// real mode internally, so both modes charge identical times for
  /// identical row counts.
  virtual double read_cost(unsigned requester_shard, std::uint64_t local_rows,
                           std::uint64_t remote_rows) const = 0;
  virtual double write_cost(unsigned requester_shard,
                            std::uint64_t local_rows,
                            std::uint64_t remote_rows) const = 0;

  /// Keyed cost queries: the exact modeled seconds get_rows/put_rows would
  /// return for this key multiset, without moving data. Backends whose
  /// cost depends on *which* shards the keys hit (request coalescing)
  /// override these; phantom stores answer them identically to real ones,
  /// which is what keeps cost-only and real runs in lockstep. The default
  /// treats every key as local, which is correct for purely local stores.
  virtual double read_cost_keys(unsigned requester_shard,
                                std::span<const std::uint64_t> keys) const {
    return read_cost(requester_shard, keys.size(), 0);
  }
  virtual double write_cost_keys(unsigned requester_shard,
                                 std::span<const std::uint64_t> keys) const {
    return write_cost(requester_shard, keys.size(), 0);
  }
};

}  // namespace scd::dkv
