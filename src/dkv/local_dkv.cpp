#include "dkv/local_dkv.h"

#include <cstring>

#include "util/error.h"

namespace scd::dkv {

LocalDkv::LocalDkv(std::uint64_t num_rows, std::uint32_t row_width,
                   const sim::ComputeModel& node)
    : num_rows_(num_rows), row_width_(row_width), node_(node) {
  SCD_REQUIRE(num_rows >= 1 && row_width >= 1, "empty store");
  data_.assign(num_rows * row_width, 0.0f);
}

void LocalDkv::init_row(std::uint64_t key, std::span<const float> value) {
  SCD_REQUIRE(key < num_rows_, "row key out of range");
  SCD_REQUIRE(value.size() == row_width_, "row width mismatch");
  std::memcpy(data_.data() + key * row_width_, value.data(),
              value.size_bytes());
}

double LocalDkv::get_rows(unsigned requester_shard,
                          std::span<const std::uint64_t> keys,
                          std::span<float> out) {
  SCD_REQUIRE(out.size() == keys.size() * row_width_,
              "output buffer size mismatch");
  for (std::size_t i = 0; i < keys.size(); ++i) {
    SCD_ASSERT(keys[i] < num_rows_, "row key out of range");
    std::memcpy(out.data() + i * row_width_,
                data_.data() + keys[i] * row_width_, row_bytes());
  }
  return read_cost(requester_shard, keys.size(), 0);
}

double LocalDkv::put_rows(unsigned requester_shard,
                          std::span<const std::uint64_t> keys,
                          std::span<const float> values) {
  SCD_REQUIRE(values.size() == keys.size() * row_width_,
              "input buffer size mismatch");
  for (std::size_t i = 0; i < keys.size(); ++i) {
    SCD_ASSERT(keys[i] < num_rows_, "row key out of range");
    std::memcpy(data_.data() + keys[i] * row_width_,
                values.data() + i * row_width_, row_bytes());
  }
  return write_cost(requester_shard, keys.size(), 0);
}

double LocalDkv::read_cost(unsigned /*requester_shard*/,
                           std::uint64_t local_rows,
                           std::uint64_t remote_rows) const {
  SCD_ASSERT(remote_rows == 0, "LocalDkv has no remote rows");
  return node_.local_bytes_time((local_rows)*row_bytes());
}

double LocalDkv::write_cost(unsigned requester_shard,
                            std::uint64_t local_rows,
                            std::uint64_t remote_rows) const {
  return read_cost(requester_shard, local_rows, remote_rows);
}

}  // namespace scd::dkv
