#include "dkv/local_dkv.h"

#include <cmath>
#include <cstring>

#include "util/error.h"

namespace scd::dkv {

LocalDkv::LocalDkv(std::uint64_t num_rows, std::uint32_t row_width,
                   const sim::ComputeModel& node, quant::RowCodec codec,
                   float sparse_eps)
    : num_rows_(num_rows),
      row_width_(row_width),
      node_(node),
      codec_(codec),
      value_bytes_(quant::encoded_bytes(codec, row_width)),
      sparse_eps_(sparse_eps) {
  SCD_REQUIRE(num_rows >= 1 && row_width >= 1, "empty store");
  data_.assign(num_rows * value_bytes_, std::byte{0});
  track_sparse_ = quant::is_sparse(codec_);
  if (codec_ != quant::RowCodec::kFloat32) {
    // Encoded all-zero rows are not all-zero bytes; initialize properly.
    std::vector<float> zero(row_width_, 0.0f);
    for (std::uint64_t key = 0; key < num_rows_; ++key) {
      quant::encode_row(codec_, zero, stored(key), sparse_eps_);
    }
  }
  if (track_sparse_) {
    total_row_bytes_.store(
        num_rows_ * quant::row_bytes(codec_, row_width_, stored(0)),
        std::memory_order_relaxed);
    total_row_nnz_.store(
        num_rows_ * std::uint64_t{quant::row_nnz(codec_, row_width_,
                                                 stored(0))},
        std::memory_order_relaxed);
  }
}

std::size_t LocalDkv::key_bytes(std::uint64_t key) const {
  if (!track_sparse_) return value_bytes_;
  return quant::row_bytes(codec_, row_width_, stored(key));
}

std::uint64_t LocalDkv::batch_bytes(
    std::span<const std::uint64_t> keys) const {
  if (!track_sparse_) return keys.size() * value_bytes_;
  std::uint64_t bytes = 0;
  for (std::uint64_t key : keys) bytes += key_bytes(key);
  return bytes;
}

void LocalDkv::untrack_row(std::uint64_t key) {
  if (!track_sparse_) return;
  total_row_bytes_.fetch_sub(quant::row_bytes(codec_, row_width_, stored(key)),
                             std::memory_order_relaxed);
  total_row_nnz_.fetch_sub(quant::row_nnz(codec_, row_width_, stored(key)),
                           std::memory_order_relaxed);
}

void LocalDkv::track_row(std::uint64_t key) {
  if (!track_sparse_) return;
  total_row_bytes_.fetch_add(quant::row_bytes(codec_, row_width_, stored(key)),
                             std::memory_order_relaxed);
  total_row_nnz_.fetch_add(quant::row_nnz(codec_, row_width_, stored(key)),
                           std::memory_order_relaxed);
}

double LocalDkv::avg_row_wire_bytes() const {
  if (!track_sparse_) return static_cast<double>(value_bytes_);
  return static_cast<double>(total_row_bytes_.load(std::memory_order_relaxed)) /
         static_cast<double>(num_rows_);
}

double LocalDkv::avg_row_nnz() const {
  if (!track_sparse_) return static_cast<double>(row_width_ - 1);
  return static_cast<double>(total_row_nnz_.load(std::memory_order_relaxed)) /
         static_cast<double>(num_rows_);
}

void LocalDkv::init_row(std::uint64_t key, std::span<const float> value) {
  SCD_REQUIRE(key < num_rows_, "row key out of range");
  SCD_REQUIRE(value.size() == row_width_, "row width mismatch");
  untrack_row(key);
  quant::encode_row(codec_, value, stored(key), sparse_eps_);
  track_row(key);
}

double LocalDkv::get_rows(unsigned /*requester_shard*/,
                          std::span<const std::uint64_t> keys,
                          std::span<float> out) {
  SCD_REQUIRE(out.size() == keys.size() * row_width_,
              "output buffer size mismatch");
  for (std::size_t i = 0; i < keys.size(); ++i) {
    SCD_ASSERT(keys[i] < num_rows_, "row key out of range");
    quant::decode_row(codec_, stored(keys[i]),
                      out.subspan(i * row_width_, row_width_));
  }
  return node_.local_bytes_time(batch_bytes(keys));
}

double LocalDkv::put_rows(unsigned /*requester_shard*/,
                          std::span<const std::uint64_t> keys,
                          std::span<const float> values) {
  SCD_REQUIRE(values.size() == keys.size() * row_width_,
              "input buffer size mismatch");
  // Encode (re-sparsifying under the sparse codecs) first so the charge
  // covers the bytes this write actually streams.
  for (std::size_t i = 0; i < keys.size(); ++i) {
    SCD_ASSERT(keys[i] < num_rows_, "row key out of range");
    untrack_row(keys[i]);
    quant::encode_row(codec_, values.subspan(i * row_width_, row_width_),
                      stored(keys[i]), sparse_eps_);
    track_row(keys[i]);
  }
  return node_.local_bytes_time(batch_bytes(keys));
}

double LocalDkv::get_rows_encoded(unsigned /*requester_shard*/,
                                  std::span<const std::uint64_t> keys,
                                  std::span<std::byte> out) {
  SCD_REQUIRE(out.size() == keys.size() * value_bytes_,
              "output buffer size mismatch");
  for (std::size_t i = 0; i < keys.size(); ++i) {
    SCD_ASSERT(keys[i] < num_rows_, "row key out of range");
    std::memcpy(out.data() + i * value_bytes_, stored(keys[i]).data(),
                value_bytes_);
  }
  return node_.local_bytes_time(batch_bytes(keys));
}

double LocalDkv::put_rows_encoded(unsigned /*requester_shard*/,
                                  std::span<const std::uint64_t> keys,
                                  std::span<const std::byte> values) {
  SCD_REQUIRE(values.size() == keys.size() * value_bytes_,
              "input buffer size mismatch");
  for (std::size_t i = 0; i < keys.size(); ++i) {
    SCD_ASSERT(keys[i] < num_rows_, "row key out of range");
    untrack_row(keys[i]);
    std::memcpy(stored(keys[i]).data(), values.data() + i * value_bytes_,
                value_bytes_);
    track_row(keys[i]);
  }
  return node_.local_bytes_time(batch_bytes(keys));
}

double LocalDkv::read_cost(unsigned /*requester_shard*/,
                           std::uint64_t local_rows,
                           std::uint64_t remote_rows) const {
  SCD_ASSERT(remote_rows == 0, "LocalDkv has no remote rows");
  return node_.local_bytes_time(static_cast<std::uint64_t>(
      std::llround(local_rows * avg_row_wire_bytes())));
}

double LocalDkv::write_cost(unsigned requester_shard,
                            std::uint64_t local_rows,
                            std::uint64_t remote_rows) const {
  return read_cost(requester_shard, local_rows, remote_rows);
}

std::span<const float> LocalDkv::row(std::uint64_t key) const {
  SCD_REQUIRE(codec_ == quant::RowCodec::kFloat32,
              "direct row views require the fp32 codec");
  return {reinterpret_cast<const float*>(data_.data()) + key * row_width_,
          row_width_};
}

std::span<float> LocalDkv::mutable_row(std::uint64_t key) {
  SCD_REQUIRE(codec_ == quant::RowCodec::kFloat32,
              "direct row views require the fp32 codec");
  return {reinterpret_cast<float*>(data_.data()) + key * row_width_,
          row_width_};
}

}  // namespace scd::dkv
