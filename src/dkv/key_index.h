// Key deduplication for stage-batched DKV reads.
//
// Within one read stage the sampler references the same pi rows many
// times — chunk vertices share neighbors, update_beta pairs share
// endpoints — and pi is read-only between the stage barriers, so every
// distinct row needs to cross the wire exactly once per stage. KeyIndex
// turns a reference list into (a) the sorted distinct keys to fetch and
// (b) a per-reference remap into that fetch, letting callers keep their
// original access pattern over the deduplicated row buffer.
//
// Sorting (rather than a hash or an N-sized stamp array) keeps the cost
// O(R log R) in the reference count R alone — independent of graph size,
// allocation-free once the grow-only buffers are warm — and hands the
// distinct keys over in sorted order, which under block partitioning is
// exactly owner-grouped, the order the coalescing layer wants.
#pragma once

#include <algorithm>
#include <cstdint>
#include <span>
#include <utility>
#include <vector>

namespace scd::dkv {

class KeyIndex {
 public:
  /// Pre-size the internal buffers for up to `max_refs` references.
  void reserve(std::size_t max_refs) {
    order_.reserve(max_refs);
    unique_.reserve(max_refs);
    remap_.reserve(max_refs);
  }

  /// Index `keys`; afterwards unique_keys()/remap() describe it.
  void build(std::span<const std::uint64_t> keys) {
    order_.resize(keys.size());
    remap_.resize(keys.size());
    unique_.clear();
    for (std::size_t i = 0; i < keys.size(); ++i) {
      order_[i] = {keys[i], static_cast<std::uint32_t>(i)};
    }
    std::sort(order_.begin(), order_.end());
    for (const auto& [key, pos] : order_) {
      if (unique_.empty() || unique_.back() != key) unique_.push_back(key);
      remap_[pos] = static_cast<std::uint32_t>(unique_.size() - 1);
    }
  }

  /// Distinct keys in ascending order (owner-grouped for block layouts).
  std::span<const std::uint64_t> unique_keys() const { return unique_; }

  /// remap()[i] is the unique_keys() index holding the i-th reference:
  /// reference i's row starts at rows[remap()[i] * row_width].
  std::span<const std::uint32_t> remap() const { return remap_; }

 private:
  std::vector<std::pair<std::uint64_t, std::uint32_t>> order_;
  std::vector<std::uint64_t> unique_;
  std::vector<std::uint32_t> remap_;
};

}  // namespace scd::dkv
