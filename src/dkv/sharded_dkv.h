// Backend-neutral sharded pi store: what the distributed sampler needs
// beyond the plain DkvStore batch contract.
//
// The sampler (and its FT recovery machinery) additionally relies on:
// the worker-block partition, untimed single-row access for snapshots
// and rollback restores, and shard re-homing after a worker fail-stops.
// The fault/trace installation points are optional — the simulated
// backend prices stalls in virtual time and counts batches on trace
// lanes; the process backend has neither, so the defaults are no-ops.
//
// Implementations: SimRdmaDkv (shared address space, modeled costs) and
// proc::ProcDkv (per-process shard servers over Unix sockets, zero
// modeled cost — the callers charge wall time instead).
#pragma once

#include <span>
#include <vector>

#include "comm/clock.h"
#include "comm/fault_hooks.h"
#include "dkv/dkv.h"
#include "dkv/partition.h"
#include "trace/recorder.h"

namespace scd::dkv {

class ShardedDkv : public DkvStore {
 public:
  virtual const RowPartition& partition() const = 0;

  /// Direct row view (tests, perplexity snapshots). Only valid under the
  /// kFloat32 codec, where storage *is* the float row.
  virtual std::span<const float> row(std::uint64_t key) const = 0;

  /// Decode one stored row into `out` (row_width floats). Untimed; works
  /// under every codec — the snapshot path for pi.
  virtual void read_row(std::uint64_t key, std::span<float> out) const = 0;

  /// Expected remote fraction for a uniformly random row from one shard:
  /// (C-1)/C — the quantity Section IV-C reasons about.
  double remote_fraction() const {
    const double c = partition().num_shards();
    return (c - 1.0) / c;
  }

  /// Re-home `shard`'s rows onto `new_owner` (a surviving shard) after
  /// its worker fail-stops: subsequent accesses treat those rows as owned
  /// by `new_owner`. The orchestrator charges rehome_cost().
  virtual void rehome_shard(unsigned shard, unsigned new_owner) = 0;

  /// Modeled (sim) or estimated (proc: 0 — the rollback rewrite is what
  /// actually costs) bulk-transfer time of shipping `shard`'s rows.
  virtual double rehome_cost(unsigned shard) const = 0;

  /// Effective owner of `key` after any re-homing.
  virtual unsigned effective_owner(std::uint64_t key) const = 0;

  /// Install (or clear) fault hooks / a trace recorder. Backends without
  /// modeled costs ignore both (`clocks` may be nullptr there).
  virtual void install_fault(const comm::FaultHooks* /*hooks*/,
                             const std::vector<comm::VirtualClock>* /*clocks*/,
                             unsigned /*rank_offset*/ = 1) {}
  virtual void install_trace(trace::TraceRecorder* /*recorder*/,
                             unsigned /*rank_offset*/ = 1) {}
};

}  // namespace scd::dkv
