// Static block partition of DKV rows over shards (worker nodes).
//
// The paper's store is populated once and never resized: "The KV layout is
// static ... which allows a static partitioning of KV pairs over the
// machines." Rows 0..N-1 are split into contiguous blocks, one per worker.
#pragma once

#include <cstdint>
#include <utility>

#include "util/error.h"

namespace scd::dkv {

class RowPartition {
 public:
  RowPartition(std::uint64_t num_rows, unsigned num_shards)
      : num_rows_(num_rows), num_shards_(num_shards) {
    SCD_REQUIRE(num_shards >= 1, "need at least one shard");
  }

  std::uint64_t num_rows() const { return num_rows_; }
  unsigned num_shards() const { return num_shards_; }

  unsigned owner(std::uint64_t row) const {
    SCD_ASSERT(row < num_rows_, "row out of range");
    // Inverse of the balanced block split in range(): the first `extra`
    // shards hold base+1 rows.
    const std::uint64_t base = num_rows_ / num_shards_;
    const std::uint64_t extra = num_rows_ % num_shards_;
    const std::uint64_t fat_rows = (base + 1) * extra;
    if (row < fat_rows) {
      return base + 1 == 0 ? 0 : static_cast<unsigned>(row / (base + 1));
    }
    return static_cast<unsigned>(extra + (row - fat_rows) / std::max<std::uint64_t>(base, 1));
  }

  /// [begin, end) of rows owned by `shard`.
  std::pair<std::uint64_t, std::uint64_t> range(unsigned shard) const {
    SCD_ASSERT(shard < num_shards_, "shard out of range");
    const std::uint64_t base = num_rows_ / num_shards_;
    const std::uint64_t extra = num_rows_ % num_shards_;
    const std::uint64_t begin =
        shard * base + std::min<std::uint64_t>(shard, extra);
    const std::uint64_t end = begin + base + (shard < extra ? 1 : 0);
    return {begin, end};
  }

 private:
  std::uint64_t num_rows_;
  unsigned num_shards_;
};

}  // namespace scd::dkv
