#include "dkv/cached_dkv.h"

#include <cstring>

#include "util/error.h"

namespace scd::dkv {

CachedDkv::CachedDkv(DkvStore& inner, std::uint64_t capacity_rows,
                     const sim::ComputeModel& node)
    : inner_(inner), capacity_(capacity_rows), node_(node) {
  SCD_REQUIRE(capacity_rows >= 1, "cache needs capacity >= 1 row");
}

void CachedDkv::init_row(std::uint64_t key, std::span<const float> value) {
  inner_.init_row(key, value);
}

void CachedDkv::touch(std::list<Entry>::iterator it) {
  lru_.splice(lru_.begin(), lru_, it);
}

void CachedDkv::insert(unsigned requester_shard, std::uint64_t key,
                       std::span<const std::byte> value) {
  if (map_.size() >= capacity_) {
    map_.erase(lru_.back().key);
    lru_.pop_back();
    ++evictions_;
    if (trace_ != nullptr) {
      const unsigned lane = requester_shard + trace_rank_offset_;
      if (lane < trace_->num_lanes()) {
        trace_->metrics().count(trace::Metric::kDkvEvictions, lane);
      }
    }
  }
  lru_.push_front(Entry{key, {value.begin(), value.end()}});
  map_[key] = lru_.begin();
}

template <typename OnHit>
double CachedDkv::classify(unsigned requester_shard,
                           std::span<const std::uint64_t> keys,
                           OnHit&& on_hit) {
  miss_keys_.clear();
  miss_slots_.clear();
  const quant::RowCodec codec = inner_.codec();
  const bool sparse = quant::is_sparse(codec);
  const std::uint32_t width = row_width();
  std::uint64_t hit_rows = 0;
  std::uint64_t hit_bytes = 0;
  for (std::size_t i = 0; i < keys.size(); ++i) {
    auto it = map_.find(keys[i]);
    if (it != map_.end()) {
      ++hits_;
      ++hit_rows;
      touch(it->second);
      const std::span<const std::byte> value(it->second->value);
      hit_bytes +=
          sparse ? quant::row_bytes(codec, width, value) : value.size();
      on_hit(i, value);
    } else {
      ++misses_;
      miss_keys_.push_back(keys[i]);
      miss_slots_.push_back(i);
    }
  }
  if (trace_ != nullptr) {
    const unsigned lane = requester_shard + trace_rank_offset_;
    if (lane < trace_->num_lanes()) {
      trace::MetricsRegistry& metrics = trace_->metrics();
      metrics.count(trace::Metric::kDkvHits, lane, hit_rows);
      metrics.count(trace::Metric::kDkvMisses, lane, miss_keys_.size());
    }
  }
  // Hits stream the cached copy from local RAM; only misses pay the
  // inner store's (possibly remote) cost. Sparse rows charge the bytes
  // they actually occupy inside their capacity slot.
  return node_.local_bytes_time(hit_bytes);
}

double CachedDkv::get_rows(unsigned requester_shard,
                           std::span<const std::uint64_t> keys,
                           std::span<float> out) {
  SCD_REQUIRE(out.size() == keys.size() * row_width(),
              "output buffer size mismatch");
  const std::uint32_t width = row_width();
  const quant::RowCodec codec = inner_.codec();
  double cost = classify(
      requester_shard, keys, [&](std::size_t i, std::span<const std::byte> v) {
        quant::decode_row(codec, v, out.subspan(i * width, width));
      });
  if (miss_keys_.empty()) return cost;
  const std::size_t vbytes = inner_.value_bytes();
  fetched_.resize(miss_keys_.size() * vbytes);
  cost += inner_.get_rows_encoded(requester_shard, miss_keys_, fetched_);
  for (std::size_t m = 0; m < miss_keys_.size(); ++m) {
    std::span<const std::byte> value(fetched_.data() + m * vbytes, vbytes);
    quant::decode_row(codec, value,
                      out.subspan(miss_slots_[m] * width, width));
    insert(requester_shard, miss_keys_[m], value);
  }
  return cost;
}

double CachedDkv::get_rows_encoded(unsigned requester_shard,
                                   std::span<const std::uint64_t> keys,
                                   std::span<std::byte> out) {
  const std::size_t vbytes = inner_.value_bytes();
  SCD_REQUIRE(out.size() == keys.size() * vbytes,
              "output buffer size mismatch");
  double cost = classify(
      requester_shard, keys, [&](std::size_t i, std::span<const std::byte> v) {
        std::memcpy(out.data() + i * vbytes, v.data(), vbytes);
      });
  if (miss_keys_.empty()) return cost;
  fetched_.resize(miss_keys_.size() * vbytes);
  cost += inner_.get_rows_encoded(requester_shard, miss_keys_, fetched_);
  for (std::size_t m = 0; m < miss_keys_.size(); ++m) {
    std::span<const std::byte> value(fetched_.data() + m * vbytes, vbytes);
    std::memcpy(out.data() + miss_slots_[m] * vbytes, value.data(), vbytes);
    insert(requester_shard, miss_keys_[m], value);
  }
  return cost;
}

double CachedDkv::put_rows(unsigned requester_shard,
                           std::span<const std::uint64_t> keys,
                           std::span<const float> values) {
  const std::uint32_t width = row_width();
  const quant::RowCodec codec = inner_.codec();
  const std::size_t vbytes = inner_.value_bytes();
  // Write-through; refresh any cached copies so reads stay coherent
  // with this requester's own writes.
  for (std::size_t i = 0; i < keys.size(); ++i) {
    auto it = map_.find(keys[i]);
    if (it != map_.end()) {
      it->second->value.resize(vbytes);
      quant::encode_row(codec, values.subspan(i * width, width),
                        it->second->value, inner_.sparse_eps());
      touch(it->second);
    }
  }
  return inner_.put_rows(requester_shard, keys, values);
}

double CachedDkv::put_rows_encoded(unsigned requester_shard,
                                   std::span<const std::uint64_t> keys,
                                   std::span<const std::byte> values) {
  const std::size_t vbytes = inner_.value_bytes();
  for (std::size_t i = 0; i < keys.size(); ++i) {
    auto it = map_.find(keys[i]);
    if (it != map_.end()) {
      const auto value = values.subspan(i * vbytes, vbytes);
      it->second->value.assign(value.begin(), value.end());
      touch(it->second);
    }
  }
  return inner_.put_rows_encoded(requester_shard, keys, values);
}

void CachedDkv::invalidate_all() {
  lru_.clear();
  map_.clear();
}

}  // namespace scd::dkv
