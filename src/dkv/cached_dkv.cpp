#include "dkv/cached_dkv.h"

#include <cstring>

#include "util/error.h"

namespace scd::dkv {

CachedDkv::CachedDkv(DkvStore& inner, std::uint64_t capacity_rows)
    : inner_(inner), capacity_(capacity_rows) {
  SCD_REQUIRE(capacity_rows >= 1, "cache needs capacity >= 1 row");
}

void CachedDkv::init_row(std::uint64_t key, std::span<const float> value) {
  inner_.init_row(key, value);
}

void CachedDkv::touch(std::list<Entry>::iterator it) {
  lru_.splice(lru_.begin(), lru_, it);
}

void CachedDkv::insert(std::uint64_t key, std::span<const float> value) {
  if (map_.size() >= capacity_) {
    map_.erase(lru_.back().key);
    lru_.pop_back();
  }
  lru_.push_front(Entry{key, {value.begin(), value.end()}});
  map_[key] = lru_.begin();
}

double CachedDkv::get_rows(unsigned requester_shard,
                           std::span<const std::uint64_t> keys,
                           std::span<float> out) {
  SCD_REQUIRE(out.size() == keys.size() * row_width(),
              "output buffer size mismatch");
  const std::uint32_t width = row_width();
  // First pass: satisfy hits from the cache and collect the misses.
  std::vector<std::uint64_t> miss_keys;
  std::vector<std::size_t> miss_slots;
  for (std::size_t i = 0; i < keys.size(); ++i) {
    auto it = map_.find(keys[i]);
    if (it != map_.end()) {
      ++hits_;
      touch(it->second);
      std::memcpy(out.data() + i * width, it->second->value.data(),
                  width * sizeof(float));
    } else {
      ++misses_;
      miss_keys.push_back(keys[i]);
      miss_slots.push_back(i);
    }
  }
  if (miss_keys.empty()) return 0.0;
  std::vector<float> fetched(miss_keys.size() * width);
  const double cost = inner_.get_rows(requester_shard, miss_keys, fetched);
  for (std::size_t m = 0; m < miss_keys.size(); ++m) {
    std::span<const float> value(fetched.data() + m * width, width);
    std::memcpy(out.data() + miss_slots[m] * width, value.data(),
                width * sizeof(float));
    insert(miss_keys[m], value);
  }
  return cost;
}

double CachedDkv::put_rows(unsigned requester_shard,
                           std::span<const std::uint64_t> keys,
                           std::span<const float> values) {
  const std::uint32_t width = row_width();
  // Write-through; refresh any cached copies so reads stay coherent
  // with this requester's own writes.
  for (std::size_t i = 0; i < keys.size(); ++i) {
    auto it = map_.find(keys[i]);
    if (it != map_.end()) {
      std::span<const float> value(values.data() + i * width, width);
      it->second->value.assign(value.begin(), value.end());
      touch(it->second);
    }
  }
  return inner_.put_rows(requester_shard, keys, values);
}

void CachedDkv::invalidate_all() {
  lru_.clear();
  map_.clear();
}

}  // namespace scd::dkv
