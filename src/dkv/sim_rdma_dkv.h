// Simulated-RDMA DKV backend: pi sharded over the workers of a
// SimCluster, accessed with one-sided reads/writes costed by the
// NetworkModel.
//
// Storage is one contiguous array in process memory (all simulated ranks
// share the address space), logically block-partitioned by RowPartition.
// Because RDMA is one-sided, an access involves no code on the owner rank
// — matching the real system, where the remote NIC serves the read — so
// the only effects are the data copy and the requester's clock charge.
//
// Rows are stored *encoded* with the configured RowCodec
// (quant/row_codec.h); every byte-proportional cost — the coalesced
// remote messages, the local memory stream, shard re-homing — charges
// the bytes a row actually occupies, which is how the lossy codecs buy
// their modeled speedup. For the dense codecs that is value_bytes() per
// row exactly as before; for the sparse top-R codecs each row charges
// its own quant::row_bytes() (header + indices + kept values + tail),
// tracked per row as writes re-encode, so the wire cost follows the
// rows' true sparsity even though storage keeps fixed capacity slots.
// The default kFloat32 codec stores raw float rows and charges exactly
// the pre-codec byte counts.
//
// A *phantom* sparse store holds no rows to measure, so it charges a
// modeled per-row size instead: `sparse_modeled_nnz` kept entries
// (0 = auto, clamp(K/16, 8, K)), priced through the same layout
// formula. Real and phantom stores answer the keyed cost queries with
// the same formula over per-row bytes, so cost-only runs stay in
// lockstep with real ones up to the tracked-vs-modeled nnz input.
//
// Safety: the algorithm's barrier-separated stages guarantee no
// read/write or write/write overlap on a row (Section III-B); the store
// checks nothing at runtime beyond bounds, exactly like its RDMA
// counterpart. Tests exercise the access discipline instead.
//
// Request coalescing: get_rows/put_rows group the batch by owner shard
// and charge ONE message per contacted shard (the real store batches
// requests per destination the same way), so per-request overhead is
// amortized across the rows bound for each shard. The keyed cost queries
// (read_cost_keys/write_cost_keys) apply the identical formula from the
// key multiset alone, so a phantom store charges exactly what a real one
// would. The count-based read_cost/write_cost remain for callers that
// only know row counts; they assume the remote rows spread over all
// C - 1 peer shards (the uniform-access expectation of Section IV-C).
//
// A store constructed with `phantom = true` allocates no storage and only
// answers cost queries — the cost-only execution mode for paper-scale
// parameter sweeps (N up to 65M, K up to 12288: 3 TB of pi in the real
// system).
#pragma once

#include <atomic>
#include <vector>

#include "dkv/dkv.h"
#include "dkv/partition.h"
#include "dkv/sharded_dkv.h"
#include "sim/clock.h"
#include "sim/compute_model.h"
#include "sim/fault_hooks.h"
#include "sim/network_model.h"
#include "trace/recorder.h"

namespace scd::dkv {

class SimRdmaDkv final : public ShardedDkv {
 public:
  SimRdmaDkv(std::uint64_t num_rows, std::uint32_t row_width,
             unsigned num_shards, const sim::NetworkModel& net,
             const sim::ComputeModel& node, bool phantom = false,
             quant::RowCodec codec = quant::RowCodec::kFloat32,
             float sparse_eps = quant::kDefaultSparseEps,
             std::uint32_t sparse_modeled_nnz = 0);

  std::uint64_t num_rows() const override { return partition_.num_rows(); }
  std::uint32_t row_width() const override { return row_width_; }
  quant::RowCodec codec() const override { return codec_; }
  std::size_t value_bytes() const override { return value_bytes_; }
  const RowPartition& partition() const override { return partition_; }
  bool phantom() const { return phantom_; }

  void init_row(std::uint64_t key, std::span<const float> value) override;

  double get_rows(unsigned requester_shard,
                  std::span<const std::uint64_t> keys,
                  std::span<float> out) override;

  double put_rows(unsigned requester_shard,
                  std::span<const std::uint64_t> keys,
                  std::span<const float> values) override;

  double get_rows_encoded(unsigned requester_shard,
                          std::span<const std::uint64_t> keys,
                          std::span<std::byte> out) override;

  double put_rows_encoded(unsigned requester_shard,
                          std::span<const std::uint64_t> keys,
                          std::span<const std::byte> values) override;

  double read_cost(unsigned requester_shard, std::uint64_t local_rows,
                   std::uint64_t remote_rows) const override;
  double write_cost(unsigned requester_shard, std::uint64_t local_rows,
                    std::uint64_t remote_rows) const override;

  double read_cost_keys(unsigned requester_shard,
                        std::span<const std::uint64_t> keys) const override;
  double write_cost_keys(unsigned requester_shard,
                         std::span<const std::uint64_t> keys) const override;

  /// Direct row view (tests, perplexity snapshots). Only valid under the
  /// kFloat32 codec, where storage *is* the float row.
  std::span<const float> row(std::uint64_t key) const override;

  /// Decode one stored row into `out` (row_width floats). Untimed; works
  /// under every codec — the snapshot path for pi.
  void read_row(std::uint64_t key, std::span<float> out) const override;

  /// Average bytes one row currently costs on the wire: value_bytes()
  /// for the dense codecs; the tracked mean of quant::row_bytes() over
  /// all stored rows for a real sparse store; modeled_row_bytes() for a
  /// phantom sparse store. The FT snapshot wire model and the count-based
  /// cost queries price rows through this.
  double avg_row_wire_bytes() const override;

  /// Average kept pi entries per row (K for dense codecs; tracked mean
  /// for real sparse stores, the modeled nnz for phantom ones). The
  /// sampler's O(nnz) compute charges use this.
  double avg_row_nnz() const override;

  /// Modeled per-row wire bytes of a phantom sparse store (equals
  /// value_bytes() for dense codecs).
  std::size_t modeled_row_bytes() const { return modeled_row_bytes_; }

  /// Mass tolerance handed to quant::encode_row for the sparse codecs.
  float sparse_eps() const override { return sparse_eps_; }

  /// Install (or clear, with nullptr) fault hooks: coalesced messages to
  /// a stalled shard pay the plan's extra service delay. `clocks` supplies
  /// the requester's virtual time; shard s is served by the rank at index
  /// s + rank_offset (the sampler's worker-rank convention).
  void install_fault(const comm::FaultHooks* hooks,
                     const std::vector<comm::VirtualClock>* clocks,
                     unsigned rank_offset = 1) override;

  /// Install (or clear, with nullptr) a trace recorder: get_rows /
  /// put_rows and the phantom read_cost/write_cost operations count
  /// rows, remote rows, batches, and coalesced messages on the
  /// requesting worker's lane (shard s maps to lane s + rank_offset,
  /// the sampler's worker-rank convention). The passive keyed cost
  /// queries record nothing.
  void install_trace(trace::TraceRecorder* recorder,
                     unsigned rank_offset = 1) override;

  /// Re-home `shard`'s rows onto `new_owner` (a surviving shard) after
  /// its worker fail-stops: subsequent accesses treat those rows as owned
  /// by `new_owner` — local to its worker, one coalesced message from
  /// everyone else. The storage itself never moves (all simulated ranks
  /// share the address space); the orchestrator charges rehome_cost().
  void rehome_shard(unsigned shard, unsigned new_owner) override;

  /// Modeled bulk-transfer time of shipping `shard`'s rows to its heir.
  double rehome_cost(unsigned shard) const override;

  /// Effective owner of `key` after any re-homing.
  unsigned effective_owner(std::uint64_t key) const override {
    const unsigned owner = partition_.owner(key);
    return remap_.empty() ? owner : remap_[owner];
  }

 private:

  /// Locality census of a key batch: local/remote row counts and bytes,
  /// plus the number of distinct remote shards the batch touches (the
  /// message count under request coalescing).
  struct KeyTally {
    std::uint64_t local = 0;
    std::uint64_t remote = 0;
    std::uint64_t local_bytes = 0;
    std::uint64_t remote_bytes = 0;
    std::uint64_t shards_contacted = 0;
    /// Injected extra service delay summed over stalled contacted shards.
    double stall_s = 0.0;
  };
  KeyTally tally_keys(unsigned shard, std::span<const std::uint64_t> keys,
                      double now) const;
  double coalesced_cost(std::uint64_t local_bytes, std::uint64_t remote_bytes,
                        std::uint64_t shards_contacted) const;
  /// Wire bytes key currently charges (actual for real sparse stores,
  /// modeled for phantom ones, value_bytes() for dense codecs).
  std::size_t key_bytes(std::uint64_t key) const;
  /// Maintain the tracked byte/nnz totals around a row (re-)encode.
  void untrack_row(std::uint64_t key);
  void track_row(std::uint64_t key);
  /// Count one batch operation on the requester's metrics lane.
  void record_batch(unsigned requester_shard, std::uint64_t local_rows,
                    std::uint64_t remote_rows, std::uint64_t messages,
                    bool write) const;
  /// Requester's virtual time, 0 when no fault hooks are installed.
  double now_for(unsigned requester_shard) const {
    if (fault_ == nullptr || clocks_ == nullptr) return 0.0;
    return (*clocks_)[requester_shard + rank_offset_].now();
  }
  std::span<std::byte> stored(std::uint64_t key) {
    return {data_.data() + key * value_bytes_, value_bytes_};
  }
  std::span<const std::byte> stored(std::uint64_t key) const {
    return {data_.data() + key * value_bytes_, value_bytes_};
  }

  RowPartition partition_;
  std::uint32_t row_width_;
  sim::NetworkModel net_;
  sim::ComputeModel node_;
  bool phantom_;
  quant::RowCodec codec_;
  std::size_t value_bytes_;
  float sparse_eps_;
  /// True iff this store tracks per-row actual bytes (real + sparse).
  bool track_sparse_ = false;
  std::uint32_t modeled_nnz_ = 0;
  std::size_t modeled_row_bytes_ = 0;
  /// Running totals of quant::row_bytes / row_nnz over all stored rows;
  /// relaxed atomics because simulated rank threads share the store (the
  /// stage discipline keeps row writes disjoint, but the totals aren't).
  std::atomic<std::uint64_t> total_row_bytes_{0};
  std::atomic<std::uint64_t> total_row_nnz_{0};
  std::vector<std::byte> data_;
  std::vector<unsigned> remap_;  // shard -> effective shard; empty = identity
  const sim::FaultHooks* fault_ = nullptr;
  const std::vector<sim::SimClock>* clocks_ = nullptr;
  unsigned rank_offset_ = 1;
  trace::TraceRecorder* trace_ = nullptr;
  unsigned trace_rank_offset_ = 1;
};

}  // namespace scd::dkv
