// Shared-memory DKV backend.
//
// Used by the multithreaded single-node sampler (the paper's "vertical
// scaling" configuration, Section IV-D), where pi lives in local RAM and
// a row access costs memory bandwidth instead of a network round trip.
#pragma once

#include <vector>

#include "dkv/dkv.h"
#include "sim/compute_model.h"

namespace scd::dkv {

class LocalDkv final : public DkvStore {
 public:
  LocalDkv(std::uint64_t num_rows, std::uint32_t row_width,
           const sim::ComputeModel& node);

  std::uint64_t num_rows() const override { return num_rows_; }
  std::uint32_t row_width() const override { return row_width_; }

  void init_row(std::uint64_t key, std::span<const float> value) override;

  double get_rows(unsigned requester_shard,
                  std::span<const std::uint64_t> keys,
                  std::span<float> out) override;

  double put_rows(unsigned requester_shard,
                  std::span<const std::uint64_t> keys,
                  std::span<const float> values) override;

  double read_cost(unsigned requester_shard, std::uint64_t local_rows,
                   std::uint64_t remote_rows) const override;
  double write_cost(unsigned requester_shard, std::uint64_t local_rows,
                    std::uint64_t remote_rows) const override;

  /// Direct row view for tests and the in-process samplers.
  std::span<const float> row(std::uint64_t key) const {
    return {data_.data() + key * row_width_, row_width_};
  }
  std::span<float> mutable_row(std::uint64_t key) {
    return {data_.data() + key * row_width_, row_width_};
  }

 private:
  std::uint64_t row_bytes() const {
    return static_cast<std::uint64_t>(row_width_) * sizeof(float);
  }

  std::uint64_t num_rows_;
  std::uint32_t row_width_;
  sim::ComputeModel node_;
  std::vector<float> data_;
};

}  // namespace scd::dkv
