// Shared-memory DKV backend.
//
// Used by the multithreaded single-node sampler (the paper's "vertical
// scaling" configuration, Section IV-D), where pi lives in local RAM and
// a row access costs memory bandwidth instead of a network round trip.
// Rows are stored encoded with the configured codec; memory-stream costs
// charge the encoded bytes — the fixed value_bytes() for the dense
// codecs, each row's actual quant::row_bytes() for the sparse top-R
// codecs (storage keeps fixed capacity slots; only the charged bytes
// shrink).
#pragma once

#include <atomic>
#include <vector>

#include "dkv/dkv.h"
#include "sim/compute_model.h"

namespace scd::dkv {

class LocalDkv final : public DkvStore {
 public:
  LocalDkv(std::uint64_t num_rows, std::uint32_t row_width,
           const sim::ComputeModel& node,
           quant::RowCodec codec = quant::RowCodec::kFloat32,
           float sparse_eps = quant::kDefaultSparseEps);

  std::uint64_t num_rows() const override { return num_rows_; }
  std::uint32_t row_width() const override { return row_width_; }
  quant::RowCodec codec() const override { return codec_; }
  std::size_t value_bytes() const override { return value_bytes_; }

  void init_row(std::uint64_t key, std::span<const float> value) override;

  double get_rows(unsigned requester_shard,
                  std::span<const std::uint64_t> keys,
                  std::span<float> out) override;

  double put_rows(unsigned requester_shard,
                  std::span<const std::uint64_t> keys,
                  std::span<const float> values) override;

  double get_rows_encoded(unsigned requester_shard,
                          std::span<const std::uint64_t> keys,
                          std::span<std::byte> out) override;

  double put_rows_encoded(unsigned requester_shard,
                          std::span<const std::uint64_t> keys,
                          std::span<const std::byte> values) override;

  double read_cost(unsigned requester_shard, std::uint64_t local_rows,
                   std::uint64_t remote_rows) const override;
  double write_cost(unsigned requester_shard, std::uint64_t local_rows,
                    std::uint64_t remote_rows) const override;

  /// Average bytes one row currently charges (value_bytes() for dense
  /// codecs; tracked mean of quant::row_bytes() for sparse ones).
  double avg_row_wire_bytes() const override;
  /// Average kept pi entries per row (K for dense codecs).
  double avg_row_nnz() const override;
  /// Mass tolerance handed to quant::encode_row for the sparse codecs.
  float sparse_eps() const override { return sparse_eps_; }

  /// Direct row view for tests and the in-process samplers. Only valid
  /// under the kFloat32 codec, where storage *is* the float row.
  std::span<const float> row(std::uint64_t key) const;
  std::span<float> mutable_row(std::uint64_t key);

 private:
  std::span<std::byte> stored(std::uint64_t key) {
    return {data_.data() + key * value_bytes_, value_bytes_};
  }
  std::span<const std::byte> stored(std::uint64_t key) const {
    return {data_.data() + key * value_bytes_, value_bytes_};
  }
  /// Bytes `key` currently charges on the memory stream.
  std::size_t key_bytes(std::uint64_t key) const;
  /// Sum of key_bytes over a batch (rows * value_bytes() when dense).
  std::uint64_t batch_bytes(std::span<const std::uint64_t> keys) const;
  void untrack_row(std::uint64_t key);
  void track_row(std::uint64_t key);

  std::uint64_t num_rows_;
  std::uint32_t row_width_;
  sim::ComputeModel node_;
  quant::RowCodec codec_;
  std::size_t value_bytes_;
  float sparse_eps_;
  bool track_sparse_ = false;
  /// Running totals over all rows; relaxed atomics because the sampler
  /// threads share the store (row writes are disjoint, totals are not).
  std::atomic<std::uint64_t> total_row_bytes_{0};
  std::atomic<std::uint64_t> total_row_nnz_{0};
  std::vector<std::byte> data_;
};

}  // namespace scd::dkv
