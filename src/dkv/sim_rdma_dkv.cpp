#include "dkv/sim_rdma_dkv.h"

#include <cstring>

#include "util/error.h"

namespace scd::dkv {

SimRdmaDkv::SimRdmaDkv(std::uint64_t num_rows, std::uint32_t row_width,
                       unsigned num_shards, const sim::NetworkModel& net,
                       const sim::ComputeModel& node, bool phantom)
    : partition_(num_rows, num_shards),
      row_width_(row_width),
      net_(net),
      node_(node),
      phantom_(phantom) {
  SCD_REQUIRE(num_rows >= 1 && row_width >= 1, "empty store");
  net_.validate();
  if (!phantom_) data_.assign(num_rows * row_width, 0.0f);
}

void SimRdmaDkv::init_row(std::uint64_t key, std::span<const float> value) {
  SCD_REQUIRE(!phantom_, "phantom store holds no data");
  SCD_REQUIRE(key < num_rows(), "row key out of range");
  SCD_REQUIRE(value.size() == row_width_, "row width mismatch");
  std::memcpy(data_.data() + key * row_width_, value.data(),
              value.size_bytes());
}

std::span<const float> SimRdmaDkv::row(std::uint64_t key) const {
  SCD_REQUIRE(!phantom_, "phantom store holds no data");
  SCD_ASSERT(key < num_rows(), "row key out of range");
  return {data_.data() + key * row_width_, row_width_};
}

std::uint64_t SimRdmaDkv::count_local(
    unsigned shard, std::span<const std::uint64_t> keys) const {
  const auto [lo, hi] = partition_.range(shard);
  std::uint64_t local = 0;
  for (std::uint64_t key : keys) {
    if (key >= lo && key < hi) ++local;
  }
  return local;
}

double SimRdmaDkv::get_rows(unsigned requester_shard,
                            std::span<const std::uint64_t> keys,
                            std::span<float> out) {
  SCD_REQUIRE(!phantom_, "phantom store: use read_cost");
  SCD_REQUIRE(out.size() == keys.size() * row_width_,
              "output buffer size mismatch");
  for (std::size_t i = 0; i < keys.size(); ++i) {
    SCD_ASSERT(keys[i] < num_rows(), "row key out of range");
    std::memcpy(out.data() + i * row_width_,
                data_.data() + keys[i] * row_width_, row_bytes());
  }
  const std::uint64_t local = count_local(requester_shard, keys);
  return read_cost(requester_shard, local, keys.size() - local);
}

double SimRdmaDkv::put_rows(unsigned requester_shard,
                            std::span<const std::uint64_t> keys,
                            std::span<const float> values) {
  SCD_REQUIRE(!phantom_, "phantom store: use write_cost");
  SCD_REQUIRE(values.size() == keys.size() * row_width_,
              "input buffer size mismatch");
  for (std::size_t i = 0; i < keys.size(); ++i) {
    SCD_ASSERT(keys[i] < num_rows(), "row key out of range");
    std::memcpy(data_.data() + keys[i] * row_width_,
                values.data() + i * row_width_, row_bytes());
  }
  const std::uint64_t local = count_local(requester_shard, keys);
  return write_cost(requester_shard, local, keys.size() - local);
}

double SimRdmaDkv::read_cost(unsigned /*requester_shard*/,
                             std::uint64_t local_rows,
                             std::uint64_t remote_rows) const {
  // Local rows stream from RAM; remote rows are one RDMA read each,
  // batched on the wire. The working set passed to the spread de-rater is
  // the bytes touched on the remote side.
  const double local_s = node_.local_bytes_time(local_rows * row_bytes());
  const std::uint64_t remote_bytes = remote_rows * row_bytes();
  const double remote_s = net_.dkv_batch_time(
      remote_rows, remote_bytes, remote_bytes, partition_.num_shards());
  return local_s + remote_s;
}

double SimRdmaDkv::write_cost(unsigned requester_shard,
                              std::uint64_t local_rows,
                              std::uint64_t remote_rows) const {
  // RDMA write ~ RDMA read for payloads above 256B (Fig. 5 discussion).
  return read_cost(requester_shard, local_rows, remote_rows);
}

}  // namespace scd::dkv
