#include "dkv/sim_rdma_dkv.h"

#include <algorithm>
#include <cmath>
#include <cstring>

#include "util/error.h"

namespace scd::dkv {

SimRdmaDkv::SimRdmaDkv(std::uint64_t num_rows, std::uint32_t row_width,
                       unsigned num_shards, const sim::NetworkModel& net,
                       const sim::ComputeModel& node, bool phantom,
                       quant::RowCodec codec, float sparse_eps,
                       std::uint32_t sparse_modeled_nnz)
    : partition_(num_rows, num_shards),
      row_width_(row_width),
      net_(net),
      node_(node),
      phantom_(phantom),
      codec_(codec),
      value_bytes_(quant::encoded_bytes(codec, row_width)),
      sparse_eps_(sparse_eps) {
  SCD_REQUIRE(num_rows >= 1 && row_width >= 1, "empty store");
  net_.validate();
  modeled_row_bytes_ = value_bytes_;
  if (quant::is_sparse(codec_)) {
    const std::uint32_t k = row_width_ - 1;
    std::uint32_t nnz = sparse_modeled_nnz != 0
                            ? sparse_modeled_nnz
                            : std::max<std::uint32_t>(k / 16, 8);
    modeled_nnz_ = std::min(nnz, k);
    modeled_row_bytes_ = std::min(
        quant::kSparseHeaderBytes +
            quant::sparse_payload_bytes(codec_, modeled_nnz_, k),
        value_bytes_);
  }
  if (!phantom_) {
    data_.assign(num_rows * value_bytes_, std::byte{0});
    if (quant::is_sparse(codec_)) {
      track_sparse_ = true;
      // All-zero slots parse as empty sparse rows; seed the totals so
      // every later track/untrack delta keeps them exact.
      total_row_bytes_.store(
          num_rows * quant::row_bytes(codec_, row_width_, stored(0)),
          std::memory_order_relaxed);
      total_row_nnz_.store(0, std::memory_order_relaxed);
    }
  }
}

std::size_t SimRdmaDkv::key_bytes(std::uint64_t key) const {
  if (!quant::is_sparse(codec_)) return value_bytes_;
  if (phantom_) return modeled_row_bytes_;
  return quant::row_bytes(codec_, row_width_, stored(key));
}

void SimRdmaDkv::untrack_row(std::uint64_t key) {
  if (!track_sparse_) return;
  total_row_bytes_.fetch_sub(quant::row_bytes(codec_, row_width_, stored(key)),
                             std::memory_order_relaxed);
  total_row_nnz_.fetch_sub(quant::row_nnz(codec_, row_width_, stored(key)),
                           std::memory_order_relaxed);
}

void SimRdmaDkv::track_row(std::uint64_t key) {
  if (!track_sparse_) return;
  total_row_bytes_.fetch_add(quant::row_bytes(codec_, row_width_, stored(key)),
                             std::memory_order_relaxed);
  total_row_nnz_.fetch_add(quant::row_nnz(codec_, row_width_, stored(key)),
                           std::memory_order_relaxed);
}

double SimRdmaDkv::avg_row_wire_bytes() const {
  if (!quant::is_sparse(codec_)) return static_cast<double>(value_bytes_);
  if (phantom_) return static_cast<double>(modeled_row_bytes_);
  return static_cast<double>(total_row_bytes_.load(std::memory_order_relaxed)) /
         static_cast<double>(num_rows());
}

double SimRdmaDkv::avg_row_nnz() const {
  if (!quant::is_sparse(codec_)) return static_cast<double>(row_width_ - 1);
  if (phantom_) return static_cast<double>(modeled_nnz_);
  return static_cast<double>(total_row_nnz_.load(std::memory_order_relaxed)) /
         static_cast<double>(num_rows());
}

void SimRdmaDkv::init_row(std::uint64_t key, std::span<const float> value) {
  SCD_REQUIRE(!phantom_, "phantom store holds no data");
  SCD_REQUIRE(key < num_rows(), "row key out of range");
  SCD_REQUIRE(value.size() == row_width_, "row width mismatch");
  untrack_row(key);
  quant::encode_row(codec_, value, stored(key), sparse_eps_);
  track_row(key);
}

std::span<const float> SimRdmaDkv::row(std::uint64_t key) const {
  SCD_REQUIRE(!phantom_, "phantom store holds no data");
  SCD_REQUIRE(codec_ == quant::RowCodec::kFloat32,
              "direct row views require the fp32 codec");
  SCD_ASSERT(key < num_rows(), "row key out of range");
  return {reinterpret_cast<const float*>(data_.data()) + key * row_width_,
          row_width_};
}

void SimRdmaDkv::read_row(std::uint64_t key, std::span<float> out) const {
  SCD_REQUIRE(!phantom_, "phantom store holds no data");
  SCD_ASSERT(key < num_rows(), "row key out of range");
  quant::decode_row(codec_, stored(key), out);
}

SimRdmaDkv::KeyTally SimRdmaDkv::tally_keys(
    unsigned shard, std::span<const std::uint64_t> keys, double now) const {
  // Epoch-stamped per-shard marks: counting distinct shards is O(batch)
  // with no clearing pass and no steady-state allocation. thread_local
  // because one store is shared by all simulated rank threads.
  static thread_local std::vector<std::uint32_t> stamp;
  static thread_local std::uint32_t epoch = 0;
  if (stamp.size() < partition_.num_shards()) {
    stamp.assign(partition_.num_shards(), 0);
    epoch = 0;
  }
  if (++epoch == 0) {  // wrapped: stale stamps could alias the new epoch
    std::fill(stamp.begin(), stamp.end(), 0u);
    epoch = 1;
  }
  KeyTally t;
  const bool remapped = !remap_.empty();
  const auto [lo, hi] = partition_.range(shard);
  // Dense codecs charge the same bytes for every row; hoist the lookup.
  const bool uniform = !quant::is_sparse(codec_);
  const std::size_t uniform_bytes = uniform ? value_bytes_ : 0;
  for (std::uint64_t key : keys) {
    SCD_ASSERT(key < num_rows(), "row key out of range");
    const std::size_t bytes = uniform ? uniform_bytes : key_bytes(key);
    unsigned owner;
    if (!remapped) {
      if (key >= lo && key < hi) {
        ++t.local;
        t.local_bytes += bytes;
        continue;
      }
      owner = partition_.owner(key);
    } else {
      owner = remap_[partition_.owner(key)];
      if (owner == shard) {
        ++t.local;
        t.local_bytes += bytes;
        continue;
      }
    }
    ++t.remote;
    t.remote_bytes += bytes;
    if (stamp[owner] != epoch) {
      stamp[owner] = epoch;
      ++t.shards_contacted;
      if (fault_ != nullptr) t.stall_s += fault_->shard_stall_s(owner, now);
    }
  }
  return t;
}

void SimRdmaDkv::install_fault(const sim::FaultHooks* hooks,
                               const std::vector<sim::SimClock>* clocks,
                               unsigned rank_offset) {
  SCD_REQUIRE(hooks == nullptr || clocks != nullptr,
              "fault hooks need the rank clocks");
  fault_ = hooks;
  clocks_ = clocks;
  rank_offset_ = rank_offset;
}

void SimRdmaDkv::install_trace(trace::TraceRecorder* recorder,
                               unsigned rank_offset) {
  trace_ = recorder;
  trace_rank_offset_ = rank_offset;
}

void SimRdmaDkv::record_batch(unsigned requester_shard,
                              std::uint64_t local_rows,
                              std::uint64_t remote_rows,
                              std::uint64_t messages, bool write) const {
  if (trace_ == nullptr) return;
  const unsigned lane = requester_shard + trace_rank_offset_;
  if (lane >= trace_->num_lanes()) return;
  trace::MetricsRegistry& metrics = trace_->metrics();
  metrics.count(write ? trace::Metric::kDkvRowsWritten
                      : trace::Metric::kDkvRowsRead,
                lane, local_rows + remote_rows);
  metrics.count(trace::Metric::kDkvRemoteRows, lane, remote_rows);
  metrics.count(trace::Metric::kDkvBatches, lane);
  metrics.count(trace::Metric::kDkvMessages, lane, messages);
}

void SimRdmaDkv::rehome_shard(unsigned shard, unsigned new_owner) {
  SCD_REQUIRE(shard < partition_.num_shards() &&
                  new_owner < partition_.num_shards(),
              "shard out of range");
  SCD_REQUIRE(shard != new_owner, "cannot re-home a shard onto itself");
  if (remap_.empty()) {
    remap_.resize(partition_.num_shards());
    for (unsigned s = 0; s < partition_.num_shards(); ++s) remap_[s] = s;
  }
  SCD_REQUIRE(remap_[new_owner] == new_owner,
              "cannot re-home onto a shard that itself moved away");
  // Chained failure: anything previously re-homed onto `shard` moves on
  // with it.
  for (unsigned& owner : remap_) {
    if (owner == shard) owner = new_owner;
  }
}

double SimRdmaDkv::rehome_cost(unsigned shard) const {
  const auto [lo, hi] = partition_.range(shard);
  return net_.transfer_time(static_cast<std::uint64_t>(
      std::llround((hi - lo) * avg_row_wire_bytes())));
}

double SimRdmaDkv::coalesced_cost(std::uint64_t local_bytes,
                                  std::uint64_t remote_bytes,
                                  std::uint64_t shards_contacted) const {
  // Local rows stream from RAM; remote rows ride one coalesced message
  // per contacted shard. The working set passed to the spread de-rater is
  // the bytes touched on the remote side. Rows move encoded, so both
  // terms charge the rows' encoded (per-row actual) bytes.
  const double local_s = node_.local_bytes_time(local_bytes);
  const double remote_s = net_.dkv_coalesced_time(
      shards_contacted, remote_bytes, remote_bytes, partition_.num_shards());
  return local_s + remote_s;
}

double SimRdmaDkv::get_rows(unsigned requester_shard,
                            std::span<const std::uint64_t> keys,
                            std::span<float> out) {
  SCD_REQUIRE(!phantom_, "phantom store: use read_cost");
  SCD_REQUIRE(out.size() == keys.size() * row_width_,
              "output buffer size mismatch");
  for (std::size_t i = 0; i < keys.size(); ++i) {
    SCD_ASSERT(keys[i] < num_rows(), "row key out of range");
    quant::decode_row(codec_, stored(keys[i]),
                      out.subspan(i * row_width_, row_width_));
  }
  const KeyTally t =
      tally_keys(requester_shard, keys, now_for(requester_shard));
  record_batch(requester_shard, t.local, t.remote, t.shards_contacted,
               /*write=*/false);
  return coalesced_cost(t.local_bytes, t.remote_bytes, t.shards_contacted) +
         t.stall_s;
}

double SimRdmaDkv::put_rows(unsigned requester_shard,
                            std::span<const std::uint64_t> keys,
                            std::span<const float> values) {
  SCD_REQUIRE(!phantom_, "phantom store: use write_cost");
  SCD_REQUIRE(values.size() == keys.size() * row_width_,
              "input buffer size mismatch");
  // Encode (re-sparsifying under the sparse codecs) before tallying so
  // the charged bytes are the bytes this write actually ships.
  for (std::size_t i = 0; i < keys.size(); ++i) {
    SCD_ASSERT(keys[i] < num_rows(), "row key out of range");
    untrack_row(keys[i]);
    quant::encode_row(codec_, values.subspan(i * row_width_, row_width_),
                      stored(keys[i]), sparse_eps_);
    track_row(keys[i]);
  }
  const KeyTally t =
      tally_keys(requester_shard, keys, now_for(requester_shard));
  record_batch(requester_shard, t.local, t.remote, t.shards_contacted,
               /*write=*/true);
  return coalesced_cost(t.local_bytes, t.remote_bytes, t.shards_contacted) +
         t.stall_s;
}

double SimRdmaDkv::get_rows_encoded(unsigned requester_shard,
                                    std::span<const std::uint64_t> keys,
                                    std::span<std::byte> out) {
  SCD_REQUIRE(!phantom_, "phantom store: use read_cost");
  SCD_REQUIRE(out.size() == keys.size() * value_bytes_,
              "output buffer size mismatch");
  for (std::size_t i = 0; i < keys.size(); ++i) {
    SCD_ASSERT(keys[i] < num_rows(), "row key out of range");
    std::memcpy(out.data() + i * value_bytes_, stored(keys[i]).data(),
                value_bytes_);
  }
  const KeyTally t =
      tally_keys(requester_shard, keys, now_for(requester_shard));
  record_batch(requester_shard, t.local, t.remote, t.shards_contacted,
               /*write=*/false);
  return coalesced_cost(t.local_bytes, t.remote_bytes, t.shards_contacted) +
         t.stall_s;
}

double SimRdmaDkv::put_rows_encoded(unsigned requester_shard,
                                    std::span<const std::uint64_t> keys,
                                    std::span<const std::byte> values) {
  SCD_REQUIRE(!phantom_, "phantom store: use write_cost");
  SCD_REQUIRE(values.size() == keys.size() * value_bytes_,
              "input buffer size mismatch");
  for (std::size_t i = 0; i < keys.size(); ++i) {
    SCD_ASSERT(keys[i] < num_rows(), "row key out of range");
    untrack_row(keys[i]);
    std::memcpy(stored(keys[i]).data(), values.data() + i * value_bytes_,
                value_bytes_);
    track_row(keys[i]);
  }
  const KeyTally t =
      tally_keys(requester_shard, keys, now_for(requester_shard));
  record_batch(requester_shard, t.local, t.remote, t.shards_contacted,
               /*write=*/true);
  return coalesced_cost(t.local_bytes, t.remote_bytes, t.shards_contacted) +
         t.stall_s;
}

double SimRdmaDkv::read_cost(unsigned requester_shard,
                             std::uint64_t local_rows,
                             std::uint64_t remote_rows) const {
  // Count-based form: without the keys, assume the remote rows spread
  // over all C - 1 peers (uniform access), so at most that many coalesced
  // messages — and never more messages than rows. This is the phantom
  // store's read operation, so it counts as a batch in the trace. Rows
  // are priced at the store's current average wire bytes (value_bytes()
  // exactly for the dense codecs).
  const std::uint64_t peers = partition_.num_shards() - 1;
  const std::uint64_t shards_contacted = std::min(remote_rows, peers);
  record_batch(requester_shard, local_rows, remote_rows, shards_contacted,
               /*write=*/false);
  const double per_row = avg_row_wire_bytes();
  return coalesced_cost(
      static_cast<std::uint64_t>(std::llround(local_rows * per_row)),
      static_cast<std::uint64_t>(std::llround(remote_rows * per_row)),
      shards_contacted);
}

double SimRdmaDkv::write_cost(unsigned requester_shard,
                              std::uint64_t local_rows,
                              std::uint64_t remote_rows) const {
  // RDMA write ~ RDMA read for payloads above 256B (Fig. 5 discussion).
  const std::uint64_t peers = partition_.num_shards() - 1;
  const std::uint64_t shards_contacted = std::min(remote_rows, peers);
  record_batch(requester_shard, local_rows, remote_rows, shards_contacted,
               /*write=*/true);
  const double per_row = avg_row_wire_bytes();
  return coalesced_cost(
      static_cast<std::uint64_t>(std::llround(local_rows * per_row)),
      static_cast<std::uint64_t>(std::llround(remote_rows * per_row)),
      shards_contacted);
}

double SimRdmaDkv::read_cost_keys(unsigned requester_shard,
                                  std::span<const std::uint64_t> keys) const {
  const KeyTally t =
      tally_keys(requester_shard, keys, now_for(requester_shard));
  return coalesced_cost(t.local_bytes, t.remote_bytes, t.shards_contacted) +
         t.stall_s;
}

double SimRdmaDkv::write_cost_keys(unsigned requester_shard,
                                   std::span<const std::uint64_t> keys) const {
  // RDMA write ~ RDMA read (see write_cost).
  return read_cost_keys(requester_shard, keys);
}

}  // namespace scd::dkv
