// LRU-cached wrapper around a DKV store.
//
// Section III-A argues that caching pi is pointless: "The distribution
// within the graph of the vertices of the mini-batch as well as the
// neighbor sets is completely random ... there is no opportunity to
// exploit data locality through caching." This wrapper exists to
// *quantify* that claim (bench_ablation): it caches rows read through it
// and reports the hit rate, which for uniformly random accesses converges
// to capacity/N — negligible for any realistic cache.
//
// Modeled time: hits cost a local memcpy (row streamed from this node's
// RAM, priced by the ComputeModel); only misses pay the inner store's
// cost. bench_ablation therefore reports time saved, not just hit rate.
//
// Cached rows are kept *encoded* in the inner store's codec: the cache
// mirrors the wire format, so a hit streams value_bytes() per row —
// quantization shrinks the cache footprint and the hit cost alike — and
// the float interface decodes at the boundary exactly like the inner
// store does.
//
// Coherence caveat: a cached row goes stale when its owner rewrites it,
// so users must drop cached copies at the same barrier where the paper's
// algorithm serializes writes. invalidate()/put_rows handle this: puts
// update the cache in place, and invalidate_all() clears it (called at
// the update_pi barrier when used inside the sampler).
#pragma once

#include <list>
#include <unordered_map>
#include <vector>

#include "dkv/dkv.h"
#include "sim/compute_model.h"
#include "trace/recorder.h"

namespace scd::dkv {

class CachedDkv final : public DkvStore {
 public:
  /// Wraps `inner` (not owned) with an LRU cache of `capacity_rows`.
  /// `node` prices the local copy a hit costs.
  CachedDkv(DkvStore& inner, std::uint64_t capacity_rows,
            const sim::ComputeModel& node = sim::ComputeModel{});

  std::uint64_t num_rows() const override { return inner_.num_rows(); }
  std::uint32_t row_width() const override { return inner_.row_width(); }
  quant::RowCodec codec() const override { return inner_.codec(); }
  std::size_t value_bytes() const override { return inner_.value_bytes(); }

  void init_row(std::uint64_t key, std::span<const float> value) override;

  double get_rows(unsigned requester_shard,
                  std::span<const std::uint64_t> keys,
                  std::span<float> out) override;

  double put_rows(unsigned requester_shard,
                  std::span<const std::uint64_t> keys,
                  std::span<const float> values) override;

  double get_rows_encoded(unsigned requester_shard,
                          std::span<const std::uint64_t> keys,
                          std::span<std::byte> out) override;

  double put_rows_encoded(unsigned requester_shard,
                          std::span<const std::uint64_t> keys,
                          std::span<const std::byte> values) override;

  double read_cost(unsigned requester_shard, std::uint64_t local_rows,
                   std::uint64_t remote_rows) const override {
    return inner_.read_cost(requester_shard, local_rows, remote_rows);
  }
  double write_cost(unsigned requester_shard, std::uint64_t local_rows,
                    std::uint64_t remote_rows) const override {
    return inner_.write_cost(requester_shard, local_rows, remote_rows);
  }
  double read_cost_keys(unsigned requester_shard,
                        std::span<const std::uint64_t> keys) const override {
    return inner_.read_cost_keys(requester_shard, keys);
  }
  double write_cost_keys(unsigned requester_shard,
                         std::span<const std::uint64_t> keys) const override {
    return inner_.write_cost_keys(requester_shard, keys);
  }
  double avg_row_wire_bytes() const override {
    return inner_.avg_row_wire_bytes();
  }
  double avg_row_nnz() const override { return inner_.avg_row_nnz(); }
  float sparse_eps() const override { return inner_.sparse_eps(); }

  /// Modeled seconds `rows` average hits cost: the cached (encoded) rows
  /// streamed from local RAM. Under the dense codecs every row charges
  /// value_bytes(); under the sparse ones the real hit path charges each
  /// cached row's actual bytes, for which this is the store-average
  /// estimate.
  double hit_cost(std::uint64_t rows) const {
    return node_.local_bytes_time(static_cast<std::uint64_t>(
        rows * inner_.avg_row_wire_bytes()));
  }

  /// Drop every cached row (stale after another shard's writes).
  void invalidate_all();

  /// Install (or clear, with nullptr) a trace recorder: get_rows counts
  /// hit and miss rows on the requester's lane (shard s -> lane
  /// s + rank_offset). The wrapped inner store is not installed here —
  /// call its install_trace separately if it has one.
  void install_trace(trace::TraceRecorder* recorder,
                     unsigned rank_offset = 1) {
    trace_ = recorder;
    trace_rank_offset_ = rank_offset;
  }

  std::uint64_t hits() const { return hits_; }
  std::uint64_t misses() const { return misses_; }
  /// Rows displaced by capacity pressure (LRU pop), also counted on the
  /// requester's lane as trace::Metric::kDkvEvictions. invalidate_all()
  /// drops are deliberate coherence flushes, not evictions, and are not
  /// counted here.
  std::uint64_t evictions() const { return evictions_; }
  double hit_rate() const {
    const std::uint64_t total = hits_ + misses_;
    return total > 0 ? static_cast<double>(hits_) /
                           static_cast<double>(total)
                     : 0.0;
  }
  std::uint64_t cached_rows() const { return map_.size(); }

 private:
  struct Entry {
    std::uint64_t key;
    std::vector<std::byte> value;  // encoded, value_bytes() long
  };

  void touch(std::list<Entry>::iterator it);
  void insert(unsigned requester_shard, std::uint64_t key,
              std::span<const std::byte> value);
  /// Shared hit/miss pass: serve hits through `on_hit(slot, encoded)`,
  /// collect misses into miss_keys_/miss_slots_, count metrics. Returns
  /// the hit cost.
  template <typename OnHit>
  double classify(unsigned requester_shard,
                  std::span<const std::uint64_t> keys, OnHit&& on_hit);

  DkvStore& inner_;
  std::uint64_t capacity_;
  sim::ComputeModel node_;
  std::list<Entry> lru_;  // front = most recent
  std::unordered_map<std::uint64_t, std::list<Entry>::iterator> map_;
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
  std::uint64_t evictions_ = 0;
  trace::TraceRecorder* trace_ = nullptr;
  unsigned trace_rank_offset_ = 1;
  // Reused per-call scratch for the miss pass.
  std::vector<std::uint64_t> miss_keys_;
  std::vector<std::size_t> miss_slots_;
  std::vector<std::byte> fetched_;
};

}  // namespace scd::dkv
