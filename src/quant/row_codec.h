// Row codecs for pi rows in the DKV and on the wire.
//
// pi rows are probability vectors with a known dynamic range, so the
// dominant DKV traffic (Section III-B of the paper) compresses well:
// fp16 halves the bytes, int8 with a per-row affine scale quarters them.
// The codec layer owns the byte layout; the DKV backends store encoded
// rows and charge the encoded byte counts through the cost models, and
// the fused kernels (core/kernels_simd.h) dequantize on the fly so a
// decoded float row never materializes on the hot path.
//
// All codecs operate on the [pi_0..pi_{K-1} | phi_sum] row layout of
// core/state.h. The trailing element (phi_sum) is kept at full fp32
// precision by the lossy codecs: it has a different scale than the pi
// entries (it is a gamma-row sum, not a probability) and folding it into
// a shared per-row range would destroy the pi resolution.
//
// Layouts (width = K+1 floats decoded):
//   kFloat32  width * 4 bytes        raw little-endian floats, bit-exact
//   kFp16     (width-1) * 2 + 4      IEEE half pi entries + fp32 tail
//   kInt8     8 + (width-1) + 4      {fp32 scale, fp32 offset} header,
//                                    one uint8 code per pi entry
//                                    (value = offset + scale * code),
//                                    then the fp32 tail
//
// encode_row/decode_row write into caller buffers and are allocation-free;
// encoded rows are plain byte sequences with no alignment requirement
// (headers are memcpy'd, so rows may be packed at value_bytes() strides).
#pragma once

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <span>
#include <string_view>

namespace scd::quant {

enum class RowCodec : std::uint8_t { kFloat32 = 0, kFp16 = 1, kInt8 = 2 };

/// Number of codecs; codec values are dense in [0, kNumCodecs).
inline constexpr std::size_t kNumCodecs = 3;

/// Short stable name ("fp32", "fp16", "int8") — used by --pi-codec, the
/// tuner's config keys, and the checkpoint format.
const char* codec_name(RowCodec codec);

/// Inverse of codec_name; throws scd::UsageError on an unknown name.
/// Accepts "fp32"/"float32", "fp16"/"half", "int8".
RowCodec codec_from_name(std::string_view name);

/// Encoded size in bytes of one row of `width` floats.
std::size_t encoded_bytes(RowCodec codec, std::uint32_t width);

/// Encode `row` (width floats) into `out` (exactly encoded_bytes() long).
void encode_row(RowCodec codec, std::span<const float> row,
                std::span<std::byte> out);

/// Decode an encoded row back into `row` (width floats). Exact for
/// kFloat32; for the lossy codecs decode(encode(x)) is within the error
/// bounds documented above (fp16: 2^-11 relative on normals; int8:
/// scale/2 absolute with scale = (max-min)/255 over the pi entries).
void decode_row(RowCodec codec, std::span<const std::byte> encoded,
                std::span<float> row);

// ---------------------------------------------------------------------------
// Portable IEEE 754 binary16 conversion (round-to-nearest-even), used by
// the kFp16 codec and by the dequant-fused kernel readers. Bit-twiddling
// only — no hardware half support required.

inline std::uint16_t float_to_half(float value) {
  std::uint32_t bits;
  std::memcpy(&bits, &value, sizeof(bits));
  const std::uint32_t sign = (bits >> 16) & 0x8000u;
  bits &= 0x7fffffffu;
  if (bits >= 0x47800000u) {  // |x| >= 65536: overflow, inf, or nan
    return static_cast<std::uint16_t>(
        bits > 0x7f800000u ? sign | 0x7e00u : sign | 0x7c00u);
  }
  if (bits >= 0x38800000u) {  // normal half
    const std::uint32_t mant = bits & 0x7fffffu;
    std::uint32_t h = (((bits >> 23) - 112u) << 10) | (mant >> 13);
    const std::uint32_t rem = mant & 0x1fffu;
    if (rem > 0x1000u || (rem == 0x1000u && (h & 1u))) ++h;  // RNE; may
    return static_cast<std::uint16_t>(sign | h);  // carry into exponent
  }
  if (bits < 0x33000000u) {  // |x| <= 2^-25 rounds to signed zero
    return static_cast<std::uint16_t>(sign);
  }
  // subnormal half: value = mant * 2^-24
  const std::uint32_t mant = (bits & 0x7fffffu) | 0x800000u;
  const std::uint32_t shift = 126u - (bits >> 23);  // in [14, 24]
  std::uint32_t h = mant >> shift;
  const std::uint32_t rem = mant & ((1u << shift) - 1u);
  const std::uint32_t halfway = 1u << (shift - 1);
  if (rem > halfway || (rem == halfway && (h & 1u))) ++h;
  return static_cast<std::uint16_t>(sign | h);
}

inline float half_to_float(std::uint16_t h) {
  const std::uint32_t sign = static_cast<std::uint32_t>(h & 0x8000u) << 16;
  std::uint32_t exp = (h >> 10) & 0x1fu;
  std::uint32_t mant = h & 0x3ffu;
  std::uint32_t bits;
  if (exp == 0x1fu) {  // inf / nan
    bits = sign | 0x7f800000u | (mant << 13);
  } else if (exp != 0) {  // normal
    bits = sign | ((exp + 112u) << 23) | (mant << 13);
  } else if (mant == 0) {  // signed zero
    bits = sign;
  } else {  // subnormal half -> normal float
    exp = 113u;
    while ((mant & 0x400u) == 0) {
      mant <<= 1;
      --exp;
    }
    bits = sign | (exp << 23) | ((mant & 0x3ffu) << 13);
  }
  float value;
  std::memcpy(&value, &bits, sizeof(value));
  return value;
}

/// kInt8 per-row header, memcpy'd to/from the front of the encoded row
/// (encoded rows are unaligned). The fp32 tail (phi_sum) sits after the
/// codes, not in the header, so the layout reads header | codes | tail.
struct Int8Header {
  float scale;
  float offset;
};
inline constexpr std::size_t kInt8HeaderBytes = 2 * sizeof(float);

}  // namespace scd::quant
