// Row codecs for pi rows in the DKV and on the wire.
//
// pi rows are probability vectors with a known dynamic range, so the
// dominant DKV traffic (Section III-B of the paper) compresses well:
// fp16 halves the bytes, int8 with a per-row affine scale quarters them.
// The codec layer owns the byte layout; the DKV backends store encoded
// rows and charge the encoded byte counts through the cost models, and
// the fused kernels (core/kernels_simd.h) dequantize on the fly so a
// decoded float row never materializes on the hot path.
//
// All codecs operate on the [pi_0..pi_{K-1} | phi_sum] row layout of
// core/state.h. The trailing element (phi_sum) is kept at full fp32
// precision by the lossy codecs: it has a different scale than the pi
// entries (it is a gamma-row sum, not a probability) and folding it into
// a shared per-row range would destroy the pi resolution.
//
// Dense layouts (width = K+1 floats decoded):
//   kFloat32  width * 4 bytes        raw little-endian floats, bit-exact
//   kFp16     (width-1) * 2 + 4      IEEE half pi entries + fp32 tail
//   kInt8     8 + (width-1) + 4      {fp32 scale, fp32 offset} header,
//                                    one uint8 code per pi entry
//                                    (value = offset + scale * code),
//                                    then the fp32 tail
//
// Sparse layouts (kSparseTopR*): as the sampler converges each pi row
// concentrates its mass on a handful of communities, so the codec keeps
// only the top-R entries covering >= (1 - eps) of the row mass:
//
//   SparseHeader { uint32 nnz; fp32 residual_mass }   8 bytes
//   nnz sorted community indices                      uint16 if K <= 65536,
//                                                     uint32 otherwise
//   nnz values in the variant's value codec           fp32 / fp16 / int8
//                                                     (int8 carries its own
//                                                     {scale, offset} over
//                                                     the kept values)
//   fp32 phi_sum tail
//
// The residual mass is spread uniformly over the K - nnz dropped entries
// on decode (epsilon = residual_mass / (K - nnz)), so the decoded row
// keeps its original mass and the sparse kernels can fold the epsilon
// term analytically instead of touching the dropped entries. When the
// adaptive selection would keep more than K/2 entries the row is stored
// dense instead: nnz is set to the sentinel value K and the payload after
// the header is exactly the value codec's dense encoding of the full row
// (including its own fp32 tail), so the fallback reuses the dense readers
// and the fully-dense worst case never regresses beyond the 8-byte header.
//
// Sparse rows are variable-size. encoded_bytes() returns the fixed slot
// CAPACITY — max(dense fallback, widest storable sparse form) — which is
// what the stores allocate and the workspaces stride by, keeping flat
// addressing and allocation-free staging. row_bytes() parses the header
// and returns the bytes a specific row actually occupies; that is the
// number every byte-proportional cost (coalesced messages, cache hits,
// snapshot wire time) charges.
//
// encode_row/decode_row write into caller buffers and are allocation-free
// after warm-up (the sparse selection scratch is thread-local, grown
// once); encoded rows are plain byte sequences with no alignment
// requirement (headers are memcpy'd, so rows may be packed at
// value_bytes() strides). Sparse encode zeroes the slot's unused suffix
// so stored bytes are deterministic.
#pragma once

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <span>
#include <string_view>

namespace scd::quant {

enum class RowCodec : std::uint8_t {
  kFloat32 = 0,
  kFp16 = 1,
  kInt8 = 2,
  kSparseTopR = 3,      // sparse indices + fp32 values
  kSparseTopRFp16 = 4,  // sparse indices + fp16 values
  kSparseTopRInt8 = 5,  // sparse indices + int8 values
};

/// Number of codecs; codec values are dense in [0, kNumCodecs).
inline constexpr std::size_t kNumCodecs = 6;

/// True for the adaptive top-R sparse variants.
inline constexpr bool is_sparse(RowCodec codec) {
  return codec == RowCodec::kSparseTopR ||
         codec == RowCodec::kSparseTopRFp16 ||
         codec == RowCodec::kSparseTopRInt8;
}

/// Dense codec a sparse variant encodes its kept values (and its dense
/// fallback payload) with; identity for the dense codecs.
inline constexpr RowCodec value_codec(RowCodec codec) {
  switch (codec) {
    case RowCodec::kSparseTopR: return RowCodec::kFloat32;
    case RowCodec::kSparseTopRFp16: return RowCodec::kFp16;
    case RowCodec::kSparseTopRInt8: return RowCodec::kInt8;
    default: return codec;
  }
}

/// Sparse variant over a dense value codec (inverse of value_codec);
/// throws scd::UsageError when `dense` is already sparse.
RowCodec sparse_codec_for(RowCodec dense);

/// Default mass tolerance of the adaptive top-R selection: keep the
/// smallest prefix of entries (by descending value) covering at least
/// (1 - eps) of the row mass.
inline constexpr float kDefaultSparseEps = 0.01f;

/// Short stable name ("fp32", "fp16", "int8", "sparse-topr",
/// "sparse-topr-fp16", "sparse-topr-int8") — used by --pi-codec, the
/// tuner's config keys, and the checkpoint format.
const char* codec_name(RowCodec codec);

/// Inverse of codec_name; throws scd::UsageError on an unknown name.
/// Accepts "fp32"/"float32", "fp16"/"half", "int8", "sparse-topr"/
/// "sparse", "sparse-topr-fp16", "sparse-topr-int8".
RowCodec codec_from_name(std::string_view name);

/// Encoded size in bytes of one row of `width` floats. For the sparse
/// codecs this is the fixed slot capacity (dense-fallback worst case),
/// not the bytes a particular row occupies — see row_bytes().
std::size_t encoded_bytes(RowCodec codec, std::uint32_t width);

/// Bytes actually occupied by one encoded row inside its capacity slot.
/// Equals encoded_bytes() for the dense codecs; parses the SparseHeader
/// for the sparse ones.
std::size_t row_bytes(RowCodec codec, std::uint32_t width,
                      std::span<const std::byte> encoded);

/// Kept pi entries of one encoded row: width-1 for the dense codecs and
/// for dense-fallback sparse rows, the stored nnz otherwise.
std::uint32_t row_nnz(RowCodec codec, std::uint32_t width,
                      std::span<const std::byte> encoded);

/// Encode `row` (width floats) into `out` (exactly encoded_bytes() long).
/// The sparse codecs use kDefaultSparseEps.
void encode_row(RowCodec codec, std::span<const float> row,
                std::span<std::byte> out);

/// Same, with an explicit sparse mass tolerance (ignored by the dense
/// codecs). The top-R selection is deterministic: entries ordered by
/// value descending with index-ascending tie-break.
void encode_row(RowCodec codec, std::span<const float> row,
                std::span<std::byte> out, float sparse_eps);

/// Decode an encoded row back into `row` (width floats). Exact for
/// kFloat32; for the lossy codecs decode(encode(x)) is within the error
/// bounds documented above (fp16: 2^-11 relative on normals; int8:
/// scale/2 absolute with scale = (max-min)/255 over the pi entries).
/// Sparse rows decode kept entries through the value codec and fill the
/// dropped ones with residual_mass / (K - nnz).
void decode_row(RowCodec codec, std::span<const std::byte> encoded,
                std::span<float> row);

// ---------------------------------------------------------------------------
// Portable IEEE 754 binary16 conversion (round-to-nearest-even), used by
// the kFp16 codec and by the dequant-fused kernel readers. Bit-twiddling
// only — no hardware half support required.

inline std::uint16_t float_to_half(float value) {
  std::uint32_t bits;
  std::memcpy(&bits, &value, sizeof(bits));
  const std::uint32_t sign = (bits >> 16) & 0x8000u;
  bits &= 0x7fffffffu;
  if (bits >= 0x47800000u) {  // |x| >= 65536: overflow, inf, or nan
    return static_cast<std::uint16_t>(
        bits > 0x7f800000u ? sign | 0x7e00u : sign | 0x7c00u);
  }
  if (bits >= 0x38800000u) {  // normal half
    const std::uint32_t mant = bits & 0x7fffffu;
    std::uint32_t h = (((bits >> 23) - 112u) << 10) | (mant >> 13);
    const std::uint32_t rem = mant & 0x1fffu;
    if (rem > 0x1000u || (rem == 0x1000u && (h & 1u))) ++h;  // RNE; may
    return static_cast<std::uint16_t>(sign | h);  // carry into exponent
  }
  if (bits < 0x33000000u) {  // |x| <= 2^-25 rounds to signed zero
    return static_cast<std::uint16_t>(sign);
  }
  // subnormal half: value = mant * 2^-24
  const std::uint32_t mant = (bits & 0x7fffffu) | 0x800000u;
  const std::uint32_t shift = 126u - (bits >> 23);  // in [14, 24]
  std::uint32_t h = mant >> shift;
  const std::uint32_t rem = mant & ((1u << shift) - 1u);
  const std::uint32_t halfway = 1u << (shift - 1);
  if (rem > halfway || (rem == halfway && (h & 1u))) ++h;
  return static_cast<std::uint16_t>(sign | h);
}

inline float half_to_float(std::uint16_t h) {
  const std::uint32_t sign = static_cast<std::uint32_t>(h & 0x8000u) << 16;
  std::uint32_t exp = (h >> 10) & 0x1fu;
  std::uint32_t mant = h & 0x3ffu;
  std::uint32_t bits;
  if (exp == 0x1fu) {  // inf / nan
    bits = sign | 0x7f800000u | (mant << 13);
  } else if (exp != 0) {  // normal
    bits = sign | ((exp + 112u) << 23) | (mant << 13);
  } else if (mant == 0) {  // signed zero
    bits = sign;
  } else {  // subnormal half -> normal float
    exp = 113u;
    while ((mant & 0x400u) == 0) {
      mant <<= 1;
      --exp;
    }
    bits = sign | (exp << 23) | ((mant & 0x3ffu) << 13);
  }
  float value;
  std::memcpy(&value, &bits, sizeof(value));
  return value;
}

/// kInt8 per-row header, memcpy'd to/from the front of the encoded row
/// (encoded rows are unaligned). The fp32 tail (phi_sum) sits after the
/// codes, not in the header, so the layout reads header | codes | tail.
struct Int8Header {
  float scale;
  float offset;
};
inline constexpr std::size_t kInt8HeaderBytes = 2 * sizeof(float);

/// Sparse per-row header, memcpy'd to/from the front of the encoded row.
/// nnz == K (the sentinel) marks the dense fallback, whose payload is the
/// value codec's full dense row encoding.
struct SparseHeader {
  std::uint32_t nnz;
  float residual_mass;
};
inline constexpr std::size_t kSparseHeaderBytes = 8;

/// Bytes per stored community index of the sparse codecs: uint16 while
/// every index 0..K-1 fits, uint32 beyond.
inline constexpr std::size_t sparse_index_bytes(std::uint32_t k) {
  return k <= 65536u ? sizeof(std::uint16_t) : sizeof(std::uint32_t);
}

/// Payload bytes (after the SparseHeader) of a sparse-form row keeping
/// `nnz` of `k` pi entries: indices + values + fp32 tail.
std::size_t sparse_payload_bytes(RowCodec codec, std::uint32_t nnz,
                                 std::uint32_t k);

}  // namespace scd::quant
