#include "quant/row_codec.h"

#include <algorithm>
#include <cmath>

#include "util/error.h"

namespace scd::quant {

const char* codec_name(RowCodec codec) {
  switch (codec) {
    case RowCodec::kFloat32:
      return "fp32";
    case RowCodec::kFp16:
      return "fp16";
    case RowCodec::kInt8:
      return "int8";
  }
  SCD_ASSERT(false, "unknown RowCodec value");
  return "?";
}

RowCodec codec_from_name(std::string_view name) {
  if (name == "fp32" || name == "float32") return RowCodec::kFloat32;
  if (name == "fp16" || name == "half") return RowCodec::kFp16;
  if (name == "int8") return RowCodec::kInt8;
  SCD_REQUIRE(false, "unknown pi codec '" + std::string(name) +
                         "' (expected fp32, fp16, or int8)");
  return RowCodec::kFloat32;  // unreachable
}

std::size_t encoded_bytes(RowCodec codec, std::uint32_t width) {
  SCD_REQUIRE(width >= 1, "row width must be at least 1");
  const std::size_t w = width;
  switch (codec) {
    case RowCodec::kFloat32:
      return w * sizeof(float);
    case RowCodec::kFp16:
      return (w - 1) * sizeof(std::uint16_t) + sizeof(float);
    case RowCodec::kInt8:
      return kInt8HeaderBytes + (w - 1) + sizeof(float);
  }
  SCD_ASSERT(false, "unknown RowCodec value");
  return 0;
}

void encode_row(RowCodec codec, std::span<const float> row,
                std::span<std::byte> out) {
  SCD_REQUIRE(!row.empty(), "cannot encode an empty row");
  SCD_REQUIRE(out.size() == encoded_bytes(codec, row.size()),
              "encoded buffer size mismatch");
  const std::size_t k = row.size() - 1;  // pi entries; row[k] is phi_sum
  switch (codec) {
    case RowCodec::kFloat32:
      std::memcpy(out.data(), row.data(), row.size_bytes());
      return;
    case RowCodec::kFp16: {
      auto* halves = out.data();
      for (std::size_t i = 0; i < k; ++i) {
        const std::uint16_t h = float_to_half(row[i]);
        std::memcpy(halves + i * sizeof(h), &h, sizeof(h));
      }
      std::memcpy(out.data() + k * sizeof(std::uint16_t), &row[k],
                  sizeof(float));
      return;
    }
    case RowCodec::kInt8: {
      float lo = k ? row[0] : 0.0f;
      float hi = lo;
      for (std::size_t i = 1; i < k; ++i) {
        lo = std::min(lo, row[i]);
        hi = std::max(hi, row[i]);
      }
      Int8Header header;
      header.offset = lo;
      header.scale = (hi - lo) / 255.0f;
      const float inv = header.scale > 0.0f ? 1.0f / header.scale : 0.0f;
      std::memcpy(out.data(), &header, kInt8HeaderBytes);
      auto* codes = out.data() + kInt8HeaderBytes;
      for (std::size_t i = 0; i < k; ++i) {
        const float q = (row[i] - header.offset) * inv + 0.5f;
        const int code =
            std::clamp(static_cast<int>(q), 0, 255);  // q >= 0 by design
        codes[i] = static_cast<std::byte>(static_cast<std::uint8_t>(code));
      }
      std::memcpy(out.data() + kInt8HeaderBytes + k, &row[k], sizeof(float));
      return;
    }
  }
  SCD_ASSERT(false, "unknown RowCodec value");
}

void decode_row(RowCodec codec, std::span<const std::byte> encoded,
                std::span<float> row) {
  SCD_REQUIRE(!row.empty(), "cannot decode into an empty row");
  SCD_REQUIRE(encoded.size() == encoded_bytes(codec, row.size()),
              "encoded buffer size mismatch");
  const std::size_t k = row.size() - 1;
  switch (codec) {
    case RowCodec::kFloat32:
      std::memcpy(row.data(), encoded.data(), row.size_bytes());
      return;
    case RowCodec::kFp16: {
      for (std::size_t i = 0; i < k; ++i) {
        std::uint16_t h;
        std::memcpy(&h, encoded.data() + i * sizeof(h), sizeof(h));
        row[i] = half_to_float(h);
      }
      std::memcpy(&row[k], encoded.data() + k * sizeof(std::uint16_t),
                  sizeof(float));
      return;
    }
    case RowCodec::kInt8: {
      Int8Header header;
      std::memcpy(&header, encoded.data(), kInt8HeaderBytes);
      const auto* codes = encoded.data() + kInt8HeaderBytes;
      for (std::size_t i = 0; i < k; ++i) {
        row[i] = header.offset +
                 header.scale * static_cast<float>(
                                    static_cast<std::uint8_t>(codes[i]));
      }
      std::memcpy(&row[k], encoded.data() + kInt8HeaderBytes + k,
                  sizeof(float));
      return;
    }
  }
  SCD_ASSERT(false, "unknown RowCodec value");
}

}  // namespace scd::quant
