#include "quant/row_codec.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "util/error.h"

namespace scd::quant {

const char* codec_name(RowCodec codec) {
  switch (codec) {
    case RowCodec::kFloat32:
      return "fp32";
    case RowCodec::kFp16:
      return "fp16";
    case RowCodec::kInt8:
      return "int8";
    case RowCodec::kSparseTopR:
      return "sparse-topr";
    case RowCodec::kSparseTopRFp16:
      return "sparse-topr-fp16";
    case RowCodec::kSparseTopRInt8:
      return "sparse-topr-int8";
  }
  SCD_ASSERT(false, "unknown RowCodec value");
  return "?";
}

RowCodec codec_from_name(std::string_view name) {
  if (name == "fp32" || name == "float32") return RowCodec::kFloat32;
  if (name == "fp16" || name == "half") return RowCodec::kFp16;
  if (name == "int8") return RowCodec::kInt8;
  if (name == "sparse-topr" || name == "sparse") return RowCodec::kSparseTopR;
  if (name == "sparse-topr-fp16") return RowCodec::kSparseTopRFp16;
  if (name == "sparse-topr-int8") return RowCodec::kSparseTopRInt8;
  SCD_REQUIRE(false, "unknown pi codec '" + std::string(name) +
                         "' (expected fp32, fp16, int8, sparse-topr,"
                         " sparse-topr-fp16, or sparse-topr-int8)");
  return RowCodec::kFloat32;  // unreachable
}

RowCodec sparse_codec_for(RowCodec dense) {
  switch (dense) {
    case RowCodec::kFloat32:
      return RowCodec::kSparseTopR;
    case RowCodec::kFp16:
      return RowCodec::kSparseTopRFp16;
    case RowCodec::kInt8:
      return RowCodec::kSparseTopRInt8;
    default:
      SCD_REQUIRE(false, "sparse_codec_for: already a sparse codec");
  }
  return RowCodec::kSparseTopR;  // unreachable
}

std::size_t sparse_payload_bytes(RowCodec codec, std::uint32_t nnz,
                                 std::uint32_t k) {
  std::size_t bytes = std::size_t{nnz} * sparse_index_bytes(k) +
                      sizeof(float);  // indices + fp32 tail
  switch (value_codec(codec)) {
    case RowCodec::kFloat32:
      bytes += std::size_t{nnz} * sizeof(float);
      break;
    case RowCodec::kFp16:
      bytes += std::size_t{nnz} * sizeof(std::uint16_t);
      break;
    case RowCodec::kInt8:
      bytes += kInt8HeaderBytes + nnz;
      break;
    default:
      SCD_ASSERT(false, "sparse value codec must be dense");
  }
  return bytes;
}

std::size_t encoded_bytes(RowCodec codec, std::uint32_t width) {
  SCD_REQUIRE(width >= 1, "row width must be at least 1");
  const std::size_t w = width;
  switch (codec) {
    case RowCodec::kFloat32:
      return w * sizeof(float);
    case RowCodec::kFp16:
      return (w - 1) * sizeof(std::uint16_t) + sizeof(float);
    case RowCodec::kInt8:
      return kInt8HeaderBytes + (w - 1) + sizeof(float);
    case RowCodec::kSparseTopR:
    case RowCodec::kSparseTopRFp16:
    case RowCodec::kSparseTopRInt8: {
      // Slot capacity: the dense fallback payload or the widest sparse
      // form the fallback rule admits (nnz <= K/2), whichever is larger.
      const std::uint32_t k = width - 1;
      const std::size_t dense = encoded_bytes(value_codec(codec), width);
      const std::size_t sparse = sparse_payload_bytes(codec, k / 2, k);
      return kSparseHeaderBytes + std::max(dense, sparse);
    }
  }
  SCD_ASSERT(false, "unknown RowCodec value");
  return 0;
}

std::size_t row_bytes(RowCodec codec, std::uint32_t width,
                      std::span<const std::byte> encoded) {
  if (!is_sparse(codec)) return encoded_bytes(codec, width);
  SCD_ASSERT(encoded.size() >= kSparseHeaderBytes, "sparse row too short");
  SparseHeader header;
  std::memcpy(&header, encoded.data(), kSparseHeaderBytes);
  const std::uint32_t k = width - 1;
  if (header.nnz >= k) {  // dense fallback sentinel
    return kSparseHeaderBytes + encoded_bytes(value_codec(codec), width);
  }
  return kSparseHeaderBytes + sparse_payload_bytes(codec, header.nnz, k);
}

std::uint32_t row_nnz(RowCodec codec, std::uint32_t width,
                      std::span<const std::byte> encoded) {
  if (!is_sparse(codec)) return width - 1;
  SCD_ASSERT(encoded.size() >= kSparseHeaderBytes, "sparse row too short");
  SparseHeader header;
  std::memcpy(&header, encoded.data(), kSparseHeaderBytes);
  return std::min(header.nnz, width - 1);
}

namespace {

/// Encode `values` (the kept entries, already gathered) with the dense
/// value codec, without a tail: fp32 floats, fp16 halves, or an int8
/// affine block over just these values. Returns bytes written.
std::size_t encode_values(RowCodec value, std::span<const float> values,
                          std::byte* out) {
  const std::size_t n = values.size();
  switch (value) {
    case RowCodec::kFloat32:
      std::memcpy(out, values.data(), n * sizeof(float));
      return n * sizeof(float);
    case RowCodec::kFp16:
      for (std::size_t i = 0; i < n; ++i) {
        const std::uint16_t h = float_to_half(values[i]);
        std::memcpy(out + i * sizeof(h), &h, sizeof(h));
      }
      return n * sizeof(std::uint16_t);
    case RowCodec::kInt8: {
      float lo = n ? values[0] : 0.0f;
      float hi = lo;
      for (std::size_t i = 1; i < n; ++i) {
        lo = std::min(lo, values[i]);
        hi = std::max(hi, values[i]);
      }
      Int8Header header;
      header.offset = lo;
      header.scale = (hi - lo) / 255.0f;
      const float inv = header.scale > 0.0f ? 1.0f / header.scale : 0.0f;
      std::memcpy(out, &header, kInt8HeaderBytes);
      auto* codes = out + kInt8HeaderBytes;
      for (std::size_t i = 0; i < n; ++i) {
        const float q = (values[i] - header.offset) * inv + 0.5f;
        const int code = std::clamp(static_cast<int>(q), 0, 255);
        codes[i] = static_cast<std::byte>(static_cast<std::uint8_t>(code));
      }
      return kInt8HeaderBytes + n;
    }
    default:
      SCD_ASSERT(false, "sparse value codec must be dense");
  }
  return 0;
}

std::size_t decode_values(RowCodec value, const std::byte* in,
                          std::span<float> values) {
  const std::size_t n = values.size();
  switch (value) {
    case RowCodec::kFloat32:
      std::memcpy(values.data(), in, n * sizeof(float));
      return n * sizeof(float);
    case RowCodec::kFp16:
      for (std::size_t i = 0; i < n; ++i) {
        std::uint16_t h;
        std::memcpy(&h, in + i * sizeof(h), sizeof(h));
        values[i] = half_to_float(h);
      }
      return n * sizeof(std::uint16_t);
    case RowCodec::kInt8: {
      Int8Header header;
      std::memcpy(&header, in, kInt8HeaderBytes);
      const auto* codes = in + kInt8HeaderBytes;
      for (std::size_t i = 0; i < n; ++i) {
        values[i] = header.offset +
                    header.scale * static_cast<float>(
                                       static_cast<std::uint8_t>(codes[i]));
      }
      return kInt8HeaderBytes + n;
    }
    default:
      SCD_ASSERT(false, "sparse value codec must be dense");
  }
  return 0;
}

/// Thread-local selection scratch: grown once per thread, so steady-state
/// encodes stay allocation-free (tests/core/zero_alloc_test.cpp).
struct SparseScratch {
  std::vector<std::uint32_t> order;
  std::vector<float> values;
};

void encode_sparse(RowCodec codec, std::span<const float> row,
                   std::span<std::byte> out, float sparse_eps) {
  const std::uint32_t k = static_cast<std::uint32_t>(row.size() - 1);
  const RowCodec value = value_codec(codec);
  const float eps = std::clamp(sparse_eps, 0.0f, 1.0f);

  thread_local SparseScratch scratch;
  scratch.order.resize(k);
  for (std::uint32_t i = 0; i < k; ++i) scratch.order[i] = i;
  // Deterministic top-R: value descending, index ascending on ties.
  std::sort(scratch.order.begin(), scratch.order.end(),
            [&row](std::uint32_t a, std::uint32_t b) {
              if (row[a] != row[b]) return row[a] > row[b];
              return a < b;
            });
  double sum = 0.0;
  for (std::uint32_t i = 0; i < k; ++i) sum += row[i];
  const double target = (1.0 - static_cast<double>(eps)) * sum;
  double kept_sum = 0.0;
  std::uint32_t nnz = 0;
  while (nnz < k && kept_sum < target) {
    kept_sum += row[scratch.order[nnz]];
    ++nnz;
  }

  if (nnz > k / 2 || sum <= 0.0) {
    // Dense fallback: sentinel header, then the value codec's full row.
    const SparseHeader header{k, 0.0f};
    std::memcpy(out.data(), &header, kSparseHeaderBytes);
    const std::size_t dense = encoded_bytes(value, k + 1);
    encode_row(value, row, out.subspan(kSparseHeaderBytes, dense));
    const std::size_t used = kSparseHeaderBytes + dense;
    std::memset(out.data() + used, 0, out.size() - used);
    return;
  }

  std::sort(scratch.order.begin(), scratch.order.begin() + nnz);
  scratch.values.resize(nnz);
  for (std::uint32_t i = 0; i < nnz; ++i) {
    scratch.values[i] = row[scratch.order[i]];
  }
  const SparseHeader header{
      nnz, static_cast<float>(std::max(0.0, sum - kept_sum))};
  std::memcpy(out.data(), &header, kSparseHeaderBytes);
  std::byte* cursor = out.data() + kSparseHeaderBytes;
  if (sparse_index_bytes(k) == sizeof(std::uint16_t)) {
    for (std::uint32_t i = 0; i < nnz; ++i) {
      const auto idx = static_cast<std::uint16_t>(scratch.order[i]);
      std::memcpy(cursor + i * sizeof(idx), &idx, sizeof(idx));
    }
    cursor += std::size_t{nnz} * sizeof(std::uint16_t);
  } else {
    std::memcpy(cursor, scratch.order.data(),
                std::size_t{nnz} * sizeof(std::uint32_t));
    cursor += std::size_t{nnz} * sizeof(std::uint32_t);
  }
  cursor += encode_values(value, scratch.values, cursor);
  std::memcpy(cursor, &row[k], sizeof(float));
  cursor += sizeof(float);
  std::memset(cursor, 0,
              static_cast<std::size_t>(out.data() + out.size() - cursor));
}

void decode_sparse(RowCodec codec, std::span<const std::byte> encoded,
                   std::span<float> row) {
  const std::uint32_t k = static_cast<std::uint32_t>(row.size() - 1);
  const RowCodec value = value_codec(codec);
  SparseHeader header;
  std::memcpy(&header, encoded.data(), kSparseHeaderBytes);
  if (header.nnz >= k) {  // dense fallback
    const std::size_t dense = encoded_bytes(value, k + 1);
    decode_row(value, encoded.subspan(kSparseHeaderBytes, dense), row);
    return;
  }
  const std::uint32_t nnz = header.nnz;
  const float eps =
      nnz < k ? header.residual_mass / static_cast<float>(k - nnz) : 0.0f;
  for (std::uint32_t i = 0; i < k; ++i) row[i] = eps;

  thread_local std::vector<float> values;
  values.resize(nnz);
  const std::byte* cursor = encoded.data() + kSparseHeaderBytes;
  const std::byte* value_start =
      cursor + std::size_t{nnz} * sparse_index_bytes(k);
  const std::size_t value_len = decode_values(value, value_start, values);
  if (sparse_index_bytes(k) == sizeof(std::uint16_t)) {
    for (std::uint32_t i = 0; i < nnz; ++i) {
      std::uint16_t idx;
      std::memcpy(&idx, cursor + i * sizeof(idx), sizeof(idx));
      row[idx] = values[i];
    }
  } else {
    for (std::uint32_t i = 0; i < nnz; ++i) {
      std::uint32_t idx;
      std::memcpy(&idx, cursor + i * sizeof(idx), sizeof(idx));
      row[idx] = values[i];
    }
  }
  std::memcpy(&row[k], value_start + value_len, sizeof(float));
}

}  // namespace

void encode_row(RowCodec codec, std::span<const float> row,
                std::span<std::byte> out) {
  encode_row(codec, row, out, kDefaultSparseEps);
}

void encode_row(RowCodec codec, std::span<const float> row,
                std::span<std::byte> out, float sparse_eps) {
  SCD_REQUIRE(!row.empty(), "cannot encode an empty row");
  SCD_REQUIRE(out.size() == encoded_bytes(codec, row.size()),
              "encoded buffer size mismatch");
  const std::size_t k = row.size() - 1;  // pi entries; row[k] is phi_sum
  switch (codec) {
    case RowCodec::kFloat32:
      std::memcpy(out.data(), row.data(), row.size_bytes());
      return;
    case RowCodec::kFp16: {
      auto* halves = out.data();
      for (std::size_t i = 0; i < k; ++i) {
        const std::uint16_t h = float_to_half(row[i]);
        std::memcpy(halves + i * sizeof(h), &h, sizeof(h));
      }
      std::memcpy(out.data() + k * sizeof(std::uint16_t), &row[k],
                  sizeof(float));
      return;
    }
    case RowCodec::kInt8: {
      float lo = k ? row[0] : 0.0f;
      float hi = lo;
      for (std::size_t i = 1; i < k; ++i) {
        lo = std::min(lo, row[i]);
        hi = std::max(hi, row[i]);
      }
      Int8Header header;
      header.offset = lo;
      header.scale = (hi - lo) / 255.0f;
      const float inv = header.scale > 0.0f ? 1.0f / header.scale : 0.0f;
      std::memcpy(out.data(), &header, kInt8HeaderBytes);
      auto* codes = out.data() + kInt8HeaderBytes;
      for (std::size_t i = 0; i < k; ++i) {
        const float q = (row[i] - header.offset) * inv + 0.5f;
        const int code =
            std::clamp(static_cast<int>(q), 0, 255);  // q >= 0 by design
        codes[i] = static_cast<std::byte>(static_cast<std::uint8_t>(code));
      }
      std::memcpy(out.data() + kInt8HeaderBytes + k, &row[k], sizeof(float));
      return;
    }
    case RowCodec::kSparseTopR:
    case RowCodec::kSparseTopRFp16:
    case RowCodec::kSparseTopRInt8:
      encode_sparse(codec, row, out, sparse_eps);
      return;
  }
  SCD_ASSERT(false, "unknown RowCodec value");
}

void decode_row(RowCodec codec, std::span<const std::byte> encoded,
                std::span<float> row) {
  SCD_REQUIRE(!row.empty(), "cannot decode into an empty row");
  SCD_REQUIRE(encoded.size() == encoded_bytes(codec, row.size()),
              "encoded buffer size mismatch");
  const std::size_t k = row.size() - 1;
  switch (codec) {
    case RowCodec::kFloat32:
      std::memcpy(row.data(), encoded.data(), row.size_bytes());
      return;
    case RowCodec::kFp16: {
      for (std::size_t i = 0; i < k; ++i) {
        std::uint16_t h;
        std::memcpy(&h, encoded.data() + i * sizeof(h), sizeof(h));
        row[i] = half_to_float(h);
      }
      std::memcpy(&row[k], encoded.data() + k * sizeof(std::uint16_t),
                  sizeof(float));
      return;
    }
    case RowCodec::kInt8: {
      Int8Header header;
      std::memcpy(&header, encoded.data(), kInt8HeaderBytes);
      const auto* codes = encoded.data() + kInt8HeaderBytes;
      for (std::size_t i = 0; i < k; ++i) {
        row[i] = header.offset +
                 header.scale * static_cast<float>(
                                    static_cast<std::uint8_t>(codes[i]));
      }
      std::memcpy(&row[k], encoded.data() + kInt8HeaderBytes + k,
                  sizeof(float));
      return;
    }
    case RowCodec::kSparseTopR:
    case RowCodec::kSparseTopRFp16:
    case RowCodec::kSparseTopRInt8:
      decode_sparse(codec, encoded, row);
      return;
  }
  SCD_ASSERT(false, "unknown RowCodec value");
}

}  // namespace scd::quant
