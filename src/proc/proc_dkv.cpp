#include "proc/proc_dkv.h"

#include <cstring>
#include <string>

#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include "comm/transport.h"
#include "proc/framing.h"
#include "util/error.h"

namespace scd::proc {

namespace {

constexpr std::uint32_t kOpGet = 1;
constexpr std::uint32_t kOpPut = 2;
constexpr std::uint32_t kOpRehome = 3;
constexpr std::uint32_t kOpShutdown = 4;

struct DkvReq {
  std::uint32_t op = 0;
  std::uint32_t pad = 0;
  std::uint64_t count = 0;
};
static_assert(sizeof(DkvReq) == 16);

void close_quiet(int& fd) {
  if (fd >= 0) {
    ::close(fd);
    fd = -1;
  }
}

}  // namespace

ProcDkv::ProcDkv(std::uint64_t num_rows, std::uint32_t row_width,
                 unsigned num_ranks, quant::RowCodec codec, float sparse_eps,
                 double recv_timeout_s)
    : partition_(num_rows, num_ranks - 1),
      row_width_(row_width),
      codec_(codec),
      value_bytes_(quant::encoded_bytes(codec, row_width)),
      sparse_eps_(sparse_eps),
      recv_timeout_s_(recv_timeout_s),
      num_ranks_(num_ranks) {
  SCD_REQUIRE(num_ranks >= 2, "proc store needs a master and >= 1 worker");
  SCD_REQUIRE(row_width >= 1, "row_width must be >= 1");
  data_.resize(num_rows * value_bytes_);
  const unsigned shards = partition_.num_shards();
  remap_ = std::make_unique<std::atomic<unsigned>[]>(shards);
  for (unsigned s = 0; s < shards; ++s) remap_[s].store(s);
  mesh_.resize(shards);
  for (unsigned s = 0; s < shards; ++s) {
    mesh_[s].resize(num_ranks);
    for (unsigned r = 0; r < num_ranks; ++r) {
      if (r == s + 1) continue;  // own-shard access is a local memcpy
      int sv[2];
      SCD_REQUIRE(::socketpair(AF_UNIX, SOCK_STREAM, 0, sv) == 0,
                  "socketpair failed");
      mesh_[s][r].client = sv[0];
      mesh_[s][r].server = sv[1];
    }
  }
}

ProcDkv::~ProcDkv() {
  if (server_.joinable()) {
    stop_.store(true);
    server_.join();
  }
  for (int& fd : client_fds_) close_quiet(fd);
  for (int& fd : serve_fds_) close_quiet(fd);
  for (auto& row : mesh_) {
    for (Channel& ch : row) {
      close_quiet(ch.client);
      close_quiet(ch.server);
    }
  }
}

void ProcDkv::attach(unsigned rank) {
  SCD_REQUIRE(rank < num_ranks_, "rank out of range");
  SCD_REQUIRE(self_ < 0, "store already attached in this process");
  const unsigned shards = partition_.num_shards();
  client_fds_.assign(shards, -1);
  serve_fds_.assign(num_ranks_, -1);
  for (unsigned s = 0; s < shards; ++s) {
    for (unsigned r = 0; r < num_ranks_; ++r) {
      Channel& ch = mesh_[s][r];
      if (r == rank) {
        client_fds_[s] = ch.client;
        ch.client = -1;
        close_quiet(ch.server);
      } else if (s + 1 == rank) {
        serve_fds_[r] = ch.server;
        ch.server = -1;
        close_quiet(ch.client);
      } else {
        close_quiet(ch.client);
        close_quiet(ch.server);
      }
    }
  }
  self_ = static_cast<int>(rank);
  if (rank >= 1) {
    server_ = std::thread([this] { serve(); });
  }
}

void ProcDkv::join_server() {
  if (server_.joinable()) server_.join();
}

void ProcDkv::shutdown_servers() {
  SCD_REQUIRE(self_ >= 0, "shutdown_servers needs an attached store");
  const DkvReq req{kOpShutdown, 0, 0};
  for (unsigned s = 0; s < partition_.num_shards(); ++s) {
    if (client_fds_[s] >= 0) {
      write_full(client_fds_[s], &req, sizeof(req));  // gone server = no-op
    }
  }
}

// ---------------------------------------------------------------------
// Server side
// ---------------------------------------------------------------------

void ProcDkv::serve() {
  std::vector<pollfd> pfds;
  std::vector<unsigned> pfd_rank;
  for (;;) {
    if (stop_.load()) return;
    pfds.clear();
    pfd_rank.clear();
    for (unsigned r = 0; r < num_ranks_; ++r) {
      if (serve_fds_[r] >= 0) {
        pfds.push_back({serve_fds_[r], POLLIN, 0});
        pfd_rank.push_back(r);
      }
    }
    if (pfds.empty()) return;  // every client hung up
    const int pr = ::poll(pfds.data(), pfds.size(), 200);
    if (pr < 0) {
      if (errno == EINTR) continue;
      return;
    }
    for (std::size_t i = 0; i < pfds.size(); ++i) {
      if ((pfds[i].revents & (POLLIN | POLLHUP | POLLERR | POLLNVAL)) == 0) {
        continue;
      }
      bool shutdown = false;
      if (!serve_one(serve_fds_[pfd_rank[i]], shutdown)) {
        close_quiet(serve_fds_[pfd_rank[i]]);
      }
      if (shutdown) return;
    }
  }
}

bool ProcDkv::serve_one(int fd, bool& shutdown) {
  DkvReq req;
  const IoStatus st = read_full(fd, &req, sizeof(req), recv_timeout_s_);
  if (st != IoStatus::kOk) return false;  // EOF: client is gone
  switch (req.op) {
    case kOpShutdown:
      shutdown = true;
      return true;
    case kOpRehome: {
      std::uint64_t args[2];
      read_full_or_throw(fd, args, sizeof(args), recv_timeout_s_,
                         "dkv rehome request");
      SCD_REQUIRE(args[0] < partition_.num_shards() &&
                      args[1] < partition_.num_shards(),
                  "rehome shard out of range");
      remap_[args[0]].store(static_cast<unsigned>(args[1]));
      const std::byte ack{1};
      return write_full(fd, &ack, sizeof(ack));
    }
    case kOpGet: {
      std::vector<std::uint64_t> keys(req.count);
      read_full_or_throw(fd, keys.data(), keys.size() * sizeof(keys[0]),
                         recv_timeout_s_, "dkv get request");
      std::vector<std::byte> reply(req.count * value_bytes_);
      {
        std::lock_guard<std::mutex> lock(data_mu_);
        for (std::uint64_t i = 0; i < req.count; ++i) {
          SCD_REQUIRE(keys[i] < partition_.num_rows(), "dkv key out of range");
          std::memcpy(reply.data() + i * value_bytes_, slot(keys[i]),
                      value_bytes_);
        }
      }
      return write_full(fd, reply.data(), reply.size());
    }
    case kOpPut: {
      std::vector<std::uint64_t> keys(req.count);
      read_full_or_throw(fd, keys.data(), keys.size() * sizeof(keys[0]),
                         recv_timeout_s_, "dkv put request");
      std::vector<std::byte> rows(req.count * value_bytes_);
      read_full_or_throw(fd, rows.data(), rows.size(), recv_timeout_s_,
                         "dkv put payload");
      {
        std::lock_guard<std::mutex> lock(data_mu_);
        for (std::uint64_t i = 0; i < req.count; ++i) {
          SCD_REQUIRE(keys[i] < partition_.num_rows(), "dkv key out of range");
          std::memcpy(slot(keys[i]), rows.data() + i * value_bytes_,
                      value_bytes_);
        }
      }
      // Synchronous ack: the writer's stage barrier must imply global
      // visibility of its puts.
      const std::byte ack{1};
      return write_full(fd, &ack, sizeof(ack));
    }
    default:
      throw comm::TransportError("unknown dkv request op " +
                                 std::to_string(req.op));
  }
}

// ---------------------------------------------------------------------
// Client side
// ---------------------------------------------------------------------

unsigned ProcDkv::effective_owner(std::uint64_t key) const {
  return remap_[partition_.owner(key)].load();
}

bool ProcDkv::row_is_local(std::uint64_t key) const {
  return self_ >= 1 &&
         effective_owner(key) == static_cast<unsigned>(self_) - 1;
}

void ProcDkv::remote_get(unsigned shard, std::span<const std::uint64_t> keys,
                         std::span<std::byte> rows) {
  const int fd = client_fds_[shard];
  SCD_REQUIRE(fd >= 0, "no channel to dkv shard " + std::to_string(shard));
  const std::string what = "dkv shard " + std::to_string(shard);
  const DkvReq req{kOpGet, 0, keys.size()};
  write_full_or_throw(fd, &req, sizeof(req), what);
  write_full_or_throw(fd, keys.data(), keys.size_bytes(), what);
  read_full_or_throw(fd, rows.data(), keys.size() * value_bytes_,
                     recv_timeout_s_, what);
}

void ProcDkv::remote_put(unsigned shard, std::span<const std::uint64_t> keys,
                         std::span<const std::byte> rows) {
  const int fd = client_fds_[shard];
  SCD_REQUIRE(fd >= 0, "no channel to dkv shard " + std::to_string(shard));
  const std::string what = "dkv shard " + std::to_string(shard);
  const DkvReq req{kOpPut, 0, keys.size()};
  write_full_or_throw(fd, &req, sizeof(req), what);
  write_full_or_throw(fd, keys.data(), keys.size_bytes(), what);
  write_full_or_throw(fd, rows.data(), keys.size() * value_bytes_, what);
  std::byte ack;
  read_full_or_throw(fd, &ack, sizeof(ack), recv_timeout_s_, what);
}

void ProcDkv::route_get(std::span<const std::uint64_t> keys, std::byte* out) {
  const unsigned shards = partition_.num_shards();
  const unsigned own =
      self_ >= 1 ? static_cast<unsigned>(self_) - 1 : shards;  // none
  // Counting sort of the batch by effective owner: one coalesced request
  // per contacted shard, mirroring the modeled store's message count.
  std::vector<std::uint64_t> counts(shards + 1, 0);
  for (std::uint64_t key : keys) ++counts[effective_owner(key)];
  std::vector<std::uint64_t> offset(shards + 1, 0);
  for (unsigned s = 1; s <= shards; ++s) {
    offset[s] = offset[s - 1] + counts[s - 1];
  }
  group_keys_.resize(keys.size());
  group_slot_.resize(keys.size());
  std::vector<std::uint64_t> cursor = offset;
  for (std::size_t i = 0; i < keys.size(); ++i) {
    const std::uint64_t at = cursor[effective_owner(keys[i])]++;
    group_keys_[at] = keys[i];
    group_slot_[at] = static_cast<std::uint32_t>(i);
  }
  for (unsigned s = 0; s < shards; ++s) {
    const std::uint64_t begin = offset[s];
    const std::uint64_t n = counts[s];
    if (n == 0) continue;
    if (s == own || self_ < 0) {
      std::lock_guard<std::mutex> lock(data_mu_);
      for (std::uint64_t i = begin; i < begin + n; ++i) {
        std::memcpy(out + group_slot_[i] * value_bytes_,
                    slot(group_keys_[i]), value_bytes_);
      }
      continue;
    }
    stage_.resize(n * value_bytes_);
    remote_get(s, {group_keys_.data() + begin, n}, stage_);
    for (std::uint64_t i = 0; i < n; ++i) {
      std::memcpy(out + group_slot_[begin + i] * value_bytes_,
                  stage_.data() + i * value_bytes_, value_bytes_);
    }
  }
}

void ProcDkv::route_put(std::span<const std::uint64_t> keys,
                        const std::byte* values) {
  const unsigned shards = partition_.num_shards();
  const unsigned own =
      self_ >= 1 ? static_cast<unsigned>(self_) - 1 : shards;
  std::vector<std::uint64_t> counts(shards + 1, 0);
  for (std::uint64_t key : keys) ++counts[effective_owner(key)];
  std::vector<std::uint64_t> offset(shards + 1, 0);
  for (unsigned s = 1; s <= shards; ++s) {
    offset[s] = offset[s - 1] + counts[s - 1];
  }
  group_keys_.resize(keys.size());
  group_slot_.resize(keys.size());
  std::vector<std::uint64_t> cursor = offset;
  for (std::size_t i = 0; i < keys.size(); ++i) {
    const std::uint64_t at = cursor[effective_owner(keys[i])]++;
    group_keys_[at] = keys[i];
    group_slot_[at] = static_cast<std::uint32_t>(i);
  }
  for (unsigned s = 0; s < shards; ++s) {
    const std::uint64_t begin = offset[s];
    const std::uint64_t n = counts[s];
    if (n == 0) continue;
    if (s == own || self_ < 0) {
      std::lock_guard<std::mutex> lock(data_mu_);
      for (std::uint64_t i = begin; i < begin + n; ++i) {
        std::memcpy(slot(group_keys_[i]),
                    values + group_slot_[i] * value_bytes_, value_bytes_);
      }
      continue;
    }
    stage_.resize(n * value_bytes_);
    for (std::uint64_t i = 0; i < n; ++i) {
      std::memcpy(stage_.data() + i * value_bytes_,
                  values + group_slot_[begin + i] * value_bytes_,
                  value_bytes_);
    }
    remote_put(s, {group_keys_.data() + begin, n}, stage_);
  }
}

// ---------------------------------------------------------------------
// DkvStore
// ---------------------------------------------------------------------

void ProcDkv::init_row(std::uint64_t key, std::span<const float> value) {
  SCD_REQUIRE(key < partition_.num_rows(), "key out of range");
  SCD_REQUIRE(value.size() == row_width_, "row width mismatch");
  if (self_ < 0) {
    // Launcher, pre-fork: write the shared initial image directly.
    quant::encode_row(codec_, value, {slot(key), value_bytes_}, sparse_eps_);
    return;
  }
  // Attached (the FT rollback restore): route through the effective
  // owner so the heir's stale copy-on-write image gets rewritten.
  encode_scratch_.resize(value_bytes_);
  quant::encode_row(codec_, value, encode_scratch_, sparse_eps_);
  route_put({&key, 1}, encode_scratch_.data());
}

double ProcDkv::get_rows(unsigned /*requester_shard*/,
                         std::span<const std::uint64_t> keys,
                         std::span<float> out) {
  SCD_REQUIRE(out.size() == keys.size() * row_width_, "output size mismatch");
  io_stage_.resize(keys.size() * value_bytes_);
  route_get(keys, io_stage_.data());
  for (std::size_t i = 0; i < keys.size(); ++i) {
    quant::decode_row(
        codec_,
        {io_stage_.data() + i * value_bytes_, value_bytes_},
        out.subspan(i * row_width_, row_width_));
  }
  return 0.0;
}

double ProcDkv::put_rows(unsigned /*requester_shard*/,
                         std::span<const std::uint64_t> keys,
                         std::span<const float> values) {
  SCD_REQUIRE(values.size() == keys.size() * row_width_,
              "value size mismatch");
  io_stage_.resize(keys.size() * value_bytes_);
  for (std::size_t i = 0; i < keys.size(); ++i) {
    quant::encode_row(codec_, values.subspan(i * row_width_, row_width_),
                      {io_stage_.data() + i * value_bytes_, value_bytes_},
                      sparse_eps_);
  }
  route_put(keys, io_stage_.data());
  return 0.0;
}

double ProcDkv::get_rows_encoded(unsigned /*requester_shard*/,
                                 std::span<const std::uint64_t> keys,
                                 std::span<std::byte> out) {
  SCD_REQUIRE(out.size() >= keys.size() * value_bytes_,
              "output size mismatch");
  route_get(keys, out.data());
  return 0.0;
}

double ProcDkv::put_rows_encoded(unsigned /*requester_shard*/,
                                 std::span<const std::uint64_t> keys,
                                 std::span<const std::byte> values) {
  SCD_REQUIRE(values.size() >= keys.size() * value_bytes_,
              "value size mismatch");
  route_put(keys, values.data());
  return 0.0;
}

// ---------------------------------------------------------------------
// ShardedDkv
// ---------------------------------------------------------------------

std::span<const float> ProcDkv::row(std::uint64_t key) const {
  SCD_REQUIRE(codec_ == quant::RowCodec::kFloat32,
              "direct row views need the fp32 codec; use read_row");
  SCD_REQUIRE(key < partition_.num_rows(), "key out of range");
  SCD_REQUIRE(self_ < 0 || pulled_ || row_is_local(key),
              "row() on the proc backend is local-only; pull_all_rows() "
              "first or use read_row");
  return {reinterpret_cast<const float*>(slot(key)), row_width_};
}

void ProcDkv::read_row(std::uint64_t key, std::span<float> out) const {
  SCD_REQUIRE(key < partition_.num_rows(), "key out of range");
  SCD_REQUIRE(out.size() == row_width_, "row width mismatch");
  if (self_ < 0 || pulled_ || row_is_local(key)) {
    std::lock_guard<std::mutex> lock(data_mu_);
    quant::decode_row(codec_, {slot(key), value_bytes_}, out);
    return;
  }
  // Remote single-row fetch (the master's mid-run checkpoint snapshot);
  // sockets make this logically non-const but observably pure.
  std::vector<std::byte> enc(value_bytes_);
  const unsigned owner = effective_owner(key);
  const_cast<ProcDkv*>(this)->remote_get(owner, {&key, 1}, enc);
  quant::decode_row(codec_, enc, out);
}

void ProcDkv::rehome_shard(unsigned shard, unsigned new_owner) {
  SCD_REQUIRE(shard < partition_.num_shards() &&
                  new_owner < partition_.num_shards(),
              "shard out of range");
  remap_[shard].store(new_owner);
  if (self_ < 0) return;
  // Fan the remap out to every server so workers route consistently; a
  // server whose process already died is skipped (its shard is exactly
  // the one being re-homed).
  const DkvReq req{kOpRehome, 0, 2};
  const std::uint64_t args[2] = {shard, new_owner};
  for (unsigned s = 0; s < partition_.num_shards(); ++s) {
    const int fd = client_fds_[s];
    if (fd < 0) continue;
    if (!write_full(fd, &req, sizeof(req)) ||
        !write_full(fd, args, sizeof(args))) {
      continue;
    }
    std::byte ack;
    read_full(fd, &ack, sizeof(ack), recv_timeout_s_);  // EOF = server gone
  }
}

void ProcDkv::pull_all_rows() {
  SCD_REQUIRE(self_ >= 0, "pull_all_rows needs an attached store");
  // Re-homing moves whole shards, so each original block is wholly owned
  // by one (possibly re-homed) server: one bulk GET per block.
  std::vector<std::uint64_t> keys;
  for (unsigned o = 0; o < partition_.num_shards(); ++o) {
    const auto [begin, end] = partition_.range(o);
    if (begin == end) continue;
    const unsigned target = remap_[o].load();
    keys.resize(end - begin);
    for (std::uint64_t k = begin; k < end; ++k) keys[k - begin] = k;
    if (self_ >= 1 && target == static_cast<unsigned>(self_) - 1) {
      continue;  // already local
    }
    std::lock_guard<std::mutex> lock(data_mu_);
    remote_get(target, keys, {slot(begin), keys.size() * value_bytes_});
  }
  pulled_ = true;
}

}  // namespace scd::proc
