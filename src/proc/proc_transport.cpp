#include "proc/proc_transport.h"

#include <algorithm>
#include <cstring>
#include <string>

#include <sys/socket.h>
#include <unistd.h>

#include "proc/framing.h"
#include "util/error.h"

namespace scd::proc {

namespace {

/// Reserved tag of the abort poison frame; regular traffic never uses
/// negative tags.
constexpr int kAbortTag = -1;

/// Base of the reserved collective tag range, far above any sampler tag.
constexpr int kCollTagBase = 0x40000000;

constexpr unsigned kOpBarrierUp = 0;
constexpr unsigned kOpBarrierDown = 1;
constexpr unsigned kOpReduceUp = 2;
constexpr unsigned kOpReduceDown = 3;
constexpr unsigned kOpBcast = 4;
constexpr unsigned kNumCollOps = 5;

unsigned lowest_set_bit(unsigned x) { return x & (~x + 1u); }

void close_quiet(int& fd) {
  if (fd >= 0) {
    ::close(fd);
    fd = -1;
  }
}

}  // namespace

ProcTransport::ProcTransport(unsigned num_ranks, const Options& options)
    : num_ranks_(num_ranks), options_(options) {
  SCD_REQUIRE(num_ranks >= 1, "transport needs at least one rank");
  ends_.assign(num_ranks, std::vector<int>(num_ranks, -1));
  for (unsigned a = 0; a < num_ranks; ++a) {
    for (unsigned b = a + 1; b < num_ranks; ++b) {
      int sv[2];
      SCD_REQUIRE(::socketpair(AF_UNIX, SOCK_STREAM, 0, sv) == 0,
                  "socketpair failed");
      ends_[a][b] = sv[0];
      ends_[b][a] = sv[1];
    }
  }
}

ProcTransport::~ProcTransport() {
  if (self_ >= 0) {
    for (Peer& peer : peers_) close_quiet(peer.fd);
    return;
  }
  for (auto& row : ends_) {
    for (int& fd : row) close_quiet(fd);
  }
}

void ProcTransport::attach(unsigned self) {
  SCD_REQUIRE(self < num_ranks_, "rank out of range");
  SCD_REQUIRE(self_ < 0, "transport already attached in this process");
  peers_.resize(num_ranks_);
  for (unsigned a = 0; a < num_ranks_; ++a) {
    for (unsigned b = 0; b < num_ranks_; ++b) {
      if (a == self) {
        peers_[b].fd = ends_[a][b];
      } else {
        close_quiet(ends_[a][b]);
      }
      ends_[a][b] = -1;
    }
  }
  self_ = static_cast<int>(self);
}

unsigned ProcTransport::self() const {
  SCD_REQUIRE(self_ >= 0, "transport not attached");
  return static_cast<unsigned>(self_);
}

void ProcTransport::send_raw(unsigned from, unsigned to, int tag,
                             std::vector<std::byte> payload,
                             std::uint64_t /*logical_bytes*/) {
  SCD_REQUIRE(from < num_ranks_ && to < num_ranks_, "rank out of range");
  SCD_ASSERT(from == self(), "proc transport sends only from self");
  SCD_REQUIRE(to != from, "self-send is not supported");
  Peer& peer = peers_[to];
  if (peer.fd < 0 || self_closed_) {
    recycle_buffer(std::move(payload));
    return;  // messages to (or from) the dead vanish, as in sim
  }
  const FrameHeader header{kFrameMagic, tag, payload.size()};
  bool alive = write_full(peer.fd, &header, sizeof(header));
  if (alive && !payload.empty()) {
    alive = write_full(peer.fd, payload.data(), payload.size());
  }
  if (!alive) peer.dead = true;  // dropped, like a send to a crashed rank
  recycle_buffer(std::move(payload));
}

std::optional<std::vector<std::byte>> ProcTransport::take_pending(
    unsigned from, int tag) {
  auto it = peers_[from].pending.find(tag);
  if (it == peers_[from].pending.end() || it->second.empty()) {
    return std::nullopt;
  }
  std::vector<std::byte> payload = std::move(it->second.front());
  it->second.pop_front();
  return payload;
}

bool ProcTransport::pump(unsigned from) {
  Peer& peer = peers_[from];
  SCD_REQUIRE(peer.fd >= 0, "pump on a closed peer");
  FrameHeader header;
  const IoStatus st =
      read_full(peer.fd, &header, sizeof(header), options_.recv_timeout_s);
  if (st == IoStatus::kEof) {
    peer.dead = true;
    close_quiet(peer.fd);
    return false;
  }
  if (st == IoStatus::kTimeout) {
    throw comm::TransportError("recv from rank " + std::to_string(from) +
                               " timed out");
  }
  SCD_REQUIRE(header.magic == kFrameMagic, "corrupt frame header");
  if (header.tag == kAbortTag) {
    throw comm::TransportError("transport aborted by rank " +
                               std::to_string(from));
  }
  std::vector<std::byte> payload = acquire_buffer();
  payload.resize(header.payload_bytes);
  if (!payload.empty()) {
    read_full_or_throw(peer.fd, payload.data(), payload.size(),
                       options_.recv_timeout_s,
                       "frame body from rank " + std::to_string(from));
  }
  peer.pending[header.tag].push_back(std::move(payload));
  return true;
}

std::vector<std::byte> ProcTransport::recv_raw(unsigned self, unsigned from,
                                               int tag) {
  SCD_ASSERT(self == this->self(), "proc transport receives only for self");
  SCD_REQUIRE(from < num_ranks_ && from != self, "rank out of range");
  for (;;) {
    if (auto hit = take_pending(from, tag)) return std::move(*hit);
    if (peers_[from].dead) {
      throw comm::TransportError("recv from dead rank " +
                                 std::to_string(from));
    }
    pump(from);
  }
}

std::optional<std::vector<std::byte>> ProcTransport::recv_bytes_or_dead(
    unsigned self, unsigned from, int tag) {
  SCD_ASSERT(self == this->self(), "proc transport receives only for self");
  SCD_REQUIRE(from < num_ranks_ && from != self, "rank out of range");
  for (;;) {
    if (auto hit = take_pending(from, tag)) return std::move(*hit);
    if (peers_[from].dead) return std::nullopt;
    if (!pump(from)) {
      // EOF: everything the peer sent before dying is parked now; one
      // last look before reporting the death.
      if (auto hit = take_pending(from, tag)) return std::move(*hit);
      return std::nullopt;
    }
  }
}

std::vector<std::byte> ProcTransport::acquire_buffer() {
  if (pool_.empty()) return {};
  std::vector<std::byte> buffer = std::move(pool_.back());
  pool_.pop_back();
  buffer.clear();
  return buffer;
}

void ProcTransport::recycle_buffer(std::vector<std::byte>&& buffer) {
  if (buffer.capacity() == 0 || pool_.size() >= 64) return;
  pool_.push_back(std::move(buffer));
}

ProcTransport::Tree ProcTransport::tree_for(unsigned self,
                                            unsigned participants) const {
  Tree t;
  t.p = participants == 0 ? num_ranks_ : participants;
  SCD_REQUIRE(t.p >= 1 && t.p <= num_ranks_, "bad participant count");
  t.base = num_ranks_ - t.p;
  SCD_REQUIRE(self >= t.base, "rank is not a channel participant");
  t.rel = self - t.base;
  return t;
}

int ProcTransport::coll_tag(unsigned channel, unsigned op) {
  return kCollTagBase + static_cast<int>(channel * kNumCollOps + op);
}

std::vector<std::byte> ProcTransport::tree_gather(
    const Tree& t, int tag, std::span<const std::byte> own) {
  std::vector<std::byte> acc(own.begin(), own.end());
  const unsigned lsb = t.rel == 0 ? t.p : lowest_set_bit(t.rel);
  for (unsigned mask = 1; mask < lsb; mask <<= 1) {
    const unsigned child_rel = t.rel + mask;
    if (child_rel >= t.p) break;
    std::vector<std::byte> sub = recv_raw(self(), t.base + child_rel, tag);
    acc.insert(acc.end(), sub.begin(), sub.end());
    recycle_buffer(std::move(sub));
  }
  if (t.rel != 0) {
    const unsigned parent = t.base + (t.rel - lsb);
    std::vector<std::byte> payload = acquire_buffer();
    payload.assign(acc.begin(), acc.end());
    send_raw(self(), parent, tag, std::move(payload), acc.size());
  }
  return acc;
}

void ProcTransport::tree_bcast(const Tree& t, int tag,
                               std::span<std::byte> data) {
  unsigned lsb = 0;
  if (t.rel != 0) {
    lsb = lowest_set_bit(t.rel);
    const unsigned parent = t.base + (t.rel - lsb);
    std::vector<std::byte> payload = recv_raw(self(), parent, tag);
    SCD_REQUIRE(payload.size() == data.size(),
                "collective payload size mismatch across ranks");
    if (!data.empty()) {
      std::memcpy(data.data(), payload.data(), data.size());
    }
    recycle_buffer(std::move(payload));
  } else {
    lsb = 1;
    while (lsb < t.p) lsb <<= 1;
  }
  for (unsigned mask = lsb >> 1; mask >= 1; mask >>= 1) {
    const unsigned child_rel = t.rel + mask;
    if (child_rel < t.p) {
      std::vector<std::byte> payload = acquire_buffer();
      payload.assign(data.begin(), data.end());
      send_raw(self(), t.base + child_rel, tag, std::move(payload),
               data.size());
    }
    if (mask == 1) break;
  }
}

void ProcTransport::barrier(unsigned self, unsigned channel,
                            unsigned participants) {
  const Tree t = tree_for(self, participants);
  if (t.p == 1) return;
  tree_gather(t, coll_tag(channel, kOpBarrierUp), {});
  tree_bcast(t, coll_tag(channel, kOpBarrierDown), {});
}

void ProcTransport::reduce_sum(unsigned self, unsigned root,
                               std::span<double> inout, unsigned channel,
                               unsigned participants) {
  const Tree t = tree_for(self, participants);
  SCD_REQUIRE(root == t.base,
              "proc reduce_sum roots at the channel's lowest rank");
  // One record per rank: u64 rank then the contribution doubles. Records
  // concatenate up the tree un-summed; only the root folds, in ascending
  // rank order — the exact fold SimTransport performs, so sums are
  // bit-identical across backends.
  const std::size_t record = sizeof(std::uint64_t) + inout.size_bytes();
  std::vector<std::byte> own(record);
  const std::uint64_t rank64 = self;
  std::memcpy(own.data(), &rank64, sizeof(rank64));
  if (!inout.empty()) {
    std::memcpy(own.data() + sizeof(rank64), inout.data(),
                inout.size_bytes());
  }
  std::vector<std::byte> all =
      tree_gather(t, coll_tag(channel, kOpReduceUp), own);
  if (t.rel == 0) {
    SCD_REQUIRE(all.size() == record * t.p,
                "reduce length mismatch across ranks");
    std::vector<const std::byte*> by_rank(num_ranks_, nullptr);
    for (unsigned i = 0; i < t.p; ++i) {
      const std::byte* rec = all.data() + i * record;
      std::uint64_t rank = 0;
      std::memcpy(&rank, rec, sizeof(rank));
      SCD_REQUIRE(rank >= t.base && rank < num_ranks_ &&
                      by_rank[rank] == nullptr,
                  "duplicate or out-of-channel reduce contribution");
      by_rank[rank] = rec + sizeof(rank);
    }
    std::vector<double> acc(inout.size(), 0.0);
    for (unsigned rank = 0; rank < num_ranks_; ++rank) {
      if (by_rank[rank] == nullptr) continue;
      for (std::size_t i = 0; i < acc.size(); ++i) {
        double part = 0.0;
        std::memcpy(&part, by_rank[rank] + i * sizeof(double), sizeof(part));
        acc[i] += part;
      }
    }
    std::copy(acc.begin(), acc.end(), inout.begin());
  }
  // Release barrier down the tree; non-roots leave `inout` untouched,
  // per the contract.
  tree_bcast(t, coll_tag(channel, kOpReduceDown), {});
}

void ProcTransport::broadcast(unsigned self, unsigned root,
                              std::span<std::byte> data, unsigned channel,
                              unsigned participants) {
  const Tree t = tree_for(self, participants);
  SCD_REQUIRE(root == t.base,
              "proc broadcast roots at the channel's lowest rank");
  if (t.p == 1) return;
  tree_bcast(t, coll_tag(channel, kOpBcast), data);
}

void ProcTransport::abort_all() {
  if (self_ < 0) return;
  const FrameHeader poison{kFrameMagic, kAbortTag, 0};
  for (unsigned r = 0; r < num_ranks_; ++r) {
    if (r == static_cast<unsigned>(self_)) continue;
    if (peers_[r].fd >= 0) {
      write_full(peers_[r].fd, &poison, sizeof(poison));  // gone peer = no-op
    }
  }
}

void ProcTransport::mark_rank_dead(unsigned rank) {
  SCD_REQUIRE(rank < num_ranks_, "rank out of range");
  if (self_ >= 0 && rank == static_cast<unsigned>(self_)) {
    // Announce our own scripted death: close every fd. Peers drain what
    // we already sent, then see EOF.
    for (Peer& peer : peers_) close_quiet(peer.fd);
    self_closed_ = true;
    return;
  }
  if (self_ >= 0) peers_[rank].dead = true;
}

bool ProcTransport::rank_dead(unsigned rank) const {
  SCD_REQUIRE(rank < num_ranks_, "rank out of range");
  if (self_ >= 0 && rank == static_cast<unsigned>(self_)) {
    return self_closed_;
  }
  return self_ >= 0 && peers_[rank].dead;
}

}  // namespace scd::proc
