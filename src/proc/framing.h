// Length-prefixed framing over Unix-domain stream sockets — the shared
// low-level I/O of ProcTransport and ProcDkv.
//
// Every message is one frame: a fixed 16-byte header followed by the
// payload. Stream sockets guarantee ordering per fd, so per-(from, to)
// FIFO falls out of the kernel; tag matching is layered above by the
// transport. Reads poll with a wall-clock deadline — a peer that stops
// talking surfaces as a typed timeout instead of a hung run — and EOF
// (peer closed or died) is reported distinctly so callers can implement
// the dead-rank drain semantics of the Transport contract.
#pragma once

#include <cstddef>
#include <cstdint>

#include <string>

namespace scd::proc {

inline constexpr std::uint32_t kFrameMagic = 0x53434446;  // "SCDF"

struct FrameHeader {
  std::uint32_t magic = kFrameMagic;
  std::int32_t tag = 0;
  std::uint64_t payload_bytes = 0;
};
static_assert(sizeof(FrameHeader) == 16);

enum class IoStatus {
  kOk,
  kEof,      // orderly close or peer process death
  kTimeout,  // deadline elapsed mid-read
};

/// Write exactly `len` bytes (MSG_NOSIGNAL). Returns false when the peer
/// end is gone (EPIPE/ECONNRESET) — the caller decides whether that is a
/// drop (transport sends to dead ranks vanish) or an error. Throws
/// comm::TransportError on any other failure.
bool write_full(int fd, const void* data, std::size_t len);

/// Read exactly `len` bytes, polling up to `timeout_s` wall seconds for
/// each chunk. kEof is only returned on a clean boundary (no partial
/// frame); a connection that dies mid-frame throws.
IoStatus read_full(int fd, void* data, std::size_t len, double timeout_s);

/// Throwing conveniences for protocol channels where EOF/timeouts are
/// always fatal (the DKV client side). `what` names the channel in the
/// error message.
void write_full_or_throw(int fd, const void* data, std::size_t len,
                         const std::string& what);
void read_full_or_throw(int fd, void* data, std::size_t len, double timeout_s,
                        const std::string& what);

}  // namespace scd::proc
