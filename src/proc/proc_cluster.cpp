#include "proc/proc_cluster.h"

#include <cerrno>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstring>
#include <string>

#include <sys/wait.h>
#include <unistd.h>

#include "proc/framing.h"
#include "util/error.h"

namespace scd::proc {

namespace {

constexpr std::uint32_t kStatusMagic = 0x53434453;  // "SCDS"

/// Fixed part of the child's end-of-run report; a message of msg_len
/// bytes follows.
struct StatusBlob {
  std::uint32_t magic = kStatusMagic;
  std::uint32_t err = 0;
  double final_now = 0.0;
  double phases[comm::kNumPhases] = {};
  std::uint32_t msg_len = 0;
};

void close_quiet(int& fd) {
  if (fd >= 0) {
    ::close(fd);
    fd = -1;
  }
}

double steady_seconds_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

/// Wall-clock per-rank context — see the accounting contract in
/// comm/context.h and the header comment of proc_cluster.h.
class ProcContext final : public comm::Context {
 public:
  ProcContext(unsigned rank, ProcCluster& cluster)
      : rank_(rank),
        cluster_(cluster),
        t0_(std::chrono::steady_clock::now()) {}

  unsigned rank() const override { return rank_; }
  unsigned num_ranks() const override { return cluster_.num_ranks(); }
  bool simulated() const override { return false; }

  ProcTransport& transport() override { return cluster_.transport(); }
  const comm::NetworkModel& network() const override {
    return cluster_.network();
  }
  const comm::ComputeModel& compute() const override {
    return cluster_.compute_model();
  }
  comm::PhaseStats& stats() override { return stats_; }

  double now() const override { return steady_seconds_since(t0_); }
  void advance(double) override {}   // wall time advances itself
  void advance_to(double) override {}

  void book(comm::Phase p, double seconds) override {
    stats_.add(p, seconds);
    // A booking point: whatever wall time the booked interval covered is
    // accounted for — the next charge() attributes only what follows.
    mark_ = now();
  }

  void charge(comm::Phase p, double /*modeled_seconds*/) override {
    const double t = now();
    stats_.add(p, t - mark_);
    mark_ = t;
  }

  void timed_barrier(unsigned channel = 0,
                     unsigned participants = 0) override {
    const double before = now();
    cluster_.transport().barrier(rank_, channel, participants);
    book(comm::Phase::kBarrierWait, now() - before);
  }

  trace::TraceRecorder* trace() const override { return nullptr; }
  comm::TraceSpan trace_span(trace::Stage stage,
                             std::uint64_t iteration = 0) override {
    return comm::TraceSpan(nullptr, rank_, stage, dummy_clock_, iteration);
  }
  using comm::Context::trace_span;

 private:
  unsigned rank_;
  ProcCluster& cluster_;
  std::chrono::steady_clock::time_point t0_;
  double mark_ = 0.0;
  comm::VirtualClock dummy_clock_;  // never advanced; spans are no-ops
  comm::PhaseStats stats_;
};

/// Run `fn` on `rank`, capture any error, and fill the status report.
StatusBlob run_rank(const std::function<void(comm::Context&)>& fn,
                    ProcCluster& cluster, unsigned rank, std::string& msg,
                    comm::PhaseStats* stats_out) {
  ProcContext ctx(rank, cluster);
  StatusBlob blob;
  try {
    fn(ctx);
  } catch (const std::exception& e) {
    blob.err = 1;
    msg = e.what();
  } catch (...) {
    blob.err = 1;
    msg = "unknown exception";
  }
  if (blob.err != 0) {
    // Close our sockets so blocked peers see EOF now, not a timeout.
    cluster.transport().mark_rank_dead(rank);
  }
  blob.final_now = ctx.now();
  for (std::size_t i = 0; i < comm::kNumPhases; ++i) {
    blob.phases[i] = ctx.stats().get(static_cast<comm::Phase>(i));
  }
  blob.msg_len = static_cast<std::uint32_t>(msg.size());
  if (stats_out != nullptr) *stats_out = ctx.stats();
  return blob;
}

}  // namespace

ProcCluster::ProcCluster(const Config& config)
    : config_(config),
      transport_(config.num_ranks, {.recv_timeout_s = config.recv_timeout_s}) {
  SCD_REQUIRE(config.num_ranks >= 2,
              "process cluster needs a master and >= 1 worker");
  pids_.assign(config.num_ranks, 0);
  stats_.resize(config.num_ranks);
}

comm::PhaseStats ProcCluster::max_stats() const {
  comm::PhaseStats out;
  for (const comm::PhaseStats& s : stats_) out.max_with(s);
  return out;
}

std::unique_ptr<dkv::ShardedDkv> ProcCluster::make_store(
    const comm::StoreConfig& config) {
  SCD_REQUIRE(!config.phantom,
              "cost-only (phantom) stores need the simulated backend");
  SCD_REQUIRE(!ran_, "make_store must precede run (the fork inherits it)");
  SCD_REQUIRE(store_ == nullptr, "a ProcCluster builds exactly one store");
  auto store = std::make_unique<ProcDkv>(
      config.num_rows, config.row_width, config_.num_ranks, config.codec,
      config.sparse_eps, config_.recv_timeout_s);
  store_ = store.get();
  return store;
}

void ProcCluster::install_trace(trace::TraceRecorder* recorder) {
  SCD_REQUIRE(recorder == nullptr,
              "tracing needs the simulated backend (spans sample virtual "
              "clocks)");
}

void ProcCluster::run(const std::function<void(comm::Context&)>& fn) {
  SCD_REQUIRE(!ran_, "a ProcCluster runs exactly once");
  ran_ = true;
  const unsigned n = config_.num_ranks;

  // Writes to dead peers must surface as EPIPE, not kill the process.
  struct sigaction ignore_pipe{};
  struct sigaction old_pipe{};
  ignore_pipe.sa_handler = SIG_IGN;
  ::sigaction(SIGPIPE, &ignore_pipe, &old_pipe);

  // One status pipe per worker.
  std::vector<int> status_r(n, -1);
  std::vector<int> status_w(n, -1);
  std::vector<double> final_now(n, 0.0);

  auto reap_everything = [&](bool kill_first) {
    for (unsigned r = 1; r < n; ++r) {
      if (pids_[r] <= 0) continue;
      if (kill_first) ::kill(pids_[r], SIGKILL);
      int wstatus = 0;
      while (::waitpid(pids_[r], &wstatus, 0) < 0 && errno == EINTR) {
      }
      pids_[r] = 0;
    }
    for (unsigned r = 1; r < n; ++r) {
      close_quiet(status_r[r]);
      close_quiet(status_w[r]);
    }
    ::sigaction(SIGPIPE, &old_pipe, nullptr);
  };

  try {
    for (unsigned r = 1; r < n; ++r) {
      int p[2];
      SCD_REQUIRE(::pipe(p) == 0, "status pipe creation failed");
      status_r[r] = p[0];
      status_w[r] = p[1];
    }

    // Anything buffered would be flushed once per process otherwise.
    std::fflush(stdout);
    std::fflush(stderr);

    for (unsigned r = 1; r < n; ++r) {
      const pid_t pid = ::fork();
      SCD_REQUIRE(pid >= 0, "fork failed");
      if (pid > 0) {
        pids_[r] = pid;
        // Drop our copy of the write end now: a worker that dies without
        // reporting must surface as EOF on the status pipe, not as a
        // full receive-timeout wait.
        close_quiet(status_w[r]);
        continue;
      }
      // ----- child: rank r ------------------------------------------
      for (unsigned other = 1; other < n; ++other) {
        close_quiet(status_r[other]);
        if (other != r) close_quiet(status_w[other]);
      }
      transport_.attach(r);
      if (store_ != nullptr) store_->attach(r);
      std::string msg;
      const StatusBlob blob = run_rank(fn, *this, r, msg, nullptr);
      if (write_full(status_w[r], &blob, sizeof(blob)) && !msg.empty()) {
        write_full(status_w[r], msg.data(), msg.size());
      }
      close_quiet(status_w[r]);
      // Keep the shard server answering until the master shuts it down
      // (it still serves the final pull and any re-homed reads).
      if (store_ != nullptr) store_->join_server();
      std::_Exit(0);
      // ----- end child ----------------------------------------------
    }

    // Parent = rank 0, the master.
    transport_.attach(0);
    if (store_ != nullptr) store_->attach(0);
    std::string master_msg;
    const StatusBlob master_blob =
        run_rank(fn, *this, 0, master_msg, &stats_[0]);
    final_now[0] = master_blob.final_now;
    if (master_blob.err != 0) {
      // The master failed: poison every peer so nothing stays blocked,
      // then fall through to the kill-and-reap path.
      transport_.abort_all();
      throw Error("rank 0 failed: " + master_msg);
    }

    // The run finished: localize the final pi image while the shard
    // servers are still up, then release them.
    if (store_ != nullptr) {
      store_->pull_all_rows();
      store_->shutdown_servers();
    }

    // Collect every worker's status blob, then reap.
    std::string first_failure;
    for (unsigned r = 1; r < n; ++r) {
      StatusBlob blob;
      const IoStatus st = read_full(status_r[r], &blob, sizeof(blob),
                                    config_.recv_timeout_s);
      if (st != IoStatus::kOk || blob.magic != kStatusMagic) {
        if (first_failure.empty()) {
          first_failure =
              "rank " + std::to_string(r) + " exited without a status report";
        }
        ::kill(pids_[r], SIGKILL);
        continue;
      }
      std::string msg(blob.msg_len, '\0');
      if (blob.msg_len > 0) {
        read_full_or_throw(status_r[r], msg.data(), msg.size(),
                           config_.recv_timeout_s, "worker status message");
      }
      final_now[r] = blob.final_now;
      for (std::size_t i = 0; i < comm::kNumPhases; ++i) {
        stats_[r].add(static_cast<comm::Phase>(i), blob.phases[i]);
      }
      if (blob.err != 0 && first_failure.empty()) {
        first_failure = "rank " + std::to_string(r) + " failed: " + msg;
      }
    }
    for (unsigned r = 1; r < n; ++r) {
      int wstatus = 0;
      while (::waitpid(pids_[r], &wstatus, 0) < 0 && errno == EINTR) {
      }
      pids_[r] = 0;
      if (first_failure.empty() &&
          (!WIFEXITED(wstatus) || WEXITSTATUS(wstatus) != 0)) {
        first_failure =
            "rank " + std::to_string(r) + " exited abnormally (status " +
            std::to_string(wstatus) + ")";
      }
    }
    for (unsigned r = 1; r < n; ++r) {
      close_quiet(status_r[r]);
      close_quiet(status_w[r]);
    }
    ::sigaction(SIGPIPE, &old_pipe, nullptr);
    if (!first_failure.empty()) throw DataError(first_failure);

    max_clock_ = 0.0;
    for (unsigned r = 0; r < n; ++r) {
      if (final_now[r] > max_clock_) max_clock_ = final_now[r];
    }
  } catch (...) {
    reap_everything(/*kill_first=*/true);
    throw;
  }
}

}  // namespace scd::proc
