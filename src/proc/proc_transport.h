// Multi-process transport over Unix-domain socket pairs.
//
// One ProcTransport is constructed in the launcher process *before*
// fork: the constructor builds a full socketpair mesh (one full-duplex
// pair per unordered rank pair), every child inherits all ends, and
// attach(self) closes everything that is not self's — after which each
// process holds exactly one fd per peer. Stream sockets give per-fd
// ordering, so the contract's per-(from, to, tag) FIFO reduces to tag
// matching: frames arriving under a different tag than the one a recv
// asked for are parked in a per-peer pending queue and delivered to the
// later recv that wants them, in arrival order.
//
// Liveness is the file descriptor itself. A rank that fail-stops (or is
// SIGKILLed) closes its ends — by mark_rank_dead(self) or by the kernel
// — and peers see EOF *after* draining everything it sent first, which
// is exactly the dead-rank drain semantics the FT master depends on:
// recv_bytes_or_dead returns queued frames until the stream is dry, then
// std::nullopt. Blocking receives additionally carry a wall-clock
// deadline (Options::recv_timeout_s) so a wedged peer surfaces as a
// TransportError instead of a hung CI job.
//
// Collectives are binomial trees over the channel's participant set
// (the LAST `participants` ranks, root = the lowest of them), built on
// the point-to-point frames under reserved high tags. reduce_sum ships
// raw (rank, contribution) records up the tree WITHOUT partial summing;
// the root folds all contributions in ascending rank order into a zeroed
// accumulator — bit-identical to SimTransport's fold, which is one of
// the pillars of sim-vs-proc trajectory equality.
//
// abort_all() posts a poison frame to every peer; any receive that
// encounters one throws, unwinding every blocked rank.
#pragma once

#include <cstddef>
#include <cstdint>

#include <deque>
#include <map>
#include <optional>
#include <span>
#include <vector>

#include "comm/transport.h"

namespace scd::proc {

class ProcTransport final : public comm::Transport {
 public:
  struct Options {
    /// Wall-clock deadline of one blocking receive.
    double recv_timeout_s = 120.0;
  };

  /// Builds the socketpair mesh. Call in the launcher before forking.
  explicit ProcTransport(unsigned num_ranks) : ProcTransport(num_ranks, Options{}) {}
  ProcTransport(unsigned num_ranks, const Options& options);
  ~ProcTransport() override;

  ProcTransport(const ProcTransport&) = delete;
  ProcTransport& operator=(const ProcTransport&) = delete;

  /// Adopt the perspective of `self` in this process: closes every fd
  /// that belongs to another rank. Called once per process, post-fork.
  void attach(unsigned self);
  bool attached() const { return self_ >= 0; }
  unsigned self() const;

  unsigned num_ranks() const override { return num_ranks_; }

  void send_raw(unsigned from, unsigned to, int tag,
                std::vector<std::byte> payload,
                std::uint64_t logical_bytes) override;
  std::vector<std::byte> recv_raw(unsigned self, unsigned from,
                                  int tag) override;
  std::optional<std::vector<std::byte>> recv_bytes_or_dead(
      unsigned self, unsigned from, int tag) override;

  std::vector<std::byte> acquire_buffer() override;
  void recycle_buffer(std::vector<std::byte>&& buffer) override;

  void barrier(unsigned self, unsigned channel = 0,
               unsigned participants = 0) override;
  void reduce_sum(unsigned self, unsigned root, std::span<double> inout,
                  unsigned channel = 0, unsigned participants = 0) override;
  void broadcast(unsigned self, unsigned root, std::span<std::byte> data,
                 unsigned channel = 0, unsigned participants = 0) override;
  using comm::Transport::broadcast;

  void abort_all() override;
  void mark_rank_dead(unsigned rank) override;
  bool rank_dead(unsigned rank) const override;

 private:
  struct Peer {
    int fd = -1;
    bool dead = false;  // EOF observed (or announced via mark_rank_dead)
    /// Frames received while a different tag was wanted, per tag, FIFO.
    std::map<int, std::deque<std::vector<std::byte>>> pending;
  };

  /// Collective topology of (channel, participants): ranks
  /// [num_ranks - P, num_ranks), relative index rel = rank - base,
  /// binomial tree rooted at rel 0.
  struct Tree {
    unsigned base = 0;
    unsigned p = 0;
    unsigned rel = 0;
  };
  Tree tree_for(unsigned self, unsigned participants) const;
  static int coll_tag(unsigned channel, unsigned op);

  /// Read one frame from `from`'s fd and park it under its tag. Returns
  /// false on EOF (marks the peer dead). Throws on timeout or poison.
  bool pump(unsigned from);
  std::optional<std::vector<std::byte>> take_pending(unsigned from, int tag);

  /// Gather concatenated (rank, payload) records from tree children and
  /// forward to the parent; at the root, returns all P records.
  std::vector<std::byte> tree_gather(const Tree& t, int tag,
                                     std::span<const std::byte> own);
  /// Broadcast root's bytes down the tree (empty span = pure release).
  void tree_bcast(const Tree& t, int tag, std::span<std::byte> data);

  unsigned num_ranks_;
  Options options_;
  int self_ = -1;
  bool self_closed_ = false;
  /// Pre-attach: ends_[a][b] = the fd rank a uses to reach rank b.
  std::vector<std::vector<int>> ends_;
  std::vector<Peer> peers_;  // indexed by peer rank; valid after attach
  std::vector<std::vector<std::byte>> pool_;
};

}  // namespace scd::proc
