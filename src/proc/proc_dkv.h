// Multi-process pi-row store: shard-owning server threads behind Unix
// sockets — the process-backend implementation of dkv::ShardedDkv.
//
// Life cycle mirrors ProcTransport: the launcher constructs the store
// *before* forking (allocating the row array and one client/server
// socketpair per (rank, shard) pair), every init_row issued pre-fork
// writes the shared initial image that all children inherit copy-on-
// write, and attach(rank) closes the foreign fds post-fork. Worker rank
// s + 1 then starts one server thread for shard s that answers GET/PUT/
// REHOME requests over its per-client sockets; batches target each
// contacted shard with ONE length-prefixed request (the same coalescing
// the modeled store charges for), rows travel *encoded* with the
// configured RowCodec, and a client's accesses to its own shard bypass
// the sockets entirely — a memcpy into the local array, safe under the
// algorithm's barrier-separated stage discipline.
//
// PUT requests are acknowledged synchronously, so a worker's writes are
// globally visible before it reaches the stage barrier — the ordering
// the sampler's read-after-barrier pattern relies on. Every cost query
// returns 0.0: on this backend the callers charge measured wall time,
// not modeled seconds.
//
// Fault tolerance: rehome_shard() re-points the shard->owner map on
// every *server* (REHOME fan-out with acks) and locally on the caller;
// the heir's copy-on-write image of the re-homed rows is stale by
// construction, which is why the sampler requires rollback_interval > 0
// for process-backend crash runs — the master's post-crash restore
// rewrites every row through its effective owner (init_row routes over
// the sockets once attached). A crashed rank's server thread stays
// alive until shutdown: only the worker *loop* fail-stops, matching the
// paper's fail-stop model where the store survives on other machines.
//
// After the rank functions return, the launcher calls pull_all_rows()
// to fetch the final image from the servers (through effective owners),
// then shutdown_servers(); snapshots and row views are local
// thereafter.
#pragma once

#include <cstddef>
#include <cstdint>

#include <atomic>
#include <memory>
#include <mutex>
#include <span>
#include <thread>
#include <vector>

#include "dkv/partition.h"
#include "dkv/sharded_dkv.h"

namespace scd::proc {

class ProcDkv final : public dkv::ShardedDkv {
 public:
  /// Builds storage and the socket mesh. Call in the launcher before
  /// forking. `num_ranks` counts the master: shard s is served by rank
  /// s + 1.
  ProcDkv(std::uint64_t num_rows, std::uint32_t row_width,
          unsigned num_ranks, quant::RowCodec codec, float sparse_eps,
          double recv_timeout_s);
  ~ProcDkv() override;

  ProcDkv(const ProcDkv&) = delete;
  ProcDkv& operator=(const ProcDkv&) = delete;

  /// Adopt rank `rank` in this process: closes foreign fds and, on
  /// worker ranks, starts the shard server thread.
  void attach(unsigned rank);
  bool attached() const { return self_ >= 0; }

  /// Worker rank, after its rank function returned: block until the
  /// server thread exits (on a SHUTDOWN request or when every client
  /// hung up).
  void join_server();

  /// Launcher, after the run: post a SHUTDOWN to every server.
  void shutdown_servers();

  /// Launcher, after the run and before shutdown_servers(): fetch every
  /// row from its effective owner into the local array, making row()/
  /// read_row() serve locally from the final image.
  void pull_all_rows();

  // -- DkvStore -----------------------------------------------------------
  std::uint64_t num_rows() const override { return partition_.num_rows(); }
  std::uint32_t row_width() const override { return row_width_; }
  quant::RowCodec codec() const override { return codec_; }
  std::size_t value_bytes() const override { return value_bytes_; }
  float sparse_eps() const override { return sparse_eps_; }

  void init_row(std::uint64_t key, std::span<const float> value) override;

  double get_rows(unsigned requester_shard,
                  std::span<const std::uint64_t> keys,
                  std::span<float> out) override;
  double put_rows(unsigned requester_shard,
                  std::span<const std::uint64_t> keys,
                  std::span<const float> values) override;
  double get_rows_encoded(unsigned requester_shard,
                          std::span<const std::uint64_t> keys,
                          std::span<std::byte> out) override;
  double put_rows_encoded(unsigned requester_shard,
                          std::span<const std::uint64_t> keys,
                          std::span<const std::byte> values) override;

  /// All zero: wall-clock callers measure instead of modeling.
  double read_cost(unsigned, std::uint64_t, std::uint64_t) const override {
    return 0.0;
  }
  double write_cost(unsigned, std::uint64_t, std::uint64_t) const override {
    return 0.0;
  }

  // -- ShardedDkv ---------------------------------------------------------
  const dkv::RowPartition& partition() const override { return partition_; }
  std::span<const float> row(std::uint64_t key) const override;
  void read_row(std::uint64_t key, std::span<float> out) const override;
  void rehome_shard(unsigned shard, unsigned new_owner) override;
  double rehome_cost(unsigned) const override { return 0.0; }
  unsigned effective_owner(std::uint64_t key) const override;

 private:
  /// One remote batch: `keys` (all owned by `shard` post-remap) moved
  /// to/from the contiguous staging area `rows` of keys.size() slots.
  void remote_get(unsigned shard, std::span<const std::uint64_t> keys,
                  std::span<std::byte> rows);
  void remote_put(unsigned shard, std::span<const std::uint64_t> keys,
                  std::span<const std::byte> rows);
  /// Group `keys` by effective owner and move each group, local slots
  /// via memcpy, remote groups via one coalesced request per shard.
  /// `scatter[i]` is the slot of keys[i] in the caller's buffer.
  void route_get(std::span<const std::uint64_t> keys, std::byte* out);
  void route_put(std::span<const std::uint64_t> keys, const std::byte* values);

  void serve();
  /// Handle one request frame on `fd`; false when the client hung up or
  /// asked for shutdown.
  bool serve_one(int fd, bool& shutdown);

  bool row_is_local(std::uint64_t key) const;
  std::byte* slot(std::uint64_t key) {
    return data_.data() + key * value_bytes_;
  }
  const std::byte* slot(std::uint64_t key) const {
    return data_.data() + key * value_bytes_;
  }

  dkv::RowPartition partition_;
  std::uint32_t row_width_;
  quant::RowCodec codec_;
  std::size_t value_bytes_;
  float sparse_eps_;
  double recv_timeout_s_;
  unsigned num_ranks_;
  int self_ = -1;
  bool pulled_ = false;

  std::vector<std::byte> data_;
  /// data_ guard within one process: the shard server thread and the
  /// rank's main thread both touch the array (barrier-separated across
  /// processes, but the intra-process overlap needs a real lock).
  mutable std::mutex data_mu_;

  /// Pre-attach: mesh_[shard][rank] = {client end, server end} of the
  /// rank->shard channel (unused when rank hosts the shard).
  struct Channel {
    int client = -1;
    int server = -1;
  };
  std::vector<std::vector<Channel>> mesh_;
  /// Post-attach: this rank's client fd per shard (-1 for its own).
  std::vector<int> client_fds_;
  /// Post-attach, worker ranks: server-side fd per client rank.
  std::vector<int> serve_fds_;
  std::thread server_;
  std::atomic<bool> stop_{false};

  /// shard -> effective shard, updated by REHOME on every process.
  /// Atomics because the server thread remaps while the main thread
  /// routes; a plain array would be a formal data race.
  std::unique_ptr<std::atomic<unsigned>[]> remap_;

  // Reused batch scratch (client side, single-threaded per rank).
  std::vector<std::uint64_t> group_keys_;
  std::vector<std::uint32_t> group_slot_;
  std::vector<std::byte> stage_;
  std::vector<std::byte> io_stage_;
  std::vector<std::byte> encode_scratch_;
};

}  // namespace scd::proc
