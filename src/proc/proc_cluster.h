// Multi-process cluster: the wall-clock implementation of the
// comm::Cluster seam — the same rank functions the simulator runs, on
// real forked processes.
//
// Construction wires everything that must exist before fork: the
// ProcTransport socket mesh, and (via make_store, which must also be
// called pre-run) the ProcDkv storage image and DKV socket mesh. run()
// then forks one child per *worker* rank and executes rank 0 — the
// master — in the launcher process itself, so master-side results
// (history, snapshots) land in the caller's address space with no extra
// shipping. Each child attaches the transport and store to its rank,
// runs the rank function under a ProcContext, reports a status blob
// (exit code, message, final wall clock, per-phase stats) over a
// dedicated pipe, and _exits without running the parent's teardown.
//
// ProcContext implements the wall-clock accounting regime: now() is
// real elapsed seconds, advance()/advance_to() are no-ops, and
// charge(p, modeled) IGNORES the modeled value — it books the wall time
// elapsed since the previous booking point, so the sampler's modeled
// charges double as attribution markers and stats() ends up with a
// measured per-phase breakdown comparable to the simulator's virtual
// one (bench_proc does exactly that comparison).
//
// Failure discipline: every exit path reaps every child. A child whose
// rank function throws marks its rank dead (closing its sockets, so
// peers unblock on EOF instead of a timeout) and reports the error in
// its status blob; the parent turns any non-zero status, abnormal exit,
// or unreadable status pipe into an exception after SIGKILLing and
// waitpid()ing whatever is still running. No zombies, no orphans — the
// lifecycle tests audit this with waitpid(-1).
#pragma once

#include <sys/types.h>

#include <functional>
#include <memory>
#include <vector>

#include "comm/cluster.h"
#include "comm/context.h"
#include "proc/proc_dkv.h"
#include "proc/proc_transport.h"

namespace scd::proc {

class ProcCluster final : public comm::Cluster {
 public:
  struct Config {
    unsigned num_ranks = 2;
    /// Wall-clock receive deadline for transport and DKV channels.
    double recv_timeout_s = 120.0;
    /// Attribution-only models: ProcContext::charge_* call sites pass
    /// modeled times through these, but the booked values are measured.
    comm::NetworkModel network{};
    comm::ComputeModel compute{};
  };

  explicit ProcCluster(const Config& config);

  unsigned num_ranks() const override { return config_.num_ranks; }
  bool simulated() const override { return false; }
  const Config& config() const { return config_; }

  /// Fork the workers, run `fn` on every rank (rank 0 in this process),
  /// reap everything. One-shot. Throws if any rank failed.
  void run(const std::function<void(comm::Context&)>& fn) override;

  /// Wall-clock seconds of the slowest rank, after run().
  double max_clock() const override { return max_clock_; }
  const comm::PhaseStats& stats(unsigned rank) const override {
    return stats_[rank];
  }
  comm::PhaseStats max_stats() const override;

  ProcTransport& transport() override { return transport_; }
  const comm::NetworkModel& network() const override {
    return config_.network;
  }
  const comm::ComputeModel& compute_model() const override {
    return config_.compute;
  }

  /// Build the ProcDkv (pre-run only; exactly one per cluster; phantom
  /// stores are simulator-only).
  std::unique_ptr<dkv::ShardedDkv> make_store(
      const comm::StoreConfig& config) override;

  /// Accepted for plan bookkeeping (the sampler installs its injector
  /// everywhere); the process backend prices nothing through hooks.
  void install_fault_hooks(comm::FaultHooks* hooks) override {
    fault_ = hooks;
  }
  comm::FaultHooks* fault_hooks() const { return fault_; }
  /// Tracing samples virtual clocks; only nullptr (clearing) is allowed.
  void install_trace(trace::TraceRecorder* recorder) override;

  /// After fork (during run): the pid of `rank`'s process, 0 for the
  /// master rank. The lifecycle tests SIGKILL through this.
  pid_t worker_pid(unsigned rank) const { return pids_[rank]; }

 private:
  Config config_;
  ProcTransport transport_;
  ProcDkv* store_ = nullptr;  // observer; owned by make_store's caller
  comm::FaultHooks* fault_ = nullptr;
  bool ran_ = false;

  std::vector<pid_t> pids_;
  std::vector<comm::PhaseStats> stats_;
  double max_clock_ = 0.0;
};

}  // namespace scd::proc
