#include "proc/framing.h"

#include <cerrno>
#include <cstring>

#include <poll.h>
#include <unistd.h>
#include <sys/socket.h>

#include "comm/transport.h"
#include "util/error.h"

namespace scd::proc {

bool write_full(int fd, const void* data, std::size_t len) {
  const char* p = static_cast<const char*>(data);
  while (len > 0) {
    // Sockets take send(MSG_NOSIGNAL); pipes (the status channels) need
    // plain write — SIGPIPE is ignored for the duration of the run.
    ssize_t n = ::send(fd, p, len, MSG_NOSIGNAL);
    if (n < 0 && errno == ENOTSOCK) n = ::write(fd, p, len);
    if (n < 0) {
      if (errno == EINTR) continue;
      if (errno == EPIPE || errno == ECONNRESET) return false;
      throw comm::TransportError(std::string("socket send failed: ") +
                                 std::strerror(errno));
    }
    p += n;
    len -= static_cast<std::size_t>(n);
  }
  return true;
}

IoStatus read_full(int fd, void* data, std::size_t len, double timeout_s) {
  char* p = static_cast<char*>(data);
  std::size_t got = 0;
  while (got < len) {
    struct pollfd pfd{fd, POLLIN, 0};
    const int timeout_ms =
        timeout_s <= 0.0 ? 0 : static_cast<int>(timeout_s * 1e3) + 1;
    const int pr = ::poll(&pfd, 1, timeout_ms);
    if (pr < 0) {
      if (errno == EINTR) continue;
      throw comm::TransportError(std::string("poll failed: ") +
                                 std::strerror(errno));
    }
    if (pr == 0) {
      if (got > 0) {
        throw comm::TransportError("socket read timed out mid-frame");
      }
      return IoStatus::kTimeout;
    }
    ssize_t n = ::recv(fd, p + got, len - got, 0);
    if (n < 0 && errno == ENOTSOCK) n = ::read(fd, p + got, len - got);
    if (n < 0) {
      if (errno == EINTR) continue;
      if (errno == ECONNRESET) {
        n = 0;  // a reset peer reads as EOF on a clean frame boundary
      } else {
        throw comm::TransportError(std::string("socket recv failed: ") +
                                   std::strerror(errno));
      }
    }
    if (n == 0) {
      if (got > 0) {
        throw comm::TransportError("peer closed mid-frame");
      }
      return IoStatus::kEof;
    }
    got += static_cast<std::size_t>(n);
  }
  return IoStatus::kOk;
}

void write_full_or_throw(int fd, const void* data, std::size_t len,
                         const std::string& what) {
  if (!write_full(fd, data, len)) {
    throw comm::TransportError(what + ": peer is gone");
  }
}

void read_full_or_throw(int fd, void* data, std::size_t len, double timeout_s,
                        const std::string& what) {
  switch (read_full(fd, data, len, timeout_s)) {
    case IoStatus::kOk:
      return;
    case IoStatus::kEof:
      throw comm::TransportError(what + ": peer closed the connection");
    case IoStatus::kTimeout:
      throw comm::TransportError(what + ": timed out");
  }
}

}  // namespace scd::proc
