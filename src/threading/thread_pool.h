// Fixed-size thread pool with static range partitioning.
//
// The paper parallelises update_phi / update_pi / update_beta /perplexity
// with OpenMP static scheduling over minibatch vertices. This pool mirrors
// that model: parallel_for splits [begin, end) into one contiguous chunk
// per worker, which both matches the paper and keeps per-thread RNG stream
// assignment deterministic (chunk i is always processed by stream i,
// regardless of OS scheduling).
#pragma once

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace scd::threading {

class ThreadPool {
 public:
  /// Spawns `num_threads - 1` workers; the calling thread acts as worker 0
  /// inside parallel_for, so `num_threads == 1` costs nothing.
  explicit ThreadPool(unsigned num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  unsigned num_threads() const { return num_threads_; }

  /// Run fn(thread_index, chunk_begin, chunk_end) on every thread with a
  /// static partition of [begin, end). Blocks until all chunks finish.
  /// Exceptions from workers are rethrown (first one wins).
  void parallel_for(std::uint64_t begin, std::uint64_t end,
                    const std::function<void(unsigned, std::uint64_t,
                                             std::uint64_t)>& fn);

  /// Run an arbitrary task per thread: fn(thread_index). Blocks.
  void run_on_all(const std::function<void(unsigned)>& fn);

  /// Static chunk bounds for thread t of `threads` over [begin, end).
  static std::pair<std::uint64_t, std::uint64_t> chunk_bounds(
      std::uint64_t begin, std::uint64_t end, unsigned t, unsigned threads);

 private:
  struct Task {
    // Set for each launch; workers index it by their id.
    std::function<void(unsigned)> body;
    std::uint64_t generation = 0;
  };

  void worker_main(unsigned id);
  void launch(const std::function<void(unsigned)>& body);

  unsigned num_threads_;
  std::vector<std::thread> workers_;

  std::mutex mu_;
  std::condition_variable cv_launch_;
  std::condition_variable cv_done_;
  std::function<void(unsigned)> body_;
  std::uint64_t generation_ = 0;
  unsigned pending_ = 0;
  bool stopping_ = false;
  std::exception_ptr first_error_;
};

}  // namespace scd::threading
