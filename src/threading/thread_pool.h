// Fixed-size thread pool with static range partitioning.
//
// The paper parallelises update_phi / update_pi / update_beta /perplexity
// with OpenMP static scheduling over minibatch vertices. This pool mirrors
// that model: parallel_for splits [begin, end) into one contiguous chunk
// per worker, which both matches the paper and keeps per-thread RNG stream
// assignment deterministic (chunk i is always processed by stream i,
// regardless of OS scheduling).
//
// Dispatch is a raw function pointer + context pointer rather than a
// std::function: caller lambdas of any capture size run without a heap
// allocation, which is what lets the samplers' one_iteration stay
// allocation-free in steady state (see tests/core/zero_alloc_test.cpp).
#pragma once

#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <thread>
#include <type_traits>
#include <utility>
#include <vector>

namespace scd::threading {

class ThreadPool {
 public:
  /// Spawns `num_threads - 1` workers; the calling thread acts as worker 0
  /// inside parallel_for, so `num_threads == 1` costs nothing.
  explicit ThreadPool(unsigned num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  unsigned num_threads() const { return num_threads_; }

  /// Run fn(thread_index, chunk_begin, chunk_end) on every thread with a
  /// static partition of [begin, end). Blocks until all chunks finish.
  /// Exceptions from workers are rethrown (first one wins). `fn` may be
  /// any callable; it is invoked through a pointer to the caller's own
  /// object, so no allocation or copy happens.
  template <typename Fn>
  void parallel_for(std::uint64_t begin, std::uint64_t end, Fn&& fn) {
    if (begin >= end) return;
    struct Ctx {
      std::remove_reference_t<Fn>* fn;
      std::uint64_t begin;
      std::uint64_t end;
      unsigned threads;
    } ctx{&fn, begin, end, num_threads_};
    launch(
        [](void* raw, unsigned id) {
          auto& c = *static_cast<Ctx*>(raw);
          const auto [lo, hi] = chunk_bounds(c.begin, c.end, id, c.threads);
          if (lo < hi) (*c.fn)(id, lo, hi);
        },
        &ctx);
  }

  /// Run an arbitrary task per thread: fn(thread_index). Blocks.
  template <typename Fn>
  void run_on_all(Fn&& fn) {
    launch(
        [](void* raw, unsigned id) {
          (*static_cast<std::remove_reference_t<Fn>*>(raw))(id);
        },
        &fn);
  }

  /// Static chunk bounds for thread t of `threads` over [begin, end).
  static std::pair<std::uint64_t, std::uint64_t> chunk_bounds(
      std::uint64_t begin, std::uint64_t end, unsigned t, unsigned threads);

 private:
  /// Task body: (context, thread_index). The context lives on the
  /// launching caller's stack; workers only touch it while the caller
  /// blocks in launch().
  using RawTask = void (*)(void*, unsigned);

  void worker_main(unsigned id);
  void launch(RawTask task, void* ctx);

  unsigned num_threads_;
  std::vector<std::thread> workers_;

  std::mutex mu_;
  std::condition_variable cv_launch_;
  std::condition_variable cv_done_;
  RawTask task_ = nullptr;
  void* task_ctx_ = nullptr;
  std::uint64_t generation_ = 0;
  unsigned pending_ = 0;
  bool stopping_ = false;
  std::exception_ptr first_error_;
};

}  // namespace scd::threading
