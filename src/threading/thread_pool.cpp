#include "threading/thread_pool.h"

#include <algorithm>

#include "util/error.h"

namespace scd::threading {

ThreadPool::ThreadPool(unsigned num_threads) : num_threads_(num_threads) {
  SCD_REQUIRE(num_threads >= 1, "thread pool needs at least one thread");
  workers_.reserve(num_threads - 1);
  for (unsigned id = 1; id < num_threads; ++id) {
    workers_.emplace_back([this, id] { worker_main(id); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stopping_ = true;
  }
  cv_launch_.notify_all();
  for (std::thread& t : workers_) t.join();
}

void ThreadPool::worker_main(unsigned id) {
  std::uint64_t seen = 0;
  for (;;) {
    RawTask task;
    void* ctx;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_launch_.wait(lock,
                      [&] { return stopping_ || generation_ > seen; });
      if (stopping_) return;
      seen = generation_;
      task = task_;
      ctx = task_ctx_;
    }
    try {
      task(ctx, id);
    } catch (...) {
      std::lock_guard<std::mutex> lock(mu_);
      if (!first_error_) first_error_ = std::current_exception();
    }
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (--pending_ == 0) cv_done_.notify_all();
    }
  }
}

void ThreadPool::launch(RawTask task, void* ctx) {
  if (num_threads_ == 1) {
    task(ctx, 0);
    return;
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    task_ = task;
    task_ctx_ = ctx;
    pending_ = num_threads_ - 1;
    first_error_ = nullptr;
    ++generation_;
  }
  cv_launch_.notify_all();
  // The caller participates as thread 0.
  std::exception_ptr caller_error;
  try {
    task(ctx, 0);
  } catch (...) {
    caller_error = std::current_exception();
  }
  std::unique_lock<std::mutex> lock(mu_);
  cv_done_.wait(lock, [&] { return pending_ == 0; });
  if (caller_error) std::rethrow_exception(caller_error);
  if (first_error_) std::rethrow_exception(first_error_);
}

std::pair<std::uint64_t, std::uint64_t> ThreadPool::chunk_bounds(
    std::uint64_t begin, std::uint64_t end, unsigned t, unsigned threads) {
  const std::uint64_t n = end - begin;
  const std::uint64_t base = n / threads;
  const std::uint64_t extra = n % threads;
  // The first `extra` threads get one more element each.
  const std::uint64_t lo =
      begin + t * base + std::min<std::uint64_t>(t, extra);
  const std::uint64_t hi = lo + base + (t < extra ? 1 : 0);
  return {lo, hi};
}

}  // namespace scd::threading
