// parallel_reduce and small helpers layered on ThreadPool.
#pragma once

#include <vector>

#include "threading/thread_pool.h"

namespace scd::threading {

/// Two-stage reduction as in the paper's perplexity computation: each
/// thread folds its static chunk locally (`fold`), then partials are
/// combined sequentially (`combine`). Deterministic: combination order is
/// by thread index, not completion order.
template <typename T, typename Fold, typename Combine>
T parallel_reduce(ThreadPool& pool, std::uint64_t begin, std::uint64_t end,
                  T identity, Fold fold, Combine combine) {
  std::vector<T> partials(pool.num_threads(), identity);
  pool.parallel_for(begin, end,
                    [&](unsigned t, std::uint64_t lo, std::uint64_t hi) {
                      T acc = identity;
                      for (std::uint64_t i = lo; i < hi; ++i) {
                        fold(acc, i);
                      }
                      partials[t] = acc;
                    });
  T total = identity;
  for (const T& p : partials) total = combine(total, p);
  return total;
}

}  // namespace scd::threading
