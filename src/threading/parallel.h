// parallel_reduce and small helpers layered on ThreadPool.
#pragma once

#include <vector>

#include "threading/thread_pool.h"

namespace scd::threading {

/// Hardware destructive-interference distance. Hard-coded 64 rather than
/// std::hardware_destructive_interference_size: the libstdc++ constant is
/// an ABI hazard behind a warning, and 64 is right for every x86 and most
/// ARM parts this targets.
inline constexpr std::size_t kCacheLineBytes = 64;

/// A value padded out to a cache line, so adjacent per-thread slots never
/// false-share.
template <typename T>
struct alignas(kCacheLineBytes) CacheLinePadded {
  T value;
};

/// Two-stage reduction as in the paper's perplexity computation: each
/// thread folds its static chunk locally (`fold`), then partials are
/// combined sequentially (`combine`). Deterministic: combination order is
/// by thread index, not completion order. Per-thread partial slots are
/// padded to cache-line boundaries so the final stores don't false-share.
template <typename T, typename Fold, typename Combine>
T parallel_reduce(ThreadPool& pool, std::uint64_t begin, std::uint64_t end,
                  T identity, Fold fold, Combine combine) {
  std::vector<CacheLinePadded<T>> partials(pool.num_threads(),
                                           CacheLinePadded<T>{identity});
  pool.parallel_for(begin, end,
                    [&](unsigned t, std::uint64_t lo, std::uint64_t hi) {
                      T acc = identity;
                      for (std::uint64_t i = lo; i < hi; ++i) {
                        fold(acc, i);
                      }
                      partials[t].value = acc;
                    });
  T total = identity;
  for (const CacheLinePadded<T>& p : partials) total = combine(total, p.value);
  return total;
}

}  // namespace scd::threading
