// Two-slot load/compute pipeline (the paper's "double buffering").
//
// update_phi splits its pi working set into chunks; while the compute of
// chunk c runs, the load of chunk c+1 is prefetched. In the original
// system the prefetch is an outstanding RDMA read; here the load runs on a
// helper thread of the pool (real overlap when cores are available,
// functional correctness regardless).
#pragma once

#include <cstdint>
#include <functional>

#include "threading/thread_pool.h"

namespace scd::threading {

/// Execute `load(c)` then `compute(c)` for c in [0, num_chunks), with the
/// double-buffering dependency structure: load(c+1) may run concurrently
/// with compute(c). Slot parity alternates so `load` can target
/// buffer[c % 2]. When `pipelined` is false the stages run strictly
/// back-to-back (the paper's single-buffered baseline).
class DoubleBufferPipeline {
 public:
  explicit DoubleBufferPipeline(ThreadPool& pool) : pool_(pool) {}

  void run(std::uint64_t num_chunks, bool pipelined,
           const std::function<void(std::uint64_t)>& load,
           const std::function<void(std::uint64_t)>& compute) {
    if (num_chunks == 0) return;
    if (!pipelined || pool_.num_threads() < 2) {
      for (std::uint64_t c = 0; c < num_chunks; ++c) {
        load(c);
        compute(c);
      }
      return;
    }
    // Overlap via run_on_all with two logical roles: thread 0 computes,
    // thread 1 loads ahead. A tiny handshake keeps them one chunk apart.
    load(0);
    for (std::uint64_t c = 0; c < num_chunks; ++c) {
      const bool has_next = c + 1 < num_chunks;
      pool_.run_on_all([&](unsigned id) {
        if (id == 0) {
          compute(c);
        } else if (id == 1 && has_next) {
          load(c + 1);
        }
      });
    }
  }

 private:
  ThreadPool& pool_;
};

}  // namespace scd::threading
