// Lock-free snapshot publication for read-mostly services.
//
// The serving layer answers queries against an immutable model snapshot
// while a refresh occasionally installs a new one. double_buffer.h solves
// the two-party version of this (one loader, one computer, strict
// alternation); SnapshotManager generalizes it to any number of readers
// and rare writers: readers acquire the current snapshot wait-free in the
// common case, and publish() retires the previous snapshot only after
// every reader that could possibly hold it has let go — an epoch/
// reader-count hybrid of RCU.
//
// Mechanics: a small ring of slots, each pairing an owning pointer with
// an atomic reader count. `current_` names the slot readers should use.
//   acquire(): load current_, increment that slot's reader count, then
//     re-check current_. If it still names the slot, the publisher cannot
//     retire it before the count drops (publishers drain counts only
//     AFTER redirecting current_, so a passed re-check proves the
//     increment is visible to any future drain). On a lost race the
//     reader decrements and retries — bounded by the number of concurrent
//     publishes, never by another reader, and publishes are rare.
//   publish(): install the new snapshot in a free slot, redirect
//     current_, then spin-wait the old slot's readers down to zero and
//     delete the old snapshot. The wait lives entirely on the publisher;
//     no reader ever blocks, takes a lock, or observes a torn snapshot.
//
// All atomics use seq_cst: publishes are rare and queries do O(K) work
// per acquire, so the fence cost is noise next to the correctness
// obligations (the re-check protocol above is exactly the kind of code
// where relaxed orderings go quietly wrong). TSan-clean by construction —
// tests/threading/snapshot_test.cpp hammers publish/acquire under the
// tsan preset.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <thread>
#include <utility>

#include "util/error.h"

namespace scd::threading {

template <typename T>
class SnapshotManager {
 public:
  /// Concurrent-publish headroom: one live slot, one draining slot, and
  /// two spare so a publish never waits for a free slot even while the
  /// previous retire is still draining stragglers.
  static constexpr unsigned kSlots = 4;

  /// RAII read guard. Holds the slot's reader count for its lifetime;
  /// the snapshot it points at cannot be retired while the guard lives.
  /// Movable, not copyable. retries() reports how many acquire attempts
  /// lost a race with a concurrent publish before this one succeeded
  /// (0 in the steady state — the serve bench asserts it stays bounded).
  class Ref {
   public:
    Ref() = default;
    Ref(Ref&& other) noexcept
        : readers_(std::exchange(other.readers_, nullptr)),
          snapshot_(std::exchange(other.snapshot_, nullptr)),
          retries_(other.retries_) {}
    Ref& operator=(Ref&& other) noexcept {
      if (this != &other) {
        release();
        readers_ = std::exchange(other.readers_, nullptr);
        snapshot_ = std::exchange(other.snapshot_, nullptr);
        retries_ = other.retries_;
      }
      return *this;
    }
    Ref(const Ref&) = delete;
    Ref& operator=(const Ref&) = delete;
    ~Ref() { release(); }

    const T& operator*() const { return *snapshot_; }
    const T* operator->() const { return snapshot_; }
    const T* get() const { return snapshot_; }
    explicit operator bool() const { return snapshot_ != nullptr; }
    std::uint32_t retries() const { return retries_; }

   private:
    friend class SnapshotManager;
    Ref(std::atomic<std::int64_t>* readers, const T* snapshot,
        std::uint32_t retries)
        : readers_(readers), snapshot_(snapshot), retries_(retries) {}
    void release() {
      if (readers_ != nullptr) {
        readers_->fetch_sub(1);
        readers_ = nullptr;
      }
      snapshot_ = nullptr;
    }

    std::atomic<std::int64_t>* readers_ = nullptr;
    const T* snapshot_ = nullptr;
    std::uint32_t retries_ = 0;
  };

  SnapshotManager() = default;
  explicit SnapshotManager(std::unique_ptr<const T> initial) {
    if (initial != nullptr) publish(std::move(initial));
  }

  SnapshotManager(const SnapshotManager&) = delete;
  SnapshotManager& operator=(const SnapshotManager&) = delete;

  ~SnapshotManager() {
    // No readers may be live at destruction (they hold pointers into the
    // slots); delete whatever snapshots remain installed.
    for (Slot& slot : slots_) {
      delete slot.snapshot.load();
    }
  }

  /// Acquire the current snapshot. Lock-free and non-blocking: a reader
  /// retries only while a publish redirects current_ under its feet, at
  /// most once per concurrent publish. Returns an empty Ref only before
  /// the first publish.
  Ref acquire() {
    for (std::uint32_t retries = 0;; ++retries) {
      const std::uint32_t index = current_.load();
      if (index == kNone) return Ref(nullptr, nullptr, retries);
      Slot& slot = slots_[index];
      slot.readers.fetch_add(1);
      if (current_.load() == index) {
        // The re-check proves the increment happened before any future
        // redirect-then-drain, so the publisher's drain wait covers us.
        return Ref(&slot.readers, slot.snapshot.load(), retries);
      }
      slot.readers.fetch_sub(1);  // lost the race; the slot may drain
      total_retries_.fetch_add(1, std::memory_order_relaxed);
      if (retries + 1 == kStallRetries) {
        // One acquire losing this many races in a row means publishes are
        // arriving faster than the reader can re-check — a genuine stall,
        // not the bounded once-per-publish bump. Structurally unreachable
        // outside a publish storm; the serve bench asserts it stays 0.
        stalled_.fetch_add(1, std::memory_order_relaxed);
      }
    }
  }

  /// Install `next` as the current snapshot and retire the previous one.
  /// The previous snapshot is deleted only after its reader count drains;
  /// the wait (a yield loop) runs on the publishing thread while readers
  /// proceed against the new snapshot unimpeded. Thread-safe against
  /// concurrent publishers (serialized by a CAS claim on the target
  /// slot), though refreshes are expected to be single-sourced.
  void publish(std::unique_ptr<const T> next) {
    SCD_REQUIRE(next != nullptr, "cannot publish a null snapshot");
    const std::uint32_t target = claim_free_slot();
    slots_[target].snapshot.store(next.release());
    const std::uint32_t previous = current_.exchange(target);
    epoch_.fetch_add(1);
    if (previous == kNone) return;
    retire(previous);
  }

  /// Number of publishes so far; readers can cheaply detect refreshes.
  std::uint64_t epoch() const { return epoch_.load(); }

  /// Total acquire retries caused by concurrent publishes — a direct
  /// measure of reader disturbance (0 when no publish raced a reader).
  std::uint64_t acquire_retries() const {
    return total_retries_.load(std::memory_order_relaxed);
  }

  /// Acquires that retried kStallRetries times before succeeding — the
  /// "did a reader ever actually stall" metric. Must stay 0 under any
  /// realistic refresh rate.
  std::uint64_t stalled_acquires() const {
    return stalled_.load(std::memory_order_relaxed);
  }

 private:
  static constexpr std::uint32_t kNone = ~std::uint32_t{0};
  static constexpr std::uint32_t kStallRetries = 4 * kSlots;

  // Cache-line padding keeps reader-count traffic on one slot from
  // false-sharing with its neighbors under heavy query load.
  struct alignas(64) Slot {
    std::atomic<const T*> snapshot{nullptr};
    std::atomic<std::int64_t> readers{0};
    std::atomic<bool> claimed{false};
  };

  std::uint32_t claim_free_slot() {
    for (;;) {
      for (std::uint32_t i = 0; i < kSlots; ++i) {
        bool expected = false;
        if (slots_[i].claimed.compare_exchange_strong(expected, true)) {
          return i;
        }
      }
      // All slots transiently claimed (publish storm); yield and retry.
      std::this_thread::yield();
    }
  }

  void retire(std::uint32_t index) {
    Slot& slot = slots_[index];
    // Straggler readers that incremented after the current_ redirect
    // observe the failed re-check and decrement without touching the
    // snapshot, so the count provably reaches zero.
    while (slot.readers.load() != 0) {
      std::this_thread::yield();
    }
    delete slot.snapshot.exchange(nullptr);
    slot.claimed.store(false);
  }

  Slot slots_[kSlots];
  std::atomic<std::uint32_t> current_{kNone};
  std::atomic<std::uint64_t> epoch_{0};
  std::atomic<std::uint64_t> total_retries_{0};
  std::atomic<std::uint64_t> stalled_{0};
};

}  // namespace scd::threading
