// Micro-benchmarks of the algorithm's hot kernels (google-benchmark):
// pair likelihood, phi gradients, theta ratios, the SGRLD row update,
// neighbor sampling and minibatch drawing. These are the units whose
// cycle counts calibrate sim::ComputeModel.
//
// The headline BM_PairLikelihood / BM_PhiGradient / BM_ThetaRatio /
// BM_UpdatePhiRow series go through the fast_* dispatch — i.e. they
// measure what the samplers actually run (fused path by default). The
// BM_*Scalar series pins the scalar reference kernels for the
// fused-vs-scalar speedup comparison.
//
// Refresh the committed baseline with:
//   ./build/bench/bench_kernels \
//     --benchmark_min_time=0.2 --benchmark_format=json \
//     > BENCH_kernels.json
#include <benchmark/benchmark.h>

#include "core/grads.h"
#include "core/kernels_simd.h"
#include "core/state.h"
#include "graph/generator.h"
#include "graph/minibatch.h"
#include "random/distributions.h"

using namespace scd;

namespace {

struct KernelFixtureData {
  std::vector<float> row_a;
  std::vector<float> row_b;
  std::vector<float> beta;
  core::LikelihoodTerms terms;

  explicit KernelFixtureData(std::size_t k) {
    rng::Xoshiro256 rng(17);
    auto make_row = [&](std::size_t dim) {
      std::vector<double> pi(dim);
      rng::sample_dirichlet(rng, 0.5, pi);
      std::vector<float> row(dim + 1);
      for (std::size_t i = 0; i < dim; ++i) {
        row[i] = static_cast<float>(pi[i]);
      }
      row[dim] = 2.0f;
      return row;
    };
    row_a = make_row(k);
    row_b = make_row(k);
    beta.resize(k);
    for (float& b : beta) {
      b = static_cast<float>(0.1 + 0.8 * rng.next_double());
    }
    terms.refresh(beta, 1e-5);
  }
};

// --- dispatched (fused by default): what the samplers run ---------------

void BM_PairLikelihood(benchmark::State& state) {
  const KernelFixtureData f(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        core::fast_pair_likelihood(f.row_a, f.row_b, f.terms, true));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_PairLikelihood)->Arg(64)->Arg(1024)->Arg(12288);

void BM_PhiGradient(benchmark::State& state) {
  const auto k = static_cast<std::size_t>(state.range(0));
  const KernelFixtureData f(k);
  std::vector<double> grad(k);
  std::vector<float> w(k);
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::fast_accumulate_phi_grad(
        f.row_a, f.row_b, f.terms, false, grad, w));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_PhiGradient)->Arg(64)->Arg(1024)->Arg(12288);

void BM_ThetaRatio(benchmark::State& state) {
  const auto k = static_cast<std::size_t>(state.range(0));
  const KernelFixtureData f(k);
  std::vector<double> ratio(k);
  std::vector<float> scratch(k);
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::fast_accumulate_theta_ratio(
        f.row_a, f.row_b, f.terms, true, ratio, scratch));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_ThetaRatio)->Arg(64)->Arg(1024)->Arg(12288);

void BM_UpdatePhiRow(benchmark::State& state) {
  const auto k = static_cast<std::size_t>(state.range(0));
  const KernelFixtureData f(k);
  std::vector<double> grad(k, 0.1);
  std::vector<double> noise(k);
  std::vector<float> row = f.row_a;
  std::uint64_t iteration = 0;
  for (auto _ : state) {
    core::fast_update_phi_row(1, iteration++, 7, row, grad, 100.0, 0.01,
                              0.1, 1.0, core::GradientForm::kRawEqn3,
                              noise);
    benchmark::DoNotOptimize(row.data());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_UpdatePhiRow)->Arg(64)->Arg(1024)->Arg(12288);

// --- scalar reference: the pre-fusion baselines -------------------------

void BM_PairLikelihoodScalar(benchmark::State& state) {
  const KernelFixtureData f(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        core::pair_likelihood(f.row_a, f.row_b, f.terms, true));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_PairLikelihoodScalar)->Arg(64)->Arg(1024)->Arg(12288);

void BM_PhiGradientScalar(benchmark::State& state) {
  const auto k = static_cast<std::size_t>(state.range(0));
  const KernelFixtureData f(k);
  std::vector<double> grad(k);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        core::accumulate_phi_grad(f.row_a, f.row_b, f.terms, false, grad));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_PhiGradientScalar)->Arg(64)->Arg(1024)->Arg(12288);

void BM_ThetaRatioScalar(benchmark::State& state) {
  const auto k = static_cast<std::size_t>(state.range(0));
  const KernelFixtureData f(k);
  std::vector<double> ratio(k);
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::accumulate_theta_ratio(
        f.row_a, f.row_b, f.terms, true, ratio));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_ThetaRatioScalar)->Arg(64)->Arg(1024)->Arg(12288);

void BM_UpdatePhiRowScalar(benchmark::State& state) {
  const auto k = static_cast<std::size_t>(state.range(0));
  const KernelFixtureData f(k);
  std::vector<double> grad(k, 0.1);
  std::vector<float> row = f.row_a;
  std::uint64_t iteration = 0;
  for (auto _ : state) {
    core::update_phi_row(1, iteration++, 7, row, grad, 100.0, 0.01, 0.1);
    benchmark::DoNotOptimize(row.data());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_UpdatePhiRowScalar)->Arg(64)->Arg(1024)->Arg(12288);

void BM_GammaSampling(benchmark::State& state) {
  rng::Xoshiro256 rng(3);
  const double shape = static_cast<double>(state.range(0)) / 100.0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(rng::sample_gamma(rng, shape));
  }
}
BENCHMARK(BM_GammaSampling)->Arg(5)->Arg(100)->Arg(500);

struct GraphFixture {
  graph::GeneratedGraph generated;
  GraphFixture() {
    rng::Xoshiro256 rng(5);
    graph::PlantedConfig config;
    config.num_vertices = 20000;
    config.num_communities = 32;
    generated = graph::generate_planted(rng, config);
  }
  static const GraphFixture& instance() {
    static GraphFixture fixture;
    return fixture;
  }
};

void BM_NeighborSampling(benchmark::State& state) {
  const auto& g = GraphFixture::instance().generated.graph;
  rng::Xoshiro256 rng(9);
  const graph::Vertex a = 17;
  const auto adj = g.neighbors(a);
  for (auto _ : state) {
    benchmark::DoNotOptimize(graph::sample_neighbors(
        rng, g.num_vertices(), a, adj,
        static_cast<std::size_t>(state.range(0))));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_NeighborSampling)->Arg(32)->Arg(128);

void BM_MinibatchDraw(benchmark::State& state) {
  const auto& g = GraphFixture::instance().generated.graph;
  graph::MinibatchSampler::Options options;
  options.strategy = graph::MinibatchStrategy::kStratifiedRandomNode;
  options.nonlink_partitions = 32;
  const graph::MinibatchSampler sampler(g, nullptr, options);
  rng::Xoshiro256 rng(11);
  for (auto _ : state) {
    benchmark::DoNotOptimize(sampler.draw(rng));
  }
}
BENCHMARK(BM_MinibatchDraw);

// The allocation-free path the samplers use: same draws, reused buffers.
void BM_MinibatchDrawInto(benchmark::State& state) {
  const auto& g = GraphFixture::instance().generated.graph;
  graph::MinibatchSampler::Options options;
  options.strategy = graph::MinibatchStrategy::kStratifiedRandomNode;
  options.nonlink_partitions = 32;
  const graph::MinibatchSampler sampler(g, nullptr, options);
  graph::Minibatch mb;
  graph::MinibatchScratch scratch;
  mb.pairs.reserve(sampler.max_pairs_bound());
  mb.vertices.reserve(sampler.max_vertices_bound());
  scratch.chosen.reset(sampler.max_pairs_bound());
  rng::Xoshiro256 rng(11);
  for (auto _ : state) {
    sampler.draw_into(rng, mb, scratch);
    benchmark::DoNotOptimize(mb.pairs.data());
  }
}
BENCHMARK(BM_MinibatchDrawInto);

void BM_EdgeMembership(benchmark::State& state) {
  const auto& g = GraphFixture::instance().generated.graph;
  rng::Xoshiro256 rng(13);
  for (auto _ : state) {
    const auto u = static_cast<graph::Vertex>(rng.next_below(20000));
    const auto v = static_cast<graph::Vertex>(rng.next_below(20000));
    benchmark::DoNotOptimize(g.has_edge(u, v));
  }
}
BENCHMARK(BM_EdgeMembership);

}  // namespace

BENCHMARK_MAIN();
