// Ablations of the design choices DESIGN.md calls out:
//
//  1. update_phi prefetch chunk size (pipeline granularity);
//  2. gradient estimators: minibatch strategy x neighbor mode, by final
//     perplexity under a fixed iteration budget;
//  3. storing [pi | sum phi] (K+1 floats) vs storing phi directly
//     (2K floats) — memory and load_pi time;
//  4. DKV batching granularity: one request per row (the paper's design)
//     vs one request per owner shard;
//  5. LRU caching of pi (quantifying Section III-A's no-locality claim);
//  6. SGRLD drift form: the paper's literal Eqn 3 vs the posterior-exact
//     preconditioned form.
#include "bench/bench_util.h"
#include "dkv/cached_dkv.h"
#include "dkv/sim_rdma_dkv.h"
#include "core/sequential_sampler.h"
#include "graph/datasets.h"
#include "graph/heldout.h"
#include "sim/cluster.h"

using namespace scd;

namespace {

void ablate_chunk_size(bench::BenchIo& io) {
  const core::PhantomWorkload workload = bench::friendster_workload();
  Table table({"chunk_vertices", "pipelined_iter_ms"});
  for (std::uint32_t chunk : {4u, 16u, 32u, 64u, 256u}) {
    sim::SimCluster cluster(bench::das5_cluster(64));
    core::Hyper hyper;
    hyper.num_communities = 4096;
    core::DistributedOptions options;
    options.base.eval_interval = 0;
    options.chunk_vertices = chunk;
    core::DistributedSampler sampler(cluster, workload, hyper, options);
    table.add_row({std::int64_t(chunk),
                   sampler.run(16).avg_iteration_seconds * 1e3});
  }
  io.emit(table, "ablation_chunk_size",
          "Ablation — pipeline chunk size (64 nodes, K=4096)");
}

// Compare gradient-estimator choices by final perplexity under a fixed
// iteration budget: minibatch strategy x neighbor mode, on the
// LiveJournal convergence-scale graph. Each cell is an independent run;
// perplexity is instantaneous (single-sample evaluation at the end).
void ablate_estimators(bench::BenchIo& io) {
  rng::Xoshiro256 gen_rng(2016);
  const graph::DatasetSpec& spec =
      graph::dataset_by_name("com-LiveJournal");
  const graph::GeneratedGraph g =
      graph::generate_planted(gen_rng, graph::convergence_config(spec));
  rng::Xoshiro256 split_rng(7);
  const graph::HeldOutSplit split(split_rng, g.graph, 500);

  core::Hyper hyper;
  hyper.num_communities = spec.conv.communities;
  hyper.delta = core::suggested_delta(g.graph.density());

  constexpr std::uint64_t kIters = 20000;
  auto run_config = [&](graph::MinibatchStrategy strategy,
                        core::NeighborMode mode) {
    core::SamplerOptions options;
    options.minibatch.strategy = strategy;
    options.minibatch.num_pairs = 128;
    options.minibatch.nonlink_partitions = spec.conv.nonlink_partitions;
    options.neighbor_mode = mode;
    options.num_neighbors = 16;
    options.eval_interval = 0;
    options.step.a = spec.conv.step_a;
    options.step.b = 4096;
    options.seed = 99;
    core::SequentialSampler sampler(split.training(), &split, hyper,
                                    options);
    sampler.run(kIters);
    return sampler.evaluate_perplexity();  // single-sample: instantaneous
  };

  Table table({"minibatch", "neighbor_mode", "perplexity_at_20k"});
  for (auto strategy : {graph::MinibatchStrategy::kStratifiedRandomNode,
                        graph::MinibatchStrategy::kRandomPair}) {
    for (auto mode :
         {core::NeighborMode::kLinkAware, core::NeighborMode::kUniform}) {
      table.add_row(
          {std::string(strategy == graph::MinibatchStrategy::
                                       kStratifiedRandomNode
                           ? "stratified-random-node"
                           : "random-pair"),
           std::string(mode == core::NeighborMode::kLinkAware
                           ? "link-aware"
                           : "uniform (Eqn 5)"),
           run_config(strategy, mode)});
    }
  }
  io.emit(table, "ablation_estimators",
          "Ablation — minibatch strategy x neighbor mode "
          "(LiveJournal conv-scale, 20k iterations, lower is better)");
}

void ablate_row_layout(bench::BenchIo& io) {
  // [pi | sum phi] ships K+1 floats per row; storing phi outright would
  // ship 2K+... the paper's Section III-A trade-off, quantified on the
  // dominant load_pi stage.
  const core::PhantomWorkload workload = bench::friendster_workload();
  Table table({"layout", "row_bytes", "pi_storage_TB", "load_pi_ms_iter"});
  for (bool compact : {true, false}) {
    const std::uint32_t k = 12288;
    const std::uint64_t row_floats = compact ? (k + 1) : (2ull * k);
    const double row_bytes = double(row_floats) * sizeof(float);
    const double storage_tb =
        double(workload.num_vertices) * row_bytes / 1e12;
    // Rows touched per worker per iteration in update_phi.
    const double rows = double(workload.minibatch_vertices) / 64.0 * 33.0;
    sim::NetworkModel net;
    const double load_ms =
        net.dkv_batch_time(
            static_cast<std::uint64_t>(rows),
            static_cast<std::uint64_t>(rows * row_bytes),
            static_cast<std::uint64_t>(rows * row_bytes), 64) *
        1e3;
    table.add_row({std::string(compact ? "pi + sum_phi (paper)"
                                       : "pi and phi separately"),
                   double(row_bytes), storage_tb, load_ms});
  }
  io.emit(table, "ablation_row_layout",
          "Ablation — state layout (com-Friendster, K=12288)");
}

void ablate_dkv_batching(bench::BenchIo& io) {
  // One RDMA request per row (the paper) vs batching all rows bound for
  // the same owner into one request.
  sim::NetworkModel net;
  const std::uint64_t rows = 8448;  // per-worker rows at M=16384, n=32
  const std::uint64_t row_bytes = (12288 + 1) * 4;
  Table table({"granularity", "requests", "load_ms"});
  for (bool per_row : {true, false}) {
    const std::uint64_t requests = per_row ? rows : 64;
    table.add_row(
        {std::string(per_row ? "one request per row (paper)"
                             : "one request per owner shard"),
         std::int64_t(requests),
         net.dkv_batch_time(requests, rows * row_bytes, rows * row_bytes,
                            64) *
             1e3});
  }
  io.emit(table, "ablation_dkv_batching",
          "Ablation — DKV request granularity (K=12288, 64 nodes)");
}

// Section III-A claims caching pi is pointless because accesses are
// uniformly random. Quantify it: replay the sampler's access pattern —
// random minibatch vertices and neighbor draws — against an LRU cache of
// various capacities (expressed as the RAM a worker could spare), with a
// 16-shard remote store underneath so hits translate into modeled time
// saved (a hit is a local memcpy; a miss pays the RDMA read).
void ablate_pi_caching(bench::BenchIo& io) {
  constexpr std::uint64_t kRows = 100'000;  // scaled-down key space
  constexpr std::uint32_t kWidth = 4;       // tiny rows: hit rate is
                                            // capacity-ratio driven
  sim::ComputeModel node;
  dkv::SimRdmaDkv inner(kRows, kWidth, /*num_shards=*/16,
                        sim::NetworkModel{}, node);

  Table table({"cache_fraction_of_pi", "hit_rate_pct", "read_ms_cached",
               "read_ms_uncached", "time_saved_pct"});
  for (double fraction : {0.001, 0.01, 0.05, 0.20}) {
    dkv::CachedDkv cache(
        inner,
        std::max<std::uint64_t>(
            1, static_cast<std::uint64_t>(fraction * kRows)),
        node);
    rng::Xoshiro256 rng(11);
    std::vector<std::uint64_t> keys(33);  // a vertex + its neighbor set
    std::vector<float> out(keys.size() * kWidth);
    double cached_s = 0.0;
    double uncached_s = 0.0;
    // Enough accesses to warm even the largest cache (~7x capacity).
    constexpr int kIters = 5000;
    for (int iter = 0; iter < kIters; ++iter) {
      for (auto& key : keys) key = rng.next_below(kRows);
      cached_s += cache.get_rows(0, keys, out);
      uncached_s += inner.read_cost_keys(0, keys);
    }
    table.add_row({fraction, 100.0 * cache.hit_rate(),
                   cached_s / kIters * 1e3, uncached_s / kIters * 1e3,
                   100.0 * (1.0 - cached_s / uncached_s)});
  }
  io.emit(table, "ablation_pi_caching",
          "Ablation — LRU caching of pi under the sampler's random "
          "access pattern (hit rate and time saved ~= cache fraction, "
          "as Section III-A argues)");
}

// Raw Eqn-3 drift vs Patterson-Teh preconditioned drift (see
// core::GradientForm and PosteriorTest): structure-recovery speed under a
// fixed budget vs statistical calibration of beta.
void ablate_gradient_form(bench::BenchIo& io) {
  rng::Xoshiro256 gen_rng(2016);
  const graph::DatasetSpec& spec =
      graph::dataset_by_name("com-LiveJournal");
  const graph::GeneratedGraph g =
      graph::generate_planted(gen_rng, graph::convergence_config(spec));
  rng::Xoshiro256 split_rng(7);
  const graph::HeldOutSplit split(split_rng, g.graph, 500);

  core::Hyper hyper;
  hyper.num_communities = spec.conv.communities;
  hyper.delta = core::suggested_delta(g.graph.density());

  Table table({"gradient_form", "perplexity_at_20k", "mean_beta"});
  for (auto form : {core::GradientForm::kRawEqn3,
                    core::GradientForm::kPreconditioned}) {
    core::SamplerOptions options;
    options.minibatch.nonlink_partitions = spec.conv.nonlink_partitions;
    options.neighbor_mode = core::NeighborMode::kLinkAware;
    options.num_neighbors = 16;
    options.eval_interval = 0;
    options.step.a = spec.conv.step_a;
    options.step.b = 4096;
    options.seed = 99;
    options.gradient_form = form;
    core::SequentialSampler sampler(split.training(), &split, hyper,
                                    options);
    sampler.run(20000);
    double mean_beta = 0.0;
    for (std::uint32_t k = 0; k < hyper.num_communities; ++k) {
      mean_beta += sampler.global().beta(k);
    }
    mean_beta /= hyper.num_communities;
    table.add_row(
        {std::string(form == core::GradientForm::kRawEqn3
                         ? "raw Eqn 3 (paper)"
                         : "preconditioned (Patterson-Teh)"),
         sampler.evaluate_perplexity(), mean_beta});
  }
  io.emit(table, "ablation_gradient_form",
          "Ablation — SGRLD drift form (LiveJournal conv-scale)");
}

}  // namespace

int main(int argc, char** argv) {
  bench::BenchIo io;
  if (!io.parse(argc, argv, "bench_ablation",
                "Ablations of the paper's design choices")) {
    return 0;
  }
  ablate_chunk_size(io);
  ablate_estimators(io);
  ablate_row_layout(io);
  ablate_dkv_batching(io);
  ablate_pi_caching(io);
  ablate_gradient_form(io);
  return 0;
}
