// Figure 1: strong scaling on com-Friendster.
//
//  (a) execution time of 2048 iterations (total + per-phase cumulative)
//      for cluster sizes 8..64 worker nodes, K = 1024, M = 16384, n = 32;
//  (b) speedup relative to the 8-node configuration.
//
// Cost-only execution at the paper's full problem size. The cost-only
// iteration is deterministic, so 64 iterations are measured and scaled to
// the paper's 2048.
#include "bench/bench_util.h"
#include "sim/cluster.h"

using namespace scd;
using sim::Phase;

int main(int argc, char** argv) {
  std::int64_t report_iters = 2048;
  std::int64_t k = 1024;
  ArgParser parser("bench_strong_scaling", "Figure 1: strong scaling");
  parser.add_int("iterations", &report_iters, "iterations to report");
  parser.add_int("k", &k, "number of communities");
  bench::BenchIo io;
  if (!io.parse(argc, argv, "bench_strong_scaling", "", &parser)) return 0;

  const core::PhantomWorkload workload = bench::friendster_workload();
  const unsigned sizes[] = {8, 16, 32, 64};

  Table fig1a({"workers", "total_s", "update_phi_pi_s", "load_pi_s",
               "update_phi_s", "deploy_s", "update_beta_theta_s",
               "draw_minibatch_s"});
  Table fig1b({"workers", "speedup_vs_8"});
  double time_at_8 = 0.0;
  for (unsigned workers : sizes) {
    const core::DistributedResult result = bench::run_cost_only(
        workers, static_cast<std::uint32_t>(k), workload,
        /*measured=*/64, static_cast<std::uint64_t>(report_iters));
    const sim::PhaseStats& cp = result.critical_path;
    const double phi_pi = cp.get(Phase::kSampleNeighbors) +
                          cp.get(Phase::kLoadPi) +
                          cp.get(Phase::kUpdatePhi) +
                          cp.get(Phase::kUpdatePi);
    fig1a.add_row({std::int64_t(workers), result.virtual_seconds, phi_pi,
                   cp.get(Phase::kLoadPi), cp.get(Phase::kUpdatePhi),
                   cp.get(Phase::kDeployMinibatch),
                   cp.get(Phase::kUpdateBetaTheta),
                   cp.get(Phase::kDrawMinibatch)});
    if (workers == 8) time_at_8 = result.virtual_seconds;
    fig1b.add_row({std::int64_t(workers),
                   time_at_8 / result.virtual_seconds});
  }
  io.emit(fig1a, "fig1a_strong_scaling_time",
          "Fig 1a — execution time of " + std::to_string(report_iters) +
              " iterations, com-Friendster, K=" + std::to_string(k));
  io.emit(fig1b, "fig1b_strong_scaling_speedup",
          "Fig 1b — speedup vs 8 worker nodes");
  return 0;
}
