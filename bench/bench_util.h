// Shared helpers for the paper-reproduction benchmark harnesses.
//
// Each bench binary regenerates one table or figure of the paper. The
// harnesses run the distributed sampler in cost-only mode for paper-scale
// configurations (com-Friendster, K up to 12288, 64 workers) and in real
// mode for the convergence studies on the dataset stand-ins. Results are
// printed as aligned tables; pass --csv <dir> to also write CSV series.
#pragma once

#include <cstdio>
#include <string>

#include "core/distributed_sampler.h"
#include "core/hyper.h"
#include "sim/cluster.h"
#include "util/cli.h"
#include "util/error.h"
#include "util/table.h"
#include "util/units.h"

namespace scd::bench {

/// The paper's headline workload: com-Friendster with the Fig. 1
/// minibatch configuration (M = 16384 vertices, n = 32 neighbors).
inline core::PhantomWorkload friendster_workload(
    std::uint32_t minibatch_vertices = 16384) {
  core::PhantomWorkload w;
  w.num_vertices = 65'608'366;
  w.avg_degree = 55.06;
  w.minibatch_vertices = minibatch_vertices;
  // Half as many pairs as vertices — the random-pair relation.
  w.minibatch_pairs = minibatch_vertices / 2;
  w.heldout_pairs = 0;
  return w;
}

/// A DAS5-like cluster of `workers` worker nodes plus the master.
inline sim::SimCluster::Config das5_cluster(unsigned workers) {
  sim::SimCluster::Config config;
  config.num_ranks = workers + 1;
  config.network = sim::NetworkModel{};
  config.compute = sim::das5_node();
  return config;
}

/// Run a cost-only distributed experiment and return the result. The
/// cost-only iteration is deterministic, so `measured_iterations` are
/// executed and scaled to `reported_iterations`.
inline core::DistributedResult run_cost_only(
    unsigned workers, std::uint32_t k, const core::PhantomWorkload& workload,
    std::uint64_t measured_iterations, std::uint64_t reported_iterations,
    bool pipeline = true, std::uint32_t num_neighbors = 32) {
  sim::SimCluster cluster(das5_cluster(workers));
  core::Hyper hyper;
  hyper.num_communities = k;
  core::DistributedOptions options;
  options.base.num_neighbors = num_neighbors;
  options.base.eval_interval = 0;
  options.pipeline = pipeline;
  core::DistributedSampler sampler(cluster, workload, hyper, options);
  core::DistributedResult result = sampler.run(measured_iterations);
  const double scale = static_cast<double>(reported_iterations) /
                       static_cast<double>(measured_iterations);
  result.iterations = reported_iterations;
  result.virtual_seconds *= scale;
  result.critical_path.scale(scale);
  return result;
}

/// Common bench CLI: --csv <dir> writes each table as <dir>/<name>.csv;
/// --json <path> collects every emitted table into one JSON document
/// (written by the destructor, or explicitly via write_json). The JSON
/// form is the committed-baseline format tools/check_bench.py diffs
/// against for regression detection.
struct BenchIo {
  std::string csv_dir;
  std::string json_path;

  bool parse(int argc, const char* const* argv, const std::string& name,
             const std::string& description, ArgParser* extra = nullptr) {
    ArgParser own(name, description);
    ArgParser& parser = extra != nullptr ? *extra : own;
    parser.add_string("csv", &csv_dir,
                      "directory to write CSV output (optional)");
    parser.add_string("json", &json_path,
                      "file to write all tables as one JSON doc (optional)");
    return parser.parse(argc, argv);
  }

  void emit(const Table& table, const std::string& name,
            const std::string& title) {
    std::printf("\n== %s ==\n%s", title.c_str(), table.to_ascii().c_str());
    if (!csv_dir.empty()) {
      table.write_csv(csv_dir + "/" + name + ".csv");
    }
    if (!json_path.empty()) {
      if (!json_body_.empty()) json_body_ += ",\n";
      json_body_ += "  \"" + name + "\": " + table.to_json();
    }
    std::fflush(stdout);
  }

  void write_json() {
    if (json_path.empty() || json_body_.empty()) return;
    std::FILE* f = std::fopen(json_path.c_str(), "w");
    SCD_REQUIRE(f != nullptr, "cannot open '" + json_path + "' for writing");
    std::fprintf(f, "{\n%s\n}\n", json_body_.c_str());
    std::fclose(f);
    json_body_.clear();
  }

  ~BenchIo() { write_json(); }

 private:
  std::string json_body_;
};

}  // namespace scd::bench
