// Chaos study: cost and convergence impact of the fault-tolerant
// protocol and of injected faults.
//
// Two questions. First, what does fault tolerance cost when nothing
// fails? The FT protocol (per-stage heartbeats + master-coordinated
// rounds) replaces the collectives of the legacy path; with an empty
// plan its numbers are bit-identical (asserted here) and the virtual-time
// overhead must stay within noise — the committed baseline drift-guards
// it. Second, how does convergence degrade as fault intensity rises?
// Each intensity level runs the same planted-graph workload under
// progressively harsher plans (lossy links -> straggler + DKV stall ->
// worker crashes) and reports the virtual-time overhead and the gap in
// final held-out perplexity versus the clean run. Everything is
// deterministic: same binary, same numbers.
#include <cmath>

#include "bench/bench_util.h"
#include "fault/fault_plan.h"
#include "graph/generator.h"
#include "graph/heldout.h"
#include "sim/cluster.h"
#include "util/error.h"

using namespace scd;

namespace {

constexpr unsigned kWorkers = 4;
constexpr std::uint64_t kIterations = 120;

struct Arm {
  core::DistributedResult result;
  double final_perplexity = 0.0;
};

struct Workload {
  graph::GeneratedGraph generated;
  std::unique_ptr<graph::HeldOutSplit> split;
  core::Hyper hyper;
  core::DistributedOptions options;
};

Workload make_workload() {
  Workload w;
  rng::Xoshiro256 gen_rng(4242);
  graph::PlantedConfig config;
  config.num_vertices = 200;
  config.num_communities = 4;
  config.p_two_memberships = 0.2;
  config.beta_lo = 0.25;
  config.beta_hi = 0.4;
  config.delta = 2e-3;
  w.generated = graph::generate_planted(gen_rng, config);
  rng::Xoshiro256 split_rng(4243);
  w.split = std::make_unique<graph::HeldOutSplit>(split_rng,
                                                  w.generated.graph, 100);
  w.hyper.num_communities = 4;
  w.hyper.delta = core::suggested_delta(w.generated.graph.density());
  w.options.base.minibatch.strategy =
      graph::MinibatchStrategy::kStratifiedRandomNode;
  w.options.base.minibatch.nonlink_partitions = 8;
  w.options.base.num_neighbors = 24;
  w.options.base.eval_interval = 30;
  w.options.base.step.a = 0.05;
  w.options.base.step.b = 512.0;
  w.options.base.step.c = 0.55;
  w.options.base.seed = 4244;
  w.options.pipeline = false;  // FT does not pipeline; compare like-for-like
  w.options.chunk_vertices = 8;
  return w;
}

Arm run_arm(const fault::FaultPlan* plan) {
  Workload w = make_workload();
  sim::SimCluster cluster(bench::das5_cluster(kWorkers));
  w.options.fault_plan = plan;
  core::DistributedSampler sampler(cluster, w.split->training(),
                                   w.split.get(), w.hyper, w.options);
  Arm arm;
  arm.result = sampler.run(kIterations);
  SCD_REQUIRE(!arm.result.history.empty(), "chaos arm produced no evals");
  arm.final_perplexity = arm.result.history.back().perplexity;
  return arm;
}

}  // namespace

int main(int argc, char** argv) {
  bench::BenchIo io;
  if (!io.parse(argc, argv, "bench_chaos",
                "Chaos study: FT overhead and fault-intensity degradation"))
    return 0;

  // ---- no-fault parity: legacy collectives vs FT with an empty plan ----
  const Arm legacy = run_arm(nullptr);
  const fault::FaultPlan empty;
  const Arm nofault = run_arm(&empty);
  SCD_REQUIRE(nofault.final_perplexity == legacy.final_perplexity,
              "FT no-fault run is not bit-identical to the legacy path");
  const double overhead_pct = 100.0 *
                              (nofault.result.virtual_seconds -
                               legacy.result.virtual_seconds) /
                              legacy.result.virtual_seconds;

  Table parity({"arm", "virtual_s", "final_perplexity",
                "nofault_overhead_pct"});
  parity.add_row({std::string("legacy"), legacy.result.virtual_seconds,
                  legacy.final_perplexity, 0.0});
  parity.add_row({std::string("ft_nofault"),
                  nofault.result.virtual_seconds, nofault.final_perplexity,
                  overhead_pct});
  io.emit(parity, "nofault_parity", "FT protocol overhead, no faults");

  // ---- fault-intensity sweep ------------------------------------------
  const double total = nofault.result.virtual_seconds;
  const double per_iter = total / static_cast<double>(kIterations);

  Table chaos({"intensity", "virtual_s", "time_overhead_pct",
               "final_perplexity", "perplexity_gap_pct", "crashed_ranks",
               "redone_iterations"});
  struct Level {
    const char* name;
    double drop;
    double slowdown;
    double stall_s;
    unsigned crashes;
  };
  const Level levels[] = {
      {"light", 0.05, 1.5, 1e-6, 0},
      {"medium", 0.15, 3.0, 5e-6, 1},
      {"heavy", 0.30, 6.0, 2e-5, 2},
  };
  for (const Level& level : levels) {
    fault::FaultPlan plan;
    plan.seed = 17;
    plan.heartbeat_timeout_s = per_iter;
    for (unsigned rank = 1; rank <= kWorkers; ++rank) {
      plan.links.push_back(
          {0, rank, 0.0, 1e9, level.drop, level.drop / 2.0, 1e-6});
      plan.links.push_back(
          {rank, 0, 0.0, 1e9, level.drop, level.drop / 2.0, 1e-6});
    }
    plan.stragglers.push_back({1, 0.0, 1e9, level.slowdown});
    plan.dkv_stalls.push_back({2, 0.0, 1e9, level.stall_s});
    for (unsigned i = 0; i < level.crashes; ++i) {
      plan.crashes.push_back(
          {kWorkers - i, total * (0.4 + 0.2 * static_cast<double>(i))});
    }
    const Arm arm = run_arm(&plan);
    chaos.add_row(
        {std::string(level.name), arm.result.virtual_seconds,
         100.0 * (arm.result.virtual_seconds - total) / total,
         arm.final_perplexity,
         100.0 * (arm.final_perplexity - nofault.final_perplexity) /
             nofault.final_perplexity,
         static_cast<std::int64_t>(arm.result.crashed_ranks.size()),
         static_cast<std::int64_t>(arm.result.redone_iterations)});
  }
  io.emit(chaos, "chaos_sweep", "Degradation vs fault intensity");
  return 0;
}
