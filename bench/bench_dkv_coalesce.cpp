// Before/after study of the DKV request-coalescing + deduplication layer
// (the Section III-B batching design, taken further per owner shard).
//
// Three request models are costed for the same key traffic:
//
//  A. per_row_ms      — one RDMA message per row: latency_s +
//                       dkv_request_overhead_s charged per remote row.
//                       The naive fetch loop a worker would run without
//                       any batching.
//  B. seed_batch_ms   — one batched descriptor list: latency_s once,
//                       dkv_request_overhead_s per remote row (what this
//                       repo charged before the coalescing layer).
//  C. coalesced_ms    — this PR: keys deduplicated per stage via
//                       KeyIndex, then one message per contacted owner
//                       shard (SimRdmaDkv::read_cost_keys).
//
// The key traffic is a replayed trace, not a synthetic count: stratified
// random-node minibatches on the com-Friendster stand-in graph (65,608
// vertices, avg degree ~55) with link-aware neighbor sets (n = 32),
// chunked exactly like DistributedSampler::worker_loop chunks its
// update_phi loads (32 vertices per chunk; at paper scale every worker
// slice spans many chunks, so whole-minibatch chunks match the per-worker
// chunk composition). nonlink_partitions is chosen so minibatches are
// tens of vertices — the paper's M=16384 at N=65.6M, at 1/1000 stand-in
// scale. Duplication therefore comes from where the algorithm creates
// it: shared neighbor rows inside a chunk, and the stratified anchor
// vertex repeating in every update_beta pair.
//
// Also records phantom-vs-real keyed-cost parity (max relative error;
// must be exactly 0 — both sides are the same partition arithmetic).
#include <cmath>

#include "bench/bench_util.h"
#include "dkv/key_index.h"
#include "dkv/sim_rdma_dkv.h"
#include "graph/datasets.h"
#include "graph/minibatch.h"
#include "threading/thread_pool.h"

using namespace scd;

namespace {

constexpr std::uint64_t kIterations = 256;
constexpr std::uint64_t kChunkVertices = 32;
constexpr std::size_t kNumNeighbors = 32;
constexpr std::size_t kNonlinkPartitions = 1024;

/// One stage's accumulated traffic under the three request models.
struct StageCost {
  double refs = 0.0;
  double unique = 0.0;
  double per_row_s = 0.0;
  double seed_batch_s = 0.0;
  double coalesced_s = 0.0;

  void add_row(Table& table, const std::string& stage, std::uint32_t k,
               unsigned shards) const {
    const double iters = static_cast<double>(kIterations);
    table.add_row({stage, std::int64_t(k), std::int64_t(shards),
                   refs / iters, unique / iters, refs / unique,
                   per_row_s / iters * 1e3, seed_batch_s / iters * 1e3,
                   coalesced_s / iters * 1e3, per_row_s / coalesced_s,
                   seed_batch_s / coalesced_s});
  }
};

/// Cost of `keys` under models A and B: local rows stream from RAM,
/// remote rows each carry a request overhead — and, in the per-row model,
/// a full message latency as well.
void charge_uncoalesced(const dkv::SimRdmaDkv& store,
                        const sim::NetworkModel& net,
                        const sim::ComputeModel& node, unsigned shard,
                        std::span<const std::uint64_t> keys,
                        StageCost& cost) {
  std::uint64_t local = 0;
  for (std::uint64_t key : keys) {
    if (store.partition().owner(key) == shard) ++local;
  }
  const std::uint64_t remote = keys.size() - local;
  const std::uint64_t row_bytes = store.value_bytes();
  const double local_s = node.local_bytes_time(local * row_bytes);
  const std::uint64_t remote_bytes = remote * row_bytes;
  const double batch_s =
      net.dkv_batch_time(remote, remote_bytes, remote_bytes,
                         store.partition().num_shards());
  cost.seed_batch_s += local_s + batch_s;
  // Per-row messaging pays the one-way latency on every remote message,
  // not once per batch.
  cost.per_row_s +=
      local_s + batch_s +
      (remote > 0 ? static_cast<double>(remote - 1) * net.latency_s : 0.0);
}

}  // namespace

int main(int argc, char** argv) {
  bench::BenchIo io;
  if (!io.parse(argc, argv, "bench_dkv_coalesce",
                "DKV coalescing + dedup: before/after cost study")) {
    return 0;
  }

  const sim::NetworkModel net;
  const sim::ComputeModel node = sim::das5_node();

  rng::Xoshiro256 gen_rng(2016);
  const graph::DatasetSpec& spec = graph::dataset_by_name("com-Friendster");
  const graph::GeneratedGraph g = graph::generate_standin(gen_rng, spec);
  const graph::Vertex n_vertices = g.graph.num_vertices();

  graph::MinibatchSampler::Options mb_options;
  mb_options.strategy = graph::MinibatchStrategy::kStratifiedRandomNode;
  mb_options.nonlink_partitions = kNonlinkPartitions;
  const graph::MinibatchSampler minibatch(g.graph, nullptr, mb_options);

  Table table({"stage", "k", "shards", "refs_iter", "unique_iter",
               "dup_factor", "per_row_ms", "seed_batch_ms", "coalesced_ms",
               "speedup_vs_per_row", "speedup_vs_seed_batch"});
  Table parity({"shards", "batches_checked", "parity_max_rel_err"});

  for (const unsigned shards : {16u, 64u}) {
    // Parity stores: same partition arithmetic must price identical key
    // multisets identically whether or not the store holds data. Width
    // is small so the real store stays cheap to build.
    dkv::SimRdmaDkv parity_real(n_vertices, 9, shards, net, node);
    dkv::SimRdmaDkv parity_phantom(n_vertices, 9, shards, net, node,
                                   /*phantom=*/true);
    double parity_err = 0.0;
    std::int64_t parity_batches = 0;

    for (const std::uint32_t k : {1024u, 12288u}) {
      // [pi | sum phi] rows: K + 1 floats.
      dkv::SimRdmaDkv store(n_vertices, k + 1, shards, net, node,
                            /*phantom=*/true);
      StageCost load_pi;
      StageCost update_pi;
      StageCost update_beta;

      rng::Xoshiro256 mb_rng(7);
      rng::Xoshiro256 nbr_rng(11);
      graph::Minibatch mb;
      graph::MinibatchScratch mb_scratch;
      graph::NeighborSet nbr_set;
      graph::NeighborScratch nbr_scratch;
      dkv::KeyIndex index;
      std::vector<std::uint64_t> keys;

      auto charge_read = [&](StageCost& cost) {
        charge_uncoalesced(store, net, node, 0, keys, cost);
        index.build(keys);
        cost.refs += static_cast<double>(keys.size());
        cost.unique += static_cast<double>(index.unique_keys().size());
        cost.coalesced_s += store.read_cost_keys(0, index.unique_keys());
        if (k == 1024) {  // parity is width-independent; check once per K
          const double real_cost = parity_real.read_cost_keys(0, keys);
          const double phantom_cost =
              parity_phantom.read_cost_keys(0, keys);
          parity_err = std::max(
              parity_err, std::abs(real_cost - phantom_cost) / real_cost);
          ++parity_batches;
        }
      };

      for (std::uint64_t t = 0; t < kIterations; ++t) {
        minibatch.draw_into(mb_rng, mb, mb_scratch);

        // ---- load_pi: per chunk, a vertex plus its neighbor samples ---
        for (std::size_t lo = 0; lo < mb.vertices.size();
             lo += kChunkVertices) {
          const std::size_t hi =
              std::min(lo + kChunkVertices, mb.vertices.size());
          keys.clear();
          for (std::size_t vi = lo; vi < hi; ++vi) {
            const graph::Vertex a = mb.vertices[vi];
            keys.push_back(a);
            graph::draw_neighbor_set_into(
                nbr_rng, graph::NeighborMode::kLinkAware, n_vertices, a,
                g.graph.neighbors(a), kNumNeighbors, nbr_set, nbr_scratch);
            for (const graph::NeighborSample& nb : nbr_set.samples) {
              keys.push_back(nb.b);
            }
          }
          charge_read(load_pi);
        }

        // ---- update_pi: write back one row per minibatch vertex -------
        keys.assign(mb.vertices.begin(), mb.vertices.end());
        charge_uncoalesced(store, net, node, 0, keys, update_pi);
        update_pi.refs += static_cast<double>(keys.size());
        update_pi.unique += static_cast<double>(keys.size());
        update_pi.coalesced_s += store.write_cost_keys(0, keys);

        // ---- update_beta: both endpoints of every pair -----------------
        keys.clear();
        for (const graph::MinibatchPair& pair : mb.pairs) {
          keys.push_back(pair.a);
          keys.push_back(pair.b);
        }
        charge_read(update_beta);
      }

      load_pi.add_row(table, "load_pi", k, shards);
      update_pi.add_row(table, "update_pi", k, shards);
      update_beta.add_row(table, "update_beta", k, shards);
    }
    parity.add_row({std::int64_t(shards), parity_batches, parity_err});
  }

  io.emit(table, "dkv_coalesce",
          "DKV coalescing + dedup — per-iteration stage cost, "
          "com-Friendster stand-in trace");
  io.emit(parity, "dkv_coalesce_parity",
          "Phantom vs real keyed-cost parity (must be 0)");
  return 0;
}
