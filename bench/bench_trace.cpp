// Tracer overhead and observer-effect study.
//
// Two claims to pin down. First, tracing is invisible in modeled time:
// a traced run must be bit-identical to an untraced one (virtual
// seconds and trajectory), because the recorder samples clocks and
// never advances them — asserted here, and the committed baseline
// drift-guards the deterministic volume the instrumentation records
// (span counts, messages, critical-path length). Second, the real-time
// cost of recording: the same workload is timed wall-clock with the
// recorder installed and with the null-recorder fast path, reported to
// stdout only — wall time is machine-dependent and must stay out of the
// baseline JSON.
#include <chrono>
#include <cmath>

#include "bench/bench_util.h"
#include "graph/generator.h"
#include "graph/heldout.h"
#include "sim/cluster.h"
#include "trace/critical_path.h"
#include "trace/recorder.h"
#include "util/error.h"

using namespace scd;

namespace {

constexpr unsigned kWorkers = 4;
constexpr std::uint64_t kIterations = 120;

struct Workload {
  graph::GeneratedGraph generated;
  std::unique_ptr<graph::HeldOutSplit> split;
  core::Hyper hyper;
  core::DistributedOptions options;
};

Workload make_workload() {
  Workload w;
  rng::Xoshiro256 gen_rng(4242);
  graph::PlantedConfig config;
  config.num_vertices = 200;
  config.num_communities = 4;
  config.p_two_memberships = 0.2;
  config.beta_lo = 0.25;
  config.beta_hi = 0.4;
  config.delta = 2e-3;
  w.generated = graph::generate_planted(gen_rng, config);
  rng::Xoshiro256 split_rng(4243);
  w.split = std::make_unique<graph::HeldOutSplit>(split_rng,
                                                  w.generated.graph, 100);
  w.hyper.num_communities = 4;
  w.hyper.delta = core::suggested_delta(w.generated.graph.density());
  w.options.base.minibatch.strategy =
      graph::MinibatchStrategy::kStratifiedRandomNode;
  w.options.base.minibatch.nonlink_partitions = 8;
  w.options.base.num_neighbors = 24;
  w.options.base.eval_interval = 30;
  w.options.base.step.a = 0.05;
  w.options.base.step.b = 512.0;
  w.options.base.step.c = 0.55;
  w.options.base.seed = 4244;
  w.options.pipeline = true;
  w.options.chunk_vertices = 8;
  return w;
}

struct Arm {
  core::DistributedResult result;
  double wall_s = 0.0;
};

Arm run_arm(trace::TraceRecorder* recorder) {
  Workload w = make_workload();
  sim::SimCluster cluster(bench::das5_cluster(kWorkers));
  w.options.trace = recorder;
  core::DistributedSampler sampler(cluster, w.split->training(),
                                   w.split.get(), w.hyper, w.options);
  Arm arm;
  const auto start = std::chrono::steady_clock::now();
  arm.result = sampler.run(kIterations);
  arm.wall_s = std::chrono::duration<double>(
                   std::chrono::steady_clock::now() - start)
                   .count();
  SCD_REQUIRE(!arm.result.history.empty(), "trace arm produced no evals");
  return arm;
}

}  // namespace

int main(int argc, char** argv) {
  bench::BenchIo io;
  if (!io.parse(argc, argv, "bench_trace",
                "Tracer overhead: observer effect and recording volume"))
    return 0;

  // ---- observer effect: traced vs untraced must be bit-identical ------
  const Arm off = run_arm(nullptr);
  trace::TraceRecorder recorder(kWorkers + 1);
  const Arm on = run_arm(&recorder);
  SCD_REQUIRE(on.result.virtual_seconds == off.result.virtual_seconds,
              "tracing moved the virtual clock");
  SCD_REQUIRE(on.result.history.back().perplexity ==
                  off.result.history.back().perplexity,
              "tracing changed the trajectory");
  // Both asserted bit-identical above, so this field is exactly 0 and
  // the baseline pins it there.
  const double parity_max_rel_err = 0.0;

  const trace::CriticalPathReport report =
      trace::analyze_critical_path(recorder);
  SCD_REQUIRE(std::abs(report.total_s - on.result.virtual_seconds) <=
                  1e-9 * on.result.virtual_seconds,
              "critical path does not tile the traced run");

  Table parity({"arm", "virtual_s", "final_perplexity",
                "parity_max_rel_err"});
  parity.add_row({std::string("untraced"), off.result.virtual_seconds,
                  off.result.history.back().perplexity,
                  parity_max_rel_err});
  parity.add_row({std::string("traced"), on.result.virtual_seconds,
                  on.result.history.back().perplexity,
                  parity_max_rel_err});
  io.emit(parity, "trace_parity",
          "Observer effect: traced run vs untraced run");

  // ---- recording volume: deterministic, drift-guarded -----------------
  using trace::Metric;
  const trace::MetricsRegistry& m = recorder.metrics();
  Table volume({"quantity", "count"});
  volume.add_row({std::string("spans"),
                  static_cast<std::int64_t>(recorder.total_spans())});
  volume.add_row(
      {std::string("messages"),
       static_cast<std::int64_t>(m.counter_total(Metric::kMessagesSent))});
  volume.add_row(
      {std::string("collectives"),
       static_cast<std::int64_t>(m.counter_total(Metric::kCollectives))});
  volume.add_row(
      {std::string("dkv_batches"),
       static_cast<std::int64_t>(m.counter_total(Metric::kDkvBatches))});
  volume.add_row({std::string("critical_path_steps"),
                  static_cast<std::int64_t>(report.steps.size())});
  io.emit(volume, "trace_volume",
          "Recording volume over the 120-iteration workload");

  // ---- wall-clock overhead: stdout only (machine-dependent) -----------
  const double overhead_pct =
      100.0 * (on.wall_s - off.wall_s) / off.wall_s;
  Table wall({"arm", "wall_s", "overhead_pct"});
  wall.add_row({std::string("null recorder"), off.wall_s, 0.0});
  wall.add_row({std::string("recording"), on.wall_s, overhead_pct});
  std::printf("\n== Wall-clock recording overhead (not baselined) ==\n%s",
              wall.to_ascii().c_str());
  return 0;
}
