// Figure 5: bandwidth of the DKV store's one-sided reads vs the qperf
// envelope (raw latency + line rate), across payload sizes.
//
// Conditions mirror the paper's microbenchmark: one server, one client
// (so the congestion de-rater is off), the DKV reads values spread across
// a larger server-side region while qperf re-reads one location — which
// is what causes the DKV's dip at the largest payloads.
//
// Expected shape: DKV trails qperf below ~4 KB (per-request overhead),
// matches it closely between 8 KB and 512 KB, dips slightly at 1 MB.
#include "bench/bench_util.h"

using namespace scd;

int main(int argc, char** argv) {
  bench::BenchIo io;
  if (!io.parse(argc, argv, "bench_dkv_bandwidth",
                "Figure 5: DKV read bandwidth vs qperf")) {
    return 0;
  }

  sim::NetworkModel net;
  net.congestion_strength = 0.0;  // single client/server, uncontended

  // The server exposes a rotating window of 32 values, so the touched
  // region is 32x the payload — past the LLC for megabyte payloads.
  constexpr std::uint64_t kValueWindow = 32;

  Table fig5({"payload_bytes", "dkv_read_MBps", "qperf_MBps",
              "dkv_vs_qperf_pct"});
  for (std::uint64_t payload :
       {256ull, 1024ull, 4096ull, 8192ull, 32768ull, 131072ull, 524288ull,
        1048576ull}) {
    const double dkv_time = net.dkv_batch_time(
        /*requests=*/1, payload, payload * kValueWindow, /*cluster=*/1);
    const double qperf_time = sim::qperf_transfer_time(net, payload);
    const double dkv_bw = double(payload) / dkv_time;
    const double qperf_bw = double(payload) / qperf_time;
    fig5.add_row({std::int64_t(payload), dkv_bw / 1e6, qperf_bw / 1e6,
                  100.0 * dkv_bw / qperf_bw});
  }
  io.emit(fig5, "fig5_dkv_bandwidth",
          "Fig 5 — DKV read bandwidth vs qperf envelope");
  return 0;
}
