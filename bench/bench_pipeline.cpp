// Figure 3: effect of pipelining (double buffering) on execution time,
// 64 worker nodes, 1024 iterations, K swept upward. The paper's
// observation: the single- vs double-buffered gap widens with K because
// both the pi transfer volume and the compute grow with K, giving the
// overlap more to hide.
#include "bench/bench_util.h"

using namespace scd;

int main(int argc, char** argv) {
  std::int64_t report_iters = 1024;
  std::int64_t workers = 64;
  ArgParser parser("bench_pipeline", "Figure 3: pipelining benefit");
  parser.add_int("iterations", &report_iters, "iterations to report");
  parser.add_int("workers", &workers, "cluster size (worker nodes)");
  bench::BenchIo io;
  if (!io.parse(argc, argv, "bench_pipeline", "", &parser)) return 0;

  const core::PhantomWorkload workload = bench::friendster_workload();

  Table fig3({"communities", "single_buffer_s", "double_buffer_s",
              "saving_pct"});
  for (std::uint32_t k : {1024u, 2048u, 4096u, 8192u, 12288u}) {
    const double serial =
        bench::run_cost_only(static_cast<unsigned>(workers), k, workload,
                             /*measured=*/32,
                             static_cast<std::uint64_t>(report_iters),
                             /*pipeline=*/false)
            .virtual_seconds;
    const double pipelined =
        bench::run_cost_only(static_cast<unsigned>(workers), k, workload,
                             /*measured=*/32,
                             static_cast<std::uint64_t>(report_iters),
                             /*pipeline=*/true)
            .virtual_seconds;
    fig3.add_row({std::int64_t(k), serial, pipelined,
                  100.0 * (serial - pipelined) / serial});
  }
  io.emit(fig3, "fig3_pipeline",
          "Fig 3 — " + std::to_string(report_iters) +
              " iterations on " + std::to_string(workers) +
              " nodes, single vs double buffering");
  return 0;
}
