// Autotuner study: tuned vs default configurations on two deliberately
// mis-configured workloads.
//
// Two claims to pin down. First, the attribution-guided search pays for
// itself: starting from the conventional all-zeros corner of the default
// search space, `tune()` must reach a materially better objective while
// probing a small fraction of the grid — the committed baseline
// drift-guards the probe count, the probed fraction, and both objective
// values (all deterministic virtual time, so the 20% drift gate of
// tools/check_bench.py applies cleanly). Second, the tuned configs
// themselves are stable: the baseline pins the chosen workers / threads
// / minibatch / cache knobs, so a pruning-rule change that flips the
// search outcome shows up as a diff, not silently.
//
// No exhaustive sweep here — the acceptance comparison against the
// brute-force optimum lives in tests/tune/tune_test.cpp where the grids
// are sized for it. This harness runs the product path (default_space)
// on paper-scale inputs.
#include <cmath>
#include <string>

#include "bench/bench_util.h"
#include "tune/report.h"
#include "tune/tuner.h"

using namespace scd;

namespace {

/// Comms-bound: com-Friendster scale. Collective skew and remote pi
/// reads dominate the small default minibatch, so the tuner must grow M
/// and the cache.
tune::TuneWorkload friendster_tune_workload() {
  tune::TuneWorkload w;
  w.num_vertices = 65'608'366;
  w.avg_degree = 55.06;
  w.num_communities = 1024;
  w.sat_vertices = 16384.0;
  return w;
}

/// Compute-bound: a small dense-community problem where the phi kernel
/// owns the critical path; the win is threads, not comm knobs.
tune::TuneWorkload compute_tune_workload() {
  tune::TuneWorkload w;
  w.num_vertices = 1u << 18;
  w.avg_degree = 16.0;
  w.num_communities = 8192;
  w.sat_vertices = 2048.0;
  return w;
}

struct Row {
  std::string name;
  tune::TuneResult result;
};

}  // namespace

int main(int argc, char** argv) {
  bench::BenchIo io;
  if (!io.parse(argc, argv, "bench_tune",
                "Autotuner: tuned vs default configs on mis-configured "
                "workloads"))
    return 0;

  Row rows[] = {
      {"friendster_comms", tune::tune(friendster_tune_workload(),
                                      tune::SearchSpace::default_space(
                                          friendster_tune_workload()
                                              .num_vertices))},
      {"compute_bound", tune::tune(compute_tune_workload(),
                                   tune::SearchSpace::default_space(
                                       compute_tune_workload()
                                           .num_vertices))},
  };

  Table summary({"workload", "grid_size", "probes", "probe_fraction_pct",
                 "default_ms", "tuned_ms", "speedup_pct", "prunes"});
  for (const Row& row : rows) {
    const tune::ProbeResult& start = row.result.probes.front();
    const tune::ProbeResult& best = row.result.best;
    SCD_REQUIRE(best.objective <= start.objective,
                "tuner finished worse than its starting corner");
    summary.add_row(
        {row.name, static_cast<std::int64_t>(row.result.grid_size),
         static_cast<std::int64_t>(row.result.probes.size()),
         100.0 * row.result.probe_fraction(), 1e3 * start.objective,
         1e3 * best.objective,
         100.0 * (start.objective / best.objective - 1.0),
         static_cast<std::int64_t>(row.result.prunes.size())});
  }
  io.emit(summary, "tune_summary",
          "Tuned vs default objective (per-iteration virtual ms / "
          "progress credit)");

  Table config({"workload", "workers", "threads", "pipeline",
                "minibatch_vertices", "dkv_cache_rows", "alias_draw",
                "pi_codec", "sparse_eps_bp"});
  for (const Row& row : rows) {
    const tune::TuneConfig& c = row.result.best.config;
    config.add_row({row.name, static_cast<std::int64_t>(c.workers),
                    static_cast<std::int64_t>(c.threads_per_node),
                    static_cast<std::int64_t>(c.pipeline ? 1 : 0),
                    static_cast<std::int64_t>(c.minibatch_vertices),
                    static_cast<std::int64_t>(c.dkv_cache_rows),
                    static_cast<std::int64_t>(c.alias_draw ? 1 : 0),
                    std::string(quant::codec_name(c.pi_codec)),
                    static_cast<std::int64_t>(
                        std::lround(c.sparse_eps * 1e4))});
  }
  io.emit(config, "tuned_configs", "Configurations the tuner settled on");
  return 0;
}
