// Proc backend study: the simulated cluster vs real forked processes.
//
// Two questions. First, parity: the multi-process backend must run the
// SAME sampler loops to the SAME numbers — the bench re-runs one planted
// workload on both backends at fp32 and hard-fails (SCD_REQUIRE) unless
// the perplexity history, every pi entry, and beta agree bit-for-bit.
// The parity table commits those diffs as exact zeros, so any future
// divergence fails the drift check even at the loosest tolerance.
// Second, attribution: the simulator books modeled DAS5 costs on a
// virtual clock while the proc backend measures wall time on loopback
// sockets, so the per-phase *shares* tell different stories (the model
// is network-dominated, the real single-host run is compute-dominated).
// The phase table puts both breakdowns side by side; the wall-clock
// columns get a wide drift allowance (they measure a shared box), the
// virtual columns stay tight (they are deterministic).
#include <cmath>

#include "bench/bench_util.h"
#include "comm/phase_stats.h"
#include "graph/generator.h"
#include "graph/heldout.h"
#include "proc/proc_cluster.h"
#include "sim/cluster.h"
#include "util/error.h"

using namespace scd;

namespace {

constexpr unsigned kWorkers = 2;
constexpr std::uint64_t kIterations = 40;

struct Workload {
  graph::GeneratedGraph generated;
  std::unique_ptr<graph::HeldOutSplit> split;
  core::Hyper hyper;
  core::DistributedOptions options;
};

Workload make_workload() {
  Workload w;
  rng::Xoshiro256 gen_rng(9242);
  graph::PlantedConfig config;
  config.num_vertices = 200;
  config.num_communities = 4;
  config.p_two_memberships = 0.2;
  config.beta_lo = 0.25;
  config.beta_hi = 0.4;
  config.delta = 2e-3;
  w.generated = graph::generate_planted(gen_rng, config);
  rng::Xoshiro256 split_rng(9243);
  w.split = std::make_unique<graph::HeldOutSplit>(split_rng,
                                                  w.generated.graph, 100);
  w.hyper.num_communities = 4;
  w.hyper.delta = core::suggested_delta(w.generated.graph.density());
  w.options.base.num_neighbors = 24;
  w.options.base.eval_interval = 10;
  w.options.base.seed = 9244;
  w.options.pipeline = false;  // the wall backend never pipelines
  w.options.chunk_vertices = 8;
  return w;
}

struct Arm {
  core::DistributedResult result;
  core::PiMatrix pi{1, 1};
  std::vector<float> beta;
  comm::PhaseStats stats;
};

/// One full sampler run on `cluster`; the workload is rebuilt from the
/// same seeds per call so both backends see identical inputs.
Arm run_arm(comm::Cluster& cluster) {
  Workload w = make_workload();
  core::DistributedSampler sampler(cluster, w.split->training(),
                                   w.split.get(), w.hyper, w.options);
  Arm arm;
  arm.result = sampler.run(kIterations);
  SCD_REQUIRE(!arm.result.history.empty(), "proc arm produced no evals");
  arm.pi = sampler.snapshot_pi();
  arm.beta.assign(sampler.global().beta_all().begin(),
                  sampler.global().beta_all().end());
  arm.stats = cluster.max_stats();
  return arm;
}

}  // namespace

int main(int argc, char** argv) {
  bench::BenchIo io;
  if (!io.parse(argc, argv, "bench_proc",
                "Proc backend study: sim-vs-proc parity and virtual-vs-wall "
                "phase attribution"))
    return 0;

  sim::SimCluster sim_cluster(bench::das5_cluster(kWorkers));
  const Arm sim = run_arm(sim_cluster);

  proc::ProcCluster::Config proc_config;
  proc_config.num_ranks = kWorkers + 1;
  proc_config.recv_timeout_s = 60.0;
  proc::ProcCluster proc_cluster(proc_config);
  const Arm proc = run_arm(proc_cluster);

  // ---- parity: the backends must agree bit-for-bit at fp32 ------------
  SCD_REQUIRE(sim.result.history.size() == proc.result.history.size(),
              "backends produced different eval histories");
  double perplexity_diff = 0.0;
  for (std::size_t i = 0; i < sim.result.history.size(); ++i) {
    perplexity_diff = std::max(
        perplexity_diff, std::abs(sim.result.history[i].perplexity -
                                  proc.result.history[i].perplexity));
  }
  SCD_REQUIRE(sim.pi.num_vertices() == proc.pi.num_vertices() &&
                  sim.pi.num_communities() == proc.pi.num_communities(),
              "backends produced different pi shapes");
  double pi_max_abs_diff = 0.0;
  for (std::uint32_t v = 0; v < sim.pi.num_vertices(); ++v) {
    for (std::uint32_t k = 0; k < sim.pi.num_communities(); ++k) {
      pi_max_abs_diff = std::max(
          pi_max_abs_diff,
          std::abs(static_cast<double>(sim.pi.pi(v, k)) - proc.pi.pi(v, k)));
    }
  }
  SCD_REQUIRE(sim.beta.size() == proc.beta.size(),
              "backends produced different beta sizes");
  double beta_max_abs_diff = 0.0;
  for (std::size_t k = 0; k < sim.beta.size(); ++k) {
    beta_max_abs_diff = std::max(
        beta_max_abs_diff,
        std::abs(static_cast<double>(sim.beta[k]) - proc.beta[k]));
  }
  SCD_REQUIRE(perplexity_diff == 0.0 && pi_max_abs_diff == 0.0 &&
                  beta_max_abs_diff == 0.0,
              "proc backend diverged from the simulator trajectory");

  Table parity({"metric", "value"});
  parity.add_row({std::string("final_perplexity"),
                  sim.result.history.back().perplexity});
  parity.add_row({std::string("eval_points"),
                  static_cast<std::int64_t>(sim.result.history.size())});
  parity.add_row({std::string("perplexity_max_abs_diff"), perplexity_diff});
  parity.add_row({std::string("pi_max_abs_diff"), pi_max_abs_diff});
  parity.add_row({std::string("beta_max_abs_diff"), beta_max_abs_diff});
  io.emit(parity, "parity", "Sim vs proc trajectory parity (fp32)");

  // ---- totals: virtual seconds vs wall seconds ------------------------
  const double sim_total_s = sim.result.virtual_seconds;
  const double proc_total_s = proc.result.virtual_seconds;  // wall on proc
  Table totals({"metric", "sim_value", "proc_value"});
  totals.add_row({std::string("total_seconds"), sim_total_s, proc_total_s});
  totals.add_row({std::string("iterations_per_s"),
                  static_cast<double>(kIterations) / sim_total_s,
                  static_cast<double>(kIterations) / proc_total_s});
  io.emit(totals, "totals", "Modeled virtual time vs measured wall time");

  // ---- per-phase attribution: modeled shares vs measured shares -------
  double sim_booked = 0.0;
  double proc_booked = 0.0;
  for (std::size_t i = 0; i < comm::kNumPhases; ++i) {
    sim_booked += sim.stats.get(static_cast<comm::Phase>(i));
    proc_booked += proc.stats.get(static_cast<comm::Phase>(i));
  }
  Table phases({"phase", "sim_virtual_ms", "sim_share_pct", "proc_wall_ms",
                "proc_share_pct"});
  for (std::size_t i = 0; i < comm::kNumPhases; ++i) {
    const auto phase = static_cast<comm::Phase>(i);
    const double sim_s = sim.stats.get(phase);
    const double proc_s = proc.stats.get(phase);
    phases.add_row({std::string(comm::phase_name(phase)), sim_s * 1e3,
                    100.0 * sim_s / sim_booked, proc_s * 1e3,
                    100.0 * proc_s / proc_booked});
  }
  io.emit(phases, "phase_shares",
          "Per-phase share: modeled (virtual) vs measured (wall)");
  return 0;
}
