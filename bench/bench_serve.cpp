// Serving-layer throughput/latency bench with a mid-load snapshot swap.
//
// Builds a ServingIndex over a planted synthetic model (N = 20k, K = 256
// — big enough that a link query does real O(K) kernel work, small
// enough to build in well under a second) and drives the Zipf-skewed
// traffic generator through five arms: each query kind in isolation, the
// serving mix, and the serving mix with four snapshot refreshes
// published mid-load. The refresh arm is the headline: every refresh
// round-trips the checkpoint through the fp32 byte transport and
// republishes, and the bench asserts (a) all four refreshes completed
// under sustained load, (b) NO reader ever stalled (the lock-free swap
// contract), and (c) the result checksum is bit-identical to the
// refresh-free mix — the rebuilt index answers exactly like the original.
//
// Determinism split for the drift guard: the `traffic` table (op counts,
// refreshes, reader stalls, checksums, index shape) is bit-reproducible
// and pinned tight by tools/check_bench.py; the `latency` table (qps,
// percentiles, build time) is wall-clock and carries loose per-metric
// tolerance overrides — its committed values document magnitude, not a
// regression gate. Retry counts and max latency are timing-raced, so
// they go to stdout only, never into the baseline JSON.
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <string>
#include <utility>

#include "bench/bench_util.h"
#include "core/checkpoint.h"
#include "serve/query_engine.h"
#include "serve/serving_index.h"
#include "serve/traffic.h"
#include "threading/thread_pool.h"

using namespace scd;

namespace {

constexpr std::uint32_t kVertices = 20'000;
constexpr std::uint32_t kCommunities = 256;
constexpr std::uint32_t kTopR = 16;
constexpr std::uint64_t kOpsPerArm = 40'000;
constexpr unsigned kThreads = 4;
constexpr unsigned kRefreshes = 4;

/// Planted model state, built directly (no training run): each vertex
/// holds two strong memberships above the auto threshold and a flat tail
/// below it, so top lists, link kernels and inverted lists all do
/// representative work. Fully deterministic — no RNG.
core::Checkpoint planted_checkpoint() {
  core::Checkpoint c;
  c.iteration = 12'345;
  c.hyper.num_communities = kCommunities;
  c.hyper.delta = 1e-3;
  c.pi = core::PiMatrix(kVertices, kCommunities);
  for (std::uint32_t v = 0; v < kVertices; ++v) {
    auto row = c.pi.row(v);
    const std::uint32_t c1 = v % kCommunities;
    const std::uint32_t c2 = (v * 7 + 3) % kCommunities;
    const float tail = (1.0f - 0.6f) / float(kCommunities - 2);
    for (std::uint32_t k = 0; k < kCommunities; ++k) row[k] = tail;
    row[c1] = 0.35f;
    row[c2] = c2 == c1 ? 0.35f : 0.25f;
    row[kCommunities] = 18.0f + float(v % 13);  // phi_sum
  }
  c.global = core::GlobalState(kCommunities);
  for (std::uint32_t k = 0; k < kCommunities; ++k) {
    c.global.set_theta(k, 0, 9.0 + 0.01 * k);
    c.global.set_theta(k, 1, 1.0 + 0.02 * (k % 17));
  }
  c.global.update_beta_from_theta();
  return c;
}

struct Arm {
  std::string name;
  double mix_top;
  double mix_link;
  double mix_members;
  unsigned refreshes;
};

}  // namespace

int main(int argc, char** argv) {
  bench::BenchIo io;
  if (!io.parse(argc, argv, "bench_serve",
                "serving-layer qps/latency with mid-load snapshot swap")) {
    return 0;
  }

  threading::ThreadPool pool(kThreads);
  serve::ServingIndexOptions index_options;
  index_options.top_r = kTopR;
  serve::ServingSnapshots snapshots;
  const auto build_begin = std::chrono::steady_clock::now();
  snapshots.publish(serve::build_serving_index(planted_checkpoint(),
                                               index_options, pool));
  const double build_ms =
      std::chrono::duration<double, std::milli>(
          std::chrono::steady_clock::now() - build_begin)
          .count();

  Table index_table({"metric", "value"});
  {
    const serve::ServingSnapshots::Ref index = snapshots.acquire();
    index_table.add_row({std::string("vertices"),
                         double(index->num_vertices())});
    index_table.add_row({std::string("communities"),
                         double(index->num_communities())});
    index_table.add_row({std::string("top_r"), double(index->top_r())});
    index_table.add_row({std::string("inverted_entries"),
                         double(index->inverted_entries())});
    index_table.add_row({std::string("index_mb"),
                         double(index->index_bytes()) / (1024.0 * 1024.0)});
    // Two strong memberships per vertex clear the threshold, no more.
    SCD_REQUIRE(index->inverted_entries() == 2 * std::uint64_t{kVertices},
                "planted model must yield exactly 2 members per vertex");
  }
  io.emit(index_table, "index", "serving index (N=20k, K=256, R=16)");

  const Arm arms[] = {
      {"top_only", 1.0, 0.0, 0.0, 0},
      {"link_only", 0.0, 1.0, 0.0, 0},
      {"members_only", 0.0, 0.0, 1.0, 0},
      {"mixed", 0.70, 0.25, 0.05, 0},
      {"mixed_refresh", 0.70, 0.25, 0.05, kRefreshes},
  };

  Table traffic_table({"arm", "ops", "ops_top", "ops_link", "ops_members",
                       "refreshes", "reader_stalls", "checksum"});
  Table latency_table({"arm", "qps", "p50_us", "p95_us", "p99_us",
                       "build_ms"});
  double mixed_checksum = 0.0;
  double refresh_checksum = 0.0;
  for (const Arm& arm : arms) {
    serve::TrafficOptions options;
    options.ops = kOpsPerArm;
    options.threads = kThreads;
    options.mix_top = arm.mix_top;
    options.mix_link = arm.mix_link;
    options.mix_members = arm.mix_members;
    options.refreshes = arm.refreshes;
    options.refresh_codec = quant::RowCodec::kFloat32;
    options.seed = 99;
    const serve::TrafficReport r = serve::run_traffic(snapshots, options);

    SCD_REQUIRE(r.ops_top + r.ops_link + r.ops_members == r.ops,
                "every op must be accounted to a kind");
    SCD_REQUIRE(r.refreshes == arm.refreshes,
                "every requested refresh must complete under load");
    SCD_REQUIRE(r.reader_stalls == 0,
                "the snapshot swap must never stall a reader");
    if (arm.name == "mixed") mixed_checksum = r.checksum;
    if (arm.name == "mixed_refresh") refresh_checksum = r.checksum;

    traffic_table.add_row({arm.name, double(r.ops), double(r.ops_top),
                           double(r.ops_link), double(r.ops_members),
                           double(r.refreshes), double(r.reader_stalls),
                           r.checksum});
    latency_table.add_row({arm.name, r.qps, r.p50_us, r.p95_us, r.p99_us,
                           build_ms});
    std::printf("%-14s wall %.3fs  acquire retries %llu  max %.1fus\n",
                arm.name.c_str(), r.wall_s,
                static_cast<unsigned long long>(r.acquire_retries),
                r.max_us);
  }

  // The fp32 refresh round-trip rebuilds a bit-identical index, so the
  // same query stream must produce the same answers — swap transparency,
  // asserted to the last bit.
  SCD_REQUIRE(refresh_checksum == mixed_checksum,
              "mid-load refresh must not change served answers");

  io.emit(traffic_table, "traffic",
          "traffic arms (deterministic: counts + checksums)");
  io.emit(latency_table, "latency",
          "traffic arms (wall-clock: throughput + percentiles)");
  return 0;
}
