// Figure 4: horizontal (distributed) vs vertical (one fat node) scaling.
//
//  (a) com-DBLP at full paper size: per-iteration time of the
//      multithreaded sampler on the HPC Cloud machine with 40 and 16
//      cores vs one 16-core DAS5 node, over a K sweep.
//  (b) com-Friendster: the 64-node DAS5 distributed configuration vs the
//      40-core 1TB HPC Cloud machine. The paper's finding: distributed
//      wins decisively and the gap widens with K.
#include "bench/bench_util.h"
#include "core/vertical_cost.h"

using namespace scd;

namespace {

core::PhantomWorkload dblp_workload() {
  core::PhantomWorkload w;
  w.num_vertices = 317'080;  // paper-size com-DBLP
  w.avg_degree = 6.62;
  w.minibatch_vertices = 4096;
  w.minibatch_pairs = 2048;
  return w;
}

}  // namespace

int main(int argc, char** argv) {
  bench::BenchIo io;
  if (!io.parse(argc, argv, "bench_horiz_vert",
                "Figure 4: horizontal vs vertical scaling")) {
    return 0;
  }

  constexpr std::uint32_t kNeighbors = 32;

  // --- Fig 4a: single-node configurations on com-DBLP -------------------
  {
    const core::PhantomWorkload w = dblp_workload();
    Table fig4a({"communities", "hpc_cloud_40c_ms", "hpc_cloud_16c_ms",
                 "das5_16c_ms"});
    for (std::uint32_t k : {2048u, 4096u, 8192u, 16384u, 32768u}) {
      const double cloud40 =
          core::vertical_iteration_cost(sim::hpc_cloud_node(40), w, k,
                                        kNeighbors)
              .total();
      const double cloud16 =
          core::vertical_iteration_cost(sim::hpc_cloud_node(16), w, k,
                                        kNeighbors)
              .total();
      const double das5 =
          core::vertical_iteration_cost(sim::das5_node(16), w, k,
                                        kNeighbors)
              .total();
      fig4a.add_row({std::int64_t(k), cloud40 * 1e3, cloud16 * 1e3,
                     das5 * 1e3});
    }
    io.emit(fig4a, "fig4a_vertical_dblp",
            "Fig 4a — per-iteration time (ms), com-DBLP, single-node");
  }

  // --- Fig 4b: 64-node cluster vs 40-core machine on com-Friendster -----
  {
    const core::PhantomWorkload w = bench::friendster_workload();
    Table fig4b({"communities", "das5_64nodes_ms", "hpc_cloud_40c_ms",
                 "ratio"});
    for (std::uint32_t k : {256u, 512u, 1024u, 2048u, 4096u}) {
      const double distributed =
          bench::run_cost_only(64, k, w, /*measured=*/16, 16)
              .avg_iteration_seconds;
      const double vertical =
          core::vertical_iteration_cost(sim::hpc_cloud_node(40), w, k,
                                        kNeighbors)
              .total();
      fig4b.add_row({std::int64_t(k), distributed * 1e3, vertical * 1e3,
                     vertical / distributed});
    }
    io.emit(fig4b, "fig4b_horiz_vert_friendster",
            "Fig 4b — per-iteration time (ms), com-Friendster");
  }
  return 0;
}
