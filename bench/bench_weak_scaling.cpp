// Figure 2: weak scaling — the community count K grows proportionally to
// the cluster size, keeping per-node work constant while communication
// intensity rises. The paper's observation: average time per iteration
// stays nearly flat, i.e. the distributed overhead is small.
//
//  (a) average execution time per iteration per cluster size;
//  (b) the K used at each point.
#include "bench/bench_util.h"

using namespace scd;

int main(int argc, char** argv) {
  std::int64_t k_per_worker = 192;
  ArgParser parser("bench_weak_scaling", "Figure 2: weak scaling");
  parser.add_int("k-per-worker", &k_per_worker,
                 "communities per worker node");
  bench::BenchIo io;
  if (!io.parse(argc, argv, "bench_weak_scaling", "", &parser)) return 0;

  const core::PhantomWorkload workload = bench::friendster_workload();

  Table fig2a({"workers", "avg_iteration_ms"});
  Table fig2b({"workers", "communities"});
  for (unsigned workers : {1u, 2u, 4u, 8u, 16u, 32u, 64u}) {
    const auto k = static_cast<std::uint32_t>(
        k_per_worker * static_cast<std::int64_t>(workers));
    const core::DistributedResult result = bench::run_cost_only(
        workers, k, workload, /*measured=*/32, /*reported=*/32);
    fig2a.add_row({std::int64_t(workers),
                   result.avg_iteration_seconds * 1e3});
    fig2b.add_row({std::int64_t(workers), std::int64_t(k)});
  }
  io.emit(fig2a, "fig2a_weak_scaling_time",
          "Fig 2a — avg time per iteration, K proportional to workers");
  io.emit(fig2b, "fig2b_weak_scaling_k", "Fig 2b — K per cluster size");
  return 0;
}
