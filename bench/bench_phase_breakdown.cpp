// Table III: per-stage time breakdown of one iteration on com-Friendster
// with 64 worker nodes and K = 12288, non-pipelined vs pipelined.
//
// Paper reference values (ms/iteration):
//                          non-pipelined   pipelined
//   total                       450            365
//   draw/deploy mini-batch       45.6          26.2 (hidden inside phi)
//   update_phi                  285            241
//     load pi                   205            209
//     update phi (compute)       74             74
//   update_pi                     3.8            4.6
//   update beta/theta            25.9           33.6
//
// In the pipelined column load_pi/update_phi/draw are *sub-stage* views:
// they overlap, so they exceed the stage's critical path — exactly as in
// the paper's table.
#include "bench/bench_util.h"
#include "sim/cluster.h"

using namespace scd;
using sim::Phase;

int main(int argc, char** argv) {
  std::int64_t k = 12288;
  std::int64_t workers = 64;
  ArgParser parser("bench_phase_breakdown", "Table III: stage breakdown");
  parser.add_int("k", &k, "number of communities");
  parser.add_int("workers", &workers, "cluster size (worker nodes)");
  bench::BenchIo io;
  if (!io.parse(argc, argv, "bench_phase_breakdown", "", &parser)) return 0;

  const core::PhantomWorkload workload = bench::friendster_workload();
  constexpr std::uint64_t kIters = 32;

  auto run = [&](bool pipeline) {
    core::DistributedResult r = bench::run_cost_only(
        static_cast<unsigned>(workers), static_cast<std::uint32_t>(k),
        workload, kIters, kIters, pipeline);
    r.critical_path.scale(1.0 / static_cast<double>(kIters));
    r.avg_iteration_seconds = r.virtual_seconds / double(kIters);
    return r;
  };
  const core::DistributedResult serial = run(false);
  const core::DistributedResult pipelined = run(true);

  auto ms = [](double s) { return s * 1e3; };
  auto row = [&](const std::string& name, Phase p) {
    return std::vector<Cell>{
        name, ms(serial.critical_path.get(p)),
        ms(pipelined.critical_path.get(p))};
  };

  Table t3({"stage", "non_pipelined_ms", "pipelined_ms"});
  t3.add_row({std::string("total"), ms(serial.avg_iteration_seconds),
              ms(pipelined.avg_iteration_seconds)});
  t3.add_row(row("draw/deploy mini-batch (master)", Phase::kDrawMinibatch));
  t3.add_row(row("deploy wait (worker)", Phase::kDeployMinibatch));
  t3.add_row(row("sample_neighbors", Phase::kSampleNeighbors));
  t3.add_row(row("load pi [substage]", Phase::kLoadPi));
  t3.add_row(row("update phi [substage]", Phase::kUpdatePhi));
  t3.add_row(row("update_pi", Phase::kUpdatePi));
  t3.add_row(row("update beta/theta", Phase::kUpdateBetaTheta));
  t3.add_row(row("barrier wait", Phase::kBarrierWait));
  io.emit(t3, "table3_phase_breakdown",
          "Table III — ms per iteration, com-Friendster, " +
              std::to_string(workers) + " workers, K=" + std::to_string(k));

  std::printf(
      "\npaper reference: total 450 -> 365; load pi 205/209; update phi"
      " 74/74; update_pi 3.8/4.6; update beta/theta 25.9/33.6;"
      " draw/deploy 45.6 -> 26.2\n");
  return 0;
}
