// Quantized pi rows: wire/storage savings and end-to-end modeled effect.
//
// Three deterministic tables for the drift guard. First, the codec
// layouts themselves: encoded bytes per [pi | phi_sum] row at K = 256 and
// K = 1024 and the reduction against fp32 — int8 approaches 4x as K
// grows because the per-row header amortizes. Second, cost-only runs of
// the distributed sampler per codec at both K: the same workload issues
// the same row references under every codec, so the modeled DKV
// bytes/iteration shrink exactly by the layout ratio while the
// end-to-end speedup shows how much of the iteration was DKV transfer.
// Third, real-mode convergence on the standard planted-graph workload:
// the final held-out perplexity per codec and its relative delta against
// the fp32 trajectory — exactly 0 for fp32 (the codec path is
// bit-identical, and the baseline pins it), and within 1% for the lossy
// codecs. Encode/decode throughput is wall-clock and therefore reported
// to stdout only, never into the baseline JSON.
#include <chrono>
#include <cmath>
#include <cstddef>
#include <vector>

#include "bench/bench_util.h"
#include "core/state.h"
#include "graph/generator.h"
#include "graph/heldout.h"
#include "quant/row_codec.h"
#include "sim/cluster.h"
#include "trace/recorder.h"
#include "util/error.h"

using namespace scd;

namespace {

constexpr quant::RowCodec kCodecs[] = {quant::RowCodec::kFloat32,
                                       quant::RowCodec::kFp16,
                                       quant::RowCodec::kInt8};

constexpr std::uint64_t kPhantomIterations = 12;

struct PhantomArm {
  double virtual_s = 0.0;
  double dkv_bytes_per_iter = 0.0;
  double remote_bytes_per_iter = 0.0;
};

/// Cost-only run at com-Friendster scale; DKV volume from the trace's
/// typed row counters times the codec's encoded row size.
PhantomArm run_phantom(std::uint32_t k, quant::RowCodec codec) {
  constexpr unsigned kWorkers = 16;
  sim::SimCluster cluster(bench::das5_cluster(kWorkers));
  core::Hyper hyper;
  hyper.num_communities = k;
  core::DistributedOptions options;
  options.base.num_neighbors = 32;
  options.base.eval_interval = 0;
  options.pi_codec = codec;
  trace::TraceRecorder recorder(kWorkers + 1);
  options.trace = &recorder;
  core::PhantomWorkload workload = bench::friendster_workload(4096);
  core::DistributedSampler sampler(cluster, workload, hyper, options);
  const core::DistributedResult result = sampler.run(kPhantomIterations);

  using trace::Metric;
  const trace::MetricsRegistry& m = recorder.metrics();
  const double rows =
      static_cast<double>(m.counter_total(Metric::kDkvRowsRead) +
                          m.counter_total(Metric::kDkvRowsWritten));
  const double remote =
      static_cast<double>(m.counter_total(Metric::kDkvRemoteRows));
  const double vbytes = static_cast<double>(
      quant::encoded_bytes(codec, core::pi_row_width(k)));
  PhantomArm arm;
  arm.virtual_s = result.virtual_seconds;
  arm.dkv_bytes_per_iter =
      rows * vbytes / static_cast<double>(kPhantomIterations);
  arm.remote_bytes_per_iter =
      remote * vbytes / static_cast<double>(kPhantomIterations);
  return arm;
}

/// Real-mode convergence on the standard planted-graph workload; returns
/// the final held-out perplexity.
double run_convergence(quant::RowCodec codec) {
  constexpr unsigned kWorkers = 4;
  constexpr std::uint64_t kIterations = 400;
  rng::Xoshiro256 gen_rng(4242);
  const graph::PlantedConfig config = graph::planted_config_for_degree(
      /*num_vertices=*/400, /*num_communities=*/16, 20.0);
  const graph::GeneratedGraph g = graph::generate_planted(gen_rng, config);
  rng::Xoshiro256 split_rng(4243);
  const graph::HeldOutSplit split(split_rng, g.graph,
                                  g.graph.num_edges() / 20);
  core::Hyper hyper;
  hyper.num_communities = 16;
  hyper.delta = core::suggested_delta(g.graph.density());
  core::DistributedOptions options;
  options.base.neighbor_mode = core::NeighborMode::kLinkAware;
  options.base.num_neighbors = 16;
  options.base.eval_interval = 100;
  options.base.step.a = 0.05;
  options.base.step.b = 512.0;
  options.base.seed = 4244;
  options.pi_codec = codec;
  sim::SimCluster cluster(bench::das5_cluster(kWorkers));
  core::DistributedSampler sampler(cluster, split.training(), &split,
                                   hyper, options);
  const core::DistributedResult result = sampler.run(kIterations);
  SCD_REQUIRE(!result.history.empty(), "convergence arm produced no evals");
  return result.history.back().perplexity;
}

}  // namespace

int main(int argc, char** argv) {
  bench::BenchIo io;
  if (!io.parse(argc, argv, "bench_quant",
                "Quantized pi rows: DKV bytes, modeled speedup,"
                " perplexity parity"))
    return 0;

  // ---- codec layouts ---------------------------------------------------
  Table layout({"codec", "k", "row_bytes", "fp32_row_bytes", "reduction"});
  for (const std::uint32_t k : {256u, 1024u}) {
    const std::uint32_t width = core::pi_row_width(k);
    const auto fp32 = static_cast<double>(
        quant::encoded_bytes(quant::RowCodec::kFloat32, width));
    for (const quant::RowCodec codec : kCodecs) {
      const auto bytes =
          static_cast<double>(quant::encoded_bytes(codec, width));
      layout.add_row({std::string(quant::codec_name(codec)),
                      std::int64_t(k), bytes, fp32, fp32 / bytes});
    }
  }
  io.emit(layout, "quant_layout",
          "Encoded [pi | phi_sum] row bytes per codec");

  // ---- cost-only DKV volume and end-to-end speedup ---------------------
  for (const std::uint32_t k : {256u, 1024u}) {
    Table table({"codec", "dkv_MB_per_iter", "remote_MB_per_iter",
                 "bytes_reduction", "virtual_ms_per_iter", "speedup"});
    PhantomArm fp32{};
    for (const quant::RowCodec codec : kCodecs) {
      const PhantomArm arm = run_phantom(k, codec);
      if (codec == quant::RowCodec::kFloat32) fp32 = arm;
      table.add_row({std::string(quant::codec_name(codec)),
                     arm.dkv_bytes_per_iter / 1e6,
                     arm.remote_bytes_per_iter / 1e6,
                     fp32.dkv_bytes_per_iter / arm.dkv_bytes_per_iter,
                     arm.virtual_s /
                         static_cast<double>(kPhantomIterations) * 1e3,
                     fp32.virtual_s / arm.virtual_s});
    }
    io.emit(table, "quant_phantom_k" + std::to_string(k),
            "Cost-only com-Friendster scale, 16 workers, K=" +
                std::to_string(k));
  }

  // ---- real-mode perplexity parity ------------------------------------
  {
    Table table({"codec", "final_perplexity", "rel_delta_vs_fp32"});
    double fp32_perp = 0.0;
    for (const quant::RowCodec codec : kCodecs) {
      const double perp = run_convergence(codec);
      if (codec == quant::RowCodec::kFloat32) fp32_perp = perp;
      table.add_row({std::string(quant::codec_name(codec)), perp,
                     std::abs(perp - fp32_perp) / fp32_perp});
    }
    io.emit(table, "quant_convergence",
            "Held-out perplexity after 400 iterations, planted graph"
            " (fp32 delta exactly 0: codec path is bit-identical)");
  }

  // ---- encode/decode throughput: stdout only (machine-dependent) -------
  {
    Table wall({"codec", "k", "encode_ns_per_row", "decode_ns_per_row"});
    for (const std::uint32_t k : {256u, 1024u}) {
      const std::uint32_t width = core::pi_row_width(k);
      std::vector<float> row(width);
      core::init_pi_row(7, 42, 100.0, row);
      for (const quant::RowCodec codec : kCodecs) {
        const std::size_t vbytes = quant::encoded_bytes(codec, width);
        std::vector<std::byte> enc(vbytes);
        std::vector<float> dec(width);
        constexpr int kReps = 20000;
        auto start = std::chrono::steady_clock::now();
        for (int r = 0; r < kReps; ++r) quant::encode_row(codec, row, enc);
        const double enc_s = std::chrono::duration<double>(
                                 std::chrono::steady_clock::now() - start)
                                 .count();
        start = std::chrono::steady_clock::now();
        for (int r = 0; r < kReps; ++r) quant::decode_row(codec, enc, dec);
        const double dec_s = std::chrono::duration<double>(
                                 std::chrono::steady_clock::now() - start)
                                 .count();
        wall.add_row({std::string(quant::codec_name(codec)),
                      std::int64_t(k), enc_s / kReps * 1e9,
                      dec_s / kReps * 1e9});
      }
    }
    std::printf("\n== Encode/decode throughput (not baselined) ==\n%s",
                wall.to_ascii().c_str());
  }
  return 0;
}
