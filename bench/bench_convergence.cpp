// Figure 6: convergence (held-out perplexity over time) for the six
// datasets, each at its paper cluster configuration.
//
// Composition (justified by the equivalence tests in
// tests/core/distributed_test.cpp): the *numerics* of the distributed
// sampler are identical to the sequential sampler for any worker count,
// so the perplexity trajectory is computed with the fast in-process
// sampler, while the *time axis* comes from the cost-only distributed run
// at the paper's node count and paper-scale workload.
//
// Trajectories run at each dataset's convergence scale (DatasetSpec::conv
// — a further-reduced planted graph; SG-MCMC needs thousands of updates
// per vertex, which at the 1/1000 stand-in scale would take hours on one
// core, just as the paper's full runs took hours on 65 nodes). The link-
// aware neighbor mode is used throughout: Eqn 5's uniform V_n has
// unusably high gradient variance on sparse graphs (see core/options.h).
#include <cmath>

#include "bench/bench_util.h"
#include "core/sequential_sampler.h"
#include "graph/datasets.h"
#include "graph/heldout.h"
#include "sim/cluster.h"

using namespace scd;

int main(int argc, char** argv) {
  double iteration_scale = 1.0;
  std::string only;
  ArgParser parser("bench_convergence", "Figure 6: convergence curves");
  parser.add_double("iteration-scale", &iteration_scale,
                    "multiply each dataset's iteration budget");
  parser.add_string("dataset", &only, "run a single dataset by name");
  bench::BenchIo io;
  if (!io.parse(argc, argv, "bench_convergence", "", &parser)) return 0;

  for (const graph::DatasetSpec& spec : graph::standard_datasets()) {
    if (!only.empty() && spec.name != only) continue;

    rng::Xoshiro256 gen_rng(2016);
    const graph::GeneratedGraph g =
        graph::generate_planted(gen_rng, graph::convergence_config(spec));
    const std::size_t heldout_size =
        std::min<std::size_t>(1000, g.graph.num_edges() / 10);
    rng::Xoshiro256 split_rng(7);
    const graph::HeldOutSplit split(split_rng, g.graph, heldout_size);

    const auto iterations = static_cast<std::uint64_t>(
        static_cast<double>(spec.conv.iterations) * iteration_scale);

    core::Hyper hyper;
    hyper.num_communities = spec.conv.communities;
    hyper.delta = core::suggested_delta(g.graph.density());
    core::SamplerOptions options;
    options.minibatch.strategy =
        graph::MinibatchStrategy::kStratifiedRandomNode;
    options.minibatch.nonlink_partitions = spec.conv.nonlink_partitions;
    options.neighbor_mode = core::NeighborMode::kLinkAware;
    options.num_neighbors = 16;
    options.eval_interval = std::max<std::uint64_t>(1, iterations / 12);
    options.step.a = spec.conv.step_a;
    options.step.b = 4096;
    options.seed = 2016;

    // Real numerics at convergence scale.
    core::SequentialSampler sampler(split.training(), &split, hyper,
                                    options);
    sampler.evaluate_perplexity();  // history[0]: the diffuse start
    sampler.run(iterations);

    // Virtual time per iteration at the paper's cluster size and K, on
    // the paper-size graph.
    core::PhantomWorkload workload;
    workload.num_vertices = spec.paper_vertices;
    workload.avg_degree = 2.0 * double(spec.paper_edges) /
                          double(spec.paper_vertices);
    workload.minibatch_vertices = 16384;
    workload.minibatch_pairs = 8192;
    workload.heldout_pairs = heldout_size;
    const unsigned workers = spec.paper_cluster_nodes > 1
                                 ? spec.paper_cluster_nodes - 1
                                 : 1;
    sim::SimCluster cluster(bench::das5_cluster(workers));
    core::DistributedOptions dist_options;
    dist_options.base = options;
    core::Hyper paper_hyper = hyper;
    paper_hyper.num_communities = spec.paper_communities;
    core::DistributedSampler timing(cluster, workload, paper_hyper,
                                    dist_options);
    const double sec_per_iter = timing.run(8).avg_iteration_seconds;

    Table curve(
        {"iteration", "virtual_hours_at_paper_scale", "perplexity"});
    // history[0] is the pre-training evaluation at iteration 0.
    for (const core::HistoryPoint& point : sampler.history()) {
      curve.add_row({static_cast<std::int64_t>(point.iteration),
                     double(point.iteration) * sec_per_iter / 3600.0,
                     point.perplexity});
    }
    io.emit(curve, "fig6_convergence_" + spec.name,
            "Fig 6 — " + spec.name + " (conv-scale N=" +
                std::to_string(spec.conv.vertices) + " K=" +
                std::to_string(spec.conv.communities) + "; time axis: " +
                std::to_string(workers) + "+1 nodes at paper scale, K=" +
                std::to_string(spec.paper_communities) + ")");
  }
  return 0;
}
