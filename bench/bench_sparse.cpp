// Sparse top-R pi rows: wire/storage savings and end-to-end modeled
// effect on a converged model.
//
// The sparse story is the BigClam observation transplanted to a-MMSB:
// as the sampler converges, each pi row concentrates its mass on a
// handful of communities, so the adaptive top-R codec shrinks both the
// DKV traffic and the kernel work from O(K) to O(nnz). Four
// deterministic tables for the drift guard:
//
//  1. Layout: encoded bytes of a converged-shape row (8 heavy
//     communities) per sparse codec at K = 1024 and 4096, against the
//     fp32 dense row.
//  2. Converged real-mode runs at K = 1024: a planted graph fit with a
//     deliberately over-provisioned community count, resumed from a
//     checkpoint built from the planted ground truth (each vertex's mass
//     on its true communities, theta matching the planted strengths, a
//     late iteration count so the step size is in the converged regime)
//     and measured over the 20 iterations after a 40-iteration tail-in.
//     Reported: virtual time per iteration, actual charged DKV bytes per
//     iteration (per-row quant::row_bytes through avg_row_wire_bytes,
//     not slot capacity), and held-out perplexity parity against fp32.
//     This is the acceptance table: >= 2x bytes/iter reduction, >= 1.5x
//     modeled speedup, perplexity within 1%.
//  3. Dense fallback: the same model measured over its first 12
//     iterations, where the freshly initialized rows are near-uniform
//     and every row stores via the dense-fallback sentinel. The sparse
//     arm must stay within 5% of fp32 — the worst case never regresses
//     past the 8-byte header and the O(K) fallback readers.
//  4. Cost-only com-Friendster scale at K = 1024, where the phantom
//     store prices the modeled per-row sparsity (auto nnz = K/16)
//     through the same layout formula.
#include <chrono>
#include <cmath>
#include <cstddef>
#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "core/checkpoint.h"
#include "core/grads.h"
#include "core/kernels_simd.h"
#include "core/state.h"
#include "graph/generator.h"
#include "graph/heldout.h"
#include "quant/row_codec.h"
#include "sim/cluster.h"
#include "trace/recorder.h"
#include "util/error.h"

using namespace scd;

namespace {

constexpr std::uint32_t kModelK = 1024;
constexpr unsigned kWorkers = 4;
constexpr std::uint64_t kWarmup = 40;
constexpr std::uint64_t kTotal = 60;
constexpr std::uint64_t kFallbackIterations = 12;

/// Converged-shape row: `support` heavy communities carrying 99.8% of
/// the mass, the rest a faint uniform tail.
std::vector<float> converged_row(std::uint32_t k, std::uint32_t support) {
  std::vector<float> row(k + 1, 0.002f / static_cast<float>(k));
  for (std::uint32_t s = 0; s < support; ++s) {
    row[(s * (k / support)) % k] = 0.998f / static_cast<float>(support);
  }
  row[k] = 15.0f;
  return row;
}

/// The planted fixture both real-mode tables run on: 8192 vertices in 64
/// true communities, fit with K = 1024 — the over-provisioned regime
/// where converged rows are extremely sparse. Degree 40 with 8 non-link
/// partitions makes the per-iteration minibatch a few hundred vertices,
/// so row transfer and kernel time dominate the fixed per-collective
/// skew of the network model (a single-anchor minibatch on a small graph
/// would measure nothing but that skew).
struct Fixture {
  graph::GeneratedGraph g;
  graph::HeldOutSplit split;
};

Fixture make_fixture() {
  rng::Xoshiro256 gen_rng(4242);
  const graph::PlantedConfig config = graph::planted_config_for_degree(
      /*num_vertices=*/8192, /*num_communities=*/64, 40.0);
  graph::GeneratedGraph g = graph::generate_planted(gen_rng, config);
  rng::Xoshiro256 split_rng(4243);
  graph::HeldOutSplit split(split_rng, g.graph, g.graph.num_edges() / 20);
  return Fixture{std::move(g), std::move(split)};
}

core::Hyper model_hyper(const Fixture& f) {
  core::Hyper hyper;
  hyper.num_communities = kModelK;
  hyper.delta = core::suggested_delta(f.g.graph.density());
  return hyper;
}

/// The converged state the tail measurement resumes from, built from the
/// planted ground truth rather than burned in: each vertex splits 99.6%
/// of its pi mass across its true communities with a faint uniform tail,
/// theta reproduces the planted per-community strengths, and the
/// iteration count is far along the step-size schedule so the measured
/// tail runs at converged-regime step sizes. This is exactly the regime
/// the sparse codec targets — and what a long burn-in reaches, without
/// spending minutes of bench time getting there.
core::Checkpoint make_converged_checkpoint(const Fixture& f,
                                           quant::RowCodec codec) {
  const graph::GroundTruth& truth = f.g.truth;
  const auto n = static_cast<std::uint32_t>(f.g.graph.num_vertices());
  core::Checkpoint cp;
  cp.iteration = 20000;
  cp.hyper = model_hyper(f);
  cp.pi_codec = codec;
  cp.pi = core::PiMatrix(n, kModelK);
  for (std::uint32_t v = 0; v < n; ++v) {
    std::span<float> row = cp.pi.row(v);
    const auto& member = truth.memberships[v];
    const float tail = 0.004f / static_cast<float>(kModelK);
    for (std::uint32_t k = 0; k < kModelK; ++k) row[k] = tail;
    for (const std::uint32_t c : member) {
      row[c] = 0.996f / static_cast<float>(member.size());
    }
    // Large pseudo-count scale: the SG-MCMC noise term is
    // sqrt(step * phi_k) per entry, so the tail's share of the row mass
    // floats at a noise floor proportional to 1/phi_sum. A converged
    // vertex has accumulated enough pseudo-counts that this floor sits
    // well below the codec's 1% mass epsilon.
    row[kModelK] = 4000.0f;
  }
  cp.global = core::GlobalState(kModelK);
  cp.global.init_random(4245, cp.hyper);
  for (std::size_t k = 0; k < truth.beta.size(); ++k) {
    cp.global.set_theta(static_cast<std::uint32_t>(k), 1,
                        50.0 * truth.beta[k]);
    cp.global.set_theta(static_cast<std::uint32_t>(k), 0,
                        50.0 * (1.0 - truth.beta[k]));
  }
  cp.global.update_beta_from_theta();
  return cp;
}

struct RealRun {
  double virtual_s = 0.0;
  double dkv_rows = 0.0;         // rows read + written over the run
  double avg_row_bytes = 0.0;    // store's tracked wire bytes at the end
  double avg_nnz = 0.0;
  double perplexity = 0.0;       // last eval, 0 when eval never ran
};

RealRun run_real(const Fixture& f, quant::RowCodec codec,
                 std::uint64_t iterations,
                 const core::Checkpoint* resume = nullptr) {
  sim::SimCluster cluster(bench::das5_cluster(kWorkers));
  const core::Hyper hyper = model_hyper(f);
  core::DistributedOptions options;
  options.base.neighbor_mode = core::NeighborMode::kLinkAware;
  options.base.num_neighbors = 16;
  options.base.minibatch.nonlink_partitions = 8;
  options.base.eval_interval = 20;
  options.base.step.a = 0.05;
  options.base.step.b = 512.0;
  options.base.seed = 4244;
  options.pi_codec = codec;
  options.resume_from = resume;
  trace::TraceRecorder recorder(kWorkers + 1);
  options.trace = &recorder;
  core::DistributedSampler sampler(cluster, f.split.training(), &f.split,
                                   hyper, options);
  const core::DistributedResult result = sampler.run(iterations);
  using trace::Metric;
  const trace::MetricsRegistry& m = recorder.metrics();
  RealRun r;
  r.virtual_s = result.virtual_seconds;
  r.dkv_rows =
      static_cast<double>(m.counter_total(Metric::kDkvRowsRead) +
                          m.counter_total(Metric::kDkvRowsWritten));
  r.avg_row_bytes = sampler.store().avg_row_wire_bytes();
  r.avg_nnz = sampler.store().avg_row_nnz();
  if (!result.history.empty()) {
    r.perplexity = result.history.back().perplexity;
  }
  return r;
}

struct PhantomArm {
  double virtual_s = 0.0;
  double dkv_bytes_per_iter = 0.0;
};

PhantomArm run_phantom(quant::RowCodec codec) {
  constexpr unsigned kPhantomWorkers = 16;
  constexpr std::uint64_t kPhantomIterations = 12;
  sim::SimCluster cluster(bench::das5_cluster(kPhantomWorkers));
  core::Hyper hyper;
  hyper.num_communities = kModelK;
  core::DistributedOptions options;
  options.base.num_neighbors = 32;
  options.base.eval_interval = 0;
  options.pi_codec = codec;
  trace::TraceRecorder recorder(kPhantomWorkers + 1);
  options.trace = &recorder;
  core::PhantomWorkload workload = bench::friendster_workload(4096);
  core::DistributedSampler sampler(cluster, workload, hyper, options);
  const core::DistributedResult result = sampler.run(kPhantomIterations);
  using trace::Metric;
  const trace::MetricsRegistry& m = recorder.metrics();
  const double rows =
      static_cast<double>(m.counter_total(Metric::kDkvRowsRead) +
                          m.counter_total(Metric::kDkvRowsWritten));
  PhantomArm arm;
  arm.virtual_s = result.virtual_seconds;
  arm.dkv_bytes_per_iter = rows * sampler.store().avg_row_wire_bytes() /
                           static_cast<double>(kPhantomIterations);
  return arm;
}

}  // namespace

int main(int argc, char** argv) {
  bench::BenchIo io;
  if (!io.parse(argc, argv, "bench_sparse",
                "Sparse top-R pi rows: DKV bytes, modeled speedup,"
                " perplexity parity, dense-fallback overhead"))
    return 0;

  // ---- converged-shape row layout --------------------------------------
  {
    Table layout(
        {"codec", "k", "row_bytes", "fp32_row_bytes", "reduction"});
    for (const std::uint32_t k : {1024u, 4096u}) {
      const std::uint32_t width = core::pi_row_width(k);
      const std::vector<float> row = converged_row(k, 8);
      const auto fp32 = static_cast<double>(
          quant::encoded_bytes(quant::RowCodec::kFloat32, width));
      for (const quant::RowCodec codec :
           {quant::RowCodec::kSparseTopR, quant::RowCodec::kSparseTopRFp16,
            quant::RowCodec::kSparseTopRInt8}) {
        std::vector<std::byte> enc(quant::encoded_bytes(codec, width));
        quant::encode_row(codec, row, enc);
        const auto bytes =
            static_cast<double>(quant::row_bytes(codec, width, enc));
        layout.add_row({std::string(quant::codec_name(codec)),
                        std::int64_t(k), bytes, fp32, fp32 / bytes});
      }
    }
    io.emit(layout, "sparse_layout",
            "Actual row bytes of a converged-shape row (8 heavy"
            " communities)");
  }

  const Fixture fixture = make_fixture();

  // ---- converged real-mode runs at K = 1024 ----------------------------
  {
    Table table({"codec", "virtual_ms_per_iter", "speedup_vs_fp32",
                 "dkv_kB_per_iter", "bytes_reduction", "avg_row_nnz",
                 "final_perplexity", "rel_delta_vs_fp32"});
    struct Tail {
      double ms_per_iter;
      double bytes_per_iter;
      double perp;
    };
    Tail fp32{};
    const double tail_iters = static_cast<double>(kTotal - kWarmup);
    for (const quant::RowCodec codec :
         {quant::RowCodec::kFloat32, quant::RowCodec::kSparseTopR,
          quant::RowCodec::kSparseTopRInt8}) {
      // Two fresh deterministic runs from the same converged
      // checkpoint; the difference isolates the measured tail.
      const core::Checkpoint cp = make_converged_checkpoint(fixture, codec);
      const RealRun warm = run_real(fixture, codec, kWarmup, &cp);
      const RealRun full = run_real(fixture, codec, kTotal, &cp);
      Tail arm;
      arm.ms_per_iter =
          (full.virtual_s - warm.virtual_s) / tail_iters * 1e3;
      arm.bytes_per_iter =
          (full.dkv_rows - warm.dkv_rows) * full.avg_row_bytes / tail_iters;
      arm.perp = full.perplexity;
      SCD_REQUIRE(arm.perp > 0.0, "convergence arm produced no evals");
      if (codec == quant::RowCodec::kFloat32) fp32 = arm;
      table.add_row({std::string(quant::codec_name(codec)),
                     arm.ms_per_iter, fp32.ms_per_iter / arm.ms_per_iter,
                     arm.bytes_per_iter / 1e3,
                     fp32.bytes_per_iter / arm.bytes_per_iter, full.avg_nnz,
                     arm.perp,
                     std::abs(arm.perp - fp32.perp) / fp32.perp});
    }
    io.emit(table, "sparse_converged_k1024",
            "Converged planted model, K=1024, last 20 of 60 resumed"
            " iterations (fp32 delta exactly 0: bit-identical path)");
  }

  // ---- dense-fallback overhead -----------------------------------------
  {
    Table table({"codec", "virtual_ms_per_iter", "fallback_vs_fp32",
                 "avg_row_nnz"});
    double fp32_s = 0.0;
    for (const quant::RowCodec codec :
         {quant::RowCodec::kFloat32, quant::RowCodec::kSparseTopR}) {
      const RealRun run = run_real(fixture, codec, kFallbackIterations);
      if (codec == quant::RowCodec::kFloat32) fp32_s = run.virtual_s;
      table.add_row({std::string(quant::codec_name(codec)),
                     run.virtual_s /
                         static_cast<double>(kFallbackIterations) * 1e3,
                     run.virtual_s / fp32_s, run.avg_nnz});
    }
    io.emit(table, "sparse_dense_fallback",
            "First 12 iterations from random init: near-uniform rows"
            " store via the dense-fallback sentinel");
  }

  // ---- cost-only com-Friendster scale ----------------------------------
  {
    Table table({"codec", "dkv_MB_per_iter", "bytes_reduction",
                 "virtual_ms_per_iter", "speedup"});
    PhantomArm fp32{};
    for (const quant::RowCodec codec :
         {quant::RowCodec::kFloat32, quant::RowCodec::kSparseTopR}) {
      const PhantomArm arm = run_phantom(codec);
      if (codec == quant::RowCodec::kFloat32) fp32 = arm;
      table.add_row({std::string(quant::codec_name(codec)),
                     arm.dkv_bytes_per_iter / 1e6,
                     fp32.dkv_bytes_per_iter / arm.dkv_bytes_per_iter,
                     arm.virtual_s / 12.0 * 1e3,
                     fp32.virtual_s / arm.virtual_s});
    }
    io.emit(table, "sparse_phantom_k1024",
            "Cost-only com-Friendster scale, 16 workers, K=1024,"
            " modeled nnz = K/16");
  }

  // ---- real kernel ns/row: stdout only (machine-dependent) -------------
  {
    Table wall({"codec", "k", "pair_likelihood_ns", "vs_dense"});
    core::LikelihoodTerms terms;
    for (const std::uint32_t k : {1024u, 4096u}) {
      const std::uint32_t width = core::pi_row_width(k);
      std::vector<float> beta(k, 0.2f);
      terms.refresh(beta, 1e-4);
      const std::vector<float> row = converged_row(k, 8);
      double dense_ns = 0.0;
      for (const quant::RowCodec codec :
           {quant::RowCodec::kFloat32, quant::RowCodec::kSparseTopR}) {
        std::vector<std::byte> ea(quant::encoded_bytes(codec, width));
        std::vector<std::byte> eb(ea.size());
        quant::encode_row(codec, row, ea);
        quant::encode_row(codec, row, eb);
        constexpr int kReps = 100000;
        double sink = 0.0;
        const auto start = std::chrono::steady_clock::now();
        for (int r = 0; r < kReps; ++r) {
          sink += core::fused_pair_likelihood_enc(codec, ea, eb, k, terms,
                                                  (r & 1) != 0);
        }
        const double ns = std::chrono::duration<double>(
                              std::chrono::steady_clock::now() - start)
                              .count() /
                          kReps * 1e9;
        if (codec == quant::RowCodec::kFloat32) dense_ns = ns;
        wall.add_row({std::string(quant::codec_name(codec)),
                      std::int64_t(k), ns, dense_ns / ns});
        if (sink == 42.0) std::printf("unreachable\n");
      }
    }
    std::printf(
        "\n== Pair-likelihood wall ns/call, converged-shape rows"
        " (not baselined) ==\n%s",
        wall.to_ascii().c_str());
  }
  return 0;
}
