// Table II: summary of the evaluation datasets.
//
// Prints the published SNAP statistics next to the synthetic stand-ins
// this reproduction generates (1/100 - 1/1000 vertex scale, matched
// average degree), and verifies the stand-in statistics by generating
// each graph.
#include "bench/bench_util.h"
#include "graph/datasets.h"

using namespace scd;

int main(int argc, char** argv) {
  bench::BenchIo io;
  if (!io.parse(argc, argv, "bench_datasets",
                "Table II: dataset summary, paper vs stand-ins")) {
    return 0;
  }

  Table table({"dataset", "paper_vertices", "paper_edges",
               "paper_gt_comms", "sim_vertices", "sim_edges",
               "sim_avg_deg", "paper_avg_deg", "sim_planted_comms"});
  for (const graph::DatasetSpec& spec : graph::standard_datasets()) {
    rng::Xoshiro256 rng(2016);
    const graph::GeneratedGraph g = graph::generate_standin(rng, spec);
    const double sim_deg = 2.0 * double(g.graph.num_edges()) /
                           double(g.graph.num_vertices());
    const double paper_deg =
        2.0 * double(spec.paper_edges) / double(spec.paper_vertices);
    table.add_row({spec.name,
                   std::int64_t(spec.paper_vertices),
                   std::int64_t(spec.paper_edges),
                   std::int64_t(spec.paper_ground_truth_communities),
                   std::int64_t(g.graph.num_vertices()),
                   std::int64_t(g.graph.num_edges()),
                   sim_deg,
                   paper_deg,
                   std::int64_t(spec.sim_communities)});
  }
  io.emit(table, "table2_datasets",
          "Table II — SNAP datasets and their synthetic stand-ins");
  return 0;
}
